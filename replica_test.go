package replica_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	replica "repro"
)

// buildSmall constructs the quickstart tree used across facade tests.
func buildSmall(t *testing.T) (*replica.Instance, []int, []int) {
	t.Helper()
	b := replica.NewTreeBuilder()
	root := b.AddRoot()
	n1 := b.AddNode(root)
	n2 := b.AddNode(root)
	c1 := b.AddClient(n1)
	c2 := b.AddClient(n2)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	in := replica.NewInstance(tree)
	nodes := []int{root, n1, n2}
	for _, n := range nodes {
		in.W[n] = 10
		in.S[n] = 1
	}
	in.R[c1], in.R[c2] = 6, 8
	return in, nodes, []int{c1, c2}
}

func TestFacadeOptimalSolvers(t *testing.T) {
	in, _, _ := buildSmall(t)
	mu, err := replica.OptimalMultipleHomogeneous(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := mu.Validate(in, replica.Multiple); err != nil {
		t.Fatal(err)
	}
	cl, err := replica.OptimalClosestHomogeneous(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Validate(in, replica.Closest); err != nil {
		t.Fatal(err)
	}
	if mu.ReplicaCount() > cl.ReplicaCount() {
		t.Errorf("Multiple optimum %d above Closest optimum %d", mu.ReplicaCount(), cl.ReplicaCount())
	}
	bf, err := replica.BruteForce(context.Background(), in, replica.Upwards)
	if err != nil {
		t.Fatal(err)
	}
	if bf.ReplicaCount() < mu.ReplicaCount() || bf.ReplicaCount() > cl.ReplicaCount() {
		t.Errorf("policy hierarchy broken: %d %d %d", mu.ReplicaCount(), bf.ReplicaCount(), cl.ReplicaCount())
	}
}

func TestFacadeHeuristics(t *testing.T) {
	in, _, _ := buildSmall(t)
	names := replica.HeuristicNames()
	if len(names) != 9 || names[len(names)-1] != "MB" {
		t.Fatalf("HeuristicNames = %v", names)
	}
	for _, name := range names {
		if _, err := replica.Solve(in, name); err != nil &&
			!errors.Is(err, replica.ErrNoSolution) && !isHeuristicFail(err) {
			t.Errorf("%s: %v", name, err)
		}
	}
	var unknown *replica.UnknownHeuristicError
	if _, err := replica.Solve(in, "nope"); !errors.As(err, &unknown) {
		t.Errorf("want UnknownHeuristicError, got %v", err)
	}
	mb, err := replica.MixedBest(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := mb.Validate(in, replica.Multiple); err != nil {
		t.Fatal(err)
	}
}

func isHeuristicFail(err error) bool {
	return err != nil && strings.Contains(err.Error(), "no solution")
}

func TestFacadeBounds(t *testing.T) {
	in, _, _ := buildSmall(t)
	rat, err := replica.RationalBound(in, replica.Multiple)
	if err != nil {
		t.Fatal(err)
	}
	lb, exactB, err := replica.LowerBound(context.Background(), in, replica.Multiple, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !exactB {
		t.Error("tiny instance should close exactly")
	}
	if rat > lb+1e-9 {
		t.Errorf("rational %v above refined %v", rat, lb)
	}
	opt, _ := replica.OptimalMultipleHomogeneous(in)
	if lb > float64(opt.StorageCost(in))+1e-9 {
		t.Errorf("bound %v above optimum %d", lb, opt.StorageCost(in))
	}
}

func TestFacadeGenerateAndCampaign(t *testing.T) {
	in := replica.Generate(replica.GenConfig{Internal: 6, Clients: 10, Lambda: 0.4}, 3)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := replica.RunCampaign(replica.CampaignConfig{
		Lambdas:        []float64{0.3},
		TreesPerLambda: 3,
		MinSize:        15,
		MaxSize:        30,
		Seed:           2,
		BoundNodes:     10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestFacadeQoS(t *testing.T) {
	in, nodes, clients := buildSmall(t)
	in.Q = make([]int, in.Tree.Len())
	for i := range in.Q {
		in.Q[i] = replica.NoQoS
	}
	in.Q[clients[0]] = 1
	sol, err := replica.OptimalClosestHomogeneousQoS(in)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.IsReplica(nodes[1]) {
		t.Errorf("q=1 must force a replica at the client's parent: %v", sol.Replicas())
	}
	for _, p := range replica.Policies {
		qs, err := replica.SolveQoS(in, p)
		if err != nil {
			t.Errorf("SolveQoS(%v): %v", p, err)
			continue
		}
		if verr := qs.Validate(in, p); verr != nil {
			t.Errorf("SolveQoS(%v): invalid: %v", p, verr)
		}
	}
}

func TestFacadeOptimize(t *testing.T) {
	in, _, _ := buildSmall(t)
	start, err := replica.MixedBest(in)
	if err != nil {
		t.Fatal(err)
	}
	model := replica.CostModel{Alpha: 1, Beta: 0.5}
	sol, cost, err := replica.Optimize(in, start, replica.OptimizeOptions{Model: model})
	if err != nil {
		t.Fatal(err)
	}
	if cost > model.Cost(in, start)+1e-9 {
		t.Errorf("optimize worsened: %v vs %v", cost, model.Cost(in, start))
	}
	if err := sol.Validate(in, replica.Multiple); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeRender(t *testing.T) {
	in, _, _ := buildSmall(t)
	sol, _ := replica.OptimalMultipleHomogeneous(in)
	var sb strings.Builder
	if err := replica.RenderTree(&sb, in, sol); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "*replica") {
		t.Errorf("render missing replicas:\n%s", sb.String())
	}
	sb.Reset()
	if err := replica.RenderSummary(&sb, in, sol); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "storage cost") {
		t.Errorf("summary missing cost:\n%s", sb.String())
	}
}
