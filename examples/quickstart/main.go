// Quickstart: build a small distribution tree by hand, place replicas
// optimally under the Multiple policy, compare with a heuristic and the
// LP lower bound.
package main

import (
	"context"
	"fmt"
	"log"

	replica "repro"
)

func main() {
	// A three-level tree: the root serves two regional nodes; each region
	// serves two access nodes; clients hang off the access nodes.
	//
	//                     root
	//            regionA        regionB
	//           a1     a2      b1     b2
	//          30,20  25      40     15,10
	b := replica.NewTreeBuilder()
	root := b.AddRoot()
	regionA := b.AddNode(root)
	regionB := b.AddNode(root)
	a1 := b.AddNode(regionA)
	a2 := b.AddNode(regionA)
	b1 := b.AddNode(regionB)
	b2 := b.AddNode(regionB)

	demands := map[int]int64{}
	for _, d := range []struct {
		parent int
		r      int64
	}{{a1, 30}, {a1, 20}, {a2, 25}, {b1, 40}, {b2, 15}, {b2, 10}} {
		demands[b.AddClient(d.parent)] = d.r
	}
	t, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	in := replica.NewInstance(t)
	for _, n := range []int{root, regionA, regionB, a1, a2, b1, b2} {
		in.W[n] = 50 // each server handles 50 requests/s
		in.S[n] = 1  // homogeneous: count replicas
	}
	for c, r := range demands {
		in.R[c] = r
	}
	fmt.Printf("tree: %v, total demand %d, load λ = %.2f\n\n",
		t, in.TotalRequests(), in.Load())

	// The paper's optimal algorithm for Multiple on homogeneous platforms.
	opt, err := replica.OptimalMultipleHomogeneous(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal Multiple placement: %d replicas at %v\n",
		opt.ReplicaCount(), opt.Replicas())
	fmt.Printf("  assignment: %v\n\n", opt)

	// A heuristic for comparison.
	mb, err := replica.MixedBest(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MixedBest heuristic: %d replicas at %v\n", mb.ReplicaCount(), mb.Replicas())

	// And the LP lower bound certifying quality.
	bound, exact, err := replica.LowerBound(context.Background(), in, replica.Multiple, 200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LP lower bound: %.1f (exact=%v) — optimal is within [%.0f, %d]\n",
		bound, exact, bound, opt.StorageCost(in))
}
