// Multiobject demonstrates the Section 8.1 extension: a distribution tree
// serving two object types — a popular video catalogue and a software
// update channel — with shared server capacity and per-object storage
// costs. The joint greedy placement is compared against the coupled LP
// lower bound.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/multiobject"
	"repro/internal/tree"
)

func main() {
	rng := rand.New(rand.NewSource(81))

	// Two-level tree: root, 4 regional nodes, 3 clients each.
	b := tree.NewBuilder()
	root := b.AddRoot()
	nodes := []int{root}
	var clients []int
	for r := 0; r < 4; r++ {
		region := b.AddNode(root)
		nodes = append(nodes, region)
		for c := 0; c < 3; c++ {
			clients = append(clients, b.AddClient(region))
		}
	}
	base := core.NewInstance(b.MustBuild())
	for _, n := range nodes {
		base.W[n] = 300
	}

	mi := multiobject.New(base, 2)
	const video, updates = 0, 1
	for _, c := range clients {
		mi.R[video][c] = 40 + rng.Int63n(60)  // heavy, interactive
		mi.R[updates][c] = 5 + rng.Int63n(20) // light, bursty
	}
	for _, n := range nodes {
		mi.S[video][n] = 10 // a video replica is expensive to store
		mi.S[updates][n] = 2
	}
	if err := mi.Validate(); err != nil {
		log.Fatal(err)
	}

	var vidTotal, updTotal int64
	for _, c := range clients {
		vidTotal += mi.R[video][c]
		updTotal += mi.R[updates][c]
	}
	fmt.Printf("two-object instance: %d video req/s + %d update req/s over %d shared-capacity nodes\n\n",
		vidTotal, updTotal, len(nodes))

	sol, err := multiobject.GreedyMultiple(mi)
	if err != nil {
		log.Fatalf("greedy: %v", err)
	}
	if err := sol.Validate(mi, core.Multiple); err != nil {
		log.Fatalf("invalid: %v", err)
	}
	fmt.Printf("joint greedy placement: cost %d\n", sol.Cost(mi))
	fmt.Printf("  video replicas:  %v\n", sol.PerObject[video].Replicas())
	fmt.Printf("  update replicas: %v\n", sol.PerObject[updates].Replicas())

	bound, err := multiobject.RationalBound(mi)
	if err != nil {
		log.Fatalf("bound: %v", err)
	}
	fmt.Printf("coupled LP lower bound: %.1f (greedy within %.0f%%)\n",
		bound, 100*float64(sol.Cost(mi))/bound)
}
