// Policies walks through the pedagogical instances of Section 3
// (Figures 1-5), demonstrating programmatically that the access-policy
// hierarchy Closest < Upwards < Multiple is strict: each new policy
// solves instances the previous cannot, and can be arbitrarily cheaper.
package main

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/exact"
)

func feasibility(in *core.Instance) string {
	out := ""
	for _, p := range core.Policies {
		_, err := exact.BruteForce(context.Background(), in, p)
		mark := "yes"
		if err != nil {
			mark = "no "
		}
		out += fmt.Sprintf("  %-8s %s", p, mark)
	}
	return out
}

func cost(in *core.Instance, p core.Policy) int64 {
	sol, err := exact.BruteForce(context.Background(), in, p)
	if err != nil {
		return -1
	}
	return sol.StorageCost(in)
}

func main() {
	fmt.Println("Figure 1 — existence of solutions (2-node chain, W = 1):")
	fmt.Printf("  (a) one client, 1 request:  %s\n", feasibility(core.Figure1('a')))
	fmt.Printf("  (b) two clients, 1 each:    %s\n", feasibility(core.Figure1('b')))
	fmt.Printf("  (c) one client, 2 requests: %s\n", feasibility(core.Figure1('c')))
	fmt.Println()

	fmt.Println("Figure 2 — Upwards arbitrarily better than Closest:")
	for _, n := range []int{2, 3, 4} {
		in := core.Figure2(n)
		fmt.Printf("  n=%d: Closest needs %d replicas, Upwards needs %d\n",
			n, cost(in, core.Closest), cost(in, core.Upwards))
	}
	fmt.Println()

	fmt.Println("Figure 3 — Multiple ~2x better than Upwards (homogeneous):")
	for _, n := range []int{2, 3} {
		in := core.Figure3(n)
		mu, _ := exact.MultipleHomogeneous(in)
		fmt.Printf("  n=%d: Upwards needs %d replicas, Multiple needs %d\n",
			n, cost(in, core.Upwards), mu.ReplicaCount())
	}
	fmt.Println()

	fmt.Println("Figure 4 — Multiple arbitrarily better than Upwards (heterogeneous):")
	for _, k := range []int64{5, 20, 100} {
		in := core.Figure4(5, k)
		fmt.Printf("  K=%3d: Upwards cost %4d, Multiple cost %d\n",
			k, cost(in, core.Upwards), cost(in, core.Multiple))
	}
	fmt.Println()

	fmt.Println("Figure 5 — every policy can sit arbitrarily above the trivial bound:")
	for _, n := range []int{2, 4} {
		in := core.Figure5(n, 8)
		fmt.Printf("  n=%d: trivial bound ⌈Σr/W⌉ = %d, actual optimum (any policy) = %d\n",
			n, in.TrivialLowerBound(), cost(in, core.Multiple))
	}
}
