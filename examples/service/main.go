// The service example runs the placement engine as an in-process HTTP
// service (exactly what cmd/rpserve serves) and drives it as a client:
// generate an instance over the wire, solve it twice to show the
// canonical-hash cache, and fetch an LP bound for comparison.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	replica "repro"
)

func main() {
	engine := replica.NewEngine(replica.EngineOptions{Workers: 4})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		engine.Close(ctx)
	}()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: replica.NewServiceHandler(engine)}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Println("serving on", base)

	// 1. Generate a seeded random instance over the wire.
	var gen struct {
		Instance json.RawMessage `json:"instance"`
		Load     float64         `json:"load"`
		Vertices int             `json:"vertices"`
	}
	post(base+"/v1/generate", map[string]any{
		"config": map[string]any{"Internal": 12, "Clients": 24, "Lambda": 0.4, "UnitCosts": true},
		"seed":   7,
	}, &gen)
	fmt.Printf("generated instance: %d vertices, load %.2f\n", gen.Vertices, gen.Load)

	// 2. Solve it twice with MixedBest: the second hit is served from
	// the cache without recomputation.
	type solveResp struct {
		Solver    string  `json:"solver"`
		Cost      int64   `json:"cost"`
		Replicas  []int   `json:"replicas"`
		Cached    bool    `json:"cached"`
		ElapsedMS float64 `json:"elapsed_ms"`
	}
	req := map[string]any{"instance": gen.Instance, "solver": "MB"}
	for i := 1; i <= 2; i++ {
		var r solveResp
		post(base+"/v1/solve", req, &r)
		fmt.Printf("solve #%d: %s cost=%d replicas=%v cached=%v (%.2fms)\n",
			i, r.Solver, r.Cost, r.Replicas, r.Cached, r.ElapsedMS)
	}

	// 3. Compare against the refined LP lower bound.
	var b struct {
		Solver string `json:"solver"`
		Bound  struct {
			Value float64 `json:"value"`
			Exact bool    `json:"exact"`
		} `json:"bound"`
	}
	post(base+"/v1/bound", map[string]any{"instance": gen.Instance, "policy": "Multiple"}, &b)
	fmt.Printf("%s: lower bound %.2f (exact=%v)\n", b.Solver, b.Bound.Value, b.Bound.Exact)
}

func post(url string, body, out any) {
	data, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, e["error"])
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
