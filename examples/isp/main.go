// ISP models a heterogeneous service-provider tree with QoS constraints:
// big iron near the core, small boxes at the edge, and latency-sensitive
// clients that must be served within a bounded number of hops. The
// example computes the LP lower bound, runs QoS-aware heuristics, and
// shows how tightening the QoS bound forces replicas toward the edge and
// drives the cost up.
package main

import (
	"context"
	"fmt"
	"log"

	replica "repro"
	"repro/internal/heuristics"
)

// buildISP returns a 3-level heterogeneous tree: core (capacity 600),
// 3 aggregation switches (capacity 200), 9 edge boxes (capacity 60), two
// clients per edge box. Storage cost equals capacity (Replica Cost).
func buildISP(qos int) (*replica.Instance, error) {
	b := replica.NewTreeBuilder()
	core := b.AddRoot()
	type tier struct {
		id int
		w  int64
	}
	nodes := []tier{{core, 600}}
	var clients []int
	for a := 0; a < 3; a++ {
		agg := b.AddNode(core)
		nodes = append(nodes, tier{agg, 200})
		for e := 0; e < 3; e++ {
			edge := b.AddNode(agg)
			nodes = append(nodes, tier{edge, 60})
			clients = append(clients, b.AddClient(edge), b.AddClient(edge))
		}
	}
	t, err := b.Build()
	if err != nil {
		return nil, err
	}
	in := replica.NewInstance(t)
	for _, n := range nodes {
		in.W[n.id] = n.w
		in.S[n.id] = n.w
	}
	for i, c := range clients {
		in.R[c] = int64(20 + 7*(i%5)) // 20..48 requests per client
	}
	if qos > 0 {
		in.Q = make([]int, t.Len())
		for i := range in.Q {
			in.Q[i] = replica.NoQoS
		}
		for _, c := range clients {
			in.Q[c] = qos
		}
	}
	return in, nil
}

func main() {
	for _, qos := range []int{0, 3, 2, 1} {
		in, err := buildISP(qos)
		if err != nil {
			log.Fatal(err)
		}
		label := "no QoS bound"
		if qos > 0 {
			label = fmt.Sprintf("QoS ≤ %d hops", qos)
		}
		fmt.Printf("=== %s ===\n", label)
		fmt.Printf("demand %d, capacity %d (λ = %.2f)\n",
			in.TotalRequests(), in.TotalCapacity(), in.Load())

		bound, exact, err := replica.LowerBound(context.Background(), in, replica.Multiple, 300)
		if err != nil {
			fmt.Printf("lower bound: infeasible (%v)\n\n", err)
			continue
		}
		fmt.Printf("LP lower bound: %.0f (exact=%v)\n", bound, exact)

		for _, h := range heuristics.AllQoS {
			sol, err := h.Run(in)
			if err != nil {
				fmt.Printf("  %-9s (%s): no solution\n", h.Name, h.Policy)
				continue
			}
			if verr := sol.Validate(in, h.Policy); verr != nil {
				log.Fatalf("%s: invalid solution: %v", h.Name, verr)
			}
			fmt.Printf("  %-9s (%s): cost %5d with %d replicas, quality %.0f%% of bound\n",
				h.Name, h.Policy, sol.StorageCost(in), sol.ReplicaCount(),
				100*bound/float64(sol.StorageCost(in)))
		}
		fmt.Println()
	}
}
