// VOD models the paper's motivating application: a video-on-demand
// provider deploys a four-level distribution tree (origin, regional hubs,
// metro PoPs, street cabinets) and must decide which locations get a
// cache replica. Demand is known per neighbourhood; every cache sustains
// a fixed request rate. The example compares the three access policies on
// the same network and shows the savings unlocked by Upwards and Multiple.
package main

import (
	"fmt"
	"log"
	"math/rand"

	replica "repro"
)

func main() {
	rng := rand.New(rand.NewSource(2007))

	// Topology: 1 origin, 3 regions, 3 metros per region, 3 cabinets per
	// metro, one client (neighbourhood) per cabinet plus one per metro.
	b := replica.NewTreeBuilder()
	origin := b.AddRoot()
	var nodes []int
	nodes = append(nodes, origin)
	demand := map[int]int64{}
	for r := 0; r < 3; r++ {
		region := b.AddNode(origin)
		nodes = append(nodes, region)
		for m := 0; m < 3; m++ {
			metro := b.AddNode(region)
			nodes = append(nodes, metro)
			demand[b.AddClient(metro)] = 20 + rng.Int63n(40) // metro-direct subscribers
			for c := 0; c < 3; c++ {
				cab := b.AddNode(metro)
				nodes = append(nodes, cab)
				demand[b.AddClient(cab)] = 30 + rng.Int63n(70)
			}
		}
	}
	t, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	in := replica.NewInstance(t)
	for _, n := range nodes {
		in.W[n] = 200 // each cache sustains 200 concurrent streams
		in.S[n] = 1
	}
	for c, r := range demand {
		in.R[c] = r
	}
	fmt.Printf("VOD network: %v\n", t)
	fmt.Printf("total demand %d streams, aggregate cache capacity %d (λ = %.2f)\n\n",
		in.TotalRequests(), in.TotalCapacity(), in.Load())

	// Closest (the classical CDN policy): the first cache above each
	// neighbourhood serves all of its streams.
	closest, err := replica.OptimalClosestHomogeneous(in)
	if err != nil {
		log.Fatalf("Closest: %v", err)
	}
	fmt.Printf("Closest policy (optimal):  %2d caches %v\n", closest.ReplicaCount(), closest.Replicas())

	// Upwards: heuristic placement (optimal Upwards is NP-hard even here).
	if up, err := replica.Solve(in, "UBCF"); err == nil {
		fmt.Printf("Upwards policy (UBCF):     %2d caches %v\n", up.ReplicaCount(), up.Replicas())
	} else {
		fmt.Println("Upwards policy (UBCF):     no solution")
	}

	// Multiple: provably optimal via the paper's algorithm.
	multi, err := replica.OptimalMultipleHomogeneous(in)
	if err != nil {
		log.Fatalf("Multiple: %v", err)
	}
	fmt.Printf("Multiple policy (optimal): %2d caches %v\n\n", multi.ReplicaCount(), multi.Replicas())

	// How many streams cross the regional backbone under each policy?
	// (The read cost counts stream-hops; splitting keeps traffic local.)
	fmt.Printf("stream-hops (read cost): Closest %d, Multiple %d\n",
		closest.ReadCost(in), multi.ReadCost(in))
	fmt.Printf("savings: %d caches -> %d caches (%.0f%%)\n",
		closest.ReplicaCount(), multi.ReplicaCount(),
		100*(1-float64(multi.ReplicaCount())/float64(closest.ReplicaCount())))
}
