#!/usr/bin/env bash
# Two-worker cluster walkthrough (and multi-process e2e).
#
# Starts two rpworker shards and one rpserve coordinator over them,
# submits a sharded campaign job, waits for it to finish, and compares
# the merged CSV result byte-for-byte against the same campaign run on
# a plain single-process rpserve.
#
#   ./examples/cluster/run.sh                # plain walkthrough
#   KILL_WORKER=1 ./examples/cluster/run.sh  # kill worker 1 mid-run:
#                                            # the job must still finish
#                                            # on the survivor with an
#                                            # identical result
#   JOIN_WORKER=1 ./examples/cluster/run.sh  # dynamic membership e2e:
#                                            # the coordinator starts over
#                                            # worker 1 alone; mid-campaign
#                                            # worker 2 self-registers
#                                            # (rpworker -register) and
#                                            # worker 1 is deregistered
#                                            # (DELETE /v1/cluster/shards)
#                                            # and killed — the job must
#                                            # finish on the newcomer with
#                                            # an identical result
#
# The walkthrough also exercises the binary wire transport and the
# membership auth: cluster traffic runs over rp-wire/2 (asserted via
# rp_cluster_wire_rows_total), a repeated inline batch must be served
# from the coordinator's caches without re-contacting a shard
# (rp_cluster_batch_cache_short_circuit_total), and membership changes
# require the shared -cluster-secret (an unauthenticated POST must 401).
#
# Distributed tracing rides along: the inline batch is submitted under
# an explicit X-RP-Trace-Id, and obscheck fetches GET /v1/traces/{id}
# from the coordinator asserting one assembled span tree containing
# both coordinator spans and worker spans shipped back over the wire.
#
# Every daemon runs with -log-format json; at the end the obscheck
# helper asserts every emitted log line is valid structured JSON,
# scrapes /metrics from the coordinator and a worker through the strict
# exposition parser, and prints a per-shard latency summary from the
# rp_cluster_shard_rtt_seconds histograms.
#
# The default mode also closes the placement-session loop end to end:
# it registers the walkthrough instance as a live session (solver mg),
# attaches a watcher from revision 0, streams a hundred set_rate deltas
# through PATCH /v1/instances/{id}, and has obscheck fold the captured
# NDJSON diffs — asserting the folded replica set and cost are
# byte-identical to a cold /v1/solve of the mutated instance fetched
# back with ?include_instance=1.
#
# The default mode also walks the cluster control plane: one scrape of
# GET /v1/cluster/metrics must cover every live shard (validated by the
# strict parser, every series shard-labeled), a hot-joined worker must
# enter the federation and — after a SIGKILL — expire back out of it
# with a shard_expired event in /debug/events, and a dedicated daemon
# with a deliberately impossible latency SLO must flip /healthz to
# "degraded" with a burn-rate alert firing in /v1/alerts.
#
# Needs only bash + curl (+ go to build). Ports via W1_PORT/W2_PORT/
# COORD_PORT/SINGLE_PORT/W3_PORT/SLO_PORT (defaults 18081/18082/18080/
# 18083/18084/18085).
set -euo pipefail

cd "$(dirname "$0")/../.."

W1_PORT=${W1_PORT:-18081}
W2_PORT=${W2_PORT:-18082}
COORD_PORT=${COORD_PORT:-18080}
SINGLE_PORT=${SINGLE_PORT:-18083}
W3_PORT=${W3_PORT:-18084}
SLO_PORT=${SLO_PORT:-18085}
KILL_WORKER=${KILL_WORKER:-0}
JOIN_WORKER=${JOIN_WORKER:-0}
SECRET=${SECRET:-walkthrough-secret}
if [ "$KILL_WORKER" = "1" ] && [ "$JOIN_WORKER" = "1" ]; then
  echo "KILL_WORKER and JOIN_WORKER are mutually exclusive" >&2
  exit 1
fi

BIN=$(mktemp -d)
JOBS_DIR=$(mktemp -d)
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$BIN" "$JOBS_DIR"
}
trap cleanup EXIT

say() { echo "==> $*"; }

say "building rpserve + rpworker + obscheck"
go build -o "$BIN/rpserve" ./cmd/rpserve
go build -o "$BIN/rpworker" ./cmd/rpworker
go build -o "$BIN/obscheck" ./examples/cluster/obscheck

LOGS="$BIN/logs"
mkdir -p "$LOGS"
OBS_FLAGS=(-log-format json -slow-request 2s)

wait_ready() { # url
  for _ in $(seq 1 100); do
    if curl -sf "$1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "daemon at $1 never became ready" >&2
  return 1
}

json_field() { # name  (first string occurrence on stdin)
  sed -n "s/.*\"$1\":\"\\([^\"]*\\)\".*/\\1/p" | head -n1
}
json_int() { # name
  sed -n "s/.*\"$1\":\\([0-9][0-9]*\\).*/\\1/p" | head -n1
}
json_array() { # name  (first flat-array occurrence on stdin)
  sed -n "s/.*\"$1\":\\(\\[[^]]*\\]\\).*/\\1/p" | head -n1
}

if [ "$JOIN_WORKER" = "1" ]; then
  say "starting worker 1 only (:$W1_PORT) — worker 2 will hot-join mid-run"
  "$BIN/rpworker" -addr "127.0.0.1:$W1_PORT" "${OBS_FLAGS[@]}" 2>"$LOGS/w1.log" &
  W1_PID=$!; PIDS+=("$W1_PID")
  wait_ready "http://127.0.0.1:$W1_PORT"

  say "starting the coordinator (:$COORD_PORT) over worker 1 alone"
  "$BIN/rpserve" -addr "127.0.0.1:$COORD_PORT" \
    -shards "127.0.0.1:$W1_PORT" -cluster-secret "$SECRET" \
    -jobs-dir "$JOBS_DIR" -job-ttl 24h "${OBS_FLAGS[@]}" 2>"$LOGS/coord.log" &
  PIDS+=("$!")
else
  say "starting two workers (:$W1_PORT, :$W2_PORT)"
  "$BIN/rpworker" -addr "127.0.0.1:$W1_PORT" "${OBS_FLAGS[@]}" 2>"$LOGS/w1.log" &
  W1_PID=$!; PIDS+=("$W1_PID")
  "$BIN/rpworker" -addr "127.0.0.1:$W2_PORT" "${OBS_FLAGS[@]}" 2>"$LOGS/w2.log" &
  PIDS+=("$!")
  wait_ready "http://127.0.0.1:$W1_PORT"
  wait_ready "http://127.0.0.1:$W2_PORT"

  say "starting the coordinator (:$COORD_PORT) over both shards"
  "$BIN/rpserve" -addr "127.0.0.1:$COORD_PORT" \
    -shards "127.0.0.1:$W1_PORT,127.0.0.1:$W2_PORT" -cluster-secret "$SECRET" \
    -federate-interval 300ms -shard-expire 2 \
    -jobs-dir "$JOBS_DIR" -job-ttl 24h "${OBS_FLAGS[@]}" 2>"$LOGS/coord.log" &
  PIDS+=("$!")
fi
COORD="http://127.0.0.1:$COORD_PORT"
wait_ready "$COORD"

say "remote solver sanity check: optimal@remote through the pool"
INSTANCE=$(curl -sf "$COORD/v1/generate" \
  -d '{"config":{"Internal":10,"Clients":20,"Lambda":0.4,"UnitCosts":true},"seed":7}' |
  sed 's/^{"instance"://; s/,"load".*$//')
curl -sf "$COORD/v1/solve" -d "{\"instance\":$INSTANCE,\"solver\":\"optimal@remote\"}" |
  grep -o '"cost":[0-9]*' || { echo "remote solve failed" >&2; exit 1; }

say "membership endpoints require the shared secret (expect 401 without it)"
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$COORD/v1/cluster/shards" \
  -d '{"addr":"127.0.0.1:1"}')
[ "$CODE" = "401" ] || { echo "unauthenticated membership POST got $CODE, want 401" >&2; exit 1; }

say "inline batch over the binary wire transport (traced)"
PARENTS=$(echo "$INSTANCE" | json_array parents)
ISCLIENT=$(echo "$INSTANCE" | json_array is_client)
REQS=$(echo "$INSTANCE" | json_array requests)
CAPS=$(echo "$INSTANCE" | json_array capacities)
STOR=$(echo "$INSTANCE" | json_array storage_costs)
BATCH="{\"topology\":{\"parents\":$PARENTS,\"is_client\":$ISCLIENT},\"solver\":\"mb@remote\",\"base\":{\"requests\":$REQS,\"capacities\":$CAPS,\"storage_costs\":$STOR},\"variations\":[{},{},{}]}"
TRACE_ID="walkthrough-batch-$$"
curl -sf -H "X-RP-Trace-Id: $TRACE_ID" "$COORD/v1/batch" -d "$BATCH" >/dev/null
"$BIN/obscheck" assert "$COORD" rp_cluster_wire_rows_total 1

say "assembled span tree for trace $TRACE_ID (coordinator + worker spans)"
"$BIN/obscheck" trace "$COORD" "$TRACE_ID" \
  http.request cluster.route_batch cluster.batch_chunk \
  cluster.wire_exchange wire.batch engine.solve

say "repeating the identical batch: served from the coordinator's caches"
curl -sf "$COORD/v1/batch" -d "$BATCH" >/dev/null
"$BIN/obscheck" assert "$COORD" rp_cluster_batch_cache_short_circuit_total 1

CAMPAIGN='{"Lambdas":[0.1,0.25,0.4,0.55,0.7,0.85],"TreesPerLambda":4,"MinSize":15,"MaxSize":40,"Seed":7,"BoundNodes":30}'

say "submitting a sharded campaign job"
SUBMIT=$(curl -sf "$COORD/v1/jobs" -d "{\"campaign\":$CAMPAIGN}")
JOB_ID=$(echo "$SUBMIT" | json_field id)
[ -n "$JOB_ID" ] || { echo "no job id in: $SUBMIT" >&2; exit 1; }
say "job $JOB_ID accepted"

wait_first_row() {
  for _ in $(seq 1 600); do
    DONE=$(curl -sf "$COORD/v1/jobs/$JOB_ID" | json_int rows_done)
    [ "${DONE:-0}" -ge 1 ] && return 0
    sleep 0.1
  done
  echo "job never checkpointed a row" >&2
  return 1
}

if [ "$KILL_WORKER" = "1" ]; then
  say "waiting for the first checkpointed row, then killing worker 1"
  wait_first_row
  kill -9 "$W1_PID"
  say "worker 1 (pid $W1_PID) killed mid-run; the survivor must finish the job"
fi

if [ "$JOIN_WORKER" = "1" ]; then
  say "waiting for the first checkpointed row, then churning the membership"
  wait_first_row

  say "hot-registering worker 2 (:$W2_PORT) via rpworker -register"
  "$BIN/rpworker" -addr "127.0.0.1:$W2_PORT" \
    -register "$COORD" -advertise "127.0.0.1:$W2_PORT" -register-interval 1s \
    -cluster-secret "$SECRET" \
    "${OBS_FLAGS[@]}" 2>"$LOGS/w2.log" &
  PIDS+=("$!")
  for _ in $(seq 1 100); do
    if curl -sf "$COORD/v1/cluster/shards" | grep -q ":$W2_PORT"; then break; fi
    sleep 0.1
  done
  curl -sf "$COORD/v1/cluster/shards" | grep -q ":$W2_PORT" ||
    { echo "worker 2 never appeared in the membership" >&2; exit 1; }
  say "worker 2 joined (epoch $(curl -sf "$COORD/v1/cluster/shards" | json_int epoch))"

  say "deregistering and killing worker 1 mid-run"
  curl -sf -X DELETE -H "X-RP-Cluster-Secret: $SECRET" \
    "$COORD/v1/cluster/shards?addr=127.0.0.1:$W1_PORT" >/dev/null
  kill -9 "$W1_PID"
  say "membership is now worker 2 alone; the job must finish there"
fi

say "waiting for the job to succeed"
STATE=""
for _ in $(seq 1 1200); do
  STATE=$(curl -sf "$COORD/v1/jobs/$JOB_ID" | json_field state)
  case "$STATE" in
    succeeded) break ;;
    failed) curl -sf "$COORD/v1/jobs/$JOB_ID"; echo; echo "job failed" >&2; exit 1 ;;
  esac
  sleep 0.1
done
[ "$STATE" = "succeeded" ] || { echo "job stuck in state '$STATE'" >&2; exit 1; }
curl -sf "$COORD/v1/jobs/$JOB_ID/result?format=csv" > "$BIN/sharded.csv"
say "sharded result: $(wc -l < "$BIN/sharded.csv") CSV lines"

say "per-shard latency summary from the coordinator's histograms"
"$BIN/obscheck" latency "$COORD"

say "scraping /metrics through the strict exposition parser"
"$BIN/obscheck" metrics "$COORD" "http://127.0.0.1:$W2_PORT"

if [ "$KILL_WORKER" = "0" ] && [ "$JOIN_WORKER" = "0" ]; then
  say "federated cluster metrics: one scrape must cover both shards"
  "$BIN/obscheck" federate "$COORD" 2

  say "hot-joining worker 3 (:$W3_PORT): it must enter the federation"
  "$BIN/rpworker" -addr "127.0.0.1:$W3_PORT" \
    -register "$COORD" -advertise "127.0.0.1:$W3_PORT" -register-interval 1s \
    -cluster-secret "$SECRET" "${OBS_FLAGS[@]}" 2>"$LOGS/w3.log" &
  W3_PID=$!; PIDS+=("$W3_PID")
  "$BIN/obscheck" federate "$COORD" 3
  "$BIN/obscheck" event "$COORD" shard_joined

  say "SIGKILLing worker 3: it must expire out of membership and federation"
  kill -9 "$W3_PID"
  "$BIN/obscheck" event "$COORD" shard_expired
  "$BIN/obscheck" federate "$COORD" 2

  say "latency-SLO breach on a dedicated daemon (:$SLO_PORT, p99 objective 100µs)"
  "$BIN/rpserve" -addr "127.0.0.1:$SLO_PORT" \
    -slo-availability 0.999 -slo-latency-p99 100us \
    "${OBS_FLAGS[@]}" 2>"$LOGS/slo.log" &
  PIDS+=("$!")
  SLO="http://127.0.0.1:$SLO_PORT"
  wait_ready "$SLO"
  "$BIN/obscheck" alerts "$SLO" ok
  say "20 solves against a 100µs objective: the burn rate must page"
  for _ in $(seq 1 20); do
    curl -sf "$SLO/v1/solve" -d "{\"instance\":$INSTANCE,\"solver\":\"optimal\"}" >/dev/null
  done
  "$BIN/obscheck" alerts "$SLO" degraded
  "$BIN/obscheck" event "$SLO" alert_fired
  "$BIN/obscheck" assert "$SLO" rp_slo_alerts_firing 1
  curl -sf "$SLO/healthz" | grep -q '"status":"degraded"' ||
    { echo "healthz verdict did not degrade under a breached latency SLO" >&2; exit 1; }
  say "healthz reports degraded, alert journaled and exported"
fi

say "running the same campaign on a single-process rpserve (:$SINGLE_PORT)"
"$BIN/rpserve" -addr "127.0.0.1:$SINGLE_PORT" "${OBS_FLAGS[@]}" 2>"$LOGS/single.log" &
PIDS+=("$!")
SINGLE="http://127.0.0.1:$SINGLE_PORT"
wait_ready "$SINGLE"
REF_ID=$(curl -sf "$SINGLE/v1/jobs" -d "{\"campaign\":$CAMPAIGN}" | json_field id)
for _ in $(seq 1 1200); do
  STATE=$(curl -sf "$SINGLE/v1/jobs/$REF_ID" | json_field state)
  case "$STATE" in
    succeeded) break ;;
    failed) echo "reference job failed" >&2; exit 1 ;;
  esac
  sleep 0.1
done
curl -sf "$SINGLE/v1/jobs/$REF_ID/result?format=csv" > "$BIN/single.csv"

say "comparing merged CSVs"
if ! cmp "$BIN/sharded.csv" "$BIN/single.csv"; then
  echo "sharded and single-process results differ" >&2
  exit 1
fi

if [ "$KILL_WORKER" = "0" ] && [ "$JOIN_WORKER" = "0" ]; then
  N_DELTAS=100
  say "placement session e2e: $N_DELTAS watched deltas vs a cold solve"
  SID=$(curl -sf "$SINGLE/v1/instances" \
    -d "{\"instance\":$INSTANCE,\"solver\":\"mg\"}" | json_field id)
  [ -n "$SID" ] || { echo "session registration returned no id" >&2; exit 1; }

  WATCH="$BIN/watch.ndjson"
  curl -sN "$SINGLE/v1/instances/$SID/watch?from_rev=0" > "$WATCH" &
  WATCH_PID=$!; PIDS+=("$WATCH_PID")

  # Client vertex ids from the instance's is_client vector (0-based).
  mapfile -t SESSION_CLIENTS < <(echo "$ISCLIENT" | tr -d '[] ' | tr ',' '\n' |
    awk '$1 == "true" {print NR - 1}')
  NC=${#SESSION_CLIENTS[@]}
  [ "$NC" -ge 1 ] || { echo "no clients parsed from $ISCLIENT" >&2; exit 1; }

  say "patching session $SID: set_rate over $NC clients"
  for i in $(seq 1 "$N_DELTAS"); do
    V=${SESSION_CLIENTS[$(( i % NC ))]}
    RATE=$(( (i * 7) % 23 + 1 ))
    curl -sf -X PATCH "$SINGLE/v1/instances/$SID" \
      -d "{\"ops\":[{\"op\":\"set_rate\",\"vertex\":$V,\"value\":$RATE}]}" >/dev/null
  done

  WANT_REV=$(( N_DELTAS + 1 ))
  for _ in $(seq 1 100); do
    grep -q "\"rev\":$WANT_REV" "$WATCH" 2>/dev/null && break
    sleep 0.1
  done
  grep -q "\"rev\":$WANT_REV" "$WATCH" ||
    { echo "watch stream never delivered rev $WANT_REV" >&2; exit 1; }
  kill "$WATCH_PID" 2>/dev/null || true

  "$BIN/obscheck" session "$SINGLE" "$SID" "$WATCH" "$WANT_REV"
  "$BIN/obscheck" assert "$SINGLE" rp_session_deltas_total "$N_DELTAS"
  curl -sf -X DELETE "$SINGLE/v1/instances/$SID" >/dev/null || true
fi

say "cluster health after the run:"
curl -sf "$COORD/healthz" | tr ',' '\n' | grep -E '"addr"|"state"|"failovers"' || true

# Every line each daemon wrote to stderr must be structured JSON —
# including net/http's own error logging, which the daemons route
# through the slog handler. Worker 1's log is skipped in the modes that
# SIGKILL it: a kill can tear its final line mid-write.
say "validating structured JSON logs"
LOG_FILES=("$LOGS/coord.log" "$LOGS/single.log")
if [ "$KILL_WORKER" = "0" ] && [ "$JOIN_WORKER" = "0" ]; then
  LOG_FILES+=("$LOGS/w1.log" "$LOGS/slo.log")
fi
[ -f "$LOGS/w2.log" ] && LOG_FILES+=("$LOGS/w2.log")
"$BIN/obscheck" logs "${LOG_FILES[@]}"

SUFFIX=""
[ "$KILL_WORKER" = "1" ] && SUFFIX=" (with a worker killed mid-run)"
[ "$JOIN_WORKER" = "1" ] && SUFFIX=" (with a worker hot-joined and the original deregistered mid-run)"
say "OK: sharded campaign result is byte-identical to the single-process run$SUFFIX"
