// Command obscheck is the observability sidekick of the cluster
// example (examples/cluster/run.sh) and of CI: it validates what the
// daemons emit, using the same strict exposition parser the unit tests
// use, so a malformed metric or a stray unstructured log line fails
// the walkthrough instead of scrolling by.
//
// Modes (the first argument):
//
//	obscheck logs FILE...
//	    every non-empty line of every file must parse as a JSON object
//	    (what -log-format json promises). Prints a per-file line count.
//
//	obscheck metrics URL...
//	    GET each URL's /metrics and strictly parse the Prometheus text
//	    exposition — HELP/TYPE pairing, label escaping, histogram
//	    bucket invariants. Prints family/sample counts.
//
//	obscheck latency URL
//	    GET URL/metrics and print a human latency summary: per-shard
//	    RTT (rp_cluster_shard_rtt_seconds), batch chunk and reorder
//	    waits, and per-solver compute times, each as count + mean.
//
//	obscheck assert URL METRIC MIN
//	    GET URL/metrics and fail unless the samples of family METRIC
//	    (summed across label sets) total at least MIN. run.sh uses it
//	    to pin behavior — e.g. that the binary wire transport actually
//	    carried rows (rp_cluster_wire_rows_total ≥ 1) and that a
//	    repeated batch short-circuited through the coordinator cache
//	    (rp_cluster_batch_cache_short_circuit_total ≥ 1).
//
//	obscheck trace URL TRACE_ID SPAN_NAME...
//	    GET URL/v1/traces/TRACE_ID and fail unless the assembled span
//	    tree has a single root and contains every named span. run.sh
//	    uses it to pin distributed tracing: a wire-routed batch must
//	    assemble coordinator spans (http.request, cluster.route_batch,
//	    cluster.wire_exchange) and worker spans shipped back over the
//	    wire (wire.batch, engine.solve) under the client's trace ID.
//
//	obscheck federate URL [SHARDS]
//	    GET URL/v1/cluster/metrics — the coordinator's merged cluster
//	    exposition — and strictly parse it. Every series must carry a
//	    `shard` label; with SHARDS given, retry briefly until exactly
//	    that many distinct non-coordinator shard values are present
//	    (the federation cache fills one scrape interval after a worker
//	    joins, and a killed worker's series leave with its membership).
//
//	obscheck alerts URL [VERDICT]
//	    GET URL/v1/alerts and print the SLO verdict plus any firing
//	    alerts. With VERDICT given (ok|degraded|critical), retry
//	    briefly until the verdict matches — run.sh uses it to pin that
//	    a latency-SLO breach flips the daemon to "degraded".
//
//	obscheck event URL TYPE
//	    GET URL/debug/events?type=TYPE and fail unless at least one
//	    matching event is journaled, retrying briefly (membership
//	    expiry lands a probe interval after the kill). Prints the
//	    newest matching event.
//
//	obscheck session URL ID WATCH_FILE WANT_REV
//	    Close the placement-session loop: fold the NDJSON diff stream
//	    captured from GET /v1/instances/ID/watch?from_rev=0 (revisions
//	    must be contiguous, no double-add, no unknown drop), require
//	    the fold to reach WANT_REV, and compare the folded replica set
//	    and cost against (a) the session's own status and (b) a cold
//	    POST /v1/solve of the mutated instance fetched back with
//	    ?include_instance=1. run.sh uses it to pin that a hundred
//	    watched deltas land exactly where a from-scratch solve does.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		fail("usage: obscheck logs FILE... | metrics URL... | latency URL")
	}
	mode, args := os.Args[1], os.Args[2:]
	switch mode {
	case "logs":
		if len(args) == 0 {
			fail("obscheck logs: no files given")
		}
		for _, path := range args {
			n, err := checkJSONLog(path)
			if err != nil {
				fail("obscheck logs: %s: %v", path, err)
			}
			fmt.Printf("obscheck: %s: %d JSON log line(s)\n", path, n)
		}
	case "metrics":
		if len(args) == 0 {
			fail("obscheck metrics: no URLs given")
		}
		for _, url := range args {
			fams, samples, err := checkMetrics(url)
			if err != nil {
				fail("obscheck metrics: %s: %v", url, err)
			}
			fmt.Printf("obscheck: %s/metrics: %d families, %d samples, exposition OK\n", url, fams, samples)
		}
	case "latency":
		if len(args) != 1 {
			fail("obscheck latency: want exactly one URL")
		}
		if err := printLatency(args[0]); err != nil {
			fail("obscheck latency: %s: %v", args[0], err)
		}
	case "trace":
		if len(args) < 2 {
			fail("obscheck trace: want URL TRACE_ID SPAN_NAME...")
		}
		if err := checkTrace(args[0], args[1], args[2:]); err != nil {
			fail("obscheck trace: %s: %v", args[1], err)
		}
	case "assert":
		if len(args) != 3 {
			fail("obscheck assert: want URL METRIC MIN")
		}
		min, err := strconv.ParseFloat(args[2], 64)
		if err != nil {
			fail("obscheck assert: bad minimum %q: %v", args[2], err)
		}
		total, err := sumMetric(args[0], args[1])
		if err != nil {
			fail("obscheck assert: %s: %v", args[0], err)
		}
		if total < min {
			fail("obscheck assert: %s: %s = %g, want >= %g", args[0], args[1], total, min)
		}
		fmt.Printf("obscheck: %s: %s = %g (>= %g)\n", args[0], args[1], total, min)
	case "federate":
		if len(args) != 1 && len(args) != 2 {
			fail("obscheck federate: want URL [SHARDS]")
		}
		want := -1
		if len(args) == 2 {
			n, err := strconv.Atoi(args[1])
			if err != nil || n < 0 {
				fail("obscheck federate: bad shard count %q", args[1])
			}
			want = n
		}
		if err := checkFederation(args[0], want); err != nil {
			fail("obscheck federate: %s: %v", args[0], err)
		}
	case "alerts":
		if len(args) != 1 && len(args) != 2 {
			fail("obscheck alerts: want URL [VERDICT]")
		}
		verdict := ""
		if len(args) == 2 {
			verdict = args[1]
		}
		if err := checkAlerts(args[0], verdict); err != nil {
			fail("obscheck alerts: %s: %v", args[0], err)
		}
	case "event":
		if len(args) != 2 {
			fail("obscheck event: want URL TYPE")
		}
		if err := checkEvent(args[0], args[1]); err != nil {
			fail("obscheck event: %s: %v", args[0], err)
		}
	case "session":
		if len(args) != 4 {
			fail("obscheck session: want URL ID WATCH_FILE WANT_REV")
		}
		wantRev, err := strconv.ParseUint(args[3], 10, 64)
		if err != nil {
			fail("obscheck session: bad revision %q: %v", args[3], err)
		}
		if err := checkSession(args[0], args[1], args[2], wantRev); err != nil {
			fail("obscheck session: %s: %v", args[1], err)
		}
	default:
		fail("obscheck: unknown mode %q (want logs|metrics|latency|assert|trace|federate|alerts|event|session)", mode)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// checkJSONLog requires every non-empty line to be one JSON object —
// the contract of -log-format json (including http.Server.ErrorLog,
// which the daemons route through the structured handler).
func checkJSONLog(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	n, lineNo := 0, 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var record map[string]any
		if err := json.Unmarshal([]byte(line), &record); err != nil {
			return n, fmt.Errorf("line %d is not a JSON object: %q", lineNo, line)
		}
		for _, key := range []string{"time", "level", "msg"} {
			if _, ok := record[key]; !ok {
				return n, fmt.Errorf("line %d lacks the %q field: %q", lineNo, key, line)
			}
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	if n == 0 {
		return 0, fmt.Errorf("no log lines at all")
	}
	return n, nil
}

func scrape(url string) (map[string]*obs.Family, error) {
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	return obs.ParseExposition(resp.Body)
}

func checkMetrics(url string) (families, samples int, err error) {
	fams, err := scrape(url)
	if err != nil {
		return 0, 0, err
	}
	for _, f := range fams {
		families++
		samples += len(f.Samples)
	}
	if families == 0 {
		return 0, 0, fmt.Errorf("exposition is empty")
	}
	return families, samples, nil
}

// sumMetric totals the family's plain samples (counter/gauge values —
// not histogram _sum/_count derivatives) across all label sets. An
// absent family counts as 0, so assertions read naturally against
// daemons that never exercised the code path.
func sumMetric(url, name string) (float64, error) {
	fams, err := scrape(url)
	if err != nil {
		return 0, err
	}
	f := fams[name]
	if f == nil {
		return 0, nil
	}
	total := 0.0
	for _, s := range f.Samples {
		if s.Name == name {
			total += s.Value
		}
	}
	return total, nil
}

// spanNode mirrors the service's traceNode JSON: one span plus its
// children, recursively.
type spanNode struct {
	Span struct {
		TraceID string `json:"trace_id"`
		Name    string `json:"name"`
	} `json:"span"`
	Children []spanNode `json:"children"`
}

// checkTrace fetches one assembled trace and requires a single root
// containing every named span. The root span lands in the flight
// recorder a hair after the traced response's body, and worker spans
// ride the next FrameDone, so the fetch retries briefly.
func checkTrace(url, id string, names []string) error {
	var lastErr error
	for attempt := 0; attempt < 50; attempt++ {
		if attempt > 0 {
			time.Sleep(100 * time.Millisecond)
		}
		resp, err := http.Get(url + "/v1/traces/" + id)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			lastErr = fmt.Errorf("GET /v1/traces/%s: status %d", id, resp.StatusCode)
			continue
		}
		var tree struct {
			TraceID string     `json:"trace_id"`
			Spans   int        `json:"spans"`
			Roots   []spanNode `json:"roots"`
		}
		err = json.NewDecoder(resp.Body).Decode(&tree)
		resp.Body.Close()
		if err != nil {
			return err
		}
		seen := map[string]int{}
		var walk func(n spanNode) error
		walk = func(n spanNode) error {
			if n.Span.TraceID != id {
				return fmt.Errorf("span %s carries trace %q, want %q", n.Span.Name, n.Span.TraceID, id)
			}
			seen[n.Span.Name]++
			for _, c := range n.Children {
				if err := walk(c); err != nil {
					return err
				}
			}
			return nil
		}
		for _, r := range tree.Roots {
			if err := walk(r); err != nil {
				return err
			}
		}
		lastErr = nil
		if len(tree.Roots) != 1 {
			lastErr = fmt.Errorf("%d roots, want 1 fully stitched tree", len(tree.Roots))
		}
		for _, want := range names {
			if seen[want] == 0 && lastErr == nil {
				lastErr = fmt.Errorf("span %q missing from the tree (have %v)", want, seen)
			}
		}
		if lastErr == nil {
			fmt.Printf("obscheck: trace %s: %d spans in one tree", id, tree.Spans)
			if len(names) > 0 {
				fmt.Printf(", all of %s present", strings.Join(names, ", "))
			}
			fmt.Println()
			return nil
		}
	}
	return lastErr
}

// checkFederation fetches the merged cluster exposition, parses it with
// the same strict parser /metrics goes through, and requires a `shard`
// label on every single series. want < 0 checks shape only; otherwise
// the set of distinct non-coordinator shard values must reach exactly
// want, retried briefly because the probe loop fills (and empties) the
// federation cache asynchronously.
func checkFederation(url string, want int) error {
	var lastErr error
	for attempt := 0; attempt < 50; attempt++ {
		if attempt > 0 {
			time.Sleep(100 * time.Millisecond)
		}
		resp, err := http.Get(url + "/v1/cluster/metrics")
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			lastErr = fmt.Errorf("GET /v1/cluster/metrics: status %d", resp.StatusCode)
			continue
		}
		fams, err := obs.ParseExposition(resp.Body)
		resp.Body.Close()
		if err != nil {
			// A malformed merge is a bug, not a timing artifact.
			return fmt.Errorf("merged exposition invalid: %w", err)
		}
		shards := map[string]bool{}
		samples := 0
		lastErr = nil
		for _, f := range fams {
			for _, s := range f.Samples {
				samples++
				v := s.Label("shard")
				if v == "" {
					return fmt.Errorf("series %s has no shard label", s.Name)
				}
				if v != "coordinator" {
					shards[v] = true
				}
			}
		}
		if want >= 0 && len(shards) != want {
			names := make([]string, 0, len(shards))
			for s := range shards {
				names = append(names, s)
			}
			sort.Strings(names)
			lastErr = fmt.Errorf("%d federated shard(s) %v, want %d", len(shards), names, want)
			continue
		}
		fmt.Printf("obscheck: %s/v1/cluster/metrics: %d families, %d samples, %d federated shard(s), every series shard-labeled\n",
			url, len(fams), samples, len(shards))
		return nil
	}
	return lastErr
}

// checkAlerts fetches the SLO evaluation. With a wanted verdict it
// retries briefly — the burn windows move one observation interval at a
// time, so a just-breached daemon may need a beat to flip.
func checkAlerts(url, want string) error {
	var lastErr error
	for attempt := 0; attempt < 50; attempt++ {
		if attempt > 0 {
			time.Sleep(100 * time.Millisecond)
		}
		resp, err := http.Get(url + "/v1/alerts")
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			lastErr = fmt.Errorf("GET /v1/alerts: status %d", resp.StatusCode)
			continue
		}
		var st struct {
			Verdict string `json:"verdict"`
			Firing  []struct {
				Name     string `json:"name"`
				Severity string `json:"severity"`
			} `json:"firing"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if want != "" && st.Verdict != want {
			lastErr = fmt.Errorf("verdict %q, want %q (%d alert(s) firing)", st.Verdict, want, len(st.Firing))
			continue
		}
		names := make([]string, 0, len(st.Firing))
		for _, a := range st.Firing {
			names = append(names, a.Name+"/"+a.Severity)
		}
		fmt.Printf("obscheck: %s/v1/alerts: verdict %s, firing %v\n", url, st.Verdict, names)
		return nil
	}
	return lastErr
}

// checkEvent requires at least one journaled event of the given type,
// retrying briefly: shard expiry, for instance, lands only after the
// probe loop has missed enough pings.
func checkEvent(url, typ string) error {
	var lastErr error
	for attempt := 0; attempt < 100; attempt++ {
		if attempt > 0 {
			time.Sleep(100 * time.Millisecond)
		}
		resp, err := http.Get(url + "/debug/events?type=" + typ)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			lastErr = fmt.Errorf("GET /debug/events: status %d", resp.StatusCode)
			continue
		}
		var body struct {
			Events []struct {
				Type    string            `json:"type"`
				Msg     string            `json:"msg"`
				TraceID string            `json:"trace_id"`
				Attrs   map[string]string `json:"attrs"`
			} `json:"events"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if len(body.Events) == 0 {
			lastErr = fmt.Errorf("no %q events journaled", typ)
			continue
		}
		last := body.Events[len(body.Events)-1]
		fmt.Printf("obscheck: %s/debug/events: %d %q event(s), newest: %s %v\n",
			url, len(body.Events), typ, last.Msg, last.Attrs)
		return nil
	}
	return lastErr
}

// printLatency renders the coordinator's latency histograms as
// count + mean per series — the post-campaign summary run.sh prints.
func printLatency(url string) error {
	fams, err := scrape(url)
	if err != nil {
		return err
	}
	series := func(family, label string) {
		f := fams[family]
		if f == nil {
			return
		}
		type agg struct{ sum, count float64 }
		byKey := map[string]*agg{}
		for _, s := range f.Samples {
			key := s.Label(label)
			a := byKey[key]
			if a == nil {
				a = &agg{}
				byKey[key] = a
			}
			switch {
			case strings.HasSuffix(s.Name, "_sum"):
				a.sum += s.Value
			case strings.HasSuffix(s.Name, "_count"):
				a.count += s.Value
			}
		}
		keys := make([]string, 0, len(byKey))
		for k := range byKey {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			a := byKey[k]
			name := family
			if k != "" {
				name = fmt.Sprintf("%s{%s=%q}", family, label, k)
			}
			if a.count == 0 {
				fmt.Printf("  %-70s no observations\n", name)
				continue
			}
			fmt.Printf("  %-70s n=%-6.0f mean=%.3fms\n", name, a.count, a.sum/a.count*1000)
		}
	}
	fmt.Printf("latency summary for %s:\n", url)
	series("rp_cluster_shard_rtt_seconds", "shard")
	series("rp_cluster_batch_chunk_seconds", "")
	series("rp_cluster_batch_reorder_wait_seconds", "")
	series("rp_engine_solve_seconds", "solver")
	series("rp_engine_queue_wait_seconds", "solver")
	series("rp_jobs_duration_seconds", "")
	return nil
}

// checkSession folds a captured watch stream and requires the result to
// match both the session's status and a cold solve of the instance the
// session mutated — the end-to-end form of the per-delta equivalence
// the unit tests pin.
func checkSession(url, id, watchFile string, wantRev uint64) error {
	rev, cost, replicas, lines, err := foldWatch(watchFile)
	if err != nil {
		return err
	}
	if rev != wantRev {
		return fmt.Errorf("watch fold ended at rev %d, want %d", rev, wantRev)
	}

	// The session's own view of where the deltas landed.
	resp, err := http.Get(url + "/v1/instances/" + id + "?include_instance=1")
	if err != nil {
		return err
	}
	var status struct {
		Solver   string          `json:"solver"`
		Policy   string          `json:"policy"`
		Rev      uint64          `json:"rev"`
		Cost     int64           `json:"cost"`
		Replicas []int           `json:"replicas"`
		Instance json.RawMessage `json:"instance"`
	}
	code := resp.StatusCode
	err = json.NewDecoder(resp.Body).Decode(&status)
	resp.Body.Close()
	if code != http.StatusOK {
		return fmt.Errorf("GET /v1/instances/%s: status %d", id, code)
	}
	if err != nil {
		return err
	}
	if status.Rev != wantRev {
		return fmt.Errorf("session sits at rev %d, want %d", status.Rev, wantRev)
	}
	if cost != status.Cost || !equalInts(replicas, status.Replicas) {
		return fmt.Errorf("watch fold (cost %d, replicas %v) != session status (cost %d, replicas %v)",
			cost, replicas, status.Cost, status.Replicas)
	}
	if len(status.Instance) == 0 {
		return fmt.Errorf("status carries no instance despite include_instance=1")
	}

	// A from-scratch solve of the mutated instance must land on the
	// exact same placement the watcher folded together.
	body, err := json.Marshal(map[string]any{
		"instance": json.RawMessage(status.Instance),
		"solver":   status.Solver,
		"policy":   status.Policy,
	})
	if err != nil {
		return err
	}
	solveResp, err := http.Post(url+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var cold struct {
		NoSolution bool  `json:"no_solution"`
		Cost       int64 `json:"cost"`
		Replicas   []int `json:"replicas"`
	}
	code = solveResp.StatusCode
	err = json.NewDecoder(solveResp.Body).Decode(&cold)
	solveResp.Body.Close()
	if code != http.StatusOK {
		return fmt.Errorf("cold /v1/solve: status %d", code)
	}
	if err != nil {
		return err
	}
	if cold.NoSolution {
		return fmt.Errorf("cold solve of the mutated instance found no solution")
	}
	if cost != cold.Cost || !equalInts(replicas, cold.Replicas) {
		return fmt.Errorf("watch fold (cost %d, replicas %v) != cold solve (cost %d, replicas %v)",
			cost, replicas, cold.Cost, cold.Replicas)
	}
	fmt.Printf("obscheck: session %s: %d watched diffs fold to rev %d, cost %d, %d replicas == cold %s solve\n",
		id, lines, rev, cost, len(replicas), status.Solver)
	return nil
}

// foldWatch replays a watch capture: revisions must be contiguous, an
// added server must not already hold a replica, a dropped one must.
// Returns the final revision, cost and sorted replica set.
func foldWatch(path string) (rev uint64, cost int64, replicas []int, lines int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, nil, 0, err
	}
	defer f.Close()
	have := map[int]bool{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var d struct {
			Rev  uint64 `json:"rev"`
			Add  []int  `json:"add"`
			Drop []int  `json:"drop"`
			Cost int64  `json:"cost"`
		}
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			return 0, 0, nil, 0, fmt.Errorf("line %d: %v", lines+1, err)
		}
		if lines > 0 && d.Rev != rev+1 {
			return 0, 0, nil, 0, fmt.Errorf("line %d: rev %d after rev %d (diffs must be contiguous)", lines+1, d.Rev, rev)
		}
		for _, v := range d.Add {
			if have[v] {
				return 0, 0, nil, 0, fmt.Errorf("rev %d adds server %d twice", d.Rev, v)
			}
			have[v] = true
		}
		for _, v := range d.Drop {
			if !have[v] {
				return 0, 0, nil, 0, fmt.Errorf("rev %d drops server %d which holds no replica", d.Rev, v)
			}
			delete(have, v)
		}
		rev, cost = d.Rev, d.Cost
		lines++
	}
	if err := sc.Err(); err != nil {
		return 0, 0, nil, 0, err
	}
	if lines == 0 {
		return 0, 0, nil, 0, fmt.Errorf("empty watch capture")
	}
	for v := range have {
		replicas = append(replicas, v)
	}
	sort.Ints(replicas)
	return rev, cost, replicas, lines, nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
