package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/multiobject"
	"repro/internal/service"
)

// RemoteSuffix qualifies the remote twin of a registered solver:
// "optimal" is computed in-process, "optimal@remote" on a shard.
const RemoteSuffix = "@remote"

// RegisterRemote registers, for every solver currently in the registry,
// a "<name>@remote" twin whose backend proxies the computation through
// the pool. The twins implement the plain service.Backend signature, so
// the engine's cache, single-flight coalescing, deadline handling,
// solution validation and per-solver metrics apply to them unchanged —
// exactly the extension seam the registry was shaped for.
func RegisterRemote(reg *service.Registry, p *Pool) error {
	for _, s := range reg.Solvers() {
		if strings.HasSuffix(s.Name, RemoteSuffix) {
			continue // idempotence: never stack @remote@remote
		}
		remote := s
		remote.Name = s.Name + RemoteSuffix
		remote.Long = s.Long + " — proxied to a cluster shard"
		remote.Run = p.backend(s.Name, s.Policy)
		if err := reg.Register(remote); err != nil {
			return err
		}
	}
	return nil
}

// backend builds the service.Backend proxying one concrete solver name.
func (p *Pool) backend(solver string, policy core.Policy) service.Backend {
	return func(ctx context.Context, in *core.Instance, opt service.Options) (service.Result, error) {
		resp, err := p.Solve(ctx, in, solver, policy, opt)
		if err != nil {
			return service.Result{}, err
		}
		return resultFromResponse(resp)
	}
}

// resultFromResponse rebuilds a backend Result from a worker's wire
// response. The engine then validates solutions against the instance
// exactly as it does for local backends, so a corrupted or mismatched
// worker answer is rejected, not cached.
func resultFromResponse(resp *service.Response) (service.Result, error) {
	switch {
	case resp.NoSolution:
		return service.Result{NoSolution: true, HasBound: resp.Bound != nil}, nil
	case resp.Bound != nil:
		return service.Result{HasBound: true, Bound: resp.Bound.Value, BoundExact: resp.Bound.Exact}, nil
	case len(resp.PerObject) > 0:
		// Multi-object placement: the wire carries one solution per
		// object (the coordinator asked for IncludeSolution above).
		ms := &multiobject.Solution{PerObject: make([]*core.Solution, len(resp.PerObject))}
		for i, op := range resp.PerObject {
			if op.Solution == nil {
				return service.Result{}, fmt.Errorf("cluster: worker multi-object response misses object %d's solution", op.Object)
			}
			ms.PerObject[i] = op.Solution
		}
		return service.Result{MultiSolution: ms}, nil
	case resp.Solution != nil:
		return service.Result{Solution: resp.Solution}, nil
	default:
		return service.Result{}, errors.New("cluster: worker response carries neither solution nor bound")
	}
}

// StripRemoteSuffix returns the local solver name behind an @remote
// twin (case-insensitively), or the name unchanged. The sharded batch
// kind applies it before forwarding work: workers register only local
// names, so a coordinator-side "optimal@remote" must travel as
// "optimal".
func StripRemoteSuffix(name string) string {
	if len(name) >= len(RemoteSuffix) &&
		strings.EqualFold(name[len(name)-len(RemoteSuffix):], RemoteSuffix) {
		return name[:len(name)-len(RemoteSuffix)]
	}
	return name
}
