package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster/wire"
	"repro/internal/gen"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/service"
)

// traceCapture records the X-RP-Trace-Id header of every request a
// worker shard receives, keyed by path.
type traceCapture struct {
	mu   sync.Mutex
	seen map[string][]string
}

func (c *traceCapture) record(r *http.Request) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.seen == nil {
		c.seen = map[string][]string{}
	}
	c.seen[r.URL.Path] = append(c.seen[r.URL.Path], r.Header.Get(obs.TraceHeader))
}

func (c *traceCapture) traces(path string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.seen[path]...)
}

// TestTracePropagatesEndToEnd is the tracing propagation e2e, run once
// per chunk transport: one trace ID, supplied by the client of a
// coordinator, is (1) echoed on the coordinator's HTTP response, (2)
// recorded on the job manifest and on every event of the job's
// timeline, and (3) delivered to the worker shards — as the
// X-RP-Trace-Id request header on the JSON path, as the FlagTraced
// frame prefix on the binary wire path (observed through the workers'
// span stores, since no HTTP header exists there).
func TestTracePropagatesEndToEnd(t *testing.T) {
	t.Run("json", func(t *testing.T) { testTracePropagation(t, false) })
	t.Run("wire", func(t *testing.T) { testTracePropagation(t, true) })
}

func testTracePropagation(t *testing.T, overWire bool) {
	const trace = "e2e-trace-0042"

	// Two capture-wrapped worker shards. Wire-mode workers mount the
	// binary transport with a flight recorder each; the HTTP capture
	// then proves the chunks did NOT fall back to JSON.
	var captures [2]*traceCapture
	var stores [2]*obs.SpanStore
	var addrs []string
	for i := range captures {
		captures[i] = &traceCapture{}
		e := service.NewEngine(service.EngineOptions{Workers: 2})
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			e.Close(ctx)
		})
		opts := service.HandlerOptions{MaxInlineCampaigns: -1}
		if overWire {
			ws := wire.NewServer(e, nil)
			stores[i] = obs.NewSpanStore(256)
			ws.Spans = stores[i]
			opts.Wire = ws
			t.Cleanup(func() { ws.Close() })
		}
		inner := service.NewHandlerOpts(e, opts)
		c := captures[i]
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			c.record(r)
			inner.ServeHTTP(w, r)
		}))
		t.Cleanup(srv.Close)
		addrs = append(addrs, srv.URL)
	}
	p := newTestPool(t, addrs, PoolOptions{ProbeInterval: -1})

	// Coordinator: remote-twin registry, sharded job kinds, HTTP surface.
	reg := service.NewRegistry()
	if err := RegisterRemote(reg, p); err != nil {
		t.Fatal(err)
	}
	ce := service.NewEngine(service.EngineOptions{Workers: 1, Registry: reg})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		ce.Close(ctx)
	})
	m, err := jobs.NewManager(jobs.Options{Workers: 1}, Kinds(ce, p)...)
	if err != nil {
		t.Fatal(err)
	}
	defer closeManager(t, m)
	coord := httptest.NewServer(service.NewHandlerOpts(ce, service.HandlerOptions{
		Jobs:    m,
		Cluster: p,
	}))
	defer coord.Close()

	// Submit a sharded batch job with an explicit trace ID.
	in := gen.Instance(gen.Config{Internal: 5, Clients: 10, Lambda: 0.4, UnitCosts: true}, 3)
	vars := make([]map[string]any, 6)
	for i := range vars {
		r := append([]int64(nil), in.R...)
		for j := range r {
			if r[j] > 0 {
				r[j] += int64(i % 2)
			}
		}
		vars[i] = map[string]any{"requests": r}
	}
	body, err := json.Marshal(map[string]any{"batch": map[string]any{
		"topology":   map[string]any{"parents": in.Tree.Parents(), "is_client": in.Tree.ClientFlags()},
		"solver":     "MB@remote",
		"base":       map[string]any{"requests": in.R, "capacities": in.W, "storage_costs": in.S},
		"variations": vars,
	}})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, coord.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, trace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, data)
	}
	// (1) The coordinator echoes the client's trace ID on the response.
	if got := resp.Header.Get(obs.TraceHeader); got != trace {
		t.Fatalf("response %s = %q, want %q", obs.TraceHeader, got, trace)
	}
	var submitted struct {
		Job struct {
			ID      string `json:"id"`
			TraceID string `json:"trace_id"`
		} `json:"job"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	// (2a) The job manifest carries the trace ID.
	if submitted.Job.TraceID != trace {
		t.Fatalf("manifest trace_id = %q, want %q", submitted.Job.TraceID, trace)
	}
	id := submitted.Job.ID

	// Wait for the job over HTTP, like a real client.
	deadline := time.Now().Add(60 * time.Second)
	var state string
	for time.Now().Before(deadline) {
		var status struct {
			Job struct {
				State   string `json:"state"`
				Error   string `json:"error"`
				TraceID string `json:"trace_id"`
			} `json:"job"`
		}
		getJSON(t, coord.URL+"/v1/jobs/"+id, &status)
		state = status.Job.State
		if state == "succeeded" {
			if status.Job.TraceID != trace {
				t.Fatalf("finished manifest trace_id = %q, want %q", status.Job.TraceID, trace)
			}
			break
		}
		if state == "failed" || state == "canceled" {
			t.Fatalf("job reached %s: %s", state, status.Job.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if state != "succeeded" {
		t.Fatalf("job never succeeded (last state %s)", state)
	}

	// (2b) Every event of the persisted timeline carries the trace ID,
	// and the sharded kind logged per-chunk dispatch events.
	var timeline struct {
		Events []jobs.Event `json:"events"`
	}
	getJSON(t, coord.URL+"/v1/jobs/"+id+"/events", &timeline)
	if len(timeline.Events) == 0 {
		t.Fatal("job finished with an empty timeline")
	}
	dispatches := 0
	for _, ev := range timeline.Events {
		if ev.TraceID != trace {
			t.Fatalf("event %s (%s) trace = %q, want %q", ev.Type, ev.Detail, ev.TraceID, trace)
		}
		if ev.Type == jobs.EventDispatch {
			dispatches++
		}
	}
	if dispatches == 0 {
		t.Fatalf("no dispatch events in timeline: %+v", timeline.Events)
	}
	first, last := timeline.Events[0], timeline.Events[len(timeline.Events)-1]
	if first.Type != jobs.EventQueued || last.Type != jobs.EventFinished {
		t.Fatalf("timeline bounds = %s..%s, want queued..finished", first.Type, last.Type)
	}

	// (3) The shards saw the same trace ID on their batch chunks.
	if overWire {
		// The binary transport has no per-chunk HTTP request: the trace
		// rides the FlagTraced frame prefix, and the proof it arrived is
		// the worker-side wire.batch spans recorded under the client's ID.
		recorded := 0
		for i, store := range stores {
			for _, sp := range store.TraceSpans(trace) {
				if sp.TraceID != trace {
					t.Fatalf("worker %d span %s trace = %q, want %q", i, sp.Name, sp.TraceID, trace)
				}
				if sp.Name == "wire.batch" {
					recorded++
				}
			}
		}
		if recorded == 0 {
			t.Fatal("no worker recorded a wire.batch span under the client's trace ID")
		}
		for i, c := range captures {
			if got := c.traces("/v1/batch"); len(got) != 0 {
				t.Fatalf("worker %d served %d batch chunks over JSON; all should ride the wire", i, len(got))
			}
		}
		if st := p.ClusterStats(); st.WireRows == 0 {
			t.Fatalf("cluster stats %+v claim no rows crossed the wire", st)
		}
	} else {
		shardTraces := 0
		for i, c := range captures {
			for _, got := range c.traces("/v1/batch") {
				if got != trace {
					t.Fatalf("worker %d got %s = %q, want %q", i, obs.TraceHeader, got, trace)
				}
				shardTraces++
			}
		}
		if shardTraces == 0 {
			t.Fatal("no /v1/batch request reached any shard")
		}
	}

	// Bonus contract checks: an error response carries the trace ID in
	// its JSON body, and a malformed client trace is replaced by a fresh
	// generated one rather than echoed.
	nreq, _ := http.NewRequest(http.MethodGet, coord.URL+"/v1/jobs/nosuchjob", nil)
	nreq.Header.Set(obs.TraceHeader, trace)
	nresp, err := http.DefaultClient.Do(nreq)
	if err != nil {
		t.Fatal(err)
	}
	var errBody struct {
		Error   string `json:"error"`
		TraceID string `json:"trace_id"`
	}
	if err := json.NewDecoder(nresp.Body).Decode(&errBody); err != nil {
		t.Fatal(err)
	}
	nresp.Body.Close()
	if nresp.StatusCode != http.StatusNotFound || errBody.Error == "" {
		t.Fatalf("lookup of missing job: status %d, body error %q", nresp.StatusCode, errBody.Error)
	}
	if errBody.TraceID != trace {
		t.Fatalf("error body trace_id = %q, want %q", errBody.TraceID, trace)
	}

	breq, _ := http.NewRequest(http.MethodGet, coord.URL+"/healthz", nil)
	breq.Header.Set(obs.TraceHeader, "bad id with spaces!")
	bresp, err := http.DefaultClient.Do(breq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, bresp.Body)
	bresp.Body.Close()
	got := bresp.Header.Get(obs.TraceHeader)
	if got == "" || got == "bad id with spaces!" {
		t.Fatalf("malformed client trace answered with %q, want a fresh generated ID", got)
	}
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, data)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}
