package cluster

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// newFakeMetricsShard starts a minimal shard: a ping endpoint the probe
// loop needs (federation scrapes only ride successful pings) and a
// handcrafted — but strictly valid — /metrics exposition.
func newFakeMetricsShard(t testing.TB, exposition string) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/worker/ping", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"status":"ok","workers":1}`)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, exposition)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

const fakeExpoA = `# HELP rp_fake_solves_total Fake per-shard counter.
# TYPE rp_fake_solves_total counter
rp_fake_solves_total 3
`

const fakeExpoB = `# HELP rp_fake_solves_total Fake per-shard counter.
# TYPE rp_fake_solves_total counter
rp_fake_solves_total 5
# HELP rp_fake_queue Fake gauge with a pre-existing shard label.
# TYPE rp_fake_queue gauge
rp_fake_queue{shard="inner"} 2
`

// waitFederated polls until the pool's federation cache holds exactly
// want shard expositions.
func waitFederated(t testing.TB, p *Pool, want int) []service.ShardExposition {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		got := p.FederatedExpositions()
		if len(got) == want {
			return got
		}
		if time.Now().After(deadline) {
			t.Fatalf("federation cache holds %d exposition(s), want %d", len(got), want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPoolFederationScrapeAndStaleness: the probe loop fills the
// federation cache from live shards' /metrics, and a shard that stops
// answering ages out of the merge without leaving the membership.
func TestPoolFederationScrapeAndStaleness(t *testing.T) {
	a := newFakeMetricsShard(t, fakeExpoA)
	b := newFakeMetricsShard(t, fakeExpoB)
	p := newTestPool(t, []string{a.URL, b.URL}, PoolOptions{
		ProbeInterval:    20 * time.Millisecond,
		FederateInterval: 10 * time.Millisecond,
	})

	shards := waitFederated(t, p, 2)
	byAddr := map[string]service.ShardExposition{}
	for _, se := range shards {
		byAddr[se.Addr] = se
	}
	fa, ok := byAddr[a.URL]
	if !ok {
		t.Fatalf("shard %s missing from federation (have %v)", a.URL, shards)
	}
	f := fa.Families["rp_fake_solves_total"]
	if f == nil || len(f.Samples) != 1 || f.Samples[0].Value != 3 {
		t.Fatalf("shard A cached family = %+v, want one sample of 3", f)
	}
	if fb := byAddr[b.URL]; fb.Families["rp_fake_queue"] == nil {
		t.Fatalf("shard B cached families lack rp_fake_queue: %v", fb.Families)
	}

	// Shard B dies. It stays a (static-origin) member, but its cached
	// exposition must age out of the federation: serving week-old
	// numbers would make a dead shard look alive.
	b.Close()
	waitFederated(t, p, 1)
	if got := p.FederatedExpositions(); got[0].Addr != a.URL {
		t.Fatalf("survivor = %s, want %s", got[0].Addr, a.URL)
	}
}

// TestPoolFederationRejectsMalformed: a shard serving a broken
// exposition must never enter the federation cache — the strict parse
// happens at scrape time, so the merge endpoint can't propagate it.
func TestPoolFederationRejectsMalformed(t *testing.T) {
	bad := newFakeMetricsShard(t, "# TYPE rp_orphan counter\nrp_other 1\n")
	p := newTestPool(t, []string{bad.URL}, PoolOptions{
		ProbeInterval:    20 * time.Millisecond,
		FederateInterval: 10 * time.Millisecond,
	})
	time.Sleep(150 * time.Millisecond)
	if got := p.FederatedExpositions(); len(got) != 0 {
		t.Fatalf("malformed exposition entered the cache: %v", got)
	}
}

// TestFederationEndpointMerge: GET /v1/cluster/metrics on a coordinator
// handler merges the coordinator's own exposition with every cached
// shard exposition; the result re-parses strictly and every series
// carries a shard label.
func TestFederationEndpointMerge(t *testing.T) {
	a := newFakeMetricsShard(t, fakeExpoA)
	b := newFakeMetricsShard(t, fakeExpoB)
	p := newTestPool(t, []string{a.URL, b.URL}, PoolOptions{
		ProbeInterval:    20 * time.Millisecond,
		FederateInterval: 10 * time.Millisecond,
	})
	waitFederated(t, p, 2)

	e := service.NewEngine(service.EngineOptions{Workers: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		e.Close(ctx)
	}()
	coord := httptest.NewServer(service.NewHandlerOpts(e, service.HandlerOptions{Cluster: p}))
	defer coord.Close()

	resp, err := http.Get(coord.URL + "/v1/cluster/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/cluster/metrics: status %d", resp.StatusCode)
	}
	fams, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("merged exposition does not re-parse: %v", err)
	}

	sources := map[string]bool{}
	for _, f := range fams {
		for _, s := range f.Samples {
			v := s.Label("shard")
			if v == "" {
				t.Fatalf("series %s{%v} has no shard label", s.Name, s.Labels)
			}
			sources[v] = true
		}
	}
	for _, want := range []string{"coordinator", a.URL, b.URL} {
		if !sources[want] {
			t.Fatalf("no series labeled shard=%q in the merge (have %v)", want, sources)
		}
	}

	// The fake family merged one sample per shard, each attributed.
	f := fams["rp_fake_solves_total"]
	if f == nil || len(f.Samples) != 2 {
		t.Fatalf("rp_fake_solves_total = %+v, want 2 samples", f)
	}
	got := map[string]float64{}
	for _, s := range f.Samples {
		got[s.Label("shard")] = s.Value
	}
	if got[a.URL] != 3 || got[b.URL] != 5 {
		t.Fatalf("merged values by shard = %v", got)
	}

	// Shard B's pre-existing shard="inner" label moved aside instead of
	// colliding with the federation label.
	q := fams["rp_fake_queue"]
	if q == nil || len(q.Samples) != 1 {
		t.Fatalf("rp_fake_queue = %+v, want 1 sample", q)
	}
	if s := q.Samples[0]; s.Label("shard") != b.URL || s.Label("origin_shard") != "inner" {
		t.Fatalf("relabeled sample = %v, want shard=%s origin_shard=inner", s.Labels, b.URL)
	}

	// Freshness telemetry: one age series per live shard.
	age := fams["rp_federation_shard_age_seconds"]
	if age == nil || len(age.Samples) != 2 {
		t.Fatalf("rp_federation_shard_age_seconds = %+v, want 2 samples", age)
	}

	// Coordinator-local series kept their own identity.
	if up := fams["rp_up"]; up != nil {
		for _, s := range up.Samples {
			if !strings.Contains(s.Label("shard"), "coordinator") {
				t.Fatalf("local rp_up mislabeled: %v", s.Labels)
			}
		}
	}
}

// TestFederationEndpointWithoutPool: a daemon fronting no shard pool
// answers 501, mirroring the other coordinator-only surfaces.
func TestFederationEndpointWithoutPool(t *testing.T) {
	e := service.NewEngine(service.EngineOptions{Workers: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		e.Close(ctx)
	}()
	srv := httptest.NewServer(service.NewHandlerOpts(e, service.HandlerOptions{}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/cluster/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("status = %d, want 501", resp.StatusCode)
	}
}
