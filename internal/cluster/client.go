package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/service"
)

// permanentError marks a failure the shard answered deliberately (4xx):
// retrying it elsewhere would fail identically, so the pool neither
// fails over nor opens the shard's breaker.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

func isPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// postJSON sends body to the shard and returns the response, mapping
// transport failures and 5xx statuses to transient errors and 4xx to
// permanent ones. The caller owns resp.Body on nil error.
func (p *Pool) postJSON(ctx context.Context, s *shard, path string, body any) (*http.Response, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return nil, &permanentError{err}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.addr+path, bytes.NewReader(data))
	if err != nil {
		return nil, &permanentError{err}
	}
	req.Header.Set("Content-Type", "application/json")
	if id := obs.Trace(ctx); id != "" {
		// Propagate the coordinator's trace to the shard: its access log
		// and error bodies then carry the same ID as the originating
		// request (HTTP requests, and job runs via the manager's context).
		req.Header.Set(obs.TraceHeader, id)
	}
	if parent := obs.ParentSpan(ctx); parent != 0 {
		// The active span ID rides along so the shard's spans parent
		// under the coordinator span that issued this call.
		req.Header.Set(obs.ParentSpanHeader, obs.FormatSpanID(parent))
	}
	start := time.Now()
	resp, err := p.opts.Client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: %s%s: %w", s.addr, path, err)
	}
	// Headers are back, so this is the shard's round-trip (body streaming
	// is accounted by the caller — chunk timing, scan loops).
	p.shardRTT.Observe(s.addr, time.Since(start))
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		msg := readErrorBody(resp.Body)
		err := fmt.Errorf("cluster: %s%s: status %d: %s", s.addr, path, resp.StatusCode, msg)
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return nil, &permanentError{err}
		}
		return nil, err // 5xx and anything exotic: transient, fail over
	}
	return resp, nil
}

// readErrorBody extracts {"error": "..."} from an error response,
// falling back to the raw (truncated) body.
func readErrorBody(r io.Reader) string {
	data, _ := io.ReadAll(io.LimitReader(r, 4<<10))
	var payload struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &payload) == nil && payload.Error != "" {
		return payload.Error
	}
	return string(bytes.TrimSpace(data))
}

// ping probes one shard's /v1/worker/ping. A healthy answer reports
// the worker's solver goroutine count; it becomes the shard's placement
// weight unless the operator pinned one explicitly at registration, so
// heterogeneous shards weight themselves without configuration.
func (p *Pool) ping(ctx context.Context, s *shard) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.addr+"/v1/worker/ping", nil)
	if err != nil {
		return err
	}
	resp, err := p.opts.Client.Do(req)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: ping %s: status %d", s.addr, resp.StatusCode)
	}
	var payload struct {
		Workers int `json:"workers"`
	}
	if json.Unmarshal(body, &payload) == nil && payload.Workers > 0 {
		if s.setWeight(payload.Workers, false, p.opts.MaxInFlight) {
			p.epoch.Add(1) // a re-weight changes placement like a join does
		}
	}
	// A live worker resets the expiry clock and earns a fresh wire
	// upgrade attempt (a restart may have turned the transport on).
	s.mu.Lock()
	s.missedProbes = 0
	s.mu.Unlock()
	s.wireUp()
	return nil
}

// Ping probes every shard once (useful at startup to log reachability).
// It never fails the pool — unreachable shards simply stay open until
// the prober or live traffic recovers them.
func (p *Pool) Ping(ctx context.Context) map[string]error {
	shards := p.snapshot()
	out := make(map[string]error, len(shards))
	for _, s := range shards {
		out[s.addr] = p.ping(ctx, s)
	}
	return out
}

// wireOptions mirrors the /v1/solve options wire shape.
type wireOptions struct {
	TimeoutMS       int64                   `json:"timeout_ms,omitempty"`
	NoCache         bool                    `json:"no_cache,omitempty"`
	BoundNodes      int                     `json:"bound_nodes,omitempty"`
	IncludeSolution bool                    `json:"include_solution,omitempty"`
	Objects         []service.ObjectVectors `json:"objects,omitempty"`
}

// solveWire is the /v1/solve request body.
type solveWire struct {
	Instance *core.Instance `json:"instance"`
	Solver   string         `json:"solver"`
	Policy   string         `json:"policy"`
	Options  wireOptions    `json:"options"`
}

// remoteTimeout derives the worker-side deadline from the caller's
// context, shaved slightly so the worker's timeout fires first and the
// coordinator gets a clean answer instead of a cut connection.
func remoteTimeout(ctx context.Context) int64 {
	deadline, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	remaining := time.Until(deadline)
	ms := int64(remaining*9/10) / int64(time.Millisecond)
	if ms < 1 {
		// Never 0: omitempty would drop the field and the worker would
		// fall back to its own (much longer) default deadline.
		ms = 1
	}
	return ms
}

// Solve runs one request on the cluster: the pool picks a shard, POSTs
// /v1/solve, and fails over to another shard when one dies mid-call
// (solves are deterministic, hence idempotent).
func (p *Pool) Solve(ctx context.Context, in *core.Instance, solver string, policy core.Policy, opt service.Options) (*service.Response, error) {
	var out *service.Response
	err := p.do(ctx, true, func(ctx context.Context, s *shard) error {
		// Built per attempt: a failover retry must carry the deadline
		// remaining NOW, not the (much longer) one computed before the
		// first shard burned most of the budget.
		body := solveWire{
			Instance: in,
			Solver:   solver,
			Policy:   policy.String(),
			Options: wireOptions{
				TimeoutMS:       remoteTimeout(ctx),
				BoundNodes:      opt.BoundNodes,
				NoCache:         opt.NoCache,
				IncludeSolution: true, // the coordinator rebuilds a full Result
				Objects:         opt.Objects,
			},
		}
		resp, err := p.postJSON(ctx, s, "/v1/solve", body)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		var decoded service.Response
		if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
			return fmt.Errorf("cluster: %s/v1/solve: bad response: %w", s.addr, err)
		}
		out = &decoded
		return nil
	})
	return out, err
}

// campaignWire is the /v1/campaign request body.
type campaignWire struct {
	Config experiments.Config `json:"config"`
}

// CampaignRow computes exactly one λ row of the campaign on a shard,
// via the StartRow/EndRow slice of the config. Row generation seeds are
// tied to the absolute index, so the returned row is bit-identical to
// row `index` of a single-process run, whichever shard computes it —
// which also makes the call idempotent and safe to fail over.
func (p *Pool) CampaignRow(ctx context.Context, cfg experiments.Config, index int) (experiments.Row, error) {
	cfg.Progress, cfg.Context = nil, nil
	cfg.StartRow, cfg.EndRow = index, index+1
	var out experiments.Row
	err := p.do(ctx, true, func(ctx context.Context, s *shard) error {
		jobs.PostEvent(ctx, jobs.EventDispatch, fmt.Sprintf("campaign row %d on %s", index, s.addr))
		if p.wireEnabled(s) {
			row, n, err := p.wireCampaignRow(ctx, s, cfg)
			if !errors.Is(err, errWireUnsupported) {
				if err != nil {
					return err
				}
				if n != 1 {
					return fmt.Errorf("cluster: %s wire campaign row %d: got %d rows, want 1", s.addr, index, n)
				}
				out = row
				return nil
			}
			p.recordWireFallback(s)
		}
		resp, err := p.postJSON(ctx, s, "/v1/campaign", campaignWire{Config: cfg})
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		row, n, err := scanCampaignStream(resp.Body)
		if err != nil {
			return fmt.Errorf("cluster: %s/v1/campaign row %d: %w", s.addr, index, err)
		}
		if n != 1 {
			return fmt.Errorf("cluster: %s/v1/campaign row %d: got %d rows, want 1", s.addr, index, n)
		}
		out = row
		return nil
	})
	return out, err
}

// scanCampaignStream reads a worker's campaign NDJSON stream: row lines
// until a {"done": true} trailer. A missing trailer means the worker
// died mid-stream; an {"error": ...} line is the campaign's own failure.
func scanCampaignStream(r io.Reader) (last experiments.Row, rows int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var probe struct {
			Done  bool   `json:"done"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return last, rows, fmt.Errorf("bad stream line: %w", err)
		}
		if probe.Error != "" {
			return last, rows, errors.New(probe.Error)
		}
		if probe.Done {
			return last, rows, nil
		}
		var row experiments.Row
		if err := json.Unmarshal(line, &row); err != nil {
			return last, rows, fmt.Errorf("bad row line: %w", err)
		}
		last = row
		rows++
	}
	if err := sc.Err(); err != nil {
		return last, rows, err
	}
	return last, rows, errors.New("stream ended without done trailer")
}

// BatchChunk runs one sub-batch on a single shard, delivering each
// streamed line (indices are chunk-local) as it arrives. It does NOT
// fail over internally: lines already delivered are checkpointed by the
// caller, which re-partitions whatever is still missing — failover at
// the row set level rather than the call level, so no work is redone.
func (p *Pool) BatchChunk(ctx context.Context, payload *service.BatchPayload, deliver func(service.BatchLine)) error {
	return p.do(ctx, false, func(ctx context.Context, s *shard) error {
		jobs.PostEvent(ctx, jobs.EventDispatch,
			fmt.Sprintf("batch chunk of %d on %s", len(payload.Variations), s.addr))
		if p.wireEnabled(s) {
			err := p.wireBatchChunk(ctx, s, payload, deliver)
			if !errors.Is(err, errWireUnsupported) {
				return err
			}
			p.recordWireFallback(s)
		}
		resp, err := p.postJSON(ctx, s, "/v1/batch", payload)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
		for sc.Scan() {
			line := sc.Bytes()
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			var probe struct {
				Done  bool `json:"done"`
				Index *int `json:"index"`
			}
			if err := json.Unmarshal(line, &probe); err != nil {
				return fmt.Errorf("cluster: %s/v1/batch: bad stream line: %w", s.addr, err)
			}
			if probe.Done {
				return nil
			}
			if probe.Index == nil {
				return fmt.Errorf("cluster: %s/v1/batch: line without index: %s", s.addr, line)
			}
			var bl service.BatchLine
			if err := json.Unmarshal(line, &bl); err != nil {
				return fmt.Errorf("cluster: %s/v1/batch: bad line: %w", s.addr, err)
			}
			deliver(bl)
		}
		if err := sc.Err(); err != nil {
			return err
		}
		return fmt.Errorf("cluster: %s/v1/batch: stream ended without done trailer", s.addr)
	})
}
