package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/jobs"
	"repro/internal/service"
)

// decodeCampaignPayload strictly decodes a campaign job payload.
func decodeCampaignPayload(payload json.RawMessage) (experiments.Config, error) {
	var cfg experiments.Config
	if len(payload) == 0 {
		return cfg, fmt.Errorf("cluster: campaign job without config")
	}
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return cfg, fmt.Errorf("cluster: bad campaign config: %w", err)
	}
	return cfg, nil
}

// CampaignKind is the sharded replacement for jobs.CampaignKind,
// registered under the same name so the /v1/jobs API is identical on a
// coordinator. Each λ row is computed remotely as a StartRow/EndRow
// slice of the persisted (normalized) config; rows land in the
// append-only log keyed by their absolute index as they complete, in
// whatever order the shards finish. On resume — daemon restart, shard
// death, transient failure — only the missing indices are resubmitted,
// and because row content is deterministic in (config, index), the
// merged result is byte-identical to a single-process run.
func CampaignKind(p *Pool) jobs.Kind {
	return jobs.Kind{
		Name: jobs.CampaignKindName,
		Prepare: func(payload json.RawMessage) (json.RawMessage, int, error) {
			cfg, err := decodeCampaignPayload(payload)
			if err != nil {
				return nil, 0, err
			}
			cfg = cfg.Normalized()
			if cfg.StartRow != 0 || cfg.EndRow != 0 {
				return nil, 0, fmt.Errorf("cluster: campaign jobs manage StartRow/EndRow themselves; submit without them")
			}
			norm, err := json.Marshal(cfg)
			if err != nil {
				return nil, 0, err
			}
			return norm, len(cfg.Lambdas), nil
		},
		Run: func(ctx context.Context, payload json.RawMessage, prior []json.RawMessage, sink func(json.RawMessage) error) error {
			cfg, err := decodeCampaignPayload(payload)
			if err != nil {
				return err
			}
			total := len(cfg.Lambdas)
			done := make([]bool, total)
			for i, raw := range prior {
				idx, _, err := jobs.CampaignRowIndex(raw, i)
				if err != nil {
					return err
				}
				if idx >= 0 && idx < total {
					done[idx] = true
				}
			}
			var missing []int
			for idx := range done {
				if !done[idx] {
					missing = append(missing, idx)
				}
			}

			// A bounded worker set sized to the pool's admission width:
			// more goroutines than in-flight slots would only spin on the
			// acquire/backoff loop, not add parallelism. Membership is
			// dynamic, so a monitor watches the pool epoch and grows the
			// set when shards join mid-job — a campaign started on one
			// worker spreads onto a hot-registered second without a
			// restart. (Shrinking is implicit: surplus goroutines just
			// wait on the acquire loop, and rows lost to a departed
			// shard fail over through the pool like any other failure.)
			var (
				mu      sync.Mutex
				wg      sync.WaitGroup
				sinkErr error
				rowErr  error
				failed  int
			)
			next := make(chan int)
			runWorker := func() {
				defer wg.Done()
				for idx := range next {
					row, err := p.CampaignRow(ctx, cfg, idx)
					mu.Lock()
					if err != nil {
						failed++
						if rowErr == nil {
							rowErr = err
						}
						mu.Unlock()
						continue
					}
					if sinkErr != nil || ctx.Err() != nil {
						mu.Unlock()
						continue // the job is over; don't checkpoint past it
					}
					data, err := json.Marshal(jobs.IndexedCampaignRow{Index: idx, Row: row})
					if err == nil {
						err = sink(data)
					}
					if err != nil {
						sinkErr = err
					}
					mu.Unlock()
				}
			}
			targetWorkers := func() int {
				w := p.Width()
				if w > len(missing) {
					w = len(missing)
				}
				if w < 1 {
					w = 1 // an empty pool still fails fast instead of hanging
				}
				return w
			}
			started := targetWorkers()
			wg.Add(started)
			for w := 0; w < started; w++ {
				go runWorker()
			}
			stopGrow := make(chan struct{})
			var growWG sync.WaitGroup
			growWG.Add(1)
			go func() {
				defer growWG.Done()
				epoch := p.Epoch()
				t := time.NewTicker(100 * time.Millisecond)
				defer t.Stop()
				for {
					select {
					case <-stopGrow:
						return
					case <-t.C:
					}
					if e := p.Epoch(); e != epoch {
						epoch = e
						for started < targetWorkers() {
							started++
							wg.Add(1)
							go runWorker()
						}
					}
				}
			}()
			for _, idx := range missing {
				select {
				case next <- idx:
				case <-ctx.Done():
					// Stop feeding; queued workers drain what's left of
					// the channel (nothing) after close below.
					close(stopGrow)
					growWG.Wait()
					close(next)
					wg.Wait()
					return ctx.Err()
				}
			}
			close(stopGrow)
			growWG.Wait()
			close(next)
			wg.Wait()
			if err := ctx.Err(); err != nil {
				return err // cancellation/shutdown keep their semantics
			}
			if sinkErr != nil {
				return sinkErr
			}
			if failed > 0 {
				return fmt.Errorf("cluster: %d campaign row(s) failed (completed rows are checkpointed; a resume recomputes only the missing ones): %w", failed, rowErr)
			}
			return nil
		},
	}
}

// maxChunk bounds one sub-batch posted to a shard. Smaller chunks lose
// less work to a dying shard; larger ones amortize the HTTP round trip.
const maxChunk = 64

// batchRounds bounds how many no-progress partition rounds a sharded
// batch job tolerates before failing (completed rows stay checkpointed).
const batchRounds = 3

// BatchKind is the sharded replacement for service.BatchJobKind: the
// variation indices still missing from the checkpoint are partitioned
// into chunks, each chunk runs on one shard via /v1/batch, and every
// streamed line is persisted under its absolute index the moment it
// arrives. A chunk cut short by a dying shard therefore loses nothing
// already streamed; the next round simply re-partitions the remainder
// across the shards that are still healthy. Deterministic per-variation
// failures are persisted as error rows (matching the single-process
// kind); transient ones — worker deadline or shutdown — stay missing
// and are retried.
func BatchKind(e *service.Engine, p *Pool) jobs.Kind {
	return jobs.Kind{
		Name: service.BatchKindName,
		Prepare: func(payload json.RawMessage) (json.RawMessage, int, error) {
			req, err := service.DecodeBatchPayload(payload)
			if err != nil {
				return nil, 0, err
			}
			if _, _, err := req.Build(e); err != nil {
				return nil, 0, err
			}
			return payload, len(req.Variations), nil
		},
		Run: func(ctx context.Context, payload json.RawMessage, prior []json.RawMessage, sink func(json.RawMessage) error) error {
			req, err := service.DecodeBatchPayload(payload)
			if err != nil {
				return err
			}
			done := make(map[int]bool, len(prior))
			for _, raw := range prior {
				var line service.BatchLine
				if err := json.Unmarshal(raw, &line); err != nil {
					return fmt.Errorf("cluster: corrupt batch job row: %w", err)
				}
				done[line.Index] = true
			}
			missing := missingIndices(len(req.Variations), done)

			var (
				mu      sync.Mutex
				sinkErr error
			)
			for round := 0; len(missing) > 0; {
				if err := ctx.Err(); err != nil {
					return err
				}
				var (
					wg      sync.WaitGroup
					callErr error
				)
				// Re-partitioned per round against the *current* weights
				// and membership: shards that joined since the last round
				// get chunks, departed ones stop being counted.
				for _, chunk := range p.partitionWeighted(missing) {
					sub := *req
					// A coordinator registry resolves "<x>@remote" (so the
					// payload validated), but workers only know local
					// names: forward the local twin.
					sub.Solver = StripRemoteSuffix(req.Solver)
					sub.Variations = make([]service.BatchVariation, len(chunk))
					for i, abs := range chunk {
						sub.Variations[i] = req.Variations[abs]
					}
					wg.Add(1)
					go func(chunk []int, sub service.BatchPayload) {
						defer wg.Done()
						err := p.BatchChunk(ctx, &sub, func(line service.BatchLine) {
							if line.Index < 0 || line.Index >= len(chunk) {
								// A shard answering for variations it was
								// never sent (version skew, misconfigured
								// endpoint) must not crash the coordinator.
								mu.Lock()
								if callErr == nil {
									callErr = fmt.Errorf("cluster: shard answered out-of-range batch index %d (chunk of %d)", line.Index, len(chunk))
								}
								mu.Unlock()
								return
							}
							abs := chunk[line.Index]
							mu.Lock()
							defer mu.Unlock()
							if done[abs] || sinkErr != nil || ctx.Err() != nil {
								return
							}
							if line.Error != "" && isTransientLineError(line.Error) {
								return // leave missing; the next round recomputes it
							}
							line.Index = abs
							// AppendJSON, not Marshal: wire-routed lines
							// carry their body as raw bytes (BatchLine.Raw)
							// that a plain Marshal would drop.
							data, err := line.AppendJSON(nil)
							if err == nil {
								err = sink(data)
							}
							if err != nil {
								sinkErr = err
								return
							}
							done[abs] = true
						})
						if err != nil {
							mu.Lock()
							if callErr == nil {
								callErr = err
							}
							mu.Unlock()
						}
					}(chunk, sub)
				}
				wg.Wait()
				mu.Lock()
				serr := sinkErr
				mu.Unlock()
				if serr != nil {
					return serr
				}
				if err := ctx.Err(); err != nil {
					return err
				}
				remaining := missingIndices(len(req.Variations), done)
				if len(remaining) >= len(missing) {
					round++
					if round >= batchRounds {
						if callErr == nil {
							callErr = fmt.Errorf("cluster: %d variation(s) failed transiently on every shard", len(remaining))
						}
						return fmt.Errorf("cluster: batch stalled with %d of %d variations missing (completed rows are checkpointed): %w",
							len(remaining), len(req.Variations), callErr)
					}
				} else {
					round = 0
				}
				missing = remaining
			}
			return nil
		},
	}
}

func missingIndices(total int, done map[int]bool) []int {
	var out []int
	for i := 0; i < total; i++ {
		if !done[i] {
			out = append(out, i)
		}
	}
	return out
}

// isTransientLineError classifies a worker's per-variation error string
// the way service.BatchJobKind classifies the underlying errors: rows
// that failed from load or lifecycle (deadline, shutdown) must not be
// frozen into the checkpoint as permanent failures. String matching is
// all the wire gives us; the sentinels are stable stdlib/service text.
func isTransientLineError(msg string) bool {
	return strings.Contains(msg, context.DeadlineExceeded.Error()) ||
		strings.Contains(msg, context.Canceled.Error()) ||
		strings.Contains(msg, "engine closed")
}

// Kinds bundles the two sharded job kinds a coordinator registers in
// place of the local ones.
func Kinds(e *service.Engine, p *Pool) []jobs.Kind {
	return []jobs.Kind{CampaignKind(p), BatchKind(e, p)}
}
