package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/service"
)

// PoolOptions configures NewPool. The zero value selects sensible
// defaults throughout.
type PoolOptions struct {
	// MaxInFlight bounds concurrent requests per shard (default 4).
	// Work beyond it waits for a slot rather than piling onto a worker
	// that is already saturated.
	MaxInFlight int
	// FailThreshold is the number of consecutive transient failures
	// that opens a shard's circuit (default 3). A failure in the
	// half-open state re-opens it immediately.
	FailThreshold int
	// OpenFor is how long an open circuit rejects traffic before
	// admitting a half-open trial request (default 2s).
	OpenFor time.Duration
	// ProbeInterval is the background health-probe period: non-closed
	// shards are pinged (GET /v1/worker/ping) and close their circuit on
	// success, so idle pools notice recovery without traffic. Default
	// 1s; negative disables probing.
	ProbeInterval time.Duration
	// MaxFailures bounds how many failed executions one pool call
	// tolerates before giving up (default 2×shards+2). Waiting for a
	// free slot does not count — only actual failed attempts do.
	MaxFailures int
	// RetryBackoff is the pause before re-scanning the shard list when
	// no shard is currently available (default 25ms).
	RetryBackoff time.Duration
	// Client is the HTTP client used for all shard traffic (default a
	// dedicated client; per-request deadlines come from contexts).
	Client *http.Client
}

func (o PoolOptions) withDefaults(shards int) PoolOptions {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 4
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 3
	}
	if o.OpenFor <= 0 {
		o.OpenFor = 2 * time.Second
	}
	if o.ProbeInterval == 0 {
		o.ProbeInterval = time.Second
	}
	if o.MaxFailures <= 0 {
		o.MaxFailures = 2*shards + 2
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 25 * time.Millisecond
	}
	if o.Client == nil {
		// No global response timeout — campaign rows and big solves are
		// legitimately slow, and per-call deadlines come from contexts —
		// but connection establishment is bounded and keepalives detect
		// dead peers, so an unreachable or firewalled shard fails fast
		// instead of hanging a job.
		o.Client = &http.Client{Transport: &http.Transport{
			DialContext: (&net.Dialer{
				Timeout:   5 * time.Second,
				KeepAlive: 15 * time.Second,
			}).DialContext,
			MaxIdleConnsPerHost: o.MaxInFlight,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	return o
}

// ErrNoShard is the terminal error of a pool call that never found an
// available shard (every circuit open, or every attempt failed).
var ErrNoShard = errors.New("cluster: no healthy shard available")

// breakerState is a shard's circuit position.
type breakerState int

const (
	stateClosed breakerState = iota
	stateOpen
	stateHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case stateOpen:
		return "open"
	case stateHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// shard is one worker process, its circuit breaker and its counters.
type shard struct {
	addr string        // base URL, no trailing slash
	sem  chan struct{} // in-flight slots

	mu        sync.Mutex
	state     breakerState
	fails     int       // consecutive transient failures
	openUntil time.Time // when an open circuit admits its trial

	requests, failures, failovers uint64
}

// tryAcquire takes an in-flight slot if the shard has one free and its
// circuit admits traffic: closed always does; open does once OpenFor
// has elapsed (the caller becomes the half-open trial); half-open
// admits nothing while its trial is outstanding.
func (s *shard) tryAcquire(now time.Time) bool {
	select {
	case s.sem <- struct{}{}:
	default:
		return false
	}
	s.mu.Lock()
	admitted := false
	switch s.state {
	case stateClosed:
		admitted = true
	case stateOpen:
		if now.After(s.openUntil) {
			s.state = stateHalfOpen
			admitted = true
		}
	case stateHalfOpen:
		// The trial is in flight; nobody else gets through.
	}
	if admitted {
		s.requests++
	}
	s.mu.Unlock()
	if !admitted {
		<-s.sem
	}
	return admitted
}

func (s *shard) release() { <-s.sem }

// recordSuccess closes the circuit (a half-open trial that succeeds
// recovers the shard).
func (s *shard) recordSuccess() {
	s.mu.Lock()
	s.fails = 0
	s.state = stateClosed
	s.mu.Unlock()
}

// recordFailure counts a transient failure; enough of them in a row —
// or any in the half-open state — open the circuit for OpenFor.
func (s *shard) recordFailure(openFor time.Duration, threshold int, failedOver bool) {
	s.mu.Lock()
	s.failures++
	if failedOver {
		s.failovers++
	}
	s.fails++
	if s.state == stateHalfOpen || s.fails >= threshold {
		s.state = stateOpen
		s.openUntil = time.Now().Add(openFor)
	}
	s.mu.Unlock()
}

// Pool fans work out over a static list of worker shards. All methods
// are safe for concurrent use.
type Pool struct {
	shards []*shard
	opts   PoolOptions
	rr     atomic.Uint64 // round-robin scan offset

	stopProbe chan struct{}
	probeWG   sync.WaitGroup
	closeOnce sync.Once
}

// NewPool builds a pool over the shard addresses ("host:port" or full
// URLs) and starts its health prober. Close releases the prober.
func NewPool(addrs []string, opts PoolOptions) (*Pool, error) {
	if len(addrs) == 0 {
		return nil, errors.New("cluster: pool needs at least one shard address")
	}
	p := &Pool{opts: opts.withDefaults(len(addrs)), stopProbe: make(chan struct{})}
	seen := map[string]bool{}
	for _, a := range addrs {
		addr := strings.TrimSpace(a)
		if addr == "" {
			return nil, errors.New("cluster: empty shard address")
		}
		if !strings.Contains(addr, "://") {
			addr = "http://" + addr
		}
		addr = strings.TrimRight(addr, "/")
		if seen[addr] {
			return nil, fmt.Errorf("cluster: duplicate shard address %s", addr)
		}
		seen[addr] = true
		p.shards = append(p.shards, &shard{
			addr: addr,
			sem:  make(chan struct{}, p.opts.MaxInFlight),
		})
	}
	if p.opts.ProbeInterval > 0 {
		p.probeWG.Add(1)
		go p.probeLoop()
	}
	return p, nil
}

// Close stops the background prober. In-flight calls finish normally.
func (p *Pool) Close() {
	p.closeOnce.Do(func() { close(p.stopProbe) })
	p.probeWG.Wait()
}

// Width is the pool's total admission capacity — shards × per-shard
// in-flight slots. Fan-out callers size their worker sets to it; more
// concurrency than this only spins on the acquire loop.
func (p *Pool) Width() int { return len(p.shards) * p.opts.MaxInFlight }

// Addrs lists the shard base URLs in pool order.
func (p *Pool) Addrs() []string {
	out := make([]string, len(p.shards))
	for i, s := range p.shards {
		out[i] = s.addr
	}
	return out
}

// ShardStats implements service.ClusterInfo for /healthz and /metrics.
func (p *Pool) ShardStats() []service.ShardStat {
	out := make([]service.ShardStat, len(p.shards))
	for i, s := range p.shards {
		s.mu.Lock()
		out[i] = service.ShardStat{
			Addr:      s.addr,
			State:     s.state.String(),
			Healthy:   s.state == stateClosed,
			InFlight:  len(s.sem),
			Requests:  s.requests,
			Failures:  s.failures,
			Failovers: s.failovers,
		}
		s.mu.Unlock()
	}
	return out
}

// probeLoop pings every non-closed shard each interval; a successful
// ping closes its circuit, so recovery is noticed without waiting for
// live traffic to trickle through the half-open state.
func (p *Pool) probeLoop() {
	defer p.probeWG.Done()
	t := time.NewTicker(p.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-p.stopProbe:
			return
		case <-t.C:
		}
		for _, s := range p.shards {
			s.mu.Lock()
			closed := s.state == stateClosed
			s.mu.Unlock()
			if closed {
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			err := p.ping(ctx, s)
			cancel()
			if err == nil {
				s.recordSuccess()
			}
		}
	}
}

// acquire scans the shards round-robin and returns the first one that
// is not excluded and admits traffic, or nil when none does right now.
func (p *Pool) acquire(exclude map[*shard]bool) *shard {
	start := int(p.rr.Add(1))
	now := time.Now()
	for i := 0; i < len(p.shards); i++ {
		s := p.shards[(start+i)%len(p.shards)]
		if exclude[s] {
			continue
		}
		if s.tryAcquire(now) {
			return s
		}
	}
	return nil
}

// do runs f against one shard, with bounded failover. Transient
// failures (transport errors, 5xx, worker shutdown) open breakers and
// — for idempotent work — move on to another shard, preferring ones
// not yet tried this call; permanent failures (4xx: the request itself
// is bad) return immediately without blaming the shard. Waiting for a
// free slot is not an attempt: a fully busy pool simply queues here
// until a slot frees or ctx expires.
func (p *Pool) do(ctx context.Context, idempotent bool, f func(ctx context.Context, s *shard) error) error {
	exclude := map[*shard]bool{}
	var lastErr error
	failuresLeft := p.opts.MaxFailures
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		s := p.acquire(exclude)
		if s == nil {
			// Nothing available: forget exclusions (a previously failed
			// shard may have recovered by the time we rescan) and wait.
			clear(exclude)
			select {
			case <-ctx.Done():
				if lastErr != nil {
					return fmt.Errorf("%w (last shard error: %w)", ctx.Err(), lastErr)
				}
				return ctx.Err()
			case <-time.After(p.opts.RetryBackoff):
			}
			continue
		}
		err := f(ctx, s)
		s.release()
		if err == nil {
			s.recordSuccess()
			return nil
		}
		if ctx.Err() != nil {
			// Our caller's deadline or cancellation, not the shard's
			// fault: don't poison its breaker.
			return ctx.Err()
		}
		if isPermanent(err) {
			s.recordSuccess() // the shard answered; the request was bad
			return err
		}
		lastErr = err
		failuresLeft--
		s.recordFailure(p.opts.OpenFor, p.opts.FailThreshold, idempotent && failuresLeft > 0)
		if !idempotent {
			return lastErr
		}
		if failuresLeft <= 0 {
			// The failover budget is spent across the whole pool: that is
			// the "no healthy shard" outcome, tagged so callers can
			// distinguish cluster exhaustion from a single bad call.
			return fmt.Errorf("%w after %d failed attempts: %w", ErrNoShard, p.opts.MaxFailures, lastErr)
		}
		exclude[s] = true
	}
}
