package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// PoolOptions configures NewPool. The zero value selects sensible
// defaults throughout.
type PoolOptions struct {
	// MaxInFlight bounds concurrent requests per shard *per weight
	// unit* (default 4): a weight-2 shard admits twice what a weight-1
	// shard does. Work beyond the bound waits for a slot rather than
	// piling onto a worker that is already saturated.
	MaxInFlight int
	// FailThreshold is the number of consecutive transient failures
	// that opens a shard's circuit (default 3). A failure in the
	// half-open state re-opens it immediately.
	FailThreshold int
	// OpenFor is how long an open circuit rejects traffic before
	// admitting a half-open trial request (default 2s).
	OpenFor time.Duration
	// ProbeInterval is the background health-probe period: non-closed
	// shards are pinged (GET /v1/worker/ping) and close their circuit on
	// success, so idle pools notice recovery without traffic. Default
	// 1s; negative disables probing.
	ProbeInterval time.Duration
	// MaxFailures bounds how many failed executions one pool call
	// tolerates before giving up (default 2×shards+2, tracking the
	// current membership). Waiting for a free slot does not count —
	// only actual failed attempts do.
	MaxFailures int
	// RetryBackoff is the pause before re-scanning the shard list when
	// no shard is currently available (default 25ms).
	RetryBackoff time.Duration
	// ExpireAfter is the number of consecutive failed health probes
	// after which a file- or API-origin shard is expired from the
	// membership entirely (its breaker state and counters discarded), so
	// a worker that was killed without deregistering stops occupying a
	// seat forever. Shards from the static NewPool list never expire —
	// the operator put them there explicitly. 0 (the default) disables
	// expiry; expiry also requires probing to be enabled.
	ExpireAfter int
	// DisableWire forces all shard traffic onto the per-call JSON/HTTP
	// path. By default the pool upgrades each shard's links to the
	// persistent binary wire transport (falling back per shard when a
	// worker doesn't speak it).
	DisableWire bool
	// RouteCacheSize bounds the coordinator's routed-row cache — raw
	// result bytes of wire-routed batch variations, keyed by canonical
	// request hash, served without re-contacting a shard when an inline
	// batch repeats a variation. 0 selects the default of 4096 entries;
	// negative disables the cache.
	RouteCacheSize int
	// RouteCacheMaxBytes additionally bounds the routed-row cache's
	// approximate retained footprint, mirroring the engine cache's byte
	// limit: include_solution rows can be large, so an entry count alone
	// does not bound memory. 0 selects the default of 256 MiB; negative
	// removes the byte bound (entry count still applies).
	RouteCacheMaxBytes int64
	// FederateInterval is how often the probe loop additionally scrapes
	// each healthy shard's /metrics for the federated
	// GET /v1/cluster/metrics view (default 5s; negative disables
	// federation). A shard whose last good scrape is older than three
	// intervals ages out of the merge; scraping requires probing to be
	// enabled.
	FederateInterval time.Duration
	// Client is the HTTP client used for all shard traffic (default a
	// dedicated client; per-request deadlines come from contexts).
	Client *http.Client
	// Logger receives membership changes and circuit-breaker transitions
	// (nil discards).
	Logger *slog.Logger
	// Events, when set, receives the cluster event journal: shard
	// join/leave/expire, circuit transitions, wire fallback and redial.
	Events *obs.EventRing
}

func (o PoolOptions) withDefaults() PoolOptions {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 4
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 3
	}
	if o.OpenFor <= 0 {
		o.OpenFor = 2 * time.Second
	}
	if o.ProbeInterval == 0 {
		o.ProbeInterval = time.Second
	}
	if o.MaxFailures < 0 {
		o.MaxFailures = 0 // 0 = track membership size in do()
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 25 * time.Millisecond
	}
	if o.ExpireAfter < 0 {
		o.ExpireAfter = 0
	}
	if o.RouteCacheSize == 0 {
		o.RouteCacheSize = 4096
	}
	if o.FederateInterval == 0 {
		o.FederateInterval = 5 * time.Second
	}
	if o.RouteCacheMaxBytes == 0 {
		o.RouteCacheMaxBytes = 256 << 20
	}
	if o.Logger == nil {
		o.Logger = obs.NopLogger()
	}
	if o.Client == nil {
		// No global response timeout — campaign rows and big solves are
		// legitimately slow, and per-call deadlines come from contexts —
		// but connection establishment is bounded and keepalives detect
		// dead peers, so an unreachable or firewalled shard fails fast
		// instead of hanging a job.
		o.Client = &http.Client{Transport: &http.Transport{
			DialContext: (&net.Dialer{
				Timeout:   5 * time.Second,
				KeepAlive: 15 * time.Second,
			}).DialContext,
			MaxIdleConnsPerHost: o.MaxInFlight,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	return o
}

// ErrNoShard is the terminal error of a pool call that never found an
// available shard (empty membership, every circuit open, or every
// attempt failed).
var ErrNoShard = errors.New("cluster: no healthy shard available")

// maxShardWeight caps a shard's placement weight: weights are advisory
// share ratios, and an absurd self-reported core count must not let one
// shard monopolize the smooth-WRR picker (or its iteration bound).
const maxShardWeight = 256

// Shard-membership origins. A shard joined by exactly one path; file
// reloads reconcile only the file-origin subset, so an operator's
// static list and API-registered workers survive a reload untouched.
const (
	originStatic = "static" // the NewPool address list
	originFile   = "file"   // a -shards-file entry
	originAPI    = "api"    // POST /v1/cluster/shards (self-registration)
)

// breakerState is a shard's circuit position.
type breakerState int

const (
	stateClosed breakerState = iota
	stateOpen
	stateHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case stateOpen:
		return "open"
	case stateHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// shard is one worker process, its circuit breaker and its counters.
type shard struct {
	addr   string // base URL, no trailing slash
	origin string // originStatic / originFile / originAPI
	log    *slog.Logger
	events *obs.EventRing // cluster event journal (nil-safe)

	// fedMu guards the federated-metrics cache: the shard's last
	// successfully scraped-and-parsed /metrics families and when they
	// were taken.
	fedMu   sync.Mutex
	fedFams map[string]*obs.Family
	fedAt   time.Time

	mu           sync.Mutex
	weight       int  // placement weight (>= 1)
	explicit     bool // weight was set by the operator; pings don't override
	cur          int  // smooth-WRR accumulator
	inflight     int
	capacity     int // MaxInFlight × weight
	state        breakerState
	fails        int       // consecutive transient failures
	openUntil    time.Time // when an open circuit admits its trial
	missedProbes int       // consecutive failed health probes (expiry)

	requests, failures, failovers uint64

	wire shardWire // persistent wire-transport links (its own lock)
}

// tryAcquire takes an in-flight slot if the shard has one free and its
// circuit admits traffic: closed always does; open does once OpenFor
// has elapsed (the caller becomes the half-open trial); half-open
// admits nothing while its trial is outstanding.
func (s *shard) tryAcquire(now time.Time) bool {
	s.mu.Lock()
	if s.inflight >= s.capacity {
		s.mu.Unlock()
		return false
	}
	admitted, halfOpened := false, false
	switch s.state {
	case stateClosed:
		admitted = true
	case stateOpen:
		if now.After(s.openUntil) {
			s.state = stateHalfOpen
			halfOpened = true
			admitted = true
		}
	case stateHalfOpen:
		// The trial is in flight; nobody else gets through.
	}
	if admitted {
		s.inflight++
		s.requests++
	}
	s.mu.Unlock()
	if halfOpened {
		s.events.Emit(context.Background(), "circuit_half_open",
			"shard circuit half-open: trial request admitted", "shard", s.addr)
	}
	return admitted
}

func (s *shard) release() {
	s.mu.Lock()
	s.inflight--
	s.mu.Unlock()
}

// recordSuccess closes the circuit (a half-open trial that succeeds
// recovers the shard).
func (s *shard) recordSuccess() {
	s.mu.Lock()
	recovered := s.state != stateClosed
	s.fails = 0
	s.state = stateClosed
	s.mu.Unlock()
	if recovered {
		s.log.Info("shard circuit closed", "shard", s.addr)
		s.events.Emit(context.Background(), "circuit_closed",
			"shard circuit closed: shard recovered", "shard", s.addr)
	}
}

// recordFailure counts a transient failure; enough of them in a row —
// or any in the half-open state — open the circuit for OpenFor.
func (s *shard) recordFailure(openFor time.Duration, threshold int, failedOver bool) {
	s.mu.Lock()
	s.failures++
	if failedOver {
		s.failovers++
	}
	s.fails++
	opened := false
	if s.state == stateHalfOpen || s.fails >= threshold {
		opened = s.state != stateOpen
		s.state = stateOpen
		s.openUntil = time.Now().Add(openFor)
	}
	fails := s.fails
	s.mu.Unlock()
	if opened {
		s.log.Warn("shard circuit opened",
			"shard", s.addr, "consecutive_failures", fails, "open_for", openFor.String())
		s.events.Emit(context.Background(), "circuit_open",
			"shard circuit opened after consecutive failures",
			"shard", s.addr, "consecutive_failures", fmt.Sprint(fails))
	}
}

// setWeight applies a weight change (clamped to [1, maxShardWeight])
// and rescales the in-flight capacity. explicit weights — set by the
// operator at registration — stick; discovered ones (ping-reported
// core counts) track the latest report.
func (s *shard) setWeight(w int, explicit bool, perUnit int) bool {
	if w < 1 {
		w = 1
	}
	if w > maxShardWeight {
		w = maxShardWeight
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.explicit && !explicit {
		return false
	}
	changed := s.weight != w
	s.weight = w
	s.explicit = s.explicit || explicit
	s.capacity = perUnit * w
	return changed
}

func (s *shard) stat() service.ShardStat {
	s.wire.mu.Lock()
	wireIdle := len(s.wire.idle)
	s.wire.mu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	return service.ShardStat{
		Addr:      s.addr,
		State:     s.state.String(),
		Healthy:   s.state == stateClosed,
		Weight:    s.weight,
		InFlight:  s.inflight,
		Requests:  s.requests,
		Failures:  s.failures,
		Failovers: s.failovers,
		WireIdle:  wireIdle,
	}
}

// Pool fans work out over a mutable set of worker shards: members join
// and leave at runtime (registration API, file reload) and a smooth
// weighted-round-robin picker hands work out proportionally to shard
// weights. All methods are safe for concurrent use.
type Pool struct {
	mu     sync.RWMutex // guards shards slice + picker state
	shards []*shard
	epoch  atomic.Uint64 // bumped on every membership change
	opts   PoolOptions

	batchesRouted     atomic.Uint64
	rowsRouted        atomic.Uint64
	rowsLocalFallback atomic.Uint64
	batchCacheShort   atomic.Uint64 // routed variations served from coordinator caches
	shardsExpired     atomic.Uint64
	wireConns         atomic.Uint64 // wire connections dialed
	wireReqs          atomic.Uint64 // requests sent over the wire transport
	wireRows          atomic.Uint64 // row frames received
	wireFallbacks     atomic.Uint64 // upgrades refused → JSON fallback

	// routeCache holds raw wire-routed row bytes by canonical request
	// key (nil when disabled).
	routeCache *rawCache

	// Latency histograms exposed via service.ClusterLatencies: shard
	// HTTP round-trips per shard, routed-batch chunk dispatch-to-done,
	// and reorder-buffer wait of completed lines.
	shardRTT    *obs.HistogramVec
	batchChunk  *obs.Histogram
	reorderWait *obs.Histogram

	log *slog.Logger

	stopProbe chan struct{}
	probeWG   sync.WaitGroup
	closeOnce sync.Once
}

// normalizeAddr canonicalizes a shard address ("host:port" or full URL)
// to the base-URL form membership is keyed by.
func normalizeAddr(a string) (string, error) {
	addr := strings.TrimSpace(a)
	if addr == "" {
		return "", errors.New("cluster: empty shard address")
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/"), nil
}

// NewPool builds a pool over the initial shard addresses ("host:port"
// or full URLs) and starts its health prober. The list may be empty —
// a coordinator can start bare and let workers register themselves
// (POST /v1/cluster/shards) or arrive via a -shards-file reload. Close
// releases the prober.
func NewPool(addrs []string, opts PoolOptions) (*Pool, error) {
	p := &Pool{
		opts:        opts.withDefaults(),
		stopProbe:   make(chan struct{}),
		shardRTT:    obs.NewHistogramVec(nil),
		batchChunk:  obs.NewHistogram(nil),
		reorderWait: obs.NewHistogram(nil),
	}
	p.routeCache = newRawCache(p.opts.RouteCacheSize, p.opts.RouteCacheMaxBytes)
	p.log = p.opts.Logger
	seen := map[string]bool{}
	for _, a := range addrs {
		addr, err := normalizeAddr(a)
		if err != nil {
			return nil, err
		}
		if seen[addr] {
			return nil, fmt.Errorf("cluster: duplicate shard address %s", addr)
		}
		seen[addr] = true
		p.shards = append(p.shards, p.newShard(addr, originStatic, 0))
	}
	if p.opts.ProbeInterval > 0 {
		p.probeWG.Add(1)
		go p.probeLoop()
	}
	return p, nil
}

// newShard builds a member with a fresh (closed) breaker. weight <= 0
// selects the default of 1, refreshed by the next successful ping.
func (p *Pool) newShard(addr, origin string, weight int) *shard {
	s := &shard{addr: addr, origin: origin, log: p.opts.Logger, events: p.opts.Events}
	s.setWeight(weight, weight > 0, p.opts.MaxInFlight)
	return s
}

// Close stops the background prober and tears down every shard's
// persistent wire connections. In-flight calls finish normally (a call
// holding a wire connection keeps it; it just won't be parked again).
func (p *Pool) Close() {
	p.closeOnce.Do(func() { close(p.stopProbe) })
	p.probeWG.Wait()
	for _, s := range p.snapshot() {
		s.wireClose()
	}
}

// Epoch is the current membership epoch; it increments on every join,
// leave or reload-driven change. Long-running jobs compare epochs to
// notice joins mid-run and grow their fan-out.
func (p *Pool) Epoch() uint64 { return p.epoch.Load() }

// AddShard joins a worker at runtime (implements
// service.ClusterMembership). A known address is not re-added: its
// weight is updated instead (a worker heartbeat re-registering after a
// coordinator restart, or an operator re-weighting), and the epoch only
// advances when membership or weights actually changed.
func (p *Pool) AddShard(addr string, weight int) (service.ShardStat, bool, error) {
	return p.addShard(addr, originAPI, weight)
}

func (p *Pool) addShard(addr, origin string, weight int) (service.ShardStat, bool, error) {
	norm, err := normalizeAddr(addr)
	if err != nil {
		return service.ShardStat{}, false, err
	}
	p.mu.Lock()
	for _, s := range p.shards {
		if s.addr == norm {
			p.mu.Unlock()
			if weight > 0 && s.setWeight(weight, true, p.opts.MaxInFlight) {
				p.epoch.Add(1)
			}
			return s.stat(), false, nil
		}
	}
	s := p.newShard(norm, origin, weight)
	p.shards = append(p.shards, s)
	p.mu.Unlock()
	p.epoch.Add(1)
	p.log.Info("shard joined", "shard", norm, "origin", origin, "weight", weight, "epoch", p.epoch.Load())
	p.opts.Events.Emit(context.Background(), "shard_joined", "shard joined the pool",
		"shard", norm, "origin", origin)
	if weight <= 0 {
		// Learn the real capacity in the background; placement runs on
		// the default weight of 1 until the worker answers.
		go p.probeWeight(s)
	}
	return s.stat(), true, nil
}

// RemoveShard leaves a worker (implements service.ClusterMembership).
// Requests in flight on it finish or fail over normally; its breaker
// state and counters are discarded, so a later re-join starts fresh.
func (p *Pool) RemoveShard(addr string) bool {
	if !p.removeShard(addr) {
		return false
	}
	p.opts.Events.Emit(context.Background(), "shard_left", "shard left the pool", "shard", addr)
	return true
}

// removeShard is RemoveShard without the shard_left event — probe-driven
// expiry journals shard_expired instead of a voluntary departure.
func (p *Pool) removeShard(addr string) bool {
	norm, err := normalizeAddr(addr)
	if err != nil {
		return false
	}
	p.mu.Lock()
	for i, s := range p.shards {
		if s.addr == norm {
			p.shards = append(p.shards[:i], p.shards[i+1:]...)
			p.mu.Unlock()
			s.wireClose()
			p.epoch.Add(1)
			p.log.Info("shard left", "shard", norm, "epoch", p.epoch.Load())
			return true
		}
	}
	p.mu.Unlock()
	return false
}

// snapshot returns the current member slice (shared pointers, private
// slice header).
func (p *Pool) snapshot() []*shard {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]*shard, len(p.shards))
	copy(out, p.shards)
	return out
}

// ShardCount is the current membership size.
func (p *Pool) ShardCount() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.shards)
}

// Width is the pool's total admission capacity — the sum over shards of
// weight × per-unit in-flight slots. Fan-out callers size their worker
// sets to it; more concurrency than this only spins on the acquire
// loop. It changes with membership: poll it (or Epoch) mid-job.
func (p *Pool) Width() int {
	w := 0
	for _, s := range p.snapshot() {
		s.mu.Lock()
		w += s.capacity
		s.mu.Unlock()
	}
	return w
}

// TotalWeight sums the member weights (minimum 0 for an empty pool).
func (p *Pool) TotalWeight() int {
	w := 0
	for _, s := range p.snapshot() {
		s.mu.Lock()
		w += s.weight
		s.mu.Unlock()
	}
	return w
}

// Addrs lists the shard base URLs in membership order.
func (p *Pool) Addrs() []string {
	shards := p.snapshot()
	out := make([]string, len(shards))
	for i, s := range shards {
		out[i] = s.addr
	}
	return out
}

// ShardStats implements service.ClusterInfo for /healthz and /metrics.
func (p *Pool) ShardStats() []service.ShardStat {
	shards := p.snapshot()
	out := make([]service.ShardStat, len(shards))
	for i, s := range shards {
		out[i] = s.stat()
	}
	return out
}

// ClusterStats implements service.ClusterStatsProvider.
func (p *Pool) ClusterStats() service.ClusterStats {
	return service.ClusterStats{
		Epoch:                   p.epoch.Load(),
		BatchesRouted:           p.batchesRouted.Load(),
		RowsRouted:              p.rowsRouted.Load(),
		RowsLocalFallback:       p.rowsLocalFallback.Load(),
		BatchCacheShortCircuits: p.batchCacheShort.Load(),
		ShardsExpired:           p.shardsExpired.Load(),
		WireConnections:         p.wireConns.Load(),
		WireRequests:            p.wireReqs.Load(),
		WireRows:                p.wireRows.Load(),
		WireFallbacks:           p.wireFallbacks.Load(),
	}
}

// ClusterHistograms implements service.ClusterLatencies for /metrics.
func (p *Pool) ClusterHistograms() service.ClusterHistograms {
	return service.ClusterHistograms{
		ShardRTT:    p.shardRTT.Snapshot(),
		BatchChunk:  p.batchChunk.Snapshot(),
		ReorderWait: p.reorderWait.Snapshot(),
	}
}

// probeLoop pings every shard each interval. For a non-closed shard a
// successful ping closes its circuit, so recovery is noticed without
// waiting for live traffic to trickle through the half-open state; for
// a healthy shard the ping's side effect keeps the discovered weight
// fresh — a worker whose one join-time probe raced its own listener
// coming up would otherwise serve at the default weight forever.
func (p *Pool) probeLoop() {
	defer p.probeWG.Done()
	t := time.NewTicker(p.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-p.stopProbe:
			return
		case <-t.C:
		}
		for _, s := range p.snapshot() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			err := p.ping(ctx, s)
			cancel()
			if err != nil {
				// Breakers open on request outcomes, not probes — but
				// enough missed probes in a row expire a dynamic member
				// outright (see PoolOptions.ExpireAfter).
				p.recordMissedProbe(s)
				continue
			}
			s.mu.Lock()
			closed := s.state == stateClosed
			s.mu.Unlock()
			if !closed {
				s.recordSuccess()
			}
			p.maybeFederate(s)
		}
	}
}

// recordMissedProbe counts one failed health probe and expires the
// shard once ExpireAfter of them accumulate — dynamic members only:
// a shard from the operator's static list keeps its seat no matter how
// long it is gone.
func (p *Pool) recordMissedProbe(s *shard) {
	s.mu.Lock()
	s.missedProbes++
	missed := s.missedProbes
	origin := s.origin
	s.mu.Unlock()
	if p.opts.ExpireAfter <= 0 || origin == originStatic || missed < p.opts.ExpireAfter {
		return
	}
	if p.removeShard(s.addr) {
		p.shardsExpired.Add(1)
		p.log.Warn("shard expired after missed probes",
			"shard", s.addr, "origin", origin, "missed_probes", missed)
		p.opts.Events.Emit(context.Background(), "shard_expired",
			"shard expired after missed health probes",
			"shard", s.addr, "origin", origin, "missed_probes", fmt.Sprint(missed))
	}
}

// probeWeight pings a just-joined shard once to learn its self-reported
// capacity (ping updates the weight as a side effect).
func (p *Pool) probeWeight(s *shard) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	p.ping(ctx, s)
}

// pickOrder returns the members in this acquisition's preference order.
// The leader comes from one smooth-weighted-round-robin step — across
// consecutive calls each shard leads in exact proportion to its weight,
// interleaved rather than bursty — and the rest follow by descending
// accumulator, i.e. "most underserved first". Shards the caller cannot
// use (busy, open circuit, excluded) are simply tried later in the
// order; the WRR charge stays on the leader, which is the standard
// (slightly lossy, entirely harmless) treatment.
func (p *Pool) pickOrder() []*shard {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.shards)
	if n == 0 {
		return nil
	}
	type ranked struct {
		s   *shard
		cur int
	}
	order := make([]ranked, n)
	total := 0
	for i, s := range p.shards {
		s.mu.Lock()
		s.cur += s.weight
		total += s.weight
		order[i] = ranked{s, s.cur}
		s.mu.Unlock()
	}
	best := 0
	for i := 1; i < n; i++ {
		if order[i].cur > order[best].cur {
			best = i
		}
	}
	order[best].s.mu.Lock()
	order[best].s.cur -= total
	order[best].s.mu.Unlock()
	order[best].cur += maxShardWeight * (n + 1) // rank the leader first
	sort.Slice(order, func(i, j int) bool { return order[i].cur > order[j].cur })
	out := make([]*shard, n)
	for i, r := range order {
		out[i] = r.s
	}
	return out
}

// acquire returns the first shard in weighted preference order that is
// not excluded and admits traffic, or nil when none does right now.
func (p *Pool) acquire(exclude map[*shard]bool) *shard {
	now := time.Now()
	for _, s := range p.pickOrder() {
		if exclude[s] {
			continue
		}
		if s.tryAcquire(now) {
			return s
		}
	}
	return nil
}

// maxFailures is the per-call failover budget under the current
// membership.
func (p *Pool) maxFailures() int {
	if p.opts.MaxFailures > 0 {
		return p.opts.MaxFailures
	}
	return 2*p.ShardCount() + 2
}

// do runs f against one shard, with bounded failover. Transient
// failures (transport errors, 5xx, worker shutdown) open breakers and
// — for idempotent work — move on to another shard, preferring ones
// not yet tried this call; permanent failures (4xx: the request itself
// is bad) return immediately without blaming the shard. Waiting for a
// free slot is not an attempt: a fully busy pool simply queues here
// until a slot frees or ctx expires. Because membership is re-read on
// every acquisition, a shard that joins mid-wait is picked up and one
// that leaves stops being offered — an empty pool is the one terminal
// case, failing fast with ErrNoShard.
func (p *Pool) do(ctx context.Context, idempotent bool, f func(ctx context.Context, s *shard) error) error {
	exclude := map[*shard]bool{}
	var lastErr error
	failuresLeft := p.maxFailures()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if p.ShardCount() == 0 {
			return fmt.Errorf("%w: pool has no members", ErrNoShard)
		}
		s := p.acquire(exclude)
		if s == nil {
			// Nothing available: forget exclusions (a previously failed
			// shard may have recovered by the time we rescan) and wait.
			clear(exclude)
			select {
			case <-ctx.Done():
				if lastErr != nil {
					return fmt.Errorf("%w (last shard error: %w)", ctx.Err(), lastErr)
				}
				return ctx.Err()
			case <-time.After(p.opts.RetryBackoff):
			}
			continue
		}
		err := f(ctx, s)
		s.release()
		if err == nil {
			s.recordSuccess()
			return nil
		}
		if ctx.Err() != nil {
			// Our caller's deadline or cancellation, not the shard's
			// fault: don't poison its breaker.
			return ctx.Err()
		}
		if isPermanent(err) {
			s.recordSuccess() // the shard answered; the request was bad
			return err
		}
		lastErr = err
		failuresLeft--
		s.recordFailure(p.opts.OpenFor, p.opts.FailThreshold, idempotent && failuresLeft > 0)
		if !idempotent {
			return lastErr
		}
		if failuresLeft <= 0 {
			// The failover budget is spent across the whole pool: that is
			// the "no healthy shard" outcome, tagged so callers can
			// distinguish cluster exhaustion from a single bad call.
			return fmt.Errorf("%w after %d failed attempts: %w", ErrNoShard, p.maxFailures(), lastErr)
		}
		exclude[s] = true
	}
}
