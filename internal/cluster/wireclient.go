package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster/wire"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/service"
)

// errWireUnsupported marks a shard that answered the upgrade with plain
// HTTP (an older worker, a TLS endpoint, -wire=false): the caller falls
// back to the JSON path and remembers the verdict until a successful
// ping invites a retry.
var errWireUnsupported = errors.New("cluster: shard does not speak " + wire.ProtocolName)

// maxIdleWireConns bounds the per-shard idle connection pool. Beyond
// it, finished connections are closed instead of parked — enough to
// cover a busy shard's in-flight slots without hoarding sockets.
const maxIdleWireConns = 16

// wireConn is one persistent upgraded connection to a shard. A
// connection serves one request at a time (concurrency comes from
// pooling connections), so its reader, writer and stream counter need
// no locking.
type wireConn struct {
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	r       *wire.Reader
	w       *wire.Writer
	stream  uint32
	version int // negotiated protocol revision (wire.Version or wire.VersionTraced)
}

// watch closes the connection when ctx is canceled, unblocking any
// read in flight; the returned stop releases the watcher.
func (wc *wireConn) watch(ctx context.Context) (stop func()) {
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			wc.conn.Close()
		case <-done:
		}
	}()
	return func() { close(done) }
}

// shardWire is a shard's wire-transport state: parked idle connections
// plus the "speaks JSON only" verdict. It has its own lock — wire
// checkouts must not contend with the breaker path.
type shardWire struct {
	mu       sync.Mutex
	idle     []*wireConn
	down     bool // upgrade refused; cleared by a successful ping
	closed   bool // the shard left the pool; park nothing, close everything
	v1Logged bool // the rp-wire/1 redial was journaled; cleared by wireUp
}

// dialWire opens a TCP connection to the shard and upgrades it to the
// wire protocol, offering rp-wire/2 first. A worker that only knows
// rp-wire/1 refuses the v2 token with its standard 426 — whose Upgrade
// header names rp-wire/1 — and we redial at v1 (the connection is dead
// after an upgrade refusal: http.Error closes it). Anything but a
// clean 101 with a protocol token is errWireUnsupported — the version
// handshake is exactly "both ends name a protocol or we speak JSON".
func dialWire(ctx context.Context, addr string) (*wireConn, error) {
	wc, err := dialWireVersion(ctx, addr, wire.ProtocolV2, wire.VersionTraced)
	if errors.Is(err, errWireDowngrade) {
		wc, err = dialWireVersion(ctx, addr, wire.ProtocolName, wire.Version)
	}
	if errors.Is(err, errWireDowngrade) {
		return nil, errWireUnsupported
	}
	return wc, err
}

// errWireDowngrade is dialWireVersion's "the shard named rp-wire/1
// instead" verdict: retry once at v1 before declaring the shard
// JSON-only.
var errWireDowngrade = errors.New("cluster: shard offered " + wire.ProtocolName)

func dialWireVersion(ctx context.Context, addr, token string, version int) (*wireConn, error) {
	u, err := url.Parse(addr)
	if err != nil || u.Host == "" {
		return nil, &permanentError{fmt.Errorf("cluster: bad shard address %q", addr)}
	}
	if u.Scheme != "http" {
		return nil, errWireUnsupported // TLS shards stay on the JSON path
	}
	d := net.Dialer{Timeout: 5 * time.Second, KeepAlive: 15 * time.Second}
	conn, err := d.DialContext(ctx, "tcp", u.Host)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodGet, addr+"/v1/wire", nil)
	if err != nil {
		conn.Close()
		return nil, &permanentError{err}
	}
	req.Header.Set("Upgrade", token)
	req.Header.Set("Connection", "Upgrade")
	conn.SetDeadline(time.Now().Add(5 * time.Second)) // the handshake only
	if err := req.Write(conn); err != nil {
		conn.Close()
		return nil, err
	}
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, req)
	if err != nil {
		conn.Close()
		return nil, err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusSwitchingProtocols ||
		!strings.EqualFold(resp.Header.Get("Upgrade"), token) {
		downgrade := token != wire.ProtocolName &&
			strings.EqualFold(resp.Header.Get("Upgrade"), wire.ProtocolName)
		conn.Close()
		if downgrade {
			return nil, errWireDowngrade
		}
		return nil, errWireUnsupported
	}
	conn.SetDeadline(time.Time{})
	bw := bufio.NewWriter(conn)
	return &wireConn{conn: conn, br: br, bw: bw, r: wire.NewReader(br), w: wire.NewWriter(bw), version: version}, nil
}

// wireEnabled reports whether this shard should be tried over the wire
// transport right now.
func (p *Pool) wireEnabled(s *shard) bool {
	if p.opts.DisableWire {
		return false
	}
	s.wire.mu.Lock()
	defer s.wire.mu.Unlock()
	return !s.wire.down && !s.wire.closed
}

// wireCheckout hands out an idle connection or dials a fresh one.
// reused tells the caller whether a pre-response failure may just be a
// stale keep-alive (retry on a fresh dial) or a real shard problem.
func (p *Pool) wireCheckout(ctx context.Context, s *shard) (wc *wireConn, reused bool, err error) {
	s.wire.mu.Lock()
	if !s.wire.closed {
		if n := len(s.wire.idle); n > 0 {
			wc = s.wire.idle[n-1]
			s.wire.idle = s.wire.idle[:n-1]
			s.wire.mu.Unlock()
			return wc, true, nil
		}
	}
	s.wire.mu.Unlock()
	wc, err = dialWire(ctx, s.addr)
	if err != nil {
		return nil, false, err
	}
	p.wireConns.Add(1)
	if wc.version < wire.VersionTraced {
		// The shard refused rp-wire/2 and the dial succeeded only after
		// the v1 redial. Journal that once per downgrade episode (the
		// flag resets when a ping clears the wire state, so a worker
		// upgraded in place is re-announced if it regresses).
		s.wire.mu.Lock()
		logged := s.wire.v1Logged
		s.wire.v1Logged = true
		s.wire.mu.Unlock()
		if !logged {
			p.opts.Events.Emit(ctx, "wire_redial",
				"shard speaks rp-wire/1 only; redialed at the downgraded version",
				"shard", s.addr)
		}
	}
	return wc, false, nil
}

// wireCheckin parks a healthy connection for reuse.
func (s *shard) wireCheckin(wc *wireConn) {
	s.wire.mu.Lock()
	defer s.wire.mu.Unlock()
	if s.wire.closed || s.wire.down || len(s.wire.idle) >= maxIdleWireConns {
		wc.conn.Close()
		return
	}
	s.wire.idle = append(s.wire.idle, wc)
}

// wireDown records an upgrade refusal and drops the idle pool. The
// shard serves JSON until a successful ping clears the flag — so a
// worker restarted with the wire enabled is rediscovered within one
// probe interval.
func (s *shard) wireDown() {
	s.wire.mu.Lock()
	s.wire.down = true
	idle := s.wire.idle
	s.wire.idle = nil
	s.wire.mu.Unlock()
	for _, wc := range idle {
		wc.conn.Close()
	}
}

// wireUp clears the JSON-only verdict (called on every successful
// ping, bounding fruitless upgrade retries to one per probe interval).
func (s *shard) wireUp() {
	s.wire.mu.Lock()
	s.wire.down = false
	s.wire.v1Logged = false
	s.wire.mu.Unlock()
}

// wireClose tears down the shard's wire state for good (it left the
// pool, or the pool is closing).
func (s *shard) wireClose() {
	s.wire.mu.Lock()
	s.wire.closed = true
	idle := s.wire.idle
	s.wire.idle = nil
	s.wire.mu.Unlock()
	for _, wc := range idle {
		wc.conn.Close()
	}
}

// recordWireFallback notes a refused upgrade: the shard is marked
// JSON-only (until a successful ping clears it) and the fallback
// counter feeds rp_cluster_wire_fallback_total.
func (p *Pool) recordWireFallback(s *shard) {
	p.wireFallbacks.Add(1)
	s.wireDown()
	p.log.Info("shard declined wire upgrade; using JSON transport", "shard", s.addr)
	p.opts.Events.Emit(context.Background(), "wire_fallback",
		"shard declined the wire upgrade; traffic falls back to JSON", "shard", s.addr)
}

// wireDo runs one request/response exchange over the shard's wire
// transport, calling onRow per row frame. A reused connection that
// dies before yielding a single frame is presumed a stale keep-alive
// and retried; a worker restart can leave a whole pool of stale parked
// connections (up to maxIdleWireConns), and each failed attempt
// consumes one, so the loop drains them and terminates at the first
// fresh dial — whose failure is a real shard problem and surfaces to
// the pool's normal failover machinery.
func (p *Pool) wireDo(ctx context.Context, s *shard, typ byte, payload []byte, onRow func(index int, errMsg string, body []byte) error) error {
	for {
		wc, reused, err := p.wireCheckout(ctx, s)
		if err != nil {
			return err
		}
		retryable, err := p.wireExchange(ctx, s, wc, typ, payload, onRow)
		if err == nil {
			return nil
		}
		if reused && retryable && ctx.Err() == nil {
			continue
		}
		return err
	}
}

// wireExchange is one framed request on one connection. retryable is
// true only when the connection failed before producing any frame —
// the one case where the request provably never started.
func (p *Pool) wireExchange(ctx context.Context, s *shard, wc *wireConn, typ byte, payload []byte, onRow func(int, string, []byte) error) (retryable bool, err error) {
	stop := wc.watch(ctx)
	healthy := false
	defer func() {
		stop()
		if healthy {
			s.wireCheckin(wc)
		} else {
			wc.conn.Close()
		}
	}()
	p.wireReqs.Add(1)
	span := obs.StartLeaf(ctx, "cluster.wire_exchange")
	span.SetAttr("shard", s.addr)
	defer func() { span.SetError(err); span.End() }()
	// On an rp-wire/2 connection the request frame carries the trace
	// context the JSON path puts in headers — this is what keeps the
	// "one trace ID end-to-end" contract on the binary transport.
	var flags byte
	if wc.version >= wire.VersionTraced {
		if trace := obs.Trace(ctx); trace != "" {
			framed := wire.AppendTraceContext(make([]byte, 0, len(payload)+len(trace)+16), trace, obs.ParentSpan(ctx))
			payload = append(framed, payload...)
			flags = wire.FlagTraced
		}
	}
	start := time.Now()
	wc.stream++
	if err := wc.w.WriteFrame(typ, flags, wc.stream, payload); err != nil {
		return true, err
	}
	if err := wc.bw.Flush(); err != nil {
		return true, err
	}
	gotFrame := false
	for {
		f, err := wc.r.Next()
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return false, cerr
			}
			return !gotFrame, fmt.Errorf("cluster: %s wire: %w", s.addr, err)
		}
		gotFrame = true
		if f.Stream != wc.stream {
			return false, fmt.Errorf("cluster: %s wire: frame for stream %d, want %d", s.addr, f.Stream, wc.stream)
		}
		switch f.Type {
		case wire.FrameRow:
			idx, msg, body, err := wire.ParseRow(f.Payload)
			if err != nil {
				return false, fmt.Errorf("cluster: %s wire: %w", s.addr, err)
			}
			p.wireRows.Add(1)
			if err := onRow(idx, msg, body); err != nil {
				return false, err
			}
		case wire.FrameDone:
			if _, _, err := wire.ParseDone(f.Payload); err != nil {
				return false, fmt.Errorf("cluster: %s wire: %w", s.addr, err)
			}
			p.importDoneSpans(ctx, f.Payload)
			// The full exchange on a persistent connection is the wire
			// path's analogue of the HTTP round-trip.
			p.shardRTT.Observe(s.addr, time.Since(start))
			healthy = true
			return false, nil
		case wire.FrameError:
			// Frame boundaries are intact — the request failed, the
			// connection did not.
			healthy = true
			p.shardRTT.Observe(s.addr, time.Since(start))
			ferr := fmt.Errorf("cluster: %s wire: %s", s.addr, f.Payload)
			if f.Flags&wire.FlagPermanent != 0 {
				return false, &permanentError{ferr}
			}
			return false, ferr
		default:
			return false, fmt.Errorf("cluster: %s wire: unexpected frame type 0x%02x", s.addr, f.Type)
		}
	}
}

// importDoneSpans copies the worker's spans (the rp-wire/2 span block
// of a FrameDone payload) into this process's flight recorder, so the
// coordinator holds the whole cross-process trace. Malformed blocks
// are dropped, never fatal — spans are diagnostics, not data.
func (p *Pool) importDoneSpans(ctx context.Context, done []byte) {
	store := obs.SpansFrom(ctx)
	if store == nil {
		return
	}
	block, err := wire.ParseDoneSpans(done)
	if err != nil || block == nil {
		return
	}
	var spans []obs.Span
	if err := json.Unmarshal(block, &spans); err != nil {
		return
	}
	for _, sp := range spans {
		store.AddSpan(sp)
	}
}

// wireBatchChunk is BatchChunk's binary path: the chunk is shipped as
// one varint-packed frame and every row comes back as raw JSON bytes
// the caller relays without decoding (BatchLine.Raw).
func (p *Pool) wireBatchChunk(ctx context.Context, s *shard, payload *service.BatchPayload, deliver func(service.BatchLine)) error {
	buf := wire.AppendBatchRequest(nil, payload)
	return p.wireDo(ctx, s, wire.FrameBatch, buf, func(idx int, msg string, body []byte) error {
		line := service.BatchLine{Index: idx, Error: msg}
		if msg == "" {
			line.Raw = body // freshly allocated per frame; safe to retain
		}
		deliver(line)
		return nil
	})
}

// wireCampaignRow is CampaignRow's persistent-connection path. The
// config rides as JSON (campaign rows are seconds of compute each; the
// win is skipping connection setup, not payload bytes), rows come back
// as framed JSON bodies.
func (p *Pool) wireCampaignRow(ctx context.Context, s *shard, cfg experiments.Config) (experiments.Row, int, error) {
	body, err := json.Marshal(campaignWire{Config: cfg})
	if err != nil {
		return experiments.Row{}, 0, &permanentError{err}
	}
	var out experiments.Row
	rows := 0
	err = p.wireDo(ctx, s, wire.FrameCampaign, body, func(_ int, msg string, body []byte) error {
		if msg != "" {
			return fmt.Errorf("cluster: %s wire campaign row: %s", s.addr, msg)
		}
		var row experiments.Row
		if err := json.Unmarshal(body, &row); err != nil {
			return fmt.Errorf("cluster: %s wire campaign row: %w", s.addr, err)
		}
		out = row
		rows++
		return nil
	})
	return out, rows, err
}
