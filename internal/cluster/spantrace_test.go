package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster/wire"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/service"
)

// shardConnVersions reports the negotiated protocol version of every
// parked idle connection of the pool's first shard.
func shardConnVersions(p *Pool) []int {
	p.mu.RLock()
	s := p.shards[0]
	p.mu.RUnlock()
	s.wire.mu.Lock()
	defer s.wire.mu.Unlock()
	var out []int
	for _, wc := range s.wire.idle {
		out = append(out, wc.version)
	}
	return out
}

func runWireChunk(t *testing.T, p *Pool, ctx context.Context, n int) {
	t.Helper()
	p.mu.RLock()
	s := p.shards[0]
	p.mu.RUnlock()
	in := gen.Instance(gen.Config{Internal: 6, Clients: 12, Lambda: 0.4, UnitCosts: true}, 31)
	req := routedBatchPayload(t, in, "mb", n)
	rows := 0
	err := p.wireBatchChunk(ctx, s, req, func(line service.BatchLine) {
		if line.Error != "" {
			t.Errorf("row %d: %s", line.Index, line.Error)
		}
		rows++
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows != n {
		t.Fatalf("got %d rows, want %d", rows, n)
	}
}

// TestWireVersionNegotiation: against a current worker the client lands
// on rp-wire/2 (traced); against a v1-only worker — simulated by a
// front end that answers the rp-wire/2 offer with 426 + "Upgrade:
// rp-wire/1", exactly what the pre-v2 server sends — the client redials
// at rp-wire/1 and the exchange still completes, traced context simply
// not sent.
func TestWireVersionNegotiation(t *testing.T) {
	t.Run("v2", func(t *testing.T) {
		srv, _ := newWorker(t, 2)
		p := newTestPool(t, []string{srv.URL}, PoolOptions{ProbeInterval: -1})
		runWireChunk(t, p, context.Background(), 2)
		if got := shardConnVersions(p); len(got) != 1 || got[0] != wire.VersionTraced {
			t.Fatalf("parked conn versions = %v, want [%d]", got, wire.VersionTraced)
		}
	})

	t.Run("v1-downgrade", func(t *testing.T) {
		e := service.NewEngine(service.EngineOptions{Workers: 2})
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			e.Close(ctx)
		})
		ws := wire.NewServer(e, nil)
		t.Cleanup(func() { ws.Close() })
		inner := service.NewHandlerOpts(e, service.HandlerOptions{MaxInlineCampaigns: -1, Wire: ws})
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/wire" && !strings.EqualFold(r.Header.Get("Upgrade"), wire.ProtocolName) {
				// A v1-only server: any other token is refused naming the
				// one protocol it speaks.
				w.Header().Set("Connection", "Upgrade")
				w.Header().Set("Upgrade", wire.ProtocolName)
				w.WriteHeader(http.StatusUpgradeRequired)
				return
			}
			inner.ServeHTTP(w, r)
		}))
		t.Cleanup(srv.Close)

		p := newTestPool(t, []string{srv.URL}, PoolOptions{ProbeInterval: -1})
		// A traced context must not poison a v1 session: the prefix is
		// simply withheld.
		ctx := obs.WithTrace(context.Background(), "downgrade-trace")
		runWireChunk(t, p, ctx, 2)
		if got := shardConnVersions(p); len(got) != 1 || got[0] != wire.Version {
			t.Fatalf("parked conn versions = %v, want [%d]", got, wire.Version)
		}
		// The downgraded connection is reused as-is: no renegotiation.
		runWireChunk(t, p, ctx, 1)
		if st := p.ClusterStats(); st.WireConnections != 1 {
			t.Fatalf("WireConnections = %d, want 1 (second chunk reuses the v1 conn)", st.WireConnections)
		}
	})
}

// TestWireBatchTraceAssembly is the PR's acceptance e2e: a /v1/batch
// routed over the binary wire yields, on GET /v1/traces/{id}, ONE
// assembled span tree under the client's trace ID whose nodes come from
// both sides of the wire — the coordinator's http.request /
// cluster.route_batch / cluster.batch_chunk / cluster.wire_exchange and
// the worker's wire.batch / engine.solve, shipped back in FrameDone.
func TestWireBatchTraceAssembly(t *testing.T) {
	const trace = "wire-span-e2e-7"

	srv, _ := newWorker(t, 2)
	p := newTestPool(t, []string{srv.URL}, PoolOptions{ProbeInterval: -1})
	ce := newCoordinatorEngine(t, p, 1)
	spans := obs.NewSpanStore(1024)
	coord := httptest.NewServer(service.NewHandlerOpts(ce, service.HandlerOptions{
		Cluster:     p,
		Spans:       spans,
		TraceSample: 1,
	}))
	t.Cleanup(coord.Close)

	in := gen.Instance(gen.Config{Internal: 6, Clients: 12, Lambda: 0.4, UnitCosts: true}, 37)
	const n = 4
	body, err := json.Marshal(routedBatchPayload(t, in, "mb@remote", n))
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, coord.URL+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, trace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("batch: status %d: %s", resp.StatusCode, data)
	}
	rows := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line struct {
			Error string `json:"error"`
			Done  bool   `json:"done"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if line.Error != "" {
			t.Fatalf("batch row error: %s", line.Error)
		}
		if !line.Done {
			rows++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if rows != n {
		t.Fatalf("streamed %d rows, want %d", rows, n)
	}
	if st := p.ClusterStats(); st.WireRows != n {
		t.Fatalf("wire stats %+v: the batch must travel the binary transport for this test to mean anything", st)
	}

	// The root http.request span ends a hair after the response body: poll.
	type node struct {
		Span     obs.Span `json:"span"`
		Children []node   `json:"children"`
	}
	var tree struct {
		TraceID string `json:"trace_id"`
		Spans   int    `json:"spans"`
		Roots   []node `json:"roots"`
	}
	want := []string{
		"http.request", "cluster.route_batch", "cluster.batch_chunk",
		"cluster.wire_exchange", "wire.batch", "engine.solve",
	}
	var names map[string]int
	var walk func(n node)
	walk = func(n node) {
		if n.Span.TraceID != trace {
			t.Fatalf("span %s trace = %q, want %q", n.Span.Name, n.Span.TraceID, trace)
		}
		names[n.Span.Name]++
		for _, c := range n.Children {
			walk(c)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		getJSON(t, coord.URL+"/v1/traces/"+trace, &tree)
		names = map[string]int{}
		for _, r := range tree.Roots {
			walk(r)
		}
		complete := len(tree.Roots) == 1 && tree.Roots[0].Span.Name == "http.request"
		for _, w := range want {
			if names[w] == 0 {
				complete = false
			}
		}
		if complete {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace never assembled: %d roots, names %v (want one http.request root containing %v)",
				len(tree.Roots), names, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if tree.TraceID != trace {
		t.Fatalf("trace_id = %q, want %q", tree.TraceID, trace)
	}
	if names["engine.solve"] != n {
		t.Fatalf("engine.solve spans = %d, want one per variation (%d)", names["engine.solve"], n)
	}
	total := 0
	for _, c := range names {
		total += c
	}
	if tree.Spans != total {
		t.Fatalf("payload reports %d spans, tree holds %d", tree.Spans, total)
	}

	// The flight-recorder index lists the trace, filterable by duration.
	var list struct {
		Traces []struct {
			TraceID string `json:"trace_id"`
			Name    string `json:"name"`
			Spans   int    `json:"spans"`
		} `json:"traces"`
	}
	getJSON(t, coord.URL+"/debug/traces?limit=10", &list)
	found := false
	for _, tr := range list.Traces {
		if tr.TraceID == trace {
			found = true
			if tr.Name != "http.request" {
				t.Fatalf("trace summary names %q, want the root span http.request", tr.Name)
			}
			if tr.Spans != total {
				t.Fatalf("summary counts %d spans, tree holds %d", tr.Spans, total)
			}
		}
	}
	if !found {
		t.Fatalf("/debug/traces does not list %s: %+v", trace, list.Traces)
	}
}
