package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/service"
)

// TestPoolMembershipEpochs: joins, re-weights and leaves advance the
// epoch; idempotent re-joins don't.
func TestPoolMembershipEpochs(t *testing.T) {
	p := newTestPool(t, []string{"a:1"}, PoolOptions{ProbeInterval: -1})
	if p.Epoch() != 0 || p.ShardCount() != 1 {
		t.Fatalf("fresh pool: epoch %d, %d shards", p.Epoch(), p.ShardCount())
	}
	st, joined, err := p.AddShard("b:2", 3)
	if err != nil || !joined {
		t.Fatalf("join: %v %v", joined, err)
	}
	if st.Weight != 3 || st.State != "closed" {
		t.Fatalf("joined shard stat = %+v", st)
	}
	if p.Epoch() != 1 || p.ShardCount() != 2 {
		t.Fatalf("after join: epoch %d, %d shards", p.Epoch(), p.ShardCount())
	}
	// Re-join with the same weight: no-op, epoch unchanged.
	if _, joined, _ := p.AddShard("http://b:2/", 3); joined {
		t.Fatal("normalized duplicate treated as a new member")
	}
	if p.Epoch() != 1 {
		t.Fatalf("idempotent re-join advanced the epoch to %d", p.Epoch())
	}
	// Re-weight: same member, epoch advances (placement changed).
	if _, joined, _ := p.AddShard("b:2", 5); joined || p.Epoch() != 2 {
		t.Fatalf("re-weight: joined=%v epoch=%d", joined, p.Epoch())
	}
	if !p.RemoveShard("a:1") || p.Epoch() != 3 || p.ShardCount() != 1 {
		t.Fatalf("leave: epoch %d, %d shards", p.Epoch(), p.ShardCount())
	}
	if p.RemoveShard("a:1") {
		t.Fatal("removed a shard twice")
	}
	if p.Epoch() != 3 {
		t.Fatalf("no-op removal advanced the epoch to %d", p.Epoch())
	}
}

// TestPoolBreakerAcrossMembershipChange: an open breaker survives other
// members joining (the epoch change must not amnesty a failing shard),
// while leave + re-join starts the breaker fresh.
func TestPoolBreakerAcrossMembershipChange(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadAddr := dead.URL
	killServer(dead)
	live, _ := newWorker(t, 1)

	p := newTestPool(t, []string{deadAddr}, PoolOptions{
		ProbeInterval: -1,
		FailThreshold: 1,
		OpenFor:       time.Minute,
		MaxFailures:   1,
	})
	in := testInstance(2)
	if _, err := p.Solve(context.Background(), in, "mb", core.Multiple, service.Options{}); err == nil {
		t.Fatal("solve against a dead shard succeeded")
	}
	if st := p.ShardStats()[0]; st.State != "open" {
		t.Fatalf("dead shard state = %s, want open", st.State)
	}

	// A join bumps the epoch; the dead member's breaker must stay open,
	// and traffic must land on the newcomer without burning a failover
	// on the open circuit.
	if _, joined, err := p.AddShard(live.URL, 0); err != nil || !joined {
		t.Fatalf("join: %v %v", joined, err)
	}
	if _, err := p.Solve(context.Background(), in, "mb", core.Multiple, service.Options{}); err != nil {
		t.Fatalf("solve after join: %v", err)
	}
	for _, st := range p.ShardStats() {
		if st.Addr == deadAddr && st.State != "open" {
			t.Fatalf("join closed the dead shard's breaker: %+v", st)
		}
		if st.Addr == live.URL && (st.Requests == 0 || st.Failures != 0) {
			t.Fatalf("newcomer stats: %+v", st)
		}
	}

	// Leave and re-join: breaker state and counters are discarded.
	if !p.RemoveShard(deadAddr) {
		t.Fatal("remove failed")
	}
	st, joined, err := p.AddShard(deadAddr, 0)
	if err != nil || !joined {
		t.Fatalf("re-join: %v %v", joined, err)
	}
	if st.State != "closed" || st.Failures != 0 || st.Requests != 0 {
		t.Fatalf("re-joined shard kept old breaker state: %+v", st)
	}
}

// TestPickOrderWeightedDistribution: over many acquisitions, each shard
// leads the preference order in proportion to its weight (χ²-style
// tolerance, though smooth WRR is in fact deterministic).
func TestPickOrderWeightedDistribution(t *testing.T) {
	p := newTestPool(t, nil, PoolOptions{ProbeInterval: -1})
	weights := map[string]int{"w1:1": 1, "w2:1": 2, "w4:1": 4}
	for addr, w := range weights {
		if _, _, err := p.AddShard(addr, w); err != nil {
			t.Fatal(err)
		}
	}
	const rounds = 700 // 100 full weight cycles of 7
	firsts := map[string]int{}
	for i := 0; i < rounds; i++ {
		order := p.pickOrder()
		if len(order) != 3 {
			t.Fatalf("pick order has %d members, want 3", len(order))
		}
		firsts[strings.TrimPrefix(order[0].addr, "http://")]++
	}
	total := 0
	for _, w := range weights {
		total += w
	}
	var chi2 float64
	for addr, w := range weights {
		expected := float64(rounds*w) / float64(total)
		diff := float64(firsts[addr]) - expected
		chi2 += diff * diff / expected
		// Per-shard sanity besides the aggregate: within 10% of the
		// weighted share.
		if diff < -0.1*expected || diff > 0.1*expected {
			t.Errorf("shard %s led %d of %d picks, want ~%.0f (weight %d/%d)",
				addr, firsts[addr], rounds, expected, w, total)
		}
	}
	// 2 degrees of freedom, p=0.01 critical value 9.21.
	if chi2 > 9.21 {
		t.Fatalf("χ² = %.2f over critical 9.21; firsts = %v", chi2, firsts)
	}
}

// TestPoolWeightFromPing: a shard's weight tracks the worker's
// self-reported solver goroutine count unless pinned explicitly.
func TestPoolWeightFromPing(t *testing.T) {
	srv, _ := newWorker(t, 3)
	p := newTestPool(t, []string{srv.URL}, PoolOptions{ProbeInterval: -1})
	if got := p.ShardStats()[0].Weight; got != 1 {
		t.Fatalf("pre-ping weight = %d, want the default 1", got)
	}
	p.Ping(context.Background())
	if got := p.ShardStats()[0].Weight; got != 3 {
		t.Fatalf("post-ping weight = %d, want 3 (the worker's goroutines)", got)
	}
	if p.Epoch() == 0 {
		t.Fatal("re-weight did not advance the epoch")
	}
	// An explicit weight wins over discovery.
	if _, _, err := p.AddShard(srv.URL, 8); err != nil {
		t.Fatal(err)
	}
	p.Ping(context.Background())
	if got := p.ShardStats()[0].Weight; got != 8 {
		t.Fatalf("ping overrode the pinned weight: %d, want 8", got)
	}
}

// TestParseShardsFile covers the accepted grammar and its rejections.
func TestParseShardsFile(t *testing.T) {
	entries, err := ParseShardsFile(strings.NewReader(`
# fleet
10.0.0.4:8081 8
10.0.0.5:8081      # discovered weight
http://10.0.0.6:8081/
`))
	if err != nil {
		t.Fatal(err)
	}
	want := []ShardEntry{
		{Addr: "http://10.0.0.4:8081", Weight: 8},
		{Addr: "http://10.0.0.5:8081"},
		{Addr: "http://10.0.0.6:8081"},
	}
	if fmt.Sprint(entries) != fmt.Sprint(want) {
		t.Fatalf("entries = %v, want %v", entries, want)
	}
	for _, bad := range []string{
		"a:1 2 3",   // too many fields
		"a:1 zero",  // non-numeric weight
		"a:1 0",     // weight < 1
		"a:1\na:1/", // duplicate after normalization
	} {
		if _, err := ParseShardsFile(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

// TestSyncFileReconcilesOnlyFileOrigin: a reload adds/removes listed
// shards but never touches static or API-registered members.
func TestSyncFileReconcilesOnlyFileOrigin(t *testing.T) {
	p := newTestPool(t, []string{"static:1"}, PoolOptions{ProbeInterval: -1})
	if _, _, err := p.AddShard("api:1", 2); err != nil {
		t.Fatal(err)
	}
	added, removed, err := p.SyncFile([]ShardEntry{{Addr: "f1:1"}, {Addr: "f2:1", Weight: 4}})
	if err != nil || added != 2 || removed != 0 {
		t.Fatalf("first sync: +%d/-%d, %v", added, removed, err)
	}
	added, removed, err = p.SyncFile([]ShardEntry{{Addr: "f2:1", Weight: 4}})
	if err != nil || added != 0 || removed != 1 {
		t.Fatalf("second sync: +%d/-%d, %v", added, removed, err)
	}
	got := map[string]bool{}
	for _, st := range p.ShardStats() {
		got[st.Addr] = true
	}
	for _, want := range []string{"http://static:1", "http://api:1", "http://f2:1"} {
		if !got[want] {
			t.Fatalf("member %s missing after reload; have %v", want, got)
		}
	}
	if len(got) != 3 {
		t.Fatalf("membership = %v", got)
	}
	// A file line naming a member that joined by another path must not
	// re-weight (or pin) it: the worker's own report wins over a stale
	// file entry.
	if _, _, err := p.SyncFile([]ShardEntry{{Addr: "f2:1", Weight: 4}, {Addr: "api:1", Weight: 9}}); err != nil {
		t.Fatal(err)
	}
	for _, st := range p.ShardStats() {
		if st.Addr == "http://api:1" && st.Weight != 2 {
			t.Fatalf("reload re-weighted an API-origin member: %+v", st)
		}
	}
	// An empty file empties only the file-origin members.
	if _, removed, _ = p.SyncFile(nil); removed != 1 || p.ShardCount() != 2 {
		t.Fatalf("empty sync removed %d, left %d members", removed, p.ShardCount())
	}
}

// TestClusterShardsHTTP: the /v1/cluster/shards surface over a real
// pool — list, join (idempotent), leave — plus the 501 of a daemon
// that fronts no cluster.
func TestClusterShardsHTTP(t *testing.T) {
	e := service.NewEngine(service.EngineOptions{Workers: 1})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		e.Close(ctx)
	})

	// No pool: 501 points the operator at coordinator mode.
	bare := httptest.NewServer(service.NewHandler(e))
	defer bare.Close()
	resp, err := http.Get(bare.URL + "/v1/cluster/shards")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("no-cluster GET status = %d, want 501", resp.StatusCode)
	}

	p := newTestPool(t, nil, PoolOptions{ProbeInterval: -1})
	srv := httptest.NewServer(service.NewHandlerOpts(e, service.HandlerOptions{Cluster: p}))
	defer srv.Close()

	type payload struct {
		Epoch   uint64              `json:"epoch"`
		Shards  []service.ShardStat `json:"shards"`
		Joined  *bool               `json:"joined"`
		Removed *bool               `json:"removed"`
	}
	call := func(method, path, body string) (int, payload) {
		t.Helper()
		req, err := http.NewRequest(method, srv.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out payload
		json.NewDecoder(resp.Body).Decode(&out)
		return resp.StatusCode, out
	}

	if code, out := call(http.MethodPost, "/v1/cluster/shards", `{"addr":"w1:9001","weight":2}`); code != 200 || out.Joined == nil || !*out.Joined {
		t.Fatalf("join: %d %+v", code, out)
	}
	if code, out := call(http.MethodPost, "/v1/cluster/shards", `{"addr":"w1:9001","weight":2}`); code != 200 || *out.Joined {
		t.Fatalf("re-join not idempotent: %d %+v", code, out)
	}
	if code, _ := call(http.MethodPost, "/v1/cluster/shards", `{"weight":1}`); code != 400 {
		t.Fatalf("join without addr: %d, want 400", code)
	}
	if code, _ := call(http.MethodPost, "/v1/cluster/shards", `{"addr":"w2:1","weight":-1}`); code != 400 {
		t.Fatalf("negative weight: %d, want 400", code)
	}
	code, out := call(http.MethodGet, "/v1/cluster/shards", "")
	if code != 200 || len(out.Shards) != 1 || out.Shards[0].Weight != 2 {
		t.Fatalf("list: %d %+v", code, out)
	}
	if code, out := call(http.MethodDelete, "/v1/cluster/shards?addr=w1:9001", ""); code != 200 || out.Removed == nil || !*out.Removed {
		t.Fatalf("leave: %d %+v", code, out)
	}
	if code, out := call(http.MethodDelete, "/v1/cluster/shards", `{"addr":"w1:9001"}`); code != 200 || *out.Removed {
		t.Fatalf("double leave: %d %+v", code, out)
	}
	if p.ShardCount() != 0 {
		t.Fatalf("pool still has %d members", p.ShardCount())
	}
}

// TestRegistrarLifecycle: a worker registers itself, the heartbeat
// restores its seat after the coordinator forgets it, and Stop
// deregisters it.
func TestRegistrarLifecycle(t *testing.T) {
	e := service.NewEngine(service.EngineOptions{Workers: 1})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		e.Close(ctx)
	})
	p := newTestPool(t, nil, PoolOptions{ProbeInterval: -1})
	coord := httptest.NewServer(service.NewHandlerOpts(e, service.HandlerOptions{Cluster: p}))
	defer coord.Close()

	r := &Registrar{
		Coordinator: coord.URL,
		Advertise:   "10.9.9.9:7777",
		Weight:      5, // explicit: the advertised address is not dialable
		Interval:    20 * time.Millisecond,
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	waitMembers := func(want int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if p.ShardCount() == want {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("pool never reached %d member(s); stats %v", want, p.ShardStats())
	}
	waitMembers(1)
	if st := p.ShardStats()[0]; st.Addr != "http://10.9.9.9:7777" || st.Weight != 5 {
		t.Fatalf("registered shard = %+v", st)
	}

	// Coordinator forgets the worker (restart, operator slip): the
	// heartbeat re-registers it.
	p.RemoveShard("10.9.9.9:7777")
	waitMembers(1)

	r.Stop()
	waitMembers(0)
}
