package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/service"
)

// replayRouteRow rehydrates a memoized raw row for a short-circuited
// variation. First-time rows relay the worker's bytes verbatim, but a
// replay must not impersonate a fresh solve: the client should see
// cached:true and no stale worker timing, exactly like an engine-cache
// hit. Decoding here costs nothing that matters — the replay path does
// no network, so it is already orders of magnitude cheaper than a
// shard hop. A body that fails to parse reports a miss, and the row
// ships to a shard like any other.
func replayRouteRow(body []byte) *service.Response {
	var resp service.Response
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil
	}
	resp.Cached = true
	resp.ElapsedMS = 0
	return &resp
}

// RouteBatch implements service.BatchRouter: one inline /v1/batch
// request executed across the cluster. The variation indices are
// partitioned into chunks sized to the pool's total weight, each chunk
// runs on one shard (the weighted picker prefers heavier shards), and
// every streamed line is re-indexed to its absolute position and
// released to deliver strictly in request order. Work a chunk loses to
// a dying shard is re-partitioned over the survivors the next round;
// whatever the cluster cannot take at all — breakers all open, the
// pool emptied by deregistrations — is computed on the coordinator's
// own engine, so the inline path degrades to exactly the pre-cluster
// behavior instead of failing.
func (p *Pool) RouteBatch(ctx context.Context, e *service.Engine, base *core.Instance, policy core.Policy, req *service.BatchPayload, deliver func(service.BatchLine) error) (rerr error) {
	p.batchesRouted.Add(1)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	total := len(req.Variations)
	ctx, span := obs.StartSpan(ctx, "cluster.route_batch")
	span.SetAttr("solver", req.Solver)
	span.SetAttrInt("variations", total)
	defer func() { span.SetError(rerr); span.End() }()
	type bufferedLine struct {
		line service.BatchLine
		at   time.Time // when the line completed and entered the buffer
	}
	var (
		mu      sync.Mutex
		pending = map[int]bufferedLine{} // buffered out-of-order lines
		next    int                      // lowest index not yet delivered
		done    = make(map[int]bool, total)
		sinkErr error
	)
	// emit buffers the line and flushes the contiguous prefix, so the
	// stream is ordered by variation index no matter which shard (or
	// the local engine) finished first. The buffered time feeds the
	// reorder-wait histogram: how long finished lines sat waiting for
	// earlier indices. Callers hold mu.
	emit := func(line service.BatchLine) {
		if sinkErr != nil || done[line.Index] {
			return
		}
		done[line.Index] = true
		pending[line.Index] = bufferedLine{line: line, at: time.Now()}
		for {
			l, ok := pending[next]
			if !ok {
				return
			}
			delete(pending, next)
			next++
			p.reorderWait.Observe(time.Since(l.at))
			if err := deliver(l.line); err != nil {
				sinkErr = err
				cancel() // the client is gone; stop burning shards
				return
			}
		}
	}

	remoteSolver := StripRemoteSuffix(req.Solver)

	// Cache-aware routing: before any variation ships to a shard, probe
	// the coordinator's own caches — the engine's solution cache (rows
	// this process once solved locally) and the routed raw-row cache
	// (rows a shard solved and the coordinator relayed without
	// decoding). Hits are emitted straight into the reorder buffer and
	// only the misses are partitioned, so a batch that repeats work the
	// cluster has seen costs no network at all for the repeats. The
	// raw-row key of every miss is kept: when its row comes back over
	// the wire, the raw bytes are memoized under it. Unlike the engine
	// cache — which stores a Result and shapes the Response per request
	// — the raw cache stores serialized bytes, whose content depends on
	// IncludeSolution; routeKey folds that flag in so the two body
	// shapes never answer for each other.
	keys := make([]string, total)
	if !req.Options.NoCache {
		probeSpan := obs.StartLeaf(ctx, "cluster.cache_probe")
		hits := 0
		engineOpts := req.EngineOptions()
		for i := range req.Variations {
			key, resp, ok := e.CacheProbe(service.Request{
				Instance: req.Variations[i].Apply(base),
				Solver:   remoteSolver,
				Policy:   policy,
				Options:  engineOpts,
			})
			keys[i] = routeKey(key, engineOpts.IncludeSolution)
			if ok {
				p.batchCacheShort.Add(1)
				hits++
				mu.Lock()
				emit(service.BatchLine{Index: i, Response: resp})
				mu.Unlock()
				continue
			}
			if body, hit := p.routeCache.get(keys[i]); hit {
				if resp := replayRouteRow(body); resp != nil {
					p.batchCacheShort.Add(1)
					hits++
					mu.Lock()
					emit(service.BatchLine{Index: i, Response: resp})
					mu.Unlock()
				}
			}
		}
		probeSpan.SetAttrInt("hits", hits)
		probeSpan.End()
	}

	mu.Lock()
	if sinkErr != nil {
		defer mu.Unlock()
		return sinkErr
	}
	missing := missingIndices(total, done)
	mu.Unlock()

	for round := 0; len(missing) > 0 && p.ShardCount() > 0; {
		if ctx.Err() != nil {
			break
		}
		var wg sync.WaitGroup
		for _, chunk := range p.partitionWeighted(missing) {
			sub := *req
			sub.Solver = remoteSolver // workers register local names only
			sub.Variations = make([]service.BatchVariation, len(chunk))
			for i, abs := range chunk {
				sub.Variations[i] = req.Variations[abs]
			}
			wg.Add(1)
			go func(chunk []int, sub service.BatchPayload) {
				defer wg.Done()
				// Chunk failures are not reported upward: the next round
				// re-partitions whatever is still missing, and the local
				// fallback is the terminal safety net.
				cctx, chunkSpan := obs.StartSpan(ctx, "cluster.batch_chunk")
				chunkSpan.SetAttrInt("rows", len(chunk))
				chunkStart := time.Now()
				err := p.BatchChunk(cctx, &sub, func(line service.BatchLine) {
					if line.Index < 0 || line.Index >= len(chunk) {
						return // a confused shard must not crash the stream
					}
					if line.Error != "" && isTransientLineError(line.Error) {
						return // leave missing; retried next round or locally
					}
					line.Index = chunk[line.Index]
					mu.Lock()
					if !done[line.Index] {
						p.rowsRouted.Add(1)
						if line.Error == "" && len(line.Raw) > 0 {
							// Memoize the raw row so a repeated inline
							// batch short-circuits instead of re-shipping.
							p.routeCache.add(keys[line.Index], line.Raw)
						}
					}
					emit(line)
					mu.Unlock()
				})
				chunkSpan.SetError(err)
				chunkSpan.End()
				if err == nil {
					p.batchChunk.Observe(time.Since(chunkStart))
				}
			}(chunk, sub)
		}
		wg.Wait()
		mu.Lock()
		serr := sinkErr
		remaining := missingIndices(total, done)
		mu.Unlock()
		if serr != nil {
			return serr
		}
		if len(remaining) >= len(missing) {
			round++
			if round >= batchRounds {
				break // the cluster is not making progress; go local
			}
		} else {
			round = 0
		}
		missing = remaining
	}

	if err := ctx.Err(); err != nil {
		mu.Lock()
		serr := sinkErr
		mu.Unlock()
		if serr != nil {
			return serr
		}
		return err
	}

	// Local fallback for whatever the shards never answered. The solver
	// name is the stripped one: an @remote twin would loop the work
	// straight back into the pool that just failed it.
	mu.Lock()
	remaining := missingIndices(total, done)
	mu.Unlock()
	if len(remaining) > 0 {
		p.rowsLocalFallback.Add(uint64(len(remaining)))
		vars := make([]service.BatchVariation, len(remaining))
		for i, abs := range remaining {
			vars[i] = req.Variations[abs]
		}
		err := e.SolveBatch(ctx, service.BatchRequest{
			Base:       base,
			Solver:     remoteSolver,
			Policy:     policy,
			Options:    req.EngineOptions(),
			Variations: vars,
		}, func(item service.BatchItem) {
			line := service.BatchLine{Index: remaining[item.Index], Response: item.Response}
			if item.Err != nil {
				line.Error = item.Err.Error()
			}
			mu.Lock()
			emit(line)
			mu.Unlock()
		})
		if err != nil {
			return err
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if sinkErr != nil {
		return sinkErr
	}
	if next != total {
		// Impossible unless a line was lost to a programming error;
		// fail loudly rather than truncate a "complete" stream.
		return fmt.Errorf("cluster: routed batch delivered %d of %d lines", next, total)
	}
	return nil
}

// partitionWeighted splits the indices into chunks for one fan-out
// round, sized so roughly two chunks exist per unit of total shard
// weight: heavier pools get more, smaller chunks (less work lost to a
// dying shard, finer weighted spreading), and chunk size never exceeds
// maxChunk. Chunks are not pinned to shards — the weighted picker
// assigns them as capacity frees up, which is what balances a slow
// shard against a fast one.
func (p *Pool) partitionWeighted(indices []int) [][]int {
	if len(indices) == 0 {
		return nil
	}
	slots := 2 * p.TotalWeight()
	if slots < 2 {
		slots = 2
	}
	size := (len(indices) + slots - 1) / slots
	if size < 1 {
		size = 1
	}
	if size > maxChunk {
		size = maxChunk
	}
	var out [][]int
	for start := 0; start < len(indices); start += size {
		end := start + size
		if end > len(indices) {
			end = len(indices)
		}
		out = append(out, indices[start:end])
	}
	return out
}

// interface conformance (compile-time).
var (
	_ service.ClusterInfo          = (*Pool)(nil)
	_ service.ClusterMembership    = (*Pool)(nil)
	_ service.ClusterStatsProvider = (*Pool)(nil)
	_ service.BatchRouter          = (*Pool)(nil)
	_ service.ClusterLatencies     = (*Pool)(nil)
)
