package wire

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceContextRoundTrip(t *testing.T) {
	inner := []byte("request-payload-bytes")
	buf := AppendTraceContext(nil, "trace-42", 0xdeadbeef)
	buf = append(buf, inner...)

	traceID, parent, rest, err := ParseTraceContext(buf)
	if err != nil {
		t.Fatal(err)
	}
	if traceID != "trace-42" || parent != 0xdeadbeef || !bytes.Equal(rest, inner) {
		t.Fatalf("got (%q, %#x, %q)", traceID, parent, rest)
	}

	// Empty trace + zero parent is legal (the encoding is symmetric).
	buf = AppendTraceContext(nil, "", 0)
	traceID, parent, rest, err = ParseTraceContext(buf)
	if err != nil || traceID != "" || parent != 0 || len(rest) != 0 {
		t.Fatalf("empty context: (%q, %d, %q, %v)", traceID, parent, rest, err)
	}

	// An oversized trace ID is truncated at append, and rejected at
	// parse when hand-rolled.
	long := strings.Repeat("x", 200)
	buf = AppendTraceContext(nil, long, 1)
	traceID, _, _, err = ParseTraceContext(buf)
	if err != nil || len(traceID) != maxTraceLen {
		t.Fatalf("oversized trace: len %d, err %v", len(traceID), err)
	}
	for _, bad := range [][]byte{{}, {0x80}, {0x05, 'a'}, {200, 'a', 'b'}} {
		if _, _, _, err := ParseTraceContext(bad); err == nil {
			t.Fatalf("ParseTraceContext(%v) accepted malformed input", bad)
		}
	}
}

func TestDoneSpansRoundTrip(t *testing.T) {
	spans := []byte(`[{"trace_id":"t","id":"00000000000000ff","name":"wire.batch"}]`)
	p := AppendDoneSpans(nil, 10, 2, spans)

	// A v1 peer's ParseDone must read the counters and ignore the block.
	items, failed, err := ParseDone(p)
	if err != nil || items != 10 || failed != 2 {
		t.Fatalf("ParseDone on span-bearing payload: (%d, %d, %v)", items, failed, err)
	}
	got, err := ParseDoneSpans(p)
	if err != nil || !bytes.Equal(got, spans) {
		t.Fatalf("ParseDoneSpans: (%q, %v)", got, err)
	}

	// No block → nil, no error (a v1 worker's FrameDone).
	got, err = ParseDoneSpans(AppendDone(nil, 5, 0))
	if err != nil || got != nil {
		t.Fatalf("spanless payload: (%q, %v)", got, err)
	}

	// Empty span JSON is omitted entirely.
	p = AppendDoneSpans(nil, 5, 0, nil)
	if !bytes.Equal(p, AppendDone(nil, 5, 0)) {
		t.Fatalf("empty spans must not add a block: %v", p)
	}

	// Truncated block is an error, not a panic.
	p = AppendDoneSpans(nil, 1, 0, spans)
	if _, err := ParseDoneSpans(p[:len(p)-3]); err == nil {
		t.Fatal("truncated span block accepted")
	}
}

func FuzzParseTraceContext(f *testing.F) {
	f.Add(AppendTraceContext(nil, "trace", 99))
	f.Add([]byte{})
	f.Add([]byte{0x80, 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		ParseTraceContext(data) // must never panic
	})
}

func FuzzParseDoneSpans(f *testing.F) {
	f.Add(AppendDoneSpans(nil, 3, 1, []byte(`[]`)))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		ParseDoneSpans(data) // must never panic
	})
}
