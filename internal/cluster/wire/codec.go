package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/service"
)

// The batch chunk request encoding. JSON spends most of a chunk's bytes
// re-spelling field names and base-10 vectors; this packs the same
// BatchPayload as varints:
//
//	solver, policy        uvarint length + bytes
//	options               flags byte (noCache, includeSolution),
//	                      zigzag timeout_ms, zigzag bound_nodes
//	topology              uvarint n, n zigzag parents,
//	                      ceil(n/8) is_client bitmap bytes
//	base variation        see below
//	uvarint #variations, then each variation:
//	  presence byte       bit per vector (R,W,S,Q,Comm,BW); an absent
//	                      vector inherits the base's, exactly like a
//	                      JSON-omitted one
//	  per present vector  uvarint length + zigzag elements
//
// Every length is validated against the remaining payload before
// allocation, so a hostile peer cannot make the decoder allocate more
// than it sent.

const (
	optNoCache         = 0x01
	optIncludeSolution = 0x02
)

const (
	vecR = 1 << iota
	vecW
	vecS
	vecQ
	vecComm
	vecBW
)

// AppendBatchRequest appends the binary encoding of req to buf.
func AppendBatchRequest(buf []byte, req *service.BatchPayload) []byte {
	buf = appendString(buf, req.Solver)
	buf = appendString(buf, req.Policy)
	var flags byte
	if req.Options.NoCache {
		flags |= optNoCache
	}
	if req.Options.IncludeSolution {
		flags |= optIncludeSolution
	}
	buf = append(buf, flags)
	buf = appendZigzag(buf, req.Options.TimeoutMS)
	buf = appendZigzag(buf, int64(req.Options.BoundNodes))

	n := len(req.Topology.Parents)
	buf = binary.AppendUvarint(buf, uint64(n))
	for _, p := range req.Topology.Parents {
		buf = appendZigzag(buf, int64(p))
	}
	bits := make([]byte, (n+7)/8)
	for i, c := range req.Topology.IsClient {
		if i >= n {
			break // malformed payload; Build would reject it anyway
		}
		if c {
			bits[i/8] |= 1 << (i % 8)
		}
	}
	buf = append(buf, bits...)

	buf = appendVariation(buf, &req.Base)
	buf = binary.AppendUvarint(buf, uint64(len(req.Variations)))
	for i := range req.Variations {
		buf = appendVariation(buf, &req.Variations[i])
	}
	return buf
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendZigzag(buf []byte, v int64) []byte {
	return binary.AppendUvarint(buf, uint64((v<<1)^(v>>63)))
}

func appendVariation(buf []byte, v *service.BatchVariation) []byte {
	var present byte
	if v.R != nil {
		present |= vecR
	}
	if v.W != nil {
		present |= vecW
	}
	if v.S != nil {
		present |= vecS
	}
	if v.Q != nil {
		present |= vecQ
	}
	if v.Comm != nil {
		present |= vecComm
	}
	if v.BW != nil {
		present |= vecBW
	}
	buf = append(buf, present)
	buf = appendVec64(buf, v.R, v.R != nil)
	buf = appendVec64(buf, v.W, v.W != nil)
	buf = appendVec64(buf, v.S, v.S != nil)
	if v.Q != nil {
		buf = binary.AppendUvarint(buf, uint64(len(v.Q)))
		for _, q := range v.Q {
			buf = appendZigzag(buf, int64(q))
		}
	}
	buf = appendVec64(buf, v.Comm, v.Comm != nil)
	buf = appendVec64(buf, v.BW, v.BW != nil)
	return buf
}

func appendVec64(buf []byte, v []int64, present bool) []byte {
	if !present {
		return buf
	}
	buf = binary.AppendUvarint(buf, uint64(len(v)))
	for _, x := range v {
		buf = appendZigzag(buf, x)
	}
	return buf
}

// DecodeBatchRequest decodes a FrameBatch payload. Malformed input —
// truncated, oversized lengths, garbage — returns an error, never
// panics and never allocates beyond the payload's own size.
func DecodeBatchRequest(p []byte) (*service.BatchPayload, error) {
	d := &decoder{p: p}
	req := &service.BatchPayload{}
	req.Solver = d.str()
	req.Policy = d.str()
	flags := d.byte()
	req.Options.NoCache = flags&optNoCache != 0
	req.Options.IncludeSolution = flags&optIncludeSolution != 0
	req.Options.TimeoutMS = d.zigzag()
	req.Options.BoundNodes = d.int()

	n := d.length()
	if n > 0 {
		req.Topology.Parents = make([]int, n)
		for i := range req.Topology.Parents {
			req.Topology.Parents[i] = d.int()
		}
		bits := d.bytes((n + 7) / 8)
		req.Topology.IsClient = make([]bool, n)
		for i := range req.Topology.IsClient {
			if len(bits) > i/8 {
				req.Topology.IsClient[i] = bits[i/8]&(1<<(i%8)) != 0
			}
		}
	}

	d.variation(&req.Base)
	nvars := d.length()
	if nvars > service.MaxBatchVariations {
		return nil, fmt.Errorf("wire: batch request with %d variations exceeds the %d limit",
			nvars, service.MaxBatchVariations)
	}
	if d.err == nil && nvars > 0 {
		req.Variations = make([]service.BatchVariation, nvars)
		for i := range req.Variations {
			d.variation(&req.Variations[i])
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.p) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after batch request", len(d.p))
	}
	return req, nil
}

// decoder consumes the payload front to back, latching the first error:
// every accessor after a failure returns zero values, so decode code
// reads straight-line and checks d.err once.
type decoder struct {
	p   []byte
	err error
}

func (d *decoder) fail(msg string) {
	if d.err == nil {
		d.err = errors.New("wire: " + msg)
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.p)
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.p = d.p[n:]
	return v
}

func (d *decoder) zigzag() int64 {
	u := d.uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

func (d *decoder) int() int {
	v := d.zigzag()
	if v > math.MaxInt32 || v < math.MinInt32 {
		d.fail("integer out of range")
		return 0
	}
	return int(v)
}

// length reads a collection length, bounded by the bytes actually left
// in the payload (every element costs at least one byte).
func (d *decoder) length() int {
	v := d.uvarint()
	if d.err == nil && v > uint64(len(d.p)) {
		d.fail("length exceeds remaining payload")
		return 0
	}
	return int(v)
}

func (d *decoder) byte() byte {
	b := d.bytes(1)
	if len(b) == 0 {
		return 0
	}
	return b[0]
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.p) {
		d.fail("truncated payload")
		return nil
	}
	out := d.p[:n]
	d.p = d.p[n:]
	return out
}

func (d *decoder) str() string { return string(d.bytes(d.length())) }

func (d *decoder) vec64() []int64 {
	n := d.length()
	if d.err != nil || n == 0 {
		return []int64{}
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = d.zigzag()
	}
	return out
}

func (d *decoder) variation(v *service.BatchVariation) {
	present := d.byte()
	if present&vecR != 0 {
		v.R = d.vec64()
	}
	if present&vecW != 0 {
		v.W = d.vec64()
	}
	if present&vecS != 0 {
		v.S = d.vec64()
	}
	if present&vecQ != 0 {
		n := d.length()
		v.Q = make([]int, n)
		for i := range v.Q {
			v.Q[i] = d.int()
		}
	}
	if present&vecComm != 0 {
		v.Comm = d.vec64()
	}
	if present&vecBW != 0 {
		v.BW = d.vec64()
	}
}
