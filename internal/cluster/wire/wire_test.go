package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"repro/internal/service"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	frames := []Frame{
		{Type: FrameBatch, Flags: 0, Stream: 1, Payload: []byte("hello")},
		{Type: FrameRow, Flags: 0, Stream: 7, Payload: bytes.Repeat([]byte{0xAB}, 1<<16)},
		{Type: FrameDone, Flags: 0, Stream: 7, Payload: nil},
		{Type: FrameError, Flags: FlagPermanent, Stream: 0xFFFFFFFF, Payload: []byte("boom")},
	}
	for _, f := range frames {
		if err := w.WriteFrame(f.Type, f.Flags, f.Stream, f.Payload); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	for i, want := range frames {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.Flags != want.Flags || got.Stream != want.Stream ||
			!bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
}

func TestWriteFrameRejectsOversizedPayload(t *testing.T) {
	w := NewWriter(io.Discard)
	// Don't allocate 64 MiB: an over-limit length with a short slice
	// would be caught the same way, but WriteFrame checks len() first,
	// so build the smallest slice that trips it via a huge cap trick is
	// impossible — just allocate once.
	if err := w.WriteFrame(FrameRow, 0, 1, make([]byte, MaxFrame+1)); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestReaderRejectsMalformedStreams(t *testing.T) {
	// A header announcing a payload beyond MaxFrame must error before
	// allocating it.
	hdr := make([]byte, headerLen)
	hdr[0] = FrameRow
	hdr[6], hdr[7], hdr[8], hdr[9] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := NewReader(bytes.NewReader(hdr)).Next(); err == nil {
		t.Fatal("oversized frame length accepted")
	}

	// A connection cut mid-header or mid-payload is not a clean EOF.
	if _, err := NewReader(bytes.NewReader(hdr[:3])).Next(); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("short header: err = %v, want a non-EOF error", err)
	}
	var buf bytes.Buffer
	if err := NewWriter(&buf).WriteFrame(FrameRow, 0, 1, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()-3]
	if _, err := NewReader(bytes.NewReader(truncated)).Next(); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("truncated payload: err = %v, want a non-EOF error", err)
	}
}

func TestRowRoundTrip(t *testing.T) {
	cases := []struct {
		index int
		msg   string
		body  string
	}{
		{0, "", `{"index":0,"cost":42}`},
		{17, "solver exploded", ""},
		{1 << 20, "", ""},
	}
	for _, c := range cases {
		p := AppendRow(nil, c.index, c.msg, []byte(c.body))
		idx, msg, body, err := ParseRow(p)
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		if idx != c.index || msg != c.msg || string(body) != c.body {
			t.Fatalf("round trip: got (%d, %q, %q), want %+v", idx, msg, body, c)
		}
	}
	for _, bad := range [][]byte{
		{},           // no index
		{0x80},       // unterminated varint
		{0x01},       // index but no error length
		{0x01, 0x05}, // error length beyond the payload
	} {
		if _, _, _, err := ParseRow(bad); err == nil {
			t.Fatalf("ParseRow(%v) accepted malformed input", bad)
		}
	}
}

func TestDoneRoundTrip(t *testing.T) {
	p := AppendDone(nil, 64, 3)
	items, failed, err := ParseDone(p)
	if err != nil || items != 64 || failed != 3 {
		t.Fatalf("got (%d, %d, %v), want (64, 3, nil)", items, failed, err)
	}
	for _, bad := range [][]byte{{}, {0x80}, {0x05}} {
		if _, _, err := ParseDone(bad); err == nil {
			t.Fatalf("ParseDone(%v) accepted malformed input", bad)
		}
	}
}

func testBatchPayload() *service.BatchPayload {
	return &service.BatchPayload{
		Topology: service.BatchTopology{
			Parents:  []int{-1, 0, 0, 1, 1, 2, 2},
			IsClient: []bool{false, false, false, true, true, true, true},
		},
		Solver: "mb",
		Policy: "multiple",
		Options: service.RequestOptions{
			TimeoutMS:       2500,
			NoCache:         true,
			BoundNodes:      30,
			IncludeSolution: true,
		},
		Base: service.BatchVariation{
			R: []int64{0, 0, 0, 3, 1, 4, 1},
			W: []int64{5, 9, 2, 0, 0, 0, 0},
			S: []int64{1, 1, 1, 1, 1, 1, 1},
		},
		Variations: []service.BatchVariation{
			{}, // inherits the base wholesale
			{R: []int64{0, 0, 0, 5, 5, 5, 5}},
			{
				R:    []int64{0, 0, 0, -1, 2, 7, 1},
				W:    []int64{8, 8, 8, 0, 0, 0, 0},
				S:    []int64{2, 3, 4, 5, 6, 7, 8},
				Q:    []int{0, 0, 0, 2, 2, 2, 2},
				Comm: []int64{0, 1, 1, 2, 2, 2, 2},
				BW:   []int64{100, 50, 50, 10, 10, 10, 10},
			},
		},
	}
}

func TestBatchRequestRoundTrip(t *testing.T) {
	want := testBatchPayload()
	got, err := DecodeBatchRequest(AppendBatchRequest(nil, want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestDecodeBatchRequestRejectsMalformed(t *testing.T) {
	good := AppendBatchRequest(nil, testBatchPayload())

	// Every strict prefix must fail as truncated, never panic.
	for i := 0; i < len(good); i++ {
		if _, err := DecodeBatchRequest(good[:i]); err == nil {
			t.Fatalf("prefix of %d/%d bytes accepted", i, len(good))
		}
	}
	if _, err := DecodeBatchRequest(append(append([]byte{}, good...), 0x00)); err == nil {
		t.Fatal("trailing byte accepted")
	}

	// A variation count beyond the service cap is rejected before any
	// allocation proportional to it.
	huge := appendString(nil, "mb")
	huge = appendString(huge, "")
	huge = append(huge, 0)          // options flags
	huge = appendZigzag(huge, 0)    // timeout
	huge = appendZigzag(huge, 0)    // bound nodes
	huge = append(huge, 0)          // topology size 0
	huge = append(huge, 0)          // base presence byte
	huge = append(huge, 0xFF, 0xFF) // variation count varint...
	huge = append(huge, make([]byte, 64<<10)...)
	if _, err := DecodeBatchRequest(huge); err == nil {
		t.Fatal("oversized variation count accepted")
	}
}

func FuzzDecodeBatchRequest(f *testing.F) {
	f.Add(AppendBatchRequest(nil, testBatchPayload()))
	f.Add([]byte{})
	f.Add([]byte{0x02, 'm', 'b'})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeBatchRequest(data)
		if err == nil && req == nil {
			t.Fatal("nil payload without error")
		}
	})
}

func FuzzParseRow(f *testing.F) {
	f.Add(AppendRow(nil, 3, "oops", []byte(`{"cost":1}`)))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		idx, _, _, err := ParseRow(data)
		if err == nil && idx < 0 {
			t.Fatal("negative index without error")
		}
	})
}

func FuzzReaderNext(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteFrame(FrameRow, 0, 1, AppendRow(nil, 0, "", []byte("{}")))
	w.WriteFrame(FrameDone, 0, 1, AppendDone(nil, 1, 0))
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 1024; i++ {
			if _, err := r.Next(); err != nil {
				return
			}
		}
	})
}
