package wire

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/service"
)

// Server is the worker-side end of the wire transport: an http.Handler
// for GET /v1/wire that hijacks the connection after a protocol upgrade
// and then serves batch chunks and campaign rows as frames over it.
// Mount it via service.HandlerOptions.Wire.
type Server struct {
	e   *service.Engine
	log *slog.Logger

	// Spans, when set, is the worker's flight recorder: traced requests
	// record their server-side spans here and ship a copy back to the
	// coordinator inside FrameDone.
	Spans *obs.SpanStore

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// NewServer returns a wire server over the engine. logger may be nil.
func NewServer(e *service.Engine, logger *slog.Logger) *Server {
	if logger == nil {
		logger = obs.NopLogger()
	}
	return &Server{e: e, log: logger, conns: map[net.Conn]struct{}{}}
}

// Close tears down every live wire connection. In-flight solves observe
// their canceled contexts and stop; the engine's own Close drains what
// remains. New upgrades are refused afterwards.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

func (s *Server) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// ServeHTTP negotiates the upgrade. The server speaks both rp-wire/2
// (trace context) and rp-wire/1, echoing whichever token the client
// offered; anything else answers a plain HTTP 426 naming rp-wire/1 —
// which a v2 coordinator reads as "redial at v1" and an old
// coordinator reads as "this shard speaks JSON only". That is the
// whole version handshake.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	offered := r.Header.Get("Upgrade")
	version := 0
	switch {
	case strings.EqualFold(offered, ProtocolV2):
		version = VersionTraced
	case strings.EqualFold(offered, ProtocolName):
		version = Version
	}
	if version == 0 || !headerContainsToken(r.Header, "Connection", "upgrade") {
		w.Header().Set("Upgrade", ProtocolName)
		http.Error(w, "this endpoint speaks "+ProtocolName+" only", http.StatusUpgradeRequired)
		return
	}
	// ResponseController follows Unwrap through middleware wrappers (the
	// tracing statusWriter is not itself a Hijacker).
	conn, rw, err := http.NewResponseController(w).Hijack()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if !s.track(conn) {
		conn.Close()
		return
	}
	defer s.untrack(conn)
	defer conn.Close()
	conn.SetDeadline(time.Time{}) // the server's read timeouts no longer apply

	token := ProtocolName
	if version == VersionTraced {
		token = ProtocolV2
	}
	rw.Writer.WriteString("HTTP/1.1 101 Switching Protocols\r\nUpgrade: " +
		token + "\r\nConnection: Upgrade\r\n\r\n")
	if err := rw.Writer.Flush(); err != nil {
		return
	}
	s.log.Debug("wire session open", "remote", conn.RemoteAddr().String(), "version", version)
	err = s.session(rw.Reader, conn, version)
	if err != nil && !errors.Is(err, io.EOF) {
		s.log.Debug("wire session closed", "remote", conn.RemoteAddr().String(), "error", err)
	}
}

// session serves one connection: request frames in, row streams out,
// until the peer closes or a protocol error poisons the framing.
func (s *Server) session(br *bufio.Reader, conn net.Conn, version int) error {
	r := NewReader(br)
	bw := bufio.NewWriter(conn)
	w := NewWriter(bw)
	for {
		f, err := r.Next()
		if err != nil {
			return err
		}
		switch f.Type {
		case FrameBatch:
			err = s.serveBatch(w, bw, f, version)
		case FrameCampaign:
			err = s.serveCampaign(w, bw, f, version)
		default:
			return errors.New("wire: unexpected frame type")
		}
		if err != nil {
			return err
		}
	}
}

// fail reports a request-level failure and keeps the connection alive —
// frame boundaries are intact, only this stream is over.
func (w *Writer) fail(bw *bufio.Writer, stream uint32, permanent bool, err error) error {
	var flags byte
	if permanent {
		flags = FlagPermanent
	}
	if werr := w.WriteFrame(FrameError, flags, stream, []byte(err.Error())); werr != nil {
		return werr
	}
	return bw.Flush()
}

// requestContext builds one request's context: cancelation plus, on a
// v2 traced frame, the caller's trace identity and a span collector so
// the request's spans can ride back in FrameDone. The returned payload
// is the frame payload with any trace prefix stripped.
func (s *Server) requestContext(f Frame, version int) (ctx context.Context, cancel context.CancelFunc, payload []byte, coll *obs.Collector, err error) {
	ctx, cancel = context.WithCancel(context.Background())
	payload = f.Payload
	if version < VersionTraced || f.Flags&FlagTraced == 0 {
		return ctx, cancel, payload, nil, nil
	}
	traceID, parentSpan, rest, perr := ParseTraceContext(f.Payload)
	if perr != nil {
		return ctx, cancel, nil, nil, perr
	}
	payload = rest
	if id := obs.SanitizeTraceID(traceID); id != "" {
		ctx = obs.WithTrace(ctx, id)
	}
	ctx = obs.WithSpans(ctx, s.Spans)
	// A zero parent span means the coordinator is not assembling a tree
	// (tracing sampled out there); spans stay in the local recorder and
	// FrameDone carries none back.
	if parentSpan != 0 {
		coll = &obs.Collector{}
		ctx = obs.WithCollector(ctx, coll)
		ctx = obs.WithParentSpan(ctx, parentSpan)
	}
	return ctx, cancel, payload, coll, nil
}

// doneSpans renders the collector's spans for the FrameDone payload,
// nil when the request was untraced.
func doneSpans(coll *obs.Collector) []byte {
	if coll == nil {
		return nil
	}
	data, err := json.Marshal(coll)
	if err != nil || string(data) == "[]" {
		return nil
	}
	return data
}

func (s *Server) serveBatch(w *Writer, bw *bufio.Writer, f Frame, version int) error {
	ctx, cancel, payload, coll, err := s.requestContext(f, version)
	defer cancel()
	if err != nil {
		return w.fail(bw, f.Stream, true, err)
	}
	req, err := DecodeBatchRequest(payload)
	if err != nil {
		return w.fail(bw, f.Stream, true, err)
	}
	base, policy, err := req.Build(s.e)
	if err != nil {
		return w.fail(bw, f.Stream, true, err)
	}
	ctx, span := obs.StartSpan(ctx, "wire.batch")
	span.SetAttr("solver", req.Solver)
	span.SetAttrInt("variations", len(req.Variations))

	var rowBuf []byte
	failed, werr := 0, error(nil)
	err = s.e.SolveBatch(ctx, service.BatchRequest{
		Base:       base,
		Solver:     req.Solver,
		Policy:     policy,
		Options:    req.EngineOptions(),
		Variations: req.Variations,
	}, func(item service.BatchItem) {
		if werr != nil {
			return // the peer is gone; remaining solves are being canceled
		}
		var msg string
		var body []byte
		if item.Err != nil {
			msg = item.Err.Error()
			failed++
		} else {
			body, werr = json.Marshal(item.Response)
			if werr != nil {
				cancel()
				return
			}
		}
		rowBuf = AppendRow(rowBuf[:0], item.Index, msg, body)
		if werr = w.WriteFrame(FrameRow, 0, f.Stream, rowBuf); werr == nil {
			werr = bw.Flush()
		}
		if werr != nil {
			cancel() // stop burning workers on a dead stream
		}
	})
	span.SetError(err)
	span.End()
	if err != nil {
		// SolveBatch-level failures are validation-shaped (Build caught
		// most already); report in-stream like the HTTP handler does.
		return w.fail(bw, f.Stream, true, err)
	}
	if werr != nil {
		return werr
	}
	done := AppendDoneSpans(nil, len(req.Variations), failed, doneSpans(coll))
	if err := w.WriteFrame(FrameDone, 0, f.Stream, done); err != nil {
		return err
	}
	return bw.Flush()
}

func (s *Server) serveCampaign(w *Writer, bw *bufio.Writer, f Frame, version int) error {
	ctx, cancel, payload, coll, err := s.requestContext(f, version)
	defer cancel()
	if err != nil {
		return w.fail(bw, f.Stream, true, err)
	}
	var req struct {
		Config experiments.Config `json:"config"`
	}
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return w.fail(bw, f.Stream, true, err)
	}
	ctx, span := obs.StartSpan(ctx, "wire.campaign")
	cfg := req.Config
	cfg.Context = ctx

	var rowBuf []byte
	rows, werr := 0, error(nil)
	cfg.Progress = func(row experiments.Row) error {
		body, err := json.Marshal(row)
		if err != nil {
			return err
		}
		rowBuf = AppendRow(rowBuf[:0], rows, "", body)
		rows++
		if werr = w.WriteFrame(FrameRow, 0, f.Stream, rowBuf); werr == nil {
			werr = bw.Flush()
		}
		return werr
	}
	_, err = experiments.Run(cfg)
	span.SetAttrInt("rows", rows)
	span.SetError(err)
	span.End()
	if err != nil {
		if werr != nil {
			return werr // the stream write failed; the conn is poisoned
		}
		// The campaign itself failed (bad config, engine draining):
		// transient unless proven otherwise — another shard may be
		// healthier.
		return w.fail(bw, f.Stream, false, err)
	}
	done := AppendDoneSpans(nil, rows, 0, doneSpans(coll))
	if err := w.WriteFrame(FrameDone, 0, f.Stream, done); err != nil {
		return err
	}
	return bw.Flush()
}

// headerContainsToken reports whether any comma-separated value of the
// header contains the token (case-insensitive) — the lenient Connection
// header match net/http's own upgrade detection uses.
func headerContainsToken(h http.Header, name, token string) bool {
	for _, v := range h.Values(name) {
		for _, part := range strings.Split(v, ",") {
			if strings.EqualFold(strings.TrimSpace(part), token) {
				return true
			}
		}
	}
	return false
}
