// Package wire is the cluster's binary streaming transport: a
// length-prefixed framing protocol spoken over persistent connections
// between a coordinator and its worker shards, replacing a fresh
// JSON/HTTP request per batch chunk or campaign row.
//
// A connection starts as a plain HTTP/1.1 upgrade (GET /v1/wire with
// "Upgrade: rp-wire/1"); after the 101 both ends exchange frames:
//
//	type(1) | flags(1) | stream(4, LE) | length(4, LE) | payload
//
// The client sends one request frame (FrameBatch or FrameCampaign) at a
// time per connection and reads response frames for the same stream ID
// until FrameDone or FrameError; concurrency comes from pooling
// connections, not from interleaving streams. Row frames carry the
// chunk-local index and error text in a compact binary header and the
// result body as the worker's canonical JSON encoding — the coordinator
// re-indexes on the header alone and relays the body bytes untouched.
//
// Every decode path is hostile-input safe: truncated frames, oversized
// lengths and garbage bytes return errors, never panic (see the fuzz
// tests).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Version is the protocol version negotiated by the HTTP upgrade.
const Version = 1

// ProtocolName is the Upgrade token ("rp-wire/<version>").
const ProtocolName = "rp-wire/1"

// VersionTraced is the protocol revision that adds trace context:
// request frames may carry FlagTraced (a trace/parent-span prefix
// before the request payload) and FrameDone may carry the worker's
// spans after its two counters. Negotiation stays the HTTP upgrade: a
// client offers rp-wire/2 first; a v1-only server refuses with its 426
// (whose Upgrade header names rp-wire/1), telling the client to redial
// at v1 — so an old worker still interoperates, it just loses spans.
const VersionTraced = 2

// ProtocolV2 is the Upgrade token for VersionTraced.
const ProtocolV2 = "rp-wire/2"

// Frame types. Requests flow coordinator→worker, the rest worker→
// coordinator.
const (
	// FrameBatch carries a binary-encoded batch chunk request (see
	// AppendBatchRequest).
	FrameBatch byte = 0x01
	// FrameCampaign carries a JSON /v1/campaign request body. Campaign
	// rows are seconds of compute each, so their config keeps the JSON
	// encoding — the win here is the persistent connection, not the
	// payload bytes.
	FrameCampaign byte = 0x02
	// FrameRow is one result row: binary header (chunk-local index,
	// error text) plus the row's JSON body (see AppendRow).
	FrameRow byte = 0x10
	// FrameDone terminates a successful response stream (see AppendDone).
	FrameDone byte = 0x11
	// FrameError terminates a failed request; the payload is the error
	// text. FlagPermanent marks failures that would repeat identically
	// on another shard (bad request, unknown solver).
	FrameError byte = 0x12
)

// FlagPermanent on FrameError marks a deterministic, don't-fail-over
// failure — the binary analogue of an HTTP 4xx.
const FlagPermanent byte = 0x01

// FlagTraced on a request frame (rp-wire/2 only) marks a trace-context
// prefix ahead of the request payload: the binary analogue of the
// X-RP-Trace-Id and X-RP-Parent-Span headers. The prefix lives at the
// frame layer — not inside the batch codec, whose decoder rejects
// trailing bytes by design — so the request encodings themselves are
// identical across versions.
const FlagTraced byte = 0x02

// MaxFrame bounds a frame payload, mirroring the HTTP layer's 64 MiB
// request cap. A length beyond it is a protocol error, not an
// allocation.
const MaxFrame = 64 << 20

const headerLen = 10

// Frame is one decoded frame.
type Frame struct {
	Type    byte
	Flags   byte
	Stream  uint32
	Payload []byte
}

// Writer frames payloads onto w. Not safe for concurrent use.
type Writer struct {
	w   io.Writer
	hdr [headerLen]byte
}

// NewWriter returns a Writer over w (wrap w in a bufio.Writer and flush
// per row for streaming).
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// WriteFrame emits one frame.
func (w *Writer) WriteFrame(typ, flags byte, stream uint32, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame payload %d bytes exceeds the %d limit", len(payload), MaxFrame)
	}
	w.hdr[0], w.hdr[1] = typ, flags
	binary.LittleEndian.PutUint32(w.hdr[2:6], stream)
	binary.LittleEndian.PutUint32(w.hdr[6:10], uint32(len(payload)))
	if _, err := w.w.Write(w.hdr[:]); err != nil {
		return err
	}
	_, err := w.w.Write(payload)
	return err
}

// Reader decodes frames from r. Not safe for concurrent use.
type Reader struct {
	r   io.Reader
	hdr [headerLen]byte
}

// NewReader returns a Reader over r (wrap r in a bufio.Reader).
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Next reads one frame. A clean close between frames returns io.EOF; a
// close mid-frame returns io.ErrUnexpectedEOF. The payload is freshly
// allocated per frame, so callers may retain it (the coordinator's
// reorder buffer does).
func (r *Reader) Next() (Frame, error) {
	if _, err := io.ReadFull(r.r, r.hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("wire: short frame header: %w", err)
	}
	f := Frame{
		Type:   r.hdr[0],
		Flags:  r.hdr[1],
		Stream: binary.LittleEndian.Uint32(r.hdr[2:6]),
	}
	n := binary.LittleEndian.Uint32(r.hdr[6:10])
	if n > MaxFrame {
		return Frame{}, fmt.Errorf("wire: frame payload %d bytes exceeds the %d limit", n, MaxFrame)
	}
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(r.r, f.Payload); err != nil {
			return Frame{}, fmt.Errorf("wire: truncated frame payload: %w", err)
		}
	}
	return f, nil
}

// AppendRow appends a FrameRow payload to buf: uvarint chunk-local
// index, uvarint-length-prefixed error text, then the row body (the
// worker's JSON encoding of the result; empty for error rows).
func AppendRow(buf []byte, index int, errMsg string, body []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(index))
	buf = binary.AppendUvarint(buf, uint64(len(errMsg)))
	buf = append(buf, errMsg...)
	return append(buf, body...)
}

// ParseRow decodes a FrameRow payload. body aliases p.
func ParseRow(p []byte) (index int, errMsg string, body []byte, err error) {
	idx, n := binary.Uvarint(p)
	if n <= 0 || idx > 1<<31 {
		return 0, "", nil, errors.New("wire: bad row index")
	}
	p = p[n:]
	elen, n := binary.Uvarint(p)
	if n <= 0 || elen > uint64(len(p)-n) {
		return 0, "", nil, errors.New("wire: bad row error length")
	}
	p = p[n:]
	return int(idx), string(p[:elen]), p[elen:], nil
}

// AppendDone appends a FrameDone payload: uvarint items, uvarint
// failed.
func AppendDone(buf []byte, items, failed int) []byte {
	buf = binary.AppendUvarint(buf, uint64(items))
	return binary.AppendUvarint(buf, uint64(failed))
}

// ParseDone decodes a FrameDone payload. Trailing bytes (the rp-wire/2
// span block) are deliberately ignored — use ParseDoneSpans to read
// them.
func ParseDone(p []byte) (items, failed int, err error) {
	i, n := binary.Uvarint(p)
	if n <= 0 || i > 1<<31 {
		return 0, 0, errors.New("wire: bad done items")
	}
	p = p[n:]
	f, n := binary.Uvarint(p)
	if n <= 0 || f > 1<<31 {
		return 0, 0, errors.New("wire: bad done failed count")
	}
	return int(i), int(f), nil
}

// maxTraceLen bounds the trace ID in a FlagTraced prefix, mirroring the
// HTTP layer's SanitizeTraceID cap.
const maxTraceLen = 64

// AppendTraceContext appends a FlagTraced request prefix to buf:
// uvarint-length-prefixed trace ID, then uvarint parent span ID. The
// request payload follows the prefix unchanged.
func AppendTraceContext(buf []byte, traceID string, parentSpan uint64) []byte {
	if len(traceID) > maxTraceLen {
		traceID = traceID[:maxTraceLen]
	}
	buf = binary.AppendUvarint(buf, uint64(len(traceID)))
	buf = append(buf, traceID...)
	return binary.AppendUvarint(buf, parentSpan)
}

// ParseTraceContext decodes a FlagTraced prefix and returns the rest of
// the payload (aliasing p).
func ParseTraceContext(p []byte) (traceID string, parentSpan uint64, rest []byte, err error) {
	tlen, n := binary.Uvarint(p)
	if n <= 0 || tlen > maxTraceLen || tlen > uint64(len(p)-n) {
		return "", 0, nil, errors.New("wire: bad trace context")
	}
	p = p[n:]
	traceID = string(p[:tlen])
	p = p[tlen:]
	parentSpan, n = binary.Uvarint(p)
	if n <= 0 {
		return "", 0, nil, errors.New("wire: bad trace parent span")
	}
	return traceID, parentSpan, p[n:], nil
}

// maxDoneSpans bounds the span block a FrameDone may carry — a defense
// bound well above the worker's own per-request collection cap.
const maxDoneSpans = 4 << 20

// AppendDoneSpans appends a FrameDone payload carrying the worker's
// spans for the request: the two AppendDone counters, then a
// uvarint-length-prefixed JSON array of spans. A v1 peer's ParseDone
// skips the block untouched, which is what makes shipping spans inside
// FrameDone backward-compatible.
func AppendDoneSpans(buf []byte, items, failed int, spansJSON []byte) []byte {
	buf = AppendDone(buf, items, failed)
	if len(spansJSON) == 0 || len(spansJSON) > maxDoneSpans {
		return buf
	}
	buf = binary.AppendUvarint(buf, uint64(len(spansJSON)))
	return append(buf, spansJSON...)
}

// ParseDoneSpans returns the span block of a FrameDone payload, nil
// when the peer sent none (a v1 worker, or spans disabled). The bytes
// alias p.
func ParseDoneSpans(p []byte) ([]byte, error) {
	// Skip the two counters ParseDone validated.
	for i := 0; i < 2; i++ {
		_, n := binary.Uvarint(p)
		if n <= 0 {
			return nil, errors.New("wire: bad done payload")
		}
		p = p[n:]
	}
	if len(p) == 0 {
		return nil, nil
	}
	slen, n := binary.Uvarint(p)
	if n <= 0 || slen == 0 || slen > maxDoneSpans || slen > uint64(len(p)-n) {
		return nil, errors.New("wire: bad done span block")
	}
	return p[n : n+int(slen)], nil
}
