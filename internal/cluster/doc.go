// Package cluster turns the single-process placement daemon into a
// sharded multi-process system. It speaks the worker HTTP surface that
// every rpserve/rpworker process already exposes (/v1/solve, /v1/batch,
// /v1/campaign, /v1/worker/ping) — there is no separate wire protocol.
//
// The pieces, bottom up:
//
//   - Pool: a static list of worker shards with per-shard bounded
//     in-flight requests, a circuit breaker per shard
//     (closed → open → half-open, driven by request outcomes and a
//     background ping prober), and retry-with-failover that re-runs
//     idempotent work on a healthy shard when one dies mid-call.
//
//   - RegisterRemote: registers a "<name>@remote" service.Backend for
//     every solver in a registry, proxying the computation through the
//     pool. Because it implements the ordinary Backend signature, the
//     engine's cache, single-flight de-duplication, validation and
//     metrics apply to remote results unchanged.
//
//   - CampaignKind / BatchKind: distributed replacements for the local
//     async job kinds. They partition the work — λ row indices for
//     campaigns, variation indices for batches — across shards, persist
//     every completed row keyed by its absolute index, and on resume
//     (daemon restart) or shard death resubmit only the missing rows.
//     Campaign rows are computed remotely via experiments.Config's
//     StartRow/EndRow slicing, whose generation seeds are tied to the
//     absolute row index: a row is bit-identical no matter which shard
//     computes it, or whether it is computed at all remotely — the
//     merged result of a sharded run equals a single-process run.
//
// Everything is deterministic in the job spec, so the checkpoint
// semantics match the single-process manager exactly: the append-only
// row log is authoritative, and re-running never recomputes a
// checkpointed row.
package cluster
