package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/service"
)

// routedBatchPayload builds a /v1/batch-shaped payload over a generated
// instance, with n variations bumping the request vector.
func routedBatchPayload(t testing.TB, in *core.Instance, solver string, n int) *service.BatchPayload {
	t.Helper()
	vars := make([]map[string]any, n)
	for i := range vars {
		vars[i] = map[string]any{"requests": bumpRequests(in, i)}
	}
	raw, err := json.Marshal(map[string]any{
		"topology":   map[string]any{"parents": in.Tree.Parents(), "is_client": in.Tree.ClientFlags()},
		"solver":     solver,
		"options":    map[string]any{"no_cache": true},
		"base":       map[string]any{"requests": in.R, "capacities": in.W, "storage_costs": in.S},
		"variations": vars,
	})
	if err != nil {
		t.Fatal(err)
	}
	req, err := service.DecodeBatchPayload(raw)
	if err != nil {
		t.Fatal(err)
	}
	return req
}

func bumpRequests(in *core.Instance, i int) []int64 {
	r := append([]int64(nil), in.R...)
	for j := range r {
		if r[j] > 0 {
			r[j] += int64(i % 5)
		}
	}
	return r
}

// localBatchCosts solves every variation in-process for comparison.
func localBatchCosts(t testing.TB, e *service.Engine, in *core.Instance, solver string, n int) []int64 {
	t.Helper()
	out := make([]int64, n)
	for i := 0; i < n; i++ {
		vi := *in
		vi.R = bumpRequests(in, i)
		resp, err := e.Solve(context.Background(), service.Request{Instance: &vi, Solver: solver})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = resp.Cost
	}
	return out
}

// lineCost reads a line's cost through its rendered JSON: a routed line
// carries raw bytes (BatchLine.Raw), a local one a decoded Response,
// and AppendJSON is the one path both take to the client.
func lineCost(t testing.TB, line *service.BatchLine) int64 {
	t.Helper()
	data, err := line.AppendJSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	var row struct {
		Cost int64 `json:"cost"`
	}
	if err := json.Unmarshal(data, &row); err != nil {
		t.Fatal(err)
	}
	return row.Cost
}

// collectRouted runs RouteBatch and asserts the in-order delivery
// contract while collecting the lines.
func collectRouted(t *testing.T, p *Pool, e *service.Engine, req *service.BatchPayload) []service.BatchLine {
	t.Helper()
	base, policy, err := req.Build(e)
	if err != nil {
		t.Fatal(err)
	}
	var lines []service.BatchLine
	err = p.RouteBatch(context.Background(), e, base, policy, req, func(line service.BatchLine) error {
		if line.Index != len(lines) {
			t.Fatalf("line %d arrived at stream position %d: routed batches must stream in request order", line.Index, len(lines))
		}
		lines = append(lines, line)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestRouteBatchMatchesLocalInOrder: an inline batch routed over two
// shards streams one line per variation, strictly in index order, with
// the same costs as in-process solves — and all of it computed
// remotely.
func TestRouteBatchMatchesLocalInOrder(t *testing.T) {
	w1, we := newWorker(t, 2)
	w2, _ := newWorker(t, 2)
	p := newTestPool(t, []string{w1.URL, w2.URL}, PoolOptions{ProbeInterval: -1})

	reg := service.NewRegistry()
	if err := RegisterRemote(reg, p); err != nil {
		t.Fatal(err)
	}
	ce := service.NewEngine(service.EngineOptions{Workers: 1, Registry: reg})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		ce.Close(ctx)
	})

	in := gen.Instance(gen.Config{Internal: 6, Clients: 12, Lambda: 0.4, UnitCosts: true}, 3)
	const n = 12
	// An @remote-qualified solver must be forwarded stripped; the twin
	// resolving on the coordinator proves the payload validated there.
	req := routedBatchPayload(t, in, "MB@remote", n)
	lines := collectRouted(t, p, ce, req)
	if len(lines) != n {
		t.Fatalf("got %d lines, want %d", len(lines), n)
	}
	want := localBatchCosts(t, we, in, "mb", n)
	for i, line := range lines {
		if line.Error != "" {
			t.Fatalf("variation %d failed: %s", i, line.Error)
		}
		if cost := lineCost(t, &line); cost != want[i] {
			t.Fatalf("variation %d: routed cost %d != local %d", i, cost, want[i])
		}
	}
	st := p.ClusterStats()
	if st.BatchesRouted != 1 || st.RowsRouted != n || st.RowsLocalFallback != 0 {
		t.Fatalf("cluster stats = %+v, want %d rows all routed", st, n)
	}
	// The rows must have traveled the binary transport, not the JSON
	// fallback — this is the equivalence test's transport assertion.
	if st.WireRows != n || st.WireFallbacks != 0 || st.WireConnections == 0 {
		t.Fatalf("wire stats = %+v, want all %d rows framed over rp-wire/1", st, n)
	}
}

// TestRouteBatchFallsBackLocal: with every shard down (and with no
// shards at all), the routed inline batch degrades to local execution
// and still answers every variation correctly.
func TestRouteBatchFallsBackLocal(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadAddr := dead.URL
	killServer(dead)

	for name, addrs := range map[string][]string{"all-shards-down": {deadAddr}, "empty-pool": nil} {
		t.Run(name, func(t *testing.T) {
			p := newTestPool(t, addrs, PoolOptions{
				ProbeInterval: -1,
				FailThreshold: 1,
				OpenFor:       50 * time.Millisecond,
				RetryBackoff:  5 * time.Millisecond,
			})
			e := service.NewEngine(service.EngineOptions{Workers: 2})
			t.Cleanup(func() {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				e.Close(ctx)
			})
			in := gen.Instance(gen.Config{Internal: 6, Clients: 12, Lambda: 0.4, UnitCosts: true}, 3)
			const n = 6
			req := routedBatchPayload(t, in, "mb", n)
			lines := collectRouted(t, p, e, req)
			if len(lines) != n {
				t.Fatalf("got %d lines, want %d", len(lines), n)
			}
			want := localBatchCosts(t, e, in, "mb", n)
			for i, line := range lines {
				if cost := lineCost(t, &line); line.Error != "" || cost != want[i] {
					t.Fatalf("variation %d = cost %d err %q, want cost %d", i, cost, line.Error, want[i])
				}
			}
			if st := p.ClusterStats(); st.RowsLocalFallback != n || st.RowsRouted != 0 {
				t.Fatalf("cluster stats = %+v, want all %d rows local", st, n)
			}
		})
	}
}

// TestInlineBatchHTTPRouted: the full coordinator HTTP path — POST
// /v1/batch on a daemon fronting a two-shard pool streams NDJSON in
// index order with a done trailer, and /healthz exposes the routing
// counters.
func TestInlineBatchHTTPRouted(t *testing.T) {
	w1, we := newWorker(t, 2)
	w2, _ := newWorker(t, 2)
	p := newTestPool(t, []string{w1.URL, w2.URL}, PoolOptions{ProbeInterval: -1})

	reg := service.NewRegistry()
	if err := RegisterRemote(reg, p); err != nil {
		t.Fatal(err)
	}
	ce := service.NewEngine(service.EngineOptions{Workers: 1, Registry: reg})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		ce.Close(ctx)
	})
	coord := httptest.NewServer(service.NewHandlerOpts(ce, service.HandlerOptions{Cluster: p}))
	defer coord.Close()

	in := gen.Instance(gen.Config{Internal: 6, Clients: 12, Lambda: 0.4, UnitCosts: true}, 7)
	const n = 8
	vars := make([]map[string]any, n)
	for i := range vars {
		vars[i] = map[string]any{"requests": bumpRequests(in, i)}
	}
	body, _ := json.Marshal(map[string]any{
		"topology":   map[string]any{"parents": in.Tree.Parents(), "is_client": in.Tree.ClientFlags()},
		"solver":     "optimal",
		"base":       map[string]any{"requests": in.R, "capacities": in.W, "storage_costs": in.S},
		"variations": vars,
	})
	resp, err := http.Post(coord.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	want := localBatchCosts(t, we, in, "optimal", n)
	sc := bufio.NewScanner(resp.Body)
	seen := 0
	doneSeen := false
	for sc.Scan() {
		var line struct {
			Done   bool   `json:"done"`
			Items  int    `json:"items"`
			Failed int    `json:"failed"`
			Index  *int   `json:"index"`
			Cost   int64  `json:"cost"`
			Error  string `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		if line.Done {
			doneSeen = true
			if line.Items != n || line.Failed != 0 {
				t.Fatalf("done trailer = %+v", line)
			}
			continue
		}
		if line.Error != "" {
			t.Fatalf("line error: %s", line.Error)
		}
		if line.Index == nil || *line.Index != seen {
			t.Fatalf("line %d out of order (got index %v): routed batches stream in request order", seen, line.Index)
		}
		if line.Cost != want[seen] {
			t.Fatalf("index %d: cost %d != local %d", seen, line.Cost, want[seen])
		}
		seen++
	}
	if !doneSeen || seen != n {
		t.Fatalf("stream ended with %d lines, done=%v", seen, doneSeen)
	}

	// The routing counters surface on /healthz.
	hresp, err := http.Get(coord.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var health struct {
		Cluster *service.ClusterStats `json:"cluster"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Cluster == nil || health.Cluster.BatchesRouted != 1 || health.Cluster.RowsRouted != n {
		t.Fatalf("healthz cluster stats = %+v", health.Cluster)
	}
}

// BenchmarkRouteBatchInline pins the inline-batch acceptance criterion:
// the same CPU-bound batch through a coordinator whose own engine has
// one solver goroutine, computed locally vs routed over one and two
// single-core shards. On a multi-core host cluster=2 beats local-only
// (two solver goroutines against one); a single-core host necessarily
// shows transport overhead instead — there is no second core for the
// second shard — so treat these numbers per-machine, not as a ratio to
// assert in tests.
func BenchmarkRouteBatchInline(b *testing.B) {
	// Sized so the solve dominates the HTTP hop: MixedBest on a
	// ~3200-vertex tree costs several ms per variation, against well
	// under a ms of transport per chunk.
	const variations = 16
	in := gen.Instance(gen.Config{Internal: 800, Clients: 2400, Lambda: 0.6, UnitCosts: true}, 5)

	run := func(b *testing.B, shards int) {
		e := service.NewEngine(service.EngineOptions{Workers: 1, CacheSize: -1})
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			e.Close(ctx)
		}()
		var addrs []string
		for i := 0; i < shards; i++ {
			srv, _ := newWorker(b, 1)
			addrs = append(addrs, srv.URL)
		}
		p, err := NewPool(addrs, PoolOptions{ProbeInterval: -1, MaxInFlight: 2})
		if err != nil {
			b.Fatal(err)
		}
		defer p.Close()

		req := routedBatchPayload(b, in, "mb", variations)
		base, policy, err := req.Build(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			if shards == 0 {
				err := e.SolveBatch(context.Background(), service.BatchRequest{
					Base: base, Solver: req.Solver, Policy: policy,
					Options:    req.EngineOptions(),
					Variations: req.Variations,
				}, func(item service.BatchItem) {
					if item.Err != nil {
						b.Fatal(item.Err)
					}
				})
				if err != nil {
					b.Fatal(err)
				}
				continue
			}
			err := p.RouteBatch(context.Background(), e, base, policy, req, func(line service.BatchLine) error {
				if line.Error != "" {
					b.Fatalf("line %d: %s", line.Index, line.Error)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("local-only", func(b *testing.B) { run(b, 0) })
	for _, shards := range []int{1, 2} {
		b.Run(fmt.Sprintf("cluster=%d", shards), func(b *testing.B) { run(b, shards) })
	}

	// The transport pair isolates what the wire protocol buys: many
	// cheap rows with full solutions attached, where encode/decode and
	// per-call HTTP overhead — not solving — dominate. Same worker,
	// same batch, binary vs JSON in the same run; the acceptance bar is
	// wire ≥ 1.5x the JSON ns/op.
	tin := gen.Instance(gen.Config{Internal: 30, Clients: 120, Lambda: 0.5, UnitCosts: true}, 9)
	runTransport := func(b *testing.B, disableWire bool) {
		e := service.NewEngine(service.EngineOptions{Workers: 1, CacheSize: -1})
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			e.Close(ctx)
		}()
		srv, _ := newWorker(b, 4)
		p, err := NewPool([]string{srv.URL}, PoolOptions{
			ProbeInterval: -1, MaxInFlight: 4, DisableWire: disableWire,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer p.Close()

		req := routedBatchPayload(b, tin, "mb", 256)
		req.Options.IncludeSolution = true
		base, policy, err := req.Build(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			err := p.RouteBatch(context.Background(), e, base, policy, req, func(line service.BatchLine) error {
				if line.Error != "" {
					b.Fatalf("line %d: %s", line.Index, line.Error)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st := p.ClusterStats()
		if disableWire && st.WireRequests != 0 {
			b.Fatalf("json run issued %d wire requests", st.WireRequests)
		}
		if !disableWire && st.WireRows == 0 {
			b.Fatal("wire run carried no rows over the binary transport")
		}
	}
	b.Run("transport=wire", func(b *testing.B) { runTransport(b, false) })
	b.Run("transport=json", func(b *testing.B) { runTransport(b, true) })
}
