package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// ShardEntry is one parsed -shards-file line.
type ShardEntry struct {
	// Addr is the worker address ("host:port" or a full URL).
	Addr string
	// Weight is the explicit placement weight; 0 means "discover via
	// ping" (the default weight of 1 until the worker answers).
	Weight int
}

// ParseShardsFile reads a shards file: one "addr [weight]" per line,
// blank lines and #-comments ignored.
//
//	# production workers
//	10.0.0.4:8081 8
//	10.0.0.5:8081      # weight discovered from the worker's ping
func ParseShardsFile(r io.Reader) ([]ShardEntry, error) {
	var out []ShardEntry
	seen := map[string]bool{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		if len(fields) > 2 {
			return nil, fmt.Errorf("cluster: shards file line %d: want \"addr [weight]\", got %q", line, sc.Text())
		}
		addr, err := normalizeAddr(fields[0])
		if err != nil {
			return nil, fmt.Errorf("cluster: shards file line %d: %w", line, err)
		}
		if seen[addr] {
			return nil, fmt.Errorf("cluster: shards file line %d: duplicate shard %s", line, addr)
		}
		seen[addr] = true
		entry := ShardEntry{Addr: addr}
		if len(fields) == 2 {
			w, err := strconv.Atoi(fields[1])
			if err != nil || w < 1 {
				return nil, fmt.Errorf("cluster: shards file line %d: bad weight %q", line, fields[1])
			}
			entry.Weight = w
		}
		out = append(out, entry)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// SyncFile reconciles the pool's file-origin membership against the
// entries of a freshly read shards file: listed shards are joined (or
// re-weighted), file-origin shards no longer listed leave. Shards that
// joined by other paths — the static NewPool list, the registration
// API — are never touched, so a reload cannot kick a self-registered
// worker. It returns how many shards joined and left.
func (p *Pool) SyncFile(entries []ShardEntry) (added, removed int, err error) {
	want := make(map[string]ShardEntry, len(entries))
	for _, e := range entries {
		norm, err := normalizeAddr(e.Addr)
		if err != nil {
			return added, removed, err
		}
		want[norm] = e
	}
	foreign := map[string]bool{} // members the file must not touch
	for _, s := range p.snapshot() {
		if s.origin != originFile {
			foreign[s.addr] = true
			continue
		}
		if _, listed := want[s.addr]; !listed {
			if p.RemoveShard(s.addr) {
				removed++
			}
		}
	}
	for _, e := range entries {
		norm, _ := normalizeAddr(e.Addr)
		if foreign[norm] {
			// Already a member by another path (static list, API,
			// self-registration): the file neither re-weights nor pins
			// it — a stale file line must not override what the worker
			// reports about itself.
			continue
		}
		_, isNew, err := p.addShard(norm, originFile, e.Weight)
		if err != nil {
			return added, removed, err
		}
		if isNew {
			added++
		}
	}
	return added, removed, nil
}

// SyncFromFile is SyncFile over a path.
func (p *Pool) SyncFromFile(path string) (added, removed int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	entries, err := ParseShardsFile(f)
	if err != nil {
		return 0, 0, err
	}
	return p.SyncFile(entries)
}

// Registrar keeps one worker registered with a coordinator: POST
// /v1/cluster/shards at startup and every Interval thereafter (the
// heartbeat doubles as re-registration after a coordinator restart,
// whose empty reloaded pool would otherwise never relearn the worker),
// and DELETE on Stop so a graceful drain leaves the membership clean.
// A killed worker skips the DELETE, of course — its circuit opens and
// it keeps its seat until the operator removes it or it comes back.
type Registrar struct {
	// Coordinator is the coordinator base URL ("host:port" ok).
	Coordinator string
	// Advertise is the address the coordinator should dial back —
	// this worker as reachable from the coordinator.
	Advertise string
	// Weight is the explicit placement weight; 0 lets the coordinator
	// discover it from this worker's ping (recommended).
	Weight int
	// Secret, when non-empty, is sent as the cluster-secret header on
	// every registration call; it must match the coordinator's
	// -cluster-secret or registrations are rejected with 401.
	Secret string
	// Interval is the heartbeat period (default 10s).
	Interval time.Duration
	// Logger, when set, receives registration outcomes (nil discards).
	Logger *slog.Logger

	client    *http.Client
	stop      chan struct{}
	wg        sync.WaitGroup
	startOnce sync.Once
	stopOnce  sync.Once
}

// joinWire is the POST/DELETE /v1/cluster/shards body.
type joinWire struct {
	Addr   string `json:"addr"`
	Weight int    `json:"weight,omitempty"`
}

// Start begins the register-and-heartbeat loop. It returns immediately;
// failures are retried every Interval (and logged via Logf).
func (r *Registrar) Start() error {
	coord, err := normalizeAddr(r.Coordinator)
	if err != nil {
		return fmt.Errorf("cluster: registrar coordinator: %w", err)
	}
	r.Coordinator = coord
	if _, err := normalizeAddr(r.Advertise); err != nil {
		return fmt.Errorf("cluster: registrar advertise address: %w", err)
	}
	r.startOnce.Do(func() {
		if r.Interval <= 0 {
			r.Interval = 10 * time.Second
		}
		if r.Logger == nil {
			r.Logger = obs.NopLogger()
		}
		if r.client == nil {
			r.client = &http.Client{Timeout: 5 * time.Second}
		}
		r.stop = make(chan struct{})
		r.wg.Add(1)
		go r.loop()
	})
	return nil
}

func (r *Registrar) loop() {
	defer r.wg.Done()
	registered := false
	register := func() {
		err := r.send(http.MethodPost)
		switch {
		case err == nil && !registered:
			registered = true
			r.Logger.Info("registered with coordinator",
				"coordinator", r.Coordinator, "advertise", r.Advertise)
		case err != nil && registered:
			registered = false
			r.Logger.Warn("re-registration failed; will retry",
				"coordinator", r.Coordinator, "error", err)
		case err != nil:
			r.Logger.Warn("registration failed; will retry",
				"coordinator", r.Coordinator, "error", err)
		}
	}
	register()
	t := time.NewTicker(r.Interval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			register()
		}
	}
}

// Stop halts the heartbeat and deregisters (best effort — a dead
// coordinator just means the seat expires by breaker instead).
func (r *Registrar) Stop() {
	r.stopOnce.Do(func() {
		if r.stop == nil {
			return // never started
		}
		close(r.stop)
		r.wg.Wait()
		if err := r.send(http.MethodDelete); err != nil {
			r.Logger.Warn("deregistration failed", "coordinator", r.Coordinator, "error", err)
		} else {
			r.Logger.Info("deregistered from coordinator", "coordinator", r.Coordinator)
		}
	})
}

func (r *Registrar) send(method string) error {
	body, err := json.Marshal(joinWire{Addr: r.Advertise, Weight: r.Weight})
	if err != nil {
		return err
	}
	req, err := http.NewRequest(method, r.Coordinator+"/v1/cluster/shards", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if r.Secret != "" {
		req.Header.Set(service.ClusterSecretHeader, r.Secret)
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: %s /v1/cluster/shards: status %d: %s",
			method, resp.StatusCode, readErrorBody(resp.Body))
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// DefaultAdvertise derives a dialable advertise address from a listen
// address: ":8081", "0.0.0.0:8081" and "[::]:8081" become "<host>:8081"
// via the machine hostname (falling back to 127.0.0.1 — right for
// single-host clusters, which is what an unconfigured advertise address
// implies). Addresses that already name a host pass through unchanged.
func DefaultAdvertise(listen string) string {
	host, port, err := net.SplitHostPort(strings.TrimPrefix(listen, "http://"))
	if err != nil {
		return listen
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		if h, err := os.Hostname(); err == nil && h != "" {
			return net.JoinHostPort(h, port)
		}
		return "127.0.0.1:" + port
	}
	return listen
}
