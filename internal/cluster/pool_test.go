package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster/wire"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/service"
)

// wireServers maps each test worker to its wire.Server so killServer
// can sever hijacked wire connections too: httptest untracks a conn
// once it is hijacked, so CloseClientConnections alone would leave a
// "crashed" worker's wire sessions alive and the failover tests
// vacuous.
var wireServers sync.Map // *httptest.Server -> *wire.Server

// newWorker starts an in-process worker shard: the full service handler
// with unlimited inline campaigns and the binary wire transport
// mounted, like rpworker runs.
func newWorker(t testing.TB, engineWorkers int) (*httptest.Server, *service.Engine) {
	t.Helper()
	e := service.NewEngine(service.EngineOptions{Workers: engineWorkers})
	ws := wire.NewServer(e, nil)
	srv := httptest.NewServer(service.NewHandlerOpts(e, service.HandlerOptions{
		MaxInlineCampaigns: -1,
		Wire:               ws,
	}))
	wireServers.Store(srv, ws)
	t.Cleanup(func() {
		killServer(srv)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		e.Close(ctx)
	})
	return srv, e
}

// newJSONWorker starts a worker without the wire transport mounted —
// the "older worker / plain HTTP shard" a coordinator must fall back
// to JSON for.
func newJSONWorker(t testing.TB, engineWorkers int) (*httptest.Server, *service.Engine) {
	t.Helper()
	e := service.NewEngine(service.EngineOptions{Workers: engineWorkers})
	srv := httptest.NewServer(service.NewHandlerOpts(e, service.HandlerOptions{MaxInlineCampaigns: -1}))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		e.Close(ctx)
	})
	return srv, e
}

// killServer simulates a worker crash: in-flight connections are cut —
// including hijacked wire sessions, which httptest no longer tracks —
// and the listener stops accepting.
func killServer(srv *httptest.Server) {
	if ws, ok := wireServers.LoadAndDelete(srv); ok {
		ws.(*wire.Server).Close()
	}
	srv.CloseClientConnections()
	srv.Close()
}

func testInstance(seed int64) *core.Instance {
	return gen.Instance(gen.Config{Internal: 8, Clients: 16, Lambda: 0.4, UnitCosts: true}, seed)
}

func newTestPool(t testing.TB, addrs []string, opts PoolOptions) *Pool {
	t.Helper()
	p, err := NewPool(addrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestPoolRejectsBadAddrs(t *testing.T) {
	// An empty list is legal since membership went dynamic — a bare
	// coordinator waits for workers to register — but its calls fail
	// fast instead of queueing forever.
	p, err := NewPool(nil, PoolOptions{ProbeInterval: -1})
	if err != nil {
		t.Fatalf("empty pool rejected: %v", err)
	}
	defer p.Close()
	if _, err := p.Solve(context.Background(), testInstance(1), "mb", core.Multiple, service.Options{}); !errors.Is(err, ErrNoShard) {
		t.Fatalf("empty-pool solve err = %v, want ErrNoShard", err)
	}
	if _, err := NewPool([]string{"a:1", "a:1"}, PoolOptions{}); err == nil {
		t.Fatal("duplicate shard accepted")
	}
	if _, err := NewPool([]string{" "}, PoolOptions{}); err == nil {
		t.Fatal("blank shard accepted")
	}
}

// TestPoolSolveMatchesLocal: a solve proxied through the pool returns
// the same placement cost as running the solver in-process.
func TestPoolSolveMatchesLocal(t *testing.T) {
	srv, e := newWorker(t, 2)
	p := newTestPool(t, []string{srv.URL}, PoolOptions{ProbeInterval: -1})

	in := testInstance(7)
	local, err := e.Solve(context.Background(), service.Request{Instance: in, Solver: "mb"})
	if err != nil {
		t.Fatal(err)
	}
	remote, err := p.Solve(context.Background(), in, "mb", core.Multiple, service.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if remote.Cost != local.Cost || remote.ReplicaCount != local.ReplicaCount {
		t.Fatalf("remote = cost %d / %d replicas, local = cost %d / %d replicas",
			remote.Cost, remote.ReplicaCount, local.Cost, local.ReplicaCount)
	}
	if remote.Solution == nil {
		t.Fatal("remote response without the solution the backend needs")
	}
}

// TestPoolFailover: with one dead shard in the list, idempotent calls
// fail over to the live one and the dead shard's circuit opens.
func TestPoolFailover(t *testing.T) {
	srv, _ := newWorker(t, 2)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadAddr := dead.URL
	killServer(dead)

	p := newTestPool(t, []string{deadAddr, srv.URL}, PoolOptions{
		ProbeInterval: -1,
		FailThreshold: 2,
		OpenFor:       time.Minute,
	})
	in := testInstance(3)
	for i := 0; i < 6; i++ {
		if _, err := p.Solve(context.Background(), in, "mb", core.Multiple, service.Options{NoCache: true}); err != nil {
			t.Fatalf("solve %d: %v", i, err)
		}
	}
	var deadStat, liveStat service.ShardStat
	for _, st := range p.ShardStats() {
		if st.Addr == deadAddr {
			deadStat = st
		} else {
			liveStat = st
		}
	}
	if deadStat.Failures == 0 || deadStat.Failovers == 0 {
		t.Fatalf("dead shard stats = %+v, want failures and failovers", deadStat)
	}
	if deadStat.State != "open" {
		t.Fatalf("dead shard state = %s, want open (threshold 2 exceeded)", deadStat.State)
	}
	if liveStat.Requests == 0 || liveStat.Failures != 0 {
		t.Fatalf("live shard stats = %+v", liveStat)
	}
}

// TestPoolCircuitTransitions walks one shard's breaker through
// closed → open → half-open → closed using a handler that fails on
// demand, with the background prober disabled so every transition is
// driven by recorded request outcomes.
func TestPoolCircuitTransitions(t *testing.T) {
	var failing atomic.Bool
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			http.Error(w, `{"error":"injected"}`, http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer backend.Close()

	const openFor = 80 * time.Millisecond
	p := newTestPool(t, []string{backend.URL}, PoolOptions{
		ProbeInterval: -1,
		FailThreshold: 2,
		OpenFor:       openFor,
		MaxFailures:   1, // one failed execution per do() call
	})
	s := p.shards[0]
	state := func() string { return p.ShardStats()[0].State }

	callCtx := func(ctx context.Context) error {
		return p.do(ctx, true, func(ctx context.Context, sh *shard) error {
			resp, err := p.postJSON(ctx, sh, "/", nil)
			if err != nil {
				return err
			}
			resp.Body.Close()
			return nil
		})
	}
	call := func() error { return callCtx(context.Background()) }

	if err := call(); err != nil || state() != "closed" {
		t.Fatalf("healthy call: err=%v state=%s", err, state())
	}

	// Two consecutive failures reach the threshold: closed -> open.
	failing.Store(true)
	for i := 0; i < 2; i++ {
		if err := call(); err == nil {
			t.Fatal("failing call succeeded")
		}
	}
	if state() != "open" {
		t.Fatalf("state after threshold = %s, want open", state())
	}

	// While open, calls find no admissible shard and time out without
	// ever reaching the backend.
	before := p.ShardStats()[0].Requests
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	err := callCtx(ctx)
	cancel()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("open-circuit call: %v, want deadline", err)
	}
	if got := p.ShardStats()[0].Requests; got != before {
		t.Fatalf("open circuit admitted traffic: %d -> %d requests", before, got)
	}

	// After OpenFor, the next request is the half-open trial; it fails,
	// re-opening immediately (no threshold counting in half-open).
	time.Sleep(openFor + 20*time.Millisecond)
	if err := call(); err == nil {
		t.Fatal("half-open trial against failing backend succeeded")
	}
	if state() != "open" {
		t.Fatalf("state after failed trial = %s, want open", state())
	}

	// Heal the backend; the trial after the window closes the circuit.
	failing.Store(false)
	time.Sleep(openFor + 20*time.Millisecond)
	// Observe the half-open admission itself: during tryAcquire the
	// state flips to half-open before the request runs.
	s.mu.Lock()
	st := s.state
	s.mu.Unlock()
	if st != stateOpen {
		t.Fatalf("pre-trial state = %v, want open", st)
	}
	if !s.tryAcquire(time.Now()) {
		t.Fatal("trial not admitted after OpenFor")
	}
	if state() != "half-open" {
		t.Fatalf("state during trial = %s, want half-open", state())
	}
	s.release()
	s.recordSuccess()
	if state() != "closed" {
		t.Fatalf("state after successful trial = %s, want closed", state())
	}
	if err := call(); err != nil {
		t.Fatalf("call after recovery: %v", err)
	}
}

// TestPoolProbeRecovery: an open circuit closes again via the
// background prober once the worker is healthy, without live traffic.
func TestPoolProbeRecovery(t *testing.T) {
	var failing atomic.Bool
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer backend.Close()

	p := newTestPool(t, []string{backend.URL}, PoolOptions{
		ProbeInterval: 20 * time.Millisecond,
		FailThreshold: 1,
		OpenFor:       time.Minute, // far longer than the probe period
		MaxFailures:   1,
	})
	failing.Store(true)
	p.do(context.Background(), true, func(ctx context.Context, s *shard) error {
		resp, err := p.postJSON(ctx, s, "/", nil)
		if err != nil {
			return err
		}
		resp.Body.Close()
		return nil
	})
	if st := p.ShardStats()[0].State; st != "open" {
		t.Fatalf("state after failure = %s, want open", st)
	}

	failing.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if p.ShardStats()[0].Healthy {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("prober never closed the circuit of a healthy worker")
}

// TestPoolPermanentErrorNoFailover: a 4xx must neither fail over (the
// second shard would fail identically) nor open the breaker.
func TestPoolPermanentErrorNoFailover(t *testing.T) {
	var hits1, hits2 atomic.Int64
	bad := func(hits *atomic.Int64) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			hits.Add(1)
			http.Error(w, `{"error":"no such solver"}`, http.StatusNotFound)
		}
	}
	s1 := httptest.NewServer(bad(&hits1))
	defer s1.Close()
	s2 := httptest.NewServer(bad(&hits2))
	defer s2.Close()

	p := newTestPool(t, []string{s1.URL, s2.URL}, PoolOptions{ProbeInterval: -1})
	in := testInstance(1)
	_, err := p.Solve(context.Background(), in, "definitely-not-a-solver", core.Multiple, service.Options{})
	if err == nil || !isPermanent(err) {
		t.Fatalf("err = %v, want permanent", err)
	}
	if hits1.Load()+hits2.Load() != 1 {
		t.Fatalf("4xx hit %d shards, want exactly 1 (no failover)", hits1.Load()+hits2.Load())
	}
	for _, st := range p.ShardStats() {
		if !st.Healthy || st.Failures != 0 {
			t.Fatalf("4xx poisoned shard stats: %+v", st)
		}
	}
}

// TestRegisterRemote: @remote twins resolve through the engine with the
// cache/validation layers intact, for solution and bound solvers alike.
func TestRegisterRemote(t *testing.T) {
	srv, we := newWorker(t, 2)
	p := newTestPool(t, []string{srv.URL}, PoolOptions{ProbeInterval: -1})

	reg := service.NewRegistry()
	if err := RegisterRemote(reg, p); err != nil {
		t.Fatal(err)
	}
	// Idempotence guard: a second pass must not try to register
	// "x@remote@remote" (it would fail on duplicates otherwise).
	if err := RegisterRemote(service.NewRegistry(), p); err != nil {
		t.Fatal(err)
	}

	e := service.NewEngine(service.EngineOptions{Workers: 2, Registry: reg})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		e.Close(ctx)
	})

	in := testInstance(11)
	local, err := we.Solve(context.Background(), service.Request{Instance: in, Solver: "optimal"})
	if err != nil {
		t.Fatal(err)
	}
	remote, err := e.Solve(context.Background(), service.Request{Instance: in, Solver: "optimal@remote"})
	if err != nil {
		t.Fatal(err)
	}
	if remote.Cost != local.Cost {
		t.Fatalf("optimal@remote cost %d != local %d", remote.Cost, local.Cost)
	}
	// The coordinator cache serves the repeat without another HTTP hop.
	again, err := e.Solve(context.Background(), service.Request{Instance: in, Solver: "optimal@remote"})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("second identical remote solve not served from the coordinator cache")
	}

	bound, err := e.Solve(context.Background(), service.Request{Instance: in, Solver: "lp-rational-multiple@remote"})
	if err != nil {
		t.Fatal(err)
	}
	if bound.Bound == nil || bound.Bound.Value <= 0 {
		t.Fatalf("remote bound = %+v", bound.Bound)
	}
}
