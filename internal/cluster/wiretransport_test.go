package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster/wire"
	"repro/internal/gen"
	"repro/internal/service"
)

// newCoordinatorEngine builds the engine a coordinator runs: a registry
// with @remote twins over the pool.
func newCoordinatorEngine(t testing.TB, p *Pool, workers int) *service.Engine {
	t.Helper()
	reg := service.NewRegistry()
	if err := RegisterRemote(reg, p); err != nil {
		t.Fatal(err)
	}
	ce := service.NewEngine(service.EngineOptions{Workers: workers, Registry: reg})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		ce.Close(ctx)
	})
	return ce
}

// Timing and cache provenance are the only legitimate differences
// between a routed row and a locally computed one.
var volatileRowFields = regexp.MustCompile(`"(elapsed_ms|cached)":[^,}]*`)

func normalizeRow(t *testing.T, line *service.BatchLine) string {
	t.Helper()
	data, err := line.AppendJSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	return volatileRowFields.ReplaceAllString(string(data), `"$1":x`)
}

// TestRouteBatchBinaryBytesMatchLocal pins the zero-copy relay
// contract: the NDJSON a client reads from a batch routed over the
// binary wire is byte-identical to what local execution would have
// produced — same encoder, same field order, same values — modulo the
// elapsed_ms/cached fields, which legitimately differ per run.
func TestRouteBatchBinaryBytesMatchLocal(t *testing.T) {
	srv, _ := newWorker(t, 2)
	p := newTestPool(t, []string{srv.URL}, PoolOptions{ProbeInterval: -1})
	ce := newCoordinatorEngine(t, p, 1)

	in := gen.Instance(gen.Config{Internal: 6, Clients: 12, Lambda: 0.4, UnitCosts: true}, 11)
	const n = 8
	req := routedBatchPayload(t, in, "mb@remote", n)
	routed := collectRouted(t, p, ce, req)
	if len(routed) != n {
		t.Fatalf("got %d routed lines, want %d", len(routed), n)
	}
	if st := p.ClusterStats(); st.WireRows != n || st.WireFallbacks != 0 {
		t.Fatalf("wire stats = %+v, want all %d rows over the binary transport", st, n)
	}

	// The same batch through a plain local engine, rendered by the same
	// NDJSON emitter the non-cluster handler uses.
	le := service.NewEngine(service.EngineOptions{Workers: 2})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		le.Close(ctx)
	})
	lreq := *req
	lreq.Solver = "mb" // the local engine has no @remote twins
	base, policy, err := lreq.Build(le)
	if err != nil {
		t.Fatal(err)
	}
	local := make([]*service.BatchLine, n)
	err = le.SolveBatch(context.Background(), service.BatchRequest{
		Base: base, Solver: "mb", Policy: policy,
		Options:    req.EngineOptions(),
		Variations: req.Variations,
	}, func(item service.BatchItem) {
		if item.Err != nil {
			t.Errorf("local variation %d: %v", item.Index, item.Err)
			return
		}
		local[item.Index] = &service.BatchLine{Index: item.Index, Response: item.Response}
	})
	if err != nil {
		t.Fatal(err)
	}

	for i := range routed {
		if len(routed[i].Raw) == 0 {
			t.Fatalf("routed line %d carries no raw body: the relay re-encoded it", i)
		}
		got := normalizeRow(t, &routed[i])
		want := normalizeRow(t, local[i])
		if got != want {
			t.Fatalf("row %d differs:\nrouted %s\nlocal  %s", i, got, want)
		}
	}
}

// TestRouteBatchCacheShortCircuit: a repeated inline batch is answered
// from the coordinator's routed-row cache — no shard round-trips, same
// bytes, and the short-circuit counter advances.
func TestRouteBatchCacheShortCircuit(t *testing.T) {
	srv, _ := newWorker(t, 2)
	p := newTestPool(t, []string{srv.URL}, PoolOptions{ProbeInterval: -1})
	ce := newCoordinatorEngine(t, p, 1)

	in := gen.Instance(gen.Config{Internal: 6, Clients: 12, Lambda: 0.4, UnitCosts: true}, 13)
	const n = 6
	req := routedBatchPayload(t, in, "mb@remote", n)
	req.Options.NoCache = false // cacheable, unlike the transport tests

	first := collectRouted(t, p, ce, req)
	st := p.ClusterStats()
	if len(first) != n || st.RowsRouted != n || st.BatchCacheShortCircuits != 0 {
		t.Fatalf("first run: %d lines, stats %+v", len(first), st)
	}

	second := collectRouted(t, p, ce, req)
	st = p.ClusterStats()
	if st.BatchCacheShortCircuits != n {
		t.Fatalf("short circuits = %d, want %d (every repeated variation)", st.BatchCacheShortCircuits, n)
	}
	if st.RowsRouted != n {
		t.Fatalf("rows routed grew to %d: the repeat went back to the shards", st.RowsRouted)
	}
	for i := range second {
		if normalizeRow(t, &second[i]) != normalizeRow(t, &first[i]) {
			t.Fatalf("cached row %d differs from the routed original", i)
		}
		// A replay must say so: cached:true, no stale worker timing, no
		// verbatim raw relay pretending to be a fresh solve.
		if second[i].Response == nil || !second[i].Response.Cached || len(second[i].Raw) != 0 {
			t.Fatalf("replayed row %d does not report itself as cached", i)
		}
	}
}

// hasSolution reads a line's rendered JSON (raw or decoded, the one
// path both take to the client) and reports whether the full
// assignment rode along.
func hasSolution(t *testing.T, line *service.BatchLine) bool {
	t.Helper()
	data, err := line.AppendJSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	var row struct {
		Solution json.RawMessage `json:"solution"`
	}
	if err := json.Unmarshal(data, &row); err != nil {
		t.Fatal(err)
	}
	return len(row.Solution) > 0 && string(row.Solution) != "null"
}

// TestRouteCacheSolutionFidelity pins the raw-row cache's key contract:
// the serialized body depends on include_solution, so a repeat that
// differs only in that flag must NOT be served the memoized bytes — the
// solution must never be silently missing when requested, nor leaked
// when not.
func TestRouteCacheSolutionFidelity(t *testing.T) {
	srv, _ := newWorker(t, 2)
	p := newTestPool(t, []string{srv.URL}, PoolOptions{ProbeInterval: -1})
	ce := newCoordinatorEngine(t, p, 1)

	in := gen.Instance(gen.Config{Internal: 6, Clients: 12, Lambda: 0.4, UnitCosts: true}, 23)
	const n = 4
	req := routedBatchPayload(t, in, "mb@remote", n)
	req.Options.NoCache = false

	// Run 1: no solutions asked for; rows memoize under the plain key.
	for i, line := range collectRouted(t, p, ce, req) {
		if hasSolution(t, &line) {
			t.Fatalf("run 1 row %d carries a solution nobody asked for", i)
		}
	}

	// Run 2 repeats the batch asking for solutions: the memoized
	// solution-less bodies must not answer it — every row ships out
	// again and comes back with the assignment attached.
	req.Options.IncludeSolution = true
	lines := collectRouted(t, p, ce, req)
	st := p.ClusterStats()
	if st.BatchCacheShortCircuits != 0 {
		t.Fatalf("short circuits = %d: solution-less cached rows answered an include_solution repeat", st.BatchCacheShortCircuits)
	}
	if st.RowsRouted != 2*n {
		t.Fatalf("rows routed = %d, want %d (the include_solution repeat must re-ship)", st.RowsRouted, 2*n)
	}
	for i := range lines {
		if !hasSolution(t, &lines[i]) {
			t.Fatalf("run 2 row %d is missing its solution", i)
		}
	}

	// Run 3 repeats run 2: solution-bearing bodies are now memoized
	// under their own key, so the repeat short-circuits — and the
	// replay keeps the solution while reporting itself cached.
	lines = collectRouted(t, p, ce, req)
	st = p.ClusterStats()
	if st.BatchCacheShortCircuits != n || st.RowsRouted != 2*n {
		t.Fatalf("run 3: short circuits = %d rows routed = %d, want %d short circuits and no new shard trips",
			st.BatchCacheShortCircuits, st.RowsRouted, n)
	}
	for i := range lines {
		if !hasSolution(t, &lines[i]) {
			t.Fatalf("replayed row %d lost its solution", i)
		}
		if lines[i].Response == nil || !lines[i].Response.Cached {
			t.Fatalf("replayed row %d does not report cached:true", i)
		}
	}
}

// deadWireConn fabricates a parked connection whose peer is already
// gone — what every idle entry looks like after a worker restart.
func deadWireConn() *wireConn {
	c1, c2 := net.Pipe()
	c1.Close()
	c2.Close()
	br := bufio.NewReader(c1)
	bw := bufio.NewWriter(c1)
	return &wireConn{conn: c1, br: br, bw: bw, r: wire.NewReader(br), w: wire.NewWriter(bw)}
}

// TestWireDoDrainsStaleIdleConns: a single wire exchange against a
// shard whose idle pool is full of dead keep-alives must drain them
// all and succeed on a fresh dial — not give up after one retry.
func TestWireDoDrainsStaleIdleConns(t *testing.T) {
	srv, _ := newWorker(t, 2)
	p := newTestPool(t, []string{srv.URL}, PoolOptions{ProbeInterval: -1})
	p.mu.RLock()
	s := p.shards[0]
	p.mu.RUnlock()

	s.wire.mu.Lock()
	for i := 0; i < 3; i++ {
		s.wire.idle = append(s.wire.idle, deadWireConn())
	}
	s.wire.mu.Unlock()

	in := gen.Instance(gen.Config{Internal: 6, Clients: 12, Lambda: 0.4, UnitCosts: true}, 29)
	const n = 2
	req := routedBatchPayload(t, in, "mb", n)
	rows := 0
	err := p.wireBatchChunk(context.Background(), s, req, func(line service.BatchLine) {
		if line.Error != "" {
			t.Errorf("row %d: %s", line.Index, line.Error)
		}
		rows++
	})
	if err != nil {
		t.Fatalf("chunk failed over a shard with stale parked connections: %v", err)
	}
	if rows != n {
		t.Fatalf("got %d rows, want %d", rows, n)
	}
	if idle := func() int { s.wire.mu.Lock(); defer s.wire.mu.Unlock(); return len(s.wire.idle) }(); idle != 1 {
		t.Fatalf("idle pool holds %d connections, want just the fresh one (stale entries drained)", idle)
	}
}

// TestRouteBatchJSONFallback: a shard that doesn't serve /v1/wire (an
// older worker, a plain HTTP server) is detected once and served over
// the JSON path — the batch still completes, rows still route.
func TestRouteBatchJSONFallback(t *testing.T) {
	srv, _ := newJSONWorker(t, 2)
	p := newTestPool(t, []string{srv.URL}, PoolOptions{ProbeInterval: -1})
	ce := newCoordinatorEngine(t, p, 1)

	in := gen.Instance(gen.Config{Internal: 6, Clients: 12, Lambda: 0.4, UnitCosts: true}, 17)
	const n = 6
	req := routedBatchPayload(t, in, "mb@remote", n)
	lines := collectRouted(t, p, ce, req)
	if len(lines) != n {
		t.Fatalf("got %d lines, want %d", len(lines), n)
	}
	st := p.ClusterStats()
	if st.WireFallbacks == 0 {
		t.Fatal("no wire fallback recorded against a JSON-only shard")
	}
	if st.WireRows != 0 {
		t.Fatalf("%d rows claimed to travel a wire that doesn't exist", st.WireRows)
	}
	if st.RowsRouted != n || st.RowsLocalFallback != 0 {
		t.Fatalf("cluster stats = %+v, want all %d rows routed over JSON", st, n)
	}
}

// TestPoolWireDisabled: PoolOptions.DisableWire keeps everything on
// JSON without ever dialing /v1/wire, even against a wire-capable
// worker.
func TestPoolWireDisabled(t *testing.T) {
	srv, _ := newWorker(t, 2)
	p := newTestPool(t, []string{srv.URL}, PoolOptions{ProbeInterval: -1, DisableWire: true})
	ce := newCoordinatorEngine(t, p, 1)

	in := gen.Instance(gen.Config{Internal: 6, Clients: 12, Lambda: 0.4, UnitCosts: true}, 19)
	const n = 4
	lines := collectRouted(t, p, ce, routedBatchPayload(t, in, "mb@remote", n))
	if len(lines) != n {
		t.Fatalf("got %d lines, want %d", len(lines), n)
	}
	st := p.ClusterStats()
	if st.WireConnections != 0 || st.WireRequests != 0 || st.WireFallbacks != 0 {
		t.Fatalf("wire stats %+v, want no wire activity at all", st)
	}
}

// TestPoolExpiresStaleShards: a dynamically joined worker that dies
// without deregistering loses its seat after ExpireAfter consecutive
// failed probes; a static-list shard never does.
func TestPoolExpiresStaleShards(t *testing.T) {
	srv, _ := newWorker(t, 1)
	p := newTestPool(t, nil, PoolOptions{
		ProbeInterval: 20 * time.Millisecond,
		ExpireAfter:   2,
	})
	if _, joined, err := p.AddShard(srv.URL, 2); err != nil || !joined {
		t.Fatalf("join: %v joined=%v", err, joined)
	}
	killServer(srv)
	deadline := time.Now().Add(10 * time.Second)
	for p.ShardCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("dead dynamic shard still holds its seat after %d missed probes allowed", 2)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := p.ClusterStats(); st.ShardsExpired != 1 {
		t.Fatalf("ShardsExpired = %d, want 1", st.ShardsExpired)
	}

	// A shard from the operator's static list keeps its seat no matter
	// how many probes it misses.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadAddr := dead.URL
	killServer(dead)
	ps := newTestPool(t, []string{deadAddr}, PoolOptions{
		ProbeInterval: 10 * time.Millisecond,
		ExpireAfter:   1,
	})
	time.Sleep(150 * time.Millisecond)
	if ps.ShardCount() != 1 {
		t.Fatal("static shard was expired; only dynamic members may be")
	}
	if st := ps.ClusterStats(); st.ShardsExpired != 0 {
		t.Fatalf("static pool ShardsExpired = %d, want 0", st.ShardsExpired)
	}
}

// TestClusterMembershipSecret: with ClusterSecret set, mutating
// membership calls need the shared-secret header — reads stay open —
// and a Registrar configured with the secret registers fine.
func TestClusterMembershipSecret(t *testing.T) {
	e := service.NewEngine(service.EngineOptions{Workers: 1})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		e.Close(ctx)
	})
	p := newTestPool(t, nil, PoolOptions{ProbeInterval: -1})
	srv := httptest.NewServer(service.NewHandlerOpts(e, service.HandlerOptions{
		Cluster:       p,
		ClusterSecret: "hunter2",
	}))
	defer srv.Close()

	call := func(method, path, body, secret string) int {
		t.Helper()
		req, err := http.NewRequest(method, srv.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if secret != "" {
			req.Header.Set(service.ClusterSecretHeader, secret)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := call(http.MethodGet, "/v1/cluster/shards", "", ""); code != 200 {
		t.Fatalf("read-only GET without secret: %d, want 200", code)
	}
	join := `{"addr":"w1:9001","weight":2}`
	if code := call(http.MethodPost, "/v1/cluster/shards", join, ""); code != 401 {
		t.Fatalf("POST without secret: %d, want 401", code)
	}
	if code := call(http.MethodPost, "/v1/cluster/shards", join, "hunter3"); code != 401 {
		t.Fatalf("POST with wrong secret: %d, want 401", code)
	}
	if p.ShardCount() != 0 {
		t.Fatal("unauthorized POST changed the membership")
	}
	if code := call(http.MethodPost, "/v1/cluster/shards", join, "hunter2"); code != 200 {
		t.Fatalf("POST with secret: %d, want 200", code)
	}
	if code := call(http.MethodDelete, "/v1/cluster/shards?addr=w1:9001", "", ""); code != 401 {
		t.Fatalf("DELETE without secret: %d, want 401", code)
	}
	if p.ShardCount() != 1 {
		t.Fatal("unauthorized DELETE changed the membership")
	}
	if code := call(http.MethodDelete, "/v1/cluster/shards?addr=w1:9001", "", "hunter2"); code != 200 {
		t.Fatalf("DELETE with secret: %d, want 200", code)
	}

	// A registrar carrying the secret joins and leaves cleanly.
	r := &Registrar{
		Coordinator: srv.URL,
		Advertise:   "10.9.9.9:7777",
		Weight:      3,
		Secret:      "hunter2",
		Interval:    time.Hour,
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.ShardCount() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("registrar with secret never joined")
		}
		time.Sleep(5 * time.Millisecond)
	}
	r.Stop()
	if p.ShardCount() != 0 {
		t.Fatal("registrar Stop did not deregister")
	}
}
