package cluster

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// federateStaleFactor: a shard whose last good scrape is older than
// this many FederateIntervals ages out of the federated merge — its
// numbers describe a worker that has stopped answering, and serving
// them would make a dead shard look alive to whatever scrapes the
// coordinator.
const federateStaleFactor = 3

// maybeFederate scrapes the shard's /metrics into its federation cache
// when the cached copy is due for refresh. Called from the probe loop
// after a successful ping, so a dead shard never delays the sweep with
// a second timeout.
func (p *Pool) maybeFederate(s *shard) {
	if p.opts.FederateInterval <= 0 {
		return
	}
	s.fedMu.Lock()
	due := time.Since(s.fedAt) >= p.opts.FederateInterval
	s.fedMu.Unlock()
	if !due {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := p.scrapeMetrics(ctx, s); err != nil {
		// The stale cache ages out on its own; a scrape failure right
		// after a successful ping is worth a log line, not a breaker.
		p.log.Debug("shard metrics scrape failed", "shard", s.addr, "error", err)
	}
}

// scrapeMetrics fetches one shard's /metrics and strictly validates it
// with obs.ParseExposition before caching — a malformed exposition is
// rejected here so the federated merge can never propagate it.
func (p *Pool) scrapeMetrics(ctx context.Context, s *shard) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.addr+"/metrics", nil)
	if err != nil {
		return err
	}
	resp, err := p.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	fams, err := obs.ParseExposition(resp.Body)
	if err != nil {
		return fmt.Errorf("invalid exposition: %w", err)
	}
	s.fedMu.Lock()
	s.fedFams = fams
	s.fedAt = time.Now()
	s.fedMu.Unlock()
	return nil
}

// FederatedExpositions implements service.MetricsFederator: the cached
// parsed exposition of every current member with a fresh-enough scrape.
// Members that left (or were expired) drop out with the membership
// itself; members that stopped answering age out after
// federateStaleFactor scrape intervals.
func (p *Pool) FederatedExpositions() []service.ShardExposition {
	if p.opts.FederateInterval <= 0 {
		return nil
	}
	// Scrapes ride the probe loop, so the effective refresh period is
	// the slower of the two intervals — a FederateInterval below the
	// probe period must not make fresh caches look stale.
	refresh := p.opts.FederateInterval
	if p.opts.ProbeInterval > refresh {
		refresh = p.opts.ProbeInterval
	}
	staleAfter := federateStaleFactor * refresh
	var out []service.ShardExposition
	for _, s := range p.snapshot() {
		s.fedMu.Lock()
		fams, at := s.fedFams, s.fedAt
		s.fedMu.Unlock()
		if fams == nil {
			continue
		}
		age := time.Since(at)
		if age > staleAfter {
			continue
		}
		out = append(out, service.ShardExposition{Addr: s.addr, Age: age, Families: fams})
	}
	return out
}
