package cluster

import (
	"container/list"
	"sync"
)

// rawCache memoizes routed batch rows the coordinator relays without
// decoding: canonical request key (service.Key of the variation's
// instance) → the worker's raw JSON response body. Routed rows never
// enter the engine's solution cache — the whole point of the binary
// relay is that the coordinator does not parse them — so without this,
// a repeated inline batch would re-ship every variation the cluster
// just solved. Retention is bounded both by entry count and by the
// approximate byte footprint of the stored bodies: include_solution
// rows can be large, and the coordinator must not hoard an unbounded
// heap of them. A nil *rawCache (cache disabled) is valid and misses
// everything.
type rawCache struct {
	mu       sync.Mutex
	max      int
	maxBytes int64 // <= 0: no byte bound
	bytes    int64 // approximate retained footprint
	lru      *list.List
	entries  map[string]*list.Element
}

type rawEntry struct {
	key  string
	body []byte
}

// rawEntryOverhead approximates an entry's bookkeeping cost beyond the
// body itself: the LRU element, map bucket share, and the (hex hash)
// key stored twice. Rounded up, like the engine cache's resultSize —
// the byte limit is a safety bound, not an accounting ledger.
const rawEntryOverhead = 256

func (e *rawEntry) size() int64 { return int64(len(e.body)) + rawEntryOverhead }

// routeKey derives the raw-row memoization key from a request's
// canonical cache key. The canonical key deliberately excludes options
// that do not change the computed result — but the serialized body DOES
// depend on IncludeSolution (the worker only attaches the assignment
// when asked), and raw bytes cannot be reshaped per request the way the
// engine cache's Result can. Qualifying the key keeps rows with and
// without the solution from answering for each other.
func routeKey(key string, includeSolution bool) string {
	if key == "" {
		return ""
	}
	if includeSolution {
		return key + "+sol"
	}
	return key
}

// newRawCache builds a cache bounded to max entries and maxBytes of
// approximate body footprint (maxBytes <= 0 removes the byte bound);
// max <= 0 returns nil (disabled).
func newRawCache(max int, maxBytes int64) *rawCache {
	if max <= 0 {
		return nil
	}
	return &rawCache{max: max, maxBytes: maxBytes, lru: list.New(), entries: map[string]*list.Element{}}
}

func (c *rawCache) get(key string) ([]byte, bool) {
	if c == nil || key == "" {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*rawEntry).body, true
}

func (c *rawCache) add(key string, body []byte) {
	if c == nil || key == "" || len(body) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		return
	}
	e := &rawEntry{key: key, body: body}
	c.entries[key] = c.lru.PushFront(e)
	c.bytes += e.size()
	for c.lru.Len() > c.max {
		c.evictTail()
	}
	// A single body larger than the whole budget evicts everything,
	// itself included — exactly how the engine cache's byte bound
	// behaves.
	for c.maxBytes > 0 && c.bytes > c.maxBytes && c.lru.Len() > 0 {
		c.evictTail()
	}
}

// evictTail drops the least-recently-used entry. Callers hold c.mu.
func (c *rawCache) evictTail() {
	el := c.lru.Back()
	c.lru.Remove(el)
	e := el.Value.(*rawEntry)
	c.bytes -= e.size()
	delete(c.entries, e.key)
}

func (c *rawCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// size reports the approximate retained byte footprint.
func (c *rawCache) size() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
