package cluster

import (
	"container/list"
	"sync"
)

// rawCache memoizes routed batch rows the coordinator relays without
// decoding: canonical request key (service.Key of the variation's
// instance) → the worker's raw JSON response body. Routed rows never
// enter the engine's solution cache — the whole point of the binary
// relay is that the coordinator does not parse them — so without this,
// a repeated inline batch would re-ship every variation the cluster
// just solved. A nil *rawCache (cache disabled) is valid and misses
// everything.
type rawCache struct {
	mu      sync.Mutex
	max     int
	lru     *list.List
	entries map[string]*list.Element
}

type rawEntry struct {
	key  string
	body []byte
}

// newRawCache builds a cache bounded to max entries; max <= 0 returns
// nil (disabled).
func newRawCache(max int) *rawCache {
	if max <= 0 {
		return nil
	}
	return &rawCache{max: max, lru: list.New(), entries: map[string]*list.Element{}}
}

func (c *rawCache) get(key string) ([]byte, bool) {
	if c == nil || key == "" {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*rawEntry).body, true
}

func (c *rawCache) add(key string, body []byte) {
	if c == nil || key == "" || len(body) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&rawEntry{key: key, body: body})
	if c.lru.Len() > c.max {
		el := c.lru.Back()
		c.lru.Remove(el)
		delete(c.entries, el.Value.(*rawEntry).key)
	}
}

func (c *rawCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
