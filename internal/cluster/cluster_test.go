package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/jobs"
	"repro/internal/service"
)

// slowAppendStore delays each row append, widening the window in which
// a running job can be interrupted (mirrors the service test helper).
type slowAppendStore struct {
	jobs.Store
	delay time.Duration
}

func (s slowAppendStore) AppendRow(id string, row json.RawMessage) error {
	time.Sleep(s.delay)
	return s.Store.AppendRow(id, row)
}

func testCampaignConfig() experiments.Config {
	return experiments.Config{
		Lambdas:        []float64{0.1, 0.3, 0.5, 0.7, 0.9},
		TreesPerLambda: 2,
		MinSize:        15,
		MaxSize:        25,
		Seed:           7,
		BoundNodes:     10,
	}
}

func submitJob(t *testing.T, m *jobs.Manager, kind string, payload any) string {
	t.Helper()
	raw, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	meta, err := m.Submit(context.Background(), jobs.Spec{Kind: kind, Payload: raw})
	if err != nil {
		t.Fatal(err)
	}
	return meta.ID
}

func pollMeta(t *testing.T, m *jobs.Manager, id string, done func(jobs.Meta) bool) jobs.Meta {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		meta, ok := m.Get(id)
		if !ok {
			t.Fatal("job vanished")
		}
		if done(meta) {
			return meta
		}
		if meta.State == jobs.StateFailed {
			t.Fatalf("job failed: %s", meta.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job never reached the polled condition")
	return jobs.Meta{}
}

// sortedCampaignRows decodes sharded campaign rows, orders them by
// absolute index and checks the index set is exactly 0..n-1.
func sortedCampaignRows(t *testing.T, raw []json.RawMessage, n int) []experiments.Row {
	t.Helper()
	type indexed struct {
		idx int
		row experiments.Row
	}
	rows := make([]indexed, 0, len(raw))
	seen := map[int]bool{}
	for i, r := range raw {
		var line jobs.IndexedCampaignRow
		if err := json.Unmarshal(r, &line); err != nil {
			t.Fatalf("bad row %d: %v", i, err)
		}
		if seen[line.Index] {
			t.Fatalf("duplicate row index %d in checkpoint", line.Index)
		}
		seen[line.Index] = true
		rows = append(rows, indexed{line.Index, line.Row})
	}
	if len(rows) != n {
		t.Fatalf("got %d rows, want %d", len(rows), n)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].idx < rows[j].idx })
	out := make([]experiments.Row, n)
	for i, r := range rows {
		if r.idx != i {
			t.Fatalf("row indices not contiguous: position %d holds index %d", i, r.idx)
		}
		out[i] = r.row
	}
	return out
}

func assertByteIdenticalCSV(t *testing.T, direct *experiments.Results, cfg experiments.Config, rows []experiments.Row) {
	t.Helper()
	var want, got bytes.Buffer
	if err := direct.WriteCSV(&want); err != nil {
		t.Fatal(err)
	}
	sharded := &experiments.Results{Config: cfg, Rows: rows}
	if err := sharded.WriteCSV(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("sharded CSV differs from single-process run:\ngot:\n%s\nwant:\n%s", got.String(), want.String())
	}
	// Row-level equality too, not just the (sorted) CSV projection.
	wantJSON, _ := json.Marshal(direct.Rows)
	gotJSON, _ := json.Marshal(rows)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("sharded rows differ from single-process run:\ngot  %s\nwant %s", gotJSON, wantJSON)
	}
}

// TestShardedCampaignKillWorkerMidRun is the acceptance e2e: a campaign
// job sharded across two workers — one of which dies mid-run —
// completes on the survivor and produces results byte-identical to a
// single-process experiments.Run. To make the mid-run death
// deterministic (a tiny campaign can outrace an asynchronous kill),
// worker 1 serves exactly one campaign row and then holds every further
// campaign request hostage until the test kills it: at kill time those
// requests are guaranteed in flight and must fail over to worker 2.
func TestShardedCampaignKillWorkerMidRun(t *testing.T) {
	cfg := testCampaignConfig()
	direct, err := experiments.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	w2, _ := newWorker(t, 2)

	e1 := service.NewEngine(service.EngineOptions{Workers: 2})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		e1.Close(ctx)
	})
	inner := service.NewHandlerOpts(e1, service.HandlerOptions{MaxInlineCampaigns: -1})
	var served atomic.Int64
	died := make(chan struct{})
	firstDone := make(chan struct{})
	w1 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/campaign" {
			inner.ServeHTTP(w, r)
			return
		}
		if served.Add(1) > 1 {
			<-died // mid-run: the worker is "killed" with this row in flight
			http.Error(w, `{"error":"worker dying"}`, http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
		close(firstDone)
	}))

	// Probing is off: between the hostage release and the listener
	// close, w1 is briefly alive-but-failing, and a lucky ping would
	// close its circuit again (probe recovery has its own test).
	p := newTestPool(t, []string{w1.URL, w2.URL}, PoolOptions{
		ProbeInterval: -1,
		FailThreshold: 1,
		OpenFor:       time.Minute,
	})
	m, err := jobs.NewManager(jobs.Options{Workers: 1}, CampaignKind(p))
	if err != nil {
		t.Fatal(err)
	}
	defer closeManager(t, m)

	id := submitJob(t, m, jobs.CampaignKindName, cfg)
	pollMeta(t, m, id, func(meta jobs.Meta) bool { return meta.RowsDone >= 1 })
	// Wait for w1's one successful row to fully complete first — its
	// success must not be able to close the breaker after the kill.
	<-firstDone
	close(died)    // release the hostage rows as failures...
	killServer(w1) // ...and take the whole worker down

	final := pollMeta(t, m, id, func(meta jobs.Meta) bool { return meta.State.Terminal() })
	if final.State != jobs.StateSucceeded {
		t.Fatalf("job state = %s (%s), want succeeded despite the dead worker", final.State, final.Error)
	}
	raw, err := m.Rows(id)
	if err != nil {
		t.Fatal(err)
	}
	rows := sortedCampaignRows(t, raw, len(cfg.Lambdas))
	assertByteIdenticalCSV(t, direct, cfg, rows)

	// The dead worker must have failed at least one in-flight row (the
	// hostages guarantee it) and handed it over to the survivor. The
	// breaker's exact final position is not asserted here — the one
	// successful w1 row's client-side completion can land after the
	// hostage failures and legitimately re-close it for an instant;
	// the open/half-open state machine has its own deterministic test
	// (TestPoolCircuitTransitions).
	for _, st := range p.ShardStats() {
		switch st.Addr {
		case w1.URL:
			if st.Failures == 0 || st.Failovers == 0 {
				t.Fatalf("dead worker recorded no failed-over rows: %+v", st)
			}
		case w2.URL:
			if st.Failures != 0 {
				t.Fatalf("survivor recorded failures: %+v", st)
			}
		}
	}
}

func closeManager(t *testing.T, m *jobs.Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatalf("closing manager: %v", err)
	}
}

// TestShardedCampaignMembershipChurn is the dynamic-membership
// acceptance e2e: a campaign job starts on shard set {A} alone, worker
// B hot-joins mid-run, A deregisters (and dies) — and the job completes
// on B with a merged result byte-identical to a single-process run. As
// in the kill test, A serves exactly one row and then holds further
// campaign requests hostage until released, so "mid-run" is
// deterministic rather than a race against a tiny campaign.
func TestShardedCampaignMembershipChurn(t *testing.T) {
	cfg := testCampaignConfig()
	direct, err := experiments.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	wB, _ := newWorker(t, 2)

	eA := service.NewEngine(service.EngineOptions{Workers: 2})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		eA.Close(ctx)
	})
	inner := service.NewHandlerOpts(eA, service.HandlerOptions{MaxInlineCampaigns: -1})
	var served atomic.Int64
	released := make(chan struct{})
	firstDone := make(chan struct{})
	wA := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/campaign" {
			inner.ServeHTTP(w, r)
			return
		}
		if served.Add(1) > 1 {
			<-released // the membership change happens with these in flight
			http.Error(w, `{"error":"worker deregistered"}`, http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
		close(firstDone)
	}))

	// The job starts on {A} only; B exists but is not a member yet.
	p := newTestPool(t, []string{wA.URL}, PoolOptions{
		ProbeInterval: -1,
		FailThreshold: 1,
		OpenFor:       time.Minute,
	})
	m, err := jobs.NewManager(jobs.Options{Workers: 1}, CampaignKind(p))
	if err != nil {
		t.Fatal(err)
	}
	defer closeManager(t, m)

	startEpoch := p.Epoch()
	id := submitJob(t, m, jobs.CampaignKindName, cfg)
	pollMeta(t, m, id, func(meta jobs.Meta) bool { return meta.RowsDone >= 1 })
	<-firstDone

	// Hot-join B (weight discovered from its ping), then deregister A
	// while its hostage rows are still in flight — they must fail over
	// to the new member, not back onto the departed one.
	if _, joined, err := p.AddShard(wB.URL, 0); err != nil || !joined {
		t.Fatalf("join mid-run: %v %v", joined, err)
	}
	if !p.RemoveShard(wA.URL) {
		t.Fatal("deregistering A failed")
	}
	if p.Epoch() < startEpoch+2 {
		t.Fatalf("epoch %d after join+leave, want >= %d", p.Epoch(), startEpoch+2)
	}
	close(released)
	killServer(wA)

	final := pollMeta(t, m, id, func(meta jobs.Meta) bool { return meta.State.Terminal() })
	if final.State != jobs.StateSucceeded {
		t.Fatalf("job state = %s (%s), want succeeded across the membership change", final.State, final.Error)
	}
	raw, err := m.Rows(id)
	if err != nil {
		t.Fatal(err)
	}
	rows := sortedCampaignRows(t, raw, len(cfg.Lambdas))
	assertByteIdenticalCSV(t, direct, cfg, rows)

	// Membership is {B} alone, and it carried the remaining rows.
	stats := p.ShardStats()
	if len(stats) != 1 || stats[0].Addr != wB.URL {
		t.Fatalf("final membership = %+v, want just B", stats)
	}
	if stats[0].Requests == 0 || stats[0].Failures != 0 {
		t.Fatalf("B's stats = %+v, want traffic and no failures", stats[0])
	}
}

// TestShardedCampaignResumeAcrossRestart: the sharded campaign kind has
// the same checkpoint semantics as the single-process one — a manager
// closed mid-run leaves an interrupted, file-backed job that a new
// manager resumes, recomputing only the missing row indices, with a
// byte-identical merged result.
func TestShardedCampaignResumeAcrossRestart(t *testing.T) {
	cfg := testCampaignConfig()
	direct, err := experiments.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	w1, _ := newWorker(t, 2)
	w2, _ := newWorker(t, 2)
	p := newTestPool(t, []string{w1.URL, w2.URL}, PoolOptions{ProbeInterval: -1})

	fs, err := jobs.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Slow appends on the first manager keep the tiny campaign from
	// fully checkpointing before Close interrupts it.
	m1, err := jobs.NewManager(jobs.Options{Store: slowAppendStore{fs, 250 * time.Millisecond}, Workers: 1}, CampaignKind(p))
	if err != nil {
		t.Fatal(err)
	}
	id := submitJob(t, m1, jobs.CampaignKindName, cfg)
	pollMeta(t, m1, id, func(meta jobs.Meta) bool { return meta.RowsDone >= 1 })
	closeManager(t, m1) // checkpoint: the job becomes interrupted

	stored, ok, err := fs.Get(id)
	if err != nil || !ok {
		t.Fatalf("job not on disk after shutdown: ok=%v err=%v", ok, err)
	}
	if stored.State != jobs.StateInterrupted {
		t.Fatalf("state after shutdown = %s, want interrupted", stored.State)
	}
	if stored.RowsDone < 1 || stored.RowsDone >= len(cfg.Lambdas) {
		t.Fatalf("checkpointed %d rows, want a strict non-empty subset", stored.RowsDone)
	}

	m2, err := jobs.NewManager(jobs.Options{Store: fs, Workers: 1}, CampaignKind(p))
	if err != nil {
		t.Fatal(err)
	}
	defer closeManager(t, m2)
	final := pollMeta(t, m2, id, func(meta jobs.Meta) bool { return meta.State.Terminal() })
	if final.State != jobs.StateSucceeded || final.Resumes != 1 {
		t.Fatalf("final = %+v, want succeeded with one resume", final)
	}
	raw, err := m2.Rows(id)
	if err != nil {
		t.Fatal(err)
	}
	rows := sortedCampaignRows(t, raw, len(cfg.Lambdas))
	assertByteIdenticalCSV(t, direct, cfg, rows)
}

// TestShardedBatchJob: a batch job partitioned across two shards
// produces one row per variation with the same costs as in-process
// solves, surviving a worker killed mid-run.
func TestShardedBatchJob(t *testing.T) {
	w1, _ := newWorker(t, 2)
	w2, we := newWorker(t, 2)
	p := newTestPool(t, []string{w1.URL, w2.URL}, PoolOptions{
		ProbeInterval: -1,
		FailThreshold: 1,
	})

	// The coordinator engine only validates payloads for the batch kind.
	// Its registry carries the @remote twins, like a real coordinator's.
	reg := service.NewRegistry()
	if err := RegisterRemote(reg, p); err != nil {
		t.Fatal(err)
	}
	ce := service.NewEngine(service.EngineOptions{Workers: 1, Registry: reg})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		ce.Close(ctx)
	})

	in := gen.Instance(gen.Config{Internal: 6, Clients: 12, Lambda: 0.4, UnitCosts: true}, 3)
	const variations = 9
	vars := make([]map[string]any, variations)
	for i := range vars {
		r := append([]int64(nil), in.R...)
		for j := range r {
			if r[j] > 0 {
				r[j] += int64(i % 3)
			}
		}
		vars[i] = map[string]any{"requests": r}
	}
	// An @remote-suffixed solver validates against the coordinator
	// registry and must be forwarded to the workers stripped — they
	// only register local names.
	payload := map[string]any{
		"topology":   map[string]any{"parents": in.Tree.Parents(), "is_client": in.Tree.ClientFlags()},
		"solver":     "MB@remote",
		"base":       map[string]any{"requests": in.R, "capacities": in.W, "storage_costs": in.S},
		"variations": vars,
	}

	m, err := jobs.NewManager(jobs.Options{Workers: 1}, BatchKind(ce, p))
	if err != nil {
		t.Fatal(err)
	}
	defer closeManager(t, m)
	id := submitJob(t, m, service.BatchKindName, payload)
	killServer(w1) // one shard dies before (or while) chunks land

	final := pollMeta(t, m, id, func(meta jobs.Meta) bool { return meta.State.Terminal() })
	if final.State != jobs.StateSucceeded {
		t.Fatalf("batch job state = %s (%s)", final.State, final.Error)
	}
	raw, err := m.Rows(id)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]int64{}
	for _, r := range raw {
		var line service.BatchLine
		if err := json.Unmarshal(r, &line); err != nil {
			t.Fatal(err)
		}
		if line.Error != "" {
			t.Fatalf("variation %d failed: %s", line.Index, line.Error)
		}
		if _, dup := got[line.Index]; dup {
			t.Fatalf("duplicate row for variation %d", line.Index)
		}
		got[line.Index] = line.Cost
	}
	if len(got) != variations {
		t.Fatalf("rows cover %d of %d variations", len(got), variations)
	}

	// Costs must match in-process solves of the same variations.
	for i := 0; i < variations; i++ {
		vi := *in
		r := append([]int64(nil), in.R...)
		for j := range r {
			if r[j] > 0 {
				r[j] += int64(i % 3)
			}
		}
		vi.R = r
		local, err := we.Solve(context.Background(), service.Request{Instance: &vi, Solver: "mb"})
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != local.Cost {
			t.Fatalf("variation %d: sharded cost %d != local %d", i, got[i], local.Cost)
		}
	}
}

// TestShardedKindsRejectResumeFields mirrors the single-process
// campaign kind's submit-time validation.
func TestShardedKindsRejectResumeFields(t *testing.T) {
	w, _ := newWorker(t, 1)
	p := newTestPool(t, []string{w.URL}, PoolOptions{ProbeInterval: -1})
	m, err := jobs.NewManager(jobs.Options{Workers: 1}, CampaignKind(p))
	if err != nil {
		t.Fatal(err)
	}
	defer closeManager(t, m)
	for _, bad := range []map[string]any{{"StartRow": 2}, {"EndRow": 1}} {
		raw, _ := json.Marshal(bad)
		if _, err := m.Submit(context.Background(), jobs.Spec{Kind: jobs.CampaignKindName, Payload: raw}); err == nil {
			t.Fatalf("submit with %v accepted", bad)
		}
	}
}

// BenchmarkPoolSolveBatch measures CPU-bound batch throughput through
// the coordinator's @remote path over 1 vs 2 worker shards, each shard
// pinned to a single solver goroutine so added shards equal added
// capacity (the acceptance criterion: 2 workers > 1 worker).
func BenchmarkPoolSolveBatch(b *testing.B) {
	const variations = 32
	in := gen.Instance(gen.Config{Internal: 40, Clients: 120, Lambda: 0.6, UnitCosts: true}, 5)
	for _, shards := range []int{1, 2} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var addrs []string
			for i := 0; i < shards; i++ {
				srv, _ := newWorker(b, 1) // single-core shard
				addrs = append(addrs, srv.URL)
			}
			p, err := NewPool(addrs, PoolOptions{ProbeInterval: -1, MaxInFlight: 2})
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close()
			reg := service.NewRegistry()
			if err := RegisterRemote(reg, p); err != nil {
				b.Fatal(err)
			}
			e := service.NewEngine(service.EngineOptions{Workers: 8, Registry: reg, CacheSize: -1})
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				e.Close(ctx)
			}()

			vars := make([]service.BatchVariation, variations)
			for i := range vars {
				r := append([]int64(nil), in.R...)
				for j := range r {
					if r[j] > 0 {
						r[j] += int64(i)
					}
				}
				vars[i] = service.BatchVariation{R: r}
			}
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				err := e.SolveBatch(context.Background(), service.BatchRequest{
					Base:       in,
					Solver:     "optimal@remote",
					Options:    service.Options{NoCache: true},
					Variations: vars,
				}, func(item service.BatchItem) {
					if item.Err != nil {
						b.Fatal(item.Err)
					}
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
