package cluster

import (
	"bytes"
	"fmt"
	"testing"
)

func TestRouteKeyQualifiesIncludeSolution(t *testing.T) {
	const key = "abc123"
	plain := routeKey(key, false)
	withSol := routeKey(key, true)
	if plain != key {
		t.Fatalf("routeKey(%q, false) = %q, want the canonical key unchanged", key, plain)
	}
	if withSol == plain {
		t.Fatal("include_solution and plain rows share a raw-cache key: a repeat differing only in include_solution would be served the wrong body")
	}
	if routeKey("", true) != "" || routeKey("", false) != "" {
		t.Fatal("an empty canonical key must stay empty (nothing coherent to memoize under)")
	}
}

func TestRawCacheEvictsByBytes(t *testing.T) {
	body := bytes.Repeat([]byte("x"), 1024)
	perEntry := int64(len(body)) + rawEntryOverhead
	// Room for exactly 3 bodies; the entry bound (100) never binds.
	c := newRawCache(100, 3*perEntry)

	for i := 0; i < 5; i++ {
		c.add(fmt.Sprintf("k%d", i), body)
	}
	if n := c.len(); n != 3 {
		t.Fatalf("cache holds %d entries, want 3 (byte bound %d)", n, 3*perEntry)
	}
	if b := c.size(); b > 3*perEntry {
		t.Fatalf("cache retains %d bytes, bound is %d", b, 3*perEntry)
	}
	// LRU order: k0 and k1 were evicted, the newest three remain.
	if _, hit := c.get("k0"); hit {
		t.Fatal("oldest entry survived byte eviction")
	}
	for i := 2; i < 5; i++ {
		if _, hit := c.get(fmt.Sprintf("k%d", i)); !hit {
			t.Fatalf("recent entry k%d was evicted while over-old entries should have gone first", i)
		}
	}

	// A single body larger than the whole budget must not wedge the
	// cache: everything (itself included) is evicted and the accounting
	// returns to zero.
	c.add("huge", bytes.Repeat([]byte("y"), int(4*perEntry)))
	if n, b := c.len(), c.size(); n != 0 || b != 0 {
		t.Fatalf("after oversized add: %d entries / %d bytes retained, want 0/0", n, b)
	}
	c.add("after", body)
	if _, hit := c.get("after"); !hit {
		t.Fatal("cache stopped accepting entries after an oversized body")
	}
}

func TestRawCacheEvictsByEntries(t *testing.T) {
	c := newRawCache(2, 0) // no byte bound
	c.add("a", []byte("1"))
	c.add("b", []byte("2"))
	c.add("c", []byte("3"))
	if n := c.len(); n != 2 {
		t.Fatalf("cache holds %d entries, want 2", n)
	}
	if _, hit := c.get("a"); hit {
		t.Fatal("LRU entry survived the entry bound")
	}
}
