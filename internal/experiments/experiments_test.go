package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// smallConfig keeps unit-test campaigns fast.
func smallConfig(het bool) Config {
	return Config{
		Heterogeneous:  het,
		Lambdas:        []float64{0.2, 0.5, 0.8},
		TreesPerLambda: 6,
		MinSize:        15,
		MaxSize:        40,
		Seed:           7,
		BoundNodes:     20,
	}
}

func TestRunHomogeneous(t *testing.T) {
	res, err := Run(smallConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// MG and MB succeed on every LP-solvable tree (completeness).
		if row.Success["MG"] < row.LPSolvable || row.Success["MB"] < row.LPSolvable {
			t.Errorf("lambda %.1f: MG/MB success %d/%d below LP %d",
				row.Lambda, row.Success["MG"], row.Success["MB"], row.LPSolvable)
		}
		// No heuristic can beat LP solvability.
		for name, s := range row.Success {
			if s > row.LPSolvable {
				t.Errorf("lambda %.1f: %s solved %d > LP %d", row.Lambda, name, s, row.LPSolvable)
			}
		}
		// Relative costs are ratios in [0, 1+eps].
		for name, rc := range row.RelCost {
			if rc < 0 || rc > 1.0001 {
				t.Errorf("lambda %.1f: rcost[%s] = %v out of range", row.Lambda, name, rc)
			}
		}
		// MB dominates every individual heuristic on relative cost.
		for _, name := range Names {
			if name == "MB" {
				continue
			}
			if row.RelCost[name] > row.RelCost["MB"]+1e-9 {
				t.Errorf("lambda %.1f: rcost[%s]=%v beats MB=%v",
					row.Lambda, name, row.RelCost[name], row.RelCost["MB"])
			}
		}
	}
	// Closest heuristics must lose success as λ grows (the paper's main
	// qualitative finding): at 0.8 they solve no more than at 0.2.
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	for _, name := range []string{"CTDA", "CTDLF", "CBU"} {
		if last.Success[name] > first.Success[name] {
			t.Errorf("%s success grew with load: %d -> %d", name, first.Success[name], last.Success[name])
		}
	}
}

func TestRunHeterogeneous(t *testing.T) {
	res, err := Run(smallConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Success["MG"] != row.LPSolvable {
			t.Errorf("lambda %.1f: MG success %d != LP %d", row.Lambda, row.Success["MG"], row.LPSolvable)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := smallConfig(false)
	cfg.Lambdas = []float64{0.5}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.SuccessTable() != b.SuccessTable() || a.RelCostTable() != b.RelCostTable() {
		t.Error("campaign is not deterministic")
	}
}

func TestTables(t *testing.T) {
	res, err := Run(smallConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	st := res.SuccessTable()
	if !strings.Contains(st, "lambda") || !strings.Contains(st, "LP") {
		t.Errorf("success table malformed:\n%s", st)
	}
	if got := strings.Count(st, "\n"); got != 4 { // header + 3 lambdas
		t.Errorf("success table rows = %d", got)
	}
	rt := res.RelCostTable()
	if !strings.Contains(rt, "MB") {
		t.Errorf("relcost table malformed:\n%s", rt)
	}
}

func TestWriteCSV(t *testing.T) {
	res, err := Run(smallConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "case,metric,lambda,series,value\n") {
		t.Errorf("missing header: %q", out[:40])
	}
	if !strings.Contains(out, "heterogeneous,success,0.5,LP,") {
		t.Errorf("missing LP rows")
	}
	// 3 lambdas x (9 series x 2 metrics + LP) = 57 data rows.
	if got := strings.Count(out, "\n"); got != 58 {
		t.Errorf("CSV rows = %d, want 58", got)
	}
}

// TestParallelismInvariance: the campaign outcome is identical regardless
// of worker count.
func TestParallelismInvariance(t *testing.T) {
	base := smallConfig(false)
	base.Lambdas = []float64{0.4}
	serial := base
	serial.Parallelism = 1
	wide := base
	wide.Parallelism = 8
	a, err := Run(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(wide)
	if err != nil {
		t.Fatal(err)
	}
	if a.SuccessTable() != b.SuccessTable() || a.RelCostTable() != b.RelCostTable() {
		t.Errorf("parallel run differs from serial:\n%s\nvs\n%s", a.SuccessTable(), b.SuccessTable())
	}
}

// TestStartRowMatchesFullRun pins the checkpoint/resume contract the
// async jobs subsystem relies on: a run resumed at row k produces
// exactly the rows a full run produces from k on, because generation
// seeds are tied to the absolute λ index.
func TestStartRowMatchesFullRun(t *testing.T) {
	full, err := Run(smallConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	resumed := smallConfig(false)
	resumed.StartRow = 1
	tail, err := Run(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail.Rows) != len(full.Rows)-1 {
		t.Fatalf("resumed rows = %d, want %d", len(tail.Rows), len(full.Rows)-1)
	}
	if !reflect.DeepEqual(tail.Rows, full.Rows[1:]) {
		t.Fatalf("resumed rows differ from the full run's tail:\ngot  %+v\nwant %+v", tail.Rows, full.Rows[1:])
	}
}

// TestStartRowPastEnd is the already-complete resume: no rows, no error.
func TestStartRowPastEnd(t *testing.T) {
	cfg := smallConfig(false)
	cfg.StartRow = len(cfg.Lambdas)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %d, want 0", len(res.Rows))
	}
}

// TestStartEndRowSlices: any [StartRow, EndRow) slice of a campaign
// reproduces exactly those rows of a full run — the contract the
// cluster subsystem uses to compute single rows on remote shards.
func TestStartEndRowSlices(t *testing.T) {
	cfg := Config{
		Lambdas:        []float64{0.2, 0.4, 0.6, 0.8},
		TreesPerLambda: 2,
		MinSize:        15,
		MaxSize:        22,
		Seed:           5,
		BoundNodes:     8,
	}
	full, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Rows) != len(cfg.Lambdas) {
		t.Fatalf("full run rows = %d", len(full.Rows))
	}

	// One row at a time, stitched back together.
	for i := range cfg.Lambdas {
		c := cfg
		c.StartRow, c.EndRow = i, i+1
		part, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if len(part.Rows) != 1 {
			t.Fatalf("slice [%d,%d) rows = %d", i, i+1, len(part.Rows))
		}
		if !reflect.DeepEqual(part.Rows[0], full.Rows[i]) {
			t.Fatalf("row %d differs:\ngot  %+v\nwant %+v", i, part.Rows[0], full.Rows[i])
		}
	}

	// A middle slice, and an EndRow past the sweep (clamped).
	c := cfg
	c.StartRow, c.EndRow = 1, 3
	mid, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(mid.Rows) != 2 || !reflect.DeepEqual(mid.Rows, full.Rows[1:3]) {
		t.Fatalf("slice [1,3) = %+v", mid.Rows)
	}
	c.StartRow, c.EndRow = 2, 99
	tail, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tail.Rows, full.Rows[2:]) {
		t.Fatalf("slice [2,∞) = %+v", tail.Rows)
	}
}
