package experiments

import (
	"strings"
	"testing"
)

func TestRunQoS(t *testing.T) {
	res, err := RunQoS(QoSConfig{
		Ranges:        []int{0, 4, 1},
		Lambda:        0.3,
		TreesPerRange: 8,
		MinSize:       15,
		MaxSize:       40,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// No heuristic may solve more trees than the exact feasibility.
		for name, s := range row.Success {
			if s > row.Solvable {
				t.Errorf("qos=%d: %s solved %d > LP %d", row.Range, name, s, row.Solvable)
			}
		}
	}
	// Tightening QoS can only reduce solvability: the unconstrained row
	// dominates the q<=1 row.
	if res.Rows[2].Solvable > res.Rows[0].Solvable {
		t.Errorf("solvability grew under tighter QoS: %d -> %d",
			res.Rows[0].Solvable, res.Rows[2].Solvable)
	}
	// The Multiple-policy variant dominates the Closest one.
	for _, row := range res.Rows {
		if row.Success["CTDA-QoS"] > row.Success["MG-QoS"] {
			t.Errorf("qos=%d: Closest variant beats Multiple variant", row.Range)
		}
	}
	table := res.Table()
	if !strings.Contains(table, "inf") || !strings.Contains(table, "MG-QoS") {
		t.Errorf("table malformed:\n%s", table)
	}
}

func TestRunQoSDeterminism(t *testing.T) {
	cfg := QoSConfig{Ranges: []int{3}, TreesPerRange: 5, MinSize: 15, MaxSize: 30, Seed: 9}
	a, err := RunQoS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunQoS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Table() != b.Table() {
		t.Error("QoS campaign not deterministic")
	}
}

func TestRunBW(t *testing.T) {
	res, err := RunBW(BWConfig{
		Factors:        []float64{0, 0.8, 0.2},
		Lambda:         0.3,
		TreesPerFactor: 8,
		MinSize:        15,
		MaxSize:        40,
		Seed:           5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		for name, s := range row.Success {
			if s > row.Solvable {
				t.Errorf("bw=%.1f: %s solved %d > exact %d", row.Factor, name, s, row.Solvable)
			}
		}
		if row.Success["CTDA-BW"] > row.Success["MG-BW"] {
			t.Errorf("bw=%.1f: Closest variant beats Multiple variant", row.Factor)
		}
	}
	// Tighter links can only hurt: the 0.2 row cannot beat the uncapped one.
	if res.Rows[2].Solvable > res.Rows[0].Solvable {
		t.Errorf("solvability grew under tighter bandwidth: %d -> %d",
			res.Rows[0].Solvable, res.Rows[2].Solvable)
	}
	if !strings.Contains(res.Table(), "inf") {
		t.Errorf("table malformed:\n%s", res.Table())
	}
}
