package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/heuristics"
	"repro/internal/lpbound"
)

// This file implements the campaign the paper lists as future work
// (Section 10): re-running the policy comparison in the presence of QoS
// constraints. For each QoS tightness we measure how often the QoS-aware
// heuristics (one per policy) still find solutions, against the exact
// Multiple+QoS feasibility given by the LP relaxation (integral for the
// Multiple transportation polytope).

// QoSNames lists the series of the QoS campaign.
var QoSNames = []string{"CTDA-QoS", "UBCF-QoS", "MG-QoS"}

// QoSConfig parameterizes the QoS sweep.
type QoSConfig struct {
	// Ranges are the QoS draws: clients get q ~ U[1, range]; 0 means
	// unconstrained. Default {0, 6, 4, 3, 2, 1}.
	Ranges []int
	// Lambda is the load factor (default 0.3).
	Lambda float64
	// TreesPerRange (default 30), MinSize/MaxSize (defaults 15/90) and
	// Seed (default 1) mirror Config.
	TreesPerRange    int
	MinSize, MaxSize int
	Seed             int64
}

func (c QoSConfig) withDefaults() QoSConfig {
	if len(c.Ranges) == 0 {
		c.Ranges = []int{0, 6, 4, 3, 2, 1}
	}
	if c.Lambda <= 0 {
		c.Lambda = 0.3
	}
	if c.TreesPerRange <= 0 {
		c.TreesPerRange = 30
	}
	if c.MinSize <= 0 {
		c.MinSize = 15
	}
	if c.MaxSize < c.MinSize {
		c.MaxSize = 90
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// QoSRow aggregates one QoS tightness level.
type QoSRow struct {
	Range    int // 0 = unconstrained
	Trees    int
	Solvable int // Multiple+QoS feasible per the LP
	Success  map[string]int
}

// QoSResults is the outcome of RunQoS.
type QoSResults struct {
	Config QoSConfig
	Rows   []QoSRow
}

// RunQoS executes the QoS campaign.
func RunQoS(cfg QoSConfig) (*QoSResults, error) {
	cfg = cfg.withDefaults()
	res := &QoSResults{Config: cfg}
	for ri, qr := range cfg.Ranges {
		row := QoSRow{Range: qr, Trees: cfg.TreesPerRange, Success: map[string]int{}}
		genCfg := gen.Config{Lambda: cfg.Lambda, UnitCosts: true, QoSRange: qr}
		seed := cfg.Seed + int64(ri)*999_983
		insts := gen.SizeSweep(genCfg, seed, cfg.TreesPerRange, cfg.MinSize, cfg.MaxSize)
		for _, in := range insts {
			feasible, err := lpbound.Feasible(in, core.Multiple)
			if err != nil {
				return nil, fmt.Errorf("experiments: qos feasibility: %w", err)
			}
			if feasible {
				row.Solvable++
			}
			for _, h := range heuristics.AllQoS {
				sol, err := h.Run(in)
				if err != nil {
					continue
				}
				if verr := sol.Validate(in, h.Policy); verr != nil {
					return nil, fmt.Errorf("experiments: %s produced invalid solution: %w", h.Name, verr)
				}
				row.Success[h.Name]++
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the success series per QoS tightness.
func (r *QoSResults) Table() string {
	var sb strings.Builder
	writeRowf(&sb, append([]string{"qos"}, append(append([]string{}, QoSNames...), "LP")...))
	for _, row := range r.Rows {
		label := "inf"
		if row.Range > 0 {
			label = fmt.Sprintf("%d", row.Range)
		}
		cells := []string{label}
		for _, name := range QoSNames {
			cells = append(cells, fmt.Sprintf("%.2f", float64(row.Success[name])/float64(row.Trees)))
		}
		cells = append(cells, fmt.Sprintf("%.2f", float64(row.Solvable)/float64(row.Trees)))
		writeRowf(&sb, cells)
	}
	return sb.String()
}
