// Package experiments implements the Section 7 simulation campaign: for a
// sweep of load factors λ, generate random trees, run every heuristic,
// compute the LP-based lower bound, and aggregate the two metrics of the
// paper — percentage of success (Figures 9 and 11) and relative cost
// rcost = (1/|Tλ|) Σ costLP/costh (Figures 10 and 12, with costh = +∞ for
// failed runs).
package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/heuristics"
	"repro/internal/lpbound"
)

// Names lists the series of every figure, in the paper's legend order:
// the eight heuristics, MixedBest, and the LP row (success only).
var Names = []string{"CTDA", "CTDLF", "CBU", "UTD", "UBCF", "MG", "MTD", "MBU", "MB"}

// numSeries is len(Names), as a constant so per-tree outcomes can be
// dense arrays instead of maps.
const (
	numSeries = 9
	mgOrdinal = 5 // index of "MG" in Names
	mbOrdinal = 8 // index of "MB" in Names
)

// ordinal indexes heuristic short names into the dense per-tree cost
// arrays (the campaign's hot path avoids per-tree maps entirely).
var ordinal = func() map[string]int {
	if len(Names) != numSeries || Names[mgOrdinal] != "MG" || Names[mbOrdinal] != "MB" {
		panic("experiments: Names out of sync with ordinals")
	}
	m := make(map[string]int, len(Names))
	for i, n := range Names {
		m[n] = i
	}
	return m
}()

// Config parameterizes a campaign. The zero value reproduces a scaled-down
// version of the paper's plan (its trees went up to s = 400 with GLPK; the
// pure-Go bound solver favours smaller defaults — see DESIGN.md).
type Config struct {
	// Heterogeneous selects the Figure 11/12 variant.
	Heterogeneous bool
	// Lambdas are the target loads. Default 0.1..0.9 step 0.1.
	Lambdas []float64
	// TreesPerLambda is the number of random trees per λ. Default 30.
	TreesPerLambda int
	// MinSize/MaxSize bound the problem size s = |C| + |N|.
	// Defaults 15 and 120.
	MinSize, MaxSize int
	// Seed drives all generation. Default 1.
	Seed int64
	// BoundNodes is the branch-and-bound budget per tree for the refined
	// LP bound. Default 60.
	BoundNodes int
	// Parallelism is the number of worker goroutines evaluating trees.
	// Values below 1 select GOMAXPROCS. Results are independent of the
	// worker count: every tree is generated from its own seed and
	// aggregated in index order.
	Parallelism int
	// StartRow resumes a campaign from a checkpoint: the first StartRow
	// λ values are skipped entirely and Results.Rows holds only the rows
	// from that index on. Generation seeds stay tied to the absolute λ
	// index, so a resumed campaign produces exactly the rows a full run
	// would have produced from that point.
	StartRow int
	// EndRow, when positive, stops the campaign before that row index
	// (exclusive). Combined with StartRow it selects an arbitrary slice
	// of the sweep: {StartRow: i, EndRow: i + 1} computes exactly row i,
	// bit-identical to row i of a full run — the unit a cluster shard
	// executes. Zero (or a value past the sweep) means run to the end.
	EndRow int
	// Progress, when non-nil, is called with each aggregated row as soon
	// as its λ completes, in λ order. It lets callers stream campaign
	// progress; it has no effect on the produced rows. A non-nil return
	// aborts the campaign before the next λ, and Run returns that error.
	Progress func(Row) error `json:"-"`
	// Context, when non-nil, cancels the campaign mid-λ: the bound
	// computations observe it between branch-and-bound nodes, and Run
	// returns the context error. Nil means context.Background().
	Context context.Context `json:"-"`
}

func (c Config) withDefaults() Config {
	if len(c.Lambdas) == 0 {
		c.Lambdas = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	}
	if c.TreesPerLambda <= 0 {
		c.TreesPerLambda = 30
	}
	if c.MinSize <= 0 {
		c.MinSize = 15
	}
	if c.MaxSize < c.MinSize {
		c.MaxSize = 120
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.BoundNodes <= 0 {
		c.BoundNodes = 60
	}
	if c.StartRow < 0 {
		c.StartRow = 0
	}
	if c.EndRow < 0 {
		c.EndRow = 0
	}
	return c
}

// Normalized returns the config with every default applied, so callers
// persisting a config (e.g. an async job manifest) can pin the exact
// sweep — λ values, sizes, seed — a later resume will re-derive.
func (c Config) Normalized() Config { return c.withDefaults() }

// Row aggregates one λ value. The JSON tags are the wire form used by
// the service layer (inline campaign streams and persisted job rows
// share it, so checkpointed rows round-trip losslessly).
type Row struct {
	Lambda float64 `json:"lambda"`
	Trees  int     `json:"trees"`
	// LPSolvable counts trees feasible under the Multiple policy (the
	// paper's "number of solutions obtained by the linear program").
	LPSolvable int `json:"lp_solvable"`
	// Success counts trees solved per heuristic.
	Success map[string]int `json:"success"`
	// RelCost is the paper's rcost per heuristic: the average over
	// LP-solvable trees of bound/cost, counting failures as zero.
	RelCost map[string]float64 `json:"rel_cost"`
	// BoundExact counts trees whose refined bound closed within budget.
	BoundExact int `json:"bound_exact"`
}

// Results is a full campaign outcome.
type Results struct {
	Config Config
	Rows   []Row
}

// treeOutcome is the per-tree measurement produced by a worker. Costs are
// a dense array indexed by heuristic ordinal (the order of Names), not a
// map: one campaign evaluates thousands of trees and the scratch-pooled
// heuristics no longer allocate, so the aggregation should not either.
type treeOutcome struct {
	costs      [numSeries]int64
	solved     [numSeries]bool
	solvable   bool
	bound      float64
	boundExact bool
	err        error
}

// evaluateTree runs every heuristic and the refined bound on one tree.
func evaluateTree(ctx context.Context, in *core.Instance, boundNodes int) treeOutcome {
	var out treeOutcome
	run := func(name string, f heuristics.Func) {
		if sol, err := f(in); err == nil {
			i := ordinal[name]
			out.costs[i] = sol.StorageCost(in)
			out.solved[i] = true
		}
	}
	for _, h := range heuristics.All {
		run(h.Name, h.Run)
	}
	run("MB", heuristics.MB)

	// Feasibility of the Multiple policy decides LP solvability (MG is
	// exact on feasibility and far cheaper than the LP).
	if !out.solved[mgOrdinal] {
		return out
	}
	out.solvable = true

	// Refined bound, seeded with the best heuristic cost.
	opts := lpbound.Options{MaxNodes: boundNodes}
	if out.solved[mbOrdinal] {
		opts.Incumbent = float64(out.costs[mbOrdinal])
	}
	b, err := lpbound.Refined(ctx, in, core.Multiple, opts)
	if err != nil {
		if errors.Is(err, lpbound.ErrInfeasible) {
			// MG solved it, so the relaxation cannot be infeasible.
			out.err = fmt.Errorf("experiments: bound infeasible on an MG-solvable tree")
		} else {
			out.err = err
		}
		return out
	}
	out.bound = b.Value
	out.boundExact = b.Exact
	return out
}

// Run executes the campaign. It is deterministic in Config.Seed,
// regardless of Config.Parallelism: trees are generated from per-index
// seeds up front and evaluated independently by a worker pool.
func Run(cfg Config) (*Results, error) {
	cfg = cfg.withDefaults()
	ctx := cfg.Context
	if ctx == nil {
		ctx = context.Background()
	}
	workers := cfg.Parallelism
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	end := len(cfg.Lambdas)
	if cfg.EndRow > 0 && cfg.EndRow < end {
		end = cfg.EndRow
	}
	res := &Results{Config: cfg}
	for li := cfg.StartRow; li < end; li++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		lambda := cfg.Lambdas[li]
		row := Row{
			Lambda:  lambda,
			Trees:   cfg.TreesPerLambda,
			Success: map[string]int{},
			RelCost: map[string]float64{},
		}
		genCfg := gen.Config{
			Lambda:        lambda,
			Heterogeneous: cfg.Heterogeneous,
			UnitCosts:     !cfg.Heterogeneous,
		}
		seed := cfg.Seed + int64(li)*1_000_003
		insts := gen.SizeSweep(genCfg, seed, cfg.TreesPerLambda, cfg.MinSize, cfg.MaxSize)

		outcomes := make([]treeOutcome, len(insts))
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					outcomes[i] = evaluateTree(ctx, insts[i], cfg.BoundNodes)
				}
			}()
		}
		for i := range insts {
			next <- i
		}
		close(next)
		wg.Wait()

		for _, out := range outcomes {
			if out.err != nil {
				return nil, out.err
			}
			for i, name := range Names {
				if out.solved[i] {
					row.Success[name]++
				}
			}
			if !out.solvable {
				continue
			}
			row.LPSolvable++
			if out.boundExact {
				row.BoundExact++
			}
			for i, name := range Names {
				if out.solved[i] && out.costs[i] > 0 {
					row.RelCost[name] += out.bound / float64(out.costs[i])
				}
			}
		}
		if row.LPSolvable > 0 {
			for _, name := range Names {
				row.RelCost[name] /= float64(row.LPSolvable)
			}
		}
		res.Rows = append(res.Rows, row)
		if cfg.Progress != nil {
			if err := cfg.Progress(row); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}

// SuccessTable renders the Figure 9/11 series: per λ, the fraction of
// trees each heuristic solved, plus the LP row.
func (r *Results) SuccessTable() string {
	var sb strings.Builder
	header := append([]string{"lambda"}, Names...)
	header = append(header, "LP")
	writeRowf(&sb, header)
	for _, row := range r.Rows {
		cells := []string{fmt.Sprintf("%.1f", row.Lambda)}
		for _, name := range Names {
			cells = append(cells, fmt.Sprintf("%.2f", float64(row.Success[name])/float64(row.Trees)))
		}
		cells = append(cells, fmt.Sprintf("%.2f", float64(row.LPSolvable)/float64(row.Trees)))
		writeRowf(&sb, cells)
	}
	return sb.String()
}

// RelCostTable renders the Figure 10/12 series: per λ, the average
// bound/cost ratio per heuristic over LP-solvable trees.
func (r *Results) RelCostTable() string {
	var sb strings.Builder
	writeRowf(&sb, append([]string{"lambda"}, Names...))
	for _, row := range r.Rows {
		cells := []string{fmt.Sprintf("%.1f", row.Lambda)}
		for _, name := range Names {
			cells = append(cells, fmt.Sprintf("%.2f", row.RelCost[name]))
		}
		writeRowf(&sb, cells)
	}
	return sb.String()
}

func writeRowf(sb *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(sb, "%-6s", c)
	}
	sb.WriteByte('\n')
}

// WriteCSV emits both metrics in long form:
// case,metric,lambda,series,value.
func (r *Results) WriteCSV(w io.Writer) error {
	cs := "homogeneous"
	if r.Config.Heterogeneous {
		cs = "heterogeneous"
	}
	var rows []string
	for _, row := range r.Rows {
		for _, name := range Names {
			rows = append(rows,
				fmt.Sprintf("%s,success,%.1f,%s,%.4f", cs, row.Lambda, name,
					float64(row.Success[name])/float64(row.Trees)),
				fmt.Sprintf("%s,rcost,%.1f,%s,%.4f", cs, row.Lambda, name, row.RelCost[name]))
		}
		rows = append(rows, fmt.Sprintf("%s,success,%.1f,LP,%.4f", cs, row.Lambda,
			float64(row.LPSolvable)/float64(row.Trees)))
	}
	sort.Strings(rows)
	if _, err := io.WriteString(w, "case,metric,lambda,series,value\n"+strings.Join(rows, "\n")+"\n"); err != nil {
		return err
	}
	return nil
}
