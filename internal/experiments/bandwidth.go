package experiments

import (
	"fmt"
	"strings"

	"repro/internal/gen"
	"repro/internal/heuristics"
)

// This file implements the second future-work campaign of Section 10:
// the policy comparison under link-bandwidth constraints. The paper
// conjectures that bandwidth caps "may require a better global
// load-balancing along the tree, thereby favoring Multiple over Upwards";
// the sweep measures exactly that, using one bandwidth-aware heuristic
// per policy and MG-BW's exact Multiple+bandwidth feasibility as the
// reference column.

// BWNames lists the series of the bandwidth campaign.
var BWNames = []string{"CTDA-BW", "UBCF-BW", "MG-BW"}

// BWConfig parameterizes the bandwidth sweep.
type BWConfig struct {
	// Factors are the bandwidth factors: every link is capped at
	// factor × the traffic it would carry if everything were served at
	// the root. 0 means uncapped. Default {0, 1.0, 0.8, 0.6, 0.4, 0.2}.
	Factors []float64
	// Lambda is the load factor (default 0.3).
	Lambda float64
	// TreesPerFactor (default 30), MinSize/MaxSize (defaults 15/90) and
	// Seed (default 1) mirror Config.
	TreesPerFactor   int
	MinSize, MaxSize int
	Seed             int64
}

func (c BWConfig) withDefaults() BWConfig {
	if len(c.Factors) == 0 {
		c.Factors = []float64{0, 1.0, 0.8, 0.6, 0.4, 0.2}
	}
	if c.Lambda <= 0 {
		c.Lambda = 0.3
	}
	if c.TreesPerFactor <= 0 {
		c.TreesPerFactor = 30
	}
	if c.MinSize <= 0 {
		c.MinSize = 15
	}
	if c.MaxSize < c.MinSize {
		c.MaxSize = 90
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// BWRow aggregates one bandwidth tightness level.
type BWRow struct {
	Factor   float64 // 0 = uncapped
	Trees    int
	Solvable int // Multiple+BW feasible (MG-BW is exact)
	Success  map[string]int
}

// BWResults is the outcome of RunBW.
type BWResults struct {
	Config BWConfig
	Rows   []BWRow
}

// RunBW executes the bandwidth campaign.
func RunBW(cfg BWConfig) (*BWResults, error) {
	cfg = cfg.withDefaults()
	res := &BWResults{Config: cfg}
	for fi, factor := range cfg.Factors {
		row := BWRow{Factor: factor, Trees: cfg.TreesPerFactor, Success: map[string]int{}}
		genCfg := gen.Config{Lambda: cfg.Lambda, UnitCosts: true, BWFactor: factor}
		seed := cfg.Seed + int64(fi)*899_981
		insts := gen.SizeSweep(genCfg, seed, cfg.TreesPerFactor, cfg.MinSize, cfg.MaxSize)
		for _, in := range insts {
			for _, h := range heuristics.AllBW {
				sol, err := h.Run(in)
				if err != nil {
					continue
				}
				if verr := sol.Validate(in, h.Policy); verr != nil {
					return nil, fmt.Errorf("experiments: %s produced invalid solution: %w", h.Name, verr)
				}
				row.Success[h.Name]++
				if h.Name == "MG-BW" {
					row.Solvable++ // MG-BW decides feasibility exactly
				}
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the success series per bandwidth tightness.
func (r *BWResults) Table() string {
	var sb strings.Builder
	writeRowf(&sb, append([]string{"bwfac"}, append(append([]string{}, BWNames...), "exact")...))
	for _, row := range r.Rows {
		label := "inf"
		if row.Factor > 0 {
			label = fmt.Sprintf("%.1f", row.Factor)
		}
		cells := []string{label}
		for _, name := range BWNames {
			cells = append(cells, fmt.Sprintf("%.2f", float64(row.Success[name])/float64(row.Trees)))
		}
		cells = append(cells, fmt.Sprintf("%.2f", float64(row.Solvable)/float64(row.Trees)))
		writeRowf(&sb, cells)
	}
	return sb.String()
}
