// Package reduction implements the NP-hardness gadgets of Section 4
// constructively: the 3-PARTITION reduction behind Theorem 2 (Upwards is
// NP-complete on homogeneous platforms, Figure 7) and the 2-PARTITION
// reduction behind Theorem 3 (all policies are NP-complete on
// heterogeneous platforms, Figure 8). Each gadget maps instances forward,
// maps solutions backward, and is verified in both directions by the
// tests, which is as close as executable code gets to "reproducing" a
// complexity table.
package reduction

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/tree"
)

// ThreePartition is a 3-PARTITION instance: 3m integers with sum m·B,
// each in (B/4, B/2); the question is whether they split into m triples
// of sum B.
type ThreePartition struct {
	A []int64
	B int64
}

// NewThreePartition validates and wraps the integers. It requires
// len(a) = 3m, Σa = mB and B/4 < a_i < B/2 (the strong NP-completeness
// preconditions).
func NewThreePartition(a []int64) (*ThreePartition, error) {
	if len(a) == 0 || len(a)%3 != 0 {
		return nil, fmt.Errorf("reduction: need 3m integers, got %d", len(a))
	}
	m := int64(len(a) / 3)
	var sum int64
	for _, v := range a {
		sum += v
	}
	if sum%m != 0 {
		return nil, fmt.Errorf("reduction: sum %d not divisible by m=%d", sum, m)
	}
	b := sum / m
	for _, v := range a {
		if 4*v <= b || 2*v >= b {
			return nil, fmt.Errorf("reduction: %d outside (B/4, B/2) for B=%d", v, b)
		}
	}
	return &ThreePartition{A: append([]int64(nil), a...), B: b}, nil
}

// UpwardsGadget is the Theorem 2 construction plus its bookkeeping.
type UpwardsGadget struct {
	Instance *core.Instance
	Part     *ThreePartition
	// Clients[i] is the vertex of the client carrying a_i requests.
	Clients []int
	// Nodes[j] is the j-th chain node (all of capacity B); Nodes[0] is the
	// deepest (the parent of all clients), Nodes[m-1] the root.
	Nodes []int
	// TargetCost is the storage cost bound of the decision question (mB).
	TargetCost int64
}

// BuildUpwards constructs the Figure 7 platform: a chain of m nodes with
// capacity and storage cost B, the deepest of which parents all 3m
// clients. The 3-PARTITION instance is a yes-instance iff the Replica
// Cost / Upwards decision problem with bound mB is.
func BuildUpwards(p *ThreePartition) *UpwardsGadget {
	m := len(p.A) / 3
	b := tree.NewBuilder()
	nodes := make([]int, m)
	nodes[m-1] = b.AddRoot() // n_m
	for j := m - 2; j >= 0; j-- {
		nodes[j] = b.AddNode(nodes[j+1])
	}
	clients := make([]int, len(p.A))
	for i := range p.A {
		clients[i] = b.AddClient(nodes[0])
	}
	in := core.NewInstance(b.MustBuild())
	for _, n := range nodes {
		in.W[n] = p.B
		in.S[n] = p.B
	}
	for i, c := range clients {
		in.R[c] = p.A[i]
	}
	return &UpwardsGadget{
		Instance:   in,
		Part:       p,
		Clients:    clients,
		Nodes:      nodes,
		TargetCost: int64(m) * p.B,
	}
}

// SolutionFromTriples turns a 3-PARTITION certificate (triples[k] lists
// the indices of the k-th triple) into an Upwards solution of cost mB.
func (g *UpwardsGadget) SolutionFromTriples(triples [][]int) (*core.Solution, error) {
	m := len(g.Nodes)
	if len(triples) != m {
		return nil, fmt.Errorf("reduction: %d triples for m=%d", len(triples), m)
	}
	sol := core.NewSolution(g.Instance.Tree.Len())
	seen := make([]bool, len(g.Clients))
	for k, tr := range triples {
		var sum int64
		for _, i := range tr {
			if i < 0 || i >= len(g.Clients) || seen[i] {
				return nil, fmt.Errorf("reduction: bad index %d in triple %d", i, k)
			}
			seen[i] = true
			sum += g.Part.A[i]
			sol.AddPortion(g.Clients[i], g.Nodes[k], g.Part.A[i])
		}
		if sum != g.Part.B {
			return nil, fmt.Errorf("reduction: triple %d sums to %d, want %d", k, sum, g.Part.B)
		}
	}
	return sol, nil
}

// TriplesFromSolution extracts a 3-PARTITION certificate from any valid
// Upwards solution of cost at most mB (the Theorem 2 backward direction).
func (g *UpwardsGadget) TriplesFromSolution(sol *core.Solution) ([][]int, error) {
	in := g.Instance
	if err := sol.Validate(in, core.Upwards); err != nil {
		return nil, fmt.Errorf("reduction: invalid solution: %w", err)
	}
	if c := sol.StorageCost(in); c > g.TargetCost {
		return nil, fmt.Errorf("reduction: cost %d exceeds target %d", c, g.TargetCost)
	}
	nodeIdx := make(map[int]int, len(g.Nodes))
	for j, n := range g.Nodes {
		nodeIdx[n] = j
	}
	groups := make([][]int, len(g.Nodes))
	for i, c := range g.Clients {
		ps := sol.Assign[c]
		if len(ps) != 1 {
			return nil, fmt.Errorf("reduction: client %d not single-served", c)
		}
		groups[nodeIdx[ps[0].Server]] = append(groups[nodeIdx[ps[0].Server]], i)
	}
	for j, grp := range groups {
		if len(grp) != 3 {
			return nil, fmt.Errorf("reduction: node %d serves %d clients, want 3", j, len(grp))
		}
	}
	return groups, nil
}

// TwoPartition is a 2-PARTITION instance: does a subset of A sum to S/2?
type TwoPartition struct {
	A []int64
	S int64 // ΣA, must be even for a yes-instance to exist
}

// NewTwoPartition wraps the integers (all positive, even total). An odd
// total is rejected: such instances are trivially no-instances and the
// Figure 8 gadget — which uses S/2 exactly — is only faithful for even S.
func NewTwoPartition(a []int64) (*TwoPartition, error) {
	if len(a) == 0 {
		return nil, errors.New("reduction: empty 2-PARTITION instance")
	}
	var sum int64
	for _, v := range a {
		if v <= 0 {
			return nil, fmt.Errorf("reduction: non-positive value %d", v)
		}
		sum += v
	}
	if sum%2 != 0 {
		return nil, fmt.Errorf("reduction: odd total %d is a trivial no-instance", sum)
	}
	return &TwoPartition{A: append([]int64(nil), a...), S: sum}, nil
}

// CostGadget is the Theorem 3 construction.
type CostGadget struct {
	Instance *core.Instance
	Part     *TwoPartition
	// Nodes[i] is the node above client i with W = s = a_i; Root has
	// W = s = S/2 + 1; ExtraClient is the unit client under the root.
	Nodes       []int
	Clients     []int
	Root        int
	ExtraClient int
	// TargetCost is the decision bound S + 1.
	TargetCost int64
}

// BuildCost constructs the Figure 8 platform: the root (capacity and cost
// S/2+1) parents m nodes n_i (capacity and cost a_i, each with one client
// of a_i requests) plus one unit client. The 2-PARTITION instance is a
// yes-instance iff Replica Cost with bound S+1 is — under Closest and
// under Multiple alike.
func BuildCost(p *TwoPartition) *CostGadget {
	b := tree.NewBuilder()
	root := b.AddRoot()
	extra := b.AddClient(root)
	nodes := make([]int, len(p.A))
	clients := make([]int, len(p.A))
	for i := range p.A {
		nodes[i] = b.AddNode(root)
		clients[i] = b.AddClient(nodes[i])
	}
	in := core.NewInstance(b.MustBuild())
	in.W[root] = p.S/2 + 1
	in.S[root] = p.S/2 + 1
	in.R[extra] = 1
	for i := range p.A {
		in.W[nodes[i]] = p.A[i]
		in.S[nodes[i]] = p.A[i]
		in.R[clients[i]] = p.A[i]
	}
	return &CostGadget{
		Instance:    in,
		Part:        p,
		Nodes:       nodes,
		Clients:     clients,
		Root:        root,
		ExtraClient: extra,
		TargetCost:  p.S + 1,
	}
}

// SolutionFromSubset turns a subset I with Σ_{i∈I} a_i = S/2 into a
// placement of cost S+1 valid for both Closest and Multiple: replicas on
// {n_i : i ∈ I} and the root.
func (g *CostGadget) SolutionFromSubset(subset []int) (*core.Solution, error) {
	inSet := make([]bool, len(g.Part.A))
	var sum int64
	for _, i := range subset {
		if i < 0 || i >= len(g.Part.A) || inSet[i] {
			return nil, fmt.Errorf("reduction: bad subset index %d", i)
		}
		inSet[i] = true
		sum += g.Part.A[i]
	}
	if 2*sum != g.Part.S {
		return nil, fmt.Errorf("reduction: subset sums to %d, want %d", sum, g.Part.S/2)
	}
	sol := core.NewSolution(g.Instance.Tree.Len())
	sol.AddPortion(g.ExtraClient, g.Root, 1)
	for i := range g.Part.A {
		if inSet[i] {
			sol.AddPortion(g.Clients[i], g.Nodes[i], g.Part.A[i])
		} else {
			sol.AddPortion(g.Clients[i], g.Root, g.Part.A[i])
		}
	}
	return sol, nil
}

// SubsetFromSolution extracts a 2-PARTITION certificate from any valid
// solution of cost at most S+1 under the given policy (Closest, Upwards
// or Multiple — the Theorem 3 argument covers all three).
func (g *CostGadget) SubsetFromSolution(sol *core.Solution, p core.Policy) ([]int, error) {
	in := g.Instance
	if err := sol.Validate(in, p); err != nil {
		return nil, fmt.Errorf("reduction: invalid solution: %w", err)
	}
	if c := sol.StorageCost(in); c > g.TargetCost {
		return nil, fmt.Errorf("reduction: cost %d exceeds target %d", c, g.TargetCost)
	}
	if !sol.IsReplica(g.Root) {
		return nil, errors.New("reduction: root must hold a replica (unit client)")
	}
	var subset []int
	var sum int64
	for i := range g.Part.A {
		if sol.IsReplica(g.Nodes[i]) {
			subset = append(subset, i)
			sum += g.Part.A[i]
		}
	}
	if 2*sum != g.Part.S {
		return nil, fmt.Errorf("reduction: replica subset sums to %d, want %d", sum, g.Part.S/2)
	}
	return subset, nil
}
