package reduction

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
)

// solve3Partition decides 3-PARTITION by exhaustive search, returning the
// triples of a yes-instance.
func solve3Partition(p *ThreePartition) [][]int {
	m := len(p.A) / 3
	used := make([]bool, len(p.A))
	triples := make([][]int, 0, m)
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == m {
			return true
		}
		// First unused index anchors the triple (canonical order).
		first := -1
		for i, u := range used {
			if !u {
				first = i
				break
			}
		}
		used[first] = true
		for j := first + 1; j < len(p.A); j++ {
			if used[j] {
				continue
			}
			used[j] = true
			for l := j + 1; l < len(p.A); l++ {
				if used[l] || p.A[first]+p.A[j]+p.A[l] != p.B {
					continue
				}
				used[l] = true
				triples = append(triples, []int{first, j, l})
				if rec(k + 1) {
					return true
				}
				triples = triples[:len(triples)-1]
				used[l] = false
			}
			used[j] = false
		}
		used[first] = false
		return false
	}
	if rec(0) {
		return triples
	}
	return nil
}

// solve2Partition decides 2-PARTITION exhaustively.
func solve2Partition(p *TwoPartition) []int {
	if p.S%2 != 0 {
		return nil
	}
	n := len(p.A)
	for mask := 1; mask < 1<<n; mask++ {
		var sum int64
		var subset []int
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sum += p.A[i]
				subset = append(subset, i)
			}
		}
		if 2*sum == p.S {
			return subset
		}
	}
	return nil
}

func TestNewThreePartitionValidation(t *testing.T) {
	if _, err := NewThreePartition([]int64{1, 2}); err == nil {
		t.Error("want error for non-3m length")
	}
	if _, err := NewThreePartition([]int64{10, 10, 10, 10, 10, 11}); err == nil {
		t.Error("want error for non-divisible sum")
	}
	// 3, 3, 3: B = 9 but 3 > 9/4 ok... 2*3=6 < 9 ok -> valid single triple.
	if _, err := NewThreePartition([]int64{3, 3, 3}); err != nil {
		t.Errorf("balanced triple rejected: %v", err)
	}
	// Out-of-range element (a_i >= B/2).
	if _, err := NewThreePartition([]int64{1, 4, 4}); err == nil {
		t.Error("want error for element >= B/2")
	}
}

// TestReduction3PartitionForward: a yes 3-PARTITION certificate maps to a
// valid Upwards solution of cost exactly mB.
func TestReduction3PartitionForward(t *testing.T) {
	p, err := NewThreePartition([]int64{10, 11, 12, 10, 10, 13, 9, 11, 13})
	if err != nil {
		t.Fatal(err)
	}
	g := BuildUpwards(p)
	triples := solve3Partition(p)
	if triples == nil {
		t.Fatal("instance should be solvable")
	}
	sol, err := g.SolutionFromTriples(triples)
	if err != nil {
		t.Fatal(err)
	}
	if verr := sol.Validate(g.Instance, core.Upwards); verr != nil {
		t.Fatalf("invalid gadget solution: %v", verr)
	}
	if c := sol.StorageCost(g.Instance); c != g.TargetCost {
		t.Errorf("cost = %d, want %d", c, g.TargetCost)
	}
	// And back again.
	back, err := g.TriplesFromSolution(sol)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(triples) {
		t.Errorf("round trip lost triples")
	}
}

// TestReduction3PartitionEquivalence: on random small instances, the
// 3-PARTITION answer matches whether the gadget's optimal Upwards cost
// meets the bound mB.
func TestReduction3PartitionEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tested := 0
	for tested < 25 {
		// Random m=2..3, values near B/3 so the (B/4, B/2) window holds.
		m := 2 + rng.Intn(2)
		base := int64(30)
		a := make([]int64, 3*m)
		var sum int64
		for i := range a {
			a[i] = base + int64(rng.Intn(9)-4)
			sum += a[i]
		}
		// Adjust the last value so the sum is divisible by m.
		a[len(a)-1] -= sum % int64(m)
		p, err := NewThreePartition(a)
		if err != nil {
			continue
		}
		tested++
		g := BuildUpwards(p)
		direct := solve3Partition(p) != nil
		sol, err := exact.BruteForce(context.Background(), g.Instance, core.Upwards)
		viaGadget := err == nil && sol.StorageCost(g.Instance) <= g.TargetCost
		if direct != viaGadget {
			t.Fatalf("a=%v: 3-PARTITION=%v but gadget=%v", a, direct, viaGadget)
		}
		if viaGadget {
			if _, err := g.TriplesFromSolution(sol); err != nil {
				t.Fatalf("a=%v: certificate extraction failed: %v", a, err)
			}
		}
	}
}

func TestNewTwoPartitionValidation(t *testing.T) {
	if _, err := NewTwoPartition(nil); err == nil {
		t.Error("want error for empty instance")
	}
	if _, err := NewTwoPartition([]int64{3, -1}); err == nil {
		t.Error("want error for negative value")
	}
	if _, err := NewTwoPartition([]int64{1, 2}); err == nil {
		t.Error("want error for odd total")
	}
}

// TestReduction2PartitionForward: a subset certificate maps to a valid
// solution of cost S+1 for both Closest and Multiple.
func TestReduction2PartitionForward(t *testing.T) {
	p, err := NewTwoPartition([]int64{3, 1, 1, 2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	g := BuildCost(p)
	subset := solve2Partition(p)
	if subset == nil {
		t.Fatal("instance should be solvable")
	}
	sol, err := g.SolutionFromSubset(subset)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []core.Policy{core.Closest, core.Upwards, core.Multiple} {
		if verr := sol.Validate(g.Instance, pol); verr != nil {
			t.Errorf("%v: %v", pol, verr)
		}
	}
	if c := sol.StorageCost(g.Instance); c != g.TargetCost {
		t.Errorf("cost = %d, want %d", c, g.TargetCost)
	}
	if _, err := g.SubsetFromSolution(sol, core.Closest); err != nil {
		t.Errorf("subset extraction: %v", err)
	}
}

// TestReduction2PartitionEquivalence: the 2-PARTITION answer matches
// whether the gadget's optimal cost meets S+1, for Closest and Multiple.
func TestReduction2PartitionEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(4)
		a := make([]int64, n)
		var sum int64
		for i := range a {
			a[i] = 1 + int64(rng.Intn(6))
			sum += a[i]
		}
		if sum%2 != 0 {
			a[0]++ // force an even total: the gadget requires it
		}
		p, err := NewTwoPartition(a)
		if err != nil {
			t.Fatal(err)
		}
		g := BuildCost(p)
		direct := solve2Partition(p) != nil
		for _, pol := range []core.Policy{core.Closest, core.Multiple} {
			sol, err := exact.BruteForce(context.Background(), g.Instance, pol)
			viaGadget := err == nil && sol.StorageCost(g.Instance) <= g.TargetCost
			if direct != viaGadget {
				t.Fatalf("a=%v %v: 2-PARTITION=%v but gadget=%v (cost %v)",
					a, pol, direct, viaGadget, sol)
			}
			if viaGadget {
				if _, err := g.SubsetFromSolution(sol, pol); err != nil {
					t.Fatalf("a=%v %v: certificate extraction failed: %v", a, pol, err)
				}
			}
		}
	}
}

func TestGadgetErrorPaths(t *testing.T) {
	p, _ := NewThreePartition([]int64{3, 3, 3})
	g := BuildUpwards(p)
	if _, err := g.SolutionFromTriples([][]int{{0, 1}}); err == nil {
		t.Error("want error for wrong triple count")
	}
	if _, err := g.SolutionFromTriples([][]int{{0, 0, 1}}); err == nil {
		t.Error("want error for repeated index")
	}
	if _, err := g.SolutionFromTriples([][]int{{0, 1, 2}}); err != nil {
		t.Errorf("valid triple rejected: %v", err)
	}

	p2, _ := NewTwoPartition([]int64{2, 2})
	g2 := BuildCost(p2)
	if _, err := g2.SolutionFromSubset([]int{0, 1}); err == nil {
		t.Error("want error for over-full subset")
	}
	if _, err := g2.SolutionFromSubset([]int{7}); err == nil {
		t.Error("want error for bad index")
	}
	sol, err := g2.SolutionFromSubset([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g2.SubsetFromSolution(sol, core.Multiple); err != nil {
		t.Errorf("extraction failed: %v", err)
	}
}
