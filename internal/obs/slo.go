package obs

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// The Google-SRE multi-window burn-rate pairs: an alert pair fires only
// when BOTH its windows burn error budget faster than the threshold —
// the long window proves the problem is real, the short window proves
// it is still happening (and lets the alert resolve quickly once the
// bleeding stops). A burn rate of 1 consumes exactly the whole budget
// over the accounting window; 14.4 consumes a 30-day budget in 2 days.
var burnPairs = []burnPair{
	{severity: "page", short: 5 * time.Minute, long: time.Hour, threshold: 14.4},
	{severity: "ticket", short: 30 * time.Minute, long: 6 * time.Hour, threshold: 6},
}

type burnPair struct {
	severity  string
	short     time.Duration
	long      time.Duration
	threshold float64
}

// sloBurnWindows are the distinct lookbacks rendered as
// rp_slo_burn_rate{window=...}.
var sloBurnWindows = []time.Duration{5 * time.Minute, 30 * time.Minute, time.Hour, 6 * time.Hour}

// SLOOptions configures NewSLO.
type SLOOptions struct {
	// Availability is the target non-5xx ratio (e.g. 0.999). <= 0
	// disables the availability objective.
	Availability float64
	// LatencyP99 is the per-request latency threshold; the latency
	// objective demands that LatencyTarget of requests beat it. <= 0
	// disables the latency objective.
	LatencyP99 time.Duration
	// LatencyTarget is the fraction of requests that must finish within
	// LatencyP99 (default 0.99 — hence the flag's name).
	LatencyTarget float64
	// Window is the error-budget accounting window (default 6h). The
	// underlying ring always spans at least the longest burn window.
	Window time.Duration
	// Interval is the ring bucket granularity (default 10s).
	Interval time.Duration
	// MinEvents is the request volume an alert pair's long window must
	// hold before the pair may fire — burn rates over a handful of
	// requests are noise, not signal (default 10).
	MinEvents uint64
	// Now is the clock (nil = time.Now); injectable for tests.
	Now func() time.Time
	// Events, when set, receives alert_fired / alert_resolved events.
	Events *EventRing
}

// sloObjective is one tracked objective: a target ratio plus the
// sliding window classifying its requests as good or bad.
type sloObjective struct {
	name   string
	target float64
	window *Window
}

// SLO evaluates availability and latency objectives over sliding
// windows. Observe is called per request from the instrumentation
// middleware (two mutex-guarded integer adds — no goroutines, no
// allocation); Evaluate computes burn rates and advances alert state,
// and runs on the scrape/health path only.
type SLO struct {
	objectives []sloObjective
	latencyP99 time.Duration
	window     time.Duration
	minEvents  uint64
	now        func() time.Time
	events     *EventRing

	mu       sync.Mutex
	firing   map[string]*Alert // keyed objective/severity
	resolved []Alert           // bounded history, oldest first
}

// maxResolvedAlerts bounds the resolved-alert history.
const maxResolvedAlerts = 64

// NewSLO builds the engine; returns nil when every objective is
// disabled, and every method is safe on a nil receiver.
func NewSLO(opts SLOOptions) *SLO {
	if opts.Availability <= 0 && opts.LatencyP99 <= 0 {
		return nil
	}
	if opts.LatencyTarget <= 0 || opts.LatencyTarget >= 1 {
		opts.LatencyTarget = 0.99
	}
	if opts.Window <= 0 {
		opts.Window = 6 * time.Hour
	}
	if opts.Interval <= 0 {
		opts.Interval = 10 * time.Second
	}
	if opts.MinEvents == 0 {
		opts.MinEvents = 10
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	span := opts.Window
	for _, w := range sloBurnWindows {
		if w > span {
			span = w
		}
	}
	s := &SLO{
		latencyP99: opts.LatencyP99,
		window:     opts.Window,
		minEvents:  opts.MinEvents,
		now:        opts.Now,
		events:     opts.Events,
		firing:     make(map[string]*Alert),
	}
	if opts.Availability > 0 {
		s.objectives = append(s.objectives, sloObjective{
			name:   "availability",
			target: min(opts.Availability, 0.999999),
			window: NewWindow(span, opts.Interval, opts.Now),
		})
	}
	if opts.LatencyP99 > 0 {
		s.objectives = append(s.objectives, sloObjective{
			name:   "latency",
			target: opts.LatencyTarget,
			window: NewWindow(span, opts.Interval, opts.Now),
		})
	}
	return s
}

// Observe classifies one finished request against every objective:
// availability counts 5xx responses as bad, latency counts responses
// over the threshold as bad.
func (s *SLO) Observe(status int, d time.Duration) {
	if s == nil {
		return
	}
	for i := range s.objectives {
		o := &s.objectives[i]
		var bad uint64
		switch o.name {
		case "availability":
			if status >= 500 {
				bad = 1
			}
		case "latency":
			if d > s.latencyP99 {
				bad = 1
			}
		}
		o.window.Add(1, bad)
	}
}

// Alert is one burn-rate alert, firing or resolved.
type Alert struct {
	// Name is objective-severity, e.g. "availability-page".
	Name      string  `json:"name"`
	Objective string  `json:"objective"`
	Severity  string  `json:"severity"` // page (fast pair) or ticket (slow pair)
	Threshold float64 `json:"threshold"`
	// ShortWindow/LongWindow are the pair's lookbacks ("5m", "1h").
	ShortWindow string `json:"short_window"`
	LongWindow  string `json:"long_window"`
	// ShortBurn/LongBurn are the burn rates at the last evaluation.
	ShortBurn  float64    `json:"short_burn"`
	LongBurn   float64    `json:"long_burn"`
	FiredAt    time.Time  `json:"fired_at"`
	ResolvedAt *time.Time `json:"resolved_at,omitempty"`
}

// SLOObjectiveStatus is one objective's state at evaluation time.
type SLOObjectiveStatus struct {
	Name   string  `json:"name"`
	Target float64 `json:"target"`
	// BudgetRemaining is the unspent fraction of the error budget over
	// the accounting window: 1 = untouched, 0 = spent, negative =
	// overspent. With no traffic the budget is intact.
	BudgetRemaining float64 `json:"budget_remaining"`
	// Burn maps window label ("5m", "1h", ...) to the burn rate there.
	Burn     map[string]float64 `json:"burn"`
	Requests uint64             `json:"requests"`
	Bad      uint64             `json:"bad"`
}

// SLOStatus is a full evaluation: the health verdict, per-objective
// numbers, alerts currently firing and recently resolved.
type SLOStatus struct {
	Verdict    string               `json:"verdict"` // ok, degraded or critical
	Objectives []SLOObjectiveStatus `json:"objectives"`
	Firing     []Alert              `json:"firing"`
	Resolved   []Alert              `json:"resolved,omitempty"`
}

// windowLabel renders a lookback the way the metrics label does.
func windowLabel(d time.Duration) string {
	if d >= time.Hour && d%time.Hour == 0 {
		return fmt.Sprintf("%dh", int(d/time.Hour))
	}
	return fmt.Sprintf("%dm", int(d/time.Minute))
}

// Evaluate recomputes burn rates, fires and resolves alerts, and
// returns the full status. An alert pair fires when both windows
// exceed the threshold (and the long window has seen MinEvents
// requests); it resolves as soon as the short window drops back under —
// the hysteresis that keeps a recovered system from paging forever on
// its long-window tail. Safe on a nil receiver (status "ok").
func (s *SLO) Evaluate() SLOStatus {
	if s == nil {
		return SLOStatus{Verdict: "ok"}
	}
	st := SLOStatus{Verdict: "ok"}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.objectives {
		o := &s.objectives[i]
		budget := 1 - o.target // allowed bad ratio
		total, bad := o.window.Sum(s.window)
		os := SLOObjectiveStatus{
			Name:            o.name,
			Target:          o.target,
			BudgetRemaining: 1,
			Burn:            make(map[string]float64, len(sloBurnWindows)),
			Requests:        total,
			Bad:             bad,
		}
		if total > 0 {
			os.BudgetRemaining = 1 - (float64(bad)/float64(total))/budget
		}
		for _, w := range sloBurnWindows {
			os.Burn[windowLabel(w)] = o.window.Ratio(w) / budget
		}
		for _, p := range burnPairs {
			key := o.name + "/" + p.severity
			shortBurn := o.window.Ratio(p.short) / budget
			longBurn := o.window.Ratio(p.long) / budget
			longTotal, _ := o.window.Sum(p.long)
			a := s.firing[key]
			switch {
			case a == nil && shortBurn >= p.threshold && longBurn >= p.threshold && longTotal >= s.minEvents:
				a = &Alert{
					Name:        o.name + "-" + p.severity,
					Objective:   o.name,
					Severity:    p.severity,
					Threshold:   p.threshold,
					ShortWindow: windowLabel(p.short),
					LongWindow:  windowLabel(p.long),
					ShortBurn:   shortBurn,
					LongBurn:    longBurn,
					FiredAt:     s.now(),
				}
				s.firing[key] = a
				s.events.Emit(context.Background(), "alert_fired",
					a.Name+" burn-rate alert fired",
					"objective", o.name, "severity", p.severity,
					"short_burn", fmt.Sprintf("%.2f", shortBurn),
					"long_burn", fmt.Sprintf("%.2f", longBurn))
			case a != nil && shortBurn < p.threshold:
				at := s.now()
				a.ShortBurn, a.LongBurn = shortBurn, longBurn
				a.ResolvedAt = &at
				delete(s.firing, key)
				s.resolved = append(s.resolved, *a)
				if len(s.resolved) > maxResolvedAlerts {
					s.resolved = s.resolved[len(s.resolved)-maxResolvedAlerts:]
				}
				s.events.Emit(context.Background(), "alert_resolved",
					a.Name+" burn-rate alert resolved",
					"objective", o.name, "severity", p.severity)
			case a != nil:
				a.ShortBurn, a.LongBurn = shortBurn, longBurn
			}
		}
		st.Objectives = append(st.Objectives, os)
	}
	for _, a := range s.firing {
		st.Firing = append(st.Firing, *a)
		if st.Verdict == "ok" {
			st.Verdict = "degraded"
		}
		// Serving errors is worse than serving slowly: only the
		// availability fast pair escalates the verdict to critical.
		if a.Objective == "availability" && a.Severity == "page" {
			st.Verdict = "critical"
		}
	}
	sort.Slice(st.Firing, func(i, j int) bool { return st.Firing[i].Name < st.Firing[j].Name })
	st.Resolved = append(st.Resolved, s.resolved...)
	return st
}
