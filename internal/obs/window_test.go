package obs

import (
	"testing"
	"time"
)

// fakeClock is a settable clock for window/SLO tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func TestWindowEmpty(t *testing.T) {
	clk := newFakeClock()
	w := NewWindow(time.Hour, time.Second, clk.now)
	if total, bad := w.Sum(time.Hour); total != 0 || bad != 0 {
		t.Fatalf("empty window Sum = (%d, %d), want zeros", total, bad)
	}
	if r := w.Ratio(time.Hour); r != 0 {
		t.Fatalf("empty window Ratio = %v, want 0 (no traffic is not an error)", r)
	}
}

func TestWindowAddAndSum(t *testing.T) {
	clk := newFakeClock()
	w := NewWindow(time.Minute, time.Second, clk.now)
	w.Add(10, 2)
	clk.advance(time.Second)
	w.Add(5, 5)
	total, bad := w.Sum(time.Minute)
	if total != 15 || bad != 7 {
		t.Fatalf("Sum = (%d, %d), want (15, 7)", total, bad)
	}
	// After one more tick, a 1s lookback covers the (empty) straddling
	// bucket plus one full bucket — the first Add has aged out.
	clk.advance(time.Second)
	total, bad = w.Sum(time.Second)
	if total != 5 || bad != 5 {
		t.Fatalf("1s Sum = (%d, %d), want (5, 5) (oldest bucket outside lookback)", total, bad)
	}
}

func TestWindowExpiry(t *testing.T) {
	clk := newFakeClock()
	w := NewWindow(10*time.Second, time.Second, clk.now)
	w.Add(100, 100)
	clk.advance(30 * time.Second) // far past the span: every bucket is stale
	if total, _ := w.Sum(10 * time.Second); total != 0 {
		t.Fatalf("stale buckets leaked into Sum: total = %d", total)
	}
	// Writing after the gap reuses slots without resurrecting old counts.
	w.Add(1, 0)
	if total, bad := w.Sum(10 * time.Second); total != 1 || bad != 0 {
		t.Fatalf("post-gap Sum = (%d, %d), want (1, 0)", total, bad)
	}
}

func TestWindowLookbackClamped(t *testing.T) {
	clk := newFakeClock()
	w := NewWindow(10*time.Second, time.Second, clk.now)
	w.Add(3, 1)
	if total, _ := w.Sum(time.Hour); total != 3 {
		t.Fatalf("over-long lookback Sum total = %d, want 3 (clamped to span)", total)
	}
	if total, _ := w.Sum(0); total != 0 {
		t.Fatalf("zero lookback Sum total = %d, want 0", total)
	}
}

func TestWindowRatio(t *testing.T) {
	clk := newFakeClock()
	w := NewWindow(time.Minute, time.Second, clk.now)
	w.Add(4, 1)
	if r := w.Ratio(time.Minute); r != 0.25 {
		t.Fatalf("Ratio = %v, want 0.25", r)
	}
}
