package obs

import (
	"testing"
	"time"
)

func newTestSLO(clk *fakeClock, events *EventRing) *SLO {
	return NewSLO(SLOOptions{
		Availability: 0.999,
		LatencyP99:   50 * time.Millisecond,
		Window:       6 * time.Hour,
		Interval:     time.Second,
		Now:          clk.now,
		Events:       events,
	})
}

func TestSLODisabled(t *testing.T) {
	if s := NewSLO(SLOOptions{}); s != nil {
		t.Fatal("no objectives should yield a nil engine")
	}
	var s *SLO
	s.Observe(500, time.Second) // must not panic
	if st := s.Evaluate(); st.Verdict != "ok" {
		t.Fatalf("nil engine verdict = %q, want ok", st.Verdict)
	}
}

func TestSLOEmptyWindow(t *testing.T) {
	clk := newFakeClock()
	s := newTestSLO(clk, nil)
	st := s.Evaluate()
	if st.Verdict != "ok" {
		t.Fatalf("verdict = %q, want ok", st.Verdict)
	}
	if len(st.Firing) != 0 {
		t.Fatalf("alerts firing on an empty window: %+v", st.Firing)
	}
	for _, o := range st.Objectives {
		if o.BudgetRemaining != 1 {
			t.Fatalf("%s budget = %v, want 1 (untouched with no traffic)", o.Name, o.BudgetRemaining)
		}
		for w, b := range o.Burn {
			if b != 0 {
				t.Fatalf("%s burn[%s] = %v, want 0", o.Name, w, b)
			}
		}
	}
}

func TestSLOHealthyTraffic(t *testing.T) {
	clk := newFakeClock()
	s := newTestSLO(clk, nil)
	for i := 0; i < 1000; i++ {
		s.Observe(200, time.Millisecond)
	}
	st := s.Evaluate()
	if st.Verdict != "ok" || len(st.Firing) != 0 {
		t.Fatalf("healthy traffic: verdict %q, firing %d", st.Verdict, len(st.Firing))
	}
	for _, o := range st.Objectives {
		if o.BudgetRemaining != 1 {
			t.Fatalf("%s budget = %v, want 1", o.Name, o.BudgetRemaining)
		}
	}
}

func TestSLOLatencyBreachDegraded(t *testing.T) {
	clk := newFakeClock()
	events := NewEventRing(16, nil)
	s := newTestSLO(clk, events)
	// All requests succeed but blow the latency threshold: the latency
	// pairs fire, availability stays clean, verdict is degraded — never
	// critical, which is reserved for availability pages.
	for i := 0; i < 100; i++ {
		s.Observe(200, time.Second)
	}
	st := s.Evaluate()
	if st.Verdict != "degraded" {
		t.Fatalf("verdict = %q, want degraded", st.Verdict)
	}
	if len(st.Firing) == 0 {
		t.Fatal("no alerts firing after 100% slow requests")
	}
	for _, a := range st.Firing {
		if a.Objective != "latency" {
			t.Fatalf("unexpected %s alert firing: %+v", a.Objective, a)
		}
		if a.FiredAt.IsZero() || a.ResolvedAt != nil {
			t.Fatalf("firing alert has bad timestamps: %+v", a)
		}
	}
	if evs := events.Events(EventFilter{Type: "alert_fired"}); len(evs) == 0 {
		t.Fatal("alert_fired event missing from the journal")
	}
}

func TestSLOAvailabilityCritical(t *testing.T) {
	clk := newFakeClock()
	s := newTestSLO(clk, nil)
	for i := 0; i < 100; i++ {
		s.Observe(500, time.Millisecond)
	}
	st := s.Evaluate()
	if st.Verdict != "critical" {
		t.Fatalf("verdict = %q, want critical (availability page firing)", st.Verdict)
	}
}

func TestSLOBudgetExhaustion(t *testing.T) {
	clk := newFakeClock()
	s := newTestSLO(clk, nil)
	// 1 bad in 1000 exactly spends a 99.9% budget; 10 bad overspends it.
	for i := 0; i < 990; i++ {
		s.Observe(200, time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		s.Observe(500, time.Millisecond)
	}
	st := s.Evaluate()
	for _, o := range st.Objectives {
		if o.Name != "availability" {
			continue
		}
		if o.BudgetRemaining > -8.9 {
			t.Fatalf("budget remaining = %v, want about -9 (10x the allowance spent)", o.BudgetRemaining)
		}
		if o.Requests != 1000 || o.Bad != 10 {
			t.Fatalf("requests/bad = %d/%d, want 1000/10", o.Requests, o.Bad)
		}
	}
}

func TestSLOMinEvents(t *testing.T) {
	clk := newFakeClock()
	s := newTestSLO(clk, nil)
	// A handful of failures is noise, not an incident: below MinEvents
	// (default 10) nothing may fire even at a huge burn rate.
	for i := 0; i < 5; i++ {
		s.Observe(500, time.Second)
	}
	if st := s.Evaluate(); len(st.Firing) != 0 {
		t.Fatalf("alerts fired on %d requests, below the volume floor: %+v", 5, st.Firing)
	}
}

func TestSLOHysteresisFireThenResolve(t *testing.T) {
	clk := newFakeClock()
	events := NewEventRing(16, nil)
	s := newTestSLO(clk, events)
	for i := 0; i < 100; i++ {
		s.Observe(500, time.Millisecond)
	}
	if st := s.Evaluate(); st.Verdict != "critical" {
		t.Fatalf("setup: verdict %q, want critical", st.Verdict)
	}
	// The outage ends. Six minutes of clean traffic pushes the bad
	// requests out of the 5m short window; its burn drops under the
	// threshold and the page resolves even though the 1h long window
	// still remembers the errors.
	for i := 0; i < 36; i++ {
		clk.advance(10 * time.Second)
		for j := 0; j < 10; j++ {
			s.Observe(200, time.Millisecond)
		}
	}
	st := s.Evaluate()
	for _, a := range st.Firing {
		if a.Severity == "page" {
			t.Fatalf("page still firing after recovery: %+v (short burn %v)", a, a.ShortBurn)
		}
	}
	var sawResolved bool
	for _, a := range st.Resolved {
		if a.Objective == "availability" && a.Severity == "page" {
			sawResolved = true
			if a.ResolvedAt == nil || a.ResolvedAt.Before(a.FiredAt) {
				t.Fatalf("resolved alert has bad timestamps: %+v", a)
			}
		}
	}
	if !sawResolved {
		t.Fatal("resolved page alert missing from history")
	}
	if evs := events.Events(EventFilter{Type: "alert_resolved"}); len(evs) == 0 {
		t.Fatal("alert_resolved event missing from the journal")
	}
	// The ticket pair (30m short window) still sees the incident.
	// Another half hour of clean traffic resolves everything.
	for i := 0; i < 180; i++ {
		clk.advance(10 * time.Second)
		for j := 0; j < 5; j++ {
			s.Observe(200, time.Millisecond)
		}
	}
	if st := s.Evaluate(); len(st.Firing) != 0 || st.Verdict != "ok" {
		t.Fatalf("after full recovery: verdict %q, %d firing", st.Verdict, len(st.Firing))
	}
}
