package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestTraceContext(t *testing.T) {
	ctx := context.Background()
	if got := Trace(ctx); got != "" {
		t.Fatalf("empty ctx trace = %q", got)
	}
	ctx = WithTrace(ctx, "abc123")
	if got := Trace(ctx); got != "abc123" {
		t.Fatalf("trace = %q, want abc123", got)
	}
	if WithTrace(ctx, "") != ctx {
		t.Fatal("WithTrace(\"\") should return ctx unchanged")
	}
	a, b := NewTraceID(), NewTraceID()
	if a == b {
		t.Fatalf("two trace IDs collided: %s", a)
	}
	if len(a) != 16 || SanitizeTraceID(a) != a {
		t.Fatalf("generated ID %q is not 16 sanitized hex chars", a)
	}
}

func TestSanitizeTraceID(t *testing.T) {
	for in, want := range map[string]string{
		"abc-DEF_123.z":           "abc-DEF_123.z",
		"":                        "",
		"has space":               "",
		"quote\"":                 "",
		"newline\n":               "",
		strings.Repeat("a", 64):   strings.Repeat("a", 64),
		strings.Repeat("a", 65):   "",
		"curl/8.0 injection{x=1}": "",
	} {
		if got := SanitizeTraceID(in); got != want {
			t.Errorf("SanitizeTraceID(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	h.Observe(500 * time.Microsecond) // bucket 0
	h.Observe(5 * time.Millisecond)   // bucket 1
	h.Observe(5 * time.Millisecond)   // bucket 1
	h.Observe(time.Second)            // +Inf
	h.Observe(-time.Second)           // clamped to 0, bucket 0

	s := h.Snapshot()
	if want := []uint64{2, 2, 0, 1}; len(s.Counts) != 4 ||
		s.Counts[0] != want[0] || s.Counts[1] != want[1] || s.Counts[2] != want[2] || s.Counts[3] != want[3] {
		t.Fatalf("counts = %v, want %v", s.Counts, want)
	}
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	wantSum := (500*time.Microsecond + 10*time.Millisecond + time.Second).Seconds()
	if diff := s.Sum - wantSum; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("sum = %g, want %g", s.Sum, wantSum)
	}
}

func TestHistogramVec(t *testing.T) {
	v := NewHistogramVec(nil)
	v.Observe("mb", time.Millisecond)
	v.Observe("mb", time.Millisecond)
	v.Observe("optimal", time.Second)
	snap := v.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("labels = %d, want 2", len(snap))
	}
	if snap["mb"].Count != 2 || snap["optimal"].Count != 1 {
		t.Fatalf("counts: mb=%d optimal=%d", snap["mb"].Count, snap["optimal"].Count)
	}
	if len(snap["mb"].Bounds) != len(DefBuckets) {
		t.Fatalf("nil bounds should select DefBuckets")
	}
}

func TestHistogramObserveAllocs(t *testing.T) {
	v := NewHistogramVec(nil)
	v.Observe("mb", time.Millisecond) // create the label outside the measurement
	if n := testing.AllocsPerRun(100, func() { v.Observe("mb", time.Millisecond) }); n != 0 {
		t.Fatalf("HistogramVec.Observe allocates %v/op on the hot path, want 0", n)
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "INFO": slog.LevelInfo,
		"warn": slog.LevelWarn, "error": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(\"loud\") should fail")
	}
}

func TestLoggerTraceAttr(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "json", slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	ctx := WithTrace(context.Background(), "t-123")
	lg.InfoContext(ctx, "hello", "k", "v")
	lg.InfoContext(context.Background(), "untraced")
	lg.DebugContext(ctx, "filtered out")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line not JSON: %v", err)
	}
	if rec["trace_id"] != "t-123" || rec["msg"] != "hello" || rec["k"] != "v" {
		t.Fatalf("record = %v", rec)
	}
	var rec2 map[string]any
	json.Unmarshal([]byte(lines[1]), &rec2)
	if _, has := rec2["trace_id"]; has {
		t.Fatal("untraced record must not carry trace_id")
	}

	if _, err := NewLogger(&buf, "xml", slog.LevelInfo); err == nil {
		t.Fatal("bad format should error")
	}
}

func TestLoggerWithAttrsKeepsTrace(t *testing.T) {
	var buf bytes.Buffer
	lg, _ := NewLogger(&buf, "json", slog.LevelInfo)
	lg = lg.With("component", "engine")
	lg.InfoContext(WithTrace(context.Background(), "abc"), "m")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["trace_id"] != "abc" || rec["component"] != "engine" {
		t.Fatalf("record = %v", rec)
	}
}

func TestNopLogger(t *testing.T) {
	lg := NopLogger()
	if lg.Enabled(context.Background(), slog.LevelError) {
		t.Fatal("nop logger should be disabled at every level")
	}
	lg.Info("goes nowhere") // must not panic
}
