// Package obs is the service's dependency-free observability layer:
// request/trace identity carried through context.Context and the
// X-RP-Trace-Id header, cheap fixed-bucket latency histograms rendered
// in the Prometheus exposition format, slog-based structured logging
// that stamps every record with the active trace, a strict exposition
// parser (shared by tests and the e2e tooling), and opt-in pprof
// registration. Everything here is stdlib-only by design — the daemons
// ship without a single third-party dependency.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// TraceHeader is the HTTP header carrying a request's trace ID: set on
// every response, accepted on requests (so an external caller or an
// upstream proxy can supply its own ID), and propagated on every
// coordinator→shard call so one logical request is greppable across
// the whole cluster.
const TraceHeader = "X-RP-Trace-Id"

type traceKey struct{}

// NewTraceID returns a fresh 16-hex-character trace ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return hex.EncodeToString(b[:])
}

// WithTrace returns ctx carrying the trace ID. An empty id returns ctx
// unchanged.
func WithTrace(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, id)
}

// Trace returns the trace ID carried by ctx, "" when there is none.
func Trace(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

// SanitizeTraceID validates a caller-supplied trace ID (a header is
// attacker-controlled input that ends up in logs and error bodies):
// 1-64 characters of [A-Za-z0-9._-], anything else rejected as "".
func SanitizeTraceID(s string) string {
	if len(s) == 0 || len(s) > 64 {
		return ""
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return ""
		}
	}
	return s
}
