package obs

import (
	"math"
	"runtime/metrics"
)

// GoRuntimeStats is the slice of Go runtime state exported on /metrics:
// live goroutines, heap bytes, and the cumulative GC pause distribution
// re-bucketed onto DefBuckets so it renders through the same histogram
// writer as the latency families.
type GoRuntimeStats struct {
	Goroutines int64
	HeapBytes  int64
	GCPause    HistogramSnapshot
}

// runtimeSamples are the runtime/metrics names we read. The GC pause
// name moved across Go releases; readGoRuntime probes the modern name
// first and falls back.
var runtimeSamples = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/sched/pauses/total/gc:seconds",
	"/gc/pauses:seconds",
}

// ReadGoRuntime samples the Go runtime. It never fails: metrics the
// runtime doesn't publish simply stay zero.
func ReadGoRuntime() GoRuntimeStats {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, name := range runtimeSamples {
		samples[i].Name = name
	}
	metrics.Read(samples)

	out := GoRuntimeStats{GCPause: HistogramSnapshot{
		Bounds: DefBuckets,
		Counts: make([]uint64, len(DefBuckets)+1),
	}}
	gotPauses := false
	for _, s := range samples {
		switch s.Value.Kind() {
		case metrics.KindUint64:
			switch s.Name {
			case "/sched/goroutines:goroutines":
				out.Goroutines = int64(s.Value.Uint64())
			case "/memory/classes/heap/objects:bytes":
				out.HeapBytes = int64(s.Value.Uint64())
			}
		case metrics.KindFloat64Histogram:
			if !gotPauses {
				gotPauses = true
				out.GCPause = rebucket(s.Value.Float64Histogram(), DefBuckets)
			}
		}
	}
	return out
}

// rebucket folds a runtime/metrics histogram (hundreds of fine-grained
// buckets) into our coarse bounds so the exposition stays small and the
// strict-parser invariants (ascending le, +Inf == _count, one _sum)
// hold by construction. Each source bucket lands in the target bucket
// containing its midpoint; the sum is approximated the same way.
func rebucket(h *metrics.Float64Histogram, bounds []float64) HistogramSnapshot {
	snap := HistogramSnapshot{
		Bounds: bounds,
		Counts: make([]uint64, len(bounds)+1),
	}
	if h == nil {
		return snap
	}
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		mid := midpoint(lo, hi)
		j := 0
		for j < len(bounds) && mid > bounds[j] {
			j++
		}
		snap.Counts[j] += c
		snap.Count += c
		snap.Sum += float64(c) * mid
	}
	return snap
}

// midpoint picks a representative value for a source bucket, tolerating
// the runtime's ±Inf edge buckets.
func midpoint(lo, hi float64) float64 {
	switch {
	case math.IsInf(lo, -1) && math.IsInf(hi, 1):
		return 0
	case math.IsInf(lo, -1):
		return hi
	case math.IsInf(hi, 1):
		return lo
	default:
		return (lo + hi) / 2
	}
}
