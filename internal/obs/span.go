package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"sort"
	"strconv"
	"sync"
	"time"
)

// ParentSpanHeader carries the caller's active span ID on
// coordinator→shard HTTP calls, so a worker's root span parents under
// the coordinator span that issued the request and the assembled trace
// is one tree instead of a forest. (The binary wire transport carries
// the same pair — trace ID plus parent span — in its v2 frame prefix.)
const ParentSpanHeader = "X-RP-Parent-Span"

// maxSpanAttrs bounds a span's attributes. Attributes set beyond it are
// dropped — spans are fixed-size values so the flight recorder's ring
// copies them without allocating.
const maxSpanAttrs = 6

// Attr is one span attribute.
type Attr struct {
	Key   string
	Value string
}

// Span is one timed operation of a trace: a node in the span tree
// identified by (TraceID, ID), parented by Parent (0 for a root). Spans
// are created by StartSpan/StartLeaf and recorded into the context's
// SpanStore by End. The zero Parent/Error/attrs are omitted from the
// JSON form; IDs serialize as 16-hex-character strings.
type Span struct {
	TraceID  string
	ID       uint64
	Parent   uint64
	Name     string
	Start    time.Time
	Duration time.Duration
	// Error is the failure text of a span that ended in an error
	// (SetError); empty for OK spans.
	Error string

	attrs  [maxSpanAttrs]Attr
	nattrs int

	ref spanRef // sinks captured at start; zero for deserialized spans
}

// spanRef is the per-context span state: where ended spans go (the
// process flight recorder and/or a per-request collector) and the
// active span ID new spans parent under. One context value holds all
// three so the hot path pays a single Value lookup.
type spanRef struct {
	store  *SpanStore
	coll   *Collector
	parent uint64
}

type spanRefKey struct{}

func refFrom(ctx context.Context) spanRef {
	ref, _ := ctx.Value(spanRefKey{}).(spanRef)
	return ref
}

// WithSpans returns ctx recording ended spans into the store. A nil
// store returns ctx unchanged — span creation stays disabled (and
// free) for that request.
func WithSpans(ctx context.Context, store *SpanStore) context.Context {
	if store == nil {
		return ctx
	}
	ref := refFrom(ctx)
	ref.store = store
	return context.WithValue(ctx, spanRefKey{}, ref)
}

// SpansFrom returns the SpanStore ctx records into, nil when tracing is
// off for this context.
func SpansFrom(ctx context.Context) *SpanStore { return refFrom(ctx).store }

// WithCollector returns ctx additionally delivering every ended span to
// c — the worker side of the wire transport uses it to gather the spans
// of one request for shipping back to the coordinator.
func WithCollector(ctx context.Context, c *Collector) context.Context {
	if c == nil {
		return ctx
	}
	ref := refFrom(ctx)
	ref.coll = c
	return context.WithValue(ctx, spanRefKey{}, ref)
}

// WithParentSpan returns ctx under which new spans parent to the given
// span ID — used to splice a remote caller's span context (header or
// wire prefix) into the local tree. id 0 returns ctx unchanged.
func WithParentSpan(ctx context.Context, id uint64) context.Context {
	if id == 0 {
		return ctx
	}
	ref := refFrom(ctx)
	ref.parent = id
	return context.WithValue(ctx, spanRefKey{}, ref)
}

// ParentSpan returns the span ID new spans in ctx would parent under
// (the active span), 0 when there is none.
func ParentSpan(ctx context.Context) uint64 { return refFrom(ctx).parent }

var spanPool = sync.Pool{New: func() any { return new(Span) }}

// newSpanID returns a fresh non-zero span ID. Span IDs only need to be
// unique within a trace's lifetime in the flight recorder, so the
// cheap generator is the right one (trace IDs keep crypto/rand).
func newSpanID() uint64 {
	for {
		if id := rand.Uint64(); id != 0 {
			return id
		}
	}
}

// StartLeaf starts a span that will never be a parent: it returns only
// the *Span, not a derived context, so on hot paths (the engine's
// cache-hit fast path) a recorded span costs zero heap allocations —
// the span comes from a pool and End copies it into the ring by value.
// When ctx records no spans it returns nil, and every *Span method is
// nil-safe, so call sites need no recording checks.
func StartLeaf(ctx context.Context, name string) *Span {
	ref := refFrom(ctx)
	if ref.store == nil && ref.coll == nil {
		return nil
	}
	s := spanPool.Get().(*Span)
	s.TraceID = Trace(ctx)
	s.ID = newSpanID()
	s.Parent = ref.parent
	s.Name = name
	s.Start = time.Now()
	s.ref = ref
	return s
}

// StartSpan starts a span and returns a context under which child spans
// parent to it. When ctx records no spans it returns (ctx, nil) — the
// nil span's methods are all no-ops.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	s := StartLeaf(ctx, name)
	if s == nil {
		return ctx, nil
	}
	ref := s.ref
	ref.parent = s.ID
	return context.WithValue(ctx, spanRefKey{}, ref), s
}

// SetAttr attaches one attribute. Beyond the fixed capacity
// (maxSpanAttrs) attributes are silently dropped.
func (s *Span) SetAttr(key, value string) {
	if s == nil || s.nattrs >= maxSpanAttrs {
		return
	}
	s.attrs[s.nattrs] = Attr{Key: key, Value: value}
	s.nattrs++
}

// SetAttrInt is SetAttr for integers.
func (s *Span) SetAttrInt(key string, value int) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.Itoa(value))
}

// SetError marks the span failed. A nil error is ignored.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.Error = err.Error()
}

// Attrs returns the span's attributes in insertion order.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	return s.attrs[:s.nattrs]
}

// End stamps the duration, delivers the span to its context's sinks
// (flight recorder and/or collector) by value, and recycles it. The
// span must not be used after End.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.Duration = time.Since(s.Start)
	if s.ref.coll != nil {
		s.ref.coll.add(s)
	}
	if s.ref.store != nil {
		s.ref.store.add(s)
	}
	*s = Span{}
	spanPool.Put(s)
}

// RecordSpan records an already-measured interval as a span under ctx's
// trace and active parent — the retrofit path for code that measures
// durations itself (queue waits, synthetic slow-request roots). It is a
// no-op when ctx records no spans.
func RecordSpan(ctx context.Context, name string, start time.Time, d time.Duration, attrs ...Attr) {
	ref := refFrom(ctx)
	if ref.store == nil && ref.coll == nil {
		return
	}
	var s Span
	s.TraceID = Trace(ctx)
	s.ID = newSpanID()
	s.Parent = ref.parent
	s.Name = name
	s.Start = start
	s.Duration = d
	for _, a := range attrs {
		if s.nattrs >= maxSpanAttrs {
			break
		}
		s.attrs[s.nattrs] = a
		s.nattrs++
	}
	if ref.coll != nil {
		ref.coll.add(&s)
	}
	if ref.store != nil {
		ref.store.add(&s)
	}
}

// Collector gathers the ended spans of one request so they can be
// shipped across a process boundary (the wire transport's FrameDone
// payload). Safe for concurrent use.
type Collector struct {
	mu    sync.Mutex
	spans []Span
}

// maxCollectedSpans bounds one request's shipped spans; a pathological
// batch cannot bloat its FrameDone payload without bound.
const maxCollectedSpans = 512

func (c *Collector) add(s *Span) {
	c.mu.Lock()
	if len(c.spans) < maxCollectedSpans {
		c.spans = append(c.spans, *s)
	}
	c.mu.Unlock()
}

// Spans returns the collected spans (a copy).
func (c *Collector) Spans() []Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Span, len(c.spans))
	copy(out, c.spans)
	return out
}

// MarshalJSON encodes the collected spans as a JSON array, nil-safe
// ("[]" when empty).
func (c *Collector) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.Spans())
}

// FormatSpanID renders a span ID as the 16-hex-character wire form, ""
// for the zero ID.
func FormatSpanID(id uint64) string {
	if id == 0 {
		return ""
	}
	var b [16]byte
	const hexdigits = "0123456789abcdef"
	for i := 15; i >= 0; i-- {
		b[i] = hexdigits[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

// ParseSpanID parses the 16-hex form back to an ID; malformed or empty
// input returns 0 (no parent) — remote span context is advisory, never
// an error.
func ParseSpanID(s string) uint64 {
	if len(s) != 16 {
		return 0
	}
	var id uint64
	for i := 0; i < 16; i++ {
		c := s[i]
		var v uint64
		switch {
		case c >= '0' && c <= '9':
			v = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			v = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			v = uint64(c-'A') + 10
		default:
			return 0
		}
		id = id<<4 | v
	}
	return id
}

// spanJSON is the serialized form of a Span.
type spanJSON struct {
	TraceID    string            `json:"trace_id"`
	ID         string            `json:"id"`
	Parent     string            `json:"parent,omitempty"`
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	DurationMS float64           `json:"duration_ms"`
	Error      string            `json:"error,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// MarshalJSON renders the span in its wire/query form: hex IDs,
// duration in milliseconds, attributes as an object.
func (s Span) MarshalJSON() ([]byte, error) {
	out := spanJSON{
		TraceID:    s.TraceID,
		ID:         FormatSpanID(s.ID),
		Parent:     FormatSpanID(s.Parent),
		Name:       s.Name,
		Start:      s.Start,
		DurationMS: float64(s.Duration) / float64(time.Millisecond),
		Error:      s.Error,
	}
	if s.nattrs > 0 {
		out.Attrs = make(map[string]string, s.nattrs)
		for _, a := range s.attrs[:s.nattrs] {
			out.Attrs[a.Key] = a.Value
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes the wire form. Attributes beyond the fixed
// capacity are dropped deterministically (sorted key order).
func (s *Span) UnmarshalJSON(data []byte) error {
	var in spanJSON
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&in); err != nil {
		return err
	}
	if in.ID == "" {
		return fmt.Errorf("obs: span without an id")
	}
	id := ParseSpanID(in.ID)
	if id == 0 {
		return fmt.Errorf("obs: bad span id %q", in.ID)
	}
	*s = Span{
		TraceID:  in.TraceID,
		ID:       id,
		Parent:   ParseSpanID(in.Parent),
		Name:     in.Name,
		Start:    in.Start,
		Duration: time.Duration(in.DurationMS * float64(time.Millisecond)),
		Error:    in.Error,
	}
	if len(in.Attrs) > 0 {
		keys := make([]string, 0, len(in.Attrs))
		for k := range in.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if s.nattrs >= maxSpanAttrs {
				break
			}
			s.attrs[s.nattrs] = Attr{Key: k, Value: in.Attrs[k]}
			s.nattrs++
		}
	}
	return nil
}
