package obs

import (
	"strings"
	"testing"
)

const goodExposition = `# HELP rp_requests_total Requests served.
# TYPE rp_requests_total counter
rp_requests_total 42
# HELP rp_up Liveness.
# TYPE rp_up gauge
rp_up{shard="http://w1:1",quoted="a\"b\\c\nd"} 1
rp_up{shard="http://w2:2"} 0
# HELP rp_solve_seconds Solve latency.
# TYPE rp_solve_seconds histogram
rp_solve_seconds_bucket{solver="mb",le="0.005"} 2
rp_solve_seconds_bucket{solver="mb",le="0.1"} 3
rp_solve_seconds_bucket{solver="mb",le="+Inf"} 4
rp_solve_seconds_sum{solver="mb"} 1.5
rp_solve_seconds_count{solver="mb"} 4
rp_solve_seconds_bucket{solver="opt",le="0.005"} 0
rp_solve_seconds_bucket{solver="opt",le="0.1"} 0
rp_solve_seconds_bucket{solver="opt",le="+Inf"} 1
rp_solve_seconds_sum{solver="opt"} 9.25
rp_solve_seconds_count{solver="opt"} 1
`

func TestParseExpositionGood(t *testing.T) {
	fams, err := ParseExposition(strings.NewReader(goodExposition))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 3 {
		t.Fatalf("families = %d, want 3", len(fams))
	}
	if f := fams["rp_requests_total"]; f.Type != "counter" || f.Samples[0].Value != 42 {
		t.Fatalf("counter family = %+v", f)
	}
	up := fams["rp_up"]
	if got := up.Samples[0].Label("quoted"); got != "a\"b\\c\nd" {
		t.Fatalf("unescaped label = %q", got)
	}
	if up.Samples[1].Label("shard") != "http://w2:2" {
		t.Fatalf("shard label = %q", up.Samples[1].Label("shard"))
	}
	h := fams["rp_solve_seconds"]
	if h.Type != "histogram" || len(h.Samples) != 10 {
		t.Fatalf("histogram family = %+v", h)
	}
}

func TestParseExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"sample without family": `rp_x 1` + "\n",
		"TYPE without HELP":     "# TYPE rp_x counter\nrp_x 1\n",
		"HELP without TYPE":     "# HELP rp_x help\nrp_x 1\n",
		"mismatched TYPE name":  "# HELP rp_x help\n# TYPE rp_y counter\nrp_y 1\n",
		"duplicate family":      "# HELP rp_x h\n# TYPE rp_x counter\nrp_x 1\n# HELP rp_x h\n# TYPE rp_x counter\nrp_x 2\n",
		"foreign sample":        "# HELP rp_x h\n# TYPE rp_x counter\nrp_other 1\n",
		"bad escape":            "# HELP rp_x h\n# TYPE rp_x gauge\nrp_x{l=\"a\\tb\"} 1\n",
		"unterminated label":    "# HELP rp_x h\n# TYPE rp_x gauge\nrp_x{l=\"a} 1\n",
		"duplicate label":       "# HELP rp_x h\n# TYPE rp_x gauge\nrp_x{l=\"a\",l=\"b\"} 1\n",
		"bad value":             "# HELP rp_x h\n# TYPE rp_x gauge\nrp_x one\n",
		"bad metric name":       "# HELP rp_x h\n# TYPE rp_x gauge\nrp_x{} 1\n# HELP 9bad h\n# TYPE 9bad gauge\n",
		"summary type":          "# HELP rp_x h\n# TYPE rp_x summary\nrp_x 1\n",
		"histogram bare sample": "# HELP rp_h h\n# TYPE rp_h histogram\nrp_h 1\n",
		"bucket without le":     "# HELP rp_h h\n# TYPE rp_h histogram\nrp_h_bucket 1\nrp_h_sum 1\nrp_h_count 1\n",
		"non-monotonic buckets": "# HELP rp_h h\n# TYPE rp_h histogram\n" +
			"rp_h_bucket{le=\"1\"} 5\nrp_h_bucket{le=\"+Inf\"} 3\nrp_h_sum 1\nrp_h_count 3\n",
		"le not ascending": "# HELP rp_h h\n# TYPE rp_h histogram\n" +
			"rp_h_bucket{le=\"2\"} 1\nrp_h_bucket{le=\"1\"} 2\nrp_h_bucket{le=\"+Inf\"} 2\nrp_h_sum 1\nrp_h_count 2\n",
		"missing +Inf": "# HELP rp_h h\n# TYPE rp_h histogram\n" +
			"rp_h_bucket{le=\"1\"} 1\nrp_h_bucket{le=\"2\"} 2\nrp_h_sum 1\nrp_h_count 2\n",
		"Inf != count": "# HELP rp_h h\n# TYPE rp_h histogram\n" +
			"rp_h_bucket{le=\"+Inf\"} 2\nrp_h_sum 1\nrp_h_count 3\n",
		"missing sum": "# HELP rp_h h\n# TYPE rp_h histogram\n" +
			"rp_h_bucket{le=\"+Inf\"} 2\nrp_h_count 2\n",
		"missing count": "# HELP rp_h h\n# TYPE rp_h histogram\n" +
			"rp_h_bucket{le=\"+Inf\"} 2\nrp_h_sum 1\n",
	}
	for name, input := range cases {
		if _, err := ParseExposition(strings.NewReader(input)); err == nil {
			t.Errorf("%s: parser accepted invalid exposition:\n%s", name, input)
		}
	}
}

func TestParseExpositionTimestampAndComments(t *testing.T) {
	in := "# a plain comment survives\n" +
		"# HELP rp_x h\n# TYPE rp_x gauge\nrp_x 1 1700000000000\n"
	fams, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if fams["rp_x"].Samples[0].Value != 1 {
		t.Fatalf("value = %g", fams["rp_x"].Samples[0].Value)
	}
}
