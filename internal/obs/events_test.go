package obs

import (
	"context"
	"testing"
	"time"
)

func TestEventRingNil(t *testing.T) {
	var r *EventRing
	r.Emit(context.Background(), "x", "must not panic")
	if got := r.Events(EventFilter{}); got != nil {
		t.Fatalf("nil ring Events = %v, want nil", got)
	}
	if got := r.Counts(); got != nil {
		t.Fatalf("nil ring Counts = %v, want nil", got)
	}
}

func TestEventRingOverflow(t *testing.T) {
	r := NewEventRing(4, nil)
	for i := 0; i < 10; i++ {
		r.Emit(context.Background(), "tick", "event")
	}
	evs := r.Events(EventFilter{})
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want capacity 4", len(evs))
	}
	// The survivors are the newest four, oldest first, and their
	// sequence numbers expose the evicted history.
	for i, ev := range evs {
		if want := uint64(7 + i); ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, want)
		}
	}
	if r.Counts()["tick"] != 10 {
		t.Fatalf("counts[tick] = %d, want 10 (lifetime total survives eviction)", r.Counts()["tick"])
	}
}

func TestEventRingFiltering(t *testing.T) {
	r := NewEventRing(16, nil)
	r.Emit(context.Background(), "shard_joined", "w1 joined", "shard", "w1")
	r.Emit(context.Background(), "circuit_open", "w1 circuit opened")
	r.Emit(context.Background(), "shard_joined", "w2 joined", "shard", "w2")

	byType := r.Events(EventFilter{Type: "shard_joined"})
	if len(byType) != 2 {
		t.Fatalf("type filter kept %d events, want 2", len(byType))
	}
	if byType[0].Attrs["shard"] != "w1" || byType[1].Attrs["shard"] != "w2" {
		t.Fatalf("type filter order/attrs wrong: %+v", byType)
	}

	limited := r.Events(EventFilter{Limit: 1})
	if len(limited) != 1 || limited[0].Type != "shard_joined" || limited[0].Attrs["shard"] != "w2" {
		t.Fatalf("limit should keep the newest event, got %+v", limited)
	}

	if got := r.Events(EventFilter{Since: time.Now().Add(time.Hour)}); len(got) != 0 {
		t.Fatalf("future since kept %d events", len(got))
	}
	if got := r.Events(EventFilter{Since: time.Now().Add(-time.Hour)}); len(got) != 3 {
		t.Fatalf("past since kept %d events, want 3", len(got))
	}
}

func TestEventRingTraceID(t *testing.T) {
	r := NewEventRing(4, nil)
	ctx := WithTrace(context.Background(), "deadbeef")
	r.Emit(ctx, "job_failed", "job j1 failed")
	evs := r.Events(EventFilter{})
	if len(evs) != 1 || evs[0].TraceID != "deadbeef" {
		t.Fatalf("trace ID not captured: %+v", evs)
	}
}
