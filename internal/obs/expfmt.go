package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Family is one parsed metric family of a Prometheus text exposition.
type Family struct {
	Name string
	Help string
	Type string // "counter", "gauge", "histogram", "untyped"
	// Samples are the family's lines in exposition order. Histogram
	// families carry their _bucket/_sum/_count samples here.
	Samples []Sample
}

// Sample is one exposition sample line.
type Sample struct {
	// Name is the full sample name (for histograms: name_bucket,
	// name_sum or name_count).
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns the sample's value for one label name ("" if absent).
func (s Sample) Label(name string) string { return s.Labels[name] }

// ParseExposition strictly parses a Prometheus text-format exposition
// and validates its structure:
//
//   - every sample belongs to a # HELP + # TYPE family declared before
//     it, HELP first, names matching;
//   - family names are unique, metric and label names well-formed,
//     label values correctly escaped (\\, \", \n only), no duplicate
//     label names within a sample;
//   - histogram families satisfy the bucket invariants: every _bucket
//     has an le label, cumulative counts are non-decreasing over
//     ascending le, the last bucket is le="+Inf" and equals the
//     matching _count, and each labeled series has exactly one _sum and
//     _count.
//
// It returns the families keyed by name so callers can assert specific
// values on top of the structural checks.
func ParseExposition(r io.Reader) (map[string]*Family, error) {
	fams := map[string]*Family{}
	var cur *Family         // family samples currently attach to
	var pendingHelp *Family // HELP seen, TYPE not yet

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, ok := parseComment(line)
			if !ok {
				continue // plain comment, allowed by the format
			}
			switch kind {
			case "HELP":
				if pendingHelp != nil {
					return nil, fmt.Errorf("line %d: HELP %s follows HELP %s without a TYPE", lineNo, name, pendingHelp.Name)
				}
				if _, dup := fams[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate family %s", lineNo, name)
				}
				if !validMetricName(name) {
					return nil, fmt.Errorf("line %d: bad metric name %q", lineNo, name)
				}
				if rest == "" {
					return nil, fmt.Errorf("line %d: HELP %s without help text", lineNo, name)
				}
				pendingHelp = &Family{Name: name, Help: rest}
			case "TYPE":
				if pendingHelp == nil || pendingHelp.Name != name {
					return nil, fmt.Errorf("line %d: TYPE %s without a preceding HELP %s", lineNo, name, name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unsupported metric type %q for %s", lineNo, rest, name)
				}
				pendingHelp.Type = rest
				fams[name] = pendingHelp
				cur = pendingHelp
				pendingHelp = nil
			}
			continue
		}
		if pendingHelp != nil {
			return nil, fmt.Errorf("line %d: sample follows HELP %s without a TYPE", lineNo, pendingHelp.Name)
		}
		sample, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if cur == nil || !sampleBelongs(cur, sample.Name) {
			return nil, fmt.Errorf("line %d: sample %s outside its HELP/TYPE family", lineNo, sample.Name)
		}
		cur.Samples = append(cur.Samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if pendingHelp != nil {
		return nil, fmt.Errorf("HELP %s without a TYPE", pendingHelp.Name)
	}
	for _, f := range fams {
		if f.Type == "histogram" {
			if err := validateHistogram(f); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

// parseComment splits "# HELP name rest" / "# TYPE name rest". ok is
// false for plain comments.
func parseComment(line string) (kind, name, rest string, ok bool) {
	body, found := strings.CutPrefix(line, "# ")
	if !found {
		return "", "", "", false
	}
	kind, body, found = strings.Cut(body, " ")
	if !found || (kind != "HELP" && kind != "TYPE") {
		return "", "", "", false
	}
	name, rest, _ = strings.Cut(body, " ")
	return kind, name, strings.TrimSpace(rest), true
}

// sampleBelongs reports whether a sample name is legal inside the
// family: the bare name for scalar types, plus the _bucket/_sum/_count
// suffixed forms for histograms.
func sampleBelongs(f *Family, sample string) bool {
	if sample == f.Name {
		return f.Type != "histogram" // a histogram has no bare-name samples
	}
	if f.Type != "histogram" {
		return false
	}
	suffix, found := strings.CutPrefix(sample, f.Name)
	if !found {
		return false
	}
	return suffix == "_bucket" || suffix == "_sum" || suffix == "_count"
}

// parseSample parses one "name{labels} value [timestamp]" line.
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("bad sample name in %q", line)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		var err error
		rest, err = parseLabels(rest, s.Labels)
		if err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
	}
	if !strings.HasPrefix(rest, " ") {
		return s, fmt.Errorf("missing value separator in %q", line)
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 || len(fields) > 2 {
		return s, fmt.Errorf("want \"value [timestamp]\" after name in %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q in %q", fields[0], line)
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q in %q", fields[1], line)
		}
	}
	return s, nil
}

// parseLabels consumes a "{name=\"value\",...}" block from the front of
// s, filling labels, and returns the remainder.
func parseLabels(s string, labels map[string]string) (string, error) {
	s = s[1:] // consume '{'
	for {
		i := 0
		for i < len(s) && isNameChar(s[i], i == 0) {
			i++
		}
		name := s[:i]
		if name == "" || !validLabelName(name) {
			return s, fmt.Errorf("bad label name")
		}
		if _, dup := labels[name]; dup {
			return s, fmt.Errorf("duplicate label %s", name)
		}
		s = s[i:]
		if !strings.HasPrefix(s, `="`) {
			return s, fmt.Errorf("label %s without =\"value\"", name)
		}
		s = s[2:]
		var val strings.Builder
		for {
			if len(s) == 0 {
				return s, fmt.Errorf("unterminated value for label %s", name)
			}
			c := s[0]
			if c == '"' {
				s = s[1:]
				break
			}
			if c == '\\' {
				if len(s) < 2 {
					return s, fmt.Errorf("dangling escape in label %s", name)
				}
				switch s[1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return s, fmt.Errorf("bad escape \\%c in label %s", s[1], name)
				}
				s = s[2:]
				continue
			}
			val.WriteByte(c)
			s = s[1:]
		}
		labels[name] = val.String()
		switch {
		case strings.HasPrefix(s, ","):
			s = s[1:]
		case strings.HasPrefix(s, "}"):
			return s[1:], nil
		default:
			return s, fmt.Errorf("bad separator after label %s", name)
		}
	}
}

func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i == 0) {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	// Same shape as metric names minus the colon (reserved).
	if s == "" || strings.Contains(s, ":") {
		return false
	}
	return validMetricName(s)
}

// validateHistogram checks the bucket invariants of one histogram
// family, per labeled series (the label set minus le).
func validateHistogram(f *Family) error {
	type series struct {
		les    []float64
		counts []float64
		sum    int
		count  float64
		hasCnt bool
	}
	bySeries := map[string]*series{}
	get := func(labels map[string]string) *series {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var sig strings.Builder
		for _, k := range keys {
			sig.WriteString(k)
			sig.WriteByte('=')
			sig.WriteString(labels[k])
			sig.WriteByte(';')
		}
		s := bySeries[sig.String()]
		if s == nil {
			s = &series{}
			bySeries[sig.String()] = s
		}
		return s
	}
	for _, s := range f.Samples {
		ser := get(s.Labels)
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			leStr, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("histogram %s: bucket without le label", f.Name)
			}
			le, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				return fmt.Errorf("histogram %s: bad le %q", f.Name, leStr)
			}
			ser.les = append(ser.les, le)
			ser.counts = append(ser.counts, s.Value)
		case strings.HasSuffix(s.Name, "_sum"):
			ser.sum++
		case strings.HasSuffix(s.Name, "_count"):
			if ser.hasCnt {
				return fmt.Errorf("histogram %s: duplicate _count in one series", f.Name)
			}
			ser.hasCnt, ser.count = true, s.Value
		}
	}
	for _, ser := range bySeries {
		if len(ser.les) == 0 {
			return fmt.Errorf("histogram %s: series without buckets", f.Name)
		}
		for i := 1; i < len(ser.les); i++ {
			if ser.les[i] <= ser.les[i-1] {
				return fmt.Errorf("histogram %s: le values not ascending", f.Name)
			}
			if ser.counts[i] < ser.counts[i-1] {
				return fmt.Errorf("histogram %s: cumulative bucket counts decrease", f.Name)
			}
		}
		if !math.IsInf(ser.les[len(ser.les)-1], +1) {
			return fmt.Errorf("histogram %s: last bucket is not le=\"+Inf\"", f.Name)
		}
		if ser.sum != 1 {
			return fmt.Errorf("histogram %s: series has %d _sum samples, want 1", f.Name, ser.sum)
		}
		if !ser.hasCnt {
			return fmt.Errorf("histogram %s: series without _count", f.Name)
		}
		if ser.counts[len(ser.counts)-1] != ser.count {
			return fmt.Errorf("histogram %s: +Inf bucket (%g) != _count (%g)", f.Name,
				ser.counts[len(ser.counts)-1], ser.count)
		}
	}
	return nil
}
