package obs

import (
	"sync"
	"time"
)

// windowBucket is one interval's worth of counts. idx is the absolute
// interval index (unix time / interval) the slot currently belongs to —
// a slot whose idx is out of date is logically empty and is reset lazily
// the next time it is written or read.
type windowBucket struct {
	idx   int64
	total uint64
	bad   uint64
}

// Window is a sliding-window pair of counters (total events, bad
// events) held as a ring of per-interval buckets. There is no
// background goroutine: buckets are advanced lazily under the lock on
// Add and Sum, so an idle window costs nothing. Add is a mutex plus two
// integer adds — cheap enough for the request hot path — and Sum walks
// at most len(ring) buckets.
//
// The zero value is not usable; build one with NewWindow.
type Window struct {
	mu       sync.Mutex
	interval time.Duration
	buckets  []windowBucket
	now      func() time.Time
}

// NewWindow builds a window retaining span worth of history at interval
// granularity. now is the clock (nil = time.Now) — injectable so tests
// can advance time deterministically. The ring holds one extra bucket
// so a full span lookback still has complete data while the newest
// bucket is filling.
func NewWindow(span, interval time.Duration, now func() time.Time) *Window {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	if span < interval {
		span = interval
	}
	if now == nil {
		now = time.Now
	}
	n := int(span/interval) + 1
	return &Window{
		interval: interval,
		buckets:  make([]windowBucket, n),
		now:      now,
	}
}

// Span is the window's usable lookback horizon.
func (w *Window) Span() time.Duration {
	return time.Duration(len(w.buckets)-1) * w.interval
}

// Add records total events of which bad were bad, in the current
// interval bucket.
func (w *Window) Add(total, bad uint64) {
	idx := w.now().UnixNano() / int64(w.interval)
	slot := int(idx % int64(len(w.buckets)))
	w.mu.Lock()
	b := &w.buckets[slot]
	if b.idx != idx {
		b.idx, b.total, b.bad = idx, 0, 0
	}
	b.total += total
	b.bad += bad
	w.mu.Unlock()
}

// Sum totals the events of the trailing lookback duration (clamped to
// the window's span). The bucket straddling now is included, so a
// lookback of one interval sees between one and two intervals of data —
// the usual sliding-window approximation.
func (w *Window) Sum(lookback time.Duration) (total, bad uint64) {
	if lookback <= 0 {
		return 0, 0
	}
	if max := w.Span(); lookback > max {
		lookback = max
	}
	idx := w.now().UnixNano() / int64(w.interval)
	n := int64((lookback + w.interval - 1) / w.interval) // buckets to cover lookback
	oldest := idx - n                                    // include the partially-filled current bucket
	w.mu.Lock()
	for i := range w.buckets {
		b := &w.buckets[i]
		if b.idx >= oldest && b.idx <= idx {
			total += b.total
			bad += b.bad
		}
	}
	w.mu.Unlock()
	return total, bad
}

// Ratio is Sum expressed as bad/total over the lookback; a window with
// no events reports 0 (nothing observed is not an error condition).
func (w *Window) Ratio(lookback time.Duration) float64 {
	total, bad := w.Sum(lookback)
	if total == 0 {
		return 0
	}
	return float64(bad) / float64(total)
}
