package obs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestStartSpanParentsAndRecords(t *testing.T) {
	st := NewSpanStore(16)
	ctx := WithTrace(context.Background(), "trace-1")
	ctx = WithSpans(ctx, st)

	ctx2, root := StartSpan(ctx, "root")
	if root == nil {
		t.Fatal("StartSpan returned nil on a recording context")
	}
	rootID := root.ID
	if ParentSpan(ctx2) != rootID {
		t.Fatalf("derived ctx parent = %d, want root %d", ParentSpan(ctx2), rootID)
	}

	child := StartLeaf(ctx2, "child")
	child.SetAttr("k", "v")
	child.SetAttrInt("n", 7)
	child.SetError(errors.New("boom"))
	childID := child.ID
	child.End()
	root.End()

	spans := st.TraceSpans("trace-1")
	if len(spans) != 2 {
		t.Fatalf("TraceSpans = %d spans, want 2", len(spans))
	}
	byID := map[uint64]Span{}
	for _, s := range spans {
		byID[s.ID] = s
	}
	r, c := byID[rootID], byID[childID]
	if r.Parent != 0 || r.Name != "root" {
		t.Fatalf("root span = %+v", r)
	}
	if c.Parent != rootID || c.Name != "child" || c.Error != "boom" {
		t.Fatalf("child span = %+v", c)
	}
	attrs := c.Attrs()
	if len(attrs) != 2 || attrs[0] != (Attr{"k", "v"}) || attrs[1] != (Attr{"n", "7"}) {
		t.Fatalf("child attrs = %v", attrs)
	}
}

func TestSpanDisabledContextIsNilSafe(t *testing.T) {
	ctx := context.Background()
	ctx2, s := StartSpan(ctx, "x")
	if s != nil || ctx2 != ctx {
		t.Fatal("non-recording StartSpan must return (ctx, nil)")
	}
	leaf := StartLeaf(ctx, "y")
	if leaf != nil {
		t.Fatal("non-recording StartLeaf must return nil")
	}
	// All methods nil-safe.
	leaf.SetAttr("a", "b")
	leaf.SetAttrInt("n", 1)
	leaf.SetError(errors.New("x"))
	leaf.End()
	RecordSpan(ctx, "z", time.Now(), time.Millisecond)
}

func TestStartLeafZeroAlloc(t *testing.T) {
	st := NewSpanStore(1024)
	ctx := WithSpans(WithTrace(context.Background(), "alloc-trace"), st)
	allocs := testing.AllocsPerRun(1000, func() {
		s := StartLeaf(ctx, "hot")
		s.SetAttr("cached", "true")
		s.End()
	})
	if allocs != 0 {
		t.Fatalf("StartLeaf+SetAttr+End allocates %.1f/op, want 0", allocs)
	}
}

func TestSpanStoreWrapAndRetain(t *testing.T) {
	st := NewSpanStore(8)
	ctx := WithSpans(WithTrace(context.Background(), "keep"), st)
	StartLeaf(ctx, "slow-op").End()
	st.Retain("keep")

	// Wrap the main ring completely with other traffic.
	for i := 0; i < 20; i++ {
		c := WithSpans(WithTrace(context.Background(), fmt.Sprintf("t%d", i)), st)
		StartLeaf(c, "noise").End()
	}
	spans := st.TraceSpans("keep")
	if len(spans) != 1 || spans[0].Name != "slow-op" {
		t.Fatalf("retained trace lost after wrap: %v", spans)
	}
	// The same span still in both rings must not duplicate.
	st2 := NewSpanStore(8)
	c := WithSpans(WithTrace(context.Background(), "dup"), st2)
	StartLeaf(c, "op").End()
	st2.Retain("dup")
	if got := st2.TraceSpans("dup"); len(got) != 1 {
		t.Fatalf("span duplicated across rings: %d copies", len(got))
	}
}

func TestSpanStoreDropsUnderContention(t *testing.T) {
	st := NewSpanStore(8)
	st.mu.Lock()
	var s Span
	s.TraceID, s.ID, s.Name = "t", 1, "contended"
	st.add(&s)
	st.mu.Unlock()
	added, dropped := st.Stats()
	if added != 0 || dropped != 1 {
		t.Fatalf("Stats = (%d added, %d dropped), want (0, 1)", added, dropped)
	}
}

func TestSpanStoreTraces(t *testing.T) {
	st := NewSpanStore(32)
	ctx := WithTrace(context.Background(), "sum-1")
	ctx = WithSpans(ctx, st)
	ctx2, root := StartSpan(ctx, "http.request")
	StartLeaf(ctx2, "engine.solve").End()
	time.Sleep(time.Millisecond)
	root.End()

	traces := st.Traces()
	if len(traces) != 1 {
		t.Fatalf("Traces = %d, want 1", len(traces))
	}
	tr := traces[0]
	if tr.TraceID != "sum-1" || tr.Name != "http.request" || tr.Spans != 2 {
		t.Fatalf("summary = %+v", tr)
	}
	if tr.Duration <= 0 || tr.DurationMS <= 0 {
		t.Fatalf("summary duration not populated: %+v", tr)
	}
}

func TestSpanJSONRoundTrip(t *testing.T) {
	s := Span{
		TraceID:  "abc",
		ID:       0xdeadbeefcafef00d,
		Parent:   0x1122334455667788,
		Name:     "wire.batch",
		Start:    time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC),
		Duration: 1500 * time.Microsecond,
		Error:    "nope",
	}
	s.SetAttr("shard", "http://w1")
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Span
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.TraceID != s.TraceID || back.ID != s.ID || back.Parent != s.Parent ||
		back.Name != s.Name || !back.Start.Equal(s.Start) || back.Error != s.Error {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, s)
	}
	if d := back.Duration - s.Duration; d < -time.Microsecond || d > time.Microsecond {
		t.Fatalf("duration drifted: %v vs %v", back.Duration, s.Duration)
	}
	if a := back.Attrs(); len(a) != 1 || a[0] != (Attr{"shard", "http://w1"}) {
		t.Fatalf("attrs lost: %v", a)
	}
	if err := json.Unmarshal([]byte(`{"name":"x"}`), &back); err == nil {
		t.Fatal("span without id must not decode")
	}
}

func TestSpanIDFormatParse(t *testing.T) {
	for _, id := range []uint64{1, 0xdeadbeef, ^uint64(0)} {
		s := FormatSpanID(id)
		if len(s) != 16 {
			t.Fatalf("FormatSpanID(%d) = %q", id, s)
		}
		if got := ParseSpanID(s); got != id {
			t.Fatalf("ParseSpanID(%q) = %d, want %d", s, got, id)
		}
	}
	if FormatSpanID(0) != "" {
		t.Fatal("zero ID must format empty")
	}
	for _, bad := range []string{"", "xyz", "123", "zzzzzzzzzzzzzzzz", "00112233445566778"} {
		if ParseSpanID(bad) != 0 {
			t.Fatalf("ParseSpanID(%q) != 0", bad)
		}
	}
}

func TestCollectorGathersSpans(t *testing.T) {
	var coll Collector
	st := NewSpanStore(8)
	ctx := WithTrace(context.Background(), "w-trace")
	ctx = WithSpans(ctx, st)
	ctx = WithCollector(ctx, &coll)
	ctx2, root := StartSpan(ctx, "wire.batch")
	StartLeaf(ctx2, "engine.solve").End()
	root.End()

	got := coll.Spans()
	if len(got) != 2 {
		t.Fatalf("collector has %d spans, want 2", len(got))
	}
	for _, s := range got {
		if s.TraceID != "w-trace" {
			t.Fatalf("collected span lost trace: %+v", s)
		}
	}
	// Also recorded locally.
	if local := st.TraceSpans("w-trace"); len(local) != 2 {
		t.Fatalf("store has %d spans, want 2", len(local))
	}
	data, err := json.Marshal(&coll)
	if err != nil {
		t.Fatal(err)
	}
	var back []Span
	if err := json.Unmarshal(data, &back); err != nil || len(back) != 2 {
		t.Fatalf("collector JSON round trip: %v, %d spans", err, len(back))
	}
}

func TestRecordSpanAndAddSpan(t *testing.T) {
	st := NewSpanStore(8)
	ctx := WithSpans(WithTrace(context.Background(), "r"), st)
	start := time.Now().Add(-time.Second)
	RecordSpan(ctx, "engine.queue_wait", start, 250*time.Millisecond, Attr{"solver", "greedy"})
	spans := st.TraceSpans("r")
	if len(spans) != 1 || spans[0].Name != "engine.queue_wait" || spans[0].Duration != 250*time.Millisecond {
		t.Fatalf("RecordSpan: %v", spans)
	}

	// AddSpan imports a remote span verbatim.
	st.AddSpan(Span{TraceID: "r", ID: 42, Parent: spans[0].ID, Name: "wire.batch"})
	spans = st.TraceSpans("r")
	if len(spans) != 2 {
		t.Fatalf("AddSpan not visible: %v", spans)
	}
}

func TestWithParentSpanSplicesRemoteContext(t *testing.T) {
	st := NewSpanStore(8)
	ctx := WithSpans(WithTrace(context.Background(), "x"), st)
	ctx = WithParentSpan(ctx, 99)
	s := StartLeaf(ctx, "child")
	if s.Parent != 99 {
		t.Fatalf("parent = %d, want 99", s.Parent)
	}
	s.End()
	if WithParentSpan(ctx, 0) != ctx {
		t.Fatal("WithParentSpan(0) must be a no-op")
	}
}

func TestReadGoRuntime(t *testing.T) {
	stats := ReadGoRuntime()
	if stats.Goroutines <= 0 {
		t.Fatalf("goroutines = %d", stats.Goroutines)
	}
	if stats.HeapBytes <= 0 {
		t.Fatalf("heap bytes = %d", stats.HeapBytes)
	}
	gp := stats.GCPause
	if len(gp.Bounds) == 0 || len(gp.Counts) != len(gp.Bounds)+1 {
		t.Fatalf("GC pause snapshot malformed: %d bounds, %d counts", len(gp.Bounds), len(gp.Counts))
	}
	var total uint64
	for _, c := range gp.Counts {
		total += c
	}
	if total != gp.Count {
		t.Fatalf("GC pause counts sum %d != Count %d", total, gp.Count)
	}
}
