package obs

import (
	"context"
	"log/slog"
	"sync"
	"time"
)

// Event is one structured cluster state transition: a shard joining or
// expiring, a circuit opening, a wire downgrade, a job failing, an
// alert firing. Events are rare and operationally significant — the
// journal is the "what changed?" companion to the flight recorder's
// "where did the time go?".
type Event struct {
	// Seq is a process-lifetime monotone sequence number; it survives
	// ring wraparound, so gaps reveal evicted history.
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	// Type is a stable machine-readable kind: shard_joined, shard_left,
	// shard_expired, circuit_open, circuit_half_open, circuit_closed,
	// wire_fallback, wire_redial, job_failed, alert_fired,
	// alert_resolved.
	Type string `json:"type"`
	Msg  string `json:"msg"`
	// TraceID links the event to the request that triggered it, when
	// one was in flight.
	TraceID string            `json:"trace_id,omitempty"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// DefaultEventCapacity is the default journal size.
const DefaultEventCapacity = 1024

// EventRing is a bounded in-memory journal of cluster events, mirroring
// SpanStore's ring design. Unlike the span hot path, appends take the
// lock unconditionally: events are rare (state transitions, not
// requests) and must not be lossy under momentary contention. Each
// append also lands on the structured logger, so the journal and the
// log stream tell one story.
type EventRing struct {
	mu   sync.Mutex
	ring []Event
	next int // ring write cursor
	n    int // events in ring (≤ len(ring))
	seq  uint64

	// counts holds process-lifetime totals per event type — the ring
	// forgets, rp_cluster_events_total does not.
	counts map[string]uint64

	logger *slog.Logger
}

// NewEventRing returns a journal holding the most recent capacity
// events (DefaultEventCapacity when capacity <= 0). logger may be nil.
func NewEventRing(capacity int, logger *slog.Logger) *EventRing {
	if capacity <= 0 {
		capacity = DefaultEventCapacity
	}
	return &EventRing{
		ring:   make([]Event, capacity),
		counts: make(map[string]uint64),
		logger: logger,
	}
}

// Emit records one event. attrs are alternating key/value pairs (an
// odd trailing key is dropped); the trace ID is taken from ctx when one
// is attached. Safe for a nil receiver, so call sites need no guards.
func (r *EventRing) Emit(ctx context.Context, typ, msg string, attrs ...string) {
	if r == nil {
		return
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ev := Event{Time: time.Now(), Type: typ, Msg: msg, TraceID: Trace(ctx)}
	if len(attrs) >= 2 {
		ev.Attrs = make(map[string]string, len(attrs)/2)
		for i := 0; i+1 < len(attrs); i += 2 {
			ev.Attrs[attrs[i]] = attrs[i+1]
		}
	}
	r.mu.Lock()
	r.seq++
	ev.Seq = r.seq
	r.ring[r.next] = ev
	r.next = (r.next + 1) % len(r.ring)
	if r.n < len(r.ring) {
		r.n++
	}
	r.counts[typ]++
	r.mu.Unlock()
	if r.logger != nil {
		args := make([]any, 0, 6+2*len(ev.Attrs))
		args = append(args, "type", typ, "seq", ev.Seq)
		if ev.TraceID != "" {
			args = append(args, "trace_id", ev.TraceID)
		}
		for k, v := range ev.Attrs {
			args = append(args, k, v)
		}
		r.logger.LogAttrs(ctx, slog.LevelInfo, "cluster event: "+msg, argsToAttrs(args)...)
	}
}

func argsToAttrs(args []any) []slog.Attr {
	attrs := make([]slog.Attr, 0, len(args)/2)
	for i := 0; i+1 < len(args); i += 2 {
		k, _ := args[i].(string)
		attrs = append(attrs, slog.Any(k, args[i+1]))
	}
	return attrs
}

// EventFilter narrows an Events query. The zero value selects
// everything the ring still holds.
type EventFilter struct {
	// Type keeps only events of this exact type ("" keeps all).
	Type string
	// Since keeps only events at or after this instant.
	Since time.Time
	// Limit caps the result to the most recent Limit events (0 = all).
	Limit int
}

// Events returns matching events, oldest first.
func (r *EventRing) Events(f EventFilter) []Event {
	if r == nil {
		return nil
	}
	var out []Event
	r.mu.Lock()
	for i := 0; i < r.n; i++ {
		ev := &r.ring[(r.next-r.n+i+len(r.ring))%len(r.ring)]
		if f.Type != "" && ev.Type != f.Type {
			continue
		}
		if !f.Since.IsZero() && ev.Time.Before(f.Since) {
			continue
		}
		out = append(out, *ev)
	}
	r.mu.Unlock()
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[len(out)-f.Limit:]
	}
	return out
}

// Counts copies the process-lifetime per-type totals — the source of
// rp_cluster_events_total.
func (r *EventRing) Counts() map[string]uint64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make(map[string]uint64, len(r.counts))
	for k, v := range r.counts {
		out[k] = v
	}
	r.mu.Unlock()
	return out
}
