package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
)

// ParseLevel maps a -log-level flag value ("debug", "info", "warn",
// "error", case-insensitive) to a slog level.
func ParseLevel(s string) (slog.Level, error) {
	var l slog.Level
	if err := l.UnmarshalText([]byte(s)); err != nil {
		return 0, fmt.Errorf("obs: bad log level %q (want debug|info|warn|error)", s)
	}
	return l, nil
}

// NewLogger builds the daemons' logger: format is "text" or "json"
// (the -log-format flag), and every record emitted with a context that
// carries a trace ID gains a trace_id attribute automatically.
func NewLogger(w io.Writer, format string, level slog.Level) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	switch format {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: bad log format %q (want text|json)", format)
	}
	return slog.New(traceHandler{h}), nil
}

// traceHandler decorates records with the context's trace ID, so call
// sites never thread it by hand.
type traceHandler struct{ inner slog.Handler }

func (t traceHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return t.inner.Enabled(ctx, level)
}

func (t traceHandler) Handle(ctx context.Context, r slog.Record) error {
	if id := Trace(ctx); id != "" {
		r.AddAttrs(slog.String("trace_id", id))
	}
	return t.inner.Handle(ctx, r)
}

func (t traceHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return traceHandler{t.inner.WithAttrs(attrs)}
}

func (t traceHandler) WithGroup(name string) slog.Handler {
	return traceHandler{t.inner.WithGroup(name)}
}

// NopLogger returns a logger that discards everything — the default
// wherever a Logger option is left nil, so library code can log
// unconditionally. (slog.DiscardHandler is Go 1.24+; this module still
// builds with 1.23.)
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }

type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }
