package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency bounds in seconds: 500µs to 60s,
// roughly geometric. They cover everything from a cached solve (~µs,
// landing in the first bucket) to a branch-and-bound campaign row.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram is a fixed-bucket latency histogram: lock-free Observe
// (atomic adds only, zero allocations), snapshot on demand. The bounds
// are upper edges in seconds; observations above the last bound land in
// the implicit +Inf bucket.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Int64    // nanoseconds
}

// NewHistogram builds a histogram over the given ascending bounds
// (seconds); nil selects DefBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s := d.Seconds()
	i := 0
	for i < len(h.bounds) && s > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
}

// HistogramSnapshot is a point-in-time copy of a histogram, internally
// consistent by construction: Count is the sum of Counts, so the
// rendered +Inf cumulative bucket always equals _count.
type HistogramSnapshot struct {
	// Bounds are the ascending bucket upper edges in seconds; the +Inf
	// bucket is implied.
	Bounds []float64
	// Counts holds per-bucket (non-cumulative) observation counts,
	// len(Bounds)+1 with the overflow bucket last.
	Counts []uint64
	// Count is the total number of observations.
	Count uint64
	// Sum is the total observed time in seconds.
	Sum float64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    time.Duration(h.sum.Load()).Seconds(),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// HistogramVec is a set of Histograms keyed by one label value (solver
// name, shard address, ...). The hot path — an existing label — takes a
// read lock and allocates nothing.
type HistogramVec struct {
	bounds []float64
	mu     sync.RWMutex
	m      map[string]*Histogram
}

// NewHistogramVec builds an empty labeled histogram family over the
// given bounds (nil = DefBuckets).
func NewHistogramVec(bounds []float64) *HistogramVec {
	return &HistogramVec{bounds: bounds, m: map[string]*Histogram{}}
}

// Observe records one duration under the label.
func (v *HistogramVec) Observe(label string, d time.Duration) {
	v.mu.RLock()
	h := v.m[label]
	v.mu.RUnlock()
	if h == nil {
		v.mu.Lock()
		h = v.m[label]
		if h == nil {
			h = NewHistogram(v.bounds)
			v.m[label] = h
		}
		v.mu.Unlock()
	}
	h.Observe(d)
}

// Snapshot copies every label's histogram.
func (v *HistogramVec) Snapshot() map[string]HistogramSnapshot {
	v.mu.RLock()
	hs := make(map[string]*Histogram, len(v.m))
	for k, h := range v.m {
		hs[k] = h
	}
	v.mu.RUnlock()
	out := make(map[string]HistogramSnapshot, len(hs))
	for k, h := range hs {
		out[k] = h.Snapshot()
	}
	return out
}
