package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanStore is the process flight recorder: a bounded ring of the most
// recent spans, cheap enough to leave on in production. Writes use
// TryLock — under contention a span is dropped and counted rather than
// making the hot path wait, so the recorder can never become the
// bottleneck it is meant to diagnose. A smaller secondary ring holds
// retained traces (slow requests) that must survive ring pressure.
type SpanStore struct {
	mu   sync.Mutex
	ring []Span
	next int // ring write cursor
	n    int // spans in ring (≤ len(ring))

	// retained holds spans of traces pinned by Retain — slow-request
	// traces survive even when the main ring has long since wrapped.
	retained     []Span
	retainedNext int
	retainedN    int

	added   atomic.Uint64
	dropped atomic.Uint64
}

// DefaultSpanCapacity is the default flight-recorder size.
const DefaultSpanCapacity = 4096

// NewSpanStore returns a flight recorder holding the most recent
// capacity spans (DefaultSpanCapacity when capacity <= 0), plus a
// retained ring a quarter that size for pinned traces.
func NewSpanStore(capacity int) *SpanStore {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	retained := capacity / 4
	if retained < 64 {
		retained = 64
	}
	return &SpanStore{
		ring:     make([]Span, capacity),
		retained: make([]Span, retained),
	}
}

// add copies the span into the ring. Contended writes drop instead of
// blocking.
func (st *SpanStore) add(s *Span) {
	if !st.mu.TryLock() {
		st.dropped.Add(1)
		return
	}
	st.ring[st.next] = *s
	st.ring[st.next].ref = spanRef{}
	st.next = (st.next + 1) % len(st.ring)
	if st.n < len(st.ring) {
		st.n++
	}
	st.mu.Unlock()
	st.added.Add(1)
}

// AddSpan records an externally produced span (one shipped back from a
// worker over the wire) into the recorder. Unlike the hot-path add it
// waits for the lock — imports are rare and must not be lossy.
func (st *SpanStore) AddSpan(s Span) {
	s.ref = spanRef{}
	st.mu.Lock()
	st.ring[st.next] = s
	st.next = (st.next + 1) % len(st.ring)
	if st.n < len(st.ring) {
		st.n++
	}
	st.mu.Unlock()
	st.added.Add(1)
}

// Retain pins a trace: its spans currently in the main ring are copied
// into the retained ring, where only other retained traces can evict
// them. Used for slow requests, which must stay inspectable long after
// ordinary traffic has wrapped the recorder.
func (st *SpanStore) Retain(traceID string) {
	if traceID == "" {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	for i := 0; i < st.n; i++ {
		s := &st.ring[st.ringIndex(i)]
		if s.TraceID != traceID {
			continue
		}
		st.retained[st.retainedNext] = *s
		st.retainedNext = (st.retainedNext + 1) % len(st.retained)
		if st.retainedN < len(st.retained) {
			st.retainedN++
		}
	}
}

// ringIndex maps age order (0 = oldest live span) to a ring offset.
func (st *SpanStore) ringIndex(i int) int {
	return (st.next - st.n + i + len(st.ring)) % len(st.ring)
}

// TraceSpans returns every recorded span of the trace — main ring and
// retained ring merged, deduplicated by span ID, ordered by start time.
func (st *SpanStore) TraceSpans(traceID string) []Span {
	if traceID == "" {
		return nil
	}
	var out []Span
	seen := make(map[uint64]bool)
	st.mu.Lock()
	for i := 0; i < st.n; i++ {
		s := &st.ring[st.ringIndex(i)]
		if s.TraceID == traceID && !seen[s.ID] {
			seen[s.ID] = true
			out = append(out, *s)
		}
	}
	for i := 0; i < st.retainedN; i++ {
		s := &st.retained[i]
		if s.TraceID == traceID && !seen[s.ID] {
			seen[s.ID] = true
			out = append(out, *s)
		}
	}
	st.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// TraceSummary is one trace as listed by Traces: identity plus the
// shape of its root (or earliest) span.
type TraceSummary struct {
	TraceID  string        `json:"trace_id"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"-"`
	Spans    int           `json:"spans"`
	Error    bool          `json:"error,omitempty"`

	// DurationMS mirrors Duration for the JSON form.
	DurationMS float64 `json:"duration_ms"`
}

// Traces summarizes the recorder's distinct traces, most recent first.
// The summary's name and duration come from the trace's root span when
// one is recorded (a span with no parent), else its longest span.
func (st *SpanStore) Traces() []TraceSummary {
	byTrace := make(map[string]*TraceSummary)
	rooted := make(map[string]bool)
	seen := make(map[uint64]bool) // a retained span may still sit in the main ring too
	var order []string
	collect := func(s *Span) {
		if s.TraceID == "" || seen[s.ID] {
			return
		}
		seen[s.ID] = true
		sum := byTrace[s.TraceID]
		if sum == nil {
			sum = &TraceSummary{TraceID: s.TraceID, Name: s.Name, Start: s.Start, Duration: s.Duration}
			byTrace[s.TraceID] = sum
			order = append(order, s.TraceID)
		}
		sum.Spans++
		if s.Error != "" {
			sum.Error = true
		}
		if s.Start.Before(sum.Start) {
			sum.Start = s.Start
		}
		// The root span names the trace; without one, the longest span
		// is the best stand-in.
		switch {
		case s.Parent == 0:
			rooted[s.TraceID] = true
			sum.Name = s.Name
			sum.Duration = s.Duration
		case !rooted[s.TraceID] && s.Duration > sum.Duration:
			sum.Name = s.Name
			sum.Duration = s.Duration
		}
	}
	st.mu.Lock()
	for i := 0; i < st.retainedN; i++ {
		collect(&st.retained[i])
	}
	for i := 0; i < st.n; i++ {
		collect(&st.ring[st.ringIndex(i)])
	}
	st.mu.Unlock()
	out := make([]TraceSummary, 0, len(order))
	for _, id := range order {
		sum := byTrace[id]
		sum.DurationMS = float64(sum.Duration) / float64(time.Millisecond)
		out = append(out, *sum)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	return out
}

// Record is the store-direct form of RecordSpan for callers that hold
// the store but no recording context.
func (st *SpanStore) Record(s Span) {
	if s.ID == 0 {
		s.ID = newSpanID()
	}
	st.AddSpan(s)
}

// Stats returns the recorder's lifetime added and dropped counts —
// dropped feeds rp_obs_spans_dropped_total.
func (st *SpanStore) Stats() (added, dropped uint64) {
	return st.added.Load(), st.dropped.Load()
}
