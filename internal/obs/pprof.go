package obs

import (
	"net/http"
	"net/http/pprof"
)

// RegisterPprof mounts net/http/pprof's handlers on mux under
// /debug/pprof/. The daemons call it only behind the -pprof flag and
// register the handlers explicitly — nothing here touches
// http.DefaultServeMux, so an un-flagged daemon exposes no profiling
// surface at all.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
