package core

// This file implements the flow quantities of Section 4.1, used both by the
// optimal Multiple/homogeneous algorithm and by validation utilities.

// TotalFlows returns tflow: for every vertex v, the total number of
// requests issued in subtree(v) (tflow_v = Σ r_i over clients below v,
// including v itself if it is a client).
func (in *Instance) TotalFlows() []int64 {
	t := in.Tree
	tf := make([]int64, t.Len())
	for _, v := range t.PostOrder() {
		if t.IsClient(v) {
			tf[v] = in.R[v]
			continue
		}
		for _, c := range t.Children(v) {
			tf[v] += tf[c]
		}
	}
	return tf
}

// CanonicalFlows computes the canonical flow cflow and the saturated-node
// structure of Section 4.1.3 for a homogeneous capacity w: processing
// vertices bottom-up, a vertex whose incoming flow reaches w is "saturated"
// (it would host a fully used replica) and forwards flow - w upwards.
// It returns the canonical flow per vertex, the saturated set as a boolean
// vector, and nsn (the number of saturated vertices in each subtree).
func (in *Instance) CanonicalFlows(w int64) (cflow []int64, saturated []bool, nsn []int) {
	t := in.Tree
	cflow = make([]int64, t.Len())
	saturated = make([]bool, t.Len())
	nsn = make([]int, t.Len())
	for _, v := range t.PostOrder() {
		if t.IsClient(v) {
			cflow[v] = in.R[v]
			continue
		}
		var f int64
		x := 0
		for _, c := range t.Children(v) {
			f += cflow[c]
			x += nsn[c]
		}
		if w > 0 && f >= w {
			saturated[v] = true
			cflow[v] = f - w
			nsn[v] = x + 1
		} else {
			cflow[v] = f
			nsn[v] = x
		}
	}
	return cflow, saturated, nsn
}

// ResidualFlows returns, for every vertex v, the number of requests issued
// in subtree(v) that the solution serves at a server strictly above v (the
// flow of §4.1.3 for a given placement: flow_v = tflow_v − Σ loads of
// servers in subtree(v)).
func (sol *Solution) ResidualFlows(in *Instance) []int64 {
	t := in.Tree
	loads := sol.ServerLoads(t.Len())
	tf := in.TotalFlows()
	served := make([]int64, t.Len())
	for _, v := range t.PostOrder() {
		served[v] = loads[v]
		for _, c := range t.Children(v) {
			served[v] += served[c]
		}
	}
	out := make([]int64, t.Len())
	for v := range out {
		out[v] = tf[v] - served[v]
	}
	return out
}
