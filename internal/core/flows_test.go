package core

import (
	"testing"
	"testing/quick"

	"repro/internal/tree"
)

// randomInstanceFor builds a deterministic random-ish instance from quick
// inputs without importing gen (which would create an import cycle in
// tests' spirit: gen depends on core).
func randomInstanceFor(seed int64, size uint8, w int64) *Instance {
	n := int(size%12) + 2
	b := tree.NewBuilder()
	nodes := []int{b.AddRoot()}
	s := seed
	next := func(mod int) int {
		s = s*6364136223846793005 + 1442695040888963407
		v := int((s >> 33) % int64(mod))
		if v < 0 {
			v += mod
		}
		return v
	}
	for i := 1; i < n; i++ {
		nodes = append(nodes, b.AddNode(nodes[next(len(nodes))]))
	}
	var clients []int
	for i := 0; i < n+2; i++ {
		clients = append(clients, b.AddClient(nodes[next(len(nodes))]))
	}
	in := NewInstance(b.MustBuild())
	for _, j := range nodes {
		in.W[j] = w
		in.S[j] = 1
	}
	for _, c := range clients {
		in.R[c] = int64(next(50))
	}
	return in
}

// TestQuickCanonicalFlowLemmas property-tests the Section 4.1.3 flow
// identities on random instances: Lemma 2 (cflow = tflow − nsn·W),
// Proposition 1 (non-saturated nodes carry cflow < W) and Corollary 1
// (tflow ≥ nsn·W).
func TestQuickCanonicalFlowLemmas(t *testing.T) {
	f := func(seed int64, size uint8, wRaw uint8) bool {
		w := int64(wRaw%40) + 1
		in := randomInstanceFor(seed, size, w)
		tf := in.TotalFlows()
		cflow, sat, nsn := in.CanonicalFlows(w)
		for v := 0; v < in.Tree.Len(); v++ {
			if cflow[v] != tf[v]-int64(nsn[v])*w { // Lemma 2
				return false
			}
			if tf[v] < int64(nsn[v])*w { // Corollary 1
				return false
			}
			if in.Tree.IsInternal(v) && !sat[v] && cflow[v] >= w { // Prop. 1
				return false
			}
			if in.Tree.IsClient(v) && (sat[v] || nsn[v] != 0) {
				return false
			}
		}
		// The root's canonical flow equals total requests minus W per
		// saturated node.
		root := in.Tree.Root()
		return cflow[root] == in.TotalRequests()-int64(nsn[root])*w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickResidualFlowsOfValidSolutions: for any valid Multiple solution
// (built by serving everything at the root when feasible), residuals are
// non-negative everywhere and zero at the root.
func TestQuickResidualFlows(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		in := randomInstanceFor(seed, size, 1<<40) // enormous capacity
		sol := NewSolution(in.Tree.Len())
		root := in.Tree.Root()
		for _, c := range in.Tree.Clients() {
			if in.R[c] > 0 {
				sol.AddPortion(c, root, in.R[c])
			}
		}
		if err := sol.Validate(in, Multiple); err != nil {
			return false
		}
		rf := sol.ResidualFlows(in)
		for v := 0; v < in.Tree.Len(); v++ {
			if rf[v] < 0 {
				return false
			}
		}
		// Serving everything at the root leaves residual = tflow below it.
		tf := in.TotalFlows()
		for v := 0; v < in.Tree.Len(); v++ {
			if v == root {
				if rf[v] != 0 {
					return false
				}
			} else if rf[v] != tf[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickTrivialBoundBelowOptimalLoad: ⌈Σr/W⌉ never exceeds the replica
// count of the all-nodes placement when that placement is feasible.
func TestQuickTrivialBound(t *testing.T) {
	f := func(seed int64, size uint8, wRaw uint8) bool {
		w := int64(wRaw%40) + 1
		in := randomInstanceFor(seed, size, w)
		lb := in.TrivialLowerBound()
		// The bound can never exceed the total requests (each replica
		// serves at least one request in a minimal solution).
		if lb > in.TotalRequests() {
			return false
		}
		return lb >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
