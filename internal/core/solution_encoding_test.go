package core

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestSolutionJSONRoundTrip(t *testing.T) {
	in, nodes, clients := star(2, []int64{3, 4}, 10)
	sol := NewSolution(in.Tree.Len())
	sol.AddPortion(clients[0], nodes[1], 2)
	sol.AddPortion(clients[0], nodes[0], 1)
	sol.AddPortion(clients[1], nodes[0], 4)
	sol.DeclareReplica(nodes[2])

	data, err := json.Marshal(sol)
	if err != nil {
		t.Fatal(err)
	}
	var back Solution
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Replicas(), sol.Replicas()) {
		t.Errorf("replicas: %v vs %v", back.Replicas(), sol.Replicas())
	}
	for c := range sol.Assign {
		if len(sol.Assign[c]) != len(back.Assign[c]) {
			t.Fatalf("client %d portions differ", c)
		}
	}
	if err := back.Validate(in, Multiple); err != nil {
		t.Errorf("decoded solution invalid: %v", err)
	}
}

func TestSolutionJSONRejectsBad(t *testing.T) {
	cases := []string{
		`{`,
		`{"vertices":0}`,
		`{"vertices":3,"assign":[{"client":9,"portions":[]}]}`,
		`{"vertices":3,"assign":[{"client":1,"portions":[{"Server":9,"Load":1}]}]}`,
		`{"vertices":3,"assign":[{"client":1,"portions":[{"Server":0,"Load":0}]}]}`,
		`{"vertices":3,"extra_replicas":[7]}`,
	}
	for i, src := range cases {
		var s Solution
		if err := json.Unmarshal([]byte(src), &s); err == nil {
			t.Errorf("case %d: want error for %s", i, src)
		}
	}
}

func TestSolutionJSONEmpty(t *testing.T) {
	sol := NewSolution(4)
	data, err := json.Marshal(sol)
	if err != nil {
		t.Fatal(err)
	}
	var back Solution
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.ReplicaCount() != 0 || len(back.Assign) != 4 {
		t.Errorf("empty round trip broken: %v", back)
	}
}
