package core

import "repro/internal/tree"

// This file builds the pedagogical instances of Section 3 (Figures 1-5).
// They are exported because the exact solvers, heuristics and examples all
// exercise them; each constructor documents the paper's claim about it.

// Figure1 builds the two-node chain of Figure 1 (s1 child of root s2, both
// with W = 1) in one of three variants:
//
//	variant "a": one client with 1 request  (all policies solvable)
//	variant "b": two clients with 1 request (Upwards/Multiple only)
//	variant "c": one client with 2 requests (Multiple only)
//
// It returns the instance with s_j = 1 (Replica Counting).
func Figure1(variant byte) *Instance {
	b := tree.NewBuilder()
	s2 := b.AddRoot()
	s1 := b.AddNode(s2)
	var clients []int
	switch variant {
	case 'a':
		clients = []int{b.AddClient(s1)}
	case 'b':
		clients = []int{b.AddClient(s1), b.AddClient(s1)}
	case 'c':
		clients = []int{b.AddClient(s1)}
	default:
		panic("core: Figure1 variant must be 'a', 'b' or 'c'")
	}
	in := NewInstance(b.MustBuild())
	in.W[s1], in.W[s2] = 1, 1
	in.S[s1], in.S[s2] = 1, 1
	for _, c := range clients {
		in.R[c] = 1
	}
	if variant == 'c' {
		in.R[clients[0]] = 2
	}
	return in
}

// Figure2 builds the Upwards-versus-Closest gap instance: 2n+2 internal
// nodes of capacity W = n and 2n+1 unit clients arranged so that Upwards
// needs 3 replicas while Closest needs n+2.
//
// Topology (matching the figure): the root s_{2n+2} has one client child
// and one node child s_{2n+1}; s_{2n+1} has 2n node children s_1..s_{2n},
// each with one unit client.
func Figure2(n int) *Instance {
	if n < 1 {
		panic("core: Figure2 requires n >= 1")
	}
	b := tree.NewBuilder()
	root := b.AddRoot() // s_{2n+2}
	crt := b.AddClient(root)
	mid := b.AddNode(root) // s_{2n+1}
	leaves := make([]int, 0, 2*n)
	clients := []int{crt}
	for i := 0; i < 2*n; i++ {
		s := b.AddNode(mid)
		leaves = append(leaves, s)
		clients = append(clients, b.AddClient(s))
	}
	in := NewInstance(b.MustBuild())
	for _, s := range append([]int{root, mid}, leaves...) {
		in.W[s] = int64(n)
		in.S[s] = 1
	}
	for _, c := range clients {
		in.R[c] = 1
	}
	return in
}

// Figure3 builds the homogeneous Multiple-versus-Upwards instance: root r
// with a client of n requests and n children s_j; each s_j has children v_j
// and w_j; v_j has a client of n requests, w_j a client of n+1 requests.
// All 3n+1 internal nodes have W = 2n. Multiple needs n+1 replicas,
// Upwards needs 2n.
func Figure3(n int) *Instance {
	if n < 1 {
		panic("core: Figure3 requires n >= 1")
	}
	b := tree.NewBuilder()
	r := b.AddRoot()
	nodes := []int{r}
	clientReqs := map[int]int64{b.AddClient(r): int64(n)}
	for j := 0; j < n; j++ {
		s := b.AddNode(r)
		v := b.AddNode(s)
		w := b.AddNode(s)
		nodes = append(nodes, s, v, w)
		clientReqs[b.AddClient(v)] = int64(n)
		clientReqs[b.AddClient(w)] = int64(n + 1)
	}
	in := NewInstance(b.MustBuild())
	for _, s := range nodes {
		in.W[s] = int64(2 * n)
		in.S[s] = 1
	}
	for c, r := range clientReqs {
		in.R[c] = r
	}
	return in
}

// Figure4 builds the heterogeneous Multiple-versus-Upwards instance: chain
// s3 (root, W = K·n) -> s2 (W = n) -> s1 (W = n); s1 has a client with n+1
// requests and s2 has a client with n−1 requests. Storage costs equal
// capacities (Replica Cost). Multiple costs 2n; Upwards costs (K+1)n.
func Figure4(n, k int64) *Instance {
	if n < 2 || k < 1 {
		panic("core: Figure4 requires n >= 2, k >= 1")
	}
	b := tree.NewBuilder()
	s3 := b.AddRoot()
	s2 := b.AddNode(s3)
	s1 := b.AddNode(s2)
	c1 := b.AddClient(s1) // n+1 requests
	c2 := b.AddClient(s2) // n-1 requests
	in := NewInstance(b.MustBuild())
	in.W[s1], in.W[s2], in.W[s3] = n, n, k*n
	in.S[s1], in.S[s2], in.S[s3] = n, n, k*n
	in.R[c1], in.R[c2] = n+1, n-1
	return in
}

// Figure5 builds the lower-bound gap instance: root r with one client of W
// requests and n children s_j, each with one client of W/n requests. All
// capacities W; the trivial bound is 2 but every policy needs n+1 replicas.
// W must be divisible by n.
func Figure5(n int, w int64) *Instance {
	if n < 1 || w%int64(n) != 0 {
		panic("core: Figure5 requires n >= 1 and n | w")
	}
	b := tree.NewBuilder()
	r := b.AddRoot()
	nodes := []int{r}
	creqs := map[int]int64{b.AddClient(r): w}
	for j := 0; j < n; j++ {
		s := b.AddNode(r)
		nodes = append(nodes, s)
		creqs[b.AddClient(s)] = w / int64(n)
	}
	in := NewInstance(b.MustBuild())
	for _, s := range nodes {
		in.W[s] = w
		in.S[s] = 1
	}
	for c, r := range creqs {
		in.R[c] = r
	}
	return in
}

// Figure6 builds a worked example for the optimal Multiple/homogeneous
// algorithm of Section 4.1, analogous to the paper's Figure 6 (whose exact
// topology is not recoverable from the scanned source). The network has 11
// internal nodes n1..n11 with W = 10 and is engineered so that the
// algorithm's trace is fully determined:
//
//   - pass 1 saturates n10 (flow 12), n6 (flow 14), n3 (flow 19) and the
//     root n1 (flow 18), leaving a residual root flow of 8;
//   - pass 2 first picks n4 with useful flow 7, then — all useful flows
//     having dropped to 1 — picks n2, the first such node in depth-first
//     order, exactly as in the paper's narrative;
//   - pass 3 must split the 15-request client between n3 and the root, and
//     the 12-request client between n10 and n4's subtree accounting.
//
// It returns the instance plus the ids of n1..n11 (index i holds n_{i+1}).
func Figure6() (*Instance, []int) {
	b := tree.NewBuilder()
	n1 := b.AddRoot()
	n2 := b.AddNode(n1)
	c2 := b.AddClient(n2) // r = 2
	n3 := b.AddNode(n1)
	c15 := b.AddClient(n3) // r = 15 (split across servers in pass 3)
	c2b := b.AddClient(n3) // r = 2
	n5 := b.AddNode(n3)
	c1a := b.AddClient(n5) // r = 1
	c1b := b.AddClient(n5) // r = 1
	n4 := b.AddNode(n1)
	n6 := b.AddNode(n4)
	n7 := b.AddNode(n6)
	c7a := b.AddClient(n7) // r = 7
	n8 := b.AddNode(n6)
	c7b := b.AddClient(n8) // r = 7
	n9 := b.AddNode(n4)
	n10 := b.AddNode(n9)
	c12 := b.AddClient(n10) // r = 12
	n11 := b.AddNode(n9)
	c1c := b.AddClient(n11) // r = 1

	in := NewInstance(b.MustBuild())
	nodes := []int{n1, n2, n3, n4, n5, n6, n7, n8, n9, n10, n11}
	for _, s := range nodes {
		in.W[s] = 10
		in.S[s] = 1
	}
	for c, r := range map[int]int64{
		c2: 2, c15: 15, c2b: 2, c1a: 1, c1b: 1,
		c7a: 7, c7b: 7, c12: 12, c1c: 1,
	} {
		in.R[c] = r
	}
	return in, nodes
}
