package core

import (
	"encoding/json"
	"fmt"
)

// jsonSolution is the wire format of a Solution: one entry per client
// that has an assignment.
type jsonSolution struct {
	// Assign maps client vertex ids (as array indices via the Client
	// field) to portions.
	Assign []jsonAssignment `json:"assign"`
	// Extra lists replicas declared without load.
	Extra []int `json:"extra_replicas,omitempty"`
	// Vertices is the tree size the solution was built for.
	Vertices int `json:"vertices"`
}

type jsonAssignment struct {
	Client   int       `json:"client"`
	Portions []Portion `json:"portions"`
}

// MarshalJSON encodes the solution compactly (only assigned clients).
func (sol *Solution) MarshalJSON() ([]byte, error) {
	js := jsonSolution{Vertices: len(sol.Assign), Extra: sol.extra}
	for c, ps := range sol.Assign {
		if len(ps) > 0 {
			js.Assign = append(js.Assign, jsonAssignment{Client: c, Portions: ps})
		}
	}
	return json.Marshal(js)
}

// UnmarshalJSON decodes a solution produced by MarshalJSON. Structural
// validation against an instance still requires Validate.
func (sol *Solution) UnmarshalJSON(data []byte) error {
	var js jsonSolution
	if err := json.Unmarshal(data, &js); err != nil {
		return err
	}
	if js.Vertices <= 0 {
		return fmt.Errorf("core: solution with invalid vertex count %d", js.Vertices)
	}
	ns := NewSolution(js.Vertices)
	for _, a := range js.Assign {
		if a.Client < 0 || a.Client >= js.Vertices {
			return fmt.Errorf("core: solution client %d out of range", a.Client)
		}
		for _, p := range a.Portions {
			if p.Server < 0 || p.Server >= js.Vertices {
				return fmt.Errorf("core: solution server %d out of range", p.Server)
			}
			if p.Load <= 0 {
				return fmt.Errorf("core: non-positive portion %d", p.Load)
			}
			ns.AddPortion(a.Client, p.Server, p.Load)
		}
	}
	for _, s := range js.Extra {
		if s < 0 || s >= js.Vertices {
			return fmt.Errorf("core: extra replica %d out of range", s)
		}
		ns.DeclareReplica(s)
	}
	*sol = *ns
	return nil
}
