package core

// This file implements the extended objective functions of Section 8.2:
// read cost, update (write) cost and their linear combination with the
// storage cost.

// ReadCost returns the total communication cost of answering requests: for
// every portion, load × distance from the client to the serving replica
// (Comm-weighted distance, or hops when Comm is nil).
func (sol *Solution) ReadCost(in *Instance) int64 {
	var cost int64
	for c, ps := range sol.Assign {
		for _, p := range ps {
			cost += p.Load * in.Dist(c, p.Server)
		}
	}
	return cost
}

// UpdateCost returns the write-propagation cost: the total Comm weight (or
// edge count) of the minimal subtree of the network connecting all
// replicas. This follows Wolfson and Milo's model where an update is
// propagated along the minimum spanning tree of the replica set; in a tree
// network that spanning tree is the unique minimal connecting subtree.
// Solutions with fewer than two replicas have zero update cost.
func (sol *Solution) UpdateCost(in *Instance) int64 {
	reps := sol.Replicas()
	if len(reps) < 2 {
		return 0
	}
	t := in.Tree
	// An edge v -> parent(v) belongs to the minimal connecting subtree iff
	// subtree(v) contains at least one replica but not all of them.
	inSub := make([]int, t.Len()) // replicas inside subtree(v)
	for _, v := range t.PostOrder() {
		if sol.IsReplica(v) {
			inSub[v]++
		}
		for _, c := range t.Children(v) {
			inSub[v] += inSub[c]
		}
	}
	var cost int64
	for v := 0; v < t.Len(); v++ {
		if v == t.Root() {
			continue
		}
		if inSub[v] > 0 && inSub[v] < len(reps) {
			if in.Comm == nil {
				cost++
			} else {
				cost += in.Comm[v]
			}
		}
	}
	return cost
}

// CostModel weights the three cost components of Section 8.2. The paper's
// base objective is CostModel{Alpha: 1}.
type CostModel struct {
	Alpha float64 // weight of the storage (replica) cost
	Beta  float64 // weight of the read cost
	Gamma float64 // weight of the update cost
}

// StorageOnly is the paper's primary objective: minimize Σ s_j alone.
var StorageOnly = CostModel{Alpha: 1}

// Cost evaluates the combined objective α·storage + β·read + γ·update.
func (m CostModel) Cost(in *Instance, sol *Solution) float64 {
	c := m.Alpha * float64(sol.StorageCost(in))
	if m.Beta != 0 {
		c += m.Beta * float64(sol.ReadCost(in))
	}
	if m.Gamma != 0 {
		c += m.Gamma * float64(sol.UpdateCost(in))
	}
	return c
}
