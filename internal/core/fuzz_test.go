package core

import (
	"encoding/json"
	"strings"
	"testing"
)

// FuzzReadInstance checks that arbitrary bytes never panic the instance
// decoder and that everything it accepts passes full validation (so a
// decoded instance is always safe to hand to the solvers). Run with
// `go test -fuzz=FuzzReadInstance ./internal/core` for live fuzzing; the
// seed corpus runs under plain `go test`.
func FuzzReadInstance(f *testing.F) {
	valid, err := json.Marshal(Figure1('a'))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(valid))
	f.Add(`{"parents":[-1,0],"is_client":[false,true],"requests":[0,3],"capacities":[5,0],"storage_costs":[1,0]}`)
	f.Add(`{"parents":[0],"is_client":[false]}`)
	f.Add(`{"parents":[-1],"is_client":[true]}`)
	f.Add(`{"parents":[-1,0,0],"is_client":[false,true,true],"requests":[0,1,2],"capacities":[9,0,0],"storage_costs":[1,0,0],"qos":[-1,1,2],"bandwidth":[-1,5,5]}`)
	f.Add(`[]`)
	f.Add(`{`)
	f.Fuzz(func(t *testing.T, src string) {
		in, err := ReadInstance(strings.NewReader(src))
		if err != nil {
			return
		}
		if verr := in.Validate(); verr != nil {
			t.Fatalf("decoder accepted an invalid instance: %v\ninput: %s", verr, src)
		}
		// Round-trip stability: encode and decode again.
		data, err := json.Marshal(in)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if _, err := ReadInstance(strings.NewReader(string(data))); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}

// FuzzSolutionDecode checks the solution decoder likewise.
func FuzzSolutionDecode(f *testing.F) {
	sol := NewSolution(3)
	sol.AddPortion(2, 0, 5)
	valid, err := json.Marshal(sol)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(valid))
	f.Add(`{"vertices":2,"assign":[{"client":1,"portions":[{"Server":0,"Load":1}]}]}`)
	f.Add(`{"vertices":-1}`)
	f.Add(`null`)
	f.Fuzz(func(t *testing.T, src string) {
		var s Solution
		if err := json.Unmarshal([]byte(src), &s); err != nil {
			return
		}
		// Accepted solutions must be structurally sound: replica ids in
		// range, positive portions.
		for _, r := range s.Replicas() {
			if r < 0 || r >= len(s.Assign) {
				t.Fatalf("replica %d out of range after decode: %s", r, src)
			}
		}
		for _, ps := range s.Assign {
			for _, p := range ps {
				if p.Load <= 0 {
					t.Fatalf("non-positive portion after decode: %s", src)
				}
			}
		}
	})
}
