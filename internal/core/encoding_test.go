package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestInstanceJSONRoundTrip(t *testing.T) {
	in, nodes, clients := star(2, []int64{3, 4}, 10)
	in.Q = make([]int, in.Tree.Len())
	for i := range in.Q {
		in.Q[i] = NoQoS
	}
	in.Q[clients[0]] = 2
	in.BW = make([]int64, in.Tree.Len())
	for i := range in.BW {
		in.BW[i] = NoBandwidth
	}
	in.BW[nodes[1]] = 100

	var buf bytes.Buffer
	if _, err := in.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	back, err := ReadInstance(&buf)
	if err != nil {
		t.Fatalf("ReadInstance: %v", err)
	}
	if !reflect.DeepEqual(back.R, in.R) || !reflect.DeepEqual(back.W, in.W) ||
		!reflect.DeepEqual(back.S, in.S) || !reflect.DeepEqual(back.Q, in.Q) ||
		!reflect.DeepEqual(back.BW, in.BW) {
		t.Errorf("round trip mismatch")
	}
	if back.Tree.Len() != in.Tree.Len() || back.Tree.Root() != in.Tree.Root() {
		t.Errorf("tree mismatch")
	}
}

func TestReadInstanceRejectsInvalid(t *testing.T) {
	cases := []string{
		`{`,
		`{"parents":[0],"is_client":[false]}`,
		// valid tree but negative request
		`{"parents":[-1,0],"is_client":[false,true],"requests":[0,-3],"capacities":[1,0],"storage_costs":[1,0]}`,
		// vector length mismatch
		`{"parents":[-1,0],"is_client":[false,true],"requests":[0],"capacities":[1,0],"storage_costs":[1,0]}`,
	}
	for i, src := range cases {
		if _, err := ReadInstance(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestInstanceJSONOmitsOptional(t *testing.T) {
	in, _, _ := star(1, []int64{1}, 2)
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "qos") || strings.Contains(string(data), "bandwidth") {
		t.Errorf("optional fields should be omitted: %s", data)
	}
}
