package core

import (
	"strings"
	"testing"

	"repro/internal/tree"
)

// star builds a root with k internal children, each with one client of the
// given requests; returns instance with capacity w on all nodes, s=1.
func star(k int, reqs []int64, w int64) (*Instance, []int, []int) {
	b := tree.NewBuilder()
	r := b.AddRoot()
	nodes := []int{r}
	var clients []int
	for i := 0; i < k; i++ {
		n := b.AddNode(r)
		nodes = append(nodes, n)
		clients = append(clients, b.AddClient(n))
	}
	in := NewInstance(b.MustBuild())
	for _, n := range nodes {
		in.W[n] = w
		in.S[n] = 1
	}
	for i, c := range clients {
		in.R[c] = reqs[i]
	}
	return in, nodes, clients
}

func TestPolicyString(t *testing.T) {
	if Closest.String() != "Closest" || Upwards.String() != "Upwards" || Multiple.String() != "Multiple" {
		t.Errorf("policy names wrong")
	}
	if !strings.Contains(Policy(9).String(), "9") {
		t.Errorf("unknown policy should include number")
	}
	if len(Policies) != 3 {
		t.Errorf("Policies = %v", Policies)
	}
}

func TestInstanceBasics(t *testing.T) {
	in, nodes, clients := star(3, []int64{5, 7, 9}, 10)
	if err := in.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := in.TotalRequests(); got != 21 {
		t.Errorf("TotalRequests = %d", got)
	}
	if got := in.TotalCapacity(); got != 40 {
		t.Errorf("TotalCapacity = %d", got)
	}
	if got := in.Load(); got != 21.0/40.0 {
		t.Errorf("Load = %v", got)
	}
	if !in.Homogeneous() {
		t.Error("expected homogeneous")
	}
	in2 := in.Clone()
	in2.W[nodes[1]] = 99
	if in2.Homogeneous() {
		t.Error("clone should be heterogeneous after edit")
	}
	if !in.Homogeneous() {
		t.Error("edit to clone leaked into original")
	}
	if got := in.TrivialLowerBound(); got != 3 { // ceil(21/10)
		t.Errorf("TrivialLowerBound = %d", got)
	}
	if in.HasQoS() || in.HasBandwidth() {
		t.Error("unconstrained instance reports constraints")
	}
	_ = clients
}

func TestTrivialLowerBoundPanicsHeterogeneous(t *testing.T) {
	in, nodes, _ := star(2, []int64{1, 1}, 5)
	in.W[nodes[1]] = 7
	defer func() {
		if recover() == nil {
			t.Error("want panic for heterogeneous TrivialLowerBound")
		}
	}()
	in.TrivialLowerBound()
}

func TestInstanceValidateErrors(t *testing.T) {
	in, nodes, clients := star(2, []int64{1, 2}, 4)
	cases := []struct {
		name string
		mut  func(*Instance)
	}{
		{"nil tree", func(i *Instance) { i.Tree = nil }},
		{"short R", func(i *Instance) { i.R = i.R[:1] }},
		{"neg request", func(i *Instance) { i.R[clients[0]] = -1 }},
		{"neg capacity", func(i *Instance) { i.W[nodes[0]] = -2 }},
		{"neg storage", func(i *Instance) { i.S[nodes[1]] = -2 }},
		{"requests on node", func(i *Instance) { i.R[nodes[1]] = 3 }},
		{"bad Q len", func(i *Instance) { i.Q = []int{1} }},
		{"bad Q value", func(i *Instance) { i.Q = make([]int, i.Tree.Len()); i.Q[clients[0]] = -7 }},
		{"bad comm len", func(i *Instance) { i.Comm = []int64{0} }},
		{"neg comm", func(i *Instance) { i.Comm = make([]int64, i.Tree.Len()); i.Comm[nodes[1]] = -1 }},
		{"bad bw len", func(i *Instance) { i.BW = []int64{0} }},
		{"bad bw value", func(i *Instance) { i.BW = make([]int64, i.Tree.Len()); i.BW[nodes[1]] = -5 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := in.Clone()
			tc.mut(bad)
			if err := bad.Validate(); err == nil {
				t.Errorf("want validation error")
			}
		})
	}
}

func TestQoSDistances(t *testing.T) {
	// chain root(0) - n1 - client
	b := tree.NewBuilder()
	r := b.AddRoot()
	n1 := b.AddNode(r)
	c := b.AddClient(n1)
	in := NewInstance(b.MustBuild())
	in.W[r], in.W[n1] = 5, 5
	in.S[r], in.S[n1] = 1, 1
	in.R[c] = 3

	if in.Dist(c, n1) != 1 || in.Dist(c, r) != 2 {
		t.Errorf("hop distances wrong")
	}
	in.Comm = make([]int64, in.Tree.Len())
	in.Comm[c] = 4
	in.Comm[n1] = 10
	if in.Dist(c, n1) != 4 || in.Dist(c, r) != 14 {
		t.Errorf("comm distances wrong: %d %d", in.Dist(c, n1), in.Dist(c, r))
	}

	in.Comm = nil
	in.Q = make([]int, in.Tree.Len())
	for i := range in.Q {
		in.Q[i] = NoQoS
	}
	in.Q[c] = 1
	if !in.HasQoS() {
		t.Error("HasQoS should be true")
	}
	if !in.QoSAllows(c, n1) || in.QoSAllows(c, r) {
		t.Errorf("QoSAllows wrong")
	}
}

func TestSolutionValidateHappyPaths(t *testing.T) {
	in, nodes, clients := star(2, []int64{3, 4}, 10)
	root := nodes[0]

	// Single replica at the root serving everything: valid for all three
	// policies.
	sol := NewSolution(in.Tree.Len())
	sol.AddPortion(clients[0], root, 3)
	sol.AddPortion(clients[1], root, 4)
	for _, p := range Policies {
		if err := sol.Validate(in, p); err != nil {
			t.Errorf("%v: %v", p, err)
		}
	}
	if sol.StorageCost(in) != 1 || sol.ReplicaCount() != 1 {
		t.Errorf("costs wrong: %d %d", sol.StorageCost(in), sol.ReplicaCount())
	}

	// Splitting one client across two servers: only Multiple.
	split := NewSolution(in.Tree.Len())
	split.AddPortion(clients[0], nodes[1], 2)
	split.AddPortion(clients[0], root, 1)
	split.AddPortion(clients[1], root, 4)
	if err := split.Validate(in, Multiple); err != nil {
		t.Errorf("Multiple: %v", err)
	}
	if err := split.Validate(in, Upwards); err == nil {
		t.Error("Upwards must reject split assignment")
	}
	if err := split.Validate(in, Closest); err == nil {
		t.Error("Closest must reject split assignment")
	}
}

func TestSolutionValidateClosestBlocking(t *testing.T) {
	in, nodes, clients := star(1, []int64{2}, 10)
	root, n1, c := nodes[0], nodes[1], clients[0]

	// Serve c at the root while n1 holds a replica: Upwards-legal,
	// Closest-illegal.
	sol := NewSolution(in.Tree.Len())
	sol.AddPortion(c, root, 2)
	sol.DeclareReplica(n1)
	if err := sol.Validate(in, Upwards); err != nil {
		t.Errorf("Upwards: %v", err)
	}
	if err := sol.Validate(in, Closest); err == nil {
		t.Error("Closest must reject traversing a replica")
	}
}

func TestSolutionValidateErrors(t *testing.T) {
	in, nodes, clients := star(2, []int64{3, 4}, 3)
	root := nodes[0]

	t.Run("under-assigned", func(t *testing.T) {
		sol := NewSolution(in.Tree.Len())
		sol.AddPortion(clients[0], root, 2)
		sol.AddPortion(clients[1], nodes[2], 4)
		if err := sol.Validate(in, Multiple); err == nil ||
			!strings.Contains(err.Error(), "assigned") {
			t.Errorf("want coverage error, got %v", err)
		}
	})
	t.Run("capacity exceeded", func(t *testing.T) {
		sol := NewSolution(in.Tree.Len())
		sol.AddPortion(clients[0], root, 3)
		sol.AddPortion(clients[1], root, 4)
		if err := sol.Validate(in, Multiple); err == nil ||
			!strings.Contains(err.Error(), "capacity") {
			t.Errorf("want capacity error, got %v", err)
		}
	})
	t.Run("not an ancestor", func(t *testing.T) {
		sol := NewSolution(in.Tree.Len())
		sol.AddPortion(clients[0], nodes[2], 3) // nodes[2] is a sibling branch
		sol.AddPortion(clients[1], nodes[2], 4)
		if err := sol.Validate(in, Multiple); err == nil ||
			!strings.Contains(err.Error(), "ancestor") {
			t.Errorf("want ancestry error, got %v", err)
		}
	})
	t.Run("replica on client", func(t *testing.T) {
		sol := NewSolution(in.Tree.Len())
		sol.AddPortion(clients[0], nodes[1], 3)
		sol.AddPortion(clients[1], nodes[2], 3)
		sol.AddPortion(clients[1], root, 1)
		sol.DeclareReplica(clients[0])
		if err := sol.Validate(in, Multiple); err == nil {
			t.Error("want error for replica on a client")
		}
	})
	t.Run("assignment on internal vertex", func(t *testing.T) {
		sol := NewSolution(in.Tree.Len())
		sol.Assign[nodes[1]] = []Portion{{Server: root, Load: 1}}
		if err := sol.Validate(in, Multiple); err == nil {
			t.Error("want error for internal-vertex assignment")
		}
	})
	t.Run("wrong size", func(t *testing.T) {
		sol := NewSolution(2)
		if err := sol.Validate(in, Multiple); err == nil {
			t.Error("want error for wrong solution size")
		}
	})
	t.Run("qos violated", func(t *testing.T) {
		qin := in.Clone()
		qin.Q = make([]int, qin.Tree.Len())
		for i := range qin.Q {
			qin.Q[i] = NoQoS
		}
		qin.Q[clients[0]] = 1
		sol := NewSolution(in.Tree.Len())
		sol.AddPortion(clients[0], root, 3) // distance 2 > 1
		sol.AddPortion(clients[1], nodes[2], 4)
		if err := sol.Validate(qin, Multiple); err == nil ||
			!strings.Contains(err.Error(), "QoS") {
			t.Errorf("want QoS error, got %v", err)
		}
	})
	t.Run("bandwidth violated", func(t *testing.T) {
		bin, bnodes, bclients := star(2, []int64{3, 4}, 10)
		bin.BW = make([]int64, bin.Tree.Len())
		for i := range bin.BW {
			bin.BW[i] = NoBandwidth
		}
		bin.BW[bnodes[1]] = 2 // link n1 -> root
		sol := NewSolution(bin.Tree.Len())
		sol.AddPortion(bclients[0], bnodes[0], 3) // 3 requests traverse n1's link
		sol.AddPortion(bclients[1], bnodes[2], 4)
		if err := sol.Validate(bin, Multiple); err == nil ||
			!strings.Contains(err.Error(), "bandwidth") {
			t.Errorf("want bandwidth error, got %v", err)
		}
	})
}

func TestServerLoadsAndLinkFlows(t *testing.T) {
	in, nodes, clients := star(2, []int64{3, 4}, 10)
	root := nodes[0]
	sol := NewSolution(in.Tree.Len())
	sol.AddPortion(clients[0], nodes[1], 1)
	sol.AddPortion(clients[0], root, 2)
	sol.AddPortion(clients[1], root, 4)

	loads := sol.ServerLoads(in.Tree.Len())
	if loads[nodes[1]] != 1 || loads[root] != 6 {
		t.Errorf("loads = %v", loads)
	}
	flows := sol.LinkFlows(in)
	// client0 link carries 3; n1 link carries 2 (portion served above);
	// client1 link carries 4; n2 link carries 4.
	if flows[clients[0]] != 3 || flows[nodes[1]] != 2 ||
		flows[clients[1]] != 4 || flows[nodes[2]] != 4 {
		t.Errorf("flows = %v", flows)
	}
}

func TestAddPortionMergesAndIgnoresZero(t *testing.T) {
	in, nodes, clients := star(1, []int64{5}, 10)
	sol := NewSolution(in.Tree.Len())
	sol.AddPortion(clients[0], nodes[0], 2)
	sol.AddPortion(clients[0], nodes[0], 3)
	sol.AddPortion(clients[0], nodes[1], 0)
	if len(sol.Assign[clients[0]]) != 1 || sol.Assign[clients[0]][0].Load != 5 {
		t.Errorf("merge failed: %v", sol.Assign[clients[0]])
	}
	if sol.ReplicaCount() != 1 {
		t.Errorf("zero-load portion created a replica")
	}
	if !sol.IsReplica(nodes[0]) || sol.IsReplica(nodes[1]) {
		t.Errorf("IsReplica wrong")
	}
}

func TestSolutionString(t *testing.T) {
	in, nodes, clients := star(1, []int64{5}, 10)
	sol := NewSolution(in.Tree.Len())
	sol.AddPortion(clients[0], nodes[1], 5)
	s := sol.String()
	if !strings.Contains(s, "R={1}") && !strings.Contains(s, "R={") {
		t.Errorf("String = %q", s)
	}
}
