package core

import (
	"fmt"
	"sort"

	"repro/internal/tree"
)

// Portion is a share of one client's requests handled by one server.
type Portion struct {
	Server int   // internal vertex holding a replica
	Load   int64 // number of requests served there, > 0
}

// Solution is a replica placement together with the request assignment: for
// each client, the list of (server, load) portions that cover its requests.
// Replicas with zero assigned load are legal (they still pay storage cost)
// but none of the solvers in this module produce them.
type Solution struct {
	// Assign maps each client vertex id to its portions. Indexed by vertex
	// id over the whole tree; entries of internal vertices are nil.
	Assign [][]Portion

	// replicas caches the sorted replica set; rebuilt lazily.
	replicas []int
	extra    []int // replicas declared without load (rare, explicit)
}

// NewSolution returns an empty solution for an instance's tree size.
func NewSolution(n int) *Solution {
	return &Solution{Assign: make([][]Portion, n)}
}

// NewSolutionFromPortions materializes a Solution from per-vertex portion
// buffers (typically a solver's pooled scratch): one backing slab plus the
// per-client headers, iterated in clients order. The buffers are copied,
// never retained, so the returned Solution owns its memory — this is the
// single allocation site of the zero-allocation solver cores.
func NewSolutionFromPortions(ports [][]Portion, clients []int) *Solution {
	total := 0
	for _, c := range clients {
		total += len(ports[c])
	}
	sol := NewSolution(len(ports))
	slab := make([]Portion, 0, total)
	for _, c := range clients {
		ps := ports[c]
		if len(ps) == 0 {
			continue
		}
		start := len(slab)
		slab = append(slab, ps...)
		sol.Assign[c] = slab[start:len(slab):len(slab)]
	}
	return sol
}

// AddPortion assigns load requests of client c to server s, merging with an
// existing portion for the same server.
func (sol *Solution) AddPortion(c, s int, load int64) {
	if load == 0 {
		return
	}
	sol.replicas = nil
	for i := range sol.Assign[c] {
		if sol.Assign[c][i].Server == s {
			sol.Assign[c][i].Load += load
			return
		}
	}
	sol.Assign[c] = append(sol.Assign[c], Portion{Server: s, Load: load})
}

// DeclareReplica marks s as a replica even if no load is assigned to it.
// Used only to express pathological placements in tests.
func (sol *Solution) DeclareReplica(s int) {
	sol.replicas = nil
	sol.extra = append(sol.extra, s)
}

// Replicas returns the sorted set of servers used by the solution (any
// server appearing in a portion, plus declared replicas).
func (sol *Solution) Replicas() []int {
	if sol.replicas != nil {
		return sol.replicas
	}
	set := make(map[int]bool)
	for _, ps := range sol.Assign {
		for _, p := range ps {
			set[p.Server] = true
		}
	}
	for _, s := range sol.extra {
		set[s] = true
	}
	out := make([]int, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Ints(out)
	sol.replicas = out
	return out
}

// IsReplica reports whether s is in the replica set.
func (sol *Solution) IsReplica(s int) bool {
	r := sol.Replicas()
	i := sort.SearchInts(r, s)
	return i < len(r) && r[i] == s
}

// ServerLoads returns the total load assigned to each vertex (indexed by
// vertex id; zero for non-servers).
func (sol *Solution) ServerLoads(n int) []int64 {
	loads := make([]int64, n)
	for _, ps := range sol.Assign {
		for _, p := range ps {
			loads[p.Server] += p.Load
		}
	}
	return loads
}

// StorageCost returns Σ s_j over the replica set — the paper's objective.
func (sol *Solution) StorageCost(in *Instance) int64 {
	var cost int64
	for _, s := range sol.Replicas() {
		cost += in.S[s]
	}
	return cost
}

// ReplicaCount returns |R|, the Replica Counting objective.
func (sol *Solution) ReplicaCount() int { return len(sol.Replicas()) }

// LinkFlows returns, for each non-root vertex v, the total number of
// requests traversing the link v -> parent(v) under this assignment.
func (sol *Solution) LinkFlows(in *Instance) []int64 {
	flows := make([]int64, in.Tree.Len())
	for c, ps := range sol.Assign {
		for _, p := range ps {
			for u := c; u != p.Server; u = in.Tree.Parent(u) {
				flows[u] += p.Load
			}
		}
	}
	return flows
}

// Validate checks the solution against the instance under the given access
// policy: full coverage of every client, servers are internal ancestors,
// capacities, the single-server rule (Closest/Upwards), the
// closest-blocking rule (Closest), QoS bounds and link bandwidths. A nil
// return value means the solution is feasible for the policy.
func (sol *Solution) Validate(in *Instance, p Policy) error {
	t := in.Tree
	if len(sol.Assign) != t.Len() {
		return fmt.Errorf("core: solution sized %d for tree of %d vertices", len(sol.Assign), t.Len())
	}
	for _, s := range sol.Replicas() {
		if s < 0 || s >= t.Len() || t.IsClient(s) {
			return fmt.Errorf("core: replica %d is not an internal vertex", s)
		}
	}
	for v, ps := range sol.Assign {
		if len(ps) == 0 {
			continue
		}
		if !t.IsClient(v) {
			return fmt.Errorf("core: internal vertex %d has an assignment", v)
		}
	}
	// Coverage, ancestry, QoS, single-server.
	for _, c := range t.Clients() {
		ps := sol.Assign[c]
		var sum int64
		for _, p := range ps {
			if p.Load <= 0 {
				return fmt.Errorf("core: client %d has non-positive portion %d on server %d", c, p.Load, p.Server)
			}
			if !t.IsAncestor(p.Server, c) {
				return fmt.Errorf("core: server %d is not an ancestor of client %d", p.Server, c)
			}
			if !in.QoSAllows(c, p.Server) {
				return fmt.Errorf("core: client %d violates QoS at server %d (dist %d > q %d)",
					c, p.Server, in.Dist(c, p.Server), in.Q[c])
			}
			sum += p.Load
		}
		if sum != in.R[c] {
			return fmt.Errorf("core: client %d assigned %d of %d requests", c, sum, in.R[c])
		}
		if p != Multiple && len(ps) > 1 {
			return fmt.Errorf("core: client %d uses %d servers under the %v policy", c, len(ps), p)
		}
	}
	// Closest: the chosen server must be the first replica on the path.
	if p == Closest {
		for _, c := range t.Clients() {
			ps := sol.Assign[c]
			if len(ps) == 0 {
				continue
			}
			for a := t.Parent(c); a != tree.None && a != ps[0].Server; a = t.Parent(a) {
				if sol.IsReplica(a) {
					return fmt.Errorf("core: client %d served by %d but traverses replica %d (Closest)",
						c, ps[0].Server, a)
				}
			}
		}
	}
	// Capacities.
	loads := sol.ServerLoads(t.Len())
	for _, s := range sol.Replicas() {
		if loads[s] > in.W[s] {
			return fmt.Errorf("core: server %d load %d exceeds capacity %d", s, loads[s], in.W[s])
		}
	}
	// Bandwidths.
	if in.HasBandwidth() {
		flows := sol.LinkFlows(in)
		for v := 0; v < t.Len(); v++ {
			if v == t.Root() || in.BW[v] == NoBandwidth {
				continue
			}
			if flows[v] > in.BW[v] {
				return fmt.Errorf("core: link %d->%d flow %d exceeds bandwidth %d",
					v, t.Parent(v), flows[v], in.BW[v])
			}
		}
	}
	return nil
}

// String renders the placement compactly: replica list plus per-client
// assignments, e.g. "R={1,3} c4->{1:5} c5->{1:2,3:3}".
func (sol *Solution) String() string {
	out := "R={"
	for i, s := range sol.Replicas() {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprint(s)
	}
	out += "}"
	for c, ps := range sol.Assign {
		if len(ps) == 0 {
			continue
		}
		out += fmt.Sprintf(" c%d->{", c)
		for i, p := range ps {
			if i > 0 {
				out += ","
			}
			out += fmt.Sprintf("%d:%d", p.Server, p.Load)
		}
		out += "}"
	}
	return out
}
