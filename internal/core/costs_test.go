package core

import (
	"testing"

	"repro/internal/tree"
)

func TestReadCost(t *testing.T) {
	in, nodes, clients := star(2, []int64{3, 4}, 10)
	root := nodes[0]
	sol := NewSolution(in.Tree.Len())
	sol.AddPortion(clients[0], nodes[1], 3) // dist 1
	sol.AddPortion(clients[1], root, 4)     // dist 2
	if got := sol.ReadCost(in); got != 3*1+4*2 {
		t.Errorf("ReadCost = %d, want 11", got)
	}
	// Comm-weighted distances.
	in.Comm = make([]int64, in.Tree.Len())
	for i := range in.Comm {
		in.Comm[i] = 5
	}
	if got := sol.ReadCost(in); got != 3*5+4*10 {
		t.Errorf("weighted ReadCost = %d, want 55", got)
	}
}

func TestUpdateCost(t *testing.T) {
	// root(0) with children n1, n2; n1 has child n3. Clients hang off n3
	// and n2.
	b := tree.NewBuilder()
	r := b.AddRoot()
	n1 := b.AddNode(r)
	n2 := b.AddNode(r)
	n3 := b.AddNode(n1)
	c1 := b.AddClient(n3)
	c2 := b.AddClient(n2)
	in := NewInstance(b.MustBuild())
	for _, n := range []int{r, n1, n2, n3} {
		in.W[n] = 10
		in.S[n] = 1
	}
	in.R[c1], in.R[c2] = 2, 3

	t.Run("no replicas", func(t *testing.T) {
		sol := NewSolution(in.Tree.Len())
		if sol.UpdateCost(in) != 0 {
			t.Error("empty solution should cost 0")
		}
	})
	t.Run("single replica", func(t *testing.T) {
		sol := NewSolution(in.Tree.Len())
		sol.AddPortion(c1, r, 2)
		sol.AddPortion(c2, r, 3)
		if sol.UpdateCost(in) != 0 {
			t.Error("single replica should cost 0")
		}
	})
	t.Run("two replicas via root", func(t *testing.T) {
		sol := NewSolution(in.Tree.Len())
		sol.AddPortion(c1, n3, 2)
		sol.AddPortion(c2, n2, 3)
		// Minimal subtree connecting n3 and n2: edges n3-n1, n1-r, n2-r.
		if got := sol.UpdateCost(in); got != 3 {
			t.Errorf("UpdateCost = %d, want 3", got)
		}
	})
	t.Run("nested replicas", func(t *testing.T) {
		sol := NewSolution(in.Tree.Len())
		sol.AddPortion(c1, n3, 1)
		sol.AddPortion(c1, n1, 1)
		sol.AddPortion(c2, n2, 3)
		sol.DeclareReplica(r)
		// Connecting {n3, n1, n2, r}: edges n3-n1, n1-r, n2-r => 3.
		if got := sol.UpdateCost(in); got != 3 {
			t.Errorf("UpdateCost = %d, want 3", got)
		}
	})
	t.Run("weighted", func(t *testing.T) {
		win := in.Clone()
		win.Comm = make([]int64, win.Tree.Len())
		win.Comm[n3] = 7
		win.Comm[n1] = 2
		win.Comm[n2] = 4
		sol := NewSolution(in.Tree.Len())
		sol.AddPortion(c1, n3, 2)
		sol.AddPortion(c2, n2, 3)
		if got := sol.UpdateCost(win); got != 13 {
			t.Errorf("weighted UpdateCost = %d, want 13", got)
		}
	})
}

func TestCostModel(t *testing.T) {
	in, nodes, clients := star(2, []int64{3, 4}, 10)
	sol := NewSolution(in.Tree.Len())
	sol.AddPortion(clients[0], nodes[1], 3)
	sol.AddPortion(clients[1], nodes[2], 4)

	if got := StorageOnly.Cost(in, sol); got != 2 {
		t.Errorf("StorageOnly = %v, want 2", got)
	}
	m := CostModel{Alpha: 1, Beta: 2, Gamma: 10}
	// storage 2, read (3+4)*1 = 7, update: two replicas connected through
	// the root = 2 edges.
	want := 1.0*2 + 2.0*7 + 10.0*2
	if got := m.Cost(in, sol); got != want {
		t.Errorf("combined = %v, want %v", got, want)
	}
}

func TestTotalFlows(t *testing.T) {
	in, nodes, _ := star(3, []int64{5, 7, 9}, 10)
	tf := in.TotalFlows()
	if tf[nodes[0]] != 21 || tf[nodes[1]] != 5 || tf[nodes[3]] != 9 {
		t.Errorf("TotalFlows = %v", tf)
	}
}

func TestCanonicalFlows(t *testing.T) {
	in, nodes := Figure6()
	cflow, sat, nsn := in.CanonicalFlows(10)
	n1, n3, n6, n10 := nodes[0], nodes[2], nodes[5], nodes[9]
	for _, s := range []int{n1, n3, n6, n10} {
		if !sat[s] {
			t.Errorf("node %d should be saturated", s)
		}
	}
	satCount := 0
	for _, b := range sat {
		if b {
			satCount++
		}
	}
	if satCount != 4 {
		t.Errorf("saturated count = %d, want 4", satCount)
	}
	if cflow[n1] != 8 {
		t.Errorf("cflow(root) = %d, want 8", cflow[n1])
	}
	if nsn[n1] != 4 {
		t.Errorf("nsn(root) = %d, want 4", nsn[n1])
	}
	// Lemma 2: cflow = tflow - nsn*W for every vertex.
	tf := in.TotalFlows()
	for v := 0; v < in.Tree.Len(); v++ {
		if cflow[v] != tf[v]-int64(nsn[v])*10 {
			t.Errorf("Lemma 2 violated at %d: cflow %d tflow %d nsn %d", v, cflow[v], tf[v], nsn[v])
		}
	}
}

func TestResidualFlows(t *testing.T) {
	in, nodes, clients := star(2, []int64{3, 4}, 10)
	sol := NewSolution(in.Tree.Len())
	sol.AddPortion(clients[0], nodes[1], 2)
	sol.AddPortion(clients[0], nodes[0], 1)
	sol.AddPortion(clients[1], nodes[0], 4)
	rf := sol.ResidualFlows(in)
	if rf[nodes[1]] != 1 { // client0's 1 request served above n1
		t.Errorf("residual at n1 = %d, want 1", rf[nodes[1]])
	}
	if rf[nodes[2]] != 4 {
		t.Errorf("residual at n2 = %d, want 4", rf[nodes[2]])
	}
	if rf[nodes[0]] != 0 {
		t.Errorf("residual at root = %d, want 0", rf[nodes[0]])
	}
}

func TestFixturesAreValidInstances(t *testing.T) {
	fixtures := map[string]*Instance{
		"fig1a": Figure1('a'),
		"fig1b": Figure1('b'),
		"fig1c": Figure1('c'),
		"fig2":  Figure2(3),
		"fig3":  Figure3(3),
		"fig4":  Figure4(5, 10),
		"fig5":  Figure5(4, 8),
	}
	fig6, _ := Figure6()
	fixtures["fig6"] = fig6
	for name, in := range fixtures {
		if err := in.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	// Figure invariants from the paper.
	if got := Figure2(4).Tree.NumInternal(); got != 2*4+2 {
		t.Errorf("fig2 internal = %d, want 10", got)
	}
	if got := Figure3(4).Tree.NumInternal(); got != 3*4+1 {
		t.Errorf("fig3 internal = %d, want 13", got)
	}
	if got := Figure5(4, 8).TrivialLowerBound(); got != 2 {
		t.Errorf("fig5 trivial bound = %d, want 2", got)
	}
}

func TestFixturePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"fig1": func() { Figure1('z') },
		"fig2": func() { Figure2(0) },
		"fig3": func() { Figure3(0) },
		"fig4": func() { Figure4(1, 0) },
		"fig5": func() { Figure5(3, 8) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			f()
		})
	}
}
