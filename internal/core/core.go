// Package core defines the Replica Placement problem of Benoit, Rehn and
// Robert ("Strategies for Replica Placement in Tree Networks", IPDPS 2007):
// problem instances on distribution trees, the three access policies
// (Closest, Upwards, Multiple), solutions (replica sets plus request
// assignments) and their validation, and the cost functions of the paper
// (storage cost, replica count, read/update costs and their linear
// combination).
package core

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/tree"
)

// Policy selects which replica(s) may serve a client's requests.
type Policy int

const (
	// Closest is the classical policy: all requests of a client are served
	// by the first replica on the path from the client to the root.
	Closest Policy = iota
	// Upwards is the general single-server policy: all requests of a client
	// are served by one replica anywhere on its path to the root.
	Upwards
	// Multiple allows the requests of one client to be split among several
	// replicas on its path to the root.
	Multiple
)

// Policies lists all three access policies in the paper's order.
var Policies = []Policy{Closest, Upwards, Multiple}

func (p Policy) String() string {
	switch p {
	case Closest:
		return "Closest"
	case Upwards:
		return "Upwards"
	case Multiple:
		return "Multiple"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy parses a policy name, case-insensitively.
func ParsePolicy(s string) (Policy, bool) {
	for _, p := range Policies {
		if strings.EqualFold(s, p.String()) {
			return p, true
		}
	}
	return 0, false
}

// NoQoS marks a client without a QoS bound, and NoBandwidth a link without
// a bandwidth cap.
const (
	NoQoS       = -1
	NoBandwidth = int64(-1)
)

// Instance is a Replica Placement problem instance: a distribution tree
// plus the per-vertex parameters of Section 2. All slices are indexed by
// vertex id; entries for vertices of the wrong kind are ignored (e.g. W of
// a client).
type Instance struct {
	Tree *tree.Tree

	// R is the number of requests per time unit issued by each client
	// (r_i). Zero for internal vertices.
	R []int64

	// W is the processing capacity of each internal vertex (W_j): the
	// number of requests it can serve per time unit when holding a replica.
	W []int64

	// S is the storage cost of placing a replica on each internal vertex
	// (s_j). For the Replica Cost problem s_j = W_j; for Replica Counting
	// s_j = 1.
	S []int64

	// Q is the per-client QoS bound (q_i): the maximum allowed distance
	// from the client to any server holding part of its requests. NoQoS
	// disables the constraint for that client. Nil disables QoS entirely.
	Q []int

	// Comm is the communication time of the link v -> parent(v) for each
	// non-root vertex. When nil, every link counts as one hop, so QoS
	// bounds are hop-distance bounds (the paper's "QoS=distance").
	Comm []int64

	// BW is the bandwidth of the link v -> parent(v): the maximum number of
	// requests it can carry per time unit. NoBandwidth (or a nil slice)
	// means unbounded.
	BW []int64
}

// NewInstance allocates an instance with the given tree and zeroed
// parameter vectors (QoS, Comm and BW left nil, i.e. unconstrained).
func NewInstance(t *tree.Tree) *Instance {
	n := t.Len()
	return &Instance{
		Tree: t,
		R:    make([]int64, n),
		W:    make([]int64, n),
		S:    make([]int64, n),
	}
}

// Validate checks that the instance is well formed: parameter vectors have
// the right length, requests/capacities/costs are non-negative and sit on
// vertices of the right kind.
func (in *Instance) Validate() error {
	if in.Tree == nil {
		return errors.New("core: instance has no tree")
	}
	n := in.Tree.Len()
	if len(in.R) != n || len(in.W) != n || len(in.S) != n {
		return fmt.Errorf("core: parameter vectors must have length %d (R=%d W=%d S=%d)",
			n, len(in.R), len(in.W), len(in.S))
	}
	if in.Q != nil && len(in.Q) != n {
		return fmt.Errorf("core: Q must have length %d, got %d", n, len(in.Q))
	}
	if in.Comm != nil && len(in.Comm) != n {
		return fmt.Errorf("core: Comm must have length %d, got %d", n, len(in.Comm))
	}
	if in.BW != nil && len(in.BW) != n {
		return fmt.Errorf("core: BW must have length %d, got %d", n, len(in.BW))
	}
	for v := 0; v < n; v++ {
		if in.Tree.IsClient(v) {
			if in.R[v] < 0 {
				return fmt.Errorf("core: client %d has negative requests %d", v, in.R[v])
			}
			if in.Q != nil && in.Q[v] < 0 && in.Q[v] != NoQoS {
				return fmt.Errorf("core: client %d has invalid QoS %d", v, in.Q[v])
			}
		} else {
			if in.W[v] < 0 {
				return fmt.Errorf("core: node %d has negative capacity %d", v, in.W[v])
			}
			if in.S[v] < 0 {
				return fmt.Errorf("core: node %d has negative storage cost %d", v, in.S[v])
			}
			if in.R[v] != 0 {
				return fmt.Errorf("core: internal node %d has requests %d", v, in.R[v])
			}
		}
		if in.Comm != nil && v != in.Tree.Root() && in.Comm[v] < 0 {
			return fmt.Errorf("core: link %d has negative comm time", v)
		}
		if in.BW != nil && v != in.Tree.Root() && in.BW[v] < 0 && in.BW[v] != NoBandwidth {
			return fmt.Errorf("core: link %d has invalid bandwidth %d", v, in.BW[v])
		}
	}
	return nil
}

// TotalRequests returns the sum of all client requests.
func (in *Instance) TotalRequests() int64 {
	var sum int64
	for _, c := range in.Tree.Clients() {
		sum += in.R[c]
	}
	return sum
}

// TotalCapacity returns the sum of all server capacities.
func (in *Instance) TotalCapacity() int64 {
	var sum int64
	for _, j := range in.Tree.Internal() {
		sum += in.W[j]
	}
	return sum
}

// Load returns λ = Σ r_i / Σ W_j, the paper's load factor.
func (in *Instance) Load() float64 {
	cap := in.TotalCapacity()
	if cap == 0 {
		return 0
	}
	return float64(in.TotalRequests()) / float64(cap)
}

// Homogeneous reports whether all internal vertices share one capacity.
func (in *Instance) Homogeneous() bool {
	nodes := in.Tree.Internal()
	for _, j := range nodes[1:] {
		if in.W[j] != in.W[nodes[0]] {
			return false
		}
	}
	return true
}

// HasQoS reports whether any client carries a finite QoS bound.
func (in *Instance) HasQoS() bool {
	if in.Q == nil {
		return false
	}
	for _, c := range in.Tree.Clients() {
		if in.Q[c] != NoQoS {
			return true
		}
	}
	return false
}

// HasBandwidth reports whether any link carries a finite bandwidth cap.
func (in *Instance) HasBandwidth() bool {
	if in.BW == nil {
		return false
	}
	for v := 0; v < in.Tree.Len(); v++ {
		if v != in.Tree.Root() && in.BW[v] != NoBandwidth {
			return true
		}
	}
	return false
}

// Dist returns the QoS distance from client/vertex v up to its ancestor a:
// the sum of Comm over the links of path[v -> a], or the hop count when
// Comm is nil.
func (in *Instance) Dist(v, a int) int64 {
	if in.Comm == nil {
		return int64(in.Tree.Dist(v, a))
	}
	var d int64
	for u := v; u != a; u = in.Tree.Parent(u) {
		d += in.Comm[u]
	}
	return d
}

// QoSAllows reports whether server s may hold requests of client c under
// the instance's QoS constraints. s must be an ancestor of c.
func (in *Instance) QoSAllows(c, s int) bool {
	if in.Q == nil || in.Q[c] == NoQoS {
		return true
	}
	return in.Dist(c, s) <= int64(in.Q[c])
}

// TrivialLowerBound returns ceil(Σ r_i / W) for homogeneous instances — the
// obvious Replica Counting lower bound of Section 3.4. It panics on
// heterogeneous instances.
func (in *Instance) TrivialLowerBound() int64 {
	if !in.Homogeneous() {
		panic("core: TrivialLowerBound requires a homogeneous instance")
	}
	w := in.W[in.Tree.Internal()[0]]
	if w == 0 {
		return 0
	}
	r := in.TotalRequests()
	return (r + w - 1) / w
}

// Clone returns a deep copy of the instance (sharing the immutable tree).
func (in *Instance) Clone() *Instance {
	cp := &Instance{Tree: in.Tree}
	cp.R = append([]int64(nil), in.R...)
	cp.W = append([]int64(nil), in.W...)
	cp.S = append([]int64(nil), in.S...)
	if in.Q != nil {
		cp.Q = append([]int(nil), in.Q...)
	}
	if in.Comm != nil {
		cp.Comm = append([]int64(nil), in.Comm...)
	}
	if in.BW != nil {
		cp.BW = append([]int64(nil), in.BW...)
	}
	return cp
}
