package core

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/tree"
)

// jsonInstance is the wire format of an Instance.
type jsonInstance struct {
	Parents  []int   `json:"parents"`
	IsClient []bool  `json:"is_client"`
	R        []int64 `json:"requests"`
	W        []int64 `json:"capacities"`
	S        []int64 `json:"storage_costs"`
	Q        []int   `json:"qos,omitempty"`
	Comm     []int64 `json:"comm,omitempty"`
	BW       []int64 `json:"bandwidth,omitempty"`
}

// MarshalJSON encodes the instance, embedding the tree shape.
func (in *Instance) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonInstance{
		Parents:  in.Tree.Parents(),
		IsClient: in.Tree.ClientFlags(),
		R:        in.R,
		W:        in.W,
		S:        in.S,
		Q:        in.Q,
		Comm:     in.Comm,
		BW:       in.BW,
	})
}

// UnmarshalJSON decodes and fully validates an instance.
func (in *Instance) UnmarshalJSON(data []byte) error {
	var ji jsonInstance
	if err := json.Unmarshal(data, &ji); err != nil {
		return err
	}
	t, err := tree.FromParents(ji.Parents, ji.IsClient)
	if err != nil {
		return err
	}
	ni := &Instance{Tree: t, R: ji.R, W: ji.W, S: ji.S, Q: ji.Q, Comm: ji.Comm, BW: ji.BW}
	if err := ni.Validate(); err != nil {
		return err
	}
	*in = *ni
	return nil
}

// WriteTo writes the instance as indented JSON.
func (in *Instance) WriteTo(w io.Writer) (int64, error) {
	data, err := json.MarshalIndent(in, "", "  ")
	if err != nil {
		return 0, err
	}
	data = append(data, '\n')
	n, err := w.Write(data)
	return int64(n), err
}

// ReadInstance decodes a JSON instance from r.
func ReadInstance(r io.Reader) (*Instance, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	in := new(Instance)
	if err := json.Unmarshal(data, in); err != nil {
		return nil, fmt.Errorf("core: decoding instance: %w", err)
	}
	return in, nil
}
