// Package multiobject implements the Section 8.1 extension of the Replica
// Placement problem to several object types: every client issues requests
// per object, a node may hold replicas of several objects, server capacity
// is shared across objects while storage costs are per object, and each
// object's assignment independently follows the tree's upward paths.
package multiobject

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/lp"
	"repro/internal/tree"
)

// ErrNoSolution is returned when the solver cannot place all requests.
var ErrNoSolution = errors.New("multiobject: no solution found")

// Instance is a multi-object Replica Placement instance. The embedded
// base instance supplies the tree, shared capacities W and (unused) base
// request vector; per-object data lives in R and S.
type Instance struct {
	Base *core.Instance
	// R[k][v] is the number of requests of client v for object k.
	R [][]int64
	// S[k][j] is the storage cost of a replica of object k at node j.
	S [][]int64
}

// New builds a multi-object instance over the given tree/base with k
// objects and zeroed per-object vectors.
func New(base *core.Instance, k int) *Instance {
	n := base.Tree.Len()
	mi := &Instance{Base: base, R: make([][]int64, k), S: make([][]int64, k)}
	for i := 0; i < k; i++ {
		mi.R[i] = make([]int64, n)
		mi.S[i] = make([]int64, n)
	}
	return mi
}

// Objects returns the number of object types.
func (mi *Instance) Objects() int { return len(mi.R) }

// Validate checks vector shapes and non-negativity.
func (mi *Instance) Validate() error {
	if err := mi.Base.Validate(); err != nil {
		return err
	}
	n := mi.Base.Tree.Len()
	if len(mi.R) != len(mi.S) {
		return fmt.Errorf("multiobject: %d request vectors vs %d cost vectors", len(mi.R), len(mi.S))
	}
	for k := range mi.R {
		if len(mi.R[k]) != n || len(mi.S[k]) != n {
			return fmt.Errorf("multiobject: object %d vectors must have length %d", k, n)
		}
		for v := 0; v < n; v++ {
			if mi.R[k][v] < 0 || mi.S[k][v] < 0 {
				return fmt.Errorf("multiobject: object %d has negative entry at %d", k, v)
			}
			if mi.R[k][v] > 0 && !mi.Base.Tree.IsClient(v) {
				return fmt.Errorf("multiobject: object %d has requests on internal node %d", k, v)
			}
		}
	}
	return nil
}

// Solution is one core.Solution per object. Capacity feasibility couples
// them; everything else is per object.
type Solution struct {
	PerObject []*core.Solution
}

// Cost returns the total storage cost: Σ_k Σ_{j holding object k} S[k][j].
func (s *Solution) Cost(mi *Instance) int64 {
	var cost int64
	for k, sol := range s.PerObject {
		for _, j := range sol.Replicas() {
			cost += mi.S[k][j]
		}
	}
	return cost
}

// Validate checks each per-object solution under the policy (against a
// per-object view of the instance) and the shared capacity constraint.
func (s *Solution) Validate(mi *Instance, p core.Policy) error {
	if len(s.PerObject) != mi.Objects() {
		return fmt.Errorf("multiobject: %d sub-solutions for %d objects", len(s.PerObject), mi.Objects())
	}
	n := mi.Base.Tree.Len()
	total := make([]int64, n)
	for k, sol := range s.PerObject {
		view := mi.view(k)
		// Per-object capacity is the shared W; the coupled check follows.
		if err := sol.Validate(view, p); err != nil {
			return fmt.Errorf("object %d: %w", k, err)
		}
		loads := sol.ServerLoads(n)
		for j := range total {
			total[j] += loads[j]
		}
	}
	for _, j := range mi.Base.Tree.Internal() {
		if total[j] > mi.Base.W[j] {
			return fmt.Errorf("multiobject: node %d total load %d exceeds shared capacity %d",
				j, total[j], mi.Base.W[j])
		}
	}
	return nil
}

// view builds a single-object core.Instance for object k (sharing the
// tree; capacities are the shared ones, costs are object k's).
func (mi *Instance) view(k int) *core.Instance {
	return &core.Instance{
		Tree: mi.Base.Tree,
		R:    mi.R[k],
		W:    mi.Base.W,
		S:    mi.S[k],
		Q:    mi.Base.Q,
		Comm: mi.Base.Comm,
		BW:   mi.Base.BW,
	}
}

// GreedyMultiple places all objects with a joint bottom-up greedy sweep
// (the natural extension of the MG heuristic): at every node, pending
// requests of all objects are absorbed up to the shared capacity, objects
// in round-robin order per node so no object starves. Like MG it is exact
// on feasibility for the Multiple policy: it fails only if no placement
// exists.
func GreedyMultiple(mi *Instance) (*Solution, error) {
	t := mi.Base.Tree
	k := mi.Objects()
	rrem := make([][]int64, k)
	for o := 0; o < k; o++ {
		rrem[o] = append([]int64(nil), mi.R[o]...)
	}
	sols := make([]*core.Solution, k)
	for o := range sols {
		sols[o] = core.NewSolution(t.Len())
	}
	// pending[v] lists (object, client) pairs with remaining requests in
	// subtree(v).
	type pc struct{ obj, client int }
	pending := make([][]pc, t.Len())
	for _, v := range t.PostOrder() {
		if t.IsClient(v) {
			for o := 0; o < k; o++ {
				if rrem[o][v] > 0 {
					pending[v] = append(pending[v], pc{o, v})
				}
			}
			continue
		}
		var acc []pc
		for _, c := range t.Children(v) {
			acc = append(acc, pending[c]...)
			pending[c] = nil
		}
		budget := mi.Base.W[v]
		rest := acc[:0]
		for _, e := range acc {
			if budget == 0 {
				rest = append(rest, e)
				continue
			}
			take := rrem[e.obj][e.client]
			if take > budget {
				take = budget
			}
			sols[e.obj].AddPortion(e.client, v, take)
			rrem[e.obj][e.client] -= take
			budget -= take
			if rrem[e.obj][e.client] > 0 {
				rest = append(rest, e)
			}
		}
		pending[v] = rest
	}
	if len(pending[t.Root()]) > 0 {
		return nil, ErrNoSolution
	}
	return &Solution{PerObject: sols}, nil
}

// RationalBound solves the fully rational multi-object LP under the
// Multiple policy — per-object replica variables x_{k,j} and assignment
// variables y_{k,i,j}, coupled by shared capacity rows — and returns its
// optimal value, a lower bound on any feasible placement's cost.
func RationalBound(mi *Instance) (float64, error) {
	t := mi.Base.Tree
	k := mi.Objects()
	type yv struct{ obj, client, server int }
	var ys []yv
	xCol := make(map[[2]int]int) // (obj, node) -> column
	col := 0
	for o := 0; o < k; o++ {
		for _, j := range t.Internal() {
			xCol[[2]int{o, j}] = col
			col++
		}
	}
	yStart := col
	for o := 0; o < k; o++ {
		for _, c := range t.Clients() {
			if mi.R[o][c] == 0 {
				continue
			}
			for a := t.Parent(c); a != tree.None; a = t.Parent(a) {
				ys = append(ys, yv{o, c, a})
			}
		}
	}
	prob := lp.NewProblem(yStart + len(ys))
	for o := 0; o < k; o++ {
		for _, j := range t.Internal() {
			c := xCol[[2]int{o, j}]
			prob.SetObjective(c, float64(mi.S[o][j]))
			prob.AddConstraint([]lp.Term{{Var: c, Coef: 1}}, lp.LE, 1)
		}
	}
	// Coverage rows per (object, client); capacity rows per node coupling
	// objects; replica-presence rows per (object, node).
	byClient := map[[2]int][]int{}
	byServer := map[[2]int][]int{} // (obj, server) -> y columns
	nodeLoad := map[int][]lp.Term{}
	for idx, y := range ys {
		c := yStart + idx
		byClient[[2]int{y.obj, y.client}] = append(byClient[[2]int{y.obj, y.client}], c)
		byServer[[2]int{y.obj, y.server}] = append(byServer[[2]int{y.obj, y.server}], c)
		nodeLoad[y.server] = append(nodeLoad[y.server], lp.Term{Var: c, Coef: 1})
	}
	for key, cols := range byClient {
		terms := make([]lp.Term, len(cols))
		for i, c := range cols {
			terms[i] = lp.Term{Var: c, Coef: 1}
		}
		prob.AddConstraint(terms, lp.EQ, float64(mi.R[key[0]][key[1]]))
	}
	for _, j := range t.Internal() {
		if terms := nodeLoad[j]; len(terms) > 0 {
			prob.AddConstraint(terms, lp.LE, float64(mi.Base.W[j]))
		}
	}
	for key, cols := range byServer {
		terms := make([]lp.Term, 0, len(cols)+1)
		for _, c := range cols {
			terms = append(terms, lp.Term{Var: c, Coef: 1})
		}
		terms = append(terms, lp.Term{Var: xCol[[2]int{key[0], key[1]}], Coef: -float64(mi.Base.W[key[1]])})
		prob.AddConstraint(terms, lp.LE, 0)
	}
	sol, err := prob.Solve()
	if err != nil {
		return 0, err
	}
	switch sol.Status {
	case lp.Optimal:
		return sol.Value, nil
	case lp.Infeasible:
		return 0, ErrNoSolution
	default:
		return 0, fmt.Errorf("multiobject: unexpected LP status %v", sol.Status)
	}
}
