package multiobject

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

// twoObjectInstance builds a small instance with 2 objects over a random
// base tree.
func twoObjectInstance(seed int64, lambda float64) *Instance {
	base := gen.Instance(gen.Config{Internal: 5, Clients: 8, Lambda: lambda}, seed)
	mi := New(base, 2)
	rng := rand.New(rand.NewSource(seed))
	for _, c := range base.Tree.Clients() {
		// Split the base demand between the two objects.
		r := base.R[c]
		a := rng.Int63n(r + 1)
		mi.R[0][c] = a
		mi.R[1][c] = r - a
		base.R[c] = 0
	}
	for _, j := range base.Tree.Internal() {
		mi.S[0][j] = 1
		mi.S[1][j] = 2
	}
	return mi
}

func TestValidateShapes(t *testing.T) {
	mi := twoObjectInstance(1, 0.4)
	if err := mi.Validate(); err != nil {
		t.Fatal(err)
	}
	if mi.Objects() != 2 {
		t.Errorf("Objects = %d", mi.Objects())
	}
	bad := New(mi.Base, 1)
	bad.R[0] = bad.R[0][:2]
	if err := bad.Validate(); err == nil {
		t.Error("want shape error")
	}
	neg := twoObjectInstance(2, 0.4)
	neg.R[0][neg.Base.Tree.Clients()[0]] = -1
	if err := neg.Validate(); err == nil {
		t.Error("want negativity error")
	}
	onNode := twoObjectInstance(3, 0.4)
	onNode.R[0][onNode.Base.Tree.Internal()[0]] = 5
	if err := onNode.Validate(); err == nil {
		t.Error("want internal-requests error")
	}
}

func TestGreedyMultipleValid(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		mi := twoObjectInstance(seed, 0.4)
		sol, err := GreedyMultiple(mi)
		if errors.Is(err, ErrNoSolution) {
			continue
		}
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if verr := sol.Validate(mi, core.Multiple); verr != nil {
			t.Fatalf("seed %d: invalid solution: %v", seed, verr)
		}
		if sol.Cost(mi) <= 0 {
			t.Errorf("seed %d: non-positive cost", seed)
		}
	}
}

// TestGreedyFeasibilityMatchesSingleObject: with all demand on one object,
// the multi-object greedy agrees with the single-object MG on feasibility.
func TestGreedyFeasibilityMatchesSingleObject(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		base := gen.Instance(gen.Config{Internal: 5, Clients: 8, Lambda: 0.8}, seed+100)
		mi := New(base.Clone(), 1)
		for _, c := range base.Tree.Clients() {
			mi.R[0][c] = base.R[c]
			mi.Base.R[c] = 0
		}
		for _, j := range base.Tree.Internal() {
			mi.S[0][j] = 1
		}
		_, merr := GreedyMultiple(mi)

		single := base.Clone()
		var mgOK bool
		{
			// Use the LP-free feasibility check: greedy absorb per node.
			t := single.Tree
			rrem := append([]int64(nil), single.R...)
			pending := make([]int64, t.Len())
			for _, v := range t.PostOrder() {
				if t.IsClient(v) {
					pending[v] = rrem[v]
					continue
				}
				var sum int64
				for _, c := range t.Children(v) {
					sum += pending[c]
				}
				take := sum
				if take > single.W[v] {
					take = single.W[v]
				}
				pending[v] = sum - take
			}
			mgOK = pending[t.Root()] == 0
		}
		if (merr == nil) != mgOK {
			t.Fatalf("seed %d: multi err=%v, single feasible=%v", seed, merr, mgOK)
		}
	}
}

// TestSharedCapacityCoupling: two objects that fit individually but not
// together must be infeasible.
func TestSharedCapacityCoupling(t *testing.T) {
	in := core.Figure1('a') // chain s2 -> s1 -> client, W = 1
	mi := New(in, 2)
	c := in.Tree.Clients()[0]
	in.R[c] = 0
	mi.R[0][c] = 1
	mi.R[1][c] = 2 // total 3 > combined capacity 2
	for _, j := range in.Tree.Internal() {
		mi.S[0][j], mi.S[1][j] = 1, 1
	}
	if _, err := GreedyMultiple(mi); !errors.Is(err, ErrNoSolution) {
		t.Errorf("want ErrNoSolution, got %v", err)
	}
	mi.R[1][c] = 1 // total 2 fits exactly
	sol, err := GreedyMultiple(mi)
	if err != nil {
		t.Fatalf("should fit: %v", err)
	}
	if verr := sol.Validate(mi, core.Multiple); verr != nil {
		t.Fatal(verr)
	}
}

func TestValidateCatchesSharedOverload(t *testing.T) {
	in := core.Figure1('a')
	mi := New(in, 2)
	c := in.Tree.Clients()[0]
	in.R[c] = 0
	mi.R[0][c] = 1
	mi.R[1][c] = 1
	for _, j := range in.Tree.Internal() {
		mi.S[0][j], mi.S[1][j] = 1, 1
	}
	// Both objects piled on the same node exceed shared W = 1.
	var s1 int
	for _, j := range in.Tree.Internal() {
		if j != in.Tree.Root() {
			s1 = j
		}
	}
	bad := &Solution{PerObject: []*core.Solution{
		core.NewSolution(in.Tree.Len()), core.NewSolution(in.Tree.Len()),
	}}
	bad.PerObject[0].AddPortion(c, s1, 1)
	bad.PerObject[1].AddPortion(c, s1, 1)
	if err := bad.Validate(mi, core.Multiple); err == nil {
		t.Error("want shared-capacity error")
	}
}

func TestRationalBound(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		mi := twoObjectInstance(seed+50, 0.5)
		sol, err := GreedyMultiple(mi)
		if errors.Is(err, ErrNoSolution) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		b, err := RationalBound(mi)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if b > float64(sol.Cost(mi))+1e-6 {
			t.Errorf("seed %d: bound %v exceeds greedy cost %d", seed, b, sol.Cost(mi))
		}
		if b < 0 {
			t.Errorf("seed %d: negative bound %v", seed, b)
		}
	}
}

func TestRationalBoundInfeasible(t *testing.T) {
	in := core.Figure1('a')
	mi := New(in, 1)
	c := in.Tree.Clients()[0]
	in.R[c] = 0
	mi.R[0][c] = 100
	for _, j := range in.Tree.Internal() {
		mi.S[0][j] = 1
	}
	if _, err := RationalBound(mi); !errors.Is(err, ErrNoSolution) {
		t.Errorf("want ErrNoSolution, got %v", err)
	}
}
