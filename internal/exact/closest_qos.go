package exact

import (
	"errors"

	"repro/internal/core"
)

// ClosestHomogeneousQoS solves Replica Counting under the Closest policy
// on homogeneous platforms with per-client QoS distance bounds — the
// "QoS=distance" setting the paper cites as polynomial from Liu, Lin and
// Wu [9].
//
// The algorithm extends the tree-partition greedy of ClosestHomogeneous
// with forced placements: walking bottom-up, a node v must receive a
// replica when some pending client's QoS bound excludes every ancestor of
// v (v is the client's last eligible server). Capacity overflows are
// resolved as before by promoting the internal child carrying the
// heaviest pending load. Placing a forced replica as high as the QoS
// permits dominates any lower placement (it absorbs at least as much),
// and the capacity greedy is the Kundu-Misra rule; optimality is
// cross-validated against the brute-force solver on randomized QoS
// instances in the tests.
func ClosestHomogeneousQoS(in *core.Instance) (*core.Solution, error) {
	if !in.Homogeneous() {
		return nil, errors.New("exact: ClosestHomogeneousQoS requires a homogeneous instance")
	}
	if in.HasBandwidth() {
		return nil, errors.New("exact: ClosestHomogeneousQoS does not support bandwidth constraints")
	}
	t := in.Tree
	w := in.W[t.Internal()[0]]
	if in.TotalRequests() == 0 {
		return core.NewSolution(t.Len()), nil
	}
	if w <= 0 {
		return nil, ErrNoSolution
	}

	flow := make([]int64, t.Len()) // uncovered flow leaving each vertex
	repl := make([]bool, t.Len())
	// minSlack[v] is the minimum over pending clients under v of
	// q_i − dist(i, v); +inf when nothing is pending.
	const inf = int64(1) << 50
	minSlack := make([]int64, t.Len())

	for _, v := range t.PostOrder() {
		if t.IsClient(v) {
			flow[v] = in.R[v]
			if in.R[v] == 0 {
				minSlack[v] = inf
			} else if in.Q == nil || in.Q[v] == core.NoQoS {
				minSlack[v] = inf
			} else {
				minSlack[v] = int64(in.Q[v])
			}
			continue
		}
		var f int64
		slack := inf
		for _, c := range t.Children(v) {
			f += flow[c]
			// Crossing the link c -> v costs one hop of slack (weighted
			// links would subtract Comm, handled by core.Instance.Dist;
			// the greedy supports the paper's hop-distance QoS).
			if flow[c] > 0 && minSlack[c]-linkCost(in, c) < slack {
				slack = minSlack[c] - linkCost(in, c)
			}
		}
		if slack < 0 {
			// Some pending client cannot even be served at v.
			return nil, ErrNoSolution
		}
		// Capacity cuts: promote heaviest internal children while the
		// pending load exceeds W.
		for f > w {
			best := -1
			for _, c := range t.Children(v) {
				if t.IsInternal(c) && !repl[c] && flow[c] > 0 &&
					(best < 0 || flow[c] > flow[best]) {
					best = c
				}
			}
			if best < 0 {
				return nil, ErrNoSolution
			}
			repl[best] = true
			f -= flow[best]
			flow[best] = 0
			// Recompute the slack without best's clients.
			slack = inf
			for _, c := range t.Children(v) {
				if flow[c] > 0 && minSlack[c]-linkCost(in, c) < slack {
					slack = minSlack[c] - linkCost(in, c)
				}
			}
		}
		// Forced placement: if crossing the link to the parent would
		// strand a client, serve everything here (the root is handled
		// after the sweep).
		if f > 0 && v != t.Root() && slack-linkCost(in, v) < 0 {
			repl[v] = true
			f = 0
			slack = inf
		}
		flow[v] = f
		minSlack[v] = slack
	}
	root := t.Root()
	if flow[root] > 0 {
		repl[root] = true
	}
	return assignClosest(in, repl)
}

// linkCost returns the QoS cost of crossing the link v -> parent(v).
func linkCost(in *core.Instance, v int) int64 {
	if in.Comm == nil {
		return 1
	}
	return in.Comm[v]
}
