package exact

import (
	"repro/internal/core"
	"repro/internal/maxflow"
)

// assignMultipleBW decides feasibility of a replica set under the
// Multiple policy with link-bandwidth caps (no QoS) and returns an
// assignment. Requests travel upward through tree links, so the problem
// is a single-commodity flow: source -> clients (r_i), every vertex ->
// its parent (link bandwidth), every replica -> sink (capacity). Integral
// capacities give an integral max flow; the per-client portions are then
// recovered by decomposing the flow bottom-up.
func assignMultipleBW(in *core.Instance, repl []bool) (*core.Solution, error) {
	t := in.Tree
	n := t.Len()
	g := maxflow.New(n + 2)
	src, sink := n, n+1

	var total int64
	for _, c := range t.Clients() {
		if in.R[c] > 0 {
			g.AddEdge(src, c, in.R[c])
			total += in.R[c]
		}
	}
	serve := make(map[int]maxflow.EdgeHandle, n) // v -> handle of v->sink
	for v := 0; v < n; v++ {
		if v != t.Root() {
			cap := maxflow.Inf
			if in.BW != nil && in.BW[v] != core.NoBandwidth {
				cap = in.BW[v]
			}
			g.AddEdge(v, t.Parent(v), cap)
		}
		if t.IsInternal(v) && repl[v] && in.W[v] > 0 {
			serve[v] = g.AddEdge(v, sink, in.W[v])
		}
	}
	if g.Run(src, sink) != total {
		return nil, ErrNoSolution
	}

	// Flow decomposition: walk bottom-up carrying (client, amount) parcels.
	type parcel struct {
		client int
		amount int64
	}
	carried := make([][]parcel, n)
	sol := core.NewSolution(n)
	for _, v := range t.PostOrder() {
		var have []parcel
		if t.IsClient(v) {
			if in.R[v] > 0 {
				have = []parcel{{client: v, amount: in.R[v]}}
			}
		} else {
			for _, c := range t.Children(v) {
				have = append(have, carried[c]...)
				carried[c] = nil
			}
			if h, ok := serve[v]; ok {
				load := g.Flow(h)
				rest := have[:0]
				for _, p := range have {
					if load > 0 {
						take := p.amount
						if take > load {
							take = load
						}
						sol.AddPortion(p.client, v, take)
						load -= take
						p.amount -= take
					}
					if p.amount > 0 {
						rest = append(rest, p)
					}
				}
				have = rest
			}
		}
		carried[v] = have
	}
	if len(carried[t.Root()]) > 0 {
		// Cannot happen when the max flow saturated the source.
		return nil, ErrNoSolution
	}
	return sol, nil
}
