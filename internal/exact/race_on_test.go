//go:build race

package exact

// raceEnabled reports that the race detector is active. Under -race,
// sync.Pool intentionally drops items to expose races, so the
// allocation-regression tests cannot hold and are skipped.
const raceEnabled = true
