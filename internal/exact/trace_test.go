package exact

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

// TestTraceFigure6 asserts the exact pass-2 narrative on the Figure 6
// network: first n4 with useful flow 7, then n2 with useful flow 1.
func TestTraceFigure6(t *testing.T) {
	in, nodes := core.Figure6()
	n1, n2, n3, n4 := nodes[0], nodes[1], nodes[2], nodes[3]
	n6, n10 := nodes[5], nodes[9]

	tr, err := MultipleHomogeneousTrace(in)
	if err != nil {
		t.Fatal(err)
	}
	wantPass1 := map[int]bool{n1: true, n3: true, n6: true, n10: true}
	if len(tr.Pass1Replicas) != 4 {
		t.Fatalf("pass1 = %v, want 4 nodes", tr.Pass1Replicas)
	}
	for _, v := range tr.Pass1Replicas {
		if !wantPass1[v] {
			t.Errorf("unexpected pass-1 replica %d", v)
		}
	}
	if tr.RootFlowAfterPass1 != 8 {
		t.Errorf("root flow after pass 1 = %d, want 8", tr.RootFlowAfterPass1)
	}
	want := []Pass2Pick{{Node: n4, UsefulFlow: 7}, {Node: n2, UsefulFlow: 1}}
	if len(tr.Pass2Picks) != len(want) {
		t.Fatalf("pass2 = %v, want %v", tr.Pass2Picks, want)
	}
	for i := range want {
		if tr.Pass2Picks[i] != want[i] {
			t.Errorf("pass2[%d] = %v, want %v", i, tr.Pass2Picks[i], want[i])
		}
	}
	out := tr.String()
	for _, s := range []string{"pass 1", "pass 2 step 1", "useful flow 7", "pass 3"} {
		if !strings.Contains(out, s) {
			t.Errorf("trace text missing %q:\n%s", s, out)
		}
	}
}

// TestTraceMatchesPlainSolver: the instrumented path returns exactly the
// same solutions as MultipleHomogeneous.
func TestTraceMatchesPlainSolver(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		in := gen.Instance(gen.Config{
			Internal: 4 + int(seed%6), Clients: 4 + int(seed%8),
			Lambda: 0.2 + float64(seed%8)/10.0, UnitCosts: true,
		}, seed+7000)
		plain, perr := MultipleHomogeneous(in)
		tr, terr := MultipleHomogeneousTrace(in)
		if (perr == nil) != (terr == nil) {
			t.Fatalf("seed %d: feasibility differs: %v vs %v", seed, perr, terr)
		}
		if perr != nil {
			continue
		}
		if plain.ReplicaCount() != tr.Solution.ReplicaCount() {
			t.Fatalf("seed %d: counts differ: %d vs %d",
				seed, plain.ReplicaCount(), tr.Solution.ReplicaCount())
		}
		if err := tr.Solution.Validate(in, core.Multiple); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestTraceRejects(t *testing.T) {
	if _, err := MultipleHomogeneousTrace(core.Figure4(5, 10)); err == nil {
		t.Error("want error for heterogeneous instance")
	}
	over := core.Figure1('a')
	over.R[over.Tree.Clients()[0]] = 100
	if _, err := MultipleHomogeneousTrace(over); !errors.Is(err, ErrNoSolution) {
		t.Errorf("want ErrNoSolution, got %v", err)
	}
}
