package exact

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
)

// TestMultipleHomogeneousSteadyStateAllocs pins the scratch-pool
// contract: once the pool is warm, a solve allocates only the returned
// Solution (struct + assignment headers + one portion slab), nothing
// proportional to the work done.
func TestMultipleHomogeneousSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	in := gen.Instance(gen.Config{Internal: 100, Clients: 200, Lambda: 0.5, UnitCosts: true}, 42)
	if _, err := MultipleHomogeneous(in); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := MultipleHomogeneous(in); err != nil {
			t.Fatal(err)
		}
	})
	const limit = 8 // the returned Solution, with headroom for a mid-run GC refilling the pool
	if allocs > limit {
		t.Errorf("MultipleHomogeneous: %.1f allocs/run, want <= %d", allocs, limit)
	}
}

// TestBruteForceCancellation: an expired context stops the subset
// enumeration instead of running the full 2^|N| sweep.
func TestBruteForceCancellation(t *testing.T) {
	in := gen.Instance(gen.Config{Internal: MaxBruteForceNodes, Clients: 30, Lambda: 0.5, UnitCosts: true}, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := BruteForce(ctx, in, core.Upwards)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("cancelled brute force took %v", d)
	}

	// A deadline that fires mid-run also stops the sweep.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel2()
	start = time.Now()
	_, err = BruteForce(ctx2, in, core.Upwards)
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		// The sweep may legitimately finish under the deadline on a fast
		// machine; only a non-context error is a failure.
		t.Fatalf("err = %v, want nil or context.DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("deadlined brute force took %v", d)
	}
}
