package exact

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/maxflow"
	"repro/internal/tree"
)

// MaxBruteForceNodes caps the instance size accepted by the brute-force
// solvers: they enumerate all 2^|N| replica subsets.
const MaxBruteForceNodes = 20

// bruteCancelStride is how many replica subsets BruteForce enumerates
// between context checks.
const bruteCancelStride = 1024

// BruteForce computes an optimal solution for the given policy by
// exhaustive enumeration of replica subsets, checking feasibility of each
// subset exactly (deterministic assignment for Closest, backtracking for
// Upwards, max-flow for Multiple). It honours QoS constraints for all
// policies and bandwidth constraints for Closest and Upwards; combining
// bandwidth with Multiple is rejected (use the LP instead).
//
// It is exponential and refuses instances with more than
// MaxBruteForceNodes internal vertices; ctx cancellation is observed every
// bruteCancelStride subsets, so an expired deadline stops the enumeration
// promptly. It exists to validate the polynomial algorithms and
// heuristics.
func BruteForce(ctx context.Context, in *core.Instance, p core.Policy) (*core.Solution, error) {
	t := in.Tree
	n := t.NumInternal()
	if n > MaxBruteForceNodes {
		return nil, fmt.Errorf("exact: brute force limited to %d nodes, got %d", MaxBruteForceNodes, n)
	}
	if p == core.Multiple && in.HasBandwidth() && in.HasQoS() {
		return nil, errors.New("exact: brute force does not combine Multiple with both bandwidth and QoS constraints (use the LP)")
	}
	nodes := t.Internal()
	var best *core.Solution
	var bestCost int64
	for mask := 0; mask < 1<<n; mask++ {
		if mask%bruteCancelStride == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		var cost int64
		repl := make([]bool, t.Len())
		for b := 0; b < n; b++ {
			if mask&(1<<b) != 0 {
				repl[nodes[b]] = true
				cost += in.S[nodes[b]]
			}
		}
		if best != nil && cost >= bestCost {
			continue
		}
		var sol *core.Solution
		var err error
		switch p {
		case core.Closest:
			sol, err = assignClosest(in, repl)
		case core.Upwards:
			sol, err = assignUpwards(in, repl)
		case core.Multiple:
			if in.HasBandwidth() {
				sol, err = assignMultipleBW(in, repl)
			} else {
				sol, err = assignMultiple(in, repl)
			}
		default:
			return nil, fmt.Errorf("exact: unknown policy %v", p)
		}
		if err != nil {
			continue
		}
		// Cost of the solution actually built (unused replicas dropped).
		c := sol.StorageCost(in)
		if best == nil || c < bestCost {
			best, bestCost = sol, c
		}
	}
	if best == nil {
		return nil, ErrNoSolution
	}
	return best, nil
}

// assignUpwards decides by backtracking whether every client can be mapped
// to a single replica on its path (capacity, QoS and bandwidth aware), and
// returns one such assignment. Clients are placed in non-increasing
// request order, which prunes heavily.
func assignUpwards(in *core.Instance, repl []bool) (*core.Solution, error) {
	t := in.Tree
	// Candidate servers per client.
	type cand struct {
		client  int
		servers []int
	}
	var cands []cand
	for _, c := range t.Clients() {
		if in.R[c] == 0 {
			continue
		}
		var servers []int
		for a := t.Parent(c); a != tree.None; a = t.Parent(a) {
			if repl[a] && in.QoSAllows(c, a) && in.W[a] >= in.R[c] {
				servers = append(servers, a)
			}
		}
		if len(servers) == 0 {
			return nil, ErrNoSolution
		}
		cands = append(cands, cand{client: c, servers: servers})
	}
	sort.Slice(cands, func(i, j int) bool {
		return in.R[cands[i].client] > in.R[cands[j].client]
	})

	hasBW := in.HasBandwidth()
	capLeft := append([]int64(nil), in.W...)
	bwLeft := append([]int64(nil), in.BW...)
	choice := make([]int, len(cands))

	var try func(k int) bool
	try = func(k int) bool {
		if k == len(cands) {
			return true
		}
		c := cands[k].client
		r := in.R[c]
		for _, s := range cands[k].servers {
			if capLeft[s] < r {
				continue
			}
			if hasBW {
				ok := true
				for u := c; u != s; u = t.Parent(u) {
					if in.BW[u] != core.NoBandwidth && bwLeft[u] < r {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				for u := c; u != s; u = t.Parent(u) {
					if in.BW[u] != core.NoBandwidth {
						bwLeft[u] -= r
					}
				}
			}
			capLeft[s] -= r
			choice[k] = s
			if try(k + 1) {
				return true
			}
			capLeft[s] += r
			if hasBW {
				for u := c; u != s; u = t.Parent(u) {
					if in.BW[u] != core.NoBandwidth {
						bwLeft[u] += r
					}
				}
			}
		}
		return false
	}
	if !try(0) {
		return nil, ErrNoSolution
	}
	sol := core.NewSolution(t.Len())
	for k, cd := range cands {
		sol.AddPortion(cd.client, choice[k], in.R[cd.client])
	}
	return sol, nil
}

// assignMultiple decides feasibility of a replica set under the Multiple
// policy via max-flow on the client/server bipartite transportation graph
// (QoS-aware), and extracts an assignment from the optimal flow.
func assignMultiple(in *core.Instance, repl []bool) (*core.Solution, error) {
	t := in.Tree
	clients := t.Clients()
	nodes := t.Internal()
	// Vertex layout: 0..|C|-1 clients, |C|..|C|+|N|-1 servers, then s, t.
	g := maxflow.New(len(clients) + len(nodes) + 2)
	src := len(clients) + len(nodes)
	sink := src + 1
	cIdx := make(map[int]int, len(clients))
	for i, c := range clients {
		cIdx[c] = i
	}
	nIdx := make(map[int]int, len(nodes))
	for i, j := range nodes {
		nIdx[j] = i
	}
	var total int64
	for i, c := range clients {
		if in.R[c] == 0 {
			continue
		}
		g.AddEdge(src, i, in.R[c])
		total += in.R[c]
	}
	for i, j := range nodes {
		if repl[j] {
			g.AddEdge(len(clients)+i, sink, in.W[j])
		}
	}
	type arc struct {
		c, s   int
		handle maxflow.EdgeHandle
	}
	var arcs []arc
	for _, c := range clients {
		if in.R[c] == 0 {
			continue
		}
		for a := t.Parent(c); a != tree.None; a = t.Parent(a) {
			if repl[a] && in.QoSAllows(c, a) {
				h := g.AddEdge(cIdx[c], len(clients)+nIdx[a], in.R[c])
				arcs = append(arcs, arc{c: c, s: a, handle: h})
			}
		}
	}
	if g.Run(src, sink) != total {
		return nil, ErrNoSolution
	}
	sol := core.NewSolution(t.Len())
	for _, a := range arcs {
		if f := g.Flow(a.handle); f > 0 {
			sol.AddPortion(a.c, a.s, f)
		}
	}
	return sol, nil
}

// FeasibleReplicaSet reports whether the given replica set (as a boolean
// vector over vertices) admits a valid assignment under the policy. Same
// constraint support as BruteForce.
func FeasibleReplicaSet(in *core.Instance, p core.Policy, repl []bool) bool {
	var err error
	switch p {
	case core.Closest:
		_, err = assignClosest(in, repl)
	case core.Upwards:
		_, err = assignUpwards(in, repl)
	case core.Multiple:
		if in.HasBandwidth() && !in.HasQoS() {
			_, err = assignMultipleBW(in, repl)
		} else {
			_, err = assignMultiple(in, repl)
		}
	default:
		return false
	}
	return err == nil
}
