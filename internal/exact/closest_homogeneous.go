package exact

import (
	"errors"

	"repro/internal/core"
	"repro/internal/tree"
)

// ClosestHomogeneous solves Replica Counting optimally under the Closest
// policy on a homogeneous platform (the polynomial case the paper cites
// from Cidon et al. and Liu et al.).
//
// Under Closest, a replica at node s absorbs every request of subtree(s)
// not already absorbed strictly below s, so a placement is exactly a
// partition of the clients into subtree regions of weight at most W. The
// minimum number of regions is found by the classical minimum
// tree-partitioning greedy (Kundu & Misra): walk the tree bottom-up and,
// whenever the uncovered flow entering a node exceeds W, promote the
// internal child carrying the heaviest uncovered flow to a replica,
// repeating until the node's inflow fits. Only internal children can be
// promoted — a region must contain a server — so an instance whose client
// children alone overflow a node is infeasible.
//
// Optimality is cross-checked against the brute-force solver in the tests.
func ClosestHomogeneous(in *core.Instance) (*core.Solution, error) {
	if !in.Homogeneous() {
		return nil, errors.New("exact: ClosestHomogeneous requires a homogeneous instance")
	}
	if in.HasQoS() || in.HasBandwidth() {
		return nil, errors.New("exact: ClosestHomogeneous does not support QoS or bandwidth constraints")
	}
	t := in.Tree
	w := in.W[t.Internal()[0]]
	if in.TotalRequests() == 0 {
		return core.NewSolution(t.Len()), nil
	}
	if w <= 0 {
		return nil, ErrNoSolution
	}

	flow := make([]int64, t.Len()) // uncovered flow leaving each vertex
	repl := make([]bool, t.Len())
	for _, v := range t.PostOrder() {
		if t.IsClient(v) {
			flow[v] = in.R[v]
			continue
		}
		var f int64
		for _, c := range t.Children(v) {
			f += flow[c]
		}
		for f > w {
			// Promote the internal child with the heaviest uncovered flow.
			best := -1
			for _, c := range t.Children(v) {
				if t.IsInternal(c) && !repl[c] && flow[c] > 0 &&
					(best < 0 || flow[c] > flow[best]) {
					best = c
				}
			}
			if best < 0 {
				return nil, ErrNoSolution // client children alone overflow v
			}
			repl[best] = true
			f -= flow[best]
			flow[best] = 0
		}
		flow[v] = f
	}
	root := t.Root()
	if flow[root] > 0 {
		repl[root] = true
	}
	return assignClosest(in, repl)
}

// assignClosest builds the (unique) Closest assignment induced by a replica
// set: every client is served by the first replica on its path to the
// root. It returns ErrNoSolution if some client has no replica above it or
// a server's load exceeds its capacity.
func assignClosest(in *core.Instance, repl []bool) (*core.Solution, error) {
	t := in.Tree
	sol := core.NewSolution(t.Len())
	loads := make([]int64, t.Len())
	for _, c := range t.Clients() {
		if in.R[c] == 0 {
			continue
		}
		server := -1
		for a := t.Parent(c); a != tree.None; a = t.Parent(a) {
			if repl[a] {
				server = a
				break
			}
		}
		if server < 0 {
			return nil, ErrNoSolution
		}
		if !in.QoSAllows(c, server) {
			return nil, ErrNoSolution
		}
		sol.AddPortion(c, server, in.R[c])
		loads[server] += in.R[c]
	}
	for _, j := range t.Internal() {
		if loads[j] > in.W[j] {
			return nil, ErrNoSolution
		}
	}
	if in.HasBandwidth() {
		flows := sol.LinkFlows(in)
		for v := 0; v < t.Len(); v++ {
			if v != t.Root() && in.BW[v] != core.NoBandwidth && flows[v] > in.BW[v] {
				return nil, ErrNoSolution
			}
		}
	}
	// Replicas that serve no client are dropped (they only add cost).
	return sol, nil
}
