package exact

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

// solveCount runs MultipleHomogeneous and returns the replica count, or -1
// if infeasible.
func solveCount(t *testing.T, in *core.Instance) int {
	t.Helper()
	sol, err := MultipleHomogeneous(in)
	if errors.Is(err, ErrNoSolution) {
		return -1
	}
	if err != nil {
		t.Fatalf("MultipleHomogeneous: %v", err)
	}
	if verr := sol.Validate(in, core.Multiple); verr != nil {
		t.Fatalf("invalid solution: %v", verr)
	}
	return sol.ReplicaCount()
}

// TestFigure1_ExistencePerPolicy reproduces Figure 1: variant (a) solvable
// by all policies, (b) by Upwards and Multiple only, (c) by Multiple only.
func TestFigure1_ExistencePerPolicy(t *testing.T) {
	type row struct {
		variant byte
		want    map[core.Policy]bool
	}
	rows := []row{
		{'a', map[core.Policy]bool{core.Closest: true, core.Upwards: true, core.Multiple: true}},
		{'b', map[core.Policy]bool{core.Closest: false, core.Upwards: true, core.Multiple: true}},
		{'c', map[core.Policy]bool{core.Closest: false, core.Upwards: false, core.Multiple: true}},
	}
	for _, r := range rows {
		in := core.Figure1(r.variant)
		for _, p := range core.Policies {
			sol, err := BruteForce(context.Background(), in, p)
			got := err == nil
			if got != r.want[p] {
				t.Errorf("fig1%c %v: solvable=%v, want %v", r.variant, p, got, r.want[p])
			}
			if got {
				if verr := sol.Validate(in, p); verr != nil {
					t.Errorf("fig1%c %v: invalid solution: %v", r.variant, p, verr)
				}
			}
		}
	}
}

// TestFigure2_UpwardsVsClosest reproduces the Section 3.2 gap: Upwards
// places 3 replicas where Closest needs n+2.
func TestFigure2_UpwardsVsClosest(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4} {
		in := core.Figure2(n)
		up, err := BruteForce(context.Background(), in, core.Upwards)
		if err != nil {
			t.Fatalf("n=%d Upwards: %v", n, err)
		}
		cl, err := BruteForce(context.Background(), in, core.Closest)
		if err != nil {
			t.Fatalf("n=%d Closest: %v", n, err)
		}
		wantUp := 3
		if n == 1 {
			// With n = 1 capacity equals 1 and the 3 upper nodes can hold
			// only 3 of the 3 requests; still 3 replicas.
			wantUp = 3
		}
		if up.ReplicaCount() != wantUp {
			t.Errorf("n=%d: Upwards count = %d, want %d", n, up.ReplicaCount(), wantUp)
		}
		if cl.ReplicaCount() != n+2 {
			t.Errorf("n=%d: Closest count = %d, want %d", n, cl.ReplicaCount(), n+2)
		}
		// The polynomial Closest solver must agree with brute force.
		ch, err := ClosestHomogeneous(in)
		if err != nil {
			t.Fatalf("n=%d ClosestHomogeneous: %v", n, err)
		}
		if ch.ReplicaCount() != cl.ReplicaCount() {
			t.Errorf("n=%d: ClosestHomogeneous = %d, brute force = %d", n, ch.ReplicaCount(), cl.ReplicaCount())
		}
	}
}

// TestFigure3_MultipleVsUpwards reproduces the Section 3.3 homogeneous gap:
// Multiple needs n+1 replicas, Upwards needs 2n.
func TestFigure3_MultipleVsUpwards(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		in := core.Figure3(n)
		if got := solveCount(t, in); got != n+1 {
			t.Errorf("n=%d: Multiple count = %d, want %d", n, got, n+1)
		}
		up, err := BruteForce(context.Background(), in, core.Upwards)
		if err != nil {
			t.Fatalf("n=%d Upwards: %v", n, err)
		}
		if up.ReplicaCount() != 2*n {
			t.Errorf("n=%d: Upwards count = %d, want %d", n, up.ReplicaCount(), 2*n)
		}
	}
}

// TestFigure4_HeterogeneousGap reproduces the Section 3.3 heterogeneous
// gap: Multiple costs 2n, Upwards costs (K+1)n.
func TestFigure4_HeterogeneousGap(t *testing.T) {
	const n, k = 5, 10
	in := core.Figure4(n, k)
	mu, err := BruteForce(context.Background(), in, core.Multiple)
	if err != nil {
		t.Fatalf("Multiple: %v", err)
	}
	if got := mu.StorageCost(in); got != 2*n {
		t.Errorf("Multiple cost = %d, want %d", got, 2*n)
	}
	up, err := BruteForce(context.Background(), in, core.Upwards)
	if err != nil {
		t.Fatalf("Upwards: %v", err)
	}
	// The paper narrates a cost of (K+1)n for Upwards, but serving both
	// clients at s3 alone costs Kn, which is cheaper for K >= 2; the
	// optimum is Kn. The claim that matters — Multiple is arbitrarily
	// better than Upwards as K grows — holds either way.
	if got := up.StorageCost(in); got != k*n {
		t.Errorf("Upwards cost = %d, want %d", got, k*n)
	}
	if up.StorageCost(in) < 4*mu.StorageCost(in) {
		t.Errorf("gap too small: Upwards %d vs Multiple %d", up.StorageCost(in), mu.StorageCost(in))
	}
}

// TestFigure5_LowerBoundGap reproduces Section 3.4: the optimal cost is
// n+1 for every policy while the trivial bound is 2.
func TestFigure5_LowerBoundGap(t *testing.T) {
	const n, w = 4, 8
	in := core.Figure5(n, w)
	if in.TrivialLowerBound() != 2 {
		t.Fatalf("trivial bound = %d", in.TrivialLowerBound())
	}
	for _, p := range core.Policies {
		sol, err := BruteForce(context.Background(), in, p)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if sol.ReplicaCount() != n+1 {
			t.Errorf("%v: count = %d, want %d", p, sol.ReplicaCount(), n+1)
		}
	}
	if got := solveCount(t, in); got != n+1 {
		t.Errorf("MultipleHomogeneous count = %d, want %d", got, n+1)
	}
}

// TestFigure6_WorkedExample traces the optimal algorithm through the
// engineered Figure-6 analogue: pass-1 saturates {n1,n3,n6,n10}, pass 2
// first grants n4 (useful flow 7) then n2 (useful flow 1, first in DFS
// order), and pass 3 splits the 15-request client between n3 and the root.
func TestFigure6_WorkedExample(t *testing.T) {
	in, nodes := core.Figure6()
	n1, n2, n3, n4 := nodes[0], nodes[1], nodes[2], nodes[3]
	n6, n10 := nodes[5], nodes[9]

	sol, err := MultipleHomogeneous(in)
	if err != nil {
		t.Fatalf("MultipleHomogeneous: %v", err)
	}
	if err := sol.Validate(in, core.Multiple); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	want := []int{n1, n2, n3, n4, n6, n10}
	got := sol.Replicas()
	if len(got) != len(want) {
		t.Fatalf("replicas = %v, want %v", got, want)
	}
	wantSet := map[int]bool{}
	for _, v := range want {
		wantSet[v] = true
	}
	for _, v := range got {
		if !wantSet[v] {
			t.Errorf("unexpected replica %d (got %v, want %v)", v, got, want)
		}
	}
	// The 15-request client must be split: 6 on n3 (its capacity residue
	// after the smaller clients) and 9 on the root.
	var c15 int = -1
	for _, c := range in.Tree.Clients() {
		if in.R[c] == 15 {
			c15 = c
		}
	}
	ports := sol.Assign[c15]
	if len(ports) != 2 {
		t.Fatalf("client 15 portions = %v, want a 2-way split", ports)
	}
	byServer := map[int]int64{}
	for _, p := range ports {
		byServer[p.Server] = p.Load
	}
	if byServer[n3] != 6 || byServer[n1] != 9 {
		t.Errorf("split = %v, want n3:6 n1:9", byServer)
	}
	// Cross-check optimality against brute force.
	bf, err := BruteForce(context.Background(), in, core.Multiple)
	if err != nil {
		t.Fatalf("BruteForce: %v", err)
	}
	if bf.ReplicaCount() != sol.ReplicaCount() {
		t.Errorf("count = %d, brute force = %d", sol.ReplicaCount(), bf.ReplicaCount())
	}
}

// TestMultipleHomogeneousOptimal cross-validates the polynomial algorithm
// against brute force on many random small instances (Theorem 1).
func TestMultipleHomogeneousOptimal(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		cfg := gen.Config{
			Internal:  3 + int(seed%6),
			Clients:   2 + int(seed%7),
			Lambda:    0.2 + float64(seed%8)/10.0,
			UnitCosts: true,
		}
		in := gen.Instance(cfg, seed)
		fast, ferr := MultipleHomogeneous(in)
		slow, serr := BruteForce(context.Background(), in, core.Multiple)
		if (ferr == nil) != (serr == nil) {
			t.Fatalf("seed %d: feasibility mismatch: fast=%v slow=%v", seed, ferr, serr)
		}
		if ferr != nil {
			continue
		}
		if err := fast.Validate(in, core.Multiple); err != nil {
			t.Fatalf("seed %d: invalid fast solution: %v", seed, err)
		}
		if fast.ReplicaCount() != slow.ReplicaCount() {
			t.Fatalf("seed %d: count %d != optimal %d", seed, fast.ReplicaCount(), slow.ReplicaCount())
		}
	}
}

// TestClosestHomogeneousOptimal cross-validates the Closest greedy against
// brute force on many random small instances.
func TestClosestHomogeneousOptimal(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		cfg := gen.Config{
			Internal:  3 + int(seed%6),
			Clients:   2 + int(seed%7),
			Lambda:    0.2 + float64(seed%8)/10.0,
			UnitCosts: true,
		}
		in := gen.Instance(cfg, seed)
		fast, ferr := ClosestHomogeneous(in)
		slow, serr := BruteForce(context.Background(), in, core.Closest)
		if (ferr == nil) != (serr == nil) {
			t.Fatalf("seed %d: feasibility mismatch: fast=%v slow=%v", seed, ferr, serr)
		}
		if ferr != nil {
			continue
		}
		if err := fast.Validate(in, core.Closest); err != nil {
			t.Fatalf("seed %d: invalid fast solution: %v", seed, err)
		}
		if fast.ReplicaCount() != slow.ReplicaCount() {
			t.Fatalf("seed %d: count %d != optimal %d\ninstance load %.2f",
				seed, fast.ReplicaCount(), slow.ReplicaCount(), in.Load())
		}
	}
}

// TestPolicyHierarchy checks cost(Multiple) <= cost(Upwards) <=
// cost(Closest) on random instances, for both homogeneous and
// heterogeneous platforms (Section 3).
func TestPolicyHierarchy(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		in := gen.Instance(gen.Config{
			Internal:      4 + int(seed%5),
			Clients:       3 + int(seed%6),
			Lambda:        0.3 + float64(seed%6)/10.0,
			Heterogeneous: seed%2 == 0,
		}, seed+1000)
		costs := map[core.Policy]int64{}
		feasible := map[core.Policy]bool{}
		for _, p := range core.Policies {
			sol, err := BruteForce(context.Background(), in, p)
			if err == nil {
				feasible[p] = true
				costs[p] = sol.StorageCost(in)
			}
		}
		if feasible[core.Closest] && !feasible[core.Upwards] {
			t.Fatalf("seed %d: Closest feasible but Upwards not", seed)
		}
		if feasible[core.Upwards] && !feasible[core.Multiple] {
			t.Fatalf("seed %d: Upwards feasible but Multiple not", seed)
		}
		if feasible[core.Closest] && costs[core.Upwards] > costs[core.Closest] {
			t.Errorf("seed %d: Upwards %d > Closest %d", seed, costs[core.Upwards], costs[core.Closest])
		}
		if feasible[core.Upwards] && costs[core.Multiple] > costs[core.Upwards] {
			t.Errorf("seed %d: Multiple %d > Upwards %d", seed, costs[core.Multiple], costs[core.Upwards])
		}
	}
}

func TestMultipleHomogeneousRejects(t *testing.T) {
	in := core.Figure4(5, 10) // heterogeneous
	if _, err := MultipleHomogeneous(in); err == nil {
		t.Error("want error for heterogeneous instance")
	}
	if _, err := ClosestHomogeneous(in); err == nil {
		t.Error("want error for heterogeneous instance")
	}
	q := core.Figure1('a')
	q.Q = make([]int, q.Tree.Len())
	for i := range q.Q {
		q.Q[i] = core.NoQoS
	}
	q.Q[q.Tree.Clients()[0]] = 1
	if _, err := MultipleHomogeneous(q); err == nil {
		t.Error("want error for QoS instance")
	}
}

func TestZeroCapacity(t *testing.T) {
	in := core.Figure1('a')
	for _, j := range in.Tree.Internal() {
		in.W[j] = 0
	}
	if _, err := MultipleHomogeneous(in); !errors.Is(err, ErrNoSolution) {
		t.Errorf("want ErrNoSolution, got %v", err)
	}
	if _, err := ClosestHomogeneous(in); !errors.Is(err, ErrNoSolution) {
		t.Errorf("want ErrNoSolution, got %v", err)
	}
	// Zero requests with zero capacity is trivially feasible.
	for _, c := range in.Tree.Clients() {
		in.R[c] = 0
	}
	sol, err := MultipleHomogeneous(in)
	if err != nil || sol.ReplicaCount() != 0 {
		t.Errorf("zero instance: %v, %v", sol, err)
	}
}

func TestBruteForceLimits(t *testing.T) {
	in := gen.Instance(gen.Config{Internal: MaxBruteForceNodes + 1, Clients: 3}, 1)
	if _, err := BruteForce(context.Background(), in, core.Closest); err == nil {
		t.Error("want size-limit error")
	}
	small := core.Figure1('a')
	if _, err := BruteForce(context.Background(), small, core.Policy(42)); err == nil {
		t.Error("want unknown-policy error")
	}
}

func TestFeasibleReplicaSet(t *testing.T) {
	in := core.Figure1('c') // one client with 2 requests, W=1 everywhere
	t.Log(in.Tree)
	all := make([]bool, in.Tree.Len())
	for _, j := range in.Tree.Internal() {
		all[j] = true
	}
	if FeasibleReplicaSet(in, core.Closest, all) {
		t.Error("Closest should be infeasible on fig1c")
	}
	if FeasibleReplicaSet(in, core.Upwards, all) {
		t.Error("Upwards should be infeasible on fig1c")
	}
	if !FeasibleReplicaSet(in, core.Multiple, all) {
		t.Error("Multiple should be feasible on fig1c")
	}
	if FeasibleReplicaSet(in, core.Policy(42), all) {
		t.Error("unknown policy should be infeasible")
	}
}

// TestBruteForceWithQoS checks QoS handling across policies on a chain.
func TestBruteForceWithQoS(t *testing.T) {
	in := core.Figure2(2) // depth-3 tree
	in.Q = make([]int, in.Tree.Len())
	for i := range in.Q {
		in.Q[i] = core.NoQoS
	}
	// Bound every client to distance 1: only its parent can serve it.
	for _, c := range in.Tree.Clients() {
		in.Q[c] = 1
	}
	for _, p := range core.Policies {
		sol, err := BruteForce(context.Background(), in, p)
		if err != nil {
			// With q=1, each leaf node must hold a replica; the root's own
			// client forces a root replica; capacity n=2 suffices.
			t.Fatalf("%v: %v", p, err)
		}
		if err := sol.Validate(in, p); err != nil {
			t.Errorf("%v: invalid: %v", p, err)
		}
	}
}

// TestBruteForceWithBandwidth exercises link-capacity limits for Closest
// and Upwards.
func TestBruteForceWithBandwidth(t *testing.T) {
	in := core.Figure1('b') // two unit clients under s1; W = 1
	in.BW = make([]int64, in.Tree.Len())
	for i := range in.BW {
		in.BW[i] = core.NoBandwidth
	}
	// Block the link s1 -> s2 entirely: Upwards becomes infeasible since
	// one client must be served at the root.
	s1 := -1
	for _, j := range in.Tree.Internal() {
		if j != in.Tree.Root() {
			s1 = j
		}
	}
	in.BW[s1] = 0
	if _, err := BruteForce(context.Background(), in, core.Upwards); err == nil {
		t.Error("Upwards should be infeasible with blocked link")
	}
	in.BW[s1] = 1
	if _, err := BruteForce(context.Background(), in, core.Upwards); err != nil {
		t.Errorf("Upwards should be feasible with bw 1: %v", err)
	}
}

// TestBruteForceMultipleBandwidthSolutions validates the max-flow path:
// solutions returned for Multiple+bandwidth instances must satisfy every
// link cap (checked independently by Validate) and agree on feasibility
// with the LP-free greedy bound of total capacity.
func TestBruteForceMultipleBandwidthSolutions(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		in := gen.Instance(gen.Config{
			Internal: 4, Clients: 6,
			Lambda:   0.3 + float64(seed%6)/10.0,
			BWFactor: 0.3 + float64(seed%6)/10.0,
		}, seed+4400)
		sol, err := BruteForce(context.Background(), in, core.Multiple)
		if errors.Is(err, ErrNoSolution) {
			continue
		}
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if verr := sol.Validate(in, core.Multiple); verr != nil {
			t.Fatalf("seed %d: bandwidth solution invalid: %v", seed, verr)
		}
		// Without the caps the same replica set can only get cheaper or
		// stay equal: optimal cost without BW <= with BW.
		free := in.Clone()
		free.BW = nil
		fsol, ferr := BruteForce(context.Background(), free, core.Multiple)
		if ferr != nil {
			t.Fatalf("seed %d: uncapped version infeasible", seed)
		}
		if fsol.StorageCost(free) > sol.StorageCost(in) {
			t.Errorf("seed %d: uncapped optimum %d above capped %d",
				seed, fsol.StorageCost(free), sol.StorageCost(in))
		}
	}
}

// TestBruteForceRejectsBWPlusQoSMultiple documents the one unsupported
// combination.
func TestBruteForceRejectsBWPlusQoSMultiple(t *testing.T) {
	in := gen.Instance(gen.Config{Internal: 3, Clients: 3, QoSRange: 2, BWFactor: 0.8}, 1)
	if _, err := BruteForce(context.Background(), in, core.Multiple); err == nil || errors.Is(err, ErrNoSolution) {
		t.Errorf("want explicit unsupported-combination error, got %v", err)
	}
	// Closest and Upwards support the combination.
	for _, p := range []core.Policy{core.Closest, core.Upwards} {
		if _, err := BruteForce(context.Background(), in, p); err != nil && !errors.Is(err, ErrNoSolution) {
			t.Errorf("%v: %v", p, err)
		}
	}
}
