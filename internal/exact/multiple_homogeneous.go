// Package exact provides the exact solvers for the Replica Cost /
// Replica Counting problems: the paper's optimal polynomial algorithm for
// the Multiple policy on homogeneous platforms (Section 4.1), an optimal
// greedy for the Closest policy on homogeneous platforms, and exponential
// brute-force optimal solvers for all three policies used to validate the
// polynomial algorithms and the heuristics on small instances.
package exact

import (
	"errors"
	"sync"

	"repro/internal/core"
	"repro/internal/tree"
)

// ErrNoSolution is returned when an instance admits no feasible placement
// under the requested policy.
var ErrNoSolution = errors.New("exact: no feasible solution")

// mhScratch is the pooled working set of MultipleHomogeneous: the flow
// and useful-flow vectors, replica flags, pass-3 residues and assignment
// buffers. A steady-state solve allocates only the returned Solution.
type mhScratch struct {
	flow      []int64
	uflow     []int64
	remaining []int64
	repl      []bool
	stack     []int
	ports     [][]core.Portion
}

var mhPool = sync.Pool{New: func() any { return new(mhScratch) }}

func (sc *mhScratch) reset(n int) {
	grow := func(s []int64) []int64 {
		if cap(s) < n {
			return make([]int64, n)
		}
		return s[:n]
	}
	sc.flow = grow(sc.flow)
	sc.uflow = grow(sc.uflow)
	sc.remaining = grow(sc.remaining)
	if cap(sc.repl) < n {
		sc.repl = make([]bool, n)
	}
	sc.repl = sc.repl[:n]
	if cap(sc.stack) < n {
		sc.stack = make([]int, 0, n)
	}
	sc.stack = sc.stack[:0]
	if cap(sc.ports) < n {
		ports := make([][]core.Portion, n)
		copy(ports, sc.ports)
		sc.ports = ports
	}
	sc.ports = sc.ports[:n]
	for v := 0; v < n; v++ {
		sc.flow[v] = 0
		sc.uflow[v] = 0
		sc.remaining[v] = 0
		sc.repl[v] = false
		sc.ports[v] = sc.ports[v][:0]
	}
}

// MultipleHomogeneous solves Replica Counting optimally under the Multiple
// policy on a homogeneous platform, implementing the three-pass algorithm
// of Section 4.1 (Algorithms 1-3):
//
//	pass 1: saturate nodes bottom-up — every node whose subtree flow
//	        reaches W receives a replica serving exactly W requests;
//	pass 2: while flow still reaches the root, repeatedly grant a replica
//	        to the free node with maximal useful flow (ties broken by
//	        depth-first order, as in the paper's worked example);
//	pass 3: assign client requests to servers bottom-up, splitting a
//	        client between servers when needed.
//
// It returns ErrNoSolution when the instance is infeasible. The instance
// must be homogeneous; QoS and bandwidth constraints are not supported
// (this is the paper's "Only server capacities" setting).
func MultipleHomogeneous(in *core.Instance) (*core.Solution, error) {
	if !in.Homogeneous() {
		return nil, errors.New("exact: MultipleHomogeneous requires a homogeneous instance")
	}
	if in.HasQoS() || in.HasBandwidth() {
		return nil, errors.New("exact: MultipleHomogeneous does not support QoS or bandwidth constraints")
	}
	t := in.Tree
	w := in.W[t.Internal()[0]]
	if w <= 0 {
		if in.TotalRequests() == 0 {
			return core.NewSolution(t.Len()), nil
		}
		return nil, ErrNoSolution
	}

	sc := mhPool.Get().(*mhScratch)
	defer mhPool.Put(sc)
	sc.reset(t.Len())
	flow, repl := sc.flow, sc.repl

	// Pass 1: canonical flows; saturated nodes get replicas.
	for _, v := range t.PostOrder() {
		if t.IsClient(v) {
			flow[v] = in.R[v]
			continue
		}
		var f int64
		for _, c := range t.Children(v) {
			f += flow[c]
		}
		if f >= w {
			f -= w
			repl[v] = true
		}
		flow[v] = f
	}

	root := t.Root()
	switch {
	case flow[root] == 0:
		// Optimal already.
	case flow[root] <= w && !repl[root]:
		// One extra replica at the root finishes the job.
		repl[root] = true
		flow[root] = 0
	default:
		// Pass 2: place extra replicas by maximal useful flow.
		if err := passTwo(in, w, sc); err != nil {
			return nil, err
		}
	}

	// Pass 3: bottom-up request assignment.
	sol := passThree(in, w, sc)
	if sol == nil {
		return nil, ErrNoSolution
	}
	return sol, nil
}

// passTwo implements Algorithm 2: repeatedly select the free node with the
// maximal useful flow uflow_j = min over path[j -> root] of flow, granting
// it a replica and deducting the absorbed requests along its path.
//
// Useful flows are maintained incrementally: a grant changes flow only on
// the granted path, so the refresh walks down from the root and prunes
// every subtree whose entry uflow is unchanged and which does not contain
// the granted node, instead of re-sweeping the whole tree per replica.
func passTwo(in *core.Instance, w int64, sc *mhScratch) error {
	t := in.Tree
	root := t.Root()
	flow, repl, uflow := sc.flow, sc.repl, sc.uflow

	// Initial useful flows, top-down. A client never has children, so the
	// recurrence closes over the internal vertices alone.
	for _, v := range t.PreOrderInternal() {
		if v == root {
			uflow[v] = flow[v]
		} else {
			uflow[v] = min64(flow[v], uflow[t.Parent(v)])
		}
	}

	for flow[root] != 0 {
		// Selection: preorder scan keeps the paper's depth-first tie-break
		// (strict inequality retains the first maximum).
		maxNode := -1
		var maxUflow int64
		for _, v := range t.PreOrderInternal() {
			if !repl[v] && uflow[v] > maxUflow {
				maxUflow = uflow[v]
				maxNode = v
			}
		}
		if maxNode < 0 || maxUflow == 0 {
			// No free node can still push flow to the root.
			return ErrNoSolution
		}
		repl[maxNode] = true
		flow[maxNode] -= maxUflow
		for a := t.Parent(maxNode); a != tree.None; a = t.Parent(a) {
			flow[a] -= maxUflow
		}

		// Incremental refresh: flow changed only on path[maxNode -> root],
		// so a vertex's uflow can change only if its own flow changed (it
		// is on the path) or its parent's uflow changed. Skip every
		// subtree where neither holds.
		stack := append(sc.stack[:0], root)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			nu := flow[v]
			if v != root {
				nu = min64(flow[v], uflow[t.Parent(v)])
			}
			changed := nu != uflow[v]
			uflow[v] = nu
			for _, c := range t.Children(v) {
				if t.IsClient(c) {
					continue
				}
				if changed || t.InSubtree(maxNode, c) {
					stack = append(stack, c)
				}
			}
		}
		sc.stack = stack[:0]
	}
	return nil
}

// passThree implements Algorithm 3: a post-order sweep that lets every
// replica absorb pending client requests from its subtree up to W,
// splitting at most one client per replica. Pending clients of a subtree
// are its preorder-contiguous ClientsUnder view filtered by a positive
// residue, so the sweep allocates nothing. It returns nil if requests
// remain unassigned at the root (which cannot happen after successful
// passes 1-2; kept as a defensive check).
func passThree(in *core.Instance, w int64, sc *mhScratch) *core.Solution {
	t := in.Tree
	remaining, repl := sc.remaining, sc.repl // r'_i per client
	for _, c := range t.Clients() {
		remaining[c] = in.R[c]
	}

	for _, v := range t.PostOrder() {
		if t.IsClient(v) || !repl[v] {
			continue
		}
		var load int64
		split := -1 // first client that did not fit whole
		for _, c := range t.ClientsUnder(v) {
			if remaining[c] == 0 {
				continue
			}
			if remaining[c] <= w-load {
				sc.ports[c] = append(sc.ports[c], core.Portion{Server: v, Load: remaining[c]})
				load += remaining[c]
				remaining[c] = 0
			} else if split < 0 {
				split = c
			}
		}
		if split >= 0 && load < w {
			x := w - load
			sc.ports[split] = append(sc.ports[split], core.Portion{Server: v, Load: x})
			remaining[split] -= x
		}
		// A replica starved of all its load by pass-3's greedy order is
		// simply dropped: the remaining placement already covers every
		// request, so the solution can only get cheaper. (The
		// optimality proof implies this never happens after successful
		// passes 1-2.)
	}
	for _, c := range t.Clients() {
		if remaining[c] > 0 {
			return nil
		}
	}
	return core.NewSolutionFromPortions(sc.ports, t.Clients())
}

// MultipleHomogeneousCount returns only the optimal replica count, or
// ErrNoSolution. It is a convenience wrapper around MultipleHomogeneous.
func MultipleHomogeneousCount(in *core.Instance) (int, error) {
	sol, err := MultipleHomogeneous(in)
	if err != nil {
		return 0, err
	}
	return sol.ReplicaCount(), nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
