// Package exact provides the exact solvers for the Replica Cost /
// Replica Counting problems: the paper's optimal polynomial algorithm for
// the Multiple policy on homogeneous platforms (Section 4.1), an optimal
// greedy for the Closest policy on homogeneous platforms, and exponential
// brute-force optimal solvers for all three policies used to validate the
// polynomial algorithms and the heuristics on small instances.
package exact

import (
	"errors"

	"repro/internal/core"
)

// ErrNoSolution is returned when an instance admits no feasible placement
// under the requested policy.
var ErrNoSolution = errors.New("exact: no feasible solution")

// MultipleHomogeneous solves Replica Counting optimally under the Multiple
// policy on a homogeneous platform, implementing the three-pass algorithm
// of Section 4.1 (Algorithms 1-3):
//
//	pass 1: saturate nodes bottom-up — every node whose subtree flow
//	        reaches W receives a replica serving exactly W requests;
//	pass 2: while flow still reaches the root, repeatedly grant a replica
//	        to the free node with maximal useful flow (ties broken by
//	        depth-first order, as in the paper's worked example);
//	pass 3: assign client requests to servers bottom-up, splitting a
//	        client between servers when needed.
//
// It returns ErrNoSolution when the instance is infeasible. The instance
// must be homogeneous; QoS and bandwidth constraints are not supported
// (this is the paper's "Only server capacities" setting).
func MultipleHomogeneous(in *core.Instance) (*core.Solution, error) {
	if !in.Homogeneous() {
		return nil, errors.New("exact: MultipleHomogeneous requires a homogeneous instance")
	}
	if in.HasQoS() || in.HasBandwidth() {
		return nil, errors.New("exact: MultipleHomogeneous does not support QoS or bandwidth constraints")
	}
	t := in.Tree
	w := in.W[t.Internal()[0]]
	if w <= 0 {
		if in.TotalRequests() == 0 {
			return core.NewSolution(t.Len()), nil
		}
		return nil, ErrNoSolution
	}

	// Pass 1: canonical flows; saturated nodes get replicas.
	flow := make([]int64, t.Len())
	repl := make([]bool, t.Len())
	for _, v := range t.PostOrder() {
		if t.IsClient(v) {
			flow[v] = in.R[v]
			continue
		}
		var f int64
		for _, c := range t.Children(v) {
			f += flow[c]
		}
		if f >= w {
			f -= w
			repl[v] = true
		}
		flow[v] = f
	}

	root := t.Root()
	switch {
	case flow[root] == 0:
		// Optimal already.
	case flow[root] <= w && !repl[root]:
		// One extra replica at the root finishes the job.
		repl[root] = true
		flow[root] = 0
	default:
		// Pass 2: place extra replicas by maximal useful flow.
		if err := passTwo(in, w, flow, repl); err != nil {
			return nil, err
		}
	}

	// Pass 3: bottom-up request assignment.
	sol := passThree(in, w, repl)
	if sol == nil {
		return nil, ErrNoSolution
	}
	return sol, nil
}

// passTwo implements Algorithm 2: repeatedly select the free node with the
// maximal useful flow uflow_j = min over path[j -> root] of flow, granting
// it a replica and deducting the absorbed requests along its path.
func passTwo(in *core.Instance, w int64, flow []int64, repl []bool) error {
	t := in.Tree
	root := t.Root()
	uflow := make([]int64, t.Len())
	for flow[root] != 0 {
		free := false
		for _, j := range t.Internal() {
			if !repl[j] {
				free = true
				break
			}
		}
		if !free {
			return ErrNoSolution
		}
		// Useful flows, top-down.
		var maxNode int
		var maxUflow int64 = 0
		maxNode = -1
		for _, v := range t.PreOrder() {
			if t.IsClient(v) {
				continue
			}
			if v == root {
				uflow[v] = flow[v]
			} else {
				uflow[v] = min64(flow[v], uflow[t.Parent(v)])
			}
			// Pre-order visit doubles as the paper's depth-first
			// tie-break: strict inequality keeps the first maximum.
			if !repl[v] && uflow[v] > maxUflow {
				maxUflow = uflow[v]
				maxNode = v
			}
		}
		if maxNode < 0 || maxUflow == 0 {
			return ErrNoSolution
		}
		repl[maxNode] = true
		flow[maxNode] -= maxUflow
		for _, a := range t.Ancestors(maxNode) {
			flow[a] -= maxUflow
		}
	}
	return nil
}

// passThree implements Algorithm 3: a post-order sweep that lets every
// replica absorb pending client requests from its subtree up to W,
// splitting at most one client per replica. It returns nil if requests
// remain unassigned at the root (which cannot happen after successful
// passes 1-2; kept as a defensive check).
func passThree(in *core.Instance, w int64, repl []bool) *core.Solution {
	t := in.Tree
	sol := core.NewSolution(t.Len())
	remaining := make([]int64, t.Len()) // r'_i per client
	for _, c := range t.Clients() {
		remaining[c] = in.R[c]
	}
	pending := make([][]int, t.Len()) // C(s): clients with remaining requests

	for _, v := range t.PostOrder() {
		if t.IsClient(v) {
			if remaining[v] > 0 {
				pending[v] = []int{v}
			}
			continue
		}
		var acc []int
		for _, c := range t.Children(v) {
			acc = append(acc, pending[c]...)
			pending[c] = nil
		}
		if repl[v] {
			var load int64
			rest := acc[:0]
			for _, i := range acc {
				if remaining[i] <= w-load {
					sol.AddPortion(i, v, remaining[i])
					load += remaining[i]
					remaining[i] = 0
				} else {
					rest = append(rest, i)
				}
			}
			acc = rest
			if len(acc) > 0 && load < w {
				i := acc[0]
				x := w - load
				sol.AddPortion(i, v, x)
				remaining[i] -= x
			}
			// A replica starved of all its load by pass-3's greedy order is
			// simply dropped: the remaining placement already covers every
			// request, so the solution can only get cheaper. (The
			// optimality proof implies this never happens after successful
			// passes 1-2.)
		}
		pending[v] = acc
	}
	for _, c := range t.Clients() {
		if remaining[c] > 0 {
			return nil
		}
	}
	return sol
}

// MultipleHomogeneousCount returns only the optimal replica count, or
// ErrNoSolution. It is a convenience wrapper around MultipleHomogeneous.
func MultipleHomogeneousCount(in *core.Instance) (int, error) {
	sol, err := MultipleHomogeneous(in)
	if err != nil {
		return 0, err
	}
	return sol.ReplicaCount(), nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
