package exact

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

// TestClosestQoSOptimal cross-validates the QoS-aware Closest greedy
// against brute force on many random QoS-constrained instances.
func TestClosestQoSOptimal(t *testing.T) {
	for seed := int64(0); seed < 250; seed++ {
		cfg := gen.Config{
			Internal:  3 + int(seed%6),
			Clients:   2 + int(seed%7),
			Lambda:    0.2 + float64(seed%8)/10.0,
			UnitCosts: true,
			QoSRange:  1 + int(seed%4),
		}
		in := gen.Instance(cfg, seed)
		fast, ferr := ClosestHomogeneousQoS(in)
		slow, serr := BruteForce(context.Background(), in, core.Closest)
		if (ferr == nil) != (serr == nil) {
			t.Fatalf("seed %d: feasibility mismatch: fast=%v slow=%v", seed, ferr, serr)
		}
		if ferr != nil {
			continue
		}
		if err := fast.Validate(in, core.Closest); err != nil {
			t.Fatalf("seed %d: invalid fast solution: %v", seed, err)
		}
		if fast.ReplicaCount() != slow.ReplicaCount() {
			t.Fatalf("seed %d: count %d != optimal %d", seed, fast.ReplicaCount(), slow.ReplicaCount())
		}
	}
}

// TestClosestQoSNoBoundsEqualsBase: without QoS bounds the solver matches
// the base ClosestHomogeneous.
func TestClosestQoSNoBoundsEqualsBase(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		in := gen.Instance(gen.Config{
			Internal: 4 + int(seed%5), Clients: 4 + int(seed%6),
			Lambda: 0.3 + float64(seed%5)/10.0, UnitCosts: true,
		}, seed+3000)
		a, aerr := ClosestHomogeneousQoS(in)
		b, berr := ClosestHomogeneous(in)
		if (aerr == nil) != (berr == nil) {
			t.Fatalf("seed %d: feasibility mismatch", seed)
		}
		if aerr == nil && a.ReplicaCount() != b.ReplicaCount() {
			t.Fatalf("seed %d: %d != %d", seed, a.ReplicaCount(), b.ReplicaCount())
		}
	}
}

// TestClosestQoSForcesEdgePlacement: a tight QoS bound forces replicas at
// the leaves even when a single root replica would have enough capacity.
func TestClosestQoSForcesEdgePlacement(t *testing.T) {
	in := core.Figure2(2) // root + mid + 4 leaf nodes, W = 2
	// Without QoS the optimum is n+2 = 4 replicas.
	base, err := ClosestHomogeneousQoS(in)
	if err != nil {
		t.Fatal(err)
	}
	if base.ReplicaCount() != 4 {
		t.Errorf("unbounded count = %d, want 4", base.ReplicaCount())
	}
	// q = 1: every leaf client must be served by its own parent node, and
	// the root client by the root.
	in.Q = make([]int, in.Tree.Len())
	for i := range in.Q {
		in.Q[i] = core.NoQoS
	}
	for _, c := range in.Tree.Clients() {
		in.Q[c] = 1
	}
	sol, err := ClosestHomogeneousQoS(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Validate(in, core.Closest); err != nil {
		t.Fatal(err)
	}
	if sol.ReplicaCount() != 5 { // 4 leaves + root
		t.Errorf("q=1 count = %d, want 5", sol.ReplicaCount())
	}
}

func TestClosestQoSInfeasible(t *testing.T) {
	// A client whose QoS excludes every server.
	in := core.Figure1('a')
	in.Q = make([]int, in.Tree.Len())
	for i := range in.Q {
		in.Q[i] = core.NoQoS
	}
	in.Q[in.Tree.Clients()[0]] = 0
	if _, err := ClosestHomogeneousQoS(in); !errors.Is(err, ErrNoSolution) {
		t.Errorf("want ErrNoSolution, got %v", err)
	}
}

func TestClosestQoSRejects(t *testing.T) {
	het := core.Figure4(5, 10)
	if _, err := ClosestHomogeneousQoS(het); err == nil {
		t.Error("want error for heterogeneous instance")
	}
}

// TestClosestQoSWeightedLinks: comm-weighted distances are honoured.
func TestClosestQoSWeightedLinks(t *testing.T) {
	in := core.Figure1('a') // s2 -> s1 -> client, all capacities 1
	in.Comm = make([]int64, in.Tree.Len())
	c := in.Tree.Clients()[0]
	root := in.Tree.Root()
	var s1 int
	for _, j := range in.Tree.Internal() {
		if j != root {
			s1 = j
		}
	}
	in.Comm[c] = 2  // client -> s1 costs 2
	in.Comm[s1] = 5 // s1 -> root costs 5
	in.Q = make([]int, in.Tree.Len())
	for i := range in.Q {
		in.Q[i] = core.NoQoS
	}
	in.Q[c] = 3 // s1 reachable (2), root not (7)
	sol, err := ClosestHomogeneousQoS(in)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.IsReplica(s1) || sol.IsReplica(root) {
		t.Errorf("replicas = %v, want exactly {s1}", sol.Replicas())
	}
	in.Q[c] = 1 // nothing reachable
	if _, err := ClosestHomogeneousQoS(in); !errors.Is(err, ErrNoSolution) {
		t.Errorf("want ErrNoSolution, got %v", err)
	}
}
