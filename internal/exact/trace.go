package exact

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/tree"
)

// Trace records the decision sequence of the Section 4.1 optimal
// algorithm, mirroring the narrative of the paper's Figure 6: which nodes
// pass 1 saturates, which nodes pass 2 selects (with their useful flows),
// and the final assignment.
type Trace struct {
	// Pass1Replicas are the saturated nodes, in post-order.
	Pass1Replicas []int
	// RootFlowAfterPass1 is the residual flow at the root after pass 1.
	RootFlowAfterPass1 int64
	// Pass2Picks lists pass 2's selections in order.
	Pass2Picks []Pass2Pick
	// Solution is the final placement (nil if infeasible).
	Solution *core.Solution
}

// Pass2Pick is one pass-2 selection.
type Pass2Pick struct {
	Node       int
	UsefulFlow int64
}

// String renders the trace in the style of the paper's walk-through.
func (tr *Trace) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "pass 1: saturated %v, residual root flow %d\n",
		tr.Pass1Replicas, tr.RootFlowAfterPass1)
	for i, p := range tr.Pass2Picks {
		fmt.Fprintf(&sb, "pass 2 step %d: node %d with useful flow %d\n", i+1, p.Node, p.UsefulFlow)
	}
	if tr.Solution != nil {
		fmt.Fprintf(&sb, "pass 3: %v\n", tr.Solution)
	} else {
		sb.WriteString("infeasible\n")
	}
	return sb.String()
}

// MultipleHomogeneousTrace runs the optimal Multiple/homogeneous
// algorithm and returns both the solution and the full decision trace.
// The solution is identical to MultipleHomogeneous's.
func MultipleHomogeneousTrace(in *core.Instance) (*Trace, error) {
	if !in.Homogeneous() {
		return nil, fmt.Errorf("exact: MultipleHomogeneousTrace requires a homogeneous instance")
	}
	if in.HasQoS() || in.HasBandwidth() {
		return nil, fmt.Errorf("exact: MultipleHomogeneousTrace does not support QoS or bandwidth constraints")
	}
	t := in.Tree
	w := in.W[t.Internal()[0]]
	tr := &Trace{}
	if w <= 0 {
		if in.TotalRequests() == 0 {
			tr.Solution = core.NewSolution(t.Len())
			return tr, nil
		}
		return nil, ErrNoSolution
	}

	sc := new(mhScratch)
	sc.reset(t.Len())
	flow, repl := sc.flow, sc.repl
	for _, v := range t.PostOrder() {
		if t.IsClient(v) {
			flow[v] = in.R[v]
			continue
		}
		var f int64
		for _, c := range t.Children(v) {
			f += flow[c]
		}
		if f >= w {
			f -= w
			repl[v] = true
			tr.Pass1Replicas = append(tr.Pass1Replicas, v)
		}
		flow[v] = f
	}
	root := t.Root()
	tr.RootFlowAfterPass1 = flow[root]

	switch {
	case flow[root] == 0:
	case flow[root] <= w && !repl[root]:
		repl[root] = true
		flow[root] = 0
		tr.Pass2Picks = append(tr.Pass2Picks, Pass2Pick{Node: root, UsefulFlow: tr.RootFlowAfterPass1})
	default:
		// Pass 2, instrumented full-sweep reference implementation of
		// passTwo (the solver proper maintains useful flows incrementally;
		// selections are identical).
		uflow := make([]int64, t.Len())
		for flow[root] != 0 {
			maxNode := -1
			var maxUflow int64
			for _, v := range t.PreOrder() {
				if t.IsClient(v) {
					continue
				}
				if v == root {
					uflow[v] = flow[v]
				} else {
					uflow[v] = min64(flow[v], uflow[t.Parent(v)])
				}
				if !repl[v] && uflow[v] > maxUflow {
					maxUflow = uflow[v]
					maxNode = v
				}
			}
			if maxNode < 0 || maxUflow == 0 {
				return nil, ErrNoSolution
			}
			tr.Pass2Picks = append(tr.Pass2Picks, Pass2Pick{Node: maxNode, UsefulFlow: maxUflow})
			repl[maxNode] = true
			flow[maxNode] -= maxUflow
			for a := t.Parent(maxNode); a != tree.None; a = t.Parent(a) {
				flow[a] -= maxUflow
			}
		}
	}

	sol := passThree(in, w, sc)
	if sol == nil {
		return nil, ErrNoSolution
	}
	tr.Solution = sol
	return tr, nil
}
