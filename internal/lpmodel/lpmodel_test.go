package lpmodel

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/lp"
)

func solve(t *testing.T, in *core.Instance, p core.Policy) *lp.Solution {
	t.Helper()
	m, err := Build(in, p)
	if err != nil {
		t.Fatalf("Build(%v): %v", p, err)
	}
	sol, err := m.Prob.Solve()
	if err != nil {
		t.Fatalf("Solve(%v): %v", p, err)
	}
	return sol
}

func TestRelaxationFigure1(t *testing.T) {
	// Figure 1(c): one client with 2 requests, two nodes with W=1, s=1.
	// Fully rational Multiple relaxation: x1 = x2 = 1 is forced (each
	// server must absorb one request), value 2.
	in := core.Figure1('c')
	sol := solve(t, in, core.Multiple)
	if sol.Status != lp.Optimal || math.Abs(sol.Value-2) > 1e-6 {
		t.Errorf("Multiple relaxation: %v %v, want optimal 2", sol.Status, sol.Value)
	}
	// Single-server relaxations are also LP-feasible (y may split
	// fractionally), so they do NOT prove infeasibility here.
	solU := solve(t, in, core.Upwards)
	if solU.Status != lp.Optimal {
		t.Errorf("Upwards relaxation: %v", solU.Status)
	}
}

func TestVariableCounts(t *testing.T) {
	in := core.Figure2(2) // 6 internal nodes, 5 clients
	m, err := Build(in, core.Multiple)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.X); got != in.Tree.Len() {
		t.Errorf("len(X) = %d", got)
	}
	// Every client contributes one y per ancestor.
	wantY := 0
	for _, c := range in.Tree.Clients() {
		wantY += len(in.Tree.Ancestors(c))
	}
	if len(m.Y) != wantY {
		t.Errorf("len(Y) = %d, want %d", len(m.Y), wantY)
	}
	// QoS pruning removes distant servers.
	q := in.Clone()
	q.Q = make([]int, q.Tree.Len())
	for i := range q.Q {
		q.Q[i] = core.NoQoS
	}
	for _, c := range q.Tree.Clients() {
		q.Q[c] = 1
	}
	mq, err := Build(q, core.Multiple)
	if err != nil {
		t.Fatal(err)
	}
	if len(mq.Y) != q.Tree.NumClients() {
		t.Errorf("QoS-pruned len(Y) = %d, want %d", len(mq.Y), q.Tree.NumClients())
	}
}

func TestInfeasibleQoS(t *testing.T) {
	in := core.Figure1('a')
	in.Q = make([]int, in.Tree.Len())
	for i := range in.Q {
		in.Q[i] = core.NoQoS
	}
	in.Q[in.Tree.Clients()[0]] = 0 // no server within distance 0
	_, err := Build(in, core.Multiple)
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("want ErrInfeasible, got %v", err)
	}
}

func TestUnknownPolicy(t *testing.T) {
	in := core.Figure1('a')
	if _, err := Build(in, core.Policy(9)); err == nil {
		t.Error("want error for unknown policy")
	}
}

func TestClosestBlockingRows(t *testing.T) {
	// The blocking rows forbid serving client c1 at s1 while client c2
	// (also under s1) is served above s1. Figure 1(b) has two unit
	// clients under s1: forcing y_{c1,s1} = 1 and y_{c2,root} = 1 must be
	// LP-infeasible under Closest but feasible under Upwards.
	in := core.Figure1('b')
	root := in.Tree.Root()
	var s1 int
	for _, j := range in.Tree.Internal() {
		if j != root {
			s1 = j
		}
	}
	c1, c2 := in.Tree.Clients()[0], in.Tree.Clients()[1]
	for _, p := range []core.Policy{core.Closest, core.Upwards} {
		m, err := Build(in, p)
		if err != nil {
			t.Fatal(err)
		}
		prob := m.CloneProblem()
		for _, yv := range m.Y {
			if yv.Client == c1 && yv.Server == s1 {
				prob.AddConstraint([]lp.Term{{Var: yv.Var, Coef: 1}}, lp.EQ, 1)
			}
			if yv.Client == c2 && yv.Server == root {
				prob.AddConstraint([]lp.Term{{Var: yv.Var, Coef: 1}}, lp.EQ, 1)
			}
		}
		sol, err := prob.Solve()
		if err != nil {
			t.Fatal(err)
		}
		wantFeasible := p == core.Upwards
		if (sol.Status == lp.Optimal) != wantFeasible {
			t.Errorf("%v: status %v, want feasible=%v", p, sol.Status, wantFeasible)
		}
	}
}

func TestBandwidthRows(t *testing.T) {
	// Figure 1(b) with the s1 -> s2 link blocked: the Multiple LP must
	// then serve both clients at s1, which exceeds W=1 -> infeasible.
	in := core.Figure1('b')
	root := in.Tree.Root()
	var s1 int
	for _, j := range in.Tree.Internal() {
		if j != root {
			s1 = j
		}
	}
	in.BW = make([]int64, in.Tree.Len())
	for i := range in.BW {
		in.BW[i] = core.NoBandwidth
	}
	in.BW[s1] = 0
	m, err := Build(in, core.Multiple)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := m.Prob.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
	// With bandwidth 1 the instance works again.
	in.BW[s1] = 1
	m, err = Build(in, core.Multiple)
	if err != nil {
		t.Fatal(err)
	}
	sol, err = m.Prob.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.Optimal {
		t.Errorf("status = %v, want optimal", sol.Status)
	}
}

func TestExtractSolutionMultiple(t *testing.T) {
	// On a feasible instance, solving with x fixed integral yields an
	// extractable valid solution (Multiple transportation integrality).
	in := gen.Instance(gen.Config{Internal: 5, Clients: 6, Lambda: 0.4}, 3)
	m, err := Build(in, core.Multiple)
	if err != nil {
		t.Fatal(err)
	}
	prob := m.CloneProblem()
	for _, j := range in.Tree.Internal() {
		m.FixX(prob, m.X[j], 1) // place replicas everywhere
	}
	sol, err := prob.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	cs := m.ExtractSolution(in, sol.X)
	if err := cs.Validate(in, core.Multiple); err != nil {
		t.Errorf("extracted solution invalid: %v", err)
	}
}
