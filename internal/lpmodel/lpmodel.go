// Package lpmodel translates Replica Placement instances into the linear
// programs of Section 5, one formulation per access policy. Variables:
//
//	x_j        1 iff internal node j holds a replica (always present);
//	y_{i,j}    single-server policies: 1 iff j = server(i);
//	           Multiple: the number of requests of client i served at j.
//
// The paper's z_{i,l} link variables are implied: a request of client i
// crosses link u -> parent(u) exactly when it is served at parent(u) or
// above, so z_{i,u} = Σ_{j ∈ Ancestors(u)} y_{i,j}. Every constraint that
// mentions z (bandwidth caps, the Closest blocking rule) is therefore
// expressed directly over y, which keeps the program substantially
// smaller than the literal Section 5 formulation without changing its
// feasible set or optimum.
//
// QoS constraints are handled by pruning: a variable y_{i,j} is simply not
// created when dist(i,j) > q_i, which is equivalent to (and tighter in
// practice than) the paper's dist(i,j)·y_{i,j} ≤ q_i rows.
package lpmodel

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/lp"
	"repro/internal/tree"
)

// ErrInfeasible is returned by Build when some client has no eligible
// server at all (its QoS bound excludes every ancestor), making the
// instance trivially infeasible under any policy.
var ErrInfeasible = errors.New("lpmodel: a client has no eligible server")

// YVar records the meaning of one y variable.
type YVar struct {
	Client, Server int
	Var            int
}

// Model is a built LP plus the bookkeeping to interpret its solution.
type Model struct {
	Prob   *lp.Problem
	Policy core.Policy

	// X maps each vertex id to the column of x_j (-1 for clients).
	X []int
	// Y lists every created y variable.
	Y []YVar
}

// Build constructs the LP for the instance under the given policy. The
// returned model's Prob minimizes Σ s_j x_j with 0 ≤ x_j ≤ 1 and the
// policy's assignment/capacity/bandwidth rows; solved as-is it yields the
// fully rational relaxation of Section 5.3.
func Build(in *core.Instance, p core.Policy) (*Model, error) {
	t := in.Tree
	m := &Model{Policy: p, X: make([]int, t.Len())}

	// Column layout: x variables first, then y.
	numX := t.NumInternal()
	for v := range m.X {
		m.X[v] = -1
	}
	for i, j := range t.Internal() {
		m.X[j] = i
	}
	yStart := numX
	yOf := make(map[[2]int]int)
	for _, c := range t.Clients() {
		if in.R[c] == 0 {
			continue
		}
		for a := t.Parent(c); a != tree.None; a = t.Parent(a) {
			if !in.QoSAllows(c, a) {
				continue
			}
			col := yStart + len(m.Y)
			m.Y = append(m.Y, YVar{Client: c, Server: a, Var: col})
			yOf[[2]int{c, a}] = col
		}
	}

	prob := lp.NewProblem(numX + len(m.Y))
	m.Prob = prob
	for _, j := range t.Internal() {
		prob.SetObjective(m.X[j], float64(in.S[j]))
		// 0 ≤ x_j ≤ 1.
		prob.AddConstraint([]lp.Term{{Var: m.X[j], Coef: 1}}, lp.LE, 1)
	}

	// Per-client coverage rows.
	yByClient := make(map[int][]YVar)
	yByServer := make(map[int][]YVar)
	for _, yv := range m.Y {
		yByClient[yv.Client] = append(yByClient[yv.Client], yv)
		yByServer[yv.Server] = append(yByServer[yv.Server], yv)
	}
	for _, c := range t.Clients() {
		if in.R[c] == 0 {
			continue
		}
		ys := yByClient[c]
		if len(ys) == 0 {
			return nil, fmt.Errorf("client %d: %w", c, ErrInfeasible)
		}
		terms := make([]lp.Term, len(ys))
		for k, yv := range ys {
			terms[k] = lp.Term{Var: yv.Var, Coef: 1}
		}
		switch p {
		case core.Closest, core.Upwards:
			// Σ_j y_{i,j} = 1.
			prob.AddConstraint(terms, lp.EQ, 1)
		case core.Multiple:
			// Σ_j y_{i,j} = r_i.
			prob.AddConstraint(terms, lp.EQ, float64(in.R[c]))
		default:
			return nil, fmt.Errorf("lpmodel: unknown policy %v", p)
		}
	}

	// Capacity rows: Σ_i r_i y_{i,j} ≤ W_j x_j (single server) or
	// Σ_i y_{i,j} ≤ W_j x_j (Multiple).
	for _, j := range t.Internal() {
		ys := yByServer[j]
		if len(ys) == 0 {
			continue
		}
		terms := make([]lp.Term, 0, len(ys)+1)
		for _, yv := range ys {
			coef := 1.0
			if p != core.Multiple {
				coef = float64(in.R[yv.Client])
			}
			terms = append(terms, lp.Term{Var: yv.Var, Coef: coef})
		}
		terms = append(terms, lp.Term{Var: m.X[j], Coef: -float64(in.W[j])})
		prob.AddConstraint(terms, lp.LE, 0)
	}

	// Bandwidth rows: for every capped link u -> parent(u),
	// Σ_{i below u} Σ_{j ∈ Ancestors(u)} load(y_{i,j}) ≤ BW_u.
	if in.HasBandwidth() {
		for u := 0; u < t.Len(); u++ {
			if u == t.Root() || in.BW[u] == core.NoBandwidth {
				continue
			}
			var terms []lp.Term
			for _, c := range t.ClientsUnder(u) {
				for _, yv := range yByClient[c] {
					if !t.IsAncestor(yv.Server, u) {
						continue
					}
					coef := 1.0
					if p != core.Multiple {
						coef = float64(in.R[c])
					}
					terms = append(terms, lp.Term{Var: yv.Var, Coef: coef})
				}
			}
			if len(terms) > 0 {
				prob.AddConstraint(terms, lp.LE, float64(in.BW[u]))
			}
		}
	}

	// Closest blocking rows (Section 5.1, reduced form): for every client
	// i, server candidate j ≠ root, and client i' under j:
	//   y_{i,j} + Σ_{j' ∈ Ancestors(j)} y_{i',j'} ≤ 1,
	// i.e. if i is served at j, no client below j may be served above j.
	if p == core.Closest {
		for _, yv := range m.Y {
			j := yv.Server
			if j == t.Root() {
				continue
			}
			for _, c2 := range t.ClientsUnder(j) {
				if in.R[c2] == 0 {
					continue
				}
				terms := []lp.Term{{Var: yv.Var, Coef: 1}}
				for j2 := t.Parent(j); j2 != tree.None; j2 = t.Parent(j2) {
					if col, ok := yOf[[2]int{c2, j2}]; ok {
						terms = append(terms, lp.Term{Var: col, Coef: 1})
					}
				}
				if len(terms) > 1 {
					prob.AddConstraint(terms, lp.LE, 1)
				}
			}
		}
	}
	return m, nil
}

// FixX returns a copy of the model's problem with x_j forced to the given
// binary value (used by the branch-and-bound refinement).
func (m *Model) FixX(prob *lp.Problem, xCol int, val int) {
	prob.AddConstraint([]lp.Term{{Var: xCol, Coef: 1}}, lp.EQ, float64(val))
}

// CloneProblem deep-copies the underlying LP so branch-and-bound nodes can
// append fixing rows independently.
func (m *Model) CloneProblem() *lp.Problem {
	cp := lp.NewProblem(m.Prob.NumVars)
	copy(cp.Obj, m.Prob.Obj)
	cp.Rows = append(cp.Rows, m.Prob.Rows...)
	return cp
}

// ExtractSolution converts an integral LP point into a core.Solution
// (Multiple policy semantics for y under Multiple, single-server
// otherwise). Values are rounded to the nearest integer; it is the
// caller's responsibility to ensure the point is integral.
func (m *Model) ExtractSolution(in *core.Instance, x []float64) *core.Solution {
	sol := core.NewSolution(in.Tree.Len())
	for _, yv := range m.Y {
		v := x[yv.Var]
		var load int64
		if m.Policy == core.Multiple {
			load = int64(v + 0.5)
		} else if v > 0.5 {
			load = in.R[yv.Client]
		}
		if load > 0 {
			sol.AddPortion(yv.Client, yv.Server, load)
		}
	}
	return sol
}
