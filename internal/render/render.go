// Package render draws problem instances and solutions as ASCII trees,
// for CLI output and debugging. A rendered vertex shows its id, kind,
// parameters and — when a solution is supplied — its replica marker and
// assigned load.
package render

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
)

// Options controls rendering.
type Options struct {
	// Solution, when non-nil, annotates replicas and loads.
	Solution *core.Solution
	// ShowQoS and ShowBandwidth include the optional constraint fields.
	ShowQoS       bool
	ShowBandwidth bool
}

// Tree writes the instance as an indented ASCII tree:
//
//	n0 [W=10 s=1] *replica load=7/10
//	├── n1 [W=10 s=1]
//	│   └── c3 (r=5) -> {n0:5}
//	└── c2 (r=2) -> {n0:2}
func Tree(w io.Writer, in *core.Instance, opts Options) error {
	var loads []int64
	if opts.Solution != nil {
		loads = opts.Solution.ServerLoads(in.Tree.Len())
	}
	var sb strings.Builder
	var walk func(v int, prefix string, last bool)
	walk = func(v int, prefix string, isLast bool) {
		connector := "├── "
		childPrefix := prefix + "│   "
		if isLast {
			connector = "└── "
			childPrefix = prefix + "    "
		}
		if v == in.Tree.Root() {
			connector, childPrefix = "", ""
		}
		sb.WriteString(prefix + connector + vertexLabel(in, v, opts, loads) + "\n")
		kids := in.Tree.Children(v)
		for i, c := range kids {
			walk(c, childPrefix, i == len(kids)-1)
		}
	}
	walk(in.Tree.Root(), "", true)
	_, err := io.WriteString(w, sb.String())
	return err
}

func vertexLabel(in *core.Instance, v int, opts Options, loads []int64) string {
	t := in.Tree
	var b strings.Builder
	if t.IsClient(v) {
		fmt.Fprintf(&b, "c%d (r=%d)", v, in.R[v])
		if opts.ShowQoS && in.Q != nil && in.Q[v] != core.NoQoS {
			fmt.Fprintf(&b, " q=%d", in.Q[v])
		}
		if opts.Solution != nil && len(opts.Solution.Assign[v]) > 0 {
			b.WriteString(" -> {")
			for i, p := range opts.Solution.Assign[v] {
				if i > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "n%d:%d", p.Server, p.Load)
			}
			b.WriteString("}")
		}
	} else {
		fmt.Fprintf(&b, "n%d [W=%d s=%d]", v, in.W[v], in.S[v])
		if opts.Solution != nil && opts.Solution.IsReplica(v) {
			fmt.Fprintf(&b, " *replica load=%d/%d", loads[v], in.W[v])
		}
	}
	if opts.ShowBandwidth && in.BW != nil && v != t.Root() && in.BW[v] != core.NoBandwidth {
		fmt.Fprintf(&b, " bw=%d", in.BW[v])
	}
	return b.String()
}

// Summary writes a one-paragraph description of a solution: cost,
// replica count, per-replica utilization.
func Summary(w io.Writer, in *core.Instance, sol *core.Solution) error {
	loads := sol.ServerLoads(in.Tree.Len())
	var sb strings.Builder
	fmt.Fprintf(&sb, "storage cost %d, %d replicas, read cost %d, update cost %d\n",
		sol.StorageCost(in), sol.ReplicaCount(), sol.ReadCost(in), sol.UpdateCost(in))
	for _, s := range sol.Replicas() {
		util := 0.0
		if in.W[s] > 0 {
			util = 100 * float64(loads[s]) / float64(in.W[s])
		}
		fmt.Fprintf(&sb, "  n%-4d load %6d / %-6d (%5.1f%%)\n", s, loads[s], in.W[s], util)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
