package render

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
)

func TestTreeBasic(t *testing.T) {
	in, _ := core.Figure6()
	var sb strings.Builder
	if err := Tree(&sb, in, Options{}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"n0 [W=10 s=1]", "├──", "└──", "(r=15)"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// One line per vertex.
	if got := strings.Count(out, "\n"); got != in.Tree.Len() {
		t.Errorf("lines = %d, want %d", got, in.Tree.Len())
	}
}

func TestTreeWithSolution(t *testing.T) {
	in, _ := core.Figure6()
	sol, err := exact.MultipleHomogeneous(in)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Tree(&sb, in, Options{Solution: sol}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "*replica") != sol.ReplicaCount() {
		t.Errorf("replica markers = %d, want %d:\n%s",
			strings.Count(out, "*replica"), sol.ReplicaCount(), out)
	}
	if !strings.Contains(out, "-> {") {
		t.Errorf("missing assignments:\n%s", out)
	}
}

func TestTreeConstraintAnnotations(t *testing.T) {
	in := gen.Instance(gen.Config{Internal: 4, Clients: 5, QoSRange: 2, BWFactor: 0.5}, 1)
	var sb strings.Builder
	if err := Tree(&sb, in, Options{ShowQoS: true, ShowBandwidth: true}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, " q=") || !strings.Contains(out, " bw=") {
		t.Errorf("missing constraint annotations:\n%s", out)
	}
}

func TestSummary(t *testing.T) {
	in, _ := core.Figure6()
	sol, err := exact.MultipleHomogeneous(in)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Summary(&sb, in, sol); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "storage cost 6") {
		t.Errorf("missing cost line:\n%s", out)
	}
	if got := strings.Count(out, "n"); got < sol.ReplicaCount() {
		t.Errorf("missing per-replica lines:\n%s", out)
	}
	if !strings.Contains(out, "100.0%") { // pass-1 saturated replicas
		t.Errorf("expected a fully utilized replica:\n%s", out)
	}
}
