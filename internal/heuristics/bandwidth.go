package heuristics

import (
	"sort"

	"repro/internal/core"
)

// This file implements bandwidth-aware variants of one heuristic per
// policy — the paper's second future-work axis ("including bandwidth
// constraints may require a better global load-balancing along the tree,
// thereby favoring Multiple over Upwards", Section 10). Each variant
// treats per-link capacities as hard limits while routing requests
// upward.

// MGBW is the Multiple greedy with bandwidth awareness. Because the base
// greedy already absorbs as many requests as possible at every node, the
// traffic it sends across each link is the minimum over all assignments;
// MGBW therefore decides feasibility of Multiple + bandwidth exactly: it
// fails only when the pending overflow of some subtree exceeds the link
// capacity in every solution.
func MGBW(in *core.Instance) (*core.Solution, error) {
	st := newState(in)
	t := in.Tree
	for _, s := range t.PostOrder() {
		if t.IsClient(s) {
			// A client's full demand must cross its own uplink.
			if in.BW != nil && in.BW[s] != core.NoBandwidth && st.rrem[s] > in.BW[s] {
				return nil, ErrNoSolution
			}
			continue
		}
		if st.inreq[s] > 0 && in.W[s] > 0 {
			take := st.inreq[s]
			if take > in.W[s] {
				take = in.W[s]
			}
			st.deleteMultiple(s, take, false)
		}
		if s != t.Root() && in.BW != nil && in.BW[s] != core.NoBandwidth &&
			st.inreq[s] > in.BW[s] {
			return nil, ErrNoSolution
		}
	}
	return st.finish()
}

// UBCFBW is UBCF with bandwidth awareness: a client only considers
// ancestors reachable without exhausting any link's residual bandwidth,
// and reserves that bandwidth when assigned.
func UBCFBW(in *core.Instance) (*core.Solution, error) {
	t := in.Tree
	sol := core.NewSolution(t.Len())
	capLeft := append([]int64(nil), in.W...)
	var bwLeft []int64
	if in.BW != nil {
		bwLeft = append([]int64(nil), in.BW...)
	}
	residual := func(v int) int64 {
		if bwLeft == nil || bwLeft[v] == core.NoBandwidth {
			return 1 << 60
		}
		return bwLeft[v]
	}

	clients := append([]int(nil), t.Clients()...)
	sort.SliceStable(clients, func(a, b int) bool {
		return in.R[clients[a]] > in.R[clients[b]]
	})
	for _, c := range clients {
		r := in.R[c]
		if r == 0 {
			continue
		}
		best := -1
		pathOK := residual(c) >= r // the client's own uplink
		for _, a := range t.Ancestors(c) {
			if !pathOK {
				break
			}
			if capLeft[a] >= r && in.QoSAllows(c, a) &&
				(best < 0 || capLeft[a] < capLeft[best]) {
				best = a
			}
			pathOK = residual(a) >= r // link a -> parent(a), for the next hop
		}
		if best < 0 {
			return nil, ErrNoSolution
		}
		capLeft[best] -= r
		if bwLeft != nil {
			for _, u := range t.PathLinks(c, best) {
				if bwLeft[u] != core.NoBandwidth {
					bwLeft[u] -= r
				}
			}
		}
		sol.AddPortion(c, best, r)
	}
	return sol, nil
}

// CTDABW is CTDA with bandwidth awareness: a node may absorb its subtree
// only if every pending client's demand fits through the links between
// the client and the node.
func CTDABW(in *core.Instance) (*core.Solution, error) {
	st := newState(in)
	t := in.Tree
	fits := func(s int) bool {
		if in.BW == nil {
			return true
		}
		// Under Closest, the flow on a link u -> parent(u) inside
		// subtree(s) is the whole pending demand below u.
		var walk func(v int) bool
		walk = func(v int) bool {
			for _, c := range t.Children(v) {
				var below int64
				if t.IsClient(c) {
					below = st.rrem[c]
				} else {
					below = st.inreq[c]
				}
				if below == 0 {
					continue
				}
				if in.BW[c] != core.NoBandwidth && below > in.BW[c] {
					return false
				}
				if t.IsInternal(c) && !walk(c) {
					return false
				}
			}
			return true
		}
		return walk(s)
	}
	for {
		added := false
		queue := []int{t.Root()}
		for len(queue) > 0 {
			s := queue[0]
			queue = queue[1:]
			if st.repl[s] {
				continue
			}
			if in.W[s] >= st.inreq[s] && st.inreq[s] > 0 && fits(s) {
				st.serveAll(s)
				added = true
				continue
			}
			for _, c := range t.Children(s) {
				if t.IsInternal(c) {
					queue = append(queue, c)
				}
			}
		}
		if !added {
			break
		}
	}
	return st.finish()
}

// AllBW lists the bandwidth-aware variants in registry form.
var AllBW = []Heuristic{
	{"CTDA-BW", "ClosestTopDownAllBandwidth", core.Closest, CTDABW},
	{"UBCF-BW", "UpwardsBigClientFirstBandwidth", core.Upwards, UBCFBW},
	{"MG-BW", "MultipleGreedyBandwidth", core.Multiple, MGBW},
}
