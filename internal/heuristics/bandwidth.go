package heuristics

import (
	"repro/internal/core"
	"repro/internal/tree"
)

// This file implements bandwidth-aware variants of one heuristic per
// policy — the paper's second future-work axis ("including bandwidth
// constraints may require a better global load-balancing along the tree,
// thereby favoring Multiple over Upwards", Section 10). Each variant
// treats per-link capacities as hard limits while routing requests
// upward.

// MGBW is the Multiple greedy with bandwidth awareness. Because the base
// greedy already absorbs as many requests as possible at every node, the
// traffic it sends across each link is the minimum over all assignments;
// MGBW therefore decides feasibility of Multiple + bandwidth exactly: it
// fails only when the pending overflow of some subtree exceeds the link
// capacity in every solution.
func MGBW(in *core.Instance) (*core.Solution, error) { return run(in, mgBW) }

func mgBW(st *state) error {
	in, t := st.in, st.in.Tree
	for _, s := range t.PostOrder() {
		if t.IsClient(s) {
			// A client's full demand must cross its own uplink.
			if in.BW != nil && in.BW[s] != core.NoBandwidth && st.rrem[s] > in.BW[s] {
				return ErrNoSolution
			}
			continue
		}
		if st.inreq[s] > 0 && in.W[s] > 0 {
			take := st.inreq[s]
			if take > in.W[s] {
				take = in.W[s]
			}
			st.deleteMultiple(s, take, false)
		}
		if s != t.Root() && in.BW != nil && in.BW[s] != core.NoBandwidth &&
			st.inreq[s] > in.BW[s] {
			return ErrNoSolution
		}
	}
	return st.finish()
}

// UBCFBW is UBCF with bandwidth awareness: a client only considers
// ancestors reachable without exhausting any link's residual bandwidth,
// and reserves that bandwidth when assigned.
func UBCFBW(in *core.Instance) (*core.Solution, error) { return run(in, ubcfBW) }

func ubcfBW(st *state) error {
	in, t := st.in, st.in.Tree
	copy(st.capLeft, in.W)
	hasBW := in.BW != nil
	if hasBW {
		copy(st.bwLeft, in.BW)
	}
	residual := func(v int) int64 {
		if !hasBW || st.bwLeft[v] == core.NoBandwidth {
			return 1 << 60
		}
		return st.bwLeft[v]
	}

	order := st.order[:0]
	for _, c := range t.Clients() {
		if in.R[c] > 0 {
			order = append(order, c)
		}
	}
	sortByKey(order, in.R, true, st.tmp)
	for _, c := range order {
		r := in.R[c]
		best := -1
		pathOK := residual(c) >= r // the client's own uplink
		for a := t.Parent(c); a != tree.None; a = t.Parent(a) {
			if !pathOK {
				break
			}
			if st.capLeft[a] >= r && in.QoSAllows(c, a) &&
				(best < 0 || st.capLeft[a] < st.capLeft[best]) {
				best = a
			}
			pathOK = residual(a) >= r // link a -> parent(a), for the next hop
		}
		if best < 0 {
			return ErrNoSolution
		}
		st.capLeft[best] -= r
		if hasBW {
			for u := c; u != best; u = t.Parent(u) {
				if st.bwLeft[u] != core.NoBandwidth {
					st.bwLeft[u] -= r
				}
			}
		}
		st.assign(c, best, r)
	}
	return nil
}

// CTDABW is CTDA with bandwidth awareness: a node may absorb its subtree
// only if every pending client's demand fits through the links between
// the client and the node.
func CTDABW(in *core.Instance) (*core.Solution, error) { return run(in, ctdaBW) }

// bwFits reports whether node s can absorb its whole pending subtree
// without overflowing a link. Under Closest, the flow on a link
// u -> parent(u) inside subtree(s) is the whole pending demand below u;
// the subtree is walked as its preorder interval, skipping nothing (links
// under a zero-pending vertex carry zero and pass trivially).
func (st *state) bwFits(s int) bool {
	in, t := st.in, st.in.Tree
	if in.BW == nil {
		return true
	}
	for _, v := range t.Subtree(s) {
		if v == s {
			continue
		}
		below := st.inreq[v]
		if t.IsClient(v) {
			below = st.rrem[v]
		}
		if below > 0 && in.BW[v] != core.NoBandwidth && below > in.BW[v] {
			return false
		}
	}
	return true
}

func ctdaBW(st *state) error {
	in, t := st.in, st.in.Tree
	for {
		added := false
		queue := append(st.queue[:0], t.Root())
		for head := 0; head < len(queue); head++ {
			s := queue[head]
			if st.repl[s] {
				continue
			}
			if in.W[s] >= st.inreq[s] && st.inreq[s] > 0 && st.bwFits(s) {
				st.serveAll(s)
				added = true
				continue
			}
			for _, c := range t.Children(s) {
				if t.IsInternal(c) {
					queue = append(queue, c)
				}
			}
		}
		if !added {
			break
		}
	}
	return st.finish()
}

// AllBW lists the bandwidth-aware variants in registry form.
var AllBW = []Heuristic{
	{"CTDA-BW", "ClosestTopDownAllBandwidth", core.Closest, CTDABW},
	{"UBCF-BW", "UpwardsBigClientFirstBandwidth", core.Upwards, UBCFBW},
	{"MG-BW", "MultipleGreedyBandwidth", core.Multiple, MGBW},
}
