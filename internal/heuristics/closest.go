package heuristics

import (
	"repro/internal/core"
)

// CTDA is ClosestTopDownAll (Algorithm 4): breadth-first traversals from
// the root; any node able to process every pending request of its subtree
// becomes a replica (absorbing all of them) and its subtree is not
// explored further. Traversals repeat until one adds no replica.
func CTDA(in *core.Instance) (*core.Solution, error) { return run(in, ctda) }

func ctda(st *state) error {
	in, t := st.in, st.in.Tree
	for {
		added := false
		queue := append(st.queue[:0], t.Root())
		for head := 0; head < len(queue); head++ {
			s := queue[head]
			if st.repl[s] {
				continue
			}
			if in.W[s] >= st.inreq[s] && st.inreq[s] > 0 {
				st.serveAll(s)
				added = true
				continue
			}
			for _, c := range t.Children(s) {
				if t.IsInternal(c) {
					queue = append(queue, c)
				}
			}
		}
		if !added {
			break
		}
	}
	return st.finish()
}

// CTDLF is ClosestTopDownLargestFirst: the breadth-first traversal treats
// the child subtree with the most pending requests first, and stops as
// soon as one replica has been placed; it is re-run once per replica.
func CTDLF(in *core.Instance) (*core.Solution, error) { return run(in, ctdlf) }

func ctdlf(st *state) error {
	in, t := st.in, st.in.Tree
	for {
		added := false
		queue := append(st.queue[:0], t.Root())
		for head := 0; head < len(queue) && !added; head++ {
			s := queue[head]
			if st.repl[s] {
				continue
			}
			if in.W[s] >= st.inreq[s] && st.inreq[s] > 0 {
				st.serveAll(s)
				added = true
				continue
			}
			k := len(queue)
			for _, c := range t.Children(s) {
				if t.IsInternal(c) {
					queue = append(queue, c)
				}
			}
			sortByKey(queue[k:], st.inreq, true, st.tmp)
		}
		if !added {
			break
		}
	}
	return st.finish()
}

// CBU is ClosestBottomUp (Algorithm 5): a bottom-up sweep placing a
// replica on every node able to process all pending requests of its
// subtree; nodes that cannot defer to their ancestors.
func CBU(in *core.Instance) (*core.Solution, error) { return run(in, cbu) }

func cbu(st *state) error {
	in, t := st.in, st.in.Tree
	for _, s := range t.PostOrder() {
		if t.IsClient(s) {
			continue
		}
		if in.W[s] >= st.inreq[s] && st.inreq[s] > 0 {
			st.serveAll(s)
		}
	}
	return st.finish()
}
