package heuristics

import (
	"sort"

	"repro/internal/core"
)

// CTDA is ClosestTopDownAll (Algorithm 4): breadth-first traversals from
// the root; any node able to process every pending request of its subtree
// becomes a replica (absorbing all of them) and its subtree is not
// explored further. Traversals repeat until one adds no replica.
func CTDA(in *core.Instance) (*core.Solution, error) {
	st := newState(in)
	t := in.Tree
	for {
		added := false
		queue := []int{t.Root()}
		for len(queue) > 0 {
			s := queue[0]
			queue = queue[1:]
			if st.repl[s] {
				continue
			}
			if in.W[s] >= st.inreq[s] && st.inreq[s] > 0 {
				st.serveAll(s)
				added = true
				continue
			}
			for _, c := range t.Children(s) {
				if t.IsInternal(c) {
					queue = append(queue, c)
				}
			}
		}
		if !added {
			break
		}
	}
	return st.finish()
}

// CTDLF is ClosestTopDownLargestFirst: the breadth-first traversal treats
// the child subtree with the most pending requests first, and stops as
// soon as one replica has been placed; it is re-run once per replica.
func CTDLF(in *core.Instance) (*core.Solution, error) {
	st := newState(in)
	t := in.Tree
	for {
		added := false
		queue := []int{t.Root()}
		for len(queue) > 0 && !added {
			s := queue[0]
			queue = queue[1:]
			if st.repl[s] {
				continue
			}
			if in.W[s] >= st.inreq[s] && st.inreq[s] > 0 {
				st.serveAll(s)
				added = true
				continue
			}
			kids := make([]int, 0, len(t.Children(s)))
			for _, c := range t.Children(s) {
				if t.IsInternal(c) {
					kids = append(kids, c)
				}
			}
			sort.SliceStable(kids, func(a, b int) bool {
				return st.inreq[kids[a]] > st.inreq[kids[b]]
			})
			queue = append(queue, kids...)
		}
		if !added {
			break
		}
	}
	return st.finish()
}

// CBU is ClosestBottomUp (Algorithm 5): a bottom-up sweep placing a
// replica on every node able to process all pending requests of its
// subtree; nodes that cannot defer to their ancestors.
func CBU(in *core.Instance) (*core.Solution, error) {
	st := newState(in)
	for _, s := range in.Tree.PostOrder() {
		if in.Tree.IsClient(s) {
			continue
		}
		if in.W[s] >= st.inreq[s] && st.inreq[s] > 0 {
			st.serveAll(s)
		}
	}
	return st.finish()
}
