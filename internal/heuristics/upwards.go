package heuristics

import (
	"repro/internal/core"
	"repro/internal/tree"
)

// UTD is UpwardsTopDown (Algorithms 7-8): a first depth-first pass makes a
// replica of every node whose pending subtree requests exhaust its
// capacity, deleting whole clients (largest first) up to that capacity; a
// second pass adds non-exhausted servers that absorb everything still
// pending below them.
func UTD(in *core.Instance) (*core.Solution, error) { return run(in, utd) }

func utd(st *state) error {
	in, t := st.in, st.in.Tree

	// First pass, depth-first from the root (= preorder over internals).
	for _, s := range t.PreOrder() {
		if t.IsClient(s) {
			continue
		}
		if st.inreq[s] >= in.W[s] && st.inreq[s] > 0 {
			st.repl[s] = true
			st.deleteSingle(s, in.W[s])
		}
	}

	// Second pass: the first non-replica node of each branch with pending
	// requests takes all of them (its capacity suffices: see Section 6.2).
	// Once a node absorbs its subtree, every descendant's inreq is zero,
	// so the preorder scan is the recursive descent of Algorithm 8.
	if st.inreq[t.Root()] > 0 {
		for _, s := range t.PreOrder() {
			if t.IsClient(s) || st.repl[s] || st.inreq[s] == 0 {
				continue
			}
			st.repl[s] = true
			st.deleteSingle(s, st.inreq[s])
		}
	}
	return st.finish()
}

// UBCF is UpwardsBigClientFirst (Algorithm 9): clients in non-increasing
// request order each pick, among the ancestors whose remaining capacity
// fits all their requests, the one with minimal remaining capacity.
func UBCF(in *core.Instance) (*core.Solution, error) { return run(in, ubcf) }

func ubcf(st *state) error {
	in, t := st.in, st.in.Tree
	copy(st.capLeft, in.W)
	order := st.order[:0]
	for _, c := range t.Clients() {
		if in.R[c] > 0 {
			order = append(order, c)
		}
	}
	sortByKey(order, in.R, true, st.tmp)
	for _, c := range order {
		r := in.R[c]
		best := -1
		for a := t.Parent(c); a != tree.None; a = t.Parent(a) {
			if st.capLeft[a] >= r && (best < 0 || st.capLeft[a] < st.capLeft[best]) {
				best = a
			}
		}
		if best < 0 {
			return ErrNoSolution
		}
		st.capLeft[best] -= r
		st.assign(c, best, r)
	}
	return nil
}
