package heuristics

import (
	"sort"

	"repro/internal/core"
)

// UTD is UpwardsTopDown (Algorithms 7-8): a first depth-first pass makes a
// replica of every node whose pending subtree requests exhaust its
// capacity, deleting whole clients (largest first) up to that capacity; a
// second pass adds non-exhausted servers that absorb everything still
// pending below them.
func UTD(in *core.Instance) (*core.Solution, error) {
	st := newState(in)
	t := in.Tree

	// First pass, depth-first from the root.
	var pass1 func(s int)
	pass1 = func(s int) {
		if st.inreq[s] >= in.W[s] && st.inreq[s] > 0 {
			st.repl[s] = true
			st.deleteSingle(s, in.W[s])
		}
		for _, c := range t.Children(s) {
			if t.IsInternal(c) {
				pass1(c)
			}
		}
	}
	pass1(t.Root())

	// Second pass: first non-replica node with pending requests takes all
	// of them (its capacity suffices: see Section 6.2).
	var pass2 func(s int)
	pass2 = func(s int) {
		if !st.repl[s] && st.inreq[s] > 0 {
			st.repl[s] = true
			st.deleteSingle(s, st.inreq[s])
			return
		}
		for _, c := range t.Children(s) {
			if t.IsInternal(c) && st.inreq[c] > 0 {
				pass2(c)
			}
		}
	}
	if st.inreq[t.Root()] > 0 {
		pass2(t.Root())
	}
	return st.finish()
}

// UBCF is UpwardsBigClientFirst (Algorithm 9): clients in non-increasing
// request order each pick, among the ancestors whose remaining capacity
// fits all their requests, the one with minimal remaining capacity.
func UBCF(in *core.Instance) (*core.Solution, error) {
	t := in.Tree
	sol := core.NewSolution(t.Len())
	capLeft := append([]int64(nil), in.W...)

	clients := append([]int(nil), t.Clients()...)
	sort.SliceStable(clients, func(a, b int) bool {
		return in.R[clients[a]] > in.R[clients[b]]
	})
	for _, c := range clients {
		r := in.R[c]
		if r == 0 {
			continue
		}
		best := -1
		for _, a := range t.Ancestors(c) {
			if capLeft[a] >= r && (best < 0 || capLeft[a] < capLeft[best]) {
				best = a
			}
		}
		if best < 0 {
			return nil, ErrNoSolution
		}
		capLeft[best] -= r
		sol.AddPortion(c, best, r)
	}
	return sol, nil
}
