package heuristics

import (
	"sort"

	"repro/internal/core"
)

// This file implements QoS-aware variants of three representative
// heuristics — one per access policy. The paper defers QoS-constrained
// heuristics to future work (Section 10); these variants follow the
// natural design: a server is only eligible for a client within its QoS
// distance, and the Multiple greedy serves requests closest to expiry
// first. Instances without QoS degrade to behaviour close to the base
// heuristics.

// CTDAQoS is CTDA with QoS awareness: a node absorbs its subtree only if
// every pending client in it is within QoS range.
func CTDAQoS(in *core.Instance) (*core.Solution, error) {
	st := newState(in)
	t := in.Tree
	for {
		added := false
		queue := []int{t.Root()}
		for len(queue) > 0 {
			s := queue[0]
			queue = queue[1:]
			if st.repl[s] {
				continue
			}
			if in.W[s] >= st.inreq[s] && st.inreq[s] > 0 && st.qosCovers(s) {
				st.serveAll(s)
				added = true
				continue
			}
			for _, c := range t.Children(s) {
				if t.IsInternal(c) {
					queue = append(queue, c)
				}
			}
		}
		if !added {
			break
		}
	}
	return st.finish()
}

// qosCovers reports whether every pending client under s may be served at
// s under the instance's QoS bounds.
func (st *state) qosCovers(s int) bool {
	for _, c := range st.pendingClients(s) {
		if !st.in.QoSAllows(c, s) {
			return false
		}
	}
	return true
}

// UBCFQoS is UBCF restricted to QoS-eligible ancestors.
func UBCFQoS(in *core.Instance) (*core.Solution, error) {
	t := in.Tree
	sol := core.NewSolution(t.Len())
	capLeft := append([]int64(nil), in.W...)
	clients := append([]int(nil), t.Clients()...)
	sort.SliceStable(clients, func(a, b int) bool {
		return in.R[clients[a]] > in.R[clients[b]]
	})
	for _, c := range clients {
		r := in.R[c]
		if r == 0 {
			continue
		}
		best := -1
		for _, a := range t.Ancestors(c) {
			if !in.QoSAllows(c, a) {
				break // ancestors only get farther
			}
			if capLeft[a] >= r && (best < 0 || capLeft[a] < capLeft[best]) {
				best = a
			}
		}
		if best < 0 {
			return nil, ErrNoSolution
		}
		capLeft[best] -= r
		sol.AddPortion(c, best, r)
	}
	return sol, nil
}

// MGQoS is the Multiple greedy with QoS awareness: every node absorbs
// pending requests up to capacity, serving the clients with the least
// remaining QoS slack first, and the sweep fails as soon as a pending
// client's last eligible server has been passed.
func MGQoS(in *core.Instance) (*core.Solution, error) {
	st := newState(in)
	t := in.Tree
	for _, s := range t.PostOrder() {
		if t.IsClient(s) {
			continue
		}
		// Eligible pending clients, most urgent (least slack) first.
		cs := st.pendingClients(s)
		eligible := cs[:0]
		for _, c := range cs {
			if in.QoSAllows(c, s) {
				eligible = append(eligible, c)
			}
		}
		sort.SliceStable(eligible, func(a, b int) bool {
			return st.slack(eligible[a], s) < st.slack(eligible[b], s)
		})
		budget := in.W[s]
		for _, c := range eligible {
			if budget == 0 {
				break
			}
			take := st.rrem[c]
			if take > budget {
				take = budget
			}
			st.assign(c, s, take)
			budget -= take
		}
		// Expiry check: pending clients whose QoS excludes every ancestor
		// of s can never be served now.
		if s == t.Root() {
			break
		}
		p := t.Parent(s)
		for _, c := range st.pendingClients(s) {
			if !in.QoSAllows(c, p) {
				return nil, ErrNoSolution
			}
		}
	}
	return st.finish()
}

// slack returns the remaining QoS margin of client c when served at s
// (large when the client has no QoS bound).
func (st *state) slack(c, s int) int64 {
	if st.in.Q == nil || st.in.Q[c] == core.NoQoS {
		return 1 << 40
	}
	return int64(st.in.Q[c]) - st.in.Dist(c, s)
}

// AllQoS lists the QoS-aware variants in registry form.
var AllQoS = []Heuristic{
	{"CTDA-QoS", "ClosestTopDownAllQoS", core.Closest, CTDAQoS},
	{"UBCF-QoS", "UpwardsBigClientFirstQoS", core.Upwards, UBCFQoS},
	{"MG-QoS", "MultipleGreedyQoS", core.Multiple, MGQoS},
}
