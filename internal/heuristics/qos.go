package heuristics

import (
	"repro/internal/core"
	"repro/internal/tree"
)

// This file implements QoS-aware variants of three representative
// heuristics — one per access policy. The paper defers QoS-constrained
// heuristics to future work (Section 10); these variants follow the
// natural design: a server is only eligible for a client within its QoS
// distance, and the Multiple greedy serves requests closest to expiry
// first. Instances without QoS degrade to behaviour close to the base
// heuristics.

// CTDAQoS is CTDA with QoS awareness: a node absorbs its subtree only if
// every pending client in it is within QoS range.
func CTDAQoS(in *core.Instance) (*core.Solution, error) { return run(in, ctdaQoS) }

func ctdaQoS(st *state) error {
	in, t := st.in, st.in.Tree
	for {
		added := false
		queue := append(st.queue[:0], t.Root())
		for head := 0; head < len(queue); head++ {
			s := queue[head]
			if st.repl[s] {
				continue
			}
			if in.W[s] >= st.inreq[s] && st.inreq[s] > 0 && st.qosCovers(s) {
				st.serveAll(s)
				added = true
				continue
			}
			for _, c := range t.Children(s) {
				if t.IsInternal(c) {
					queue = append(queue, c)
				}
			}
		}
		if !added {
			break
		}
	}
	return st.finish()
}

// qosCovers reports whether every pending client under s may be served at
// s under the instance's QoS bounds.
func (st *state) qosCovers(s int) bool {
	for _, c := range st.pendingClients(s) {
		if !st.in.QoSAllows(c, s) {
			return false
		}
	}
	return true
}

// UBCFQoS is UBCF restricted to QoS-eligible ancestors.
func UBCFQoS(in *core.Instance) (*core.Solution, error) { return run(in, ubcfQoS) }

func ubcfQoS(st *state) error {
	in, t := st.in, st.in.Tree
	copy(st.capLeft, in.W)
	order := st.order[:0]
	for _, c := range t.Clients() {
		if in.R[c] > 0 {
			order = append(order, c)
		}
	}
	sortByKey(order, in.R, true, st.tmp)
	for _, c := range order {
		r := in.R[c]
		best := -1
		for a := t.Parent(c); a != tree.None; a = t.Parent(a) {
			if !in.QoSAllows(c, a) {
				break // ancestors only get farther
			}
			if st.capLeft[a] >= r && (best < 0 || st.capLeft[a] < st.capLeft[best]) {
				best = a
			}
		}
		if best < 0 {
			return ErrNoSolution
		}
		st.capLeft[best] -= r
		st.assign(c, best, r)
	}
	return nil
}

// MGQoS is the Multiple greedy with QoS awareness: every node absorbs
// pending requests up to capacity, serving the clients with the least
// remaining QoS slack first, and the sweep fails as soon as a pending
// client's last eligible server has been passed.
func MGQoS(in *core.Instance) (*core.Solution, error) { return run(in, mgQoS) }

func mgQoS(st *state) error {
	in, t := st.in, st.in.Tree
	for _, s := range t.PostOrder() {
		if t.IsClient(s) {
			continue
		}
		// Eligible pending clients, most urgent (least slack) first.
		cs := st.pendingClients(s)
		eligible := cs[:0]
		for _, c := range cs {
			if in.QoSAllows(c, s) {
				eligible = append(eligible, c)
				st.key[c] = st.slack(c, s)
			}
		}
		sortByKey(eligible, st.key, false, st.tmp)
		budget := in.W[s]
		for _, c := range eligible {
			if budget == 0 {
				break
			}
			take := st.rrem[c]
			if take > budget {
				take = budget
			}
			st.assign(c, s, take)
			budget -= take
		}
		// Expiry check: pending clients whose QoS excludes every ancestor
		// of s can never be served now.
		if s == t.Root() {
			break
		}
		p := t.Parent(s)
		for _, c := range st.pendingClients(s) {
			if !in.QoSAllows(c, p) {
				return ErrNoSolution
			}
		}
	}
	return st.finish()
}

// slack returns the remaining QoS margin of client c when served at s
// (large when the client has no QoS bound).
func (st *state) slack(c, s int) int64 {
	if st.in.Q == nil || st.in.Q[c] == core.NoQoS {
		return 1 << 40
	}
	return int64(st.in.Q[c]) - st.in.Dist(c, s)
}

// AllQoS lists the QoS-aware variants in registry form.
var AllQoS = []Heuristic{
	{"CTDA-QoS", "ClosestTopDownAllQoS", core.Closest, CTDAQoS},
	{"UBCF-QoS", "UpwardsBigClientFirstQoS", core.Upwards, UBCFQoS},
	{"MG-QoS", "MultipleGreedyQoS", core.Multiple, MGQoS},
}
