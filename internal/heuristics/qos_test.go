package heuristics

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
)

func qosInstance(seed int64, qosRange int) *core.Instance {
	return gen.Instance(gen.Config{
		Internal: 6, Clients: 9, Lambda: 0.4, QoSRange: qosRange,
	}, seed)
}

func TestQoSVariantsValid(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		in := qosInstance(seed, 3)
		for _, h := range AllQoS {
			sol, err := h.Run(in)
			if errors.Is(err, ErrNoSolution) {
				continue
			}
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, h.Name, err)
			}
			if verr := sol.Validate(in, h.Policy); verr != nil {
				t.Fatalf("seed %d %s: invalid: %v", seed, h.Name, verr)
			}
		}
	}
}

// TestQoSVariantsRespectBounds: the base (QoS-oblivious) heuristics can
// violate QoS, the variants never do. Build a chain where the only
// capacity sits at the root but QoS forbids it.
func TestQoSVariantsRespectBounds(t *testing.T) {
	in := core.Figure1('a') // s2 (root) -> s1 -> client, W = 1, r = 1
	in.Q = make([]int, in.Tree.Len())
	for i := range in.Q {
		in.Q[i] = core.NoQoS
	}
	c := in.Tree.Clients()[0]
	in.Q[c] = 1 // only s1 is eligible
	root := in.Tree.Root()
	var s1 int
	for _, j := range in.Tree.Internal() {
		if j != root {
			s1 = j
		}
	}
	in.W[s1] = 0 // force the base heuristics to the root

	for _, h := range AllQoS {
		if _, err := h.Run(in); !errors.Is(err, ErrNoSolution) {
			t.Errorf("%s: want ErrNoSolution, got %v", h.Name, err)
		}
	}
	// The base UBCF happily violates QoS by serving at the root.
	sol, err := UBCF(in)
	if err != nil {
		t.Fatalf("UBCF: %v", err)
	}
	if verr := sol.Validate(in, core.Upwards); verr == nil {
		t.Error("base UBCF should violate QoS here")
	}
}

// TestMGQoSAgainstBruteForce: MGQoS never succeeds on Multiple+QoS
// instances that brute force proves infeasible, and its solutions always
// validate.
func TestMGQoSAgainstBruteForce(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		in := gen.Instance(gen.Config{
			Internal: 4, Clients: 5, Lambda: 0.5, QoSRange: 2,
		}, seed+600)
		sol, err := MGQoS(in)
		_, bfErr := exact.BruteForce(context.Background(), in, core.Multiple)
		if err == nil {
			if verr := sol.Validate(in, core.Multiple); verr != nil {
				t.Fatalf("seed %d: invalid MGQoS solution: %v", seed, verr)
			}
			if bfErr != nil {
				t.Fatalf("seed %d: MGQoS solved a brute-force-infeasible instance", seed)
			}
		}
	}
}

// TestQoSVariantsDegradeGracefully: without QoS bounds, the variants still
// produce valid solutions comparable to their base versions.
func TestQoSVariantsDegradeGracefully(t *testing.T) {
	in := gen.Instance(gen.Config{Internal: 6, Clients: 9, Lambda: 0.4}, 5)
	base := map[string]Func{"CTDA-QoS": CTDA, "UBCF-QoS": UBCF, "MG-QoS": MG}
	for _, h := range AllQoS {
		qsol, qerr := h.Run(in)
		bsol, berr := base[h.Name](in)
		if (qerr == nil) != (berr == nil) {
			t.Errorf("%s: feasibility differs without QoS (qos=%v base=%v)", h.Name, qerr, berr)
			continue
		}
		if qerr == nil && qsol.StorageCost(in) <= 0 && bsol.StorageCost(in) > 0 {
			t.Errorf("%s: degenerate cost", h.Name)
		}
	}
}
