package heuristics

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
)

// runAll executes every registered heuristic (plus MB) on the instance and
// validates each produced solution under the heuristic's policy.
func runAll(t *testing.T, in *core.Instance) map[string]*core.Solution {
	t.Helper()
	out := map[string]*core.Solution{}
	for _, h := range All {
		sol, err := h.Run(in)
		if errors.Is(err, ErrNoSolution) {
			continue
		}
		if err != nil {
			t.Fatalf("%s: %v", h.Name, err)
		}
		if verr := sol.Validate(in, h.Policy); verr != nil {
			t.Fatalf("%s produced an invalid %v solution: %v", h.Name, h.Policy, verr)
		}
		out[h.Name] = sol
	}
	if sol, err := MB(in); err == nil {
		if verr := sol.Validate(in, core.Multiple); verr != nil {
			t.Fatalf("MB produced an invalid solution: %v", verr)
		}
		out["MB"] = sol
	}
	return out
}

func TestAllValidOnRandomInstances(t *testing.T) {
	for seed := int64(0); seed < 80; seed++ {
		in := gen.Instance(gen.Config{
			Internal:      4 + int(seed%8),
			Clients:       3 + int(seed%9),
			Lambda:        0.1 + float64(seed%9)/10.0,
			Heterogeneous: seed%2 == 1,
		}, seed)
		runAll(t, in)
	}
}

// TestCostAboveOptimum checks every heuristic's cost is at least its
// policy's optimum (brute force) on small instances.
func TestCostAboveOptimum(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		in := gen.Instance(gen.Config{
			Internal:      3 + int(seed%4),
			Clients:       3 + int(seed%4),
			Lambda:        0.3 + float64(seed%5)/10.0,
			Heterogeneous: seed%2 == 1,
		}, seed+100)
		opt := map[core.Policy]int64{}
		feas := map[core.Policy]bool{}
		for _, p := range core.Policies {
			if sol, err := exact.BruteForce(context.Background(), in, p); err == nil {
				opt[p] = sol.StorageCost(in)
				feas[p] = true
			}
		}
		for _, h := range All {
			sol, err := h.Run(in)
			if err != nil {
				continue
			}
			if !feas[h.Policy] {
				t.Fatalf("seed %d: %s found a solution on a %v-infeasible instance", seed, h.Name, h.Policy)
			}
			if c := sol.StorageCost(in); c < opt[h.Policy] {
				t.Errorf("seed %d: %s cost %d below optimum %d", seed, h.Name, c, opt[h.Policy])
			}
		}
	}
}

// TestMGCompleteness: MG finds a solution exactly when the Multiple policy
// admits one (Section 6.3 claims MG "always finds a solution to the
// problem if there exists one").
func TestMGCompleteness(t *testing.T) {
	for seed := int64(0); seed < 80; seed++ {
		in := gen.Instance(gen.Config{
			Internal:      3 + int(seed%5),
			Clients:       3 + int(seed%6),
			Lambda:        0.5 + float64(seed%5)/10.0, // include heavy loads
			Heterogeneous: seed%2 == 0,
		}, seed+300)
		_, mgErr := MG(in)
		_, bfErr := exact.BruteForce(context.Background(), in, core.Multiple)
		if (mgErr == nil) != (bfErr == nil) {
			t.Fatalf("seed %d: MG err=%v, brute force err=%v", seed, mgErr, bfErr)
		}
	}
}

// TestFigure1Existence mirrors the Figure 1 feasibility table at the
// heuristic level: on (b) the Closest heuristics must fail while Upwards
// and Multiple ones succeed; on (c) only the Multiple ones succeed.
func TestFigure1Existence(t *testing.T) {
	b := core.Figure1('b')
	solsB := runAll(t, b)
	for _, name := range []string{"CTDA", "CTDLF", "CBU"} {
		if _, ok := solsB[name]; ok {
			t.Errorf("fig1b: %s should fail", name)
		}
	}
	for _, name := range []string{"UTD", "UBCF", "MTD", "MBU", "MG", "MB"} {
		if _, ok := solsB[name]; !ok {
			t.Errorf("fig1b: %s should succeed", name)
		}
	}
	c := core.Figure1('c')
	solsC := runAll(t, c)
	for _, name := range []string{"CTDA", "CTDLF", "CBU", "UTD", "UBCF"} {
		if _, ok := solsC[name]; ok {
			t.Errorf("fig1c: %s should fail", name)
		}
	}
	for _, name := range []string{"MTD", "MBU", "MG", "MB"} {
		if _, ok := solsC[name]; !ok {
			t.Errorf("fig1c: %s should succeed", name)
		}
	}
}

// TestFigure2Heuristics: on the Upwards-vs-Closest gap instance, UTD finds
// the 3-replica solution of Section 3.2; CTDLF reaches the Closest optimum
// n+2 (its largest-first order lets the middle node absorb the tail),
// while CTDA and CBU give every leaf its own replica (2n+1 total).
func TestFigure2Heuristics(t *testing.T) {
	const n = 3
	in := core.Figure2(n)
	sols := runAll(t, in)
	if sol := sols["UTD"]; sol == nil || sol.ReplicaCount() != 3 {
		t.Errorf("UTD replicas = %v, want 3", sols["UTD"])
	}
	if sol := sols["CTDLF"]; sol == nil || sol.ReplicaCount() != n+2 {
		t.Errorf("CTDLF replicas = %v, want %d", sols["CTDLF"], n+2)
	}
	for _, name := range []string{"CTDA", "CBU"} {
		sol := sols[name]
		if sol == nil {
			t.Errorf("%s failed on fig2", name)
			continue
		}
		if sol.ReplicaCount() != 2*n+1 {
			t.Errorf("%s replicas = %d, want %d", name, sol.ReplicaCount(), 2*n+1)
		}
	}
	if sol := sols["MB"]; sol == nil || sol.ReplicaCount() != 3 {
		t.Errorf("MB should pick the 3-replica solution")
	}
}

// TestMBPicksBest: MB's cost is the minimum over all successful
// heuristics.
func TestMBPicksBest(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		in := gen.Instance(gen.Config{
			Internal: 5, Clients: 6,
			Lambda:        0.5,
			Heterogeneous: seed%2 == 0,
		}, seed+700)
		sols := runAll(t, in)
		mb, ok := sols["MB"]
		if !ok {
			continue
		}
		for name, sol := range sols {
			if name == "MB" {
				continue
			}
			if sol.StorageCost(in) < mb.StorageCost(in) {
				t.Errorf("seed %d: %s cost %d beats MB cost %d",
					seed, name, sol.StorageCost(in), mb.StorageCost(in))
			}
		}
	}
}

// TestClosestSolutionsAreUpwardsSolutions: policy hierarchy at the
// solution level (Section 3).
func TestClosestSolutionsAreUpwardsSolutions(t *testing.T) {
	in := gen.Instance(gen.Config{Internal: 6, Clients: 8, Lambda: 0.4}, 11)
	sols := runAll(t, in)
	for _, name := range []string{"CTDA", "CTDLF", "CBU"} {
		if sol := sols[name]; sol != nil {
			if err := sol.Validate(in, core.Upwards); err != nil {
				t.Errorf("%s solution not Upwards-valid: %v", name, err)
			}
			if err := sol.Validate(in, core.Multiple); err != nil {
				t.Errorf("%s solution not Multiple-valid: %v", name, err)
			}
		}
	}
	for _, name := range []string{"UTD", "UBCF"} {
		if sol := sols[name]; sol != nil {
			if err := sol.Validate(in, core.Multiple); err != nil {
				t.Errorf("%s solution not Multiple-valid: %v", name, err)
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"CTDA", "CTDLF", "CBU", "UTD", "UBCF", "MTD", "MBU", "MG", "MB"} {
		h, ok := ByName(name)
		if !ok || h.Run == nil {
			t.Errorf("ByName(%q) missing", name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) should fail")
	}
}

// TestZeroRequestClients: clients with zero requests need no server.
func TestZeroRequestClients(t *testing.T) {
	in := core.Figure1('a')
	in.R[in.Tree.Clients()[0]] = 0
	for _, h := range All {
		sol, err := h.Run(in)
		if err != nil {
			t.Errorf("%s failed on zero-request instance: %v", h.Name, err)
			continue
		}
		if sol.ReplicaCount() != 0 {
			t.Errorf("%s placed %d replicas for zero requests", h.Name, sol.ReplicaCount())
		}
	}
}

// TestHeavySingleClient: a client larger than every capacity defeats the
// single-server policies but not Multiple.
func TestHeavySingleClient(t *testing.T) {
	in := core.Figure1('c') // r=2, W=1: needs splitting
	for _, name := range []string{"MTD", "MBU", "MG"} {
		h, _ := ByName(name)
		sol, err := h.Run(in)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if sol.ReplicaCount() != 2 {
			t.Errorf("%s replicas = %d, want 2", name, sol.ReplicaCount())
		}
	}
}
