package heuristics

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
)

func bwInstance(seed int64, factor float64) *core.Instance {
	return gen.Instance(gen.Config{
		Internal: 5, Clients: 8, Lambda: 0.4, BWFactor: factor,
	}, seed)
}

func TestBWVariantsValid(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		in := bwInstance(seed, 0.5)
		for _, h := range AllBW {
			sol, err := h.Run(in)
			if errors.Is(err, ErrNoSolution) {
				continue
			}
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, h.Name, err)
			}
			if verr := sol.Validate(in, h.Policy); verr != nil {
				t.Fatalf("seed %d %s: invalid: %v", seed, h.Name, verr)
			}
		}
	}
}

// TestMGBWExactFeasibility: MGBW succeeds exactly when the Multiple+BW
// instance is feasible (cross-checked against the max-flow brute force).
func TestMGBWExactFeasibility(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		in := gen.Instance(gen.Config{
			Internal: 4, Clients: 6,
			Lambda:   0.4 + float64(seed%5)/10.0,
			BWFactor: 0.3 + float64(seed%7)/10.0,
		}, seed+50)
		_, mgErr := MGBW(in)
		_, bfErr := exact.BruteForce(context.Background(), in, core.Multiple)
		if (mgErr == nil) != (bfErr == nil) {
			t.Fatalf("seed %d: MGBW err=%v, brute force err=%v", seed, mgErr, bfErr)
		}
	}
}

// TestBWVariantsRespectLinks: tight links that the base heuristics would
// overload are honoured by the variants.
func TestBWVariantsRespectLinks(t *testing.T) {
	// Figure 1(b): two unit clients under s1, W = 1 everywhere. One
	// client must be served at the root, crossing the s1 link.
	in := core.Figure1('b')
	root := in.Tree.Root()
	var s1 int
	for _, j := range in.Tree.Internal() {
		if j != root {
			s1 = j
		}
	}
	in.BW = make([]int64, in.Tree.Len())
	for i := range in.BW {
		in.BW[i] = core.NoBandwidth
	}
	in.BW[s1] = 0 // nothing may cross s1 -> root

	if _, err := MGBW(in); !errors.Is(err, ErrNoSolution) {
		t.Errorf("MGBW: want ErrNoSolution, got %v", err)
	}
	if _, err := UBCFBW(in); !errors.Is(err, ErrNoSolution) {
		t.Errorf("UBCFBW: want ErrNoSolution, got %v", err)
	}
	// The base UBCF ignores the link and produces an invalid solution.
	sol, err := UBCF(in)
	if err != nil {
		t.Fatalf("UBCF: %v", err)
	}
	if verr := sol.Validate(in, core.Upwards); verr == nil {
		t.Error("base UBCF should overload the blocked link")
	}
	// With bandwidth 1 everything works again.
	in.BW[s1] = 1
	for _, h := range AllBW {
		if h.Name == "CTDA-BW" {
			continue // Closest stays infeasible on fig1b regardless
		}
		sol, err := h.Run(in)
		if err != nil {
			t.Errorf("%s: %v", h.Name, err)
			continue
		}
		if verr := sol.Validate(in, h.Policy); verr != nil {
			t.Errorf("%s: %v", h.Name, verr)
		}
	}
}

// TestCTDABWBlocksOversizedSubtrees: a Closest replica may not absorb a
// subtree whose internal links cannot carry the demand.
func TestCTDABWBlocksOversizedSubtrees(t *testing.T) {
	// Chain root -> s1 with a heavy client under s1; serving at the root
	// requires the s1 uplink. CTDA-BW must serve at s1 instead.
	in := core.Figure1('a')
	root := in.Tree.Root()
	c := in.Tree.Clients()[0]
	var s1 int
	for _, j := range in.Tree.Internal() {
		if j != root {
			s1 = j
		}
	}
	in.R[c] = 5
	in.W[root], in.W[s1] = 10, 10
	in.BW = make([]int64, in.Tree.Len())
	for i := range in.BW {
		in.BW[i] = core.NoBandwidth
	}
	in.BW[s1] = 2 // the uplink cannot carry the 5 requests
	sol, err := CTDABW(in)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.IsReplica(s1) || sol.IsReplica(root) {
		t.Errorf("replicas = %v, want exactly {s1}", sol.Replicas())
	}
	if verr := sol.Validate(in, core.Closest); verr != nil {
		t.Fatal(verr)
	}
}

// TestBWVariantsDegradeGracefully: without bandwidth caps the variants
// agree with their base heuristics on feasibility.
func TestBWVariantsDegradeGracefully(t *testing.T) {
	base := map[string]Func{"CTDA-BW": CTDA, "UBCF-BW": UBCF, "MG-BW": MG}
	for seed := int64(0); seed < 30; seed++ {
		in := gen.Instance(gen.Config{Internal: 6, Clients: 9, Lambda: 0.4}, seed+400)
		for _, h := range AllBW {
			_, verr := h.Run(in)
			_, berr := base[h.Name](in)
			if (verr == nil) != (berr == nil) {
				t.Errorf("seed %d %s: feasibility differs without BW", seed, h.Name)
			}
		}
	}
}
