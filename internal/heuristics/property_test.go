package heuristics

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/gen"
)

// TestQuickAllFamiliesAllConfigs property-tests every heuristic family
// (base, QoS-aware, bandwidth-aware) across randomized generator
// configurations: whatever a heuristic returns must validate under its
// policy on that instance — including the constraint dimensions the base
// heuristics ignore being caught by Validate when present.
func TestQuickAllFamiliesAllConfigs(t *testing.T) {
	f := func(seed int64, knobs uint16) bool {
		cfg := gen.Config{
			Internal:      3 + int(knobs%8),
			Clients:       3 + int((knobs>>3)%10),
			Lambda:        0.15 + float64((knobs>>6)%8)/10.0,
			Heterogeneous: knobs&(1<<9) != 0,
			UnitCosts:     knobs&(1<<10) != 0,
		}
		qos := knobs&(1<<11) != 0
		bw := knobs&(1<<12) != 0
		if qos {
			cfg.QoSRange = 1 + int((knobs>>13)%3)
		}
		if bw {
			cfg.BWFactor = 0.4 + float64((knobs>>13)%5)/10.0
		}
		in := gen.Instance(cfg, seed)
		if err := in.Validate(); err != nil {
			return false
		}

		check := func(h Heuristic, honorsQoS, honorsBW bool) bool {
			sol, err := h.Run(in)
			if errors.Is(err, ErrNoSolution) {
				return true
			}
			if err != nil {
				return false
			}
			// Validate against a view with only the constraints the
			// heuristic claims to honour; the others are not its contract.
			view := in.Clone()
			if !honorsQoS {
				view.Q = nil
			}
			if !honorsBW {
				view.BW = nil
			}
			return sol.Validate(view, h.Policy) == nil
		}
		for _, h := range All {
			if !check(h, false, false) {
				t.Logf("base %s failed on seed=%d knobs=%d", h.Name, seed, knobs)
				return false
			}
		}
		for _, h := range AllQoS {
			if !check(h, true, false) {
				t.Logf("qos %s failed on seed=%d knobs=%d", h.Name, seed, knobs)
				return false
			}
		}
		for _, h := range AllBW {
			if !check(h, false, true) {
				t.Logf("bw %s failed on seed=%d knobs=%d", h.Name, seed, knobs)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickMixedBestDominance: MB's storage cost never exceeds any
// individual heuristic's on the same instance.
func TestQuickMixedBestDominance(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		in := gen.Instance(gen.Config{
			Internal: 3 + int(sz%7),
			Clients:  4 + int(sz%9),
			Lambda:   0.35,
		}, seed)
		mb, err := MB(in)
		if errors.Is(err, ErrNoSolution) {
			// Then nobody may succeed.
			for _, h := range All {
				if _, herr := h.Run(in); herr == nil {
					return false
				}
			}
			return true
		}
		if err != nil {
			return false
		}
		for _, h := range All {
			if sol, herr := h.Run(in); herr == nil {
				if sol.StorageCost(in) < mb.StorageCost(in) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
