// Package heuristics implements the eight polynomial heuristics of
// Section 6 for the Replica Cost problem — three for the Closest policy
// (CTDA, CTDLF, CBU), two for Upwards (UTD, UBCF), three for Multiple
// (MTD, MBU, MG) — plus the MixedBest combination used in the Section 7
// experiments. All heuristics run in worst-case quadratic time in the
// problem size s = |C| + |N| and return fully validated solutions.
package heuristics

import (
	"errors"
	"sort"

	"repro/internal/core"
)

// ErrNoSolution is returned when a heuristic fails to cover all requests.
// This does not imply the instance is infeasible (except for MG, which is
// exact on feasibility for the Multiple policy).
var ErrNoSolution = errors.New("heuristics: no solution found")

// Func is a placement heuristic.
type Func func(in *core.Instance) (*core.Solution, error)

// Heuristic describes one registered heuristic.
type Heuristic struct {
	// Name is the paper's short name (e.g. "CTDA").
	Name string
	// Long is the paper's full name (e.g. "ClosestTopDownAll").
	Long string
	// Policy is the access policy the produced solutions obey.
	Policy core.Policy
	// Run executes the heuristic.
	Run Func
}

// All lists the eight heuristics in the paper's presentation order.
// MixedBest is separate (see MB) because it composes the other eight.
var All = []Heuristic{
	{"CTDA", "ClosestTopDownAll", core.Closest, CTDA},
	{"CTDLF", "ClosestTopDownLargestFirst", core.Closest, CTDLF},
	{"CBU", "ClosestBottomUp", core.Closest, CBU},
	{"UTD", "UpwardsTopDown", core.Upwards, UTD},
	{"UBCF", "UpwardsBigClientFirst", core.Upwards, UBCF},
	{"MTD", "MultipleTopDown", core.Multiple, MTD},
	{"MBU", "MultipleBottomUp", core.Multiple, MBU},
	{"MG", "MultipleGreedy", core.Multiple, MG},
}

// ByName returns the registered heuristic with the given short name.
func ByName(name string) (Heuristic, bool) {
	for _, h := range All {
		if h.Name == name {
			return h, true
		}
	}
	if name == "MB" {
		return Heuristic{"MB", "MixedBest", core.Multiple, MB}, true
	}
	return Heuristic{}, false
}

// state is the shared mutable working set of a heuristic run: pending
// requests per subtree (the paper's inreq), remaining requests per client,
// and the solution being built.
type state struct {
	in    *core.Instance
	inreq []int64 // pending requests reaching each vertex from its subtree
	rrem  []int64 // remaining (unassigned) requests per client
	sol   *core.Solution
	repl  []bool
}

func newState(in *core.Instance) *state {
	t := in.Tree
	st := &state{
		in:    in,
		inreq: make([]int64, t.Len()),
		rrem:  make([]int64, t.Len()),
		sol:   core.NewSolution(t.Len()),
		repl:  make([]bool, t.Len()),
	}
	for _, v := range t.PostOrder() {
		if t.IsClient(v) {
			st.rrem[v] = in.R[v]
			st.inreq[v] = in.R[v]
			continue
		}
		for _, c := range t.Children(v) {
			st.inreq[v] += st.inreq[c]
		}
	}
	return st
}

// assign gives x pending requests of client c to server s, updating the
// inreq of every ancestor of c (the paper's deleteRequests bookkeeping).
func (st *state) assign(c, s int, x int64) {
	if x <= 0 {
		return
	}
	st.sol.AddPortion(c, s, x)
	st.rrem[c] -= x
	st.inreq[c] -= x
	for _, a := range st.in.Tree.Ancestors(c) {
		st.inreq[a] -= x
	}
	st.repl[s] = true
}

// pendingClients returns the clients under s that still have requests, in
// subtree id order.
func (st *state) pendingClients(s int) []int {
	var out []int
	for _, c := range st.in.Tree.ClientsUnder(s) {
		if st.rrem[c] > 0 {
			out = append(out, c)
		}
	}
	return out
}

// serveAll assigns every pending request under s to s (used by the Closest
// heuristics, whose replicas always absorb their whole pending subtree).
func (st *state) serveAll(s int) {
	for _, c := range st.pendingClients(s) {
		st.assign(c, s, st.rrem[c])
	}
	st.repl[s] = true
}

// finish validates coverage and returns the built solution.
func (st *state) finish() (*core.Solution, error) {
	if st.inreq[st.in.Tree.Root()] != 0 {
		return nil, ErrNoSolution
	}
	return st.sol, nil
}

// sortedByRemaining returns pending clients under s ordered by remaining
// requests (descending if desc, else ascending), ties broken by id.
func (st *state) sortedByRemaining(s int, desc bool) []int {
	cs := st.pendingClients(s)
	sort.SliceStable(cs, func(a, b int) bool {
		if desc {
			return st.rrem[cs[a]] > st.rrem[cs[b]]
		}
		return st.rrem[cs[a]] < st.rrem[cs[b]]
	})
	return cs
}

// deleteSingle implements the Upwards deleteRequests (Algorithm 6): remove
// whole clients in non-increasing request order while they fit in budget.
func (st *state) deleteSingle(s int, budget int64) {
	for _, c := range st.sortedByRemaining(s, true) {
		if st.rrem[c] <= budget {
			budget -= st.rrem[c]
			st.assign(c, s, st.rrem[c])
			if budget == 0 {
				return
			}
		}
	}
}

// deleteMultiple implements the Multiple delete (Algorithm 10, with the
// obvious typo fixed: the partial deletion subtracts the deleted amount,
// not the client's residue): whole clients while they fit, then one
// partial from the next client in order. desc selects the MTD ordering
// (non-increasing); MBU uses non-decreasing.
func (st *state) deleteMultiple(s int, budget int64, desc bool) {
	for _, c := range st.sortedByRemaining(s, desc) {
		if st.rrem[c] <= budget {
			budget -= st.rrem[c]
			st.assign(c, s, st.rrem[c])
			if budget == 0 {
				return
			}
		} else {
			st.assign(c, s, budget)
			return
		}
	}
}
