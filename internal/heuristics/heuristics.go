// Package heuristics implements the eight polynomial heuristics of
// Section 6 for the Replica Cost problem — three for the Closest policy
// (CTDA, CTDLF, CBU), two for Upwards (UTD, UBCF), three for Multiple
// (MTD, MBU, MG) — plus the MixedBest combination used in the Section 7
// experiments. All heuristics run in worst-case quadratic time in the
// problem size s = |C| + |N| and return fully validated solutions.
//
// The mutable working set of a run (pending requests, remaining requests,
// replica flags, assignment buffers, sort scratch) lives in a pooled state
// shared across solves, so a steady-state solve allocates only the
// returned Solution. Scratch slices are views into pooled arrays and are
// never retained past a solve; the returned Solution owns its memory.
package heuristics

import (
	"errors"
	"sync"

	"repro/internal/core"
	"repro/internal/tree"
)

// ErrNoSolution is returned when a heuristic fails to cover all requests.
// This does not imply the instance is infeasible (except for MG, which is
// exact on feasibility for the Multiple policy).
var ErrNoSolution = errors.New("heuristics: no solution found")

// Func is a placement heuristic.
type Func func(in *core.Instance) (*core.Solution, error)

// Heuristic describes one registered heuristic.
type Heuristic struct {
	// Name is the paper's short name (e.g. "CTDA").
	Name string
	// Long is the paper's full name (e.g. "ClosestTopDownAll").
	Long string
	// Policy is the access policy the produced solutions obey.
	Policy core.Policy
	// Run executes the heuristic.
	Run Func
}

// All lists the eight heuristics in the paper's presentation order.
// MixedBest is separate (see MB) because it composes the other eight.
var All = []Heuristic{
	{"CTDA", "ClosestTopDownAll", core.Closest, CTDA},
	{"CTDLF", "ClosestTopDownLargestFirst", core.Closest, CTDLF},
	{"CBU", "ClosestBottomUp", core.Closest, CBU},
	{"UTD", "UpwardsTopDown", core.Upwards, UTD},
	{"UBCF", "UpwardsBigClientFirst", core.Upwards, UBCF},
	{"MTD", "MultipleTopDown", core.Multiple, MTD},
	{"MBU", "MultipleBottomUp", core.Multiple, MBU},
	{"MG", "MultipleGreedy", core.Multiple, MG},
}

// allFuncs lists the scratch-level bodies of the eight heuristics in the
// same order as All; MB iterates it without materializing losing runs.
var allFuncs = []func(*state) error{ctda, ctdlf, cbu, utd, ubcf, mtd, mbu, mg}

// ByName returns the registered heuristic with the given short name.
func ByName(name string) (Heuristic, bool) {
	for _, h := range All {
		if h.Name == name {
			return h, true
		}
	}
	if name == "MB" {
		return Heuristic{"MB", "MixedBest", core.Multiple, MB}, true
	}
	return Heuristic{}, false
}

// state is the shared mutable working set of a heuristic run: pending
// requests per subtree (the paper's inreq), remaining requests per client,
// the assignment being built, and the scratch buffers every pass reuses.
// States are pooled; a run gets one with newState, works on it, and
// releases it, so steady-state solves don't touch the allocator.
type state struct {
	in    *core.Instance
	inreq []int64 // pending requests reaching each vertex from its subtree
	rrem  []int64 // remaining (unassigned) requests per client
	repl  []bool  // replica flags

	ports [][]core.Portion // per-client portions being built

	pending []int   // pendingClients result buffer
	queue   []int   // BFS/DFS traversal buffer
	order   []int   // client-ordering buffer (UBCF-style passes)
	tmp     []int   // merge-sort scratch
	key     []int64 // per-vertex sort keys (QoS slack)
	seen    []bool  // cost() replica marker
	capLeft []int64 // remaining server capacity (UBCF-style passes)
	bwLeft  []int64 // remaining link bandwidth (bandwidth variants)
}

var statePool = sync.Pool{New: func() any { return new(state) }}

// grown returns s with length n, reallocating only when the capacity is
// too small. Contents are unspecified; callers zero what they use.
func grown[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// newState pulls a pooled state and initializes it for the instance.
func newState(in *core.Instance) *state {
	st := statePool.Get().(*state)
	st.reset(in)
	return st
}

// release returns the state to the pool. No slice handed out by the state
// may be used after this call.
func (st *state) release() {
	st.in = nil
	statePool.Put(st)
}

// reset re-initializes the state for (another) run on in.
func (st *state) reset(in *core.Instance) {
	t := in.Tree
	n := t.Len()
	st.in = in
	st.inreq = grown(st.inreq, n)
	st.rrem = grown(st.rrem, n)
	st.repl = grown(st.repl, n)
	st.key = grown(st.key, n)
	st.seen = grown(st.seen, n)
	st.capLeft = grown(st.capLeft, n)
	st.bwLeft = grown(st.bwLeft, n)
	st.pending = grown(st.pending, n)[:0]
	st.queue = grown(st.queue, n)[:0]
	st.order = grown(st.order, n)[:0]
	st.tmp = grown(st.tmp, n)[:0]
	if cap(st.ports) < n {
		ports := make([][]core.Portion, n)
		copy(ports, st.ports)
		st.ports = ports
	}
	st.ports = st.ports[:n]
	for v := 0; v < n; v++ {
		st.inreq[v] = 0
		st.rrem[v] = 0
		st.repl[v] = false
		st.ports[v] = st.ports[v][:0]
	}
	for _, v := range t.PostOrder() {
		if t.IsClient(v) {
			st.rrem[v] = in.R[v]
			st.inreq[v] = in.R[v]
			continue
		}
		for _, c := range t.Children(v) {
			st.inreq[v] += st.inreq[c]
		}
	}
}

// run executes a scratch-level heuristic body on a pooled state and
// materializes its solution.
func run(in *core.Instance, f func(*state) error) (*core.Solution, error) {
	st := newState(in)
	defer st.release()
	if err := f(st); err != nil {
		return nil, err
	}
	return st.materialize(), nil
}

// assign gives x pending requests of client c to server s, updating the
// inreq of every ancestor of c (the paper's deleteRequests bookkeeping).
func (st *state) assign(c, s int, x int64) {
	if x <= 0 {
		return
	}
	ps := st.ports[c]
	merged := false
	for i := range ps {
		if ps[i].Server == s {
			ps[i].Load += x
			merged = true
			break
		}
	}
	if !merged {
		st.ports[c] = append(ps, core.Portion{Server: s, Load: x})
	}
	st.rrem[c] -= x
	st.inreq[c] -= x
	t := st.in.Tree
	for a := t.Parent(c); a != tree.None; a = t.Parent(a) {
		st.inreq[a] -= x
	}
	st.repl[s] = true
}

// pendingClients returns the clients under s that still have requests, in
// subtree preorder. The result is a view into a shared buffer, valid only
// until the next pendingClients call on this state.
func (st *state) pendingClients(s int) []int {
	out := st.pending[:0]
	for _, c := range st.in.Tree.ClientsUnder(s) {
		if st.rrem[c] > 0 {
			out = append(out, c)
		}
	}
	st.pending = out
	return out
}

// serveAll assigns every pending request under s to s (used by the Closest
// heuristics, whose replicas always absorb their whole pending subtree).
func (st *state) serveAll(s int) {
	for _, c := range st.pendingClients(s) {
		st.assign(c, s, st.rrem[c])
	}
	st.repl[s] = true
}

// covered reports whether every request has been assigned.
func (st *state) covered() bool {
	return st.inreq[st.in.Tree.Root()] == 0
}

// finish validates coverage; the caller then materializes the solution.
func (st *state) finish() error {
	if !st.covered() {
		return ErrNoSolution
	}
	return nil
}

// materialize builds the returned Solution from the scratch assignment:
// one portion slab plus the per-client headers, so the Solution owns its
// memory and a steady-state solve allocates nothing else.
func (st *state) materialize() *core.Solution {
	return core.NewSolutionFromPortions(st.ports, st.in.Tree.Clients())
}

// cost returns the storage cost of the placement currently recorded in
// the scratch assignment (the distinct servers holding load), without
// materializing a Solution.
func (st *state) cost() int64 {
	t := st.in.Tree
	for _, j := range t.Internal() {
		st.seen[j] = false
	}
	var total int64
	for _, c := range t.Clients() {
		for _, p := range st.ports[c] {
			if !st.seen[p.Server] {
				st.seen[p.Server] = true
				total += st.in.S[p.Server]
			}
		}
	}
	return total
}

// sortByKey stable-sorts ids in place by key[id] (descending when desc,
// else ascending), using tmp as merge scratch (cap(tmp) >= len(ids)).
// It is the allocation-free replacement for sort.SliceStable on the hot
// paths; ties keep their input order.
func sortByKey(ids []int, key []int64, desc bool, tmp []int) {
	n := len(ids)
	if n < 2 {
		return
	}
	tmp = tmp[:n]
	src, dst := ids, tmp
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid, hi := lo+width, lo+2*width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			i, j, k := lo, mid, lo
			for i < mid && j < hi {
				ki, kj := key[src[i]], key[src[j]]
				take := ki <= kj
				if desc {
					take = ki >= kj
				}
				if take {
					dst[k] = src[i]
					i++
				} else {
					dst[k] = src[j]
					j++
				}
				k++
			}
			for i < mid {
				dst[k] = src[i]
				i++
				k++
			}
			for j < hi {
				dst[k] = src[j]
				j++
				k++
			}
		}
		src, dst = dst, src
	}
	if &src[0] != &ids[0] {
		copy(ids, src)
	}
}

// sortedByRemaining returns pending clients under s ordered by remaining
// requests (descending if desc, else ascending), ties broken by subtree
// preorder. Same buffer contract as pendingClients.
func (st *state) sortedByRemaining(s int, desc bool) []int {
	cs := st.pendingClients(s)
	sortByKey(cs, st.rrem, desc, st.tmp)
	return cs
}

// deleteSingle implements the Upwards deleteRequests (Algorithm 6): remove
// whole clients in non-increasing request order while they fit in budget.
func (st *state) deleteSingle(s int, budget int64) {
	for _, c := range st.sortedByRemaining(s, true) {
		if st.rrem[c] <= budget {
			budget -= st.rrem[c]
			st.assign(c, s, st.rrem[c])
			if budget == 0 {
				return
			}
		}
	}
}

// deleteMultiple implements the Multiple delete (Algorithm 10, with the
// obvious typo fixed: the partial deletion subtracts the deleted amount,
// not the client's residue): whole clients while they fit, then one
// partial from the next client in order. desc selects the MTD ordering
// (non-increasing); MBU uses non-decreasing.
func (st *state) deleteMultiple(s int, budget int64, desc bool) {
	for _, c := range st.sortedByRemaining(s, desc) {
		if st.rrem[c] <= budget {
			budget -= st.rrem[c]
			st.assign(c, s, st.rrem[c])
			if budget == 0 {
				return
			}
		} else {
			st.assign(c, s, budget)
			return
		}
	}
}
