package heuristics

import (
	"repro/internal/core"
)

// MTD is MultipleTopDown: the UTD pass structure with the Multiple delete
// procedure (Algorithm 10), which may split one client between servers so
// that every first-pass replica is fully saturated.
func MTD(in *core.Instance) (*core.Solution, error) { return run(in, mtd) }

func mtd(st *state) error { return multipleTwoPass(st, true, true) }

// MBU is MultipleBottomUp (Algorithms 11-12): the first pass walks the
// tree bottom-up and saturates every node whose pending subtree requests
// exhaust its capacity, deleting small clients first; the second pass is
// top-down as in MTD.
func MBU(in *core.Instance) (*core.Solution, error) { return run(in, mbu) }

func mbu(st *state) error { return multipleTwoPass(st, false, false) }

// multipleTwoPass factors MTD and MBU: topDown selects the first-pass
// orientation and desc the delete order (non-increasing for MTD,
// non-decreasing for MBU).
func multipleTwoPass(st *state, topDown, desc bool) error {
	in, t := st.in, st.in.Tree

	// First pass: saturate exhausted nodes.
	order := t.PreOrder()
	if !topDown {
		order = t.PostOrder()
	}
	for _, s := range order {
		if t.IsClient(s) {
			continue
		}
		if st.inreq[s] >= in.W[s] && st.inreq[s] > 0 && in.W[s] > 0 {
			st.repl[s] = true
			st.deleteMultiple(s, in.W[s], desc)
		}
	}

	// Second pass: top-down, the first non-replica node of a branch with
	// pending requests absorbs all of them (its capacity suffices since it
	// was not exhausted during the first pass and pending only shrinks).
	// Absorbing zeroes every descendant's inreq, so the preorder scan is
	// the recursive descent of Algorithm 8.
	if st.inreq[t.Root()] > 0 {
		for _, s := range t.PreOrder() {
			if t.IsClient(s) || st.repl[s] || st.inreq[s] == 0 {
				continue
			}
			st.repl[s] = true
			st.deleteMultiple(s, st.inreq[s], desc)
		}
	}
	return st.finish()
}

// MG is MultipleGreedy: a single bottom-up sweep in which every node
// absorbs as many pending requests as its capacity allows (like pass 3 of
// the optimal Section 4.1 algorithm with all nodes eligible). On
// heterogeneous platforms its cost can be far from optimal, but it finds a
// solution whenever one exists under the Multiple policy.
func MG(in *core.Instance) (*core.Solution, error) { return run(in, mg) }

func mg(st *state) error {
	in, t := st.in, st.in.Tree
	for _, s := range t.PostOrder() {
		if t.IsClient(s) {
			continue
		}
		if st.inreq[s] > 0 && in.W[s] > 0 {
			take := st.inreq[s]
			if take > in.W[s] {
				take = in.W[s]
			}
			st.deleteMultiple(s, take, false)
		}
	}
	return st.finish()
}

// MB is MixedBest: run all eight heuristics and keep the cheapest valid
// solution. Because any Closest or Upwards solution is also a Multiple
// solution, MB is a Multiple-policy heuristic; like MG it always finds a
// solution when one exists. It reuses one pooled state across the eight
// runs and materializes a Solution only when a run improves on the best
// cost so far.
func MB(in *core.Instance) (*core.Solution, error) {
	st := newState(in)
	defer st.release()
	var best *core.Solution
	var bestCost int64
	for i, f := range allFuncs {
		if i > 0 {
			st.reset(in)
		}
		if f(st) != nil {
			continue
		}
		if c := st.cost(); best == nil || c < bestCost {
			best, bestCost = st.materialize(), c
		}
	}
	if best == nil {
		return nil, ErrNoSolution
	}
	return best, nil
}
