//go:build !race

package heuristics

const raceEnabled = false
