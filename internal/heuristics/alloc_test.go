package heuristics

import (
	"testing"

	"repro/internal/gen"
)

// TestSteadyStateAllocs pins the scratch-pool contract for every
// heuristic: once the pool is warm, a solve allocates only the returned
// Solution (struct + assignment headers + one portion slab) — nothing
// proportional to the tree size or the pass structure.
func TestSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	in := gen.Instance(gen.Config{Internal: 100, Clients: 100, Lambda: 0.15, UnitCosts: true}, 2)
	const limit = 8 // the returned Solution, with headroom for a mid-run GC refilling the pool
	for _, h := range All {
		h := h
		if _, err := h.Run(in); err != nil {
			t.Fatalf("%s does not solve the probe instance: %v", h.Name, err)
		}
		allocs := testing.AllocsPerRun(50, func() {
			if _, err := h.Run(in); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > limit {
			t.Errorf("%s: %.1f allocs/run, want <= %d", h.Name, allocs, limit)
		}
	}
	// MB materializes a Solution per improving candidate; it must still be
	// far below one allocation per vertex.
	if _, err := MB(in); err != nil {
		t.Fatalf("MB: %v", err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := MB(in); err != nil {
			t.Fatal(err)
		}
	})
	if max := float64(8 * 4); allocs > max {
		t.Errorf("MB: %.1f allocs/run, want <= %.0f", allocs, max)
	}
}
