package lpbound

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
)

func TestRationalFigure5(t *testing.T) {
	// Figure 5 with unit costs: the fully rational bound equals Σr/W = 2
	// only if requests can spread, which the star allows fractionally;
	// the true optimum is n+1 = 5 — the bound is valid but loose, exactly
	// the Section 3.4 message.
	in := core.Figure5(4, 8)
	v, err := Rational(in, core.Multiple)
	if err != nil {
		t.Fatal(err)
	}
	if v < 2-1e-6 {
		t.Errorf("rational bound %v below trivial bound 2", v)
	}
	if v > 5+1e-6 {
		t.Errorf("rational bound %v above optimum 5", v)
	}
}

func TestRefinedEqualsMultipleOptimum(t *testing.T) {
	// With integral x and rational y, the Multiple mixed program is exact
	// (transportation integrality), so Refined must match brute force.
	for seed := int64(0); seed < 40; seed++ {
		in := gen.Instance(gen.Config{
			Internal:      3 + int(seed%4),
			Clients:       2 + int(seed%5),
			Lambda:        0.3 + float64(seed%6)/10.0,
			Heterogeneous: seed%2 == 0,
		}, seed+500)
		b, err := Refined(context.Background(), in, core.Multiple, Options{})
		bf, bferr := exact.BruteForce(context.Background(), in, core.Multiple)
		if errors.Is(err, ErrInfeasible) {
			if bferr == nil {
				t.Fatalf("seed %d: refined infeasible but brute force solved", seed)
			}
			continue
		}
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if bferr != nil {
			t.Fatalf("seed %d: refined %v but brute force failed: %v", seed, b.Value, bferr)
		}
		if !b.Exact {
			t.Logf("seed %d: budget exhausted after %d nodes", seed, b.Nodes)
			if b.Value > float64(bf.StorageCost(in))+1e-6 {
				t.Fatalf("seed %d: truncated bound %v above optimum %d", seed, b.Value, bf.StorageCost(in))
			}
			continue
		}
		if math.Abs(b.Value-float64(bf.StorageCost(in))) > 1e-6 {
			t.Errorf("seed %d: refined %v != optimum %d", seed, b.Value, bf.StorageCost(in))
		}
	}
}

func TestBoundHierarchy(t *testing.T) {
	// rational <= refined <= optimum, for each policy, on random
	// instances.
	for seed := int64(0); seed < 25; seed++ {
		in := gen.Instance(gen.Config{
			Internal: 3 + int(seed%3),
			Clients:  3 + int(seed%4),
			Lambda:   0.4,
		}, seed+900)
		for _, p := range core.Policies {
			rat, rerr := Rational(in, p)
			ref, ferr := Refined(context.Background(), in, p, Options{})
			opt, oerr := exact.BruteForce(context.Background(), in, p)
			if rerr != nil || ferr != nil {
				// Relaxation infeasible implies integer infeasible.
				if oerr == nil && (errors.Is(rerr, ErrInfeasible) || errors.Is(ferr, ErrInfeasible)) {
					t.Fatalf("seed %d %v: relaxation infeasible but optimum exists", seed, p)
				}
				continue
			}
			if rat > ref.Value+1e-6 {
				t.Errorf("seed %d %v: rational %v > refined %v", seed, p, rat, ref.Value)
			}
			if oerr == nil && ref.Value > float64(opt.StorageCost(in))+1e-6 {
				t.Errorf("seed %d %v: refined %v > optimum %d", seed, p, ref.Value, opt.StorageCost(in))
			}
		}
	}
}

func TestRefinedBudgetTruncation(t *testing.T) {
	in := gen.Instance(gen.Config{Internal: 10, Clients: 12, Lambda: 0.7, Heterogeneous: true}, 77)
	full, err := Refined(context.Background(), in, core.Multiple, Options{MaxNodes: 4000})
	if errors.Is(err, ErrInfeasible) {
		t.Skip("instance infeasible")
	}
	if err != nil {
		t.Fatal(err)
	}
	trunc, err := Refined(context.Background(), in, core.Multiple, Options{MaxNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if trunc.Exact && trunc.Nodes > 3 {
		t.Errorf("truncated run solved %d nodes", trunc.Nodes)
	}
	if trunc.Value > full.Value+1e-6 {
		t.Errorf("truncated bound %v exceeds full bound %v", trunc.Value, full.Value)
	}
}

func TestFeasible(t *testing.T) {
	// Figure 1(c) is Multiple-feasible; its relaxation agrees.
	ok, err := Feasible(core.Figure1('c'), core.Multiple)
	if err != nil || !ok {
		t.Errorf("fig1c: %v %v", ok, err)
	}
	// Overloaded instance: total requests exceed total capacity.
	in := core.Figure1('a')
	in.R[in.Tree.Clients()[0]] = 100
	ok, err = Feasible(in, core.Multiple)
	if err != nil || ok {
		t.Errorf("overloaded: feasible=%v err=%v, want false", ok, err)
	}
}

func TestRefinedInfeasible(t *testing.T) {
	in := core.Figure1('a')
	in.R[in.Tree.Clients()[0]] = 100
	if _, err := Refined(context.Background(), in, core.Multiple, Options{}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("want ErrInfeasible, got %v", err)
	}
}

func TestRefinedRespectsQoSPruning(t *testing.T) {
	in := core.Figure1('a')
	in.Q = make([]int, in.Tree.Len())
	for i := range in.Q {
		in.Q[i] = core.NoQoS
	}
	in.Q[in.Tree.Clients()[0]] = 0
	if _, err := Refined(context.Background(), in, core.Multiple, Options{}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("want ErrInfeasible, got %v", err)
	}
}

// TestRefinedEqualsTheorem1Algorithm: on homogeneous unit-cost instances,
// the refined bound (exact Multiple mixed optimum) must coincide with the
// Section 4.1 polynomial algorithm — two completely independent solvers
// agreeing on the optimum.
func TestRefinedEqualsTheorem1Algorithm(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		in := gen.Instance(gen.Config{
			Internal:  4 + int(seed%6),
			Clients:   4 + int(seed%8),
			Lambda:    0.2 + float64(seed%8)/10.0,
			UnitCosts: true,
		}, seed+8100)
		alg, aerr := exact.MultipleHomogeneous(in)
		b, berr := Refined(context.Background(), in, core.Multiple, Options{MaxNodes: 4000})
		if errors.Is(berr, ErrInfeasible) {
			if aerr == nil {
				t.Fatalf("seed %d: LP infeasible but algorithm solved", seed)
			}
			continue
		}
		if berr != nil {
			t.Fatalf("seed %d: %v", seed, berr)
		}
		if aerr != nil {
			t.Fatalf("seed %d: algorithm failed on LP-feasible instance: %v", seed, aerr)
		}
		if !b.Exact {
			continue // budget blown: inequality is still checked below
		}
		if math.Abs(b.Value-float64(alg.ReplicaCount())) > 1e-6 {
			t.Fatalf("seed %d: refined optimum %v != algorithm %d",
				seed, b.Value, alg.ReplicaCount())
		}
	}
}

// TestRefinedCancellation: an expired context stops the branch-and-bound
// between nodes and surfaces the context error.
func TestRefinedCancellation(t *testing.T) {
	in := gen.Instance(gen.Config{Internal: 20, Clients: 40, Lambda: 0.5}, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Refined(ctx, in, core.Multiple, Options{MaxNodes: 400})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
