// Package lpbound computes the lower bounds of Section 7.1 on the optimal
// replica cost: the fully rational relaxation of the Section 5 linear
// program, and the refined bound that keeps the placement variables x_j
// integral while relaxing the assignment variables — solved here by
// branch-and-bound over the x_j with LP relaxations at every node (the
// paper used GLPK for the same mixed program).
//
// The branch-and-bound is budgeted: when the node budget runs out, the
// minimum over the still-open subproblem bounds and the best incumbent is
// returned, which is still a valid lower bound on the optimal cost.
package lpbound

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/lp"
	"repro/internal/lpmodel"
)

// ErrInfeasible is returned when the relaxation itself is infeasible, i.e.
// the instance has no solution under the policy even with fractional
// replicas.
var ErrInfeasible = errors.New("lpbound: LP relaxation infeasible")

// Bound is the result of a lower-bound computation.
type Bound struct {
	// Value is a valid lower bound on the optimal storage cost.
	Value float64
	// Exact reports that Value is the exact optimum of the mixed program
	// (branch-and-bound completed within budget).
	Exact bool
	// Nodes is the number of branch-and-bound nodes solved.
	Nodes int
}

// Rational solves the fully relaxed LP (all variables rational) and
// returns its optimal value — the weakest bound of Section 5.3.
func Rational(in *core.Instance, p core.Policy) (float64, error) {
	m, err := lpmodel.Build(in, p)
	if err != nil {
		if errors.Is(err, lpmodel.ErrInfeasible) {
			return 0, ErrInfeasible
		}
		return 0, err
	}
	sol, err := m.Prob.Solve()
	if err != nil {
		return 0, err
	}
	switch sol.Status {
	case lp.Optimal:
		return sol.Value, nil
	case lp.Infeasible:
		return 0, ErrInfeasible
	default:
		return 0, fmt.Errorf("lpbound: unexpected LP status %v", sol.Status)
	}
}

// Options tunes the Refined branch-and-bound.
type Options struct {
	// MaxNodes bounds the number of LP relaxations solved. Zero means the
	// default of 400.
	MaxNodes int
	// Incumbent, when positive, seeds the search with the cost of a known
	// feasible solution (e.g. a heuristic's), pruning every subproblem
	// whose relaxation already reaches it. It must be a genuine feasible
	// cost or the returned bound may be wrong.
	Incumbent float64
}

const intTol = 1e-6

// Refined computes the Section 7.1 refined bound for the instance under
// the given policy: minimize Σ s_j x_j with x_j ∈ {0,1} and rational
// assignment variables. The Multiple policy is the paper's choice for the
// experimental campaign, but any policy's model can be refined.
//
// Cancellation of ctx is observed before every branch-and-bound node (each
// node is an LP solve, the expensive unit of work), so a caller's expired
// deadline stops the search promptly and returns the context error.
func Refined(ctx context.Context, in *core.Instance, p core.Policy, opts Options) (Bound, error) {
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = 400
	}
	m, err := lpmodel.Build(in, p)
	if err != nil {
		if errors.Is(err, lpmodel.ErrInfeasible) {
			return Bound{}, ErrInfeasible
		}
		return Bound{}, err
	}

	// All storage costs are integers, so any node bound may be rounded up.
	ceilInt := func(v float64) float64 { return math.Ceil(v - 1e-7) }

	type node struct {
		fixed map[int]int // x column -> 0/1
		bound float64     // parent LP bound (for best-first bookkeeping)
	}
	stack := []node{{fixed: map[int]int{}, bound: 0}}
	incumbent := math.Inf(1)
	if opts.Incumbent > 0 {
		incumbent = opts.Incumbent
	}
	nodes := 0
	openMin := func() float64 {
		mn := incumbent
		for _, nd := range stack {
			if nd.bound < mn {
				mn = nd.bound
			}
		}
		return mn
	}

	for len(stack) > 0 {
		if err := ctx.Err(); err != nil {
			return Bound{}, err
		}
		if nodes >= opts.MaxNodes {
			// Budget exhausted: valid bound is the min over open nodes and
			// the incumbent.
			return Bound{Value: openMin(), Exact: false, Nodes: nodes}, nil
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if nd.bound >= incumbent {
			continue // dominated
		}
		prob := m.CloneProblem()
		for col, val := range nd.fixed {
			m.FixX(prob, col, val)
		}
		sol, err := prob.Solve()
		if err != nil {
			return Bound{}, err
		}
		nodes++
		if sol.Status == lp.Infeasible {
			continue
		}
		if sol.Status != lp.Optimal {
			return Bound{}, fmt.Errorf("lpbound: unexpected LP status %v", sol.Status)
		}
		val := ceilInt(sol.Value)
		if val >= incumbent {
			continue
		}
		// Most fractional x.
		branch := -1
		worst := intTol
		for _, j := range in.Tree.Internal() {
			col := m.X[j]
			f := sol.X[col]
			frac := math.Min(f-math.Floor(f), math.Ceil(f)-f)
			if frac > worst {
				worst = frac
				branch = col
			}
		}
		if branch < 0 {
			// Integral x: candidate incumbent.
			if val < incumbent {
				incumbent = val
			}
			continue
		}
		// Depth-first: explore the x=1 child last (popped first) — placing
		// the fractional replica tends to reach feasible incumbents fast.
		for _, v := range []int{0, 1} {
			child := node{fixed: make(map[int]int, len(nd.fixed)+1), bound: val}
			for k, vv := range nd.fixed {
				child.fixed[k] = vv
			}
			child.fixed[branch] = v
			stack = append(stack, child)
		}
	}
	if math.IsInf(incumbent, 1) {
		return Bound{}, ErrInfeasible
	}
	return Bound{Value: incumbent, Exact: true, Nodes: nodes}, nil
}

// Feasible reports whether the instance admits any solution under the
// policy according to the LP relaxation. For the Multiple policy without
// bandwidth constraints the relaxation is exact (the assignment polytope
// is integral), so this decides feasibility precisely; for single-server
// policies it is only a necessary condition.
func Feasible(in *core.Instance, p core.Policy) (bool, error) {
	_, err := Rational(in, p)
	if errors.Is(err, ErrInfeasible) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}
