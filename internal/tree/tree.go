// Package tree implements the distribution-tree substrate used by the
// replica-placement algorithms: a rooted tree whose leaves are clients and
// whose internal vertices are candidate server locations.
//
// Vertices are dense integer ids in [0, Len). The tree is immutable once
// built (see Builder). All path/ancestor helpers follow the paper's
// conventions: Ancestors(v) excludes v itself and ends at the root, and the
// "link" of a non-root vertex v is the edge v -> parent(v).
//
// Internally the tree keeps an Euler-tour (preorder-contiguous) layout:
// every subtree occupies one contiguous interval of the preorder array, and
// the clients of every subtree occupy one contiguous interval of a single
// client array. Subtree(v) and ClientsUnder(v) are therefore O(1) slice
// views over shared backing arrays, and IsAncestor/InSubtree are O(1)
// interval checks. Hot paths iterate ancestors without allocating:
//
//	for p := t.Parent(v); p != tree.None; p = t.Parent(p) { ... }
package tree

import (
	"errors"
	"fmt"
)

// None marks the absence of a vertex (e.g. the parent of the root).
const None = -1

// Tree is an immutable rooted tree partitioned into internal vertices
// (candidate servers, the paper's set N) and clients (leaves, the set C).
type Tree struct {
	parent   []int
	children [][]int
	isClient []bool
	root     int
	depth    []int

	internal []int // internal vertex ids, in id order
	clients  []int // client vertex ids, in id order

	postOrder []int // all vertices, children before parents
	preOrder  []int // all vertices, parents before children

	// Euler-tour layout: subtree(v) is preOrder[preIndex[v] :
	// preIndex[v]+subtreeSize[v]], and the clients of subtree(v) are
	// clientOrder[clientStart[v] : clientStart[v]+clientCount[v]].
	preIndex    []int // position of each vertex in preOrder
	subtreeSize []int // number of vertices in subtree(v), including v
	clientOrder []int // all clients, in preorder
	clientStart []int // per vertex: offset of its subtree's clients
	clientCount []int // per vertex: number of clients in its subtree

	preInternal []int // internal vertices, in preorder
}

// Len returns the total number of vertices (clients + internal).
func (t *Tree) Len() int { return len(t.parent) }

// NumInternal returns |N|, the number of internal vertices.
func (t *Tree) NumInternal() int { return len(t.internal) }

// NumClients returns |C|, the number of clients.
func (t *Tree) NumClients() int { return len(t.clients) }

// Root returns the root vertex id. The root is always an internal vertex.
func (t *Tree) Root() int { return t.root }

// Parent returns the parent of v, or None for the root.
func (t *Tree) Parent(v int) int { return t.parent[v] }

// Children returns the children of v. The returned slice must not be
// modified.
func (t *Tree) Children(v int) []int { return t.children[v] }

// IsClient reports whether v is a client (leaf).
func (t *Tree) IsClient(v int) bool { return t.isClient[v] }

// IsInternal reports whether v is an internal vertex (candidate server).
func (t *Tree) IsInternal(v int) bool { return !t.isClient[v] }

// Internal returns the internal vertex ids in increasing id order.
// The returned slice must not be modified.
func (t *Tree) Internal() []int { return t.internal }

// Clients returns the client vertex ids in increasing id order.
// The returned slice must not be modified.
func (t *Tree) Clients() []int { return t.clients }

// Depth returns the number of edges between v and the root.
func (t *Tree) Depth(v int) int { return t.depth[v] }

// Height returns the maximum depth over all vertices.
func (t *Tree) Height() int {
	h := 0
	for _, d := range t.depth {
		if d > h {
			h = d
		}
	}
	return h
}

// PostOrder returns all vertices with children listed before parents.
// The returned slice must not be modified.
func (t *Tree) PostOrder() []int { return t.postOrder }

// PreOrder returns all vertices with parents listed before children (a
// depth-first traversal from the root). The returned slice must not be
// modified.
func (t *Tree) PreOrder() []int { return t.preOrder }

// PreOrderInternal returns the internal vertices in preorder — the
// depth-first sweep the paper's tie-breaks use, without the clients.
// The returned slice must not be modified.
func (t *Tree) PreOrderInternal() []int { return t.preInternal }

// Ancestors returns the vertices on the path from v (excluded) to the root
// (included), closest first — the paper's Ancestors(v). It allocates; hot
// paths should iterate with Parent instead:
//
//	for p := t.Parent(v); p != tree.None; p = t.Parent(p) { ... }
func (t *Tree) Ancestors(v int) []int {
	var out []int
	for p := t.parent[v]; p != None; p = t.parent[p] {
		out = append(out, p)
	}
	return out
}

// IsAncestor reports whether a is a strict ancestor of v. O(1) via the
// preorder interval of a's subtree.
func (t *Tree) IsAncestor(a, v int) bool {
	if a == v {
		return false
	}
	i := t.preIndex[v]
	return t.preIndex[a] <= i && i < t.preIndex[a]+t.subtreeSize[a]
}

// InSubtree reports whether v lies in subtree(s), including v == s. O(1)
// via the preorder interval of s's subtree.
func (t *Tree) InSubtree(v, s int) bool {
	i := t.preIndex[v]
	return t.preIndex[s] <= i && i < t.preIndex[s]+t.subtreeSize[s]
}

// Dist returns the number of edges on the path from v up to its ancestor a
// (a may equal v, giving 0). It panics if a is not v or an ancestor of v.
func (t *Tree) Dist(v, a int) int {
	d := 0
	for u := v; u != a; u = t.parent[u] {
		if u == None {
			panic(fmt.Sprintf("tree: %d is not an ancestor of %d", a, v))
		}
		d++
	}
	return d
}

// PathLinks returns the vertices whose parent-links form the path from v up
// to ancestor a: the links are u -> parent(u) for each returned u. The path
// v -> a has Dist(v, a) links.
func (t *Tree) PathLinks(v, a int) []int {
	var out []int
	for u := v; u != a; u = t.parent[u] {
		out = append(out, u)
	}
	return out
}

// ClientsUnder returns the clients in subtree(v), in preorder (the order
// their subtrees hang under v). For a client v it returns {v}. The result
// is an O(1) view over a shared backing array and must not be modified.
func (t *Tree) ClientsUnder(v int) []int {
	s := t.clientStart[v]
	return t.clientOrder[s : s+t.clientCount[v] : s+t.clientCount[v]]
}

// NumClientsUnder returns the number of clients in subtree(v).
func (t *Tree) NumClientsUnder(v int) int { return t.clientCount[v] }

// Subtree returns all vertices of subtree(v) (v first, then its
// descendants in preorder). The result is an O(1) view over the preorder
// array and must not be modified.
func (t *Tree) Subtree(v int) []int {
	i := t.preIndex[v]
	return t.preOrder[i : i+t.subtreeSize[v] : i+t.subtreeSize[v]]
}

// PreIndex returns the position of v in PreOrder(). Subtree(v) occupies
// the interval [PreIndex(v), PreIndex(v)+SubtreeSize(v)).
func (t *Tree) PreIndex(v int) int { return t.preIndex[v] }

// SubtreeSize returns the number of vertices in subtree(v), including v.
func (t *Tree) SubtreeSize(v int) int { return t.subtreeSize[v] }

// Builder incrementally constructs a Tree. The zero value is ready to use.
// The first added vertex must be the internal root (AddRoot).
type Builder struct {
	parent   []int
	isClient []bool
	root     int
	hasRoot  bool
	err      error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{root: None} }

func (b *Builder) fail(err error) int {
	if b.err == nil {
		b.err = err
	}
	return None
}

// AddRoot adds the root (an internal vertex) and returns its id.
func (b *Builder) AddRoot() int {
	if b.hasRoot {
		return b.fail(errors.New("tree: root already added"))
	}
	b.hasRoot = true
	b.root = len(b.parent)
	b.parent = append(b.parent, None)
	b.isClient = append(b.isClient, false)
	return b.root
}

func (b *Builder) add(parent int, client bool) int {
	if b.err != nil {
		return None
	}
	if !b.hasRoot {
		return b.fail(errors.New("tree: AddRoot must be called first"))
	}
	if parent < 0 || parent >= len(b.parent) {
		return b.fail(fmt.Errorf("tree: parent %d out of range", parent))
	}
	if b.isClient[parent] {
		return b.fail(fmt.Errorf("tree: parent %d is a client and cannot have children", parent))
	}
	id := len(b.parent)
	b.parent = append(b.parent, parent)
	b.isClient = append(b.isClient, client)
	return id
}

// AddNode adds an internal vertex under parent and returns its id.
func (b *Builder) AddNode(parent int) int { return b.add(parent, false) }

// AddClient adds a client (leaf) under parent and returns its id.
func (b *Builder) AddClient(parent int) int { return b.add(parent, true) }

// Build finalizes the tree. It returns an error if the builder recorded an
// error or the structure is invalid (no root, client with children, ...).
func (b *Builder) Build() (*Tree, error) {
	if b.err != nil {
		return nil, b.err
	}
	if !b.hasRoot {
		return nil, errors.New("tree: empty tree")
	}
	return FromParents(b.parent, b.isClient)
}

// MustBuild is Build that panics on error; intended for tests and examples.
func (b *Builder) MustBuild() *Tree {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}

// FromParents constructs a Tree from a parent array (None for the root) and
// a per-vertex client flag. It validates the structure: exactly one root,
// the root is internal, clients are leaves, all vertices reach the root.
func FromParents(parent []int, isClient []bool) (*Tree, error) {
	n := len(parent)
	if n == 0 {
		return nil, errors.New("tree: empty tree")
	}
	if len(isClient) != n {
		return nil, fmt.Errorf("tree: parent/isClient length mismatch: %d vs %d", n, len(isClient))
	}
	t := &Tree{
		parent:   append([]int(nil), parent...),
		isClient: append([]bool(nil), isClient...),
		root:     None,
	}
	t.children = make([][]int, n)
	for v, p := range t.parent {
		switch {
		case p == None:
			if t.root != None {
				return nil, fmt.Errorf("tree: multiple roots (%d and %d)", t.root, v)
			}
			t.root = v
		case p < 0 || p >= n:
			return nil, fmt.Errorf("tree: vertex %d has out-of-range parent %d", v, p)
		case t.isClient[p]:
			return nil, fmt.Errorf("tree: client %d has a child %d", p, v)
		default:
			t.children[p] = append(t.children[p], v)
		}
	}
	if t.root == None {
		return nil, errors.New("tree: no root")
	}
	if t.isClient[t.root] {
		return nil, errors.New("tree: root is a client")
	}
	// Depth + reachability + traversal orders via an explicit stack.
	t.depth = make([]int, n)
	seen := make([]bool, n)
	t.preOrder = make([]int, 0, n)
	stack := []int{t.root}
	seen[t.root] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		t.preOrder = append(t.preOrder, v)
		// Push children in reverse so they are visited in declared order.
		ch := t.children[v]
		for i := len(ch) - 1; i >= 0; i-- {
			c := ch[i]
			if seen[c] {
				return nil, fmt.Errorf("tree: vertex %d visited twice (cycle)", c)
			}
			seen[c] = true
			t.depth[c] = t.depth[v] + 1
			stack = append(stack, c)
		}
	}
	if len(t.preOrder) != n {
		return nil, fmt.Errorf("tree: %d vertices unreachable from root", n-len(t.preOrder))
	}
	// Post-order: reverse of a preorder that pushes children in declared
	// order would not do; compute directly by reversing a "parents first,
	// right-to-left children" traversal.
	t.postOrder = make([]int, 0, n)
	stack = append(stack[:0], t.root)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		t.postOrder = append(t.postOrder, v)
		stack = append(stack, t.children[v]...)
	}
	for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
		t.postOrder[i], t.postOrder[j] = t.postOrder[j], t.postOrder[i]
	}

	t.internal = make([]int, 0, n)
	t.clients = make([]int, 0, n)
	for v := 0; v < n; v++ {
		if t.isClient[v] {
			t.clients = append(t.clients, v)
		} else {
			t.internal = append(t.internal, v)
		}
	}
	// subtreeSize + clientCount by post-order accumulation.
	t.subtreeSize = make([]int, n)
	t.clientCount = make([]int, n)
	for _, v := range t.postOrder {
		t.subtreeSize[v] = 1
		if t.isClient[v] {
			t.clientCount[v] = 1
			continue
		}
		for _, c := range t.children[v] {
			t.subtreeSize[v] += t.subtreeSize[c]
			t.clientCount[v] += t.clientCount[c]
		}
	}
	// Euler-tour layout: a subtree is a preorder interval, so its clients
	// are the clients seen before it in preorder onward — one linear pass
	// yields contiguous per-subtree client views.
	t.preIndex = make([]int, n)
	t.clientStart = make([]int, n)
	t.clientOrder = make([]int, 0, len(t.clients))
	t.preInternal = make([]int, 0, len(t.internal))
	for i, v := range t.preOrder {
		t.preIndex[v] = i
		t.clientStart[v] = len(t.clientOrder)
		if t.isClient[v] {
			t.clientOrder = append(t.clientOrder, v)
		} else {
			t.preInternal = append(t.preInternal, v)
		}
	}
	return t, nil
}

// Parents returns a copy of the parent array (None for the root).
func (t *Tree) Parents() []int { return append([]int(nil), t.parent...) }

// ClientFlags returns a copy of the per-vertex client flags.
func (t *Tree) ClientFlags() []bool { return append([]bool(nil), t.isClient...) }
