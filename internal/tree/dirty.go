package tree

// DirtySet tracks the vertices whose placement-relevant data changed since
// the last solve, closed under the ancestor relation: marking a vertex marks
// its whole root path, so the set is always a union of root paths. That is
// exactly the region a bottom-up heuristic has to revisit — every vertex
// whose subtree contains a change — while all clean subtrees keep their
// memoized summaries.
//
// The invariant "v dirty ⇒ parent(v) dirty" lets MarkPath stop climbing at
// the first vertex that is already dirty, so a batch of k marks costs
// O(depth + k) rather than O(k·depth). Clearing is O(1) by bumping a
// generation counter.
//
// A DirtySet is not safe for concurrent use.
type DirtySet struct {
	t    *Tree
	mark []uint32 // generation stamp per vertex; == gen means dirty
	gen  uint32
	list []int // dirty vertices, in mark order
}

// NewDirtySet returns an empty dirty set over t.
func NewDirtySet(t *Tree) *DirtySet {
	return &DirtySet{t: t, mark: make([]uint32, t.Len()), gen: 1}
}

// MarkPath marks v and every ancestor of v as dirty. It stops at the first
// already-dirty vertex: by the path invariant everything above is dirty too.
func (d *DirtySet) MarkPath(v int) {
	for u := v; u != None; u = d.t.parent[u] {
		if d.mark[u] == d.gen {
			return
		}
		d.mark[u] = d.gen
		d.list = append(d.list, u)
	}
}

// IsDirty reports whether v has been marked since the last Reset.
func (d *DirtySet) IsDirty(v int) bool { return d.mark[v] == d.gen }

// Len returns the number of dirty vertices (clients and internal).
func (d *DirtySet) Len() int { return len(d.list) }

// Vertices returns the dirty vertices in an unspecified order. The returned
// slice is valid until the next MarkPath or Reset and must not be modified.
func (d *DirtySet) Vertices() []int { return d.list }

// InternalFraction returns the dirty share of the internal vertices — the
// knob a session compares against its full-solve fallback threshold. Clients
// in the set do not count: only internal vertices cost recomputation.
func (d *DirtySet) InternalFraction() float64 {
	if d.t.NumInternal() == 0 {
		return 0
	}
	n := 0
	for _, v := range d.list {
		if d.t.IsInternal(v) {
			n++
		}
	}
	return float64(n) / float64(d.t.NumInternal())
}

// Reset clears the set in O(1). The generation wrap at 2^32 re-zeros the
// stamp array, so a stale stamp can never alias a future generation.
func (d *DirtySet) Reset() {
	d.list = d.list[:0]
	d.gen++
	if d.gen == 0 { // wrapped: stamps from 2^32 marks ago could alias
		clear(d.mark)
		d.gen = 1
	}
}
