package tree

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// jsonTree is the wire format of a Tree: a parent array (None == -1 for the
// root) and a parallel client-flag array.
type jsonTree struct {
	Parents  []int  `json:"parents"`
	IsClient []bool `json:"is_client"`
}

// MarshalJSON encodes the tree as {"parents": [...], "is_client": [...]}.
func (t *Tree) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonTree{Parents: t.parent, IsClient: t.isClient})
}

// UnmarshalJSON decodes and validates a tree produced by MarshalJSON.
func (t *Tree) UnmarshalJSON(data []byte) error {
	var jt jsonTree
	if err := json.Unmarshal(data, &jt); err != nil {
		return err
	}
	nt, err := FromParents(jt.Parents, jt.IsClient)
	if err != nil {
		return err
	}
	*t = *nt
	return nil
}

// WriteDOT writes the tree in Graphviz DOT format. Internal vertices are
// boxes labeled "nID"; clients are circles labeled "cID". label, if non-nil,
// supplies an extra annotation per vertex.
func (t *Tree) WriteDOT(w io.Writer, label func(v int) string) error {
	var sb strings.Builder
	sb.WriteString("digraph tree {\n  rankdir=BT;\n")
	for v := 0; v < t.Len(); v++ {
		extra := ""
		if label != nil {
			if s := label(v); s != "" {
				extra = "\\n" + s
			}
		}
		if t.isClient[v] {
			fmt.Fprintf(&sb, "  v%d [shape=circle,label=\"c%d%s\"];\n", v, v, extra)
		} else {
			fmt.Fprintf(&sb, "  v%d [shape=box,label=\"n%d%s\"];\n", v, v, extra)
		}
	}
	for v := 0; v < t.Len(); v++ {
		if p := t.parent[v]; p != None {
			fmt.Fprintf(&sb, "  v%d -> v%d;\n", v, p)
		}
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// String returns a compact single-line description, e.g.
// "tree{V=5 N=2 C=3 root=0 height=2}".
func (t *Tree) String() string {
	return fmt.Sprintf("tree{V=%d N=%d C=%d root=%d height=%d}",
		t.Len(), t.NumInternal(), t.NumClients(), t.root, t.Height())
}
