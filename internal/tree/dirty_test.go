package tree

import "testing"

// buildDirtyFixture: root 0 with two internal children (1, 2); 1 has clients
// 3, 4; 2 has internal child 5 with client 6.
func buildDirtyFixture(t *testing.T) *Tree {
	t.Helper()
	b := NewBuilder()
	r := b.AddRoot()
	n1 := b.AddNode(r)
	n2 := b.AddNode(r)
	b.AddClient(n1)
	b.AddClient(n1)
	n5 := b.AddNode(n2)
	b.AddClient(n5)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestDirtySetMarkPath(t *testing.T) {
	tr := buildDirtyFixture(t)
	d := NewDirtySet(tr)
	if d.Len() != 0 || d.InternalFraction() != 0 {
		t.Fatalf("fresh set not empty: len=%d frac=%v", d.Len(), d.InternalFraction())
	}

	d.MarkPath(6) // client under 5 under 2 under 0
	for _, v := range []int{6, 5, 2, 0} {
		if !d.IsDirty(v) {
			t.Errorf("vertex %d should be dirty", v)
		}
	}
	for _, v := range []int{1, 3, 4} {
		if d.IsDirty(v) {
			t.Errorf("vertex %d should be clean", v)
		}
	}
	if d.Len() != 4 {
		t.Fatalf("Len = %d, want 4", d.Len())
	}
	// 3 of 4 internal vertices dirty (0, 2, 5; clean: 1).
	if got, want := d.InternalFraction(), 0.75; got != want {
		t.Fatalf("InternalFraction = %v, want %v", got, want)
	}

	// Marking a sibling path stops at the shared ancestor: only 3 and 1
	// are new.
	d.MarkPath(3)
	if d.Len() != 6 {
		t.Fatalf("Len after second mark = %d, want 6", d.Len())
	}
	// Re-marking is a no-op.
	d.MarkPath(6)
	if d.Len() != 6 {
		t.Fatalf("Len after re-mark = %d, want 6", d.Len())
	}
}

func TestDirtySetPathInvariant(t *testing.T) {
	tr := buildDirtyFixture(t)
	d := NewDirtySet(tr)
	d.MarkPath(5)
	d.MarkPath(4)
	for _, v := range d.Vertices() {
		if p := tr.Parent(v); p != None && !d.IsDirty(p) {
			t.Fatalf("vertex %d dirty but parent %d clean", v, p)
		}
	}
}

func TestDirtySetReset(t *testing.T) {
	tr := buildDirtyFixture(t)
	d := NewDirtySet(tr)
	d.MarkPath(6)
	d.Reset()
	if d.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", d.Len())
	}
	for v := 0; v < tr.Len(); v++ {
		if d.IsDirty(v) {
			t.Fatalf("vertex %d dirty after Reset", v)
		}
	}
	d.MarkPath(4)
	if !d.IsDirty(4) || !d.IsDirty(1) || !d.IsDirty(0) || d.IsDirty(2) {
		t.Fatal("marking after Reset broken")
	}
}

func TestDirtySetGenerationWrap(t *testing.T) {
	tr := buildDirtyFixture(t)
	d := NewDirtySet(tr)
	d.MarkPath(6)
	d.gen = ^uint32(0) // force the wrap on the next Reset
	d.Reset()
	if d.gen != 1 {
		t.Fatalf("gen after wrap = %d, want 1", d.gen)
	}
	for v := 0; v < tr.Len(); v++ {
		if d.IsDirty(v) {
			t.Fatalf("vertex %d dirty after wrap", v)
		}
	}
}
