package tree

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// buildChain returns root -> n1 -> ... each internal, with one client under
// the deepest node.
func buildChain(t *testing.T, depth int) *Tree {
	t.Helper()
	b := NewBuilder()
	v := b.AddRoot()
	for i := 0; i < depth; i++ {
		v = b.AddNode(v)
	}
	b.AddClient(v)
	tr, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return tr
}

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder()
	r := b.AddRoot()
	n1 := b.AddNode(r)
	n2 := b.AddNode(r)
	c1 := b.AddClient(n1)
	c2 := b.AddClient(n2)
	c3 := b.AddClient(n2)
	tr, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if tr.Len() != 6 || tr.NumInternal() != 3 || tr.NumClients() != 3 {
		t.Fatalf("sizes: got V=%d N=%d C=%d", tr.Len(), tr.NumInternal(), tr.NumClients())
	}
	if tr.Root() != r {
		t.Errorf("root = %d, want %d", tr.Root(), r)
	}
	if tr.Parent(c1) != n1 || tr.Parent(n1) != r || tr.Parent(r) != None {
		t.Errorf("parents wrong")
	}
	if !tr.IsClient(c3) || tr.IsClient(n2) {
		t.Errorf("client flags wrong")
	}
	want := []int{c2, c3}
	if got := tr.Children(n2); !reflect.DeepEqual(got, want) {
		t.Errorf("Children(n2) = %v, want %v", got, want)
	}
	if got := tr.ClientsUnder(r); !reflect.DeepEqual(got, []int{c1, c2, c3}) {
		t.Errorf("ClientsUnder(root) = %v", got)
	}
	if got := tr.ClientsUnder(n2); !reflect.DeepEqual(got, []int{c2, c3}) {
		t.Errorf("ClientsUnder(n2) = %v", got)
	}
	if tr.SubtreeSize(r) != 6 || tr.SubtreeSize(n2) != 3 || tr.SubtreeSize(c1) != 1 {
		t.Errorf("subtree sizes wrong")
	}
}

func TestAncestorsAndPaths(t *testing.T) {
	tr := buildChain(t, 3) // root=0,1,2,3, client=4
	anc := tr.Ancestors(4)
	if !reflect.DeepEqual(anc, []int{3, 2, 1, 0}) {
		t.Fatalf("Ancestors(4) = %v", anc)
	}
	if tr.Dist(4, 0) != 4 || tr.Dist(4, 3) != 1 || tr.Dist(2, 2) != 0 {
		t.Errorf("Dist wrong")
	}
	if got := tr.PathLinks(4, 1); !reflect.DeepEqual(got, []int{4, 3, 2}) {
		t.Errorf("PathLinks = %v", got)
	}
	if !tr.IsAncestor(0, 4) || tr.IsAncestor(4, 0) || tr.IsAncestor(2, 2) {
		t.Errorf("IsAncestor wrong")
	}
	if !tr.InSubtree(4, 2) || !tr.InSubtree(2, 2) || tr.InSubtree(1, 2) {
		t.Errorf("InSubtree wrong")
	}
	if tr.Depth(4) != 4 || tr.Height() != 4 {
		t.Errorf("Depth/Height wrong")
	}
}

func TestTraversalOrders(t *testing.T) {
	b := NewBuilder()
	r := b.AddRoot()
	n1 := b.AddNode(r)
	n2 := b.AddNode(r)
	c1 := b.AddClient(n1)
	c2 := b.AddClient(n2)
	tr := b.MustBuild()

	pre := tr.PreOrder()
	if pre[0] != r {
		t.Errorf("preorder must start at root, got %v", pre)
	}
	post := tr.PostOrder()
	if post[len(post)-1] != r {
		t.Errorf("postorder must end at root, got %v", post)
	}
	pos := make(map[int]int)
	for i, v := range post {
		pos[v] = i
	}
	// Children before parents in post-order.
	for _, v := range []int{n1, n2, c1, c2} {
		if pos[v] >= pos[tr.Parent(v)] {
			t.Errorf("postorder: %d not before parent %d", v, tr.Parent(v))
		}
	}
	// Parents before children in pre-order.
	ppos := make(map[int]int)
	for i, v := range pre {
		ppos[v] = i
	}
	for _, v := range []int{n1, n2, c1, c2} {
		if ppos[v] <= ppos[tr.Parent(v)] {
			t.Errorf("preorder: %d not after parent %d", v, tr.Parent(v))
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("double root", func(t *testing.T) {
		b := NewBuilder()
		b.AddRoot()
		b.AddRoot()
		if _, err := b.Build(); err == nil {
			t.Error("want error for double root")
		}
	})
	t.Run("no root", func(t *testing.T) {
		if _, err := NewBuilder().Build(); err == nil {
			t.Error("want error for empty tree")
		}
	})
	t.Run("child before root", func(t *testing.T) {
		b := NewBuilder()
		b.AddNode(0)
		if _, err := b.Build(); err == nil {
			t.Error("want error for node before root")
		}
	})
	t.Run("client parent", func(t *testing.T) {
		b := NewBuilder()
		r := b.AddRoot()
		c := b.AddClient(r)
		b.AddNode(c)
		if _, err := b.Build(); err == nil {
			t.Error("want error for child of client")
		}
	})
	t.Run("bad parent id", func(t *testing.T) {
		b := NewBuilder()
		b.AddRoot()
		b.AddNode(99)
		if _, err := b.Build(); err == nil {
			t.Error("want error for out-of-range parent")
		}
	})
}

func TestFromParentsErrors(t *testing.T) {
	cases := []struct {
		name     string
		parents  []int
		isClient []bool
	}{
		{"empty", nil, nil},
		{"mismatch", []int{None}, []bool{false, true}},
		{"two roots", []int{None, None}, []bool{false, false}},
		{"no root", []int{1, 0}, []bool{false, false}},
		{"client root", []int{None}, []bool{true}},
		{"client with child", []int{None, 0, 1}, []bool{false, true, true}},
		{"out of range", []int{None, 7}, []bool{false, true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := FromParents(tc.parents, tc.isClient); err == nil {
				t.Errorf("FromParents(%v,%v): want error", tc.parents, tc.isClient)
			}
		})
	}
}

func TestJSONRoundTrip(t *testing.T) {
	b := NewBuilder()
	r := b.AddRoot()
	n := b.AddNode(r)
	b.AddClient(n)
	b.AddClient(r)
	tr := b.MustBuild()

	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back Tree
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !reflect.DeepEqual(back.Parents(), tr.Parents()) ||
		!reflect.DeepEqual(back.ClientFlags(), tr.ClientFlags()) {
		t.Errorf("round trip mismatch")
	}
	if back.Root() != tr.Root() || back.Height() != tr.Height() {
		t.Errorf("derived fields mismatch")
	}
}

func TestJSONInvalid(t *testing.T) {
	var tr Tree
	if err := json.Unmarshal([]byte(`{"parents":[0],"is_client":[false]}`), &tr); err == nil {
		t.Error("want error for self-parent")
	}
	if err := json.Unmarshal([]byte(`{`), &tr); err == nil {
		t.Error("want error for bad json")
	}
}

func TestWriteDOT(t *testing.T) {
	tr := buildChain(t, 1)
	var buf bytes.Buffer
	if err := tr.WriteDOT(&buf, func(v int) string {
		if tr.IsClient(v) {
			return "r=3"
		}
		return ""
	}); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "v2 -> v1", "v1 -> v0", "r=3", "shape=circle", "shape=box"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestStringer(t *testing.T) {
	tr := buildChain(t, 2)
	s := tr.String()
	if !strings.Contains(s, "V=4") || !strings.Contains(s, "height=3") {
		t.Errorf("String() = %q", s)
	}
}

// randomParents builds a random valid (parents, isClient) pair from a seed.
func randomParents(rng *rand.Rand, n int) ([]int, []bool) {
	parents := make([]int, n)
	isClient := make([]bool, n)
	parents[0] = None
	internal := []int{0}
	for v := 1; v < n; v++ {
		parents[v] = internal[rng.Intn(len(internal))]
		if rng.Intn(3) == 0 || v == 1 {
			internal = append(internal, v)
		} else {
			isClient[v] = true
		}
	}
	return parents, isClient
}

// TestQuickInvariants property-tests structural invariants on random trees.
func TestQuickInvariants(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz%60) + 2
		rng := rand.New(rand.NewSource(seed))
		parents, isClient := randomParents(rng, n)
		tr, err := FromParents(parents, isClient)
		if err != nil {
			return false
		}
		if tr.NumClients()+tr.NumInternal() != tr.Len() {
			return false
		}
		// Every client is a leaf; every vertex reaches the root; depth is
		// consistent with the parent relation.
		for v := 0; v < tr.Len(); v++ {
			if tr.IsClient(v) && len(tr.Children(v)) != 0 {
				return false
			}
			if v != tr.Root() && tr.Depth(v) != tr.Depth(tr.Parent(v))+1 {
				return false
			}
			if v != tr.Root() {
				anc := tr.Ancestors(v)
				if len(anc) != tr.Depth(v) || anc[len(anc)-1] != tr.Root() {
					return false
				}
			}
		}
		// ClientsUnder(root) is exactly Clients().
		cu := append([]int(nil), tr.ClientsUnder(tr.Root())...)
		sort.Ints(cu)
		if len(cu) != len(tr.Clients()) {
			return false
		}
		for i := range cu {
			if cu[i] != tr.Clients()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestEulerLayout cross-checks the O(1) interval-based helpers against
// naive parent-walk definitions on random trees.
func TestEulerLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(50)
		parents, isClient := randomParents(rng, n)
		tr, err := FromParents(parents, isClient)
		if err != nil {
			t.Fatal(err)
		}
		walkAncestor := func(a, v int) bool {
			for p := tr.Parent(v); p != None; p = tr.Parent(p) {
				if p == a {
					return true
				}
			}
			return false
		}
		for a := 0; a < n; a++ {
			for v := 0; v < n; v++ {
				if got, want := tr.IsAncestor(a, v), walkAncestor(a, v); got != want {
					t.Fatalf("IsAncestor(%d,%d) = %v, want %v", a, v, got, want)
				}
				if got, want := tr.InSubtree(v, a), v == a || walkAncestor(a, v); got != want {
					t.Fatalf("InSubtree(%d,%d) = %v, want %v", v, a, got, want)
				}
			}
		}
		for v := 0; v < n; v++ {
			sub := tr.Subtree(v)
			if sub[0] != v || len(sub) != tr.SubtreeSize(v) {
				t.Fatalf("Subtree(%d) = %v", v, sub)
			}
			for _, u := range sub {
				if !tr.InSubtree(u, v) {
					t.Fatalf("Subtree(%d) contains %d outside the subtree", v, u)
				}
			}
			cu := tr.ClientsUnder(v)
			if len(cu) != tr.NumClientsUnder(v) {
				t.Fatalf("ClientsUnder(%d) length %d != count %d", v, len(cu), tr.NumClientsUnder(v))
			}
			want := map[int]bool{}
			for _, c := range tr.Clients() {
				if tr.InSubtree(c, v) {
					want[c] = true
				}
			}
			if len(cu) != len(want) {
				t.Fatalf("ClientsUnder(%d) = %v, want %v", v, cu, want)
			}
			for i, c := range cu {
				if !want[c] {
					t.Fatalf("ClientsUnder(%d) has stray client %d", v, c)
				}
				// Preorder-contiguous: positions strictly increase.
				if i > 0 && tr.PreIndex(cu[i-1]) >= tr.PreIndex(c) {
					t.Fatalf("ClientsUnder(%d) not in preorder: %v", v, cu)
				}
			}
		}
	}
}

func TestSubtreeSizeSum(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	parents, isClient := randomParents(rng, 40)
	tr, err := FromParents(parents, isClient)
	if err != nil {
		t.Fatal(err)
	}
	// Sum over leaves of depth+1 relations: subtree sizes must satisfy
	// size(v) = 1 + sum over children.
	for _, v := range tr.Internal() {
		sum := 1
		for _, c := range tr.Children(v) {
			sum += tr.SubtreeSize(c)
		}
		if tr.SubtreeSize(v) != sum {
			t.Errorf("SubtreeSize(%d) = %d, want %d", v, tr.SubtreeSize(v), sum)
		}
	}
}
