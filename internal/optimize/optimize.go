// Package optimize implements the Section 8.2 extension: minimizing a
// linear combination of replica (storage) cost, read cost and update
// cost. The paper leaves this as future work; we provide a local-search
// optimizer over replica sets for the Multiple policy, with a greedy
// lowest-possible assignment that simultaneously respects capacities and
// keeps requests close to their clients.
package optimize

import (
	"errors"
	"math"

	"repro/internal/core"
)

// ErrNoSolution is returned when no feasible starting placement exists.
var ErrNoSolution = errors.New("optimize: no feasible solution")

// AssignGreedy builds the canonical Multiple assignment for a fixed
// replica set: a bottom-up sweep in which every replica absorbs as much
// pending demand as it can. Serving requests at the lowest possible
// replica minimizes each request's travel, so among assignments for this
// replica set the greedy one has both maximal feasibility (it fails only
// if none exists) and near-minimal read cost. QoS bounds are respected;
// clients whose QoS excludes a replica skip it.
func AssignGreedy(in *core.Instance, replicas []bool) (*core.Solution, error) {
	t := in.Tree
	sol := core.NewSolution(t.Len())
	rrem := make([]int64, t.Len())
	for _, c := range t.Clients() {
		rrem[c] = in.R[c]
	}
	pending := make([][]int, t.Len())
	for _, v := range t.PostOrder() {
		if t.IsClient(v) {
			if rrem[v] > 0 {
				pending[v] = []int{v}
			}
			continue
		}
		var acc []int
		for _, c := range t.Children(v) {
			acc = append(acc, pending[c]...)
			pending[c] = nil
		}
		if replicas[v] {
			budget := in.W[v]
			rest := acc[:0]
			for _, c := range acc {
				if budget > 0 && in.QoSAllows(c, v) {
					take := rrem[c]
					if take > budget {
						take = budget
					}
					sol.AddPortion(c, v, take)
					rrem[c] -= take
					budget -= take
				}
				if rrem[c] > 0 {
					rest = append(rest, c)
				}
			}
			acc = rest
		}
		pending[v] = acc
	}
	for _, c := range t.Clients() {
		if rrem[c] > 0 {
			return nil, ErrNoSolution
		}
	}
	return sol, nil
}

// pairNeighborhoodLimit caps the instance size for the quadratic
// drop-pair neighborhood.
const pairNeighborhoodLimit = 40

// Options tunes Improve.
type Options struct {
	// Model is the objective (default StorageOnly).
	Model core.CostModel
	// MaxIters bounds the number of accepted moves (default 1000).
	MaxIters int
}

// Result reports the outcome of Improve.
type Result struct {
	Solution *core.Solution
	Cost     float64
	Moves    int // accepted moves
}

// Improve runs first-improvement local search over replica sets under the
// Multiple policy: starting from the given solution's replica set, it
// repeatedly tries to flip one node (drop a replica or add one) and keeps
// any flip that lowers the combined objective, re-deriving the greedy
// assignment each time. The returned solution is never worse than the
// start.
func Improve(in *core.Instance, start *core.Solution, opts Options) (*Result, error) {
	if opts.Model == (core.CostModel{}) {
		opts.Model = core.StorageOnly
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = 1000
	}
	t := in.Tree

	repl := make([]bool, t.Len())
	for _, s := range start.Replicas() {
		repl[s] = true
	}
	best, err := AssignGreedy(in, repl)
	if err != nil {
		return nil, err
	}
	bestCost := opts.Model.Cost(in, best)
	// The greedy re-assignment of the start's replica set may shed
	// zero-load replicas; compare against the raw start too.
	if c := opts.Model.Cost(in, start); c < bestCost {
		best, bestCost = start, c
	}

	moves := 0
	try := func() bool {
		cand, err := AssignGreedy(in, repl)
		if err != nil {
			return false
		}
		if c := opts.Model.Cost(in, cand); c < bestCost-1e-9 {
			best, bestCost = cand, c
			moves++
			return true
		}
		return false
	}
	// Plateau bookkeeping: sideways (equal-cost) moves may wander the
	// current level to escape local minima; the visited set prevents
	// cycling and the budget bounds the wandering.
	sig := func() string {
		buf := make([]byte, t.NumInternal())
		for i, j := range t.Internal() {
			if repl[j] {
				buf[i] = '1'
			} else {
				buf[i] = '0'
			}
		}
		return string(buf)
	}
	visited := map[string]bool{sig(): true}
	sideways := 0
	sidewaysBudget := 4 * t.NumInternal()

	improved := true
	for improved && moves < opts.MaxIters {
		improved = false
		// Flip neighborhood: drop or add one replica.
		for _, j := range t.Internal() {
			repl[j] = !repl[j]
			if try() {
				improved = true
				continue
			}
			repl[j] = !repl[j]
		}
		if improved {
			continue
		}
		// Swap neighborhood: relocate one replica. Escapes the common
		// local minimum where neither pure add nor pure drop pays off but
		// moving a replica does.
	swaps:
		for _, j := range t.Internal() {
			if !repl[j] {
				continue
			}
			for _, k := range t.Internal() {
				if repl[k] {
					continue
				}
				repl[j], repl[k] = false, true
				if try() {
					improved = true
					break swaps
				}
				repl[j], repl[k] = true, false
			}
		}
		if improved || t.NumInternal() > pairNeighborhoodLimit {
			continue
		}
		// Drop-pair neighborhood (small instances only): remove two
		// replicas at once — the classic trap after a greedy start is a
		// set where every single drop overloads a neighbour but a pair of
		// replicas is jointly redundant.
	pairs:
		for i, j := range t.Internal() {
			if !repl[j] {
				continue
			}
			for _, k := range t.Internal()[i+1:] {
				if !repl[k] {
					continue
				}
				repl[j], repl[k] = false, false
				if try() {
					improved = true
					break pairs
				}
				repl[j], repl[k] = true, true
			}
		}
		if improved || sideways >= sidewaysBudget {
			continue
		}
		// Sideways step: take one unvisited equal-cost flip and keep
		// searching from there (best is only replaced on strict
		// improvement, so the final answer cannot get worse).
		for _, j := range t.Internal() {
			repl[j] = !repl[j]
			s := sig()
			if !visited[s] {
				if cand, err := AssignGreedy(in, repl); err == nil &&
					opts.Model.Cost(in, cand) <= bestCost+1e-9 {
					visited[s] = true
					sideways++
					improved = true
					break
				}
			}
			repl[j] = !repl[j]
		}
	}
	return &Result{Solution: best, Cost: bestCost, Moves: moves}, nil
}

// ImproveFromHeuristic is a convenience wrapper: it derives a starting
// placement with the given heuristic function and improves it. When the
// heuristic fails it falls back to placing replicas everywhere.
func ImproveFromHeuristic(in *core.Instance, run func(*core.Instance) (*core.Solution, error), opts Options) (*Result, error) {
	start, err := run(in)
	if err != nil {
		all := make([]bool, in.Tree.Len())
		for _, j := range in.Tree.Internal() {
			all[j] = true
		}
		start, err = AssignGreedy(in, all)
		if err != nil {
			return nil, ErrNoSolution
		}
	}
	return Improve(in, start, opts)
}

// BruteForceCombined finds the replica set minimizing the combined
// objective by exhaustive enumeration with greedy assignment per set
// (exponential; used to validate Improve on small instances).
func BruteForceCombined(in *core.Instance, model core.CostModel) (*core.Solution, float64, error) {
	t := in.Tree
	nodes := t.Internal()
	if len(nodes) > 18 {
		return nil, 0, errors.New("optimize: brute force limited to 18 nodes")
	}
	var best *core.Solution
	bestCost := math.Inf(1)
	repl := make([]bool, t.Len())
	for mask := 0; mask < 1<<len(nodes); mask++ {
		for b, j := range nodes {
			repl[j] = mask&(1<<b) != 0
		}
		sol, err := AssignGreedy(in, repl)
		if err != nil {
			continue
		}
		if c := model.Cost(in, sol); c < bestCost {
			best, bestCost = sol, c
		}
	}
	if best == nil {
		return nil, 0, ErrNoSolution
	}
	return best, bestCost, nil
}
