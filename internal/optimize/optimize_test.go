package optimize

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/heuristics"
)

func TestAssignGreedyMatchesMGFeasibility(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		in := gen.Instance(gen.Config{
			Internal: 5, Clients: 8,
			Lambda: 0.3 + float64(seed%7)/10.0,
		}, seed)
		all := make([]bool, in.Tree.Len())
		for _, j := range in.Tree.Internal() {
			all[j] = true
		}
		sol, err := AssignGreedy(in, all)
		_, mgErr := heuristics.MG(in)
		if (err == nil) != (mgErr == nil) {
			t.Fatalf("seed %d: AssignGreedy err=%v, MG err=%v", seed, err, mgErr)
		}
		if err == nil {
			if verr := sol.Validate(in, core.Multiple); verr != nil {
				t.Fatalf("seed %d: %v", seed, verr)
			}
		}
	}
}

func TestAssignGreedyRespectsQoS(t *testing.T) {
	in := gen.Instance(gen.Config{Internal: 5, Clients: 8, Lambda: 0.4, QoSRange: 2}, 3)
	all := make([]bool, in.Tree.Len())
	for _, j := range in.Tree.Internal() {
		all[j] = true
	}
	sol, err := AssignGreedy(in, all)
	if errors.Is(err, ErrNoSolution) {
		t.Skip("instance infeasible under QoS")
	}
	if err != nil {
		t.Fatal(err)
	}
	if verr := sol.Validate(in, core.Multiple); verr != nil {
		t.Fatalf("QoS violated: %v", verr)
	}
}

func TestImproveNeverWorsens(t *testing.T) {
	models := []core.CostModel{
		core.StorageOnly,
		{Alpha: 1, Beta: 0.5},
		{Alpha: 1, Beta: 0.2, Gamma: 2},
		{Beta: 1},
	}
	for seed := int64(0); seed < 30; seed++ {
		in := gen.Instance(gen.Config{Internal: 6, Clients: 10, Lambda: 0.4}, seed+40)
		start, err := heuristics.MG(in)
		if err != nil {
			continue
		}
		for _, m := range models {
			res, err := Improve(in, start, Options{Model: m})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if res.Cost > m.Cost(in, start)+1e-9 {
				t.Errorf("seed %d model %+v: improved cost %v worse than start %v",
					seed, m, res.Cost, m.Cost(in, start))
			}
			if verr := res.Solution.Validate(in, core.Multiple); verr != nil {
				t.Fatalf("seed %d: invalid improved solution: %v", seed, verr)
			}
		}
	}
}

// TestImproveReachesBruteForceOften: on small instances, local search from
// MG lands within 15% of the exhaustive optimum of the combined
// objective, and frequently matches it exactly.
func TestImproveReachesBruteForceOften(t *testing.T) {
	model := core.CostModel{Alpha: 1, Beta: 0.3, Gamma: 1}
	exactHits, trials := 0, 0
	for seed := int64(0); seed < 25; seed++ {
		in := gen.Instance(gen.Config{Internal: 4, Clients: 6, Lambda: 0.4}, seed+90)
		_, bfCost, err := BruteForceCombined(in, model)
		if errors.Is(err, ErrNoSolution) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		res, err := ImproveFromHeuristic(in, heuristics.MG, Options{Model: model})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		trials++
		if res.Cost < bfCost-1e-6 {
			t.Fatalf("seed %d: local search %v beat brute force %v (bug in one of them)",
				seed, res.Cost, bfCost)
		}
		if math.Abs(res.Cost-bfCost) < 1e-6 {
			exactHits++
		} else if res.Cost > 1.15*bfCost {
			t.Errorf("seed %d: local search %v vs optimum %v (> 15%% off)", seed, res.Cost, bfCost)
		}
	}
	if trials > 0 && exactHits*2 < trials {
		t.Errorf("local search matched the optimum on only %d/%d instances", exactHits, trials)
	}
}

// TestImproveTradeoff: raising the read-cost weight pulls replicas toward
// the clients (read cost falls, storage cost may rise).
func TestImproveTradeoff(t *testing.T) {
	in := gen.Instance(gen.Config{Internal: 8, Clients: 16, Lambda: 0.3, UnitCosts: true}, 77)
	start, err := heuristics.MG(in)
	if err != nil {
		t.Skip("infeasible")
	}
	storageOpt, err := Improve(in, start, Options{Model: core.StorageOnly})
	if err != nil {
		t.Fatal(err)
	}
	readHeavy, err := Improve(in, start, Options{Model: core.CostModel{Alpha: 0.01, Beta: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if readHeavy.Solution.ReadCost(in) > storageOpt.Solution.ReadCost(in) {
		t.Errorf("read-heavy model yields higher read cost (%d) than storage model (%d)",
			readHeavy.Solution.ReadCost(in), storageOpt.Solution.ReadCost(in))
	}
}

func TestImproveFromHeuristicFallback(t *testing.T) {
	// UTD fails on Figure 1(c) (needs splitting); the fallback placement
	// still gives Improve a start.
	in := core.Figure1('c')
	res, err := ImproveFromHeuristic(in, heuristics.UTD, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if verr := res.Solution.Validate(in, core.Multiple); verr != nil {
		t.Fatal(verr)
	}
	if res.Solution.ReplicaCount() != 2 {
		t.Errorf("replicas = %d, want 2", res.Solution.ReplicaCount())
	}
}

func TestBruteForceCombinedLimits(t *testing.T) {
	in := gen.Instance(gen.Config{Internal: 19, Clients: 5}, 1)
	if _, _, err := BruteForceCombined(in, core.StorageOnly); err == nil {
		t.Error("want size-limit error")
	}
	over := core.Figure1('a')
	over.R[over.Tree.Clients()[0]] = 100
	if _, _, err := BruteForceCombined(over, core.StorageOnly); !errors.Is(err, ErrNoSolution) {
		t.Errorf("want ErrNoSolution, got %v", err)
	}
}
