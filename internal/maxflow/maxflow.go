// Package maxflow implements Dinic's maximum-flow algorithm on integer
// capacities. It is the feasibility substrate for the Multiple access
// policy: deciding whether a replica set can absorb all client requests is
// a transportation problem, and integral capacities guarantee an integral
// optimal flow.
package maxflow

import "fmt"

// Inf is a practically unbounded capacity.
const Inf = int64(1) << 60

type edge struct {
	to   int
	cap  int64
	flow int64
	rev  int // index of the reverse edge in adj[to]
}

// Graph is a flow network under construction or after a Run. Vertices are
// dense ids in [0, n).
type Graph struct {
	adj   [][]edge
	level []int
	iter  []int
}

// New returns a graph with n vertices and no edges.
func New(n int) *Graph {
	return &Graph{adj: make([][]edge, n)}
}

// Len returns the number of vertices.
func (g *Graph) Len() int { return len(g.adj) }

// AddEdge adds a directed edge from -> to with the given capacity and
// returns a handle usable with Flow after running the algorithm.
func (g *Graph) AddEdge(from, to int, cap int64) EdgeHandle {
	if cap < 0 {
		panic(fmt.Sprintf("maxflow: negative capacity %d", cap))
	}
	g.adj[from] = append(g.adj[from], edge{to: to, cap: cap, rev: len(g.adj[to])})
	g.adj[to] = append(g.adj[to], edge{to: from, cap: 0, rev: len(g.adj[from]) - 1})
	return EdgeHandle{from: from, idx: len(g.adj[from]) - 1}
}

// EdgeHandle identifies an edge added with AddEdge.
type EdgeHandle struct {
	from, idx int
}

// Flow returns the flow routed through the edge after Run.
func (g *Graph) Flow(h EdgeHandle) int64 { return g.adj[h.from][h.idx].flow }

func (g *Graph) bfs(s, t int) bool {
	for i := range g.level {
		g.level[i] = -1
	}
	queue := make([]int, 0, len(g.adj))
	queue = append(queue, s)
	g.level[s] = 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[v] {
			if e.cap-e.flow > 0 && g.level[e.to] < 0 {
				g.level[e.to] = g.level[v] + 1
				queue = append(queue, e.to)
			}
		}
	}
	return g.level[t] >= 0
}

func (g *Graph) dfs(v, t int, f int64) int64 {
	if v == t {
		return f
	}
	for ; g.iter[v] < len(g.adj[v]); g.iter[v]++ {
		e := &g.adj[v][g.iter[v]]
		if e.cap-e.flow <= 0 || g.level[e.to] != g.level[v]+1 {
			continue
		}
		d := g.dfs(e.to, t, min64(f, e.cap-e.flow))
		if d > 0 {
			e.flow += d
			g.adj[e.to][e.rev].flow -= d
			return d
		}
	}
	return 0
}

// Run computes the maximum flow from s to t and returns its value. It may
// be called once per graph.
func (g *Graph) Run(s, t int) int64 {
	if s == t {
		panic("maxflow: source equals sink")
	}
	g.level = make([]int, len(g.adj))
	g.iter = make([]int, len(g.adj))
	var total int64
	for g.bfs(s, t) {
		for i := range g.iter {
			g.iter[i] = 0
		}
		for {
			f := g.dfs(s, t, Inf)
			if f == 0 {
				break
			}
			total += f
		}
	}
	return total
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
