package maxflow

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSimplePath(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 3)
	if got := g.Run(0, 2); got != 3 {
		t.Errorf("flow = %d, want 3", got)
	}
}

func TestDiamond(t *testing.T) {
	// s -> a, s -> b, a -> t, b -> t, a -> b
	g := New(4)
	g.AddEdge(0, 1, 10)
	g.AddEdge(0, 2, 10)
	g.AddEdge(1, 3, 4)
	g.AddEdge(2, 3, 9)
	g.AddEdge(1, 2, 6)
	if got := g.Run(0, 3); got != 13 {
		t.Errorf("flow = %d, want 13", got)
	}
}

func TestDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(2, 3, 5)
	if got := g.Run(0, 3); got != 0 {
		t.Errorf("flow = %d, want 0", got)
	}
}

func TestEdgeFlows(t *testing.T) {
	g := New(3)
	e1 := g.AddEdge(0, 1, 5)
	e2 := g.AddEdge(1, 2, 3)
	g.Run(0, 2)
	if g.Flow(e1) != 3 || g.Flow(e2) != 3 {
		t.Errorf("edge flows = %d, %d, want 3, 3", g.Flow(e1), g.Flow(e2))
	}
}

func TestClassicNetwork(t *testing.T) {
	// CLRS figure: max flow 23.
	g := New(6)
	g.AddEdge(0, 1, 16)
	g.AddEdge(0, 2, 13)
	g.AddEdge(1, 2, 10)
	g.AddEdge(2, 1, 4)
	g.AddEdge(1, 3, 12)
	g.AddEdge(3, 2, 9)
	g.AddEdge(2, 4, 14)
	g.AddEdge(4, 3, 7)
	g.AddEdge(3, 5, 20)
	g.AddEdge(4, 5, 4)
	if got := g.Run(0, 5); got != 23 {
		t.Errorf("flow = %d, want 23", got)
	}
}

func TestPanics(t *testing.T) {
	t.Run("negative capacity", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("want panic")
			}
		}()
		New(2).AddEdge(0, 1, -1)
	})
	t.Run("source equals sink", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("want panic")
			}
		}()
		New(2).Run(1, 1)
	})
}

// TestBipartiteMatchingProperty checks max-flow against a brute-force
// matching count on random bipartite graphs (Koenig duality: max matching
// size equals max flow with unit capacities).
func TestBipartiteMatchingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l, r := rng.Intn(5)+1, rng.Intn(5)+1
		adj := make([][]bool, l)
		for i := range adj {
			adj[i] = make([]bool, r)
			for j := range adj[i] {
				adj[i][j] = rng.Intn(2) == 0
			}
		}
		// Brute force maximum matching via bitmask DP over right side.
		best := 0
		var rec func(i, used int, size int)
		rec = func(i, used, size int) {
			if size > best {
				best = size
			}
			if i == l {
				return
			}
			rec(i+1, used, size)
			for j := 0; j < r; j++ {
				if adj[i][j] && used&(1<<j) == 0 {
					rec(i+1, used|1<<j, size+1)
				}
			}
		}
		rec(0, 0, 0)

		g := New(l + r + 2)
		s, tk := l+r, l+r+1
		for i := 0; i < l; i++ {
			g.AddEdge(s, i, 1)
		}
		for j := 0; j < r; j++ {
			g.AddEdge(l+j, tk, 1)
		}
		for i := 0; i < l; i++ {
			for j := 0; j < r; j++ {
				if adj[i][j] {
					g.AddEdge(i, l+j, 1)
				}
			}
		}
		return g.Run(s, tk) == int64(best)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestFlowConservationProperty checks conservation and capacity limits on
// random graphs.
func TestFlowConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(8) + 2
		g := New(n)
		type e struct{ from, to int }
		var handles []EdgeHandle
		var ends []e
		for k := 0; k < n*2; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			handles = append(handles, g.AddEdge(u, v, int64(rng.Intn(20))))
			ends = append(ends, e{u, v})
		}
		total := g.Run(0, n-1)
		net := make([]int64, n)
		for i, h := range handles {
			fl := g.Flow(h)
			if fl < 0 {
				return false
			}
			net[ends[i].from] -= fl
			net[ends[i].to] += fl
		}
		for v := 0; v < n; v++ {
			switch v {
			case 0:
				if net[v] != -total {
					return false
				}
			case n - 1:
				if net[v] != total {
					return false
				}
			default:
				if net[v] != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDinicGrid(b *testing.B) {
	// 20x20 grid, source to sink.
	const k = 20
	for i := 0; i < b.N; i++ {
		g := New(k*k + 2)
		s, t := k*k, k*k+1
		id := func(r, c int) int { return r*k + c }
		for r := 0; r < k; r++ {
			g.AddEdge(s, id(r, 0), 100)
			g.AddEdge(id(r, k-1), t, 100)
			for c := 0; c+1 < k; c++ {
				g.AddEdge(id(r, c), id(r, c+1), 50)
			}
		}
		for c := 0; c < k; c++ {
			for r := 0; r+1 < k; r++ {
				g.AddEdge(id(r, c), id(r+1, c), 30)
				g.AddEdge(id(r+1, c), id(r, c), 30)
			}
		}
		g.Run(s, t)
	}
}
