package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// ErrEngineClosed is returned by Solve after Close has begun.
var ErrEngineClosed = errors.New("service: engine closed")

// ErrUnknownSolver reports a request for an unregistered solver name.
type ErrUnknownSolver struct{ Name string }

func (e *ErrUnknownSolver) Error() string {
	return fmt.Sprintf("service: unknown solver %q", e.Name)
}

// Options are the per-request knobs. They are part of the cache key
// where they affect the result (BoundNodes) and not where they don't
// (Timeout, NoCache, IncludeSolution).
type Options struct {
	// Timeout caps queue wait plus computation for this request; zero
	// selects the engine default. On expiry the caller gets
	// context.DeadlineExceeded. Cancellation-aware backends (brute
	// force, refined bounds) then stop early and release their worker;
	// other backends run to completion and still populate the cache.
	Timeout time.Duration
	// NoCache bypasses cache lookup and retention for this request.
	NoCache bool
	// BoundNodes is the branch-and-bound budget for refined-bound
	// solvers (default lpbound's 400). Ignored by other backends.
	BoundNodes int
	// IncludeSolution asks for the full assignment in the response, not
	// just the replica set and cost.
	IncludeSolution bool
	// Objects carries the per-object request/cost vectors of a
	// multi-object request (solvers with MultiObject set; required
	// there, rejected as a 400 elsewhere by the HTTP layer and zeroed
	// here so a stray value cannot split the cache key space).
	Objects []ObjectVectors
}

// Request names one computation: a solver (or solver family, resolved
// against Policy) applied to an instance.
type Request struct {
	Instance *core.Instance
	// Solver is a registry name ("mb", "optimal", "lp-refined-multiple",
	// ...) or a family name ("brute", "lp-rational", "lp-refined")
	// qualified by Policy. Matching is case-insensitive.
	Solver string
	// Policy qualifies family solver names; ignored when Solver is
	// already concrete.
	Policy  core.Policy
	Options Options
}

// Response is the outcome of a request.
type Response struct {
	Solver string `json:"solver"`
	Policy string `json:"policy"`
	// NoSolution is set when the backend found no placement (for exact
	// solvers: proved infeasibility).
	NoSolution bool `json:"no_solution,omitempty"`
	// Cost, ReplicaCount and Replicas describe a found placement.
	Cost         int64 `json:"cost,omitempty"`
	ReplicaCount int   `json:"replica_count,omitempty"`
	Replicas     []int `json:"replicas,omitempty"`
	// Solution is the full assignment (Options.IncludeSolution).
	Solution *core.Solution `json:"solution,omitempty"`
	// PerObject carries a multi-object solver's per-object placements;
	// Cost is then the total across objects.
	PerObject []ObjectPlacement `json:"per_object,omitempty"`
	// Bound carries a bound backend's result.
	Bound *BoundPayload `json:"bound,omitempty"`
	// Cached reports that the response was served from the cache or an
	// in-flight identical computation.
	Cached bool `json:"cached"`
	// ElapsedMS is the request's wall time inside the engine.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// BoundPayload is the bound part of a Response.
type BoundPayload struct {
	Value float64 `json:"value"`
	// Exact reports whether the bound is the model's true optimum (the
	// branch-and-bound closed within budget; always true for rational).
	Exact bool `json:"exact"`
}

// Stats is a snapshot of the engine counters.
type Stats struct {
	Requests     uint64 `json:"requests"`
	Computations uint64 `json:"computations"`
	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	Evictions    uint64 `json:"evictions"`
	// ByteEvictions/TTLEvictions count entries dropped by the byte limit
	// and by expiry; Evictions counts plain LRU capacity evictions.
	ByteEvictions uint64 `json:"byte_evictions"`
	TTLEvictions  uint64 `json:"ttl_evictions"`
	CacheEntries  int    `json:"cache_entries"`
	// CacheBytes is the approximate footprint of retained results.
	CacheBytes int64  `json:"cache_bytes"`
	Errors     uint64 `json:"errors"`
	InFlight   int64  `json:"in_flight"`
	Workers    int    `json:"workers"`
	// QueueLen/QueueCap expose the worker pool's backlog depth.
	QueueLen int `json:"queue_len"`
	QueueCap int `json:"queue_cap"`
	// TreeCacheHits/Misses/Entries track the batch path's topology
	// interning (preprocessed trees reused across requests).
	TreeCacheHits    uint64 `json:"tree_cache_hits"`
	TreeCacheMisses  uint64 `json:"tree_cache_misses"`
	TreeCacheEntries int    `json:"tree_cache_entries"`
	// PerSolver breaks the solution-cache counters down by solver name
	// (hits on completed entries, misses, and waits coalesced onto an
	// in-flight computation).
	PerSolver map[string]SolverCacheStats `json:"per_solver,omitempty"`
}

// EngineOptions configures NewEngine. The zero value selects sensible
// defaults throughout.
type EngineOptions struct {
	// Workers is the number of solver goroutines (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the number of queued jobs before Solve applies
	// backpressure by blocking (default 4×Workers).
	QueueDepth int
	// CacheSize is the number of retained results (default 4096;
	// negative disables retention, keeping only in-flight
	// de-duplication).
	CacheSize int
	// CacheMaxBytes additionally bounds the approximate memory footprint
	// of retained results (0 = unlimited). Least-recently-used entries
	// are evicted until the retained footprint fits.
	CacheMaxBytes int64
	// CacheTTL expires retained results after this age (0 = never): a
	// hit on an expired entry recomputes instead. Memory-bounded long
	// runs use it to shed results that stopped being asked for.
	CacheTTL time.Duration
	// DefaultTimeout is the per-job deadline when a request does not set
	// one (default 60s).
	DefaultTimeout time.Duration
	// Registry overrides the solver set (default NewRegistry()).
	Registry *Registry
	// Logger receives per-computation debug lines and solver-fault
	// warnings; lines carry the request's trace ID. Nil discards.
	Logger *slog.Logger
}

func (o EngineOptions) withDefaults() EngineOptions {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4 * o.Workers
	}
	if o.CacheSize == 0 {
		o.CacheSize = 4096
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 60 * time.Second
	}
	if o.Registry == nil {
		o.Registry = NewRegistry()
	}
	if o.Logger == nil {
		o.Logger = obs.NopLogger()
	}
	return o
}

// Engine is a long-running concurrent replica-placement service: a
// solver registry behind a bounded worker pool with a keyed solution
// cache. All methods are safe for concurrent use.
type Engine struct {
	opts  EngineOptions
	cache *cache
	trees *treeCache
	jobs  chan *job

	mu     sync.RWMutex // guards closed and the jobs channel close
	closed bool
	wg     sync.WaitGroup // worker goroutines

	requests, computations, errors atomic.Uint64
	inFlight                       atomic.Int64

	log *slog.Logger
	// solveHist/queueHist split each computation's latency per solver:
	// time inside the backend vs. time spent waiting for a worker slot.
	// Exposed on /metrics as rp_engine_solve_seconds and
	// rp_engine_queue_wait_seconds.
	solveHist *obs.HistogramVec
	queueHist *obs.HistogramVec
}

type job struct {
	ctx    context.Context
	solver Solver
	in     *core.Instance
	opt    Options
	start  time.Time
	// entry/key are set for cache-owner jobs: the worker must complete
	// the entry (even if the caller is gone) so waiters are released.
	entry *cacheEntry
	key   string
	done  chan struct{}
	resp  *Response
	err   error
}

// defaultBoundNodes mirrors lpbound's Refined default, so an explicit
// budget of 400 and "use the default" hash to the same cache key.
const defaultBoundNodes = 400

// NewEngine starts an engine and its worker pool.
func NewEngine(opts EngineOptions) *Engine {
	opts = opts.withDefaults()
	e := &Engine{
		opts:      opts,
		cache:     newCache(opts.CacheSize, opts.CacheMaxBytes, opts.CacheTTL),
		trees:     newTreeCache(maxInternedTrees),
		jobs:      make(chan *job, opts.QueueDepth),
		log:       opts.Logger,
		solveHist: obs.NewHistogramVec(nil),
		queueHist: obs.NewHistogramVec(nil),
	}
	for i := 0; i < opts.Workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// Registry exposes the engine's solver set (for listings).
func (e *Engine) Registry() *Registry { return e.opts.Registry }

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	cs := e.cache.stats()
	thits, tmisses, tentries := e.trees.stats()
	return Stats{
		Requests:         e.requests.Load(),
		Computations:     e.computations.Load(),
		CacheHits:        cs.hits,
		CacheMisses:      cs.misses,
		Evictions:        cs.evictions,
		ByteEvictions:    cs.byteEvictions,
		TTLEvictions:     cs.ttlEvictions,
		CacheEntries:     cs.entries,
		CacheBytes:       cs.bytes,
		Errors:           e.errors.Load(),
		InFlight:         e.inFlight.Load(),
		Workers:          e.opts.Workers,
		QueueLen:         len(e.jobs),
		QueueCap:         cap(e.jobs),
		TreeCacheHits:    thits,
		TreeCacheMisses:  tmisses,
		TreeCacheEntries: tentries,
		PerSolver:        e.cache.solverSnapshot(),
	}
}

// SolverCacheStats returns the cache counters attributed to one solver.
func (e *Engine) SolverCacheStats(name string) SolverCacheStats {
	return e.cache.solverSnapshot()[strings.ToLower(strings.TrimSpace(name))]
}

// SolveHistograms snapshots the per-solver latency histograms: backend
// compute time and worker-slot queue wait, keyed by solver name.
func (e *Engine) SolveHistograms() (solve, queueWait map[string]obs.HistogramSnapshot) {
	return e.solveHist.Snapshot(), e.queueHist.Snapshot()
}

// Solve schedules the request on the worker pool and waits for its
// result, the request deadline, or ctx. Identical concurrent requests
// share one backend computation; identical repeated requests are served
// from the cache.
func (e *Engine) Solve(ctx context.Context, req Request) (*Response, error) {
	span := obs.StartLeaf(ctx, "engine.solve")
	resp, err := e.solve(ctx, req)
	if span != nil {
		span.SetAttr("solver", req.Solver)
		if resp != nil && resp.Cached {
			span.SetAttr("cached", "true")
		}
		span.SetError(err)
		span.End()
	}
	return resp, err
}

func (e *Engine) solve(ctx context.Context, req Request) (*Response, error) {
	e.requests.Add(1)
	e.mu.RLock()
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		// Reject up front — even cache hits — so a draining engine stops
		// taking traffic uniformly. (The enqueue below re-checks under
		// the lock to stay race-free with Close.)
		return nil, ErrEngineClosed
	}
	if req.Instance == nil {
		return nil, errors.New("service: request without instance")
	}
	if err := req.Instance.Validate(); err != nil {
		return nil, err
	}
	solver, ok := e.opts.Registry.Resolve(req.Solver, req.Policy)
	if !ok {
		return nil, &ErrUnknownSolver{Name: req.Solver}
	}

	timeout := req.Options.Timeout
	if timeout <= 0 {
		timeout = e.opts.DefaultTimeout
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	// Normalize the options that feed the cache key: only budgeted bound
	// solvers consume BoundNodes, so for every other backend a stray
	// budget must not split the key space.
	opt := req.Options
	if !solver.BoundBudget {
		opt.BoundNodes = 0
	} else if opt.BoundNodes <= 0 {
		opt.BoundNodes = defaultBoundNodes
	}
	// Same guard for the per-object vectors: only multi-object backends
	// consume them. They must arrive for those (the backend has nothing
	// to run on otherwise), and the up-front shape check keeps malformed
	// vectors out of the cache key.
	if !solver.MultiObject {
		opt.Objects = nil
	} else if _, err := buildMultiInstance(req.Instance, opt.Objects); err != nil {
		return nil, err
	}

	start := time.Now()
	j := &job{ctx: ctx, solver: solver, in: req.Instance, opt: opt, start: start, done: make(chan struct{})}
	if !opt.NoCache {
		j.key = Key(req.Instance, solver.Name, opt)
		for {
			entry, owner := e.cache.claim(j.key, solver.Name)
			if owner {
				j.entry = entry
				break
			}
			// Served by whoever owns the computation — without holding a
			// worker slot, so duplicate-heavy traffic can't starve the pool.
			select {
			case <-entry.ready:
				if entry.err != nil {
					if errors.Is(entry.err, context.Canceled) || errors.Is(entry.err, context.DeadlineExceeded) {
						// The owner's deadline died, not ours:
						// cancellation-aware backends surface the owner's
						// context error, which must not poison waiters with
						// healthier deadlines. The failed entry is already
						// gone from the cache; re-claim and recompute.
						continue
					}
					e.errors.Add(1)
					return nil, entry.err
				}
				return e.buildResponse(j, entry.res, true), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}

	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		e.abandon(j, ErrEngineClosed)
		return nil, ErrEngineClosed
	}
	select {
	case e.jobs <- j:
		e.mu.RUnlock()
	case <-ctx.Done():
		e.mu.RUnlock()
		e.abandon(j, ctx.Err())
		return nil, ctx.Err()
	}

	select {
	case <-j.done:
		if j.err != nil {
			e.errors.Add(1)
		}
		return j.resp, j.err
	case <-ctx.Done():
		// The job may still be picked up and computed; the result then
		// lands in the cache for later requests.
		return nil, ctx.Err()
	}
}

// CacheProbe computes the request's canonical cache key and answers it
// from the solution cache if — and only if — a completed, unexpired
// entry exists. It never blocks, never claims a computation, and never
// joins an in-flight one: a miss just returns (key, nil, false). An
// Options.NoCache request or an unknown solver returns an empty key —
// there is nothing coherent to probe or memoize under. The cluster's
// batch router uses the probe to short-circuit routed variations the
// coordinator has already solved, and the key to memoize routed raw
// rows it never decodes. A hit counts as a cache hit and refreshes the
// entry's LRU position, like any other hit.
func (e *Engine) CacheProbe(req Request) (key string, resp *Response, ok bool) {
	if req.Options.NoCache || req.Instance == nil {
		return "", nil, false
	}
	solver, found := e.opts.Registry.Resolve(req.Solver, req.Policy)
	if !found {
		return "", nil, false
	}
	// Mirror Solve's key normalization: only budgeted bound solvers
	// consume BoundNodes.
	opt := req.Options
	if !solver.BoundBudget {
		opt.BoundNodes = 0
	} else if opt.BoundNodes <= 0 {
		opt.BoundNodes = defaultBoundNodes
	}
	if !solver.MultiObject {
		opt.Objects = nil
	} else if len(opt.Objects) == 0 {
		return "", nil, false // Solve would reject it; nothing cacheable
	}
	key = Key(req.Instance, solver.Name, opt)
	res, found := e.cache.peek(key, solver.Name)
	if !found {
		return key, nil, false
	}
	j := &job{solver: solver, in: req.Instance, opt: opt, start: time.Now()}
	return key, e.buildResponse(j, res, true), true
}

// CachePeek is CacheProbe without the key, for callers that only want
// the answer.
func (e *Engine) CachePeek(req Request) (*Response, bool) {
	_, resp, ok := e.CacheProbe(req)
	return resp, ok
}

// abandon releases a claimed cache entry whose job never reached a
// worker, so waiters don't block forever. The error is not retained, so
// the next request recomputes.
func (e *Engine) abandon(j *job, err error) {
	if j.entry != nil {
		e.cache.complete(j.key, j.entry, Result{}, err)
	}
}

// worker drains the job queue until the engine closes.
func (e *Engine) worker() {
	defer e.wg.Done()
	for j := range e.jobs {
		e.run(j)
	}
}

func (e *Engine) run(j *job) {
	e.inFlight.Add(1)
	defer e.inFlight.Add(-1)
	if j.entry == nil && j.ctx.Err() != nil {
		// Uncached job whose caller is already gone: nothing waits on the
		// result, don't burn a worker on it. (A cache-owner job computes
		// regardless — waiters and future requests want its entry.)
		j.err = j.ctx.Err()
		close(j.done)
		return
	}

	// j.start was stamped at enqueue, so this is pure queue wait; the
	// compute timer starts only now that a worker owns the job.
	wait := time.Since(j.start)
	e.queueHist.Observe(j.solver.Name, wait)
	obs.RecordSpan(j.ctx, "engine.queue_wait", j.start, wait, obs.Attr{Key: "solver", Value: j.solver.Name})

	e.computations.Add(1)
	computeStart := time.Now()
	res, err := j.solver.Run(j.ctx, j.in, j.opt)
	compute := time.Since(computeStart)
	e.solveHist.Observe(j.solver.Name, compute)
	if err != nil {
		e.log.DebugContext(j.ctx, "solve failed",
			"solver", j.solver.Name, "duration_ms", float64(compute)/float64(time.Millisecond), "error", err)
	} else if e.log.Enabled(j.ctx, slog.LevelDebug) {
		e.log.DebugContext(j.ctx, "solve computed",
			"solver", j.solver.Name, "duration_ms", float64(compute)/float64(time.Millisecond))
	}
	if err == nil && res.Solution != nil {
		if verr := res.Solution.Validate(j.in, j.solver.Policy); verr != nil {
			res, err = Result{}, fmt.Errorf("service: solver %s produced an invalid solution: %w", j.solver.Name, verr)
		}
	}
	if err == nil && res.MultiSolution != nil {
		// The vectors passed normalization in Solve, so a failure here
		// is the backend's fault, not the request's.
		if mi, merr := buildMultiInstance(j.in, j.opt.Objects); merr != nil {
			res, err = Result{}, merr
		} else if verr := res.MultiSolution.Validate(mi, j.solver.Policy); verr != nil {
			res, err = Result{}, fmt.Errorf("service: solver %s produced an invalid multi-object solution: %w", j.solver.Name, verr)
		}
	}
	if j.entry != nil {
		e.cache.complete(j.key, j.entry, res, err)
	}
	if err != nil {
		j.err = err
	} else {
		j.resp = e.buildResponse(j, res, false)
	}
	close(j.done)
}

// buildResponse assembles the wire response for a computed or cached
// result.
func (e *Engine) buildResponse(j *job, res Result, cached bool) *Response {
	resp := &Response{
		Solver:     j.solver.Name,
		Policy:     j.solver.Policy.String(),
		NoSolution: res.NoSolution,
		Cached:     cached,
		ElapsedMS:  float64(time.Since(j.start)) / float64(time.Millisecond),
	}
	if res.HasBound && !res.NoSolution {
		resp.Bound = &BoundPayload{Value: res.Bound, Exact: res.BoundExact}
	}
	if res.Solution != nil {
		resp.Cost = res.Solution.StorageCost(j.in)
		resp.ReplicaCount = res.Solution.ReplicaCount()
		resp.Replicas = res.Solution.Replicas()
		if j.opt.IncludeSolution {
			resp.Solution = res.Solution
		}
	}
	if res.MultiSolution != nil {
		for k, sol := range res.MultiSolution.PerObject {
			op := ObjectPlacement{
				Object:       k,
				Cost:         objectCost(sol, j.opt.Objects[k].S),
				ReplicaCount: sol.ReplicaCount(),
				Replicas:     sol.Replicas(),
			}
			if j.opt.IncludeSolution {
				op.Solution = sol
			}
			resp.Cost += op.Cost
			resp.PerObject = append(resp.PerObject, op)
		}
	}
	return resp
}

// Close gracefully shuts the engine down: new Solve calls fail with
// ErrEngineClosed, queued and in-flight jobs are drained, and Close
// returns when the pool has stopped or ctx expires (the workers then
// finish in the background).
func (e *Engine) Close(ctx context.Context) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	close(e.jobs)
	e.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
