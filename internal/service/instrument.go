package service

import (
	"log/slog"
	"math/rand/v2"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// instrument wraps the API mux with the request-observability layer:
//
//   - every request gets a trace ID — the client's X-RP-Trace-Id when it
//     sent a well-formed one (so a coordinator's ID survives into its
//     shards), a fresh one otherwise — carried in the request context
//     and echoed on the response header before any handler runs, which
//     is what lets writeError embed it in error bodies;
//   - when a SpanStore is configured, sampled requests run under a root
//     "http.request" span (child spans across the engine, router and
//     wire transport hang off it), and an X-RP-Parent-Span header from
//     an upstream coordinator splices this process's spans under the
//     caller's tree;
//   - requests slower than HandlerOptions.SlowRequest are logged at warn
//     with method, path, status and duration, and their traces are
//     retained in the flight recorder past ring pressure — an unsampled
//     slow request still gets a synthetic root span, so every slow
//     request is inspectable via /v1/traces/{id};
//   - at debug level every request is logged the same way.
func (a *api) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := obs.SanitizeTraceID(r.Header.Get(obs.TraceHeader))
		if id == "" {
			id = obs.NewTraceID()
		}
		ctx := obs.WithTrace(r.Context(), id)
		w.Header().Set(obs.TraceHeader, id)

		sampled := a.spans != nil && sampleTrace(a.traceSample)
		var root *obs.Span
		if sampled {
			ctx = obs.WithSpans(ctx, a.spans)
			if parent := obs.ParseSpanID(r.Header.Get(obs.ParentSpanHeader)); parent != 0 {
				ctx = obs.WithParentSpan(ctx, parent)
			}
			ctx, root = obs.StartSpan(ctx, "http.request")
			root.SetAttr("method", r.Method)
			root.SetAttr("path", r.URL.Path)
		}
		r = r.WithContext(ctx)

		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		d := time.Since(start)

		// The mux recorded its matched pattern on the request during
		// routing, so the RED metrics see the coarse route, never the
		// raw path. Monitoring routes are RED-counted but exempt from
		// SLO accounting (see sloExempt).
		route := routePattern(r)
		a.red.observe(route, sw.status, d)
		if a.slo != nil && !sloExempt(route) {
			a.slo.Observe(sw.status, d)
		}

		if root != nil {
			root.SetAttr("status", strconv.Itoa(sw.status))
			root.End()
		}
		slow := a.slowReq > 0 && d >= a.slowReq
		if slow && a.spans != nil {
			if !sampled {
				// Sampling skipped this request, but slow requests must stay
				// inspectable: give the trace a synthetic root after the fact.
				a.spans.Record(obs.Span{
					TraceID:  id,
					Name:     "http.request",
					Start:    start,
					Duration: d,
				})
			}
			a.spans.Retain(id)
		}
		switch {
		case slow:
			a.log.LogAttrs(ctx, slog.LevelWarn, "slow request", requestAttrs(r, sw.status, d)...)
		case a.log.Enabled(ctx, slog.LevelDebug):
			a.log.LogAttrs(ctx, slog.LevelDebug, "request", requestAttrs(r, sw.status, d)...)
		}
	})
}

// sampleTrace decides whether a request records spans: rate ≥ 1 is
// always, ≤ 0 never, otherwise a Bernoulli draw per request.
func sampleTrace(rate float64) bool {
	if rate >= 1 {
		return true
	}
	if rate <= 0 {
		return false
	}
	return rand.Float64() < rate
}

func requestAttrs(r *http.Request, status int, d time.Duration) []slog.Attr {
	return []slog.Attr{
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", status),
		slog.Float64("duration_ms", float64(d)/float64(time.Millisecond)),
	}
}

// statusWriter records the response status for the request log while
// forwarding Flush (the NDJSON streaming endpoints depend on it) and
// exposing the wrapped writer via Unwrap for http.ResponseController.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (s *statusWriter) WriteHeader(code int) {
	if !s.wrote {
		s.status, s.wrote = code, true
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusWriter) Write(b []byte) (int, error) {
	s.wrote = true
	return s.ResponseWriter.Write(b)
}

func (s *statusWriter) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *statusWriter) Unwrap() http.ResponseWriter { return s.ResponseWriter }
