package service

import (
	"log/slog"
	"net/http"
	"time"

	"repro/internal/obs"
)

// instrument wraps the API mux with the request-observability layer:
//
//   - every request gets a trace ID — the client's X-RP-Trace-Id when it
//     sent a well-formed one (so a coordinator's ID survives into its
//     shards), a fresh one otherwise — carried in the request context
//     and echoed on the response header before any handler runs, which
//     is what lets writeError embed it in error bodies;
//   - requests slower than HandlerOptions.SlowRequest are logged at warn
//     with method, path, status and duration;
//   - at debug level every request is logged the same way.
func (a *api) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := obs.SanitizeTraceID(r.Header.Get(obs.TraceHeader))
		if id == "" {
			id = obs.NewTraceID()
		}
		ctx := obs.WithTrace(r.Context(), id)
		r = r.WithContext(ctx)
		w.Header().Set(obs.TraceHeader, id)

		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		d := time.Since(start)

		switch {
		case a.slowReq > 0 && d >= a.slowReq:
			a.log.LogAttrs(ctx, slog.LevelWarn, "slow request", requestAttrs(r, sw.status, d)...)
		case a.log.Enabled(ctx, slog.LevelDebug):
			a.log.LogAttrs(ctx, slog.LevelDebug, "request", requestAttrs(r, sw.status, d)...)
		}
	})
}

func requestAttrs(r *http.Request, status int, d time.Duration) []slog.Attr {
	return []slog.Attr{
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", status),
		slog.Float64("duration_ms", float64(d)/float64(time.Millisecond)),
	}
}

// statusWriter records the response status for the request log while
// forwarding Flush (the NDJSON streaming endpoints depend on it) and
// exposing the wrapped writer via Unwrap for http.ResponseController.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (s *statusWriter) WriteHeader(code int) {
	if !s.wrote {
		s.status, s.wrote = code, true
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusWriter) Write(b []byte) (int, error) {
	s.wrote = true
	return s.ResponseWriter.Write(b)
}

func (s *statusWriter) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *statusWriter) Unwrap() http.ResponseWriter { return s.ResponseWriter }
