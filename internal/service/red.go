package service

import (
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// redMetrics is the HTTP-layer RED view: request counts by route and
// status code (rp_http_requests_total) and a latency histogram per
// route (rp_http_request_seconds). Routes are the mux's coarse
// patterns — "/v1/solve", "/v1/jobs/{id}" — never raw request paths,
// so cardinality is bounded by the route table, not by traffic.
type redMetrics struct {
	mu       sync.Mutex
	requests map[string]map[int]uint64 // route → status code → count
	latency  *obs.HistogramVec         // by route
}

func newRedMetrics() *redMetrics {
	return &redMetrics{
		requests: make(map[string]map[int]uint64),
		latency:  obs.NewHistogramVec(nil),
	}
}

// observe records one finished request.
func (m *redMetrics) observe(route string, status int, d time.Duration) {
	m.mu.Lock()
	byCode := m.requests[route]
	if byCode == nil {
		byCode = make(map[int]uint64)
		m.requests[route] = byCode
	}
	byCode[status]++
	m.mu.Unlock()
	m.latency.Observe(route, d)
}

// snapshot copies the request counts for rendering.
func (m *redMetrics) snapshot() map[string]map[int]uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]map[int]uint64, len(m.requests))
	for route, byCode := range m.requests {
		cp := make(map[int]uint64, len(byCode))
		for code, n := range byCode {
			cp[code] = n
		}
		out[route] = cp
	}
	return out
}

// routePattern derives the RED route label from the request after the
// mux has routed it: Go 1.23's ServeMux records the matched pattern on
// the request itself. The method prefix is stripped ("GET /healthz" →
// "/healthz"); an unmatched request (404/405 from the mux) gets the
// catch-all label so raw attacker-chosen paths never become label
// values.
func routePattern(r *http.Request) string {
	pat := r.Pattern
	if i := strings.IndexByte(pat, ' '); i >= 0 {
		pat = pat[i+1:]
	}
	if pat == "" {
		return "unmatched"
	}
	return pat
}

// sloExempt reports whether the route is monitoring/introspection
// surface rather than user-facing traffic. Exempt routes still count in
// the RED metrics, but they must not feed the SLO windows: a storm of
// fast 200 healthz polls would dilute a real latency breach, and a
// scrape of a degraded daemon must not move the very objective it is
// reading.
func sloExempt(route string) bool {
	switch route {
	case "/healthz", "/metrics", "/v1/worker/ping",
		"/v1/alerts", "/v1/cluster/metrics", "/v1/traces/{id}", "unmatched":
		return true
	}
	return strings.HasPrefix(route, "/debug/")
}

// statusCodeLabel renders the code label value.
func statusCodeLabel(code int) string { return strconv.Itoa(code) }
