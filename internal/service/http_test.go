package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func newTestServer(t *testing.T) (*httptest.Server, *Engine) {
	t.Helper()
	e := NewEngine(EngineOptions{Workers: 4})
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		e.Close(ctx)
	})
	return srv, e
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
}

func TestHTTPHealthz(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var hp healthPayload
	decodeBody(t, resp, &hp)
	if hp.Status != "ok" || hp.Stats.Workers != 4 {
		t.Errorf("health = %+v", hp)
	}
}

func TestHTTPSolvers(t *testing.T) {
	srv, e := newTestServer(t)
	resp, err := http.Get(srv.URL + "/v1/solvers")
	if err != nil {
		t.Fatal(err)
	}
	var sp solversPayload
	decodeBody(t, resp, &sp)
	if len(sp.Solvers) != len(e.Registry().Solvers()) {
		t.Fatalf("listed %d solvers, registry has %d", len(sp.Solvers), len(e.Registry().Solvers()))
	}
	seen := map[string]bool{}
	for _, s := range sp.Solvers {
		seen[s.Name] = true
		if s.Kind == "" || s.Policy == "" {
			t.Errorf("solver %q missing kind/policy", s.Name)
		}
	}
	for _, want := range []string{"mb", "optimal", "lp-refined-multiple", "mg-bw"} {
		if !seen[want] {
			t.Errorf("missing %q in listing", want)
		}
	}
}

func TestHTTPSolveEndToEnd(t *testing.T) {
	srv, _ := newTestServer(t)
	in := testInstance(t)

	body := map[string]any{
		"instance": in,
		"solver":   "MB",
		"options":  map[string]any{"include_solution": true},
	}
	resp := postJSON(t, srv.URL+"/v1/solve", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var first Response
	decodeBody(t, resp, &first)
	if first.Solver != "mb" || first.Cost <= 0 || first.Cached {
		t.Fatalf("first solve = %+v", first)
	}
	if first.Solution == nil {
		t.Fatal("include_solution ignored")
	}
	if err := first.Solution.Validate(in, core.Multiple); err != nil {
		t.Fatalf("wire solution invalid after round-trip: %v", err)
	}

	// The identical request must come back from the cache.
	resp = postJSON(t, srv.URL+"/v1/solve", body)
	var second Response
	decodeBody(t, resp, &second)
	if !second.Cached || second.Cost != first.Cost {
		t.Fatalf("second solve = %+v, want cached with cost %d", second, first.Cost)
	}
}

func TestHTTPSolveFamilyAndPolicy(t *testing.T) {
	srv, _ := newTestServer(t)
	resp := postJSON(t, srv.URL+"/v1/solve", map[string]any{
		"instance": testInstance(t), "solver": "brute", "policy": "upwards",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var r Response
	decodeBody(t, resp, &r)
	if r.Solver != "brute-upwards" || r.Policy != "Upwards" {
		t.Errorf("resolved %q/%q", r.Solver, r.Policy)
	}
}

func TestHTTPSolveErrors(t *testing.T) {
	srv, _ := newTestServer(t)
	in := testInstance(t)

	resp := postJSON(t, srv.URL+"/v1/solve", map[string]any{"instance": in, "solver": "nope"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown solver: status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	resp = postJSON(t, srv.URL+"/v1/solve", map[string]any{"instance": in})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing solver: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	resp = postJSON(t, srv.URL+"/v1/solve", map[string]any{"instance": in, "solver": "mb", "policy": "sideways"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad policy: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	r, err := http.Post(srv.URL+"/v1/solve", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body: status %d, want 400", r.StatusCode)
	}
	r.Body.Close()
}

func TestHTTPBound(t *testing.T) {
	srv, _ := newTestServer(t)
	in := testInstance(t)

	// Default method is the refined bound.
	resp := postJSON(t, srv.URL+"/v1/bound", map[string]any{"instance": in, "policy": "Multiple"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var refined Response
	decodeBody(t, resp, &refined)
	if refined.Solver != "lp-refined-multiple" || refined.Bound == nil || refined.Bound.Value <= 0 {
		t.Fatalf("refined bound = %+v", refined)
	}

	resp = postJSON(t, srv.URL+"/v1/bound", map[string]any{"instance": in, "solver": "rational", "policy": "Multiple"})
	var rational Response
	decodeBody(t, resp, &rational)
	if rational.Bound == nil || !rational.Bound.Exact {
		t.Fatalf("rational bound = %+v", rational)
	}
	// The refined bound dominates the rational relaxation.
	if refined.Bound.Value < rational.Bound.Value-1e-9 {
		t.Errorf("refined %v below rational %v", refined.Bound.Value, rational.Bound.Value)
	}
}

func TestHTTPGenerate(t *testing.T) {
	srv, _ := newTestServer(t)
	resp := postJSON(t, srv.URL+"/v1/generate", map[string]any{
		"config": map[string]any{"Internal": 6, "Clients": 12, "Lambda": 0.4, "UnitCosts": true},
		"seed":   3,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var gp generatePayload
	decodeBody(t, resp, &gp)
	if gp.Instance == nil || gp.Vertices != 18 || gp.Load <= 0 {
		t.Fatalf("generate = vertices %d load %v", gp.Vertices, gp.Load)
	}
	if err := gp.Instance.Validate(); err != nil {
		t.Fatalf("generated instance invalid after round-trip: %v", err)
	}

	// The generated instance must be directly solvable via /v1/solve.
	resp = postJSON(t, srv.URL+"/v1/solve", map[string]any{"instance": gp.Instance, "solver": "optimal"})
	var r Response
	decodeBody(t, resp, &r)
	if r.NoSolution || r.Cost <= 0 {
		t.Fatalf("generated instance unsolvable: %+v", r)
	}
}

func TestHTTPCampaignStreams(t *testing.T) {
	srv, _ := newTestServer(t)
	resp := postJSON(t, srv.URL+"/v1/campaign", map[string]any{
		"config": map[string]any{
			"Lambdas":        []float64{0.2, 0.5},
			"TreesPerLambda": 2,
			"MinSize":        15,
			"MaxSize":        20,
			"Seed":           5,
			"BoundNodes":     10,
		},
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	var rows []campaignRow
	var done campaignDone
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.Contains(line, []byte(`"done"`)) {
			if err := json.Unmarshal(line, &done); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var row campaignRow
		if err := json.Unmarshal(line, &row); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || !done.Done || done.Rows != 2 {
		t.Fatalf("streamed %d rows, done=%+v", len(rows), done)
	}
	for i, want := range []float64{0.2, 0.5} {
		if rows[i].Lambda != want || rows[i].Trees != 2 {
			t.Errorf("row %d = %+v", i, rows[i])
		}
	}
}

func TestHTTPMethodNotAllowed(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Get(srv.URL + "/v1/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/solve: status %d, want 405", resp.StatusCode)
	}
	r2 := postJSON(t, srv.URL+"/healthz", map[string]any{})
	r2.Body.Close()
	if r2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /healthz: status %d, want 405", r2.StatusCode)
	}
}

// TestHTTPConcurrentSolves drives the acceptance criterion through the
// HTTP layer: concurrent identical requests are all answered, with the
// backend computing at most once (single-flight + cache).
func TestHTTPConcurrentSolves(t *testing.T) {
	srv, e := newTestServer(t)
	in := testInstance(t)
	data, err := json.Marshal(map[string]any{"instance": in, "solver": "optimal"})
	if err != nil {
		t.Fatal(err)
	}

	const parallel = 12
	errs := make(chan error, parallel)
	for i := 0; i < parallel; i++ {
		go func() {
			resp, err := http.Post(srv.URL+"/v1/solve", "application/json", bytes.NewReader(data))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var r Response
			if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK || r.Cost <= 0 {
				errs <- fmt.Errorf("status %d resp %+v", resp.StatusCode, r)
				return
			}
			errs <- nil
		}()
	}
	for i := 0; i < parallel; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if st := e.Stats(); st.Computations != 1 {
		t.Errorf("computations = %d, want 1", st.Computations)
	}
}

// TestHTTPWorkerPing: the lightweight probe a coordinator's shard pool
// polls is always registered and answers with live gauges.
func TestHTTPWorkerPing(t *testing.T) {
	srv, e := newTestServer(t)
	resp, err := http.Get(srv.URL + "/v1/worker/ping")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ping: status %d", resp.StatusCode)
	}
	var ping pingPayload
	decodeBody(t, resp, &ping)
	if ping.Status != "ok" || ping.Workers != e.Stats().Workers {
		t.Fatalf("ping = %+v", ping)
	}
}
