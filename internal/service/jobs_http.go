package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/jobs"
)

// jobInfo is the wire form of a job record. Spec payloads are omitted
// from listings (they can be megabytes for batch jobs); the submit
// response echoes what was accepted via the id.
type jobInfo struct {
	ID        string    `json:"id"`
	Kind      string    `json:"kind"`
	State     string    `json:"state"`
	Error     string    `json:"error,omitempty"`
	Progress  float64   `json:"progress"`
	RowsDone  int       `json:"rows_done"`
	RowsTotal int       `json:"rows_total"`
	Resumes   int       `json:"resumes,omitempty"`
	TraceID   string    `json:"trace_id,omitempty"`
	CreatedAt time.Time `json:"created_at"`
	// Pointers rather than `omitzero` tags: that option is Go 1.24+
	// and silently ignored by Go 1.23's encoding/json, and this module
	// supports both toolchains — the wire format must not depend on
	// which one built the daemon.
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
}

func wireJob(m jobs.Meta) jobInfo {
	return jobInfo{
		ID:         m.ID,
		Kind:       m.Spec.Kind,
		State:      string(m.State),
		Error:      m.Error,
		Progress:   m.Progress(),
		RowsDone:   m.RowsDone,
		RowsTotal:  m.RowsTotal,
		Resumes:    m.Resumes,
		TraceID:    m.TraceID,
		CreatedAt:  m.CreatedAt,
		StartedAt:  wireTime(m.StartedAt),
		FinishedAt: wireTime(m.FinishedAt),
	}
}

// wireTime maps the zero time ("not yet") to an omitted field.
func wireTime(t time.Time) *time.Time {
	if t.IsZero() {
		return nil
	}
	return &t
}

// jobSubmitRequest is the POST /v1/jobs body: a kind plus that kind's
// payload under its own field. The kind may be omitted when exactly one
// payload field is present.
type jobSubmitRequest struct {
	Kind     string          `json:"kind,omitempty"`
	Campaign json.RawMessage `json:"campaign,omitempty"`
	Batch    json.RawMessage `json:"batch,omitempty"`
}

func (req *jobSubmitRequest) spec() (jobs.Spec, error) {
	payloads := map[string]json.RawMessage{
		jobs.CampaignKindName: req.Campaign,
		BatchKindName:         req.Batch,
	}
	kind := req.Kind
	if kind == "" {
		for name, p := range payloads {
			if len(p) == 0 {
				continue
			}
			if kind != "" {
				return jobs.Spec{}, errors.New("multiple payloads given; set \"kind\"")
			}
			kind = name
		}
		if kind == "" {
			return jobs.Spec{}, errors.New("missing job payload (\"campaign\" or \"batch\")")
		}
	}
	payload, ok := payloads[kind]
	if !ok {
		return jobs.Spec{}, fmt.Errorf("unknown job kind %q", kind)
	}
	if len(payload) == 0 {
		return jobs.Spec{}, fmt.Errorf("job kind %q without its %q payload", kind, kind)
	}
	return jobs.Spec{Kind: kind, Payload: payload}, nil
}

type jobPayload struct {
	Job  jobInfo           `json:"job"`
	Rows []json.RawMessage `json:"rows,omitempty"`
}

type jobListPayload struct {
	Jobs []jobInfo `json:"jobs"`
	// Next is the cursor for the following page; present only when a
	// limit was given and more jobs remain. Pass it back as ?after=.
	Next string `json:"next,omitempty"`
}

func (a *api) registerJobRoutes(mux *http.ServeMux) {
	if a.jobs == nil {
		disabled := func(w http.ResponseWriter, r *http.Request) {
			writeError(w, http.StatusNotImplemented, errors.New(
				"async jobs are disabled; start rpserve with -jobs-dir (or build the handler with HandlerOptions.Jobs)"))
		}
		mux.HandleFunc("/v1/jobs", disabled)
		mux.HandleFunc("/v1/jobs/", disabled)
		return
	}
	mux.HandleFunc("POST /v1/jobs", a.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs", a.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", a.handleJobGet)
	mux.HandleFunc("GET /v1/jobs/{id}/result", a.handleJobResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", a.handleJobEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", a.handleJobDelete)
}

func (a *api) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req jobSubmitRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec, err := req.spec()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	meta, err := a.jobs.Submit(r.Context(), spec)
	if err != nil {
		switch {
		case errors.Is(err, jobs.ErrQueueFull), errors.Is(err, jobs.ErrClosed):
			w.Header().Set("Retry-After", strconv.Itoa(campaignRetryAfter))
			writeError(w, http.StatusServiceUnavailable, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, jobPayload{Job: wireJob(meta)})
}

// handleJobList lists jobs in the manager's stable (CreatedAt, ID)
// order. ?limit=N pages the listing: the response carries a "next"
// cursor whenever more jobs remain, and ?after=<cursor> resumes behind
// it. The cursor encodes the last item's sort key — not its position —
// so pages stay coherent while jobs are inserted, pruned or deleted
// between requests (a deleted cursor job never breaks the walk).
func (a *api) handleJobList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := 0
	if s := q.Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", s))
			return
		}
		limit = n
	}
	var afterAt time.Time
	var afterID string
	if s := q.Get("after"); s != "" {
		at, id, err := decodeJobCursor(s)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		afterAt, afterID = at, id
	}

	metas := a.jobs.List() // already sorted by (CreatedAt, ID)
	out := make([]jobInfo, 0, len(metas))
	next := ""
	for _, m := range metas {
		if !afterAt.IsZero() {
			if m.CreatedAt.Before(afterAt) || (m.CreatedAt.Equal(afterAt) && m.ID <= afterID) {
				continue
			}
		}
		if limit > 0 && len(out) == limit {
			next = encodeJobCursor(out[len(out)-1].CreatedAt, out[len(out)-1].ID)
			break
		}
		out = append(out, wireJob(m))
	}
	writeJSON(w, http.StatusOK, jobListPayload{Jobs: out, Next: next})
}

// encodeJobCursor renders a job's sort key as an opaque-ish cursor:
// "<created-at unix nanos>~<id>".
func encodeJobCursor(at time.Time, id string) string {
	return strconv.FormatInt(at.UnixNano(), 10) + "~" + id
}

func decodeJobCursor(s string) (time.Time, string, error) {
	at, id, ok := strings.Cut(s, "~")
	if !ok {
		return time.Time{}, "", fmt.Errorf("bad cursor %q", s)
	}
	ns, err := strconv.ParseInt(at, 10, 64)
	if err != nil {
		return time.Time{}, "", fmt.Errorf("bad cursor %q", s)
	}
	return time.Unix(0, ns).UTC(), id, nil
}

func (a *api) handleJobGet(w http.ResponseWriter, r *http.Request) {
	meta, ok := a.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, jobs.ErrNotFound)
		return
	}
	rows, err := a.jobs.Rows(meta.ID)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, jobPayload{Job: wireJob(meta), Rows: rows})
}

func (a *api) handleJobResult(w http.ResponseWriter, r *http.Request) {
	meta, ok := a.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, jobs.ErrNotFound)
		return
	}
	if meta.State != jobs.StateSucceeded {
		writeError(w, http.StatusConflict,
			fmt.Errorf("job %s has no result yet (state %s)", meta.ID, meta.State))
		return
	}
	rows, err := a.jobs.Rows(meta.ID)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, jobPayload{Job: wireJob(meta), Rows: rows})
	case "csv":
		if meta.Spec.Kind != jobs.CampaignKindName {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("format=csv applies to campaign jobs, not %q", meta.Spec.Kind))
			return
		}
		var cfg experiments.Config
		if err := json.Unmarshal(meta.Spec.Payload, &cfg); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		campaignRows, err := jobs.CampaignRows(rows)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		res := &experiments.Results{Config: cfg, Rows: campaignRows}
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		res.WriteCSV(w)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q", format))
	}
}

// jobEventsPayload answers GET /v1/jobs/{id}/events.
type jobEventsPayload struct {
	ID     string       `json:"id"`
	Events []jobs.Event `json:"events"`
}

// handleJobEvents serves the job's persisted timeline: queued, started,
// per-chunk dispatches (for sharded kinds), row checkpoints, finished —
// each stamped with the job's trace ID.
func (a *api) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	events, err := a.jobs.Events(id)
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		writeError(w, http.StatusNotFound, err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	default:
		if events == nil {
			events = []jobs.Event{}
		}
		writeJSON(w, http.StatusOK, jobEventsPayload{ID: id, Events: events})
	}
}

// handleJobDelete cancels a live job (queued or running — the record
// stays, reaching the canceled state) and deletes the record of a
// finished one. The decision is made atomically by the manager, so a
// job that finishes concurrently with the DELETE is deleted coherently
// instead of answering a confusing "already finished" conflict.
func (a *api) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	meta, deleted, err := a.jobs.CancelOrDelete(id)
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		writeError(w, http.StatusNotFound, err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	case deleted:
		writeJSON(w, http.StatusOK, map[string]any{"deleted": true, "id": id})
	default:
		writeJSON(w, http.StatusAccepted, jobPayload{Job: wireJob(meta)})
	}
}
