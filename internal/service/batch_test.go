package service

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/heuristics"
)

// batchBase builds a base instance plus n request-vector variations of
// its topology.
func batchBase(t *testing.T, n int) (*core.Instance, []BatchVariation) {
	t.Helper()
	in := gen.Instance(gen.Config{Internal: 12, Clients: 24, Lambda: 0.4, UnitCosts: true}, 5)
	vars := make([]BatchVariation, n)
	for i := range vars {
		r := append([]int64(nil), in.R...)
		for _, c := range in.Tree.Clients() {
			r[c] = r[c] + int64(i%3) // three distinct demand profiles
		}
		vars[i] = BatchVariation{R: r}
	}
	return in, vars
}

func TestSolveBatchMatchesSingleSolves(t *testing.T) {
	e := newTestEngine(t, EngineOptions{Workers: 4})
	in, vars := batchBase(t, 9)

	var mu sync.Mutex
	got := map[int]*Response{}
	err := e.SolveBatch(context.Background(), BatchRequest{
		Base: in, Solver: "mb", Variations: vars,
	}, func(item BatchItem) {
		if item.Err != nil {
			t.Errorf("variation %d: %v", item.Index, item.Err)
			return
		}
		mu.Lock()
		got[item.Index] = item.Response
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("SolveBatch: %v", err)
	}
	if len(got) != len(vars) {
		t.Fatalf("delivered %d of %d items", len(got), len(vars))
	}
	for i, v := range vars {
		single, err := e.Solve(context.Background(), Request{
			Instance: v.instance(in), Solver: "mb",
			Options: Options{NoCache: true},
		})
		if err != nil {
			t.Fatalf("single solve %d: %v", i, err)
		}
		if got[i].Cost != single.Cost || got[i].ReplicaCount != single.ReplicaCount {
			t.Errorf("variation %d: batch cost %d/%d, single %d/%d",
				i, got[i].Cost, got[i].ReplicaCount, single.Cost, single.ReplicaCount)
		}
	}
}

func TestSolveBatchValidation(t *testing.T) {
	e := newTestEngine(t, EngineOptions{Workers: 2})
	in, vars := batchBase(t, 2)
	ctx := context.Background()

	if err := e.SolveBatch(ctx, BatchRequest{Solver: "mb", Variations: vars}, nil); err == nil {
		t.Error("want error for missing base")
	}
	if err := e.SolveBatch(ctx, BatchRequest{Base: in, Solver: "mb"}, nil); err == nil {
		t.Error("want error for no variations")
	}
	if err := e.SolveBatch(ctx, BatchRequest{Base: in, Solver: "nope", Variations: vars}, nil); err == nil {
		t.Error("want error for unknown solver")
	}
	// A malformed variation fails as an item, not as the batch.
	bad := []BatchVariation{{R: []int64{1}}}
	var items []BatchItem
	err := e.SolveBatch(ctx, BatchRequest{Base: in, Solver: "mb", Variations: bad},
		func(item BatchItem) { items = append(items, item) })
	if err != nil {
		t.Fatalf("SolveBatch: %v", err)
	}
	if len(items) != 1 || items[0].Err == nil {
		t.Fatalf("items = %+v, want one failed item", items)
	}
}

func TestInternTreeReuses(t *testing.T) {
	e := newTestEngine(t, EngineOptions{Workers: 1})
	in := gen.Instance(gen.Config{Internal: 8, Clients: 16, Lambda: 0.3, UnitCosts: true}, 7)
	parents, flags := in.Tree.Parents(), in.Tree.ClientFlags()

	t1, err := e.InternTree(parents, flags)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := e.InternTree(parents, flags)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Error("same shape interned to different trees")
	}
	st := e.Stats()
	if st.TreeCacheHits != 1 || st.TreeCacheMisses != 1 || st.TreeCacheEntries != 1 {
		t.Errorf("tree cache stats = %d hits / %d misses / %d entries, want 1/1/1",
			st.TreeCacheHits, st.TreeCacheMisses, st.TreeCacheEntries)
	}
	if _, err := e.InternTree([]int{0, 0}, []bool{false, true}); err == nil {
		t.Error("want error for invalid shape (self-parent)")
	}
}

func TestPerSolverCacheStats(t *testing.T) {
	e := newTestEngine(t, EngineOptions{Workers: 2})
	in := gen.Instance(gen.Config{Internal: 8, Clients: 16, Lambda: 0.3, UnitCosts: true}, 11)
	ctx := context.Background()
	req := Request{Instance: in, Solver: "MG"}
	if _, err := e.Solve(ctx, req); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Solve(ctx, req); err != nil {
		t.Fatal(err)
	}
	st := e.SolverCacheStats("mg")
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("mg cache stats = %+v, want 1 miss, 1 hit", st)
	}
	if other := e.SolverCacheStats("mb"); other != (SolverCacheStats{}) {
		t.Errorf("mb cache stats = %+v, want zero", other)
	}
	if got := e.Stats().PerSolver["mg"]; got != st {
		t.Errorf("Stats().PerSolver[mg] = %+v, want %+v", got, st)
	}
}

func TestHTTPBatchStreams(t *testing.T) {
	srv, e := newTestServer(t)
	in, vars := batchBase(t, 6)

	body := map[string]any{
		"topology": map[string]any{
			"parents":   in.Tree.Parents(),
			"is_client": in.Tree.ClientFlags(),
		},
		"solver":     "mb",
		"base":       map[string]any{"requests": in.R, "capacities": in.W, "storage_costs": in.S},
		"variations": vars,
	}
	resp := postJSON(t, srv.URL+"/v1/batch", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Errorf("content type %q", ct)
	}
	seen := map[int]bool{}
	done := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line struct {
			Index int    `json:"index"`
			Cost  int64  `json:"cost"`
			Error string `json:"error"`
			Done  bool   `json:"done"`
			Items int    `json:"items"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if line.Done {
			done = true
			if line.Items != len(vars) {
				t.Errorf("done.items = %d, want %d", line.Items, len(vars))
			}
			break
		}
		if line.Error != "" {
			t.Errorf("variation %d failed: %s", line.Index, line.Error)
		}
		seen[line.Index] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !done || len(seen) != len(vars) {
		t.Fatalf("stream: done=%v, %d/%d items", done, len(seen), len(vars))
	}
	// The batch interned its topology.
	if st := e.Stats(); st.TreeCacheEntries == 0 {
		t.Error("batch did not intern the topology")
	}
}

func TestHTTPBatchRejects(t *testing.T) {
	srv, _ := newTestServer(t)
	resp := postJSON(t, srv.URL+"/v1/batch", map[string]any{"solver": ""})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing solver: status %d", resp.StatusCode)
	}
	resp = postJSON(t, srv.URL+"/v1/batch", map[string]any{
		"solver":   "mb",
		"topology": map[string]any{"parents": []int{0}, "is_client": []bool{false}},
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad topology: status %d", resp.StatusCode)
	}
}

// TestWaiterSurvivesOwnerDeadline: a cancellation-aware backend surfaces
// the owner's context error when the owner's deadline dies mid-compute; a
// coalesced waiter with a healthier deadline must recompute under its own
// deadline instead of inheriting the owner's failure.
func TestWaiterSurvivesOwnerDeadline(t *testing.T) {
	var calls atomic.Int64
	r := new(Registry)
	if err := r.Register(Solver{
		Name: "ctx-aware", Policy: core.Multiple, Kind: "heuristic",
		Run: func(ctx context.Context, in *core.Instance, opt Options) (Result, error) {
			if calls.Add(1) == 1 {
				<-ctx.Done() // the owner's deadline dies mid-compute
				return Result{}, ctx.Err()
			}
			return solutionBackend(heuristics.MG)(ctx, in, opt)
		},
	}); err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, EngineOptions{Workers: 2, Registry: r})
	in := gen.Instance(gen.Config{Internal: 6, Clients: 12, Lambda: 0.3, UnitCosts: true}, 17)

	ownerDone := make(chan error, 1)
	go func() {
		_, err := e.Solve(context.Background(), Request{
			Instance: in, Solver: "ctx-aware",
			Options: Options{Timeout: 100 * time.Millisecond},
		})
		ownerDone <- err
	}()
	// Let the owner claim the entry and start computing before joining.
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	resp, err := e.Solve(context.Background(), Request{
		Instance: in, Solver: "ctx-aware",
		Options: Options{Timeout: 5 * time.Second},
	})
	if err != nil {
		t.Fatalf("waiter: %v", err)
	}
	if resp.NoSolution || resp.ReplicaCount == 0 {
		t.Fatalf("waiter got empty response %+v", resp)
	}
	if err := <-ownerDone; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("owner: err = %v, want DeadlineExceeded", err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("backend ran %d times, want 2 (owner + waiter recompute)", got)
	}
}
