package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/jobs"
)

// slowAppendStore delays each row append, widening the window in which
// a running job can be interrupted.
type slowAppendStore struct {
	jobs.Store
	delay time.Duration
}

func (s slowAppendStore) AppendRow(id string, row json.RawMessage) error {
	time.Sleep(s.delay)
	return s.Store.AppendRow(id, row)
}

func newJobsServer(t *testing.T, e *Engine, store jobs.Store) (*httptest.Server, *jobs.Manager) {
	t.Helper()
	m, err := jobs.NewManager(jobs.Options{Store: store, Workers: 1},
		jobs.CampaignKind(), BatchJobKind(e))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandlerOpts(e, HandlerOptions{Jobs: m}))
	return srv, m
}

func closeJobs(t *testing.T, m *jobs.Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatalf("closing manager: %v", err)
	}
}

func getJob(t *testing.T, url, id string) (jobInfo, []json.RawMessage) {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("GET job: status %d: %s", resp.StatusCode, body)
	}
	var jp jobPayload
	decodeBody(t, resp, &jp)
	return jp.Job, jp.Rows
}

func pollJob(t *testing.T, url, id string, done func(jobInfo, []json.RawMessage) bool) (jobInfo, []json.RawMessage) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		info, rows := getJob(t, url, id)
		if done(info, rows) {
			return info, rows
		}
		if info.State == string(jobs.StateFailed) {
			t.Fatalf("job failed: %s", info.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job never reached the polled condition")
	return jobInfo{}, nil
}

// TestHTTPJobsCampaignResumeAcrossRestart is the acceptance e2e: a
// campaign submitted via POST /v1/jobs over a file-backed store
// survives a simulated daemon restart (server + manager torn down, new
// ones opened over the same directory), resumes from its last completed
// λ, and serves a final result identical to an uninterrupted run.
func TestHTTPJobsCampaignResumeAcrossRestart(t *testing.T) {
	cfg := experiments.Config{
		Lambdas:        []float64{0.1, 0.3, 0.5, 0.7, 0.9},
		TreesPerLambda: 2,
		MinSize:        15,
		MaxSize:        25,
		Seed:           7,
		BoundNodes:     10,
	}
	direct, err := experiments.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	fs, err := jobs.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(EngineOptions{Workers: 4})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		e.Close(ctx)
	})

	// "Daemon" #1: slow row appends so the shutdown lands mid-campaign.
	srv1, m1 := newJobsServer(t, e, slowAppendStore{fs, 250 * time.Millisecond})
	resp := postJSON(t, srv1.URL+"/v1/jobs", map[string]any{"campaign": cfg})
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var submitted jobPayload
	decodeBody(t, resp, &submitted)
	id := submitted.Job.ID
	if id == "" || submitted.Job.Kind != "campaign" || submitted.Job.RowsTotal != len(cfg.Lambdas) {
		t.Fatalf("submitted = %+v", submitted.Job)
	}

	pollJob(t, srv1.URL, id, func(info jobInfo, rows []json.RawMessage) bool {
		return info.RowsDone >= 1
	})

	// Simulated restart: server down, manager checkpoints, new manager
	// and server over the same directory.
	srv1.Close()
	closeJobs(t, m1)
	stored, ok, err := fs.Get(id)
	if err != nil || !ok {
		t.Fatalf("job not in store after shutdown: ok=%v err=%v", ok, err)
	}
	if stored.State != jobs.StateInterrupted {
		t.Fatalf("state after shutdown = %s", stored.State)
	}
	checkpointed := stored.RowsDone
	if checkpointed < 1 || checkpointed >= len(cfg.Lambdas) {
		t.Fatalf("checkpointed %d rows, want a strict subset >= 1", checkpointed)
	}

	srv2, m2 := newJobsServer(t, e, fs)
	defer srv2.Close()
	defer closeJobs(t, m2)

	// The restarted daemon lists the job immediately.
	lresp, err := http.Get(srv2.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list jobListPayload
	decodeBody(t, lresp, &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != id {
		t.Fatalf("list after restart = %+v", list.Jobs)
	}

	final, rows := pollJob(t, srv2.URL, id, func(info jobInfo, rows []json.RawMessage) bool {
		return info.State == string(jobs.StateSucceeded)
	})
	if final.Resumes != 1 {
		t.Fatalf("resumes = %d, want 1", final.Resumes)
	}
	if final.Progress != 1 || final.RowsDone != len(cfg.Lambdas) || len(rows) != len(cfg.Lambdas) {
		t.Fatalf("final = %+v with %d rows", final, len(rows))
	}

	// The resumed rows must be exactly an uninterrupted run's rows.
	got, err := jobs.CampaignRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	directJSON, err := json.Marshal(direct.Rows)
	if err != nil {
		t.Fatal(err)
	}
	var want []experiments.Row
	if err := json.Unmarshal(directJSON, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed rows differ from uninterrupted run:\ngot  %+v\nwant %+v", got, want)
	}

	// Result endpoint: JSON and CSV, the latter matching WriteCSV of the
	// uninterrupted run.
	rresp, err := http.Get(srv2.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var result jobPayload
	decodeBody(t, rresp, &result)
	if len(result.Rows) != len(cfg.Lambdas) {
		t.Fatalf("result rows = %d", len(result.Rows))
	}

	cresp, err := http.Get(srv2.URL + "/v1/jobs/" + id + "/result?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	if ct := cresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
		t.Errorf("csv content type = %q", ct)
	}
	csv, err := io.ReadAll(cresp.Body)
	cresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var wantCSV strings.Builder
	if err := direct.WriteCSV(&wantCSV); err != nil {
		t.Fatal(err)
	}
	if string(csv) != wantCSV.String() {
		t.Fatalf("CSV differs from uninterrupted run:\ngot:\n%s\nwant:\n%s", csv, wantCSV.String())
	}

	// DELETE removes the finished job from manager and store.
	dreq, _ := http.NewRequest(http.MethodDelete, srv2.URL+"/v1/jobs/"+id, nil)
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", dresp.StatusCode)
	}
	if g, err := http.Get(srv2.URL + "/v1/jobs/" + id); err != nil {
		t.Fatal(err)
	} else {
		g.Body.Close()
		if g.StatusCode != http.StatusNotFound {
			t.Fatalf("deleted job still answers %d", g.StatusCode)
		}
	}
	if _, ok, _ := fs.Get(id); ok {
		t.Fatal("deleted job still on disk")
	}
}

// TestHTTPJobsBatch runs a batch-solve as an async job and checks the
// per-variation rows cover every index.
func TestHTTPJobsBatch(t *testing.T) {
	e := NewEngine(EngineOptions{Workers: 4})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		e.Close(ctx)
	})
	srv, m := newJobsServer(t, e, jobs.NewMemStore())
	defer srv.Close()
	defer closeJobs(t, m)

	in := gen.Instance(gen.Config{Internal: 6, Clients: 12, Lambda: 0.4, UnitCosts: true}, 3)
	variations := []map[string]any{{}, {"requests": bump(in.R, 1)}, {"requests": bump(in.R, 2)}}
	resp := postJSON(t, srv.URL+"/v1/jobs", map[string]any{
		"batch": map[string]any{
			"topology":   map[string]any{"parents": in.Tree.Parents(), "is_client": in.Tree.ClientFlags()},
			"solver":     "mb",
			"base":       map[string]any{"requests": in.R, "capacities": in.W, "storage_costs": in.S},
			"variations": variations,
		},
	})
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("submit batch: status %d: %s", resp.StatusCode, body)
	}
	var submitted jobPayload
	decodeBody(t, resp, &submitted)
	if submitted.Job.Kind != BatchKindName || submitted.Job.RowsTotal != len(variations) {
		t.Fatalf("submitted = %+v", submitted.Job)
	}

	_, rows := pollJob(t, srv.URL, submitted.Job.ID, func(info jobInfo, rows []json.RawMessage) bool {
		return info.State == string(jobs.StateSucceeded)
	})
	seen := map[int]bool{}
	for _, raw := range rows {
		var line BatchLine
		if err := json.Unmarshal(raw, &line); err != nil {
			t.Fatalf("bad row %s: %v", raw, err)
		}
		if line.Error != "" {
			t.Fatalf("variation %d failed: %s", line.Index, line.Error)
		}
		if line.Response == nil || line.Cost <= 0 {
			t.Fatalf("variation %d: %+v", line.Index, line.Response)
		}
		seen[line.Index] = true
	}
	if len(seen) != len(variations) {
		t.Fatalf("rows cover %d of %d variations", len(seen), len(variations))
	}
}

func bump(r []int64, by int64) []int64 {
	out := append([]int64(nil), r...)
	for i := range out {
		if out[i] > 0 {
			out[i] += by
		}
	}
	return out
}

func TestHTTPJobsSubmitErrors(t *testing.T) {
	e := NewEngine(EngineOptions{Workers: 1})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		e.Close(ctx)
	})
	srv, m := newJobsServer(t, e, jobs.NewMemStore())
	defer srv.Close()
	defer closeJobs(t, m)

	for name, body := range map[string]map[string]any{
		"empty":           {},
		"both payloads":   {"campaign": map[string]any{}, "batch": map[string]any{"solver": "mb"}},
		"unknown kind":    {"kind": "nope", "campaign": map[string]any{}},
		"kind no body":    {"kind": "campaign"},
		"bad config":      {"campaign": map[string]any{"Nope": 1}},
		"bad batch":       {"batch": map[string]any{"solver": "nope", "topology": map[string]any{"parents": []int{-1}, "is_client": []bool{false}}, "variations": []map[string]any{{}}}},
		"campaign resume": {"campaign": map[string]any{"StartRow": 3}},
	} {
		resp := postJSON(t, srv.URL+"/v1/jobs", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}

	// Unknown id paths.
	for _, path := range []string{"/v1/jobs/jnope", "/v1/jobs/jnope/result"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestHTTPJobsCancel(t *testing.T) {
	e := NewEngine(EngineOptions{Workers: 2})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		e.Close(ctx)
	})
	// Slow appends keep the campaign running long enough to cancel.
	srv, m := newJobsServer(t, e, slowAppendStore{jobs.NewMemStore(), 200 * time.Millisecond})
	defer srv.Close()
	defer closeJobs(t, m)

	resp := postJSON(t, srv.URL+"/v1/jobs", map[string]any{"campaign": map[string]any{
		"Lambdas": []float64{0.1, 0.3, 0.5, 0.7, 0.9}, "TreesPerLambda": 2,
		"MinSize": 15, "MaxSize": 25, "Seed": 3, "BoundNodes": 10,
	}})
	var submitted jobPayload
	decodeBody(t, resp, &submitted)
	id := submitted.Job.ID

	pollJob(t, srv.URL, id, func(info jobInfo, rows []json.RawMessage) bool {
		return info.State == string(jobs.StateRunning)
	})
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+id, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: status %d, want 202", dresp.StatusCode)
	}
	final, _ := pollJob(t, srv.URL, id, func(info jobInfo, rows []json.RawMessage) bool {
		return info.State == string(jobs.StateCanceled)
	})
	if final.FinishedAt.IsZero() {
		t.Fatalf("canceled job without FinishedAt: %+v", final)
	}

	// A fresh submission still runs: the worker was reclaimed.
	resp = postJSON(t, srv.URL+"/v1/jobs", map[string]any{"campaign": map[string]any{
		"Lambdas": []float64{0.2}, "TreesPerLambda": 1, "MinSize": 15, "MaxSize": 18,
		"Seed": 3, "BoundNodes": 5,
	}})
	var second jobPayload
	decodeBody(t, resp, &second)
	pollJob(t, srv.URL, second.Job.ID, func(info jobInfo, rows []json.RawMessage) bool {
		return info.State == string(jobs.StateSucceeded)
	})
}

func TestHTTPJobsDisabled(t *testing.T) {
	srv, _ := newTestServer(t) // NewHandler: no job manager
	for _, probe := range []struct{ method, path string }{
		{http.MethodPost, "/v1/jobs"},
		{http.MethodGet, "/v1/jobs"},
		{http.MethodGet, "/v1/jobs/j123"},
		{http.MethodDelete, "/v1/jobs/j123"},
	} {
		req, _ := http.NewRequest(probe.method, srv.URL+probe.path, strings.NewReader("{}"))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotImplemented {
			t.Errorf("%s %s: status %d, want 501", probe.method, probe.path, resp.StatusCode)
		}
	}
}

// TestHTTPCampaignSaturated: with every inline slot held, /v1/campaign
// sheds load with 503 + Retry-After instead of queueing, and recovers
// once a slot frees up.
func TestHTTPCampaignSaturated(t *testing.T) {
	e := NewEngine(EngineOptions{Workers: 2})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		e.Close(ctx)
	})
	a := newAPI(e, HandlerOptions{MaxInlineCampaigns: 1})
	srv := httptest.NewServer(a.routes())
	defer srv.Close()

	a.campaignSem <- struct{}{} // occupy the only slot
	body := map[string]any{"config": map[string]any{
		"Lambdas": []float64{0.2}, "TreesPerLambda": 1, "MinSize": 15, "MaxSize": 18,
		"Seed": 5, "BoundNodes": 5,
	}}
	resp := postJSON(t, srv.URL+"/v1/campaign", body)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated campaign: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != fmt.Sprint(campaignRetryAfter) {
		t.Fatalf("Retry-After = %q", ra)
	}

	<-a.campaignSem // free the slot
	resp = postJSON(t, srv.URL+"/v1/campaign", body)
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), `"done"`) {
		t.Fatalf("freed campaign: status %d body %s", resp.StatusCode, data)
	}
}

// TestHTTPJobListPagination: ?limit=&after= walks the listing in stable
// (CreatedAt, ID) order with a "next" cursor, covering every job exactly
// once, and stays coherent when the cursor job is deleted mid-walk.
func TestHTTPJobListPagination(t *testing.T) {
	e := NewEngine(EngineOptions{Workers: 2})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		e.Close(ctx)
	})
	srv, m := newJobsServer(t, e, jobs.NewMemStore())
	defer srv.Close()
	defer closeJobs(t, m)

	const n = 5
	var ids []string
	for i := 0; i < n; i++ {
		resp := postJSON(t, srv.URL+"/v1/jobs", map[string]any{"campaign": map[string]any{
			"Lambdas": []float64{0.2}, "TreesPerLambda": 1, "MinSize": 15, "MaxSize": 18,
			"Seed": int64(i + 1), "BoundNodes": 5,
		}})
		var submitted jobPayload
		decodeBody(t, resp, &submitted)
		ids = append(ids, submitted.Job.ID)
	}
	for _, id := range ids {
		pollJob(t, srv.URL, id, func(info jobInfo, rows []json.RawMessage) bool {
			return info.State == string(jobs.StateSucceeded)
		})
	}

	list := func(query string) jobListPayload {
		resp, err := http.Get(srv.URL + "/v1/jobs" + query)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			t.Fatalf("list %s: status %d: %s", query, resp.StatusCode, body)
		}
		var out jobListPayload
		decodeBody(t, resp, &out)
		return out
	}

	// No limit: everything, submission order, no cursor.
	full := list("")
	if len(full.Jobs) != n || full.Next != "" {
		t.Fatalf("unpaginated list = %d jobs, next %q", len(full.Jobs), full.Next)
	}
	for i, j := range full.Jobs {
		if j.ID != ids[i] {
			t.Fatalf("list order: position %d = %s, want %s", i, j.ID, ids[i])
		}
	}

	// Paged walk: 2 + 2 + 1, cursors in between, then exhausted.
	var walked []string
	page := list("?limit=2")
	for {
		for _, j := range page.Jobs {
			walked = append(walked, j.ID)
		}
		if page.Next == "" {
			break
		}
		if len(page.Jobs) != 2 {
			t.Fatalf("non-final page has %d jobs", len(page.Jobs))
		}
		page = list("?limit=2&after=" + page.Next)
	}
	if !reflect.DeepEqual(walked, ids) {
		t.Fatalf("paged walk = %v, want %v", walked, ids)
	}

	// Deleting the cursor job must not break the walk: the cursor
	// encodes the sort key, not the record.
	first := list("?limit=2")
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+first.Jobs[1].ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	rest := list("?limit=10&after=" + first.Next)
	if len(rest.Jobs) != n-2 || rest.Jobs[0].ID != ids[2] {
		t.Fatalf("walk after cursor deletion = %+v", rest.Jobs)
	}

	// Malformed paging parameters are rejected.
	for _, q := range []string{"?limit=-1", "?limit=x", "?after=bogus", "?after=12z~j1"} {
		resp, err := http.Get(srv.URL + "/v1/jobs" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}
