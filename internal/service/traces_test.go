package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/obs"
)

// tracedSolve posts one /v1/solve under the given trace ID.
func tracedSolve(t *testing.T, url, trace string) {
	t.Helper()
	data, err := json.Marshal(map[string]any{"instance": testInstance(t), "solver": "mb"})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/solve", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, trace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: status %d", resp.StatusCode)
	}
}

// getTrace polls GET /v1/traces/{id} until the root http.request span
// lands (the middleware ends it a hair after the response body).
func getTrace(t *testing.T, url, trace string) tracePayload {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url + "/v1/traces/" + trace)
		if err != nil {
			t.Fatal(err)
		}
		var tree tracePayload
		ok := resp.StatusCode == http.StatusOK
		if ok {
			if err := json.NewDecoder(resp.Body).Decode(&tree); err != nil {
				t.Fatal(err)
			}
		} else {
			io.Copy(io.Discard, resp.Body)
		}
		resp.Body.Close()
		if ok && len(tree.Roots) > 0 && tree.Roots[0].Span.Name == "http.request" {
			return tree
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never assembled (last status ok=%v, roots=%d)", trace, ok, len(tree.Roots))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// TestTraceHTTPEndpoints covers the trace query surface: 501 without a
// flight recorder, 400/404 contracts, the assembled tree for a sampled
// request, and the /debug/traces filters.
func TestTraceHTTPEndpoints(t *testing.T) {
	e := newTestEngine(t, EngineOptions{Workers: 2})

	// No flight recorder: the endpoints exist but answer 501.
	bare := httptest.NewServer(NewHandler(e))
	defer bare.Close()
	for _, path := range []string{"/v1/traces/some-id", "/debug/traces"} {
		if code := getStatus(t, bare.URL+path); code != http.StatusNotImplemented {
			t.Fatalf("GET %s without tracing: status %d, want 501", path, code)
		}
	}

	spans := obs.NewSpanStore(512)
	srv := httptest.NewServer(NewHandlerOpts(e, HandlerOptions{Spans: spans}))
	defer srv.Close()

	const trace = "endpoint-trace-01"
	tracedSolve(t, srv.URL, trace)

	tree := getTrace(t, srv.URL, trace)
	if tree.TraceID != trace {
		t.Fatalf("trace_id = %q, want %q", tree.TraceID, trace)
	}
	if len(tree.Roots) != 1 {
		t.Fatalf("%d roots, want 1 (every span parents into http.request)", len(tree.Roots))
	}
	names := map[string]int{}
	var walk func(n traceNode)
	walk = func(n traceNode) {
		names[n.Span.Name]++
		if n.Span.TraceID != trace {
			t.Fatalf("span %s trace = %q", n.Span.Name, n.Span.TraceID)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range tree.Roots {
		walk(r)
	}
	if names["engine.solve"] != 1 || names["engine.queue_wait"] != 1 {
		t.Fatalf("span names = %v, want engine.solve and engine.queue_wait under the root", names)
	}

	// Contract errors: malformed ID, unknown ID.
	if code := getStatus(t, srv.URL+"/v1/traces/bad%20id"); code != http.StatusBadRequest {
		t.Fatalf("malformed trace id: status %d, want 400", code)
	}
	if code := getStatus(t, srv.URL+"/v1/traces/nosuchtrace"); code != http.StatusNotFound {
		t.Fatalf("unknown trace id: status %d, want 404", code)
	}

	// The index lists the trace; the filters can hide it.
	var list struct {
		Traces      []obs.TraceSummary `json:"traces"`
		SpansAdded  uint64             `json:"spans_added"`
		SpansDroppd uint64             `json:"spans_dropped"`
	}
	listWith := func(query string) int {
		t.Helper()
		resp, err := http.Get(srv.URL + "/debug/traces" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /debug/traces%s: status %d", query, resp.StatusCode)
		}
		list.Traces = nil
		if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
			t.Fatal(err)
		}
		hits := 0
		for _, tr := range list.Traces {
			if tr.TraceID == trace {
				hits++
				if tr.Name != "http.request" {
					t.Fatalf("summary name = %q, want the root span name", tr.Name)
				}
			}
		}
		return hits
	}
	if got := listWith(""); got != 1 {
		t.Fatalf("unfiltered list shows the trace %d times, want 1", got)
	}
	if list.SpansAdded == 0 {
		t.Fatal("spans_added = 0 after a recorded trace")
	}
	if got := listWith("?name=http.request"); got != 1 {
		t.Fatalf("name=http.request filter hid the trace (hits %d)", got)
	}
	if got := listWith("?name=no.such.span"); got != 0 {
		t.Fatalf("name filter passed a non-matching trace (%d hits)", got)
	}
	if got := listWith("?min_ms=60000"); got != 0 {
		t.Fatalf("min_ms=60000 kept a sub-minute trace (%d hits)", got)
	}
	for _, q := range []string{"?min_ms=abc", "?min_ms=-1", "?limit=0", "?limit=x"} {
		if code := getStatus(t, srv.URL+"/debug/traces"+q); code != http.StatusBadRequest {
			t.Fatalf("GET /debug/traces%s: status %d, want 400", q, code)
		}
	}
}

// TestSlowRequestAlwaysTraced: with sampling effectively off, a request
// slower than -slow-request still lands in the flight recorder — as a
// synthetic root span — and survives ring pressure via the retained
// ring.
func TestSlowRequestAlwaysTraced(t *testing.T) {
	e := newTestEngine(t, EngineOptions{Workers: 2})
	spans := obs.NewSpanStore(64)
	srv := httptest.NewServer(NewHandlerOpts(e, HandlerOptions{
		Spans:       spans,
		TraceSample: -1, // never sample
		SlowRequest: time.Nanosecond,
	}))
	defer srv.Close()

	const trace = "slow-req-trace"
	tracedSolve(t, srv.URL, trace)

	tree := getTrace(t, srv.URL, trace)
	if len(tree.Roots) != 1 || tree.Spans != 1 {
		t.Fatalf("slow unsampled request recorded %d spans in %d roots, want the 1 synthetic root",
			tree.Spans, len(tree.Roots))
	}
	root := tree.Roots[0].Span
	if root.Duration <= 0 {
		t.Fatal("synthetic root span carries no duration")
	}
}

// TestSolveCacheHitSpanZeroAlloc pins the observability tax on the
// hottest path: a cache-hit Solve under a recording trace context must
// allocate nothing beyond what the untraced hit already does.
func TestSolveCacheHitSpanZeroAlloc(t *testing.T) {
	e := newTestEngine(t, EngineOptions{Workers: 2})
	req := Request{Instance: testInstance(t), Solver: "mb"}
	if _, err := e.Solve(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	resp, err := e.Solve(context.Background(), req)
	if err != nil || !resp.Cached {
		t.Fatalf("second solve not a cache hit (err %v, cached %v)", err, resp != nil && resp.Cached)
	}

	base := testing.AllocsPerRun(500, func() {
		if _, err := e.Solve(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	})
	store := obs.NewSpanStore(4096)
	ctx := obs.WithSpans(obs.WithTrace(context.Background(), "alloc-pin"), store)
	traced := testing.AllocsPerRun(500, func() {
		if _, err := e.Solve(ctx, req); err != nil {
			t.Fatal(err)
		}
	})
	if traced > base {
		t.Fatalf("cache-hit allocs grew from %.1f to %.1f under tracing; the span fast path must be alloc-free", base, traced)
	}
}
