package service

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"repro/internal/obs"
)

// coordinatorShardLabel is the `shard` label value stamped on the
// coordinator's own series in the federated exposition. Shard base
// URLs always contain "://", so the value cannot collide with a real
// member address.
const coordinatorShardLabel = "coordinator"

// handleFederate serves GET /v1/cluster/metrics: one merged Prometheus
// exposition covering the coordinator and every live shard, each series
// carrying a `shard` label naming its source. The shard expositions
// come from the pool's probe-loop scrape cache (strictly validated at
// scrape time), so this endpoint does no fan-out I/O of its own — one
// external scrape of a coordinator covers the whole elastic cluster at
// cache freshness, and stale or departed shards age out of the merge
// with the membership.
func (a *api) handleFederate(w http.ResponseWriter, r *http.Request) {
	fed, ok := a.cluster.(MetricsFederator)
	if !ok {
		writeError(w, http.StatusNotImplemented,
			errors.New("this daemon federates no shard metrics; start it as a coordinator (-shards, -shards-file or -coordinator)"))
		return
	}

	// The coordinator's own exposition joins the merge through the same
	// parser the shard scrapes went through, so every source is shaped
	// identically.
	var local bytes.Buffer
	a.renderMetrics(&local)
	localFams, err := obs.ParseExposition(&local)
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("local exposition invalid: %w", err))
		return
	}

	shards := fed.FederatedExpositions()
	sort.Slice(shards, func(i, j int) bool { return shards[i].Addr < shards[j].Addr })

	// Freshness of each federated source, synthesized into the local
	// family set: it guarantees at least one series per live shard in
	// the merge (obscheck federate counts these) and tells the scraper
	// how old each shard's numbers are.
	if len(shards) > 0 {
		age := &obs.Family{
			Name: "rp_federation_shard_age_seconds",
			Help: "Age of the shard's last validated /metrics scrape in the federation cache.",
			Type: "gauge",
		}
		for _, se := range shards {
			age.Samples = append(age.Samples, obs.Sample{
				Name:   age.Name,
				Labels: map[string]string{"shard": se.Addr},
				Value:  se.Age.Seconds(),
			})
		}
		localFams[age.Name] = age
	}

	type fedSource struct {
		label string
		fams  map[string]*obs.Family
	}
	sources := make([]fedSource, 0, 1+len(shards))
	sources = append(sources, fedSource{coordinatorShardLabel, localFams})
	for _, se := range shards {
		sources = append(sources, fedSource{se.Addr, se.Families})
	}

	// Family order is the sorted union of names; HELP/TYPE come from the
	// first source holding the family (the coordinator wins ties). A
	// source whose family re-declares the name at a different type is
	// skipped for that family — merging a counter into a histogram
	// would corrupt both.
	names := map[string]bool{}
	for _, src := range sources {
		for name := range src.fams {
			names[name] = true
		}
	}
	ordered := make([]string, 0, len(names))
	for name := range names {
		ordered = append(ordered, name)
	}
	sort.Strings(ordered)

	var buf bytes.Buffer
	p := promWriter{&buf}
	for _, name := range ordered {
		var typ, help string
		for _, src := range sources {
			if f := src.fams[name]; f != nil {
				typ, help = f.Type, f.Help
				break
			}
		}
		p.family(name, typ, help)
		for _, src := range sources {
			f := src.fams[name]
			if f == nil {
				continue
			}
			if f.Type != typ {
				a.log.Debug("federation: family type conflict; source skipped",
					"family", name, "shard", src.label, "type", f.Type, "want", typ)
				continue
			}
			local := src.label == coordinatorShardLabel
			for _, s := range f.Samples {
				writeFederatedSample(p, s, src.label, local)
			}
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}

// writeFederatedSample re-renders one parsed sample with the federation
// `shard` label applied. Coordinator-local series keep a shard label
// they already carry (the rp_cluster_shard_* families attribute a shard
// themselves); every other local series gains shard="coordinator". A
// federated series always gets shard=<source addr> — if it already had
// a shard label (a tiered coordinator scraped as a shard), the original
// moves to origin_shard so no two sources can collide on one series.
func writeFederatedSample(p promWriter, s obs.Sample, source string, local bool) {
	labels := make(map[string]string, len(s.Labels)+1)
	for k, v := range s.Labels {
		labels[k] = v
	}
	if local {
		if _, ok := labels["shard"]; !ok {
			labels["shard"] = coordinatorShardLabel
		}
	} else {
		if prev, ok := labels["shard"]; ok {
			labels["origin_shard"] = prev
		}
		labels["shard"] = source
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var lb bytes.Buffer
	for i, k := range keys {
		if i > 0 {
			lb.WriteByte(',')
		}
		lb.WriteString(k)
		lb.WriteString(`="`)
		lb.WriteString(labelEscaper.Replace(labels[k]))
		lb.WriteByte('"')
	}
	p.buf.WriteString(s.Name)
	p.buf.WriteByte('{')
	p.buf.Write(lb.Bytes())
	p.buf.WriteByte('}')
	p.buf.WriteByte(' ')
	p.buf.WriteString(strconv.FormatFloat(s.Value, 'g', -1, 64))
	p.buf.WriteByte('\n')
}
