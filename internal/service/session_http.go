package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/session"
	"repro/internal/tree"
)

// SessionResolver adapts the solver registry for placement sessions: it
// resolves names the same way /v1/solve does (family fallback included)
// and rejects backends that cannot hold a session. The subtree-local
// heuristics MG and CBU get their memoized incremental engines; every
// other solution backend re-solves cold on each delta.
func SessionResolver(reg *Registry) session.ResolveFunc {
	return func(name string, policy core.Policy) (session.Solver, error) {
		s, ok := reg.Resolve(name, policy)
		if !ok {
			return session.Solver{}, &ErrUnknownSolver{Name: name}
		}
		if s.IsBound() {
			return session.Solver{}, fmt.Errorf("solver %q computes bounds, not placements; sessions need a solution solver", s.Name)
		}
		if s.Kind == "multiobject" {
			return session.Solver{}, fmt.Errorf("solver %q is multi-object; sessions hold single-object instances", s.Name)
		}
		kind := session.IncrementalNone
		switch s.Name {
		case "mg":
			kind = session.IncrementalMG
		case "cbu":
			kind = session.IncrementalCBU
		}
		run := s.Run
		return session.Solver{
			Name:        s.Name,
			Policy:      s.Policy,
			Incremental: kind,
			Solve: func(ctx context.Context, in *core.Instance) (*core.Solution, bool, error) {
				res, err := run(ctx, in, Options{})
				if err != nil {
					return nil, false, err
				}
				return res.Solution, res.NoSolution, nil
			},
		}, nil
	}
}

func (a *api) registerSessionRoutes(mux *http.ServeMux) {
	if a.sessions == nil {
		disabled := func(w http.ResponseWriter, r *http.Request) {
			writeError(w, http.StatusNotImplemented, errors.New(
				"placement sessions are disabled; start rpserve with -sessions (or build the handler with HandlerOptions.Sessions)"))
		}
		mux.HandleFunc("/v1/instances", disabled)
		mux.HandleFunc("/v1/instances/", disabled)
		return
	}
	mux.HandleFunc("POST /v1/instances", a.handleInstanceCreate)
	mux.HandleFunc("GET /v1/instances", a.handleInstanceList)
	mux.HandleFunc("GET /v1/instances/{id}", a.handleInstanceGet)
	mux.HandleFunc("PATCH /v1/instances/{id}", a.handleInstancePatch)
	mux.HandleFunc("DELETE /v1/instances/{id}", a.handleInstanceDelete)
	mux.HandleFunc("GET /v1/instances/{id}/watch", a.handleInstanceWatch)
}

// sessionError maps the session package's sentinels to HTTP statuses.
// Server-side solve failures (backend faults, solve timeouts) are 5xx;
// anything unmapped is a 400 (the remaining failure modes are bad input:
// unknown solver, invalid instance, malformed ops).
func sessionError(w http.ResponseWriter, err error) {
	var unknown *ErrUnknownSolver
	switch {
	case errors.As(err, &unknown):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, session.ErrNotFound), errors.Is(err, session.ErrClosed):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, session.ErrStaleRev):
		writeError(w, http.StatusConflict, err)
	case errors.Is(err, session.ErrFutureRev):
		writeError(w, http.StatusBadRequest, err)
	case errors.Is(err, session.ErrTooManySessions):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, session.ErrSolverFault):
		writeError(w, http.StatusInternalServerError, err)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		// The solve timed out or the request died mid-solve: the session
		// rolled back, but the failure is not the client's input.
		writeError(w, http.StatusGatewayTimeout, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

// instanceCreateRequest is the one-shot POST /v1/instances body.
type instanceCreateRequest struct {
	Instance *core.Instance `json:"instance"`
	Solver   string         `json:"solver"`
	Policy   string         `json:"policy"`
}

// instancePayload answers the instance read endpoints.
type instancePayload struct {
	session.Status
	Replicas []int          `json:"replicas,omitempty"`
	Solution *core.Solution `json:"solution,omitempty"`
	Instance *core.Instance `json:"instance,omitempty"`
}

// instanceListPayload answers GET /v1/instances.
type instanceListPayload struct {
	Instances []session.Status `json:"instances"`
}

// ndjsonHeader is the first line of a streaming (NDJSON) create.
type ndjsonHeader struct {
	Solver string `json:"solver"`
	Policy string `json:"policy"`
}

// ndjsonVertex is every following line of a streaming create: one vertex
// in id order (the root first, parents before children).
type ndjsonVertex struct {
	Kind      string `json:"kind"` // "node" or "client"
	Parent    int    `json:"parent"`
	Capacity  int64  `json:"capacity"`          // nodes
	Storage   *int64 `json:"storage,omitempty"` // nodes; defaults to capacity
	Rate      int64  `json:"rate"`              // clients
	QoS       *int   `json:"qos,omitempty"`
	Comm      *int64 `json:"comm,omitempty"`
	Bandwidth *int64 `json:"bandwidth,omitempty"`
}

func parsePolicyOr(name string, def core.Policy) (core.Policy, error) {
	if name == "" {
		return def, nil
	}
	p, ok := core.ParsePolicy(name)
	if !ok {
		return def, fmt.Errorf("unknown policy %q", name)
	}
	return p, nil
}

func (a *api) handleInstanceCreate(w http.ResponseWriter, r *http.Request) {
	ct := r.Header.Get("Content-Type")
	var (
		in     *core.Instance
		solver string
		policy core.Policy
		err    error
	)
	if strings.Contains(ct, "ndjson") {
		in, solver, policy, err = decodeInstanceStream(r.Body)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	} else {
		var req instanceCreateRequest
		if err := decodeJSON(r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if req.Instance == nil {
			writeError(w, http.StatusBadRequest, errors.New("missing instance"))
			return
		}
		in = req.Instance
		solver = req.Solver
		if policy, err = parsePolicyOr(req.Policy, core.Multiple); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	if solver == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing solver"))
		return
	}
	s, err := a.sessions.Create(r.Context(), in, solver, policy)
	if err != nil {
		sessionError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, instancePayload{Status: s.Status(), Replicas: s.Replicas()})
}

// decodeInstanceStream reads the NDJSON create format: a header line
// naming the solver and policy, then one line per vertex in id order.
// Vertices arrive parents-first (the root carries parent -1), so a
// million-leaf tree streams through a few fixed slices without an
// in-memory JSON document.
func decodeInstanceStream(body io.ReadCloser) (*core.Instance, string, core.Policy, error) {
	dec := json.NewDecoder(http.MaxBytesReader(nil, body, 1<<30))
	var hdr ndjsonHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, "", 0, fmt.Errorf("stream header: %w", err)
	}
	policy, err := parsePolicyOr(hdr.Policy, core.Multiple)
	if err != nil {
		return nil, "", 0, err
	}

	var (
		parents  []int
		isClient []bool
		rates    []int64
		caps     []int64
		storage  []int64
		qos      []int
		comm     []int64
		bw       []int64
		hasQoS   bool
		hasComm  bool
		hasBW    bool
	)
	for {
		var v ndjsonVertex
		if err := dec.Decode(&v); err == io.EOF {
			break
		} else if err != nil {
			return nil, "", 0, fmt.Errorf("stream vertex %d: %w", len(parents), err)
		}
		id := len(parents)
		switch {
		case id == 0 && v.Parent != -1:
			return nil, "", 0, errors.New("stream vertex 0 must be the root (parent -1)")
		case id > 0 && (v.Parent < 0 || v.Parent >= id):
			return nil, "", 0, fmt.Errorf("stream vertex %d: parent %d not yet defined (vertices must arrive parents-first)", id, v.Parent)
		case id > 0 && isClient[v.Parent]:
			return nil, "", 0, fmt.Errorf("stream vertex %d: parent %d is a client", id, v.Parent)
		}
		switch v.Kind {
		case "node":
			isClient = append(isClient, false)
			rates = append(rates, 0)
			caps = append(caps, v.Capacity)
			if v.Storage != nil {
				storage = append(storage, *v.Storage)
			} else {
				storage = append(storage, v.Capacity)
			}
		case "client":
			if id == 0 {
				return nil, "", 0, errors.New("stream vertex 0 (the root) cannot be a client")
			}
			isClient = append(isClient, true)
			rates = append(rates, v.Rate)
			caps = append(caps, 0)
			storage = append(storage, 0)
		default:
			return nil, "", 0, fmt.Errorf("stream vertex %d: kind %q (want \"node\" or \"client\")", id, v.Kind)
		}
		parents = append(parents, v.Parent)
		qos = append(qos, core.NoQoS)
		comm = append(comm, 1)
		bw = append(bw, core.NoBandwidth)
		if v.QoS != nil {
			qos[id] = *v.QoS
			hasQoS = true
		}
		if v.Comm != nil {
			comm[id] = *v.Comm
			hasComm = true
		}
		if v.Bandwidth != nil {
			bw[id] = *v.Bandwidth
			hasBW = true
		}
	}
	if len(parents) == 0 {
		return nil, "", 0, errors.New("stream carries no vertices")
	}
	t, err := tree.FromParents(parents, isClient)
	if err != nil {
		return nil, "", 0, err
	}
	in := &core.Instance{Tree: t, R: rates, W: caps, S: storage}
	if hasQoS {
		in.Q = qos
	}
	if hasComm {
		in.Comm = comm
	}
	if hasBW {
		in.BW = bw
	}
	return in, hdr.Solver, policy, nil
}

func (a *api) handleInstanceList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, instanceListPayload{Instances: a.sessions.List()})
}

func (a *api) handleInstanceGet(w http.ResponseWriter, r *http.Request) {
	s, err := a.sessions.Get(r.PathValue("id"))
	if err != nil {
		sessionError(w, err)
		return
	}
	out := instancePayload{Status: s.Status(), Replicas: s.Replicas()}
	q := r.URL.Query()
	if q.Get("include_solution") != "" {
		if sol, ok := s.Solution(); ok {
			out.Solution = sol
		}
	}
	if q.Get("include_instance") != "" {
		out.Instance = s.InstanceCopy()
	}
	writeJSON(w, http.StatusOK, out)
}

// patchRequest is the PATCH /v1/instances/{id} body: a batch of typed
// delta ops applied atomically under one revision bump.
type patchRequest struct {
	Ops []session.Op `json:"ops"`
}

func (a *api) handleInstancePatch(w http.ResponseWriter, r *http.Request) {
	s, err := a.sessions.Get(r.PathValue("id"))
	if err != nil {
		sessionError(w, err)
		return
	}
	var req patchRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.Apply(r.Context(), req.Ops)
	if err != nil {
		sessionError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (a *api) handleInstanceDelete(w http.ResponseWriter, r *http.Request) {
	if err := a.sessions.Delete(r.PathValue("id")); err != nil {
		sessionError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (a *api) handleInstanceWatch(w http.ResponseWriter, r *http.Request) {
	s, err := a.sessions.Get(r.PathValue("id"))
	if err != nil {
		sessionError(w, err)
		return
	}
	var fromRev uint64
	haveFrom := false
	if raw := r.URL.Query().Get("from_rev"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad from_rev %q: %w", raw, err))
			return
		}
		fromRev, haveFrom = v, true
	}

	// Entry errors (stale/future resume point) still have a clean status
	// line; once streaming starts they can only end the stream.
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	started := false
	err = s.Watch(r.Context(), fromRev, haveFrom, func(d session.Diff) error {
		started = true
		if err := enc.Encode(d); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	switch {
	case err == nil, started, errors.Is(err, context.Canceled):
		// Client went away or the instance closed mid-stream: the NDJSON
		// body just ends.
	default:
		sessionError(w, err)
	}
}
