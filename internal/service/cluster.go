package service

// ShardStat is one shard's snapshot as reported on /healthz and
// /metrics. The type lives here rather than in internal/cluster because
// the dependency points the other way: cluster implements the service
// Backend contract (and this one), while the HTTP layer stays ignorant
// of how shards are managed.
type ShardStat struct {
	// Addr is the shard's base URL.
	Addr string `json:"addr"`
	// State is the circuit-breaker position: "closed" (healthy),
	// "open" (failing, traffic suspended) or "half-open" (probing).
	State string `json:"state"`
	// Healthy is true when State is "closed".
	Healthy bool `json:"healthy"`
	// InFlight is the number of requests on the shard right now.
	InFlight int `json:"in_flight"`
	// Requests/Failures count attempts and transient failures against
	// this shard; Failovers counts requests that were re-run elsewhere
	// after failing here.
	Requests  uint64 `json:"requests"`
	Failures  uint64 `json:"failures"`
	Failovers uint64 `json:"failovers"`
}

// ClusterInfo is what the HTTP layer needs from a shard pool to report
// cluster health. *cluster.Pool implements it.
type ClusterInfo interface {
	ShardStats() []ShardStat
}
