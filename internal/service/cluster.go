package service

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// ShardStat is one shard's snapshot as reported on /healthz and
// /metrics. The type lives here rather than in internal/cluster because
// the dependency points the other way: cluster implements the service
// Backend contract (and this one), while the HTTP layer stays ignorant
// of how shards are managed.
type ShardStat struct {
	// Addr is the shard's base URL.
	Addr string `json:"addr"`
	// State is the circuit-breaker position: "closed" (healthy),
	// "open" (failing, traffic suspended) or "half-open" (probing).
	State string `json:"state"`
	// Healthy is true when State is "closed".
	Healthy bool `json:"healthy"`
	// Weight is the shard's placement weight (typically its solver
	// goroutine count, self-reported on /v1/worker/ping or set at
	// registration). The weighted picker hands out work proportionally.
	Weight int `json:"weight"`
	// InFlight is the number of requests on the shard right now.
	InFlight int `json:"in_flight"`
	// Requests/Failures count attempts and transient failures against
	// this shard; Failovers counts requests that were re-run elsewhere
	// after failing here.
	Requests  uint64 `json:"requests"`
	Failures  uint64 `json:"failures"`
	Failovers uint64 `json:"failovers"`
	// WireIdle is the number of idle pooled wire-transport connections
	// parked for this shard (rp_cluster_wire_idle_conns).
	WireIdle int `json:"wire_idle_conns"`
}

// ClusterStats are pool-level counters beyond the per-shard ones.
type ClusterStats struct {
	// Epoch increments on every membership change (join, leave, file
	// reload). Long-running jobs watch it to notice joins mid-run.
	Epoch uint64 `json:"epoch"`
	// BatchesRouted counts inline /v1/batch requests fanned out over
	// the shards; RowsRouted the variations computed remotely by them;
	// RowsLocalFallback the variations computed on the coordinator
	// because no shard could (breakers open, pool empty or drained).
	BatchesRouted     uint64 `json:"batches_routed"`
	RowsRouted        uint64 `json:"rows_routed"`
	RowsLocalFallback uint64 `json:"rows_local_fallback"`
	// BatchCacheShortCircuits counts routed-batch variations served from
	// the coordinator's caches (engine solution cache or the routed-row
	// cache) without a shard round trip.
	BatchCacheShortCircuits uint64 `json:"batch_cache_short_circuits"`
	// ShardsExpired counts file-/registration-origin members removed by
	// stale-shard expiry (PoolOptions.ExpireAfter missed probes).
	ShardsExpired uint64 `json:"shards_expired"`
	// WireConnections counts binary transport connections dialed;
	// WireRequests the batch chunks and campaign rows shipped over them;
	// WireRows the row frames relayed back; WireFallbacks the requests
	// that fell back to JSON/HTTP because a shard doesn't speak the wire
	// protocol (or the upgrade failed).
	WireConnections uint64 `json:"wire_connections"`
	WireRequests    uint64 `json:"wire_requests"`
	WireRows        uint64 `json:"wire_rows"`
	WireFallbacks   uint64 `json:"wire_fallbacks"`
}

// ClusterInfo is what the HTTP layer needs from a shard pool to report
// cluster health. *cluster.Pool implements it.
type ClusterInfo interface {
	ShardStats() []ShardStat
}

// ClusterMembership extends ClusterInfo with dynamic join/leave — the
// contract behind POST/DELETE /v1/cluster/shards. *cluster.Pool
// implements it; the HTTP layer answers 501 for pools that don't.
type ClusterMembership interface {
	ClusterInfo
	// AddShard joins (or, for a known address, re-weights) a shard.
	// weight <= 0 selects the default (1, refreshed by the next ping).
	// The bool reports whether the address was new.
	AddShard(addr string, weight int) (ShardStat, bool, error)
	// RemoveShard leaves a shard; in-flight requests on it finish (or
	// fail over) normally. The bool reports whether it was a member.
	RemoveShard(addr string) bool
	// Epoch is the current membership epoch.
	Epoch() uint64
}

// ClusterStatsProvider is implemented by pools that track pool-level
// counters for /healthz and /metrics.
type ClusterStatsProvider interface {
	ClusterStats() ClusterStats
}

// ClusterHistograms is a snapshot of a pool's latency distributions,
// rendered on /metrics as the rp_cluster_*_seconds histogram families.
type ClusterHistograms struct {
	// ShardRTT is the round-trip time of shard HTTP requests, per shard
	// base URL.
	ShardRTT map[string]obs.HistogramSnapshot
	// BatchChunk is the dispatch-to-response time of routed inline batch
	// chunks; ReorderWait the time completed lines sat in the reorder
	// buffer waiting for earlier indices before streaming to the client.
	BatchChunk  obs.HistogramSnapshot
	ReorderWait obs.HistogramSnapshot
}

// ClusterLatencies is implemented by pools that track latency
// histograms for /metrics.
type ClusterLatencies interface {
	ClusterHistograms() ClusterHistograms
}

// ShardExposition is one shard's last successfully scraped-and-parsed
// /metrics exposition, as cached by the pool's probe loop for the
// federated GET /v1/cluster/metrics view.
type ShardExposition struct {
	// Addr is the shard's base URL — the value of the `shard` label
	// stamped on every series federated from it.
	Addr string
	// Age is how old the scrape is.
	Age time.Duration
	// Families is the parsed exposition, keyed by family name.
	Families map[string]*obs.Family
}

// MetricsFederator is implemented by pools whose probe loop scrapes
// shard /metrics endpoints. FederatedExpositions returns the current
// per-shard caches, live members only, stale scrapes already aged out.
type MetricsFederator interface {
	FederatedExpositions() []ShardExposition
}

// BatchRouter is implemented by pools that can execute an inline
// /v1/batch request across their shards. The handler prefers it over
// the local engine whenever the daemon fronts a cluster; base and
// policy are the caller's already-validated req.Build(e) results (the
// handler needs them for its pre-stream status codes anyway, and the
// router must not pay for a second build). deliver is called with
// lines in request (index) order, and implementations fall back to
// computing on the engine locally for whatever the shards cannot take,
// so a coordinator with every worker down still answers.
type BatchRouter interface {
	RouteBatch(ctx context.Context, e *Engine, base *core.Instance, policy core.Policy, req *BatchPayload, deliver func(BatchLine) error) error
}
