package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"time"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/tree"
)

// BatchKindName is the jobs.Spec kind of large batch-solve jobs.
const BatchKindName = "batch"

// JobsOptions configures NewJobsManagerOpts.
type JobsOptions struct {
	// Dir selects the persistent file store (empty = in-memory; jobs
	// then die with the process).
	Dir string
	// Workers bounds concurrently running jobs.
	Workers int
	// RetainFor prunes finished jobs older than this age (0 = keep until
	// DELETE); see jobs.Options.RetainFor.
	RetainFor time.Duration
	// Kinds overrides the registered job kinds. Nil selects the local
	// pair — jobs.CampaignKind() and BatchJobKind(e). A cluster
	// coordinator passes its sharded kinds here instead.
	Kinds []jobs.Kind
	// Logger receives the manager's job lifecycle logs (nil discards).
	Logger *slog.Logger
	// Spans, when set, records a span per job run into the process
	// flight recorder; see jobs.Options.Spans.
	Spans *obs.SpanStore
	// Events, when set, records a job_failed event per job that reaches
	// a failed terminal state; see jobs.Options.Events.
	Events *obs.EventRing
}

// NewJobsManager wires the async job subsystem for an engine: a file
// store under dir (or an in-memory store when dir is empty — jobs then
// die with the process), the campaign kind, and the engine-backed batch
// kind. workers bounds concurrently running jobs.
func NewJobsManager(e *Engine, dir string, workers int) (*jobs.Manager, error) {
	return NewJobsManagerOpts(e, JobsOptions{Dir: dir, Workers: workers})
}

// NewJobsManagerOpts is NewJobsManager with retention and kind control.
func NewJobsManagerOpts(e *Engine, opts JobsOptions) (*jobs.Manager, error) {
	var store jobs.Store
	if opts.Dir != "" {
		fs, err := jobs.NewFileStore(opts.Dir)
		if err != nil {
			return nil, err
		}
		store = fs
	} else {
		store = jobs.NewMemStore()
	}
	kinds := opts.Kinds
	if kinds == nil {
		kinds = []jobs.Kind{jobs.CampaignKind(), BatchJobKind(e)}
	}
	return jobs.NewManager(jobs.Options{
		Store:     store,
		Workers:   opts.Workers,
		RetainFor: opts.RetainFor,
		Logger:    opts.Logger,
		Spans:     opts.Spans,
		Events:    opts.Events,
	}, kinds...)
}

// BatchJobKind executes /v1/batch-shaped payloads as async jobs: one
// persisted row per variation, in completion order. Rows carry the
// variation index, so the checkpoint is the set of already-solved
// indices — a resumed batch job re-submits only the missing ones.
// Deterministic per-variation failures (validation, proven
// infeasibility surfaces as a NoSolution response) are persisted as
// error rows, matching the inline /v1/batch semantics. Transient
// failures — per-solve deadline expiry under load, engine shutdown, or
// the job's own cancellation — are never checkpointed: their
// variations stay missing and the job finishes failed (or interrupted,
// on shutdown) with every completed row intact, so they are recomputed
// rather than frozen as permanent errors.
func BatchJobKind(e *Engine) jobs.Kind {
	return jobs.Kind{
		Name: BatchKindName,
		Prepare: func(payload json.RawMessage) (json.RawMessage, int, error) {
			req, err := DecodeBatchPayload(payload)
			if err != nil {
				return nil, 0, err
			}
			if _, _, err := req.Build(e); err != nil {
				return nil, 0, err
			}
			return payload, len(req.Variations), nil
		},
		Run: func(ctx context.Context, payload json.RawMessage, prior []json.RawMessage, sink func(json.RawMessage) error) error {
			req, err := DecodeBatchPayload(payload)
			if err != nil {
				return err
			}
			base, policy, err := req.Build(e)
			if err != nil {
				return err
			}
			done := make(map[int]bool, len(prior))
			for _, raw := range prior {
				var line BatchLine
				if err := json.Unmarshal(raw, &line); err != nil {
					return fmt.Errorf("service: corrupt batch job row: %w", err)
				}
				done[line.Index] = true
			}
			var todo []BatchVariation
			var indices []int
			for i, v := range req.Variations {
				if !done[i] {
					todo = append(todo, v)
					indices = append(indices, i)
				}
			}
			if len(todo) == 0 {
				return nil
			}
			var sinkErr error
			transient := 0
			err = e.SolveBatch(ctx, BatchRequest{
				Base:       base,
				Solver:     req.Solver,
				Policy:     policy,
				Options:    req.Options.options(),
				Variations: todo,
			}, func(item BatchItem) {
				if sinkErr != nil || ctx.Err() != nil {
					// The job is over (store failure or cancellation):
					// persisting more rows — especially context-canceled
					// error rows — would checkpoint work that never ran.
					return
				}
				if item.Err != nil && isTransientSolveErr(item.Err) {
					// A per-solve deadline or a draining engine, with the
					// job itself still live: do not freeze it into the
					// checkpoint as a permanent error row.
					transient++
					return
				}
				line := BatchLine{Index: indices[item.Index], Response: item.Response}
				if item.Err != nil {
					line.Error = item.Err.Error()
				}
				data, err := json.Marshal(line)
				if err == nil {
					err = sink(data)
				}
				if err != nil {
					sinkErr = err
				}
			})
			if err != nil {
				return err
			}
			if sinkErr != nil {
				return sinkErr
			}
			if err := ctx.Err(); err != nil {
				return err
			}
			if transient > 0 {
				return fmt.Errorf("service: %d variation(s) failed transiently (deadline/backpressure); completed rows are checkpointed", transient)
			}
			return nil
		},
	}
}

// isTransientSolveErr classifies per-variation failures that depend on
// load or lifecycle rather than on the variation itself.
func isTransientSolveErr(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, ErrEngineClosed)
}

// BatchPayload is the batch job's persisted payload — the exact
// /v1/batch request body shape. It is exported (with DecodeBatchPayload
// and Build) so the cluster's distributed batch kind can validate the
// same payloads and re-marshal per-shard sub-batches of them.
type BatchPayload struct {
	Topology   BatchTopology    `json:"topology"`
	Solver     string           `json:"solver"`
	Policy     string           `json:"policy"`
	Options    RequestOptions   `json:"options"`
	Base       BatchVariation   `json:"base"`
	Variations []BatchVariation `json:"variations"`
}

// EngineOptions converts the payload's wire options to engine Options
// (exported for the cluster's routed-batch local fallback).
func (req *BatchPayload) EngineOptions() Options { return req.Options.options() }

// DecodeBatchPayload strictly decodes a /v1/batch-shaped job payload.
func DecodeBatchPayload(payload json.RawMessage) (*BatchPayload, error) {
	if len(payload) == 0 {
		return nil, errors.New("service: batch job without request")
	}
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	var req BatchPayload
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("service: bad batch job payload: %w", err)
	}
	if req.Solver == "" {
		return nil, errors.New("service: batch job without solver")
	}
	if len(req.Variations) == 0 {
		return nil, errors.New("service: batch job without variations")
	}
	return &req, nil
}

// Build validates the payload against the engine: topology, base
// vectors, solver and policy. The tree is interned, so the job's run
// shares it with every other request over the same shape.
func (req *BatchPayload) Build(e *Engine) (*core.Instance, core.Policy, error) {
	policy := core.Multiple
	if req.Policy != "" {
		p, ok := core.ParsePolicy(req.Policy)
		if !ok {
			return nil, 0, fmt.Errorf("service: unknown policy %q", req.Policy)
		}
		policy = p
	}
	if _, ok := e.opts.Registry.Resolve(req.Solver, policy); !ok {
		return nil, 0, &ErrUnknownSolver{Name: req.Solver}
	}
	t, err := e.InternTree(req.Topology.Parents, req.Topology.IsClient)
	if err != nil {
		return nil, 0, err
	}
	base := batchBaseInstance(t, req.Base)
	if err := base.Validate(); err != nil {
		return nil, 0, err
	}
	return base, policy, nil
}

// batchBaseInstance assembles the base instance of a batch over an
// already-preprocessed tree, defaulting absent mandatory vectors to
// zeros (shared by the HTTP batch handler and the batch job kind).
func batchBaseInstance(t *tree.Tree, base BatchVariation) *core.Instance {
	n := t.Len()
	in := &core.Instance{Tree: t, R: base.R, W: base.W, S: base.S,
		Q: base.Q, Comm: base.Comm, BW: base.BW}
	if in.R == nil {
		in.R = make([]int64, n)
	}
	if in.W == nil {
		in.W = make([]int64, n)
	}
	if in.S == nil {
		in.S = make([]int64, n)
	}
	return in
}
