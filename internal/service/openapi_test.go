package service

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// muxPattern matches Go 1.22 method-qualified ServeMux registrations,
// e.g. mux.HandleFunc("POST /v1/solve", ...). Method-less registrations
// (the 501 "disabled" placeholders) deliberately do not match: the spec
// documents the enabled surface.
var muxPattern = regexp.MustCompile(`(?:HandleFunc|Handle)\("([A-Z]+) ([^"]+)"`)

// specPaths parses just the paths section of the OpenAPI document with a
// hand-rolled indentation scanner (the repo carries no YAML dependency):
// 2-space-indented keys under "paths:" are route paths, 4-space-indented
// keys below each are HTTP methods.
func specPaths(t *testing.T, doc string) map[string]map[string]bool {
	t.Helper()
	paths := make(map[string]map[string]bool)
	inPaths := false
	current := ""
	for _, line := range strings.Split(doc, "\n") {
		trimmed := strings.TrimRight(line, " \t")
		if trimmed == "" || strings.HasPrefix(strings.TrimSpace(trimmed), "#") {
			continue
		}
		indent := len(trimmed) - len(strings.TrimLeft(trimmed, " "))
		key := strings.TrimSpace(trimmed)
		switch {
		case indent == 0:
			inPaths = key == "paths:"
		case !inPaths:
		case indent == 2 && strings.HasSuffix(key, ":"):
			current = strings.TrimSuffix(key, ":")
			paths[current] = make(map[string]bool)
		case indent == 4 && strings.HasSuffix(key, ":") && current != "":
			method := strings.TrimSuffix(key, ":")
			switch method {
			case "get", "post", "put", "patch", "delete", "head", "options":
				paths[current][method] = true
			}
		}
	}
	if len(paths) == 0 {
		t.Fatal("parsed zero paths from openapi.yaml")
	}
	return paths
}

// TestOpenAPICoversMuxRoutes pins api/openapi.yaml to the code: every
// method-qualified route this package registers on its ServeMux must
// appear in the spec with the same path template and method. Adding an
// endpoint without documenting it fails here.
func TestOpenAPICoversMuxRoutes(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "api", "openapi.yaml"))
	if err != nil {
		t.Fatalf("read spec: %v", err)
	}
	spec := specPaths(t, string(raw))

	sources, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	routes := 0
	for _, src := range sources {
		if strings.HasSuffix(src, "_test.go") {
			continue
		}
		code, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range muxPattern.FindAllStringSubmatch(string(code), -1) {
			method, path := m[1], m[2]
			routes++
			ops, ok := spec[path]
			if !ok {
				t.Errorf("%s: route %q missing from api/openapi.yaml paths", src, path)
				continue
			}
			if !ops[strings.ToLower(method)] {
				t.Errorf("%s: %s %s registered but the spec documents no %s operation",
					src, method, path, strings.ToLower(method))
			}
		}
	}
	if routes < 20 {
		t.Fatalf("scanned only %d method-qualified routes; the mux regex has likely rotted", routes)
	}

	// The reverse direction, softer: a spec path nothing registers is
	// stale documentation.
	registered := make(map[string]bool)
	for _, src := range sources {
		if strings.HasSuffix(src, "_test.go") {
			continue
		}
		code, _ := os.ReadFile(src)
		for _, m := range muxPattern.FindAllStringSubmatch(string(code), -1) {
			registered[m[2]+" "+strings.ToLower(m[1])] = true
		}
	}
	for path, ops := range spec {
		for method := range ops {
			if !registered[path+" "+method] {
				t.Errorf("spec documents %s %s but no handler registers it", method, path)
			}
		}
	}
}
