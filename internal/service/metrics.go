package service

import (
	"bytes"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// processStart pins the daemon's start instant for the
// rp_start_time_seconds / rp_uptime_seconds gauges — alert math wants
// to know how long the process has been collecting, and federation
// freshness checks want a per-shard epoch.
var processStart = time.Now()

// handleMetrics serves the engine counters (and, when a job manager is
// attached, the job-state gauges) in the Prometheus text exposition
// format. The writer is hand-rolled — the format is four line shapes —
// so the daemon stays dependency-free.
func (a *api) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	a.renderMetrics(&buf)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}

// renderMetrics writes the full local exposition into buf. It is the
// body of GET /metrics, and the federation endpoint reuses it so the
// coordinator's own series appear in the merged cluster view.
func (a *api) renderMetrics(buf *bytes.Buffer) {
	p := promWriter{buf}
	st := a.e.Stats()

	p.family("rp_build_info", "gauge", "Build metadata; the value is always 1.")
	p.sample("rp_build_info",
		`version="`+labelEscaper.Replace(buildVersion())+`",go_version="`+labelEscaper.Replace(runtime.Version())+`"`, 1)

	p.family("rp_start_time_seconds", "gauge", "Unix time the process started.")
	p.sample("rp_start_time_seconds", "", float64(processStart.UnixNano())/1e9)
	p.family("rp_uptime_seconds", "gauge", "Seconds since the process started.")
	p.sample("rp_uptime_seconds", "", time.Since(processStart).Seconds())

	p.family("rp_engine_requests_total", "counter", "Solve requests accepted by the engine.")
	p.sample("rp_engine_requests_total", "", float64(st.Requests))
	p.family("rp_engine_computations_total", "counter", "Backend computations actually run (cache misses).")
	p.sample("rp_engine_computations_total", "", float64(st.Computations))
	p.family("rp_engine_errors_total", "counter", "Requests that finished with an error.")
	p.sample("rp_engine_errors_total", "", float64(st.Errors))
	p.family("rp_engine_workers", "gauge", "Solver worker goroutines.")
	p.sample("rp_engine_workers", "", float64(st.Workers))
	p.family("rp_engine_in_flight", "gauge", "Computations running right now.")
	p.sample("rp_engine_in_flight", "", float64(st.InFlight))
	p.family("rp_engine_queue_depth", "gauge", "Jobs waiting in the worker-pool queue.")
	p.sample("rp_engine_queue_depth", "", float64(st.QueueLen))
	p.family("rp_engine_queue_capacity", "gauge", "Worker-pool queue capacity before backpressure.")
	p.sample("rp_engine_queue_capacity", "", float64(st.QueueCap))

	p.family("rp_cache_hits_total", "counter", "Solution-cache hits (completed entries plus coalesced waits).")
	p.sample("rp_cache_hits_total", "", float64(st.CacheHits))
	p.family("rp_cache_misses_total", "counter", "Solution-cache misses (owned computations).")
	p.sample("rp_cache_misses_total", "", float64(st.CacheMisses))
	p.family("rp_cache_evictions_total", "counter", "Solution-cache evictions by reason.")
	p.sample("rp_cache_evictions_total", `reason="lru"`, float64(st.Evictions))
	p.sample("rp_cache_evictions_total", `reason="bytes"`, float64(st.ByteEvictions))
	p.sample("rp_cache_evictions_total", `reason="ttl"`, float64(st.TTLEvictions))
	p.family("rp_cache_entries", "gauge", "Retained solution-cache entries.")
	p.sample("rp_cache_entries", "", float64(st.CacheEntries))
	p.family("rp_cache_bytes", "gauge", "Approximate footprint of retained results.")
	p.sample("rp_cache_bytes", "", float64(st.CacheBytes))

	p.family("rp_tree_cache_hits_total", "counter", "Interned-topology cache hits.")
	p.sample("rp_tree_cache_hits_total", "", float64(st.TreeCacheHits))
	p.family("rp_tree_cache_misses_total", "counter", "Interned-topology cache misses.")
	p.sample("rp_tree_cache_misses_total", "", float64(st.TreeCacheMisses))
	p.family("rp_tree_cache_entries", "gauge", "Interned preprocessed trees.")
	p.sample("rp_tree_cache_entries", "", float64(st.TreeCacheEntries))

	solvers := make([]string, 0, len(st.PerSolver))
	for name := range st.PerSolver {
		solvers = append(solvers, name)
	}
	sort.Strings(solvers)
	p.family("rp_solver_cache_hits_total", "counter", "Per-solver solution-cache hits on completed entries.")
	for _, name := range solvers {
		p.sample("rp_solver_cache_hits_total", solverLabel(name), float64(st.PerSolver[name].Hits))
	}
	p.family("rp_solver_cache_misses_total", "counter", "Per-solver solution-cache misses.")
	for _, name := range solvers {
		p.sample("rp_solver_cache_misses_total", solverLabel(name), float64(st.PerSolver[name].Misses))
	}
	p.family("rp_solver_cache_coalesced_total", "counter", "Per-solver waits coalesced onto an in-flight computation.")
	for _, name := range solvers {
		p.sample("rp_solver_cache_coalesced_total", solverLabel(name), float64(st.PerSolver[name].Coalesced))
	}

	solveHist, queueHist := a.e.SolveHistograms()
	p.family("rp_engine_solve_seconds", "histogram", "Backend compute time per solver (excludes queue wait).")
	p.histogramVec("rp_engine_solve_seconds", "solver", solveHist)
	p.family("rp_engine_queue_wait_seconds", "histogram", "Time a request waited for a solver worker slot, per solver.")
	p.histogramVec("rp_engine_queue_wait_seconds", "solver", queueHist)

	// HTTP-layer RED metrics: coarse mux routes only, so label
	// cardinality is bounded by the route table.
	red := a.red.snapshot()
	routes := make([]string, 0, len(red))
	for route := range red {
		routes = append(routes, route)
	}
	sort.Strings(routes)
	p.family("rp_http_requests_total", "counter", "HTTP requests by coarse route pattern and status code.")
	for _, route := range routes {
		codes := make([]int, 0, len(red[route]))
		for code := range red[route] {
			codes = append(codes, code)
		}
		sort.Ints(codes)
		for _, code := range codes {
			p.sample("rp_http_requests_total",
				`route="`+labelEscaper.Replace(route)+`",code="`+statusCodeLabel(code)+`"`,
				float64(red[route][code]))
		}
	}
	p.family("rp_http_request_seconds", "histogram", "HTTP request latency by coarse route pattern.")
	p.histogramVec("rp_http_request_seconds", "route", a.red.latency.Snapshot())

	if a.slo != nil {
		slo := a.slo.Evaluate()
		p.family("rp_slo_error_budget_remaining", "gauge", "Unspent fraction of the objective's error budget over the accounting window (1 = untouched, <= 0 = exhausted).")
		for _, o := range slo.Objectives {
			p.sample("rp_slo_error_budget_remaining", `objective="`+labelEscaper.Replace(o.Name)+`"`, o.BudgetRemaining)
		}
		p.family("rp_slo_burn_rate", "gauge", "Error-budget burn rate per objective and lookback window (1 = spending exactly the budget).")
		for _, o := range slo.Objectives {
			windows := make([]string, 0, len(o.Burn))
			for w := range o.Burn {
				windows = append(windows, w)
			}
			sort.Strings(windows)
			for _, w := range windows {
				p.sample("rp_slo_burn_rate",
					`objective="`+labelEscaper.Replace(o.Name)+`",window="`+labelEscaper.Replace(w)+`"`,
					o.Burn[w])
			}
		}
		p.family("rp_slo_alerts_firing", "gauge", "Burn-rate alerts currently firing.")
		p.sample("rp_slo_alerts_firing", "", float64(len(slo.Firing)))
	}

	if a.events != nil {
		counts := a.events.Counts()
		types := make([]string, 0, len(counts))
		for t := range counts {
			types = append(types, t)
		}
		sort.Strings(types)
		p.family("rp_cluster_events_total", "counter", "Cluster events journaled, by type.")
		for _, t := range types {
			p.sample("rp_cluster_events_total", `type="`+labelEscaper.Replace(t)+`"`, float64(counts[t]))
		}
	}

	rt := obs.ReadGoRuntime()
	p.family("rp_go_goroutines", "gauge", "Live goroutines in the process.")
	p.sample("rp_go_goroutines", "", float64(rt.Goroutines))
	p.family("rp_go_heap_bytes", "gauge", "Bytes of live heap objects.")
	p.sample("rp_go_heap_bytes", "", float64(rt.HeapBytes))
	p.family("rp_go_gc_pause_seconds", "histogram", "Cumulative GC stop-the-world pause distribution.")
	p.histogram("rp_go_gc_pause_seconds", "", rt.GCPause)

	if a.spans != nil {
		added, dropped := a.spans.Stats()
		p.family("rp_obs_spans_recorded_total", "counter", "Spans recorded into the flight recorder.")
		p.sample("rp_obs_spans_recorded_total", "", float64(added))
		p.family("rp_obs_spans_dropped_total", "counter", "Spans dropped because the flight recorder was contended.")
		p.sample("rp_obs_spans_dropped_total", "", float64(dropped))
	}

	if js := a.jobStats(); js != nil {
		p.family("rp_jobs", "gauge", "Async jobs by state.")
		for _, s := range []struct {
			state string
			n     int
		}{
			{"queued", js.Queued},
			{"running", js.Running},
			{"succeeded", js.Succeeded},
			{"failed", js.Failed},
			{"canceled", js.Canceled},
			{"interrupted", js.Interrupted},
		} {
			p.sample("rp_jobs", `state="`+s.state+`"`, float64(s.n))
		}
		p.family("rp_job_workers", "gauge", "Concurrent job slots.")
		p.sample("rp_job_workers", "", float64(js.Workers))
		p.family("rp_job_queue_depth", "gauge", "Jobs waiting for a job slot.")
		p.sample("rp_job_queue_depth", "", float64(js.QueueLen))
		p.family("rp_jobs_pruned_total", "counter", "Finished jobs removed by age-based retention.")
		p.sample("rp_jobs_pruned_total", "", float64(js.Pruned))
		p.family("rp_jobs_duration_seconds", "histogram", "Wall time of terminal jobs (started to finished).")
		p.histogram("rp_jobs_duration_seconds", "", a.jobs.Durations())
	}

	if a.sessions != nil {
		ss := a.sessions.Stats()
		p.family("rp_sessions", "gauge", "Live placement sessions.")
		p.sample("rp_sessions", "", float64(ss.Live))
		p.family("rp_session_watchers", "gauge", "Watchers attached across all placement sessions.")
		p.sample("rp_session_watchers", "", float64(ss.Watchers))
		p.family("rp_sessions_created_total", "counter", "Placement sessions registered.")
		p.sample("rp_sessions_created_total", "", float64(ss.Created))
		p.family("rp_sessions_deleted_total", "counter", "Placement sessions deleted by request.")
		p.sample("rp_sessions_deleted_total", "", float64(ss.Deleted))
		p.family("rp_sessions_expired_total", "counter", "Placement sessions expired by the idle TTL.")
		p.sample("rp_sessions_expired_total", "", float64(ss.Expired))
		p.family("rp_session_deltas_total", "counter", "Delta batches applied across all placement sessions.")
		p.sample("rp_session_deltas_total", "", float64(ss.Deltas))
		p.family("rp_session_ops_total", "counter", "Individual delta operations applied.")
		p.sample("rp_session_ops_total", "", float64(ss.Ops))
		p.family("rp_session_solves_total", "counter", "Re-solves triggered by deltas, by mode.")
		p.sample("rp_session_solves_total", `mode="incremental"`, float64(ss.IncrementalSolves))
		p.sample("rp_session_solves_total", `mode="full"`, float64(ss.FullSolves))
		p.family("rp_session_apply_seconds", "histogram", "Delta batch apply latency (validate, re-solve, diff).")
		p.histogram("rp_session_apply_seconds", "", ss.Apply)
	}

	if a.cluster != nil {
		if cs := a.clusterStats(); cs != nil {
			p.family("rp_cluster_epoch", "gauge", "Shard membership epoch (increments on join/leave/re-weight).")
			p.sample("rp_cluster_epoch", "", float64(cs.Epoch))
			p.family("rp_cluster_batches_routed_total", "counter", "Inline batches fanned out over the shards.")
			p.sample("rp_cluster_batches_routed_total", "", float64(cs.BatchesRouted))
			p.family("rp_cluster_batch_rows_routed_total", "counter", "Inline batch variations computed on shards.")
			p.sample("rp_cluster_batch_rows_routed_total", "", float64(cs.RowsRouted))
			p.family("rp_cluster_batch_rows_local_total", "counter", "Inline batch variations computed locally because no shard could take them.")
			p.sample("rp_cluster_batch_rows_local_total", "", float64(cs.RowsLocalFallback))
			p.family("rp_cluster_batch_cache_short_circuit_total", "counter", "Routed batch variations served from the coordinator's caches without a shard round trip.")
			p.sample("rp_cluster_batch_cache_short_circuit_total", "", float64(cs.BatchCacheShortCircuits))
			p.family("rp_cluster_shards_expired_total", "counter", "Shards removed by stale-shard expiry (consecutive missed probes).")
			p.sample("rp_cluster_shards_expired_total", "", float64(cs.ShardsExpired))
			p.family("rp_cluster_wire_connections_total", "counter", "Binary wire transport connections dialed to shards.")
			p.sample("rp_cluster_wire_connections_total", "", float64(cs.WireConnections))
			p.family("rp_cluster_wire_requests_total", "counter", "Batch chunks and campaign rows shipped over the binary wire transport.")
			p.sample("rp_cluster_wire_requests_total", "", float64(cs.WireRequests))
			p.family("rp_cluster_wire_rows_total", "counter", "Row frames relayed back over the binary wire transport.")
			p.sample("rp_cluster_wire_rows_total", "", float64(cs.WireRows))
			p.family("rp_cluster_wire_fallback_total", "counter", "Shard requests that fell back to JSON/HTTP because the wire transport was unavailable.")
			p.sample("rp_cluster_wire_fallback_total", "", float64(cs.WireFallbacks))
		}
		shards := a.cluster.ShardStats()
		p.family("rp_cluster_shard_up", "gauge", "1 when the shard's circuit is closed (healthy).")
		for _, s := range shards {
			up := 0.0
			if s.Healthy {
				up = 1
			}
			p.sample("rp_cluster_shard_up", shardLabel(s.Addr), up)
		}
		p.family("rp_cluster_shard_weight", "gauge", "Placement weight of the shard (self-reported capacity).")
		for _, s := range shards {
			p.sample("rp_cluster_shard_weight", shardLabel(s.Addr), float64(s.Weight))
		}
		p.family("rp_cluster_shard_in_flight", "gauge", "Requests on the shard right now.")
		for _, s := range shards {
			p.sample("rp_cluster_shard_in_flight", shardLabel(s.Addr), float64(s.InFlight))
		}
		p.family("rp_cluster_shard_requests_total", "counter", "Requests attempted against the shard.")
		for _, s := range shards {
			p.sample("rp_cluster_shard_requests_total", shardLabel(s.Addr), float64(s.Requests))
		}
		p.family("rp_cluster_shard_failures_total", "counter", "Transient failures observed on the shard.")
		for _, s := range shards {
			p.sample("rp_cluster_shard_failures_total", shardLabel(s.Addr), float64(s.Failures))
		}
		p.family("rp_cluster_shard_failovers_total", "counter", "Requests re-run on another shard after failing here.")
		for _, s := range shards {
			p.sample("rp_cluster_shard_failovers_total", shardLabel(s.Addr), float64(s.Failovers))
		}
		p.family("rp_cluster_wire_idle_conns", "gauge", "Idle pooled wire-transport connections to the shard.")
		for _, s := range shards {
			p.sample("rp_cluster_wire_idle_conns", shardLabel(s.Addr), float64(s.WireIdle))
		}
		if lat, ok := a.cluster.(ClusterLatencies); ok {
			h := lat.ClusterHistograms()
			p.family("rp_cluster_shard_rtt_seconds", "histogram", "Round-trip time of shard requests, per shard.")
			p.histogramVec("rp_cluster_shard_rtt_seconds", "shard", h.ShardRTT)
			p.family("rp_cluster_batch_chunk_seconds", "histogram", "Dispatch-to-response time of routed inline batch chunks.")
			p.histogram("rp_cluster_batch_chunk_seconds", "", h.BatchChunk)
			p.family("rp_cluster_batch_reorder_wait_seconds", "histogram", "Time completed batch lines waited in the reorder buffer before streaming.")
			p.histogram("rp_cluster_batch_reorder_wait_seconds", "", h.ReorderWait)
		}
	}
}

// promWriter emits the Prometheus text exposition format.
type promWriter struct{ buf *bytes.Buffer }

func (p promWriter) family(name, typ, help string) {
	fmt.Fprintf(p.buf, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p promWriter) sample(name, labels string, v float64) {
	p.buf.WriteString(name)
	if labels != "" {
		p.buf.WriteByte('{')
		p.buf.WriteString(labels)
		p.buf.WriteByte('}')
	}
	p.buf.WriteByte(' ')
	p.buf.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	p.buf.WriteByte('\n')
}

// histogram renders one histogram series in exposition form: cumulative
// le buckets ending at +Inf, then _sum and _count. labels is the
// series' non-le label pairs ("" for an unlabeled family).
func (p promWriter) histogram(name, labels string, s obs.HistogramSnapshot) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		p.sample(name+"_bucket", labels+sep+`le="`+strconv.FormatFloat(b, 'g', -1, 64)+`"`, float64(cum))
	}
	cum += s.Counts[len(s.Bounds)]
	p.sample(name+"_bucket", labels+sep+`le="+Inf"`, float64(cum))
	p.sample(name+"_sum", labels, s.Sum)
	p.sample(name+"_count", labels, float64(cum))
}

// histogramVec renders every series of a labeled histogram family in
// sorted label order. The caller has already emitted the family header.
func (p promWriter) histogramVec(name, labelName string, series map[string]obs.HistogramSnapshot) {
	keys := make([]string, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		p.histogram(name, labelName+`="`+labelEscaper.Replace(k)+`"`, series[k])
	}
}

// buildVersion resolves the binary's version once: the VCS revision
// when the build embedded one, else the module version, else "unknown".
var buildVersion = sync.OnceValue(func() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && s.Value != "" {
			if len(s.Value) > 12 {
				return s.Value[:12]
			}
			return s.Value
		}
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	return "unknown"
})

// solverLabel renders a solver="..." label pair with the value escaped
// per the exposition format (registry names are tame, but a custom
// registered backend could carry anything).
func solverLabel(name string) string {
	return `solver="` + labelEscaper.Replace(name) + `"`
}

// shardLabel renders a shard="..." label pair, escaped likewise.
func shardLabel(addr string) string {
	return `shard="` + labelEscaper.Replace(addr) + `"`
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
