package service

import (
	"context"
	"net/http"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/multiobject"
)

// moInstance builds a base instance with ample shared capacity plus two
// object vector sets derived from it.
func moInstance(t *testing.T) (*core.Instance, []ObjectVectors) {
	t.Helper()
	in := gen.Instance(gen.Config{Internal: 12, Clients: 30, Lambda: 0.3}, 21)
	// Double every capacity so two objects of the base demand fit.
	for _, v := range in.Tree.Internal() {
		in.W[v] *= 2
	}
	n := in.Tree.Len()
	obj2R := make([]int64, n)
	obj2S := make([]int64, n)
	for v := 0; v < n; v++ {
		obj2R[v] = in.R[v] / 2
		obj2S[v] = in.S[v] + 1
	}
	for _, v := range in.Tree.Clients() {
		if obj2R[v] == 0 {
			obj2R[v] = 1
		}
	}
	return in, []ObjectVectors{{R: in.R, S: in.S}, {R: obj2R, S: obj2S}}
}

func TestEngineMultiObjectSolveAndBound(t *testing.T) {
	in, objects := moInstance(t)
	e := newTestEngine(t, EngineOptions{Workers: 4})

	resp, err := e.Solve(context.Background(), Request{
		Instance: in, Solver: "mo-greedy",
		Options: Options{Objects: objects, IncludeSolution: true},
	})
	if err != nil {
		t.Fatalf("mo-greedy: %v", err)
	}
	if resp.NoSolution {
		t.Fatal("mo-greedy found no solution on a feasible instance")
	}
	if len(resp.PerObject) != 2 {
		t.Fatalf("per_object has %d entries, want 2", len(resp.PerObject))
	}
	var total int64
	for k, op := range resp.PerObject {
		if op.Object != k || len(op.Replicas) == 0 || op.Solution == nil {
			t.Fatalf("object %d placement: %+v", k, op)
		}
		total += op.Cost
	}
	if resp.Cost != total {
		t.Fatalf("top-level cost %d != per-object sum %d", resp.Cost, total)
	}
	// Cross-check against the library's own cost accounting.
	mi, err := buildMultiInstance(in, objects)
	if err != nil {
		t.Fatal(err)
	}
	ms := &multiobject.Solution{PerObject: make([]*core.Solution, len(resp.PerObject))}
	for i, op := range resp.PerObject {
		ms.PerObject[i] = op.Solution
	}
	if want := ms.Cost(mi); total != want {
		t.Fatalf("summed cost %d, multiobject.Cost %d", total, want)
	}

	bound, err := e.Solve(context.Background(), Request{
		Instance: in, Solver: "lp-mo-rational",
		Options: Options{Objects: objects},
	})
	if err != nil {
		t.Fatalf("lp-mo-rational: %v", err)
	}
	if bound.Bound == nil {
		t.Fatal("lp-mo-rational returned no bound")
	}
	if bound.Bound.Value > float64(resp.Cost)+1e-6 {
		t.Fatalf("LP bound %.3f exceeds greedy cost %d", bound.Bound.Value, resp.Cost)
	}
}

// TestEngineMultiObjectCacheKey pins that the object vectors are part of
// the cache key: same base instance, different objects, different key —
// and single-object keys ignore stray Objects.
func TestEngineMultiObjectCacheKey(t *testing.T) {
	in, objects := moInstance(t)
	k1 := Key(in, "mo-greedy", Options{Objects: objects})
	k2 := Key(in, "mo-greedy", Options{Objects: objects[:1]})
	if k1 == k2 {
		t.Fatal("different object sets produced one cache key")
	}
	mutated := []ObjectVectors{{R: objects[0].R, S: objects[1].S}, objects[1]}
	if Key(in, "mo-greedy", Options{Objects: mutated}) == k1 {
		t.Fatal("changed object cost vector kept the key")
	}
	if Key(in, "mb", Options{}) != Key(in, "mb", Options{}) {
		t.Fatal("key not deterministic")
	}
}

func TestHTTPMultiObject(t *testing.T) {
	srv, _ := newTestServer(t)
	in, objects := moInstance(t)

	// Happy path through /v1/solve.
	resp := postJSON(t, srv.URL+"/v1/solve", map[string]any{
		"instance": in, "solver": "mo-greedy",
		"options": map[string]any{"objects": objects},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mo-greedy via HTTP: status %d", resp.StatusCode)
	}
	var out Response
	decodeBody(t, resp, &out)
	if len(out.PerObject) != 2 || out.Cost == 0 {
		t.Fatalf("mo-greedy response: %+v", out)
	}

	// The bound family name "mo-rational" rides the /v1/bound lp- prefix.
	resp = postJSON(t, srv.URL+"/v1/bound", map[string]any{
		"instance": in, "solver": "mo-rational",
		"options": map[string]any{"objects": objects},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mo-rational via /v1/bound: status %d", resp.StatusCode)
	}
	var bout Response
	decodeBody(t, resp, &bout)
	if bout.Bound == nil || bout.Bound.Value <= 0 {
		t.Fatalf("mo-rational bound: %+v", bout)
	}

	// Contract: objects on a single-object solver, and a multi-object
	// solver without (or with malformed) objects, are 400s.
	for name, body := range map[string]map[string]any{
		"objects on single-object solver": {
			"instance": in, "solver": "mg",
			"options": map[string]any{"objects": objects},
		},
		"multi-object solver without objects": {
			"instance": in, "solver": "mo-greedy",
		},
		"short object vector": {
			"instance": in, "solver": "mo-greedy",
			"options": map[string]any{"objects": []ObjectVectors{{R: []int64{1}, S: []int64{1}}}},
		},
	} {
		resp := postJSON(t, srv.URL+"/v1/solve", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}
