package service

import (
	"errors"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// errEventsDisabled answers /debug/events on a daemon running without
// an event journal.
var errEventsDisabled = errors.New("service: the event journal is not enabled (start the daemon with an event buffer)")

// errAlertsDisabled answers /v1/alerts on a daemon running without SLO
// objectives.
var errAlertsDisabled = errors.New("service: no SLO objectives configured (set -slo-availability and/or -slo-latency-p99)")

// handleEvents serves GET /debug/events?type=&since=&limit=: the
// cluster event journal, oldest first. since accepts RFC 3339 or unix
// seconds; malformed or negative values answer 400 — the same contract
// /debug/traces enforces, so a broken dashboard query fails loudly
// instead of silently returning everything.
func (a *api) handleEvents(w http.ResponseWriter, r *http.Request) {
	if a.events == nil {
		writeError(w, http.StatusNotImplemented, errEventsDisabled)
		return
	}
	q := r.URL.Query()
	var f obs.EventFilter
	f.Type = q.Get("type")
	if v := q.Get("since"); v != "" {
		sec, err := strconv.ParseFloat(v, 64)
		switch {
		case err == nil && sec >= 0:
			f.Since = time.Unix(0, int64(sec*float64(time.Second)))
		case err == nil:
			writeError(w, http.StatusBadRequest, errors.New("service: bad since"))
			return
		default:
			t, terr := time.Parse(time.RFC3339, v)
			if terr != nil {
				writeError(w, http.StatusBadRequest, errors.New("service: bad since"))
				return
			}
			f.Since = t
		}
	}
	f.Limit = 100
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, errors.New("service: bad limit"))
			return
		}
		f.Limit = n
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"events": a.events.Events(f),
		"counts": a.events.Counts(),
	})
}

// handleAlerts serves GET /v1/alerts: the SLO engine's full evaluation —
// verdict, per-objective budget and burn rates, alerts firing now and
// recently resolved (each with fired/resolved timestamps).
func (a *api) handleAlerts(w http.ResponseWriter, r *http.Request) {
	if a.slo == nil {
		writeError(w, http.StatusNotImplemented, errAlertsDisabled)
		return
	}
	writeJSON(w, http.StatusOK, a.slo.Evaluate())
}
