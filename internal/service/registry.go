// Package service is the serving subsystem of the library: it turns the
// one-shot solvers of the paper (exact algorithms, the Section 6
// heuristics, MixedBest, the QoS/bandwidth variants and the LP-based
// lower bounds) into a long-running concurrent engine suitable for a
// daemon. It provides a solver registry unifying every backend behind one
// Request type, a bounded worker-pool scheduler with per-job deadlines
// and graceful shutdown, a solution cache keyed by a canonical instance
// hash, and the HTTP handler used by cmd/rpserve.
//
// Later scaling work (sharding, batching, multi-process backends) is
// expected to implement the same Backend signature and plug into the
// registry without touching the engine or the HTTP layer.
package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/heuristics"
	"repro/internal/lpbound"
	"repro/internal/multiobject"
)

// Result is the outcome of one backend computation: a placement for
// solution solvers, or a lower-bound value for the LP backends.
type Result struct {
	// Solution is the placement, nil for bound backends and for
	// NoSolution outcomes.
	Solution *core.Solution
	// NoSolution records that the backend proved (exact solvers) or
	// reported (heuristics) infeasibility. It is a successful outcome,
	// not an error, and is cached like any other.
	NoSolution bool
	// HasBound marks a bound backend's result; Bound is then the value
	// and BoundExact whether the branch-and-bound closed within budget.
	HasBound   bool
	Bound      float64
	BoundExact bool
	// MultiSolution is the per-object placement of a multi-object
	// backend (Kind "multiobject"); Solution stays nil there.
	MultiSolution *multiobject.Solution
}

// Backend computes a Result for an instance. Implementations must be
// safe for concurrent use and deterministic in their inputs — the cache
// relies on both. The context carries the request deadline; long-running
// backends (brute force, refined bounds) observe its cancellation so an
// abandoned job releases its worker instead of running to completion.
type Backend func(ctx context.Context, in *core.Instance, opt Options) (Result, error)

// Solver is one registered backend.
type Solver struct {
	// Name is the canonical (lower-case) registry key, e.g. "mb",
	// "optimal", "brute-upwards", "lp-refined-multiple". Lookups are
	// case-insensitive.
	Name string
	// Long is a human-readable description for the /v1/solvers listing.
	Long string
	// Policy is the access policy of produced solutions (or the policy a
	// bound is computed for).
	Policy core.Policy
	// Kind classifies the backend: "exact", "heuristic", "mixed",
	// "qos", "bandwidth" or "bound".
	Kind string
	// BoundBudget marks backends that consume Options.BoundNodes; for
	// all others the engine zeroes the budget before cache keying so a
	// stray value cannot split the key space.
	BoundBudget bool
	// MultiObject marks backends that consume Options.Objects (the
	// per-object request/cost vectors); for all others the engine
	// zeroes Objects before cache keying, and the HTTP layer rejects
	// requests that carry them.
	MultiObject bool
	// Run executes the backend.
	Run Backend
}

// IsBound reports whether the solver produces lower bounds rather than
// placements.
func (s Solver) IsBound() bool { return s.Kind == "bound" }

// Registry maps solver names to backends. The zero value is unusable;
// use NewRegistry (the full default set) or new(Registry) plus Register.
type Registry struct {
	byName map[string]Solver
	order  []string
}

// Register adds a solver; it fails on duplicate or empty names. The
// name is canonicalized to lower case.
func (r *Registry) Register(s Solver) error {
	name := strings.ToLower(strings.TrimSpace(s.Name))
	if name == "" {
		return fmt.Errorf("service: solver with empty name")
	}
	if s.Run == nil {
		return fmt.Errorf("service: solver %q has no backend", name)
	}
	if r.byName == nil {
		r.byName = map[string]Solver{}
	}
	if _, dup := r.byName[name]; dup {
		return fmt.Errorf("service: duplicate solver %q", name)
	}
	s.Name = name
	r.byName[name] = s
	r.order = append(r.order, name)
	return nil
}

// Lookup finds a solver by name, case-insensitively.
func (r *Registry) Lookup(name string) (Solver, bool) {
	s, ok := r.byName[strings.ToLower(strings.TrimSpace(name))]
	return s, ok
}

// Resolve finds a solver by name, falling back to the policy-qualified
// family name (e.g. "brute" + Upwards -> "brute-upwards", "lp-refined" +
// Multiple -> "lp-refined-multiple").
func (r *Registry) Resolve(name string, p core.Policy) (Solver, bool) {
	if s, ok := r.Lookup(name); ok {
		return s, true
	}
	return r.Lookup(name + "-" + strings.ToLower(p.String()))
}

// Solvers lists the registered solvers in registration order.
func (r *Registry) Solvers() []Solver {
	out := make([]Solver, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.byName[name])
	}
	return out
}

// Names lists the registered solver names, sorted.
func (r *Registry) Names() []string {
	out := append([]string(nil), r.order...)
	sort.Strings(out)
	return out
}

// solutionBackend lifts a plain solver function into a Backend, mapping
// the library's no-solution sentinels to Result.NoSolution.
func solutionBackend(f func(in *core.Instance) (*core.Solution, error)) Backend {
	return func(_ context.Context, in *core.Instance, _ Options) (Result, error) {
		return solutionResult(f(in))
	}
}

// ctxSolutionBackend is solutionBackend for cancellation-aware solvers.
func ctxSolutionBackend(f func(ctx context.Context, in *core.Instance) (*core.Solution, error)) Backend {
	return func(ctx context.Context, in *core.Instance, _ Options) (Result, error) {
		return solutionResult(f(ctx, in))
	}
}

func solutionResult(sol *core.Solution, err error) (Result, error) {
	switch {
	case err == nil:
		return Result{Solution: sol}, nil
	case isNoSolution(err):
		return Result{NoSolution: true}, nil
	default:
		return Result{}, err
	}
}

func isNoSolution(err error) bool {
	return errors.Is(err, exact.ErrNoSolution) || errors.Is(err, heuristics.ErrNoSolution) ||
		errors.Is(err, multiobject.ErrNoSolution)
}

// NewRegistry builds the full default registry: the exact solvers, the
// eight Section 6 heuristics plus MixedBest, the QoS and bandwidth
// variants, and the rational/refined LP bounds for every policy.
func NewRegistry() *Registry {
	r := new(Registry)
	must := func(err error) {
		if err != nil {
			panic(err) // registration of the built-in set cannot fail
		}
	}

	must(r.Register(Solver{
		Name: "optimal", Long: "optimal Multiple/homogeneous (Section 4.1)",
		Policy: core.Multiple, Kind: "exact",
		Run: solutionBackend(exact.MultipleHomogeneous),
	}))
	must(r.Register(Solver{
		Name: "closest-optimal", Long: "optimal Closest/homogeneous greedy",
		Policy: core.Closest, Kind: "exact",
		Run: solutionBackend(exact.ClosestHomogeneous),
	}))
	must(r.Register(Solver{
		Name: "closest-qos-optimal", Long: "optimal Closest/homogeneous with QoS bounds",
		Policy: core.Closest, Kind: "exact",
		Run: solutionBackend(exact.ClosestHomogeneousQoS),
	}))
	for _, p := range core.Policies {
		p := p
		must(r.Register(Solver{
			Name:   "brute-" + strings.ToLower(p.String()),
			Long:   "exhaustive search, " + p.String() + " policy (small instances)",
			Policy: p, Kind: "exact",
			Run: ctxSolutionBackend(func(ctx context.Context, in *core.Instance) (*core.Solution, error) {
				return exact.BruteForce(ctx, in, p)
			}),
		}))
	}

	for _, h := range heuristics.All {
		must(r.Register(Solver{
			Name: h.Name, Long: h.Long, Policy: h.Policy, Kind: "heuristic",
			Run: solutionBackend(h.Run),
		}))
	}
	must(r.Register(Solver{
		Name: "mb", Long: "MixedBest: cheapest of the eight heuristics",
		Policy: core.Multiple, Kind: "mixed",
		Run: solutionBackend(heuristics.MB),
	}))
	for _, h := range heuristics.AllQoS {
		must(r.Register(Solver{
			Name: h.Name, Long: h.Long, Policy: h.Policy, Kind: "qos",
			Run: solutionBackend(h.Run),
		}))
	}
	for _, h := range heuristics.AllBW {
		must(r.Register(Solver{
			Name: h.Name, Long: h.Long, Policy: h.Policy, Kind: "bandwidth",
			Run: solutionBackend(h.Run),
		}))
	}

	for _, p := range core.Policies {
		p := p
		must(r.Register(Solver{
			Name:   "lp-rational-" + strings.ToLower(p.String()),
			Long:   "fully rational LP relaxation bound, " + p.String() + " policy (Section 5.3)",
			Policy: p, Kind: "bound",
			Run: func(_ context.Context, in *core.Instance, _ Options) (Result, error) {
				v, err := lpbound.Rational(in, p)
				if errors.Is(err, lpbound.ErrInfeasible) {
					return Result{NoSolution: true, HasBound: true}, nil
				}
				if err != nil {
					return Result{}, err
				}
				return Result{HasBound: true, Bound: v, BoundExact: true}, nil
			},
		}))
		must(r.Register(Solver{
			Name:   "lp-refined-" + strings.ToLower(p.String()),
			Long:   "refined bound (integer placements, rational assignments), " + p.String() + " policy (Section 7.1)",
			Policy: p, Kind: "bound", BoundBudget: true,
			Run: func(ctx context.Context, in *core.Instance, opt Options) (Result, error) {
				b, err := lpbound.Refined(ctx, in, p, lpbound.Options{MaxNodes: opt.BoundNodes})
				if errors.Is(err, lpbound.ErrInfeasible) {
					return Result{NoSolution: true, HasBound: true}, nil
				}
				if err != nil {
					return Result{}, err
				}
				return Result{HasBound: true, Bound: b.Value, BoundExact: b.Exact}, nil
			},
		}))
	}
	registerMultiObject(r, must)
	return r
}
