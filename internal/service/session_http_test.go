package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/session"
)

// newSessionServer starts a handler with placement sessions enabled.
func newSessionServer(t *testing.T, sopts session.Options) (*httptest.Server, *session.Manager) {
	t.Helper()
	e := NewEngine(EngineOptions{Workers: 4})
	sopts.Resolve = SessionResolver(e.Registry())
	m := session.NewManager(sopts)
	srv := httptest.NewServer(NewHandlerOpts(e, HandlerOptions{Sessions: m}))
	t.Cleanup(func() {
		srv.Close()
		m.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		e.Close(ctx)
	})
	return srv, m
}

func createInstance(t *testing.T, srv *httptest.Server, in *core.Instance, solver string) instancePayload {
	t.Helper()
	resp := postJSON(t, srv.URL+"/v1/instances", instanceCreateRequest{Instance: in, Solver: solver})
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("create: status %d: %s", resp.StatusCode, b)
	}
	var out instancePayload
	decodeBody(t, resp, &out)
	return out
}

func doRequest(t *testing.T, method, url string, body any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestSessionHTTPLifecycle(t *testing.T) {
	srv, _ := newSessionServer(t, session.Options{})
	in := gen.Instance(gen.Config{Internal: 60, Clients: 180}, 7)

	created := createInstance(t, srv, in, "mg")
	if created.ID == "" || created.Rev != 1 || len(created.Replicas) == 0 {
		t.Fatalf("create payload: %+v", created)
	}

	// List shows it.
	var list instanceListPayload
	resp, err := http.Get(srv.URL + "/v1/instances")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, &list)
	if len(list.Instances) != 1 || list.Instances[0].ID != created.ID {
		t.Fatalf("list: %+v", list)
	}

	// PATCH a delta and read the diff.
	c := in.Tree.Clients()[0]
	resp = doRequest(t, http.MethodPatch, srv.URL+"/v1/instances/"+created.ID, patchRequest{
		Ops: []session.Op{{Op: session.OpSetRate, Vertex: c, Value: in.R[c] + 5}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("patch status %d", resp.StatusCode)
	}
	var ar session.ApplyResult
	decodeBody(t, resp, &ar)
	if ar.Rev != 2 || ar.Mode != "incremental" {
		t.Fatalf("apply result: %+v", ar)
	}

	// GET with solution and instance included.
	resp, err = http.Get(srv.URL + "/v1/instances/" + created.ID + "?include_solution=1&include_instance=1")
	if err != nil {
		t.Fatal(err)
	}
	var got instancePayload
	decodeBody(t, resp, &got)
	if got.Rev != 2 || got.Solution == nil || got.Instance == nil {
		t.Fatalf("get payload: rev=%d solution=%v instance=%v", got.Rev, got.Solution != nil, got.Instance != nil)
	}
	if got.Instance.R[c] != in.R[c]+5 {
		t.Fatalf("returned instance misses the delta: R[%d] = %d", c, got.Instance.R[c])
	}

	// DELETE, then everything 404s.
	resp = doRequest(t, http.MethodDelete, srv.URL+"/v1/instances/"+created.ID, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/v1/instances/" + created.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete: status %d", resp.StatusCode)
	}
}

// TestSessionHTTPStreamingCreate drives the NDJSON create path and checks
// it builds the same instance (and placement) as the JSON one-shot.
func TestSessionHTTPStreamingCreate(t *testing.T) {
	srv, _ := newSessionServer(t, session.Options{})

	var buf bytes.Buffer
	// Root, one interior node, three clients: two under the interior
	// node, one under the root.
	fmt.Fprintln(&buf, `{"solver":"mg","policy":"multiple"}`)
	fmt.Fprintln(&buf, `{"kind":"node","parent":-1,"capacity":100}`)
	fmt.Fprintln(&buf, `{"kind":"node","parent":0,"capacity":10,"storage":3}`)
	fmt.Fprintln(&buf, `{"kind":"client","parent":1,"rate":4}`)
	fmt.Fprintln(&buf, `{"kind":"client","parent":1,"rate":9}`)
	fmt.Fprintln(&buf, `{"kind":"client","parent":0,"rate":2}`)

	resp, err := http.Post(srv.URL+"/v1/instances", "application/x-ndjson", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("stream create: status %d: %s", resp.StatusCode, b)
	}
	var created instancePayload
	decodeBody(t, resp, &created)
	if created.Vertices != 5 || created.Clients != 3 {
		t.Fatalf("streamed instance shape: %+v", created.Status)
	}

	// The same instance as JSON must solve identically.
	resp, err = http.Get(srv.URL + "/v1/instances/" + created.ID + "?include_instance=1")
	if err != nil {
		t.Fatal(err)
	}
	var got instancePayload
	decodeBody(t, resp, &got)
	want := &core.Instance{
		R: []int64{0, 0, 4, 9, 2},
		W: []int64{100, 10, 0, 0, 0},
		S: []int64{100, 3, 0, 0, 0},
	}
	if fmt.Sprint(got.Instance.R) != fmt.Sprint(want.R) ||
		fmt.Sprint(got.Instance.W) != fmt.Sprint(want.W) ||
		fmt.Sprint(got.Instance.S) != fmt.Sprint(want.S) {
		t.Fatalf("streamed instance vectors:\nR=%v W=%v S=%v\nwant\nR=%v W=%v S=%v",
			got.Instance.R, got.Instance.W, got.Instance.S, want.R, want.W, want.S)
	}
}

func TestSessionHTTPStreamingCreateErrors(t *testing.T) {
	srv, _ := newSessionServer(t, session.Options{})
	bad := []string{
		// Missing header entirely (first line is a vertex → no solver).
		`{"kind":"node","parent":-1,"capacity":1}`,
		// Root with a parent.
		"{\"solver\":\"mg\"}\n{\"kind\":\"node\",\"parent\":3,\"capacity\":1}",
		// Forward reference.
		"{\"solver\":\"mg\"}\n{\"kind\":\"node\",\"parent\":-1,\"capacity\":1}\n{\"kind\":\"client\",\"parent\":5,\"rate\":1}",
		// Client as a parent.
		"{\"solver\":\"mg\"}\n{\"kind\":\"node\",\"parent\":-1,\"capacity\":9}\n{\"kind\":\"client\",\"parent\":0,\"rate\":1}\n{\"kind\":\"client\",\"parent\":1,\"rate\":1}",
		// Unknown kind.
		"{\"solver\":\"mg\"}\n{\"kind\":\"router\",\"parent\":-1}",
		// No vertices at all.
		`{"solver":"mg"}`,
	}
	for i, body := range bad {
		resp, err := http.Post(srv.URL+"/v1/instances", "application/x-ndjson", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad stream %d: status %d, want 400", i, resp.StatusCode)
		}
	}
}

// TestSessionHTTPContract is the table-driven error-path contract: wrong
// methods, malformed ops, unknown ids, stale/future resume points.
func TestSessionHTTPContract(t *testing.T) {
	srv, _ := newSessionServer(t, session.Options{DiffRetention: 2})
	in := gen.Instance(gen.Config{Internal: 10, Clients: 30}, 2)
	created := createInstance(t, srv, in, "mg")
	id := created.ID

	// Push enough revisions that rev 1 falls out of the retention ring.
	c := in.Tree.Clients()[0]
	for i := 0; i < 6; i++ {
		resp := doRequest(t, http.MethodPatch, srv.URL+"/v1/instances/"+id, patchRequest{
			Ops: []session.Op{{Op: session.OpSetRate, Vertex: c, Value: int64(i + 1)}},
		})
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed patch %d: status %d", i, resp.StatusCode)
		}
	}

	cases := []struct {
		name   string
		method string
		path   string
		body   any
		want   int
	}{
		{"create missing instance", http.MethodPost, "/v1/instances", map[string]any{"solver": "mg"}, 400},
		{"create missing solver", http.MethodPost, "/v1/instances", map[string]any{"instance": in}, 400},
		{"create unknown solver", http.MethodPost, "/v1/instances", instanceCreateRequest{Instance: in, Solver: "nope"}, 404},
		{"create bound solver", http.MethodPost, "/v1/instances", instanceCreateRequest{Instance: in, Solver: "lp-rational"}, 400},
		{"create bad policy", http.MethodPost, "/v1/instances", map[string]any{"instance": in, "solver": "mg", "policy": "sideways"}, 400},
		{"get unknown", http.MethodGet, "/v1/instances/pi-ffffffffffffffff", nil, 404},
		{"patch unknown", http.MethodPatch, "/v1/instances/pi-ffffffffffffffff", patchRequest{Ops: []session.Op{{Op: session.OpSetRate, Vertex: c, Value: 1}}}, 404},
		{"delete unknown", http.MethodDelete, "/v1/instances/pi-ffffffffffffffff", nil, 404},
		{"watch unknown", http.MethodGet, "/v1/instances/pi-ffffffffffffffff/watch", nil, 404},
		{"patch empty ops", http.MethodPatch, "/v1/instances/" + id, patchRequest{}, 400},
		{"patch unknown op", http.MethodPatch, "/v1/instances/" + id, patchRequest{Ops: []session.Op{{Op: "transmogrify", Vertex: c}}}, 400},
		{"patch rate on internal", http.MethodPatch, "/v1/instances/" + id, patchRequest{Ops: []session.Op{{Op: session.OpSetRate, Vertex: in.Tree.Root(), Value: 1}}}, 400},
		{"patch negative capacity", http.MethodPatch, "/v1/instances/" + id, patchRequest{Ops: []session.Op{{Op: session.OpSetCapacity, Vertex: in.Tree.Root(), Value: -1}}}, 400},
		{"patch vertex out of range", http.MethodPatch, "/v1/instances/" + id, patchRequest{Ops: []session.Op{{Op: session.OpSetRate, Vertex: 10_000, Value: 1}}}, 400},
		{"patch malformed json", http.MethodPatch, "/v1/instances/" + id, "{{{", 400},
		{"watch stale from_rev", http.MethodGet, "/v1/instances/" + id + "/watch?from_rev=1", nil, 409},
		{"watch future from_rev", http.MethodGet, "/v1/instances/" + id + "/watch?from_rev=99", nil, 400},
		{"watch unparseable from_rev", http.MethodGet, "/v1/instances/" + id + "/watch?from_rev=banana", nil, 400},
		{"method not allowed put", http.MethodPut, "/v1/instances/" + id, patchRequest{}, 405},
		{"method not allowed post on id", http.MethodPost, "/v1/instances/" + id, patchRequest{}, 405},
		{"method not allowed delete on list", http.MethodDelete, "/v1/instances", nil, 405},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := doRequest(t, tc.method, srv.URL+tc.path, tc.body)
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				b, _ := io.ReadAll(resp.Body)
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.want, b)
			}
		})
	}

	// The failed batches above must not have bumped the revision.
	resp, err := http.Get(srv.URL + "/v1/instances/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var got instancePayload
	decodeBody(t, resp, &got)
	if got.Rev != 7 {
		t.Fatalf("rev = %d after rejected batches, want 7", got.Rev)
	}
}

// TestSessionErrorStatusMapping pins the status classes: solver faults
// and solve timeouts are server-side 5xx, not 400; only bad input is 400.
func TestSessionErrorStatusMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{session.ErrSolverFault, 500},
		{fmt.Errorf("%w: solver mg produced an invalid solution: root overloaded", session.ErrSolverFault), 500},
		{context.DeadlineExceeded, 504},
		{fmt.Errorf("solve: %w", context.DeadlineExceeded), 504},
		{context.Canceled, 504},
		{session.ErrTooManySessions, 503},
		{session.ErrNotFound, 404},
		{session.ErrStaleRev, 409},
		{errors.New("session: op 0 (set_rate): negative rate -1"), 400},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		sessionError(rec, tc.err)
		if rec.Code != tc.want {
			t.Errorf("sessionError(%v) = %d, want %d", tc.err, rec.Code, tc.want)
		}
	}
}

func TestSessionHTTPDisabled(t *testing.T) {
	e := NewEngine(EngineOptions{Workers: 2})
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		e.Close(ctx)
	})
	for _, path := range []string{"/v1/instances", "/v1/instances/pi-00", "/v1/instances/pi-00/watch"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotImplemented {
			t.Fatalf("GET %s without sessions: status %d, want 501", path, resp.StatusCode)
		}
	}
}

// TestSessionHTTPWatchStream exercises the NDJSON watch wire format:
// replay from rev 0, then a live diff.
func TestSessionHTTPWatchStream(t *testing.T) {
	srv, _ := newSessionServer(t, session.Options{})
	in := gen.Instance(gen.Config{Internal: 10, Clients: 30}, 8)
	created := createInstance(t, srv, in, "mg")
	id := created.ID

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/v1/instances/"+id+"/watch?from_rev=0", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("watch content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	readDiff := func() session.Diff {
		t.Helper()
		if !sc.Scan() {
			t.Fatalf("watch stream ended early: %v", sc.Err())
		}
		var d session.Diff
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("bad watch line %q: %v", sc.Text(), err)
		}
		return d
	}
	if d := readDiff(); d.Rev != 1 || len(d.Add) == 0 {
		t.Fatalf("first watch line: %+v", d)
	}

	c := in.Tree.Clients()[1]
	pr := doRequest(t, http.MethodPatch, srv.URL+"/v1/instances/"+id, patchRequest{
		Ops: []session.Op{{Op: session.OpSetRate, Vertex: c, Value: in.R[c] + 7}},
	})
	pr.Body.Close()
	if d := readDiff(); d.Rev != 2 {
		t.Fatalf("live watch line: %+v", d)
	}
}

// TestSessionMetricsExposed checks the rp_session_* families appear once
// a manager is attached.
func TestSessionMetricsExposed(t *testing.T) {
	srv, _ := newSessionServer(t, session.Options{})
	// Big enough that one client's root path stays under the dirty
	// threshold: the delta below must count as an incremental solve.
	in := gen.Instance(gen.Config{Internal: 60, Clients: 180}, 8)
	created := createInstance(t, srv, in, "mg")
	pr := doRequest(t, http.MethodPatch, srv.URL+"/v1/instances/"+created.ID, patchRequest{
		Ops: []session.Op{{Op: session.OpSetRate, Vertex: in.Tree.Clients()[0], Value: 3}},
	})
	pr.Body.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"rp_sessions 1",
		"rp_sessions_created_total 1",
		"rp_session_deltas_total 1",
		`rp_session_solves_total{mode="incremental"} 1`,
		"rp_session_apply_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
