package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"strings"

	"repro/internal/core"
)

// Key returns the canonical cache key of a request: a SHA-256 over a
// deterministic binary encoding of the tree shape, every parameter
// vector (including absence of the optional QoS/Comm/BW vectors), the
// canonical solver name, and the result-affecting options. Two requests
// with equal keys are guaranteed to describe the same computation, so
// the cache may serve one's result for the other.
//
// The shape section (parents + client flags) is hashed by the same
// encoding as ShapeKey, so the tree-interning cache of the batch path and
// the solution cache agree on what "same topology" means.
func Key(in *core.Instance, solver string, opt Options) string {
	h := sha256.New()
	writeShape(h, in.Tree.Parents(), in.Tree.ClientFlags())
	writeTag(h, "r")
	writeInt64s(h, in.R)
	writeTag(h, "w")
	writeInt64s(h, in.W)
	writeTag(h, "s")
	writeInt64s(h, in.S)
	writeTag(h, "q")
	writeInts(h, in.Q)
	writeTag(h, "comm")
	writeInt64s(h, in.Comm)
	writeTag(h, "bw")
	writeInt64s(h, in.BW)
	writeTag(h, "solver")
	writeTag(h, strings.ToLower(strings.TrimSpace(solver)))
	writeTag(h, "opts")
	writeUint64(h, uint64(opt.BoundNodes))
	if len(opt.Objects) > 0 {
		// Multi-object requests key on the per-object vectors too: the
		// same base instance under different object sets is a different
		// computation. Single-object requests skip the section entirely,
		// so their keys are unchanged by this extension.
		writeTag(h, "objects")
		writeUint64(h, uint64(len(opt.Objects)))
		for _, ov := range opt.Objects {
			writeInt64s(h, ov.R)
			writeInt64s(h, ov.S)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ShapeKey returns the canonical key of a tree shape alone — the shape
// section of Key. The batch path interns preprocessed trees under it, so
// repeated batches over one topology skip the tree build entirely.
func ShapeKey(parents []int, isClient []bool) string {
	h := sha256.New()
	writeShape(h, parents, isClient)
	return hex.EncodeToString(h.Sum(nil))
}

func writeShape(h hash.Hash, parents []int, isClient []bool) {
	writeTag(h, "tree")
	writeInts(h, parents)
	writeBools(h, isClient)
}

func writeTag(h hash.Hash, tag string) {
	writeUint64(h, uint64(len(tag)))
	h.Write([]byte(tag))
}

func writeUint64(h hash.Hash, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	h.Write(buf[:])
}

// writeInt64s length-prefixes the vector; a nil slice encodes with
// length 0 and an explicit absence marker so nil and empty differ from
// any present vector.
func writeInt64s(h hash.Hash, v []int64) {
	if v == nil {
		writeUint64(h, ^uint64(0))
		return
	}
	writeUint64(h, uint64(len(v)))
	for _, x := range v {
		writeUint64(h, uint64(x))
	}
}

func writeInts(h hash.Hash, v []int) {
	if v == nil {
		writeUint64(h, ^uint64(0))
		return
	}
	writeUint64(h, uint64(len(v)))
	for _, x := range v {
		writeUint64(h, uint64(int64(x)))
	}
}

func writeBools(h hash.Hash, v []bool) {
	writeUint64(h, uint64(len(v)))
	for _, x := range v {
		if x {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
}
