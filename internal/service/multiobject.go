package service

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/multiobject"
)

// ObjectVectors is one object's per-vertex data in a multi-object
// request: request rates (clients only) and per-node storage costs. The
// shared tree, capacities and optional QoS/Comm/BW vectors come from the
// request's base instance.
type ObjectVectors struct {
	R []int64 `json:"requests"`
	S []int64 `json:"storage_costs"`
}

// ObjectPlacement is one object's slice of a multi-object response.
type ObjectPlacement struct {
	Object       int            `json:"object"`
	Cost         int64          `json:"cost"`
	ReplicaCount int            `json:"replica_count"`
	Replicas     []int          `json:"replicas,omitempty"`
	Solution     *core.Solution `json:"solution,omitempty"`
}

// buildMultiInstance assembles and validates the multiobject.Instance a
// multi-object backend runs on: the base instance supplies tree, shared
// capacities and the optional constraint vectors; objects supply the
// per-object rates and costs.
func buildMultiInstance(in *core.Instance, objects []ObjectVectors) (*multiobject.Instance, error) {
	if len(objects) == 0 {
		return nil, errors.New("service: multi-object solver needs options.objects (one requests/storage_costs pair per object)")
	}
	mi := &multiobject.Instance{
		Base: in,
		R:    make([][]int64, len(objects)),
		S:    make([][]int64, len(objects)),
	}
	for k, ov := range objects {
		mi.R[k] = ov.R
		mi.S[k] = ov.S
	}
	if err := mi.Validate(); err != nil {
		return nil, err
	}
	return mi, nil
}

// objectCost is object k's share of a multi-object placement's storage
// cost (Σ S[k][j] over its replicas) — Solution.Cost summed per object.
func objectCost(sol *core.Solution, s []int64) int64 {
	var cost int64
	for _, j := range sol.Replicas() {
		cost += s[j]
	}
	return cost
}

// registerMultiObject adds the Section 8 multi-object backends: the
// joint greedy placement and its rational LP lower bound. Both consume
// Options.Objects; the engine folds those vectors into the cache key.
func registerMultiObject(r *Registry, must func(error)) {
	must(r.Register(Solver{
		Name: "mo-greedy", Long: "multi-object joint greedy placement, shared capacities (Section 8)",
		Policy: core.Multiple, Kind: "multiobject", MultiObject: true,
		Run: func(_ context.Context, in *core.Instance, opt Options) (Result, error) {
			mi, err := buildMultiInstance(in, opt.Objects)
			if err != nil {
				return Result{}, err
			}
			sol, err := multiobject.GreedyMultiple(mi)
			if isNoSolution(err) {
				return Result{NoSolution: true}, nil
			}
			if err != nil {
				return Result{}, err
			}
			return Result{MultiSolution: sol}, nil
		},
	}))
	must(r.Register(Solver{
		Name: "lp-mo-rational", Long: "multi-object fully rational LP relaxation bound, shared capacities",
		Policy: core.Multiple, Kind: "bound", MultiObject: true,
		Run: func(_ context.Context, in *core.Instance, opt Options) (Result, error) {
			mi, err := buildMultiInstance(in, opt.Objects)
			if err != nil {
				return Result{}, err
			}
			v, err := multiobject.RationalBound(mi)
			if isNoSolution(err) {
				return Result{NoSolution: true, HasBound: true}, nil
			}
			if err != nil {
				return Result{}, err
			}
			return Result{HasBound: true, Bound: v, BoundExact: true}, nil
		},
	}))
}

// validateObjects is the HTTP layer's pre-engine check, turning
// object-shape mistakes into 400s with a pointed message instead of
// opaque engine errors.
func validateObjects(reg *Registry, solverName string, policy core.Policy, in *core.Instance, objects []ObjectVectors) error {
	s, ok := reg.Resolve(solverName, policy)
	if !ok {
		return nil // the engine reports unknown solvers itself (404)
	}
	if !s.MultiObject {
		if len(objects) > 0 {
			return fmt.Errorf("solver %q is single-object; options.objects only applies to multi-object solvers (mo-greedy, lp-mo-rational)", s.Name)
		}
		return nil
	}
	if _, err := buildMultiInstance(in, objects); err != nil {
		return err
	}
	return nil
}
