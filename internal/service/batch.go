package service

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/tree"
)

// MaxBatchVariations bounds the number of parameter vectors accepted by
// one SolveBatch call.
const MaxBatchVariations = 4096

// BatchVariation is one parameter vector of a batch request. Nil vectors
// inherit the base instance's; a present vector fully replaces it.
type BatchVariation struct {
	R    []int64 `json:"requests,omitempty"`
	W    []int64 `json:"capacities,omitempty"`
	S    []int64 `json:"storage_costs,omitempty"`
	Q    []int   `json:"qos,omitempty"`
	Comm []int64 `json:"comm,omitempty"`
	BW   []int64 `json:"bandwidth,omitempty"`
}

// BatchRequest names one batched computation: one solver applied to N
// parameter variations of a single topology. The tree is preprocessed
// once (and typically interned across requests — see Engine.InternTree);
// only the parameter vectors differ per variation.
type BatchRequest struct {
	// Base supplies the topology and the default parameter vectors.
	Base *core.Instance
	// Solver and Policy resolve against the registry exactly as in
	// Request.
	Solver string
	Policy core.Policy
	// Options apply to every variation.
	Options Options
	// Variations are the per-item parameter overrides. An empty
	// BatchVariation solves the base instance itself.
	Variations []BatchVariation
}

// BatchItem is the outcome of one variation of a batch.
type BatchItem struct {
	// Index is the variation's position in BatchRequest.Variations.
	Index int
	// Response is the per-variation result; nil when Err is set.
	Response *Response
	// Err is the per-variation failure (validation, timeout, ...). One
	// item failing does not abort the rest of the batch.
	Err error
}

// SolveBatch schedules every variation of the request on the worker pool
// and delivers results in completion order — not index order — so a
// streaming caller can flush each item as soon as it is solved.
// Identical variations coalesce through the engine's single-flight cache
// like any other requests. SolveBatch returns after the last variation
// has been delivered; per-variation failures (including deadline expiry)
// are reported on their BatchItem, not as the batch error.
func (e *Engine) SolveBatch(ctx context.Context, req BatchRequest, deliver func(BatchItem)) error {
	if req.Base == nil {
		return errors.New("service: batch request without base instance")
	}
	if err := req.Base.Validate(); err != nil {
		return err
	}
	if len(req.Variations) == 0 {
		return errors.New("service: batch request without variations")
	}
	if len(req.Variations) > MaxBatchVariations {
		return fmt.Errorf("service: batch limited to %d variations, got %d",
			MaxBatchVariations, len(req.Variations))
	}
	if _, ok := e.opts.Registry.Resolve(req.Solver, req.Policy); !ok {
		return &ErrUnknownSolver{Name: req.Solver}
	}

	results := make(chan BatchItem)
	for i := range req.Variations {
		go func(i int) {
			item := BatchItem{Index: i}
			resp, err := e.Solve(ctx, Request{
				Instance: req.Variations[i].instance(req.Base),
				Solver:   req.Solver,
				Policy:   req.Policy,
				Options:  req.Options,
			})
			item.Response, item.Err = resp, err
			results <- item
		}(i)
	}
	for range req.Variations {
		item := <-results
		if deliver != nil {
			deliver(item)
		}
	}
	return nil
}

// Apply builds the variation's instance over the base — exported for
// the cluster router, which probes the coordinator cache per variation
// before deciding what to ship to the shards.
func (v *BatchVariation) Apply(base *core.Instance) *core.Instance {
	return v.instance(base)
}

// instance builds the variation's instance over the base, sharing the
// preprocessed tree and every vector the variation does not override.
func (v *BatchVariation) instance(base *core.Instance) *core.Instance {
	in := &core.Instance{
		Tree: base.Tree,
		R:    base.R,
		W:    base.W,
		S:    base.S,
		Q:    base.Q,
		Comm: base.Comm,
		BW:   base.BW,
	}
	if v.R != nil {
		in.R = v.R
	}
	if v.W != nil {
		in.W = v.W
	}
	if v.S != nil {
		in.S = v.S
	}
	if v.Q != nil {
		in.Q = v.Q
	}
	if v.Comm != nil {
		in.Comm = v.Comm
	}
	if v.BW != nil {
		in.BW = v.BW
	}
	return in
}

// treeCache is a small LRU of preprocessed trees keyed by the shape
// section of the canonical hash, so repeated batch requests over one
// topology pay the Euler-tour build once.
type treeCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*treeCacheEntry
	lru     *list.List // of string keys, front = most recent

	hits, misses uint64
}

type treeCacheEntry struct {
	tree *tree.Tree
	elem *list.Element
}

// maxInternedTrees bounds the engine's topology cache. A preprocessed
// tree is a handful of int slices, so this is at most a few MB.
const maxInternedTrees = 128

func newTreeCache(max int) *treeCache {
	return &treeCache{max: max, entries: map[string]*treeCacheEntry{}, lru: list.New()}
}

// InternTree returns the preprocessed tree for the given shape, reusing a
// cached one when the same topology (by canonical shape hash) was seen
// before. The returned tree is shared and immutable.
func (e *Engine) InternTree(parents []int, isClient []bool) (*tree.Tree, error) {
	key := ShapeKey(parents, isClient)
	tc := e.trees
	tc.mu.Lock()
	if ent, ok := tc.entries[key]; ok {
		tc.hits++
		tc.lru.MoveToFront(ent.elem)
		t := ent.tree
		tc.mu.Unlock()
		return t, nil
	}
	tc.misses++
	tc.mu.Unlock()

	// Build outside the lock: FromParents is the expensive part being
	// amortized. Concurrent first requests for one shape may build twice;
	// the last one wins, which is harmless (trees are immutable).
	t, err := tree.FromParents(parents, isClient)
	if err != nil {
		return nil, err
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if ent, ok := tc.entries[key]; ok {
		tc.lru.MoveToFront(ent.elem)
		return ent.tree, nil
	}
	ent := &treeCacheEntry{tree: t, elem: tc.lru.PushFront(key)}
	tc.entries[key] = ent
	for tc.lru.Len() > tc.max {
		tail := tc.lru.Back()
		tc.lru.Remove(tail)
		delete(tc.entries, tail.Value.(string))
	}
	return t, nil
}

// stats returns the tree-interning counters.
func (tc *treeCache) stats() (hits, misses uint64, entries int) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.hits, tc.misses, tc.lru.Len()
}
