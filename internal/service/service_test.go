package service

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/heuristics"
)

// testInstance is a small feasible homogeneous instance (5 internal
// nodes keeps brute force comfortable).
func testInstance(t testing.TB) *core.Instance {
	t.Helper()
	in := gen.Instance(gen.Config{Internal: 5, Clients: 10, Lambda: 0.3, UnitCosts: true}, 1)
	if _, err := heuristics.MG(in); err != nil {
		t.Fatalf("test instance infeasible: %v", err)
	}
	return in
}

// countingRegistry wraps a single "stub" solver that counts backend
// invocations and optionally sleeps, for cache and shutdown tests.
func countingRegistry(t testing.TB, delay time.Duration, calls *atomic.Int64) *Registry {
	t.Helper()
	r := new(Registry)
	err := r.Register(Solver{
		Name: "stub", Long: "counting stub", Policy: core.Multiple, Kind: "heuristic",
		Run: func(_ context.Context, in *core.Instance, opt Options) (Result, error) {
			calls.Add(1)
			if delay > 0 {
				time.Sleep(delay)
			}
			return solutionBackend(heuristics.MG)(context.Background(), in, opt)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func newTestEngine(t testing.TB, opts EngineOptions) *Engine {
	t.Helper()
	e := NewEngine(opts)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		e.Close(ctx)
	})
	return e
}

func TestRegistryDefaultSet(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{
		"optimal", "closest-optimal", "closest-qos-optimal",
		"brute-closest", "brute-upwards", "brute-multiple",
		"ctda", "ctdlf", "cbu", "utd", "ubcf", "mtd", "mbu", "mg", "mb",
		"ctda-qos", "ubcf-qos", "mg-qos", "ctda-bw", "ubcf-bw", "mg-bw",
		"lp-rational-closest", "lp-rational-upwards", "lp-rational-multiple",
		"lp-refined-closest", "lp-refined-upwards", "lp-refined-multiple",
		"mo-greedy", "lp-mo-rational",
	} {
		if _, ok := r.Lookup(name); !ok {
			t.Errorf("missing solver %q", name)
		}
	}
	if got := len(r.Solvers()); got != 29 {
		t.Errorf("registry has %d solvers, want 29", got)
	}
}

func TestRegistryLookupCaseInsensitive(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"MB", "mb", "Mb", "  CTDA ", "Lp-Refined-Multiple"} {
		if _, ok := r.Lookup(name); !ok {
			t.Errorf("Lookup(%q) failed", name)
		}
	}
}

func TestRegistryResolveFamily(t *testing.T) {
	r := NewRegistry()
	s, ok := r.Resolve("brute", core.Upwards)
	if !ok || s.Name != "brute-upwards" {
		t.Errorf("Resolve(brute, Upwards) = %q, %v", s.Name, ok)
	}
	s, ok = r.Resolve("lp-refined", core.Multiple)
	if !ok || s.Name != "lp-refined-multiple" {
		t.Errorf("Resolve(lp-refined, Multiple) = %q, %v", s.Name, ok)
	}
	// A concrete name wins regardless of policy.
	s, ok = r.Resolve("mg", core.Closest)
	if !ok || s.Name != "mg" {
		t.Errorf("Resolve(mg, Closest) = %q, %v", s.Name, ok)
	}
	if _, ok := r.Resolve("nope", core.Multiple); ok {
		t.Error("Resolve(nope) unexpectedly succeeded")
	}
}

func TestRegistryRejectsDuplicatesAndEmpty(t *testing.T) {
	r := new(Registry)
	ok := Solver{Name: "x", Kind: "heuristic", Run: solutionBackend(heuristics.MG)}
	if err := r.Register(ok); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(ok); err == nil {
		t.Error("duplicate registration succeeded")
	}
	if err := r.Register(Solver{Name: " ", Run: ok.Run}); err == nil {
		t.Error("empty name registration succeeded")
	}
	if err := r.Register(Solver{Name: "y"}); err == nil {
		t.Error("nil backend registration succeeded")
	}
}

func TestKeyCanonical(t *testing.T) {
	in := testInstance(t)
	k1 := Key(in, "mb", Options{})
	if k2 := Key(in.Clone(), "mb", Options{}); k2 != k1 {
		t.Error("clone hashed differently")
	}
	if k2 := Key(in, "MB", Options{}); k2 != k1 {
		t.Error("solver name hashing is case-sensitive")
	}
	if k2 := Key(in, "mg", Options{}); k2 == k1 {
		t.Error("different solvers share a key")
	}
	if k2 := Key(in, "mb", Options{BoundNodes: 9}); k2 == k1 {
		t.Error("different bound budgets share a key")
	}
	if k2 := Key(in, "mb", Options{NoCache: true, IncludeSolution: true, Timeout: time.Second}); k2 != k1 {
		t.Error("result-neutral options changed the key")
	}

	mod := in.Clone()
	mod.W[mod.Tree.Internal()[0]]++
	if Key(mod, "mb", Options{}) == k1 {
		t.Error("capacity change kept the key")
	}
	qos := in.Clone()
	qos.Q = make([]int, in.Tree.Len())
	for i := range qos.Q {
		qos.Q[i] = core.NoQoS
	}
	if Key(qos, "mb", Options{}) == k1 {
		t.Error("adding a (trivial) QoS vector kept the key")
	}
}

// TestEngineSolveEverySolver runs every registered solver end-to-end
// through the pool on one instance.
func TestEngineSolveEverySolver(t *testing.T) {
	in := testInstance(t)
	e := newTestEngine(t, EngineOptions{Workers: 4})
	for _, s := range e.Registry().Solvers() {
		req := Request{Instance: in, Solver: s.Name}
		if s.MultiObject {
			// One object carrying the base vectors: the single-object
			// problem phrased multi-object.
			req.Options.Objects = []ObjectVectors{{R: in.R, S: in.S}}
		}
		resp, err := e.Solve(context.Background(), req)
		if err != nil {
			t.Errorf("%s: %v", s.Name, err)
			continue
		}
		if resp.Solver != s.Name || resp.Policy != s.Policy.String() {
			t.Errorf("%s: echoed %q/%q", s.Name, resp.Solver, resp.Policy)
		}
		switch {
		case resp.NoSolution:
			// Heuristics may legitimately fail; exact Multiple must not.
			if s.Name == "optimal" || s.Name == "mg" {
				t.Errorf("%s: no solution on a feasible instance", s.Name)
			}
		case s.IsBound():
			if resp.Bound == nil || resp.Bound.Value <= 0 {
				t.Errorf("%s: bound missing or non-positive: %+v", s.Name, resp.Bound)
			}
		default:
			if resp.Cost <= 0 || resp.ReplicaCount != len(resp.Replicas) {
				t.Errorf("%s: bad solution summary %+v", s.Name, resp)
			}
		}
	}
}

func TestEngineSolutionRoundTrip(t *testing.T) {
	in := testInstance(t)
	e := newTestEngine(t, EngineOptions{Workers: 2})
	resp, err := e.Solve(context.Background(), Request{
		Instance: in, Solver: "optimal", Options: Options{IncludeSolution: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Solution == nil {
		t.Fatal("IncludeSolution ignored")
	}
	if err := resp.Solution.Validate(in, core.Multiple); err != nil {
		t.Fatalf("returned solution invalid: %v", err)
	}
	if got := resp.Solution.StorageCost(in); got != resp.Cost {
		t.Errorf("cost mismatch: summary %d, solution %d", resp.Cost, got)
	}
}

func TestEngineCacheAccounting(t *testing.T) {
	var calls atomic.Int64
	e := newTestEngine(t, EngineOptions{Workers: 2, Registry: countingRegistry(t, 0, &calls)})
	in := testInstance(t)
	req := Request{Instance: in, Solver: "stub"}

	first, err := e.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first solve reported cached")
	}
	second, err := e.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("second identical solve not served from cache")
	}
	if first.Cost != second.Cost || first.ReplicaCount != second.ReplicaCount {
		t.Errorf("cached response differs: %+v vs %+v", first, second)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("backend ran %d times, want 1", n)
	}
	st := e.Stats()
	if st.CacheMisses != 1 || st.CacheHits != 1 || st.Computations != 1 || st.Requests != 2 {
		t.Errorf("stats = %+v, want 1 miss / 1 hit / 1 computation / 2 requests", st)
	}
}

func TestEngineNoCacheOption(t *testing.T) {
	var calls atomic.Int64
	e := newTestEngine(t, EngineOptions{Workers: 2, Registry: countingRegistry(t, 0, &calls)})
	in := testInstance(t)
	for i := 0; i < 2; i++ {
		if _, err := e.Solve(context.Background(), Request{
			Instance: in, Solver: "stub", Options: Options{NoCache: true},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("backend ran %d times with NoCache, want 2", n)
	}
}

// TestEngineSingleFlight is the acceptance-criteria test: N parallel
// solves of the same instance trigger exactly one backend computation.
func TestEngineSingleFlight(t *testing.T) {
	const parallel = 16
	var calls atomic.Int64
	e := newTestEngine(t, EngineOptions{
		Workers: 8, QueueDepth: 2 * parallel,
		Registry: countingRegistry(t, 50*time.Millisecond, &calls),
	})
	in := testInstance(t)

	var wg sync.WaitGroup
	costs := make([]int64, parallel)
	errs := make([]error, parallel)
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := e.Solve(context.Background(), Request{Instance: in.Clone(), Solver: "stub"})
			if err != nil {
				errs[i] = err
				return
			}
			costs[i] = resp.Cost
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("solve %d: %v", i, err)
		}
	}
	for i := 1; i < parallel; i++ {
		if costs[i] != costs[0] {
			t.Fatalf("divergent costs: %v", costs)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("backend ran %d times for %d parallel identical solves, want 1", n, parallel)
	}
}

// TestWaitersDoNotHoldWorkers pins the scheduling property that
// duplicate requests waiting on an in-flight computation do not occupy
// pool slots: with 2 workers, one slow computation and several
// duplicates of it, an unrelated fast request must still get through
// promptly on the second worker.
func TestWaitersDoNotHoldWorkers(t *testing.T) {
	slow := testInstance(t)
	fast := gen.Instance(gen.Config{Internal: 5, Clients: 10, Lambda: 0.3, UnitCosts: true}, 99)
	var calls atomic.Int64
	r := new(Registry)
	if err := r.Register(Solver{
		Name: "slow", Policy: core.Multiple, Kind: "heuristic",
		Run: func(_ context.Context, in *core.Instance, opt Options) (Result, error) {
			calls.Add(1)
			time.Sleep(500 * time.Millisecond)
			return solutionBackend(heuristics.MG)(context.Background(), in, opt)
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(Solver{
		Name: "fast", Policy: core.Multiple, Kind: "heuristic",
		Run: solutionBackend(heuristics.MG),
	}); err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, EngineOptions{Workers: 2, QueueDepth: 16, Registry: r})

	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e.Solve(context.Background(), Request{Instance: slow, Solver: "slow"}); err != nil {
				t.Error(err)
			}
		}()
	}
	// Give the duplicates time to claim/queue, then race the fast one.
	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	if _, err := e.Solve(context.Background(), Request{Instance: fast, Solver: "fast"}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 250*time.Millisecond {
		t.Errorf("fast request took %v behind duplicate waiters; want well under the 500ms slow solve", d)
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Errorf("slow backend ran %d times, want 1", n)
	}
}

// TestBoundNodesKeyNormalization pins the cache-key rule: BoundNodes
// only splits keys for budgeted bound solvers, and the default budget
// hashes like an explicit 400.
func TestBoundNodesKeyNormalization(t *testing.T) {
	var calls atomic.Int64
	e := newTestEngine(t, EngineOptions{Workers: 1, Registry: countingRegistry(t, 0, &calls)})
	in := testInstance(t)
	for _, opt := range []Options{{}, {BoundNodes: 123}} {
		if _, err := e.Solve(context.Background(), Request{Instance: in, Solver: "stub", Options: opt}); err != nil {
			t.Fatal(err)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("stray BoundNodes split the key for a non-bound solver: %d computations", n)
	}

	e2 := newTestEngine(t, EngineOptions{Workers: 1})
	for _, opt := range []Options{{}, {BoundNodes: 400}} {
		if _, err := e2.Solve(context.Background(), Request{
			Instance: in, Solver: "lp-refined-multiple", Options: opt,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if st := e2.Stats(); st.Computations != 1 {
		t.Errorf("default and explicit-400 refined budgets hashed differently: %d computations", st.Computations)
	}
	// A genuinely different budget is a different computation.
	if _, err := e2.Solve(context.Background(), Request{
		Instance: in, Solver: "lp-refined-multiple", Options: Options{BoundNodes: 7},
	}); err != nil {
		t.Fatal(err)
	}
	if st := e2.Stats(); st.Computations != 2 {
		t.Errorf("distinct refined budget did not recompute: %d computations", st.Computations)
	}
}

func TestEngineDeadline(t *testing.T) {
	var calls atomic.Int64
	e := newTestEngine(t, EngineOptions{Workers: 1, Registry: countingRegistry(t, 300*time.Millisecond, &calls)})
	_, err := e.Solve(context.Background(), Request{
		Instance: testInstance(t), Solver: "stub", Options: Options{Timeout: 20 * time.Millisecond},
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestEngineUnknownSolver(t *testing.T) {
	e := newTestEngine(t, EngineOptions{Workers: 1})
	_, err := e.Solve(context.Background(), Request{Instance: testInstance(t), Solver: "nope"})
	var unknown *ErrUnknownSolver
	if !errors.As(err, &unknown) || unknown.Name != "nope" {
		t.Fatalf("err = %v, want ErrUnknownSolver{nope}", err)
	}
}

func TestEngineRejectsInvalidInstance(t *testing.T) {
	e := newTestEngine(t, EngineOptions{Workers: 1})
	if _, err := e.Solve(context.Background(), Request{Solver: "mb"}); err == nil {
		t.Error("nil instance accepted")
	}
	bad := testInstance(t).Clone()
	bad.R = bad.R[:1]
	if _, err := e.Solve(context.Background(), Request{Instance: bad, Solver: "mb"}); err == nil {
		t.Error("malformed instance accepted")
	}
}

// TestEngineGracefulShutdown checks that Close drains the in-flight job
// (the caller still gets its result) and rejects later submissions.
func TestEngineGracefulShutdown(t *testing.T) {
	var calls atomic.Int64
	e := NewEngine(EngineOptions{Workers: 1, Registry: countingRegistry(t, 150*time.Millisecond, &calls)})
	in := testInstance(t)

	type outcome struct {
		resp *Response
		err  error
	}
	got := make(chan outcome, 1)
	go func() {
		resp, err := e.Solve(context.Background(), Request{Instance: in, Solver: "stub"})
		got <- outcome{resp, err}
	}()
	// Wait for the job to be in flight so Close has something to drain.
	deadline := time.Now().Add(2 * time.Second)
	for e.Stats().InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	out := <-got
	if out.err != nil || out.resp == nil || out.resp.Cost <= 0 {
		t.Fatalf("in-flight job was not drained: %+v, %v", out.resp, out.err)
	}
	if _, err := e.Solve(context.Background(), Request{Instance: in, Solver: "stub"}); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("post-close solve: err = %v, want ErrEngineClosed", err)
	}
	if err := e.Close(ctx); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestCacheEviction(t *testing.T) {
	var calls atomic.Int64
	e := newTestEngine(t, EngineOptions{Workers: 1, CacheSize: 1, Registry: countingRegistry(t, 0, &calls)})
	a := gen.Instance(gen.Config{Internal: 5, Clients: 10, Lambda: 0.3, UnitCosts: true}, 1)
	b := gen.Instance(gen.Config{Internal: 5, Clients: 10, Lambda: 0.3, UnitCosts: true}, 2)
	for _, in := range []*core.Instance{a, b, a} {
		if _, err := e.Solve(context.Background(), Request{Instance: in, Solver: "stub"}); err != nil {
			t.Fatal(err)
		}
	}
	if n := calls.Load(); n != 3 {
		t.Errorf("backend ran %d times, want 3 (a evicted by b)", n)
	}
	st := e.Stats()
	if st.Evictions == 0 || st.CacheEntries != 1 {
		t.Errorf("stats = %+v, want evictions > 0 and one retained entry", st)
	}
}

// TestNoSolutionCached checks that deterministic infeasibility results
// are cached like any other outcome.
func TestNoSolutionCached(t *testing.T) {
	// λ > 1 guarantees total demand exceeds capacity: infeasible.
	in := gen.Instance(gen.Config{Internal: 4, Clients: 8, Lambda: 8, UnitCosts: true}, 3)
	var calls atomic.Int64
	e := newTestEngine(t, EngineOptions{Workers: 1, Registry: countingRegistry(t, 0, &calls)})
	for i := 0; i < 2; i++ {
		resp, err := e.Solve(context.Background(), Request{Instance: in, Solver: "stub"})
		if err != nil {
			t.Fatal(err)
		}
		if !resp.NoSolution {
			t.Fatalf("overloaded instance solved: %+v", resp)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("backend ran %d times, want 1 (NoSolution cached)", n)
	}
}

func TestResolveTrimsAndFolds(t *testing.T) {
	e := newTestEngine(t, EngineOptions{Workers: 1})
	in := testInstance(t)
	for _, name := range []string{"MB", " mb ", "Optimal", "LP-RATIONAL", "brute"} {
		req := Request{Instance: in, Solver: name, Policy: core.Multiple}
		if _, err := e.Solve(context.Background(), req); err != nil {
			t.Errorf("Solve(%q): %v", name, err)
		}
	}
	if !strings.Contains(strings.Join(e.Registry().Names(), ","), "lp-refined-multiple") {
		t.Error("Names() missing lp-refined-multiple")
	}
}
