package service

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"repro/internal/jobs"
)

var (
	promComment = regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
	promSample  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_]+="(\\.|[^"\\])*"(,[a-zA-Z_]+="(\\.|[^"\\])*")*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$`)
)

// fakeCluster feeds the shard families without a real pool.
type fakeCluster struct{}

func (fakeCluster) ShardStats() []ShardStat {
	return []ShardStat{
		{Addr: "http://w1:1", State: "closed", Healthy: true, Requests: 9},
		{Addr: "http://w2:2", State: "open", Failures: 4, Failovers: 3},
	}
}

// TestHTTPMetrics: every /metrics line is Prometheus-parsable, and the
// cache and job gauge families the acceptance criteria name are there
// with live values.
func TestHTTPMetrics(t *testing.T) {
	e := newTestEngine(t, EngineOptions{Workers: 4})
	srv, m := newJobsServer(t, e, jobs.NewMemStore())
	defer srv.Close()
	defer closeJobs(t, m)

	// Generate some signal: one computed solve, one cache hit.
	for i := 0; i < 2; i++ {
		resp := postJSON(t, srv.URL+"/v1/solve", map[string]any{"instance": testInstance(t), "solver": "mb"})
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("priming solve: status %d", resp.StatusCode)
		}
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}

	samples := map[string]string{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !promComment.MatchString(line) {
				t.Errorf("unparsable comment line %q", line)
			}
			continue
		}
		if !promSample.MatchString(line) {
			t.Errorf("unparsable sample line %q", line)
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		samples[line[:sp]] = line[sp+1:]
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	for series, want := range map[string]string{
		"rp_engine_requests_total":                  "2",
		"rp_engine_computations_total":              "1",
		"rp_engine_workers":                         "4",
		"rp_cache_hits_total":                       "1",
		"rp_cache_misses_total":                     "1",
		`rp_cache_evictions_total{reason="lru"}`:    "0",
		`rp_cache_evictions_total{reason="bytes"}`:  "0",
		`rp_cache_evictions_total{reason="ttl"}`:    "0",
		"rp_cache_entries":                          "1",
		`rp_solver_cache_hits_total{solver="mb"}`:   "1",
		`rp_solver_cache_misses_total{solver="mb"}`: "1",
		`rp_jobs{state="queued"}`:                   "0",
		`rp_jobs{state="running"}`:                  "0",
		`rp_jobs{state="succeeded"}`:                "0",
		`rp_jobs{state="failed"}`:                   "0",
		`rp_jobs{state="canceled"}`:                 "0",
		`rp_jobs{state="interrupted"}`:              "0",
		"rp_job_workers":                            "1",
		"rp_jobs_pruned_total":                      "0",
	} {
		if got, ok := samples[series]; !ok {
			t.Errorf("series %s missing", series)
		} else if got != want {
			t.Errorf("%s = %s, want %s", series, got, want)
		}
	}
	if _, ok := samples["rp_cache_bytes"]; !ok {
		t.Error("rp_cache_bytes missing")
	}

	// With a cluster attached, the per-shard families appear, escaped
	// and parsable like everything else.
	cl := httptest.NewServer(NewHandlerOpts(e, HandlerOptions{Cluster: fakeCluster{}}))
	defer cl.Close()
	cresp, err := http.Get(cl.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	cdata := new(strings.Builder)
	sc3 := bufio.NewScanner(cresp.Body)
	for sc3.Scan() {
		line := sc3.Text()
		if line != "" && !strings.HasPrefix(line, "#") && !promSample.MatchString(line) {
			t.Errorf("unparsable cluster sample line %q", line)
		}
		cdata.WriteString(line)
		cdata.WriteByte('\n')
	}
	cresp.Body.Close()
	for _, series := range []string{
		`rp_cluster_shard_up{shard="http://w1:1"} 1`,
		`rp_cluster_shard_up{shard="http://w2:2"} 0`,
		`rp_cluster_shard_requests_total{shard="http://w1:1"} 9`,
		`rp_cluster_shard_failures_total{shard="http://w2:2"} 4`,
		`rp_cluster_shard_failovers_total{shard="http://w2:2"} 3`,
	} {
		if !strings.Contains(cdata.String(), series) {
			t.Errorf("cluster series %q missing from:\n%s", series, cdata.String())
		}
	}

	// Without a job manager /metrics still serves the engine families.
	bare := httptest.NewServer(NewHandler(e))
	defer bare.Close()
	bresp, err := http.Get(bare.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	var body strings.Builder
	sc2 := bufio.NewScanner(bresp.Body)
	for sc2.Scan() {
		body.WriteString(sc2.Text())
		body.WriteByte('\n')
	}
	if strings.Contains(body.String(), "rp_jobs{") {
		t.Error("job gauges served without a manager")
	}
	if !strings.Contains(body.String(), "rp_engine_requests_total") {
		t.Error("engine families missing without a manager")
	}
}
