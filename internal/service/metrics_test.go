package service

import (
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/obs"
)

// fakeCluster feeds the shard families without a real pool (the service
// tests cannot import internal/cluster — it imports this package), so
// the latency histograms are synthetic obs histograms.
type fakeCluster struct{}

func (fakeCluster) ShardStats() []ShardStat {
	return []ShardStat{
		{Addr: "http://w1:1", State: "closed", Healthy: true, Requests: 9, WireIdle: 5},
		{Addr: "http://w2:2", State: "open", Failures: 4, Failovers: 3},
	}
}

func (fakeCluster) ClusterHistograms() ClusterHistograms {
	rtt := obs.NewHistogramVec(nil)
	rtt.Observe("http://w1:1", 3*time.Millisecond)
	rtt.Observe("http://w1:1", 40*time.Millisecond)
	rtt.Observe("http://w2:2", 7*time.Millisecond)
	chunk := obs.NewHistogram(nil)
	chunk.Observe(120 * time.Millisecond)
	reorder := obs.NewHistogram(nil)
	reorder.Observe(500 * time.Microsecond)
	return ClusterHistograms{
		ShardRTT:    rtt.Snapshot(),
		BatchChunk:  chunk.Snapshot(),
		ReorderWait: reorder.Snapshot(),
	}
}

var _ ClusterLatencies = fakeCluster{}

// scrape GETs /metrics and strictly parses the exposition — any
// malformed line, family ordering violation, or histogram bucket
// invariant breach fails the test here.
func scrape(t *testing.T, url string) map[string]*obs.Family {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	fams, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	return fams
}

// sampleValue finds the one sample of a family whose labels include the
// given subset, failing if it is absent.
func sampleValue(t *testing.T, fams map[string]*obs.Family, family string, labels map[string]string) float64 {
	t.Helper()
	f, ok := fams[family]
	if !ok {
		t.Fatalf("family %s missing", family)
	}
	for _, s := range f.Samples {
		match := s.Name == family
		for k, v := range labels {
			if s.Label(k) != v {
				match = false
			}
		}
		if match {
			return s.Value
		}
	}
	t.Fatalf("family %s has no sample with labels %v", family, labels)
	return 0
}

// histogramCount returns the _count of one labeled series of a
// histogram family ("" selects the unlabeled series).
func histogramCount(t *testing.T, fams map[string]*obs.Family, family, labelName, labelValue string) float64 {
	t.Helper()
	f, ok := fams[family]
	if !ok {
		t.Fatalf("histogram family %s missing", family)
	}
	if f.Type != "histogram" {
		t.Fatalf("family %s has type %q, want histogram", family, f.Type)
	}
	for _, s := range f.Samples {
		if s.Name != family+"_count" {
			continue
		}
		if labelName == "" || s.Label(labelName) == labelValue {
			return s.Value
		}
	}
	t.Fatalf("histogram %s: no _count for %s=%q", family, labelName, labelValue)
	return 0
}

// TestHTTPMetrics: the full /metrics exposition parses strictly, and
// the counter, gauge and histogram families the acceptance criteria
// name are present with live values.
func TestHTTPMetrics(t *testing.T) {
	e := newTestEngine(t, EngineOptions{Workers: 4})
	srv, m := newJobsServer(t, e, jobs.NewMemStore())
	defer srv.Close()
	defer closeJobs(t, m)

	// Generate some signal: one computed solve, one cache hit.
	for i := 0; i < 2; i++ {
		resp := postJSON(t, srv.URL+"/v1/solve", map[string]any{"instance": testInstance(t), "solver": "mb"})
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("priming solve: status %d", resp.StatusCode)
		}
	}

	fams := scrape(t, srv.URL)

	for _, tc := range []struct {
		family string
		labels map[string]string
		want   float64
	}{
		{"rp_engine_requests_total", nil, 2},
		{"rp_engine_computations_total", nil, 1},
		{"rp_engine_workers", nil, 4},
		{"rp_cache_hits_total", nil, 1},
		{"rp_cache_misses_total", nil, 1},
		{"rp_cache_evictions_total", map[string]string{"reason": "lru"}, 0},
		{"rp_cache_evictions_total", map[string]string{"reason": "bytes"}, 0},
		{"rp_cache_evictions_total", map[string]string{"reason": "ttl"}, 0},
		{"rp_cache_entries", nil, 1},
		{"rp_solver_cache_hits_total", map[string]string{"solver": "mb"}, 1},
		{"rp_solver_cache_misses_total", map[string]string{"solver": "mb"}, 1},
		{"rp_jobs", map[string]string{"state": "queued"}, 0},
		{"rp_jobs", map[string]string{"state": "running"}, 0},
		{"rp_jobs", map[string]string{"state": "succeeded"}, 0},
		{"rp_jobs", map[string]string{"state": "failed"}, 0},
		{"rp_jobs", map[string]string{"state": "canceled"}, 0},
		{"rp_jobs", map[string]string{"state": "interrupted"}, 0},
		{"rp_job_workers", nil, 1},
		{"rp_jobs_pruned_total", nil, 0},
	} {
		if got := sampleValue(t, fams, tc.family, tc.labels); got != tc.want {
			t.Errorf("%s%v = %g, want %g", tc.family, tc.labels, got, tc.want)
		}
	}
	if _, ok := fams["rp_cache_bytes"]; !ok {
		t.Error("rp_cache_bytes missing")
	}

	// Build info: constant 1, carrying the running Go version.
	if got := sampleValue(t, fams, "rp_build_info", map[string]string{"go_version": runtime.Version()}); got != 1 {
		t.Errorf("rp_build_info = %g, want 1", got)
	}
	for _, s := range fams["rp_build_info"].Samples {
		if s.Label("version") == "" {
			t.Error("rp_build_info without a version label")
		}
	}

	// The engine latency histograms observed the primed solve: one
	// computation, so one sample each in the mb series (the cache hit
	// never reaches the pool).
	if got := histogramCount(t, fams, "rp_engine_solve_seconds", "solver", "mb"); got != 1 {
		t.Errorf("rp_engine_solve_seconds{solver=mb} count = %g, want 1", got)
	}
	if got := histogramCount(t, fams, "rp_engine_queue_wait_seconds", "solver", "mb"); got != 1 {
		t.Errorf("rp_engine_queue_wait_seconds{solver=mb} count = %g, want 1", got)
	}
	// The jobs duration histogram is present (empty — no jobs ran).
	if got := histogramCount(t, fams, "rp_jobs_duration_seconds", "", ""); got != 0 {
		t.Errorf("rp_jobs_duration_seconds count = %g, want 0", got)
	}

	// Go runtime families ride every exposition: live gauges plus a GC
	// pause histogram that satisfies the parser's bucket invariants even
	// before the first collection.
	if got := sampleValue(t, fams, "rp_go_goroutines", nil); got < 1 {
		t.Errorf("rp_go_goroutines = %g, want >= 1", got)
	}
	if got := sampleValue(t, fams, "rp_go_heap_bytes", nil); got <= 0 {
		t.Errorf("rp_go_heap_bytes = %g, want > 0", got)
	}
	histogramCount(t, fams, "rp_go_gc_pause_seconds", "", "")

	// With a cluster attached the per-shard families appear, including
	// the three cluster latency histograms — five histogram families on
	// one exposition, all passing the parser's bucket invariants.
	cl := httptest.NewServer(NewHandlerOpts(e, HandlerOptions{Cluster: fakeCluster{}}))
	defer cl.Close()
	cfams := scrape(t, cl.URL)
	for _, tc := range []struct {
		family string
		labels map[string]string
		want   float64
	}{
		{"rp_cluster_shard_up", map[string]string{"shard": "http://w1:1"}, 1},
		{"rp_cluster_shard_up", map[string]string{"shard": "http://w2:2"}, 0},
		{"rp_cluster_shard_requests_total", map[string]string{"shard": "http://w1:1"}, 9},
		{"rp_cluster_shard_failures_total", map[string]string{"shard": "http://w2:2"}, 4},
		{"rp_cluster_shard_failovers_total", map[string]string{"shard": "http://w2:2"}, 3},
		{"rp_cluster_wire_idle_conns", map[string]string{"shard": "http://w1:1"}, 5},
		{"rp_cluster_wire_idle_conns", map[string]string{"shard": "http://w2:2"}, 0},
	} {
		if got := sampleValue(t, cfams, tc.family, tc.labels); got != tc.want {
			t.Errorf("%s%v = %g, want %g", tc.family, tc.labels, got, tc.want)
		}
	}
	if got := histogramCount(t, cfams, "rp_cluster_shard_rtt_seconds", "shard", "http://w1:1"); got != 2 {
		t.Errorf("rp_cluster_shard_rtt_seconds{shard=w1} count = %g, want 2", got)
	}
	if got := histogramCount(t, cfams, "rp_cluster_shard_rtt_seconds", "shard", "http://w2:2"); got != 1 {
		t.Errorf("rp_cluster_shard_rtt_seconds{shard=w2} count = %g, want 1", got)
	}
	if got := histogramCount(t, cfams, "rp_cluster_batch_chunk_seconds", "", ""); got != 1 {
		t.Errorf("rp_cluster_batch_chunk_seconds count = %g, want 1", got)
	}
	if got := histogramCount(t, cfams, "rp_cluster_batch_reorder_wait_seconds", "", ""); got != 1 {
		t.Errorf("rp_cluster_batch_reorder_wait_seconds count = %g, want 1", got)
	}
	histFamilies := 0
	for _, f := range cfams {
		if f.Type == "histogram" {
			histFamilies++
		}
	}
	if histFamilies < 4 {
		t.Errorf("cluster exposition has %d histogram families, want >= 4", histFamilies)
	}

	// Without a job manager /metrics still serves the engine families.
	bare := httptest.NewServer(NewHandler(e))
	defer bare.Close()
	bfams := scrape(t, bare.URL)
	if _, ok := bfams["rp_jobs"]; ok {
		t.Error("job gauges served without a manager")
	}
	if _, ok := bfams["rp_engine_requests_total"]; !ok {
		t.Error("engine families missing without a manager")
	}
	if _, ok := bfams["rp_obs_spans_recorded_total"]; ok {
		t.Error("span counters served without a flight recorder")
	}

	// With a flight recorder attached the span accounting counters
	// appear, and a sampled request moves them.
	spans := obs.NewSpanStore(256)
	ts := httptest.NewServer(NewHandlerOpts(e, HandlerOptions{Spans: spans}))
	defer ts.Close()
	resp := postJSON(t, ts.URL+"/v1/solve", map[string]any{"instance": testInstance(t), "solver": "mb"})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	sfams := scrape(t, ts.URL)
	if got := sampleValue(t, sfams, "rp_obs_spans_recorded_total", nil); got < 1 {
		t.Errorf("rp_obs_spans_recorded_total = %g after a sampled request, want >= 1", got)
	}
	if got := sampleValue(t, sfams, "rp_obs_spans_dropped_total", nil); got != 0 {
		t.Errorf("rp_obs_spans_dropped_total = %g, want 0 under zero contention", got)
	}
}
