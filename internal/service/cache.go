package service

import (
	"container/list"
	"sync"
)

// cacheEntry is one keyed computation. The first requester owns the
// computation; every later requester for the same key blocks on ready
// (single-flight), so N concurrent identical requests cost one backend
// run.
type cacheEntry struct {
	ready chan struct{} // closed when res/err are set
	res   Result
	err   error
	done  bool          // set under cache.mu when the result is published
	elem  *list.Element // LRU position; nil while in flight or evicted
}

// SolverCacheStats are the per-solver cache counters: completed-entry
// hits, misses (owned computations), and single-flight waits coalesced
// onto an in-flight computation.
type SolverCacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Coalesced uint64 `json:"coalesced"`
}

// cache is an LRU solution cache with single-flight de-duplication of
// concurrent computations for the same key, instrumented with global and
// per-solver hit/miss/coalesced counters.
type cache struct {
	mu      sync.Mutex
	max     int // maximum completed entries retained; <=0 disables retention
	entries map[string]*cacheEntry
	lru     *list.List // of string keys, front = most recent

	hits, misses, evictions uint64
	perSolver               map[string]*SolverCacheStats
}

func newCache(max int) *cache {
	return &cache{
		max:       max,
		entries:   map[string]*cacheEntry{},
		lru:       list.New(),
		perSolver: map[string]*SolverCacheStats{},
	}
}

func (c *cache) solverStats(solver string) *SolverCacheStats {
	st := c.perSolver[solver]
	if st == nil {
		st = &SolverCacheStats{}
		c.perSolver[solver] = st
	}
	return st
}

// claim returns the entry for key, creating it when absent. owner
// reports whether the caller created it and so MUST eventually call
// complete — otherwise every waiter on the entry blocks forever. A
// non-owner waits on entry.ready without holding any engine resource.
// solver attributes the lookup to a per-solver counter set.
func (c *cache) claim(key, solver string) (e *cacheEntry, owner bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.solverStats(solver)
	if e, ok := c.entries[key]; ok {
		c.hits++
		if e.done {
			st.Hits++
		} else {
			st.Coalesced++
		}
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		return e, false
	}
	e = &cacheEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	st.Misses++
	return e, true
}

// complete publishes the owner's result to all waiters and retains it
// in the LRU. Failed computations (other than deterministic NoSolution
// results, which arrive as res) are not retained, so a later request
// recomputes. The index update happens BEFORE ready is closed: a waiter
// woken by a failed entry and retrying claim() must find either a fresh
// entry or none, never the published-but-undeleted one (which would make
// the engine's owner-deadline retry loop spin).
func (c *cache) complete(key string, e *cacheEntry, res Result, err error) {
	e.res, e.err = res, err

	c.mu.Lock()
	e.done = true
	if err != nil || c.max <= 0 {
		if c.entries[key] == e {
			delete(c.entries, key)
		}
	} else {
		e.elem = c.lru.PushFront(key)
		for c.lru.Len() > c.max {
			tail := c.lru.Back()
			c.lru.Remove(tail)
			delete(c.entries, tail.Value.(string))
			c.evictions++
		}
	}
	c.mu.Unlock()
	close(e.ready)
}

// stats returns a consistent snapshot of the cache counters.
func (c *cache) stats() (hits, misses, evictions uint64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.lru.Len()
}

// solverSnapshot returns a copy of the per-solver counters.
func (c *cache) solverSnapshot() map[string]SolverCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]SolverCacheStats, len(c.perSolver))
	for name, st := range c.perSolver {
		out[name] = *st
	}
	return out
}
