package service

import (
	"container/list"
	"sync"
	"time"
)

// cacheEntry is one keyed computation. The first requester owns the
// computation; every later requester for the same key blocks on ready
// (single-flight), so N concurrent identical requests cost one backend
// run.
type cacheEntry struct {
	ready chan struct{} // closed when res/err are set
	res   Result
	err   error
	done  bool          // set under cache.mu when the result is published
	elem  *list.Element // LRU position; nil while in flight or evicted
	size  int64         // approximate retained footprint, set at complete
	stale time.Time     // TTL deadline; zero when the cache has no TTL
}

// SolverCacheStats are the per-solver cache counters: completed-entry
// hits, misses (owned computations), and single-flight waits coalesced
// onto an in-flight computation.
type SolverCacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Coalesced uint64 `json:"coalesced"`
}

// cache is an LRU solution cache with single-flight de-duplication of
// concurrent computations for the same key, instrumented with global and
// per-solver hit/miss/coalesced counters. Retention is bounded three
// ways, each optional: by entry count (max), by the approximate byte
// footprint of retained results (maxBytes), and by age (ttl — an entry
// older than it is re-computed on next access).
type cache struct {
	mu       sync.Mutex
	max      int           // maximum completed entries retained; <=0 disables retention
	maxBytes int64         // maximum retained bytes; <=0 unlimited
	ttl      time.Duration // entry lifetime; <=0 no expiry
	entries  map[string]*cacheEntry
	lru      *list.List // of string keys, front = most recent
	bytes    int64      // approximate retained footprint

	hits, misses                           uint64
	evictions, byteEvictions, ttlEvictions uint64
	perSolver                              map[string]*SolverCacheStats
}

func newCache(max int, maxBytes int64, ttl time.Duration) *cache {
	return &cache{
		max:       max,
		maxBytes:  maxBytes,
		ttl:       ttl,
		entries:   map[string]*cacheEntry{},
		lru:       list.New(),
		perSolver: map[string]*SolverCacheStats{},
	}
}

func (c *cache) solverStats(solver string) *SolverCacheStats {
	st := c.perSolver[solver]
	if st == nil {
		st = &SolverCacheStats{}
		c.perSolver[solver] = st
	}
	return st
}

// claim returns the entry for key, creating it when absent. owner
// reports whether the caller created it and so MUST eventually call
// complete — otherwise every waiter on the entry blocks forever. A
// non-owner waits on entry.ready without holding any engine resource.
// solver attributes the lookup to a per-solver counter set. An entry
// past its TTL is dropped here and the caller becomes the owner of a
// fresh computation.
func (c *cache) claim(key, solver string) (e *cacheEntry, owner bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.solverStats(solver)
	if e, ok := c.entries[key]; ok {
		if e.done && !e.stale.IsZero() && time.Now().After(e.stale) {
			c.drop(key, e)
			c.ttlEvictions++
		} else {
			c.hits++
			if e.done {
				st.Hits++
			} else {
				st.Coalesced++
			}
			if e.elem != nil {
				c.lru.MoveToFront(e.elem)
			}
			return e, false
		}
	}
	e = &cacheEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	st.Misses++
	return e, true
}

// peek returns the completed, unexpired result for key without claiming
// anything: in-flight entries, failed entries and TTL-expired entries
// all report a miss (expired ones are dropped, like claim does). A hit
// counts into the global and per-solver hit counters and refreshes the
// LRU position; a miss counts nothing — a peek declines to compute, so
// it must not inflate the miss rate.
func (c *cache) peek(key, solver string) (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || !e.done || e.err != nil {
		return Result{}, false
	}
	if !e.stale.IsZero() && time.Now().After(e.stale) {
		c.drop(key, e)
		c.ttlEvictions++
		return Result{}, false
	}
	c.hits++
	c.solverStats(solver).Hits++
	if e.elem != nil {
		c.lru.MoveToFront(e.elem)
	}
	return e.res, true
}

// drop removes a retained entry from the index, LRU and byte account.
// Callers hold c.mu and count the eviction themselves.
func (c *cache) drop(key string, e *cacheEntry) {
	if e.elem != nil {
		c.lru.Remove(e.elem)
		e.elem = nil
	}
	c.bytes -= e.size
	delete(c.entries, key)
}

// complete publishes the owner's result to all waiters and retains it
// in the LRU. Failed computations (other than deterministic NoSolution
// results, which arrive as res) are not retained, so a later request
// recomputes. The index update happens BEFORE ready is closed: a waiter
// woken by a failed entry and retrying claim() must find either a fresh
// entry or none, never the published-but-undeleted one (which would make
// the engine's owner-deadline retry loop spin).
func (c *cache) complete(key string, e *cacheEntry, res Result, err error) {
	e.res, e.err = res, err

	c.mu.Lock()
	e.done = true
	if err != nil || c.max <= 0 {
		if c.entries[key] == e {
			delete(c.entries, key)
		}
	} else {
		e.size = resultSize(res)
		if c.ttl > 0 {
			e.stale = time.Now().Add(c.ttl)
		}
		e.elem = c.lru.PushFront(key)
		c.bytes += e.size
		for c.lru.Len() > c.max {
			c.evictTail()
			c.evictions++
		}
		for c.maxBytes > 0 && c.bytes > c.maxBytes && c.lru.Len() > 0 {
			c.evictTail()
			c.byteEvictions++
		}
	}
	c.mu.Unlock()
	close(e.ready)
}

// evictTail drops the least-recently-used retained entry. Callers hold
// c.mu and count the eviction.
func (c *cache) evictTail() {
	tail := c.lru.Back()
	key := tail.Value.(string)
	c.drop(key, c.entries[key])
}

// resultSize approximates a retained Result's memory footprint: struct
// headers plus the solution's per-client portion lists and cached
// replica set. It deliberately overcounts a little (headers rounded up)
// rather than under — the byte limit is a safety bound, not an
// accounting ledger.
func resultSize(res Result) int64 {
	const (
		entryOverhead = 160 // entry + map bucket share + LRU element + key
		sliceHeader   = 24
		portionSize   = 16 // core.Portion: int + int64
	)
	size := int64(entryOverhead)
	if sol := res.Solution; sol != nil {
		size += sliceHeader + int64(len(sol.Assign))*sliceHeader
		for _, ports := range sol.Assign {
			size += int64(len(ports)) * portionSize
		}
		size += sliceHeader + int64(len(sol.Replicas()))*8
	}
	return size
}

// cacheStats is a consistent snapshot of the cache counters.
type cacheStats struct {
	hits, misses                           uint64
	evictions, byteEvictions, ttlEvictions uint64
	entries                                int
	bytes                                  int64
}

func (c *cache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		hits:          c.hits,
		misses:        c.misses,
		evictions:     c.evictions,
		byteEvictions: c.byteEvictions,
		ttlEvictions:  c.ttlEvictions,
		entries:       c.lru.Len(),
		bytes:         c.bytes,
	}
}

// solverSnapshot returns a copy of the per-solver counters.
func (c *cache) solverSnapshot() map[string]SolverCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]SolverCacheStats, len(c.perSolver))
	for name, st := range c.perSolver {
		out[name] = *st
	}
	return out
}
