package service

import (
	"container/list"
	"sync"
)

// cacheEntry is one keyed computation. The first requester owns the
// computation; every later requester for the same key blocks on ready
// (single-flight), so N concurrent identical requests cost one backend
// run.
type cacheEntry struct {
	ready chan struct{} // closed when res/err are set
	res   Result
	err   error
	elem  *list.Element // LRU position; nil while in flight or evicted
}

// cache is an LRU solution cache with single-flight de-duplication of
// concurrent computations for the same key.
type cache struct {
	mu      sync.Mutex
	max     int // maximum completed entries retained; <=0 disables retention
	entries map[string]*cacheEntry
	lru     *list.List // of string keys, front = most recent

	hits, misses, evictions uint64
}

func newCache(max int) *cache {
	return &cache{max: max, entries: map[string]*cacheEntry{}, lru: list.New()}
}

// claim returns the entry for key, creating it when absent. owner
// reports whether the caller created it and so MUST eventually call
// complete — otherwise every waiter on the entry blocks forever. A
// non-owner waits on entry.ready without holding any engine resource.
func (c *cache) claim(key string) (e *cacheEntry, owner bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		return e, false
	}
	e = &cacheEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	return e, true
}

// complete publishes the owner's result to all waiters and retains it
// in the LRU. Failed computations (other than deterministic NoSolution
// results, which arrive as res) are not retained, so a later request
// recomputes.
func (c *cache) complete(key string, e *cacheEntry, res Result, err error) {
	e.res, e.err = res, err
	close(e.ready)

	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil || c.max <= 0 {
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		return
	}
	e.elem = c.lru.PushFront(key)
	for c.lru.Len() > c.max {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		delete(c.entries, tail.Value.(string))
		c.evictions++
	}
}

// stats returns a consistent snapshot of the cache counters.
func (c *cache) stats() (hits, misses, evictions uint64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.lru.Len()
}
