package service

import (
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/session"
)

// HandlerOptions configures NewHandlerOpts beyond the engine itself.
type HandlerOptions struct {
	// Jobs enables the async /v1/jobs endpoints (nil leaves them
	// registered but answering 501, pointing at the configuration).
	Jobs *jobs.Manager
	// MaxInlineCampaigns bounds concurrently streaming /v1/campaign
	// requests; beyond it the handler answers 503 with a Retry-After
	// hint instead of queueing unboundedly. 0 selects the default (2);
	// negative disables the limit.
	MaxInlineCampaigns int
	// Cluster, when the daemon fronts a shard pool, feeds the per-shard
	// health section of /healthz and the rp_cluster_* metrics.
	Cluster ClusterInfo
	// ClusterSecret, when non-empty, is the shared secret required (as
	// the X-RP-Cluster-Secret header, compared in constant time) by the
	// mutating membership endpoints POST/DELETE /v1/cluster/shards.
	// Requests without it answer 401. Empty leaves them open — fine on a
	// trusted network, and the pre-secret behavior.
	ClusterSecret string
	// Wire, when set, is mounted at GET /v1/wire: the binary streaming
	// transport's upgrade endpoint (see internal/cluster/wire). Workers
	// set it; a daemon without it answers 404 there, which a coordinator
	// reads as "speak JSON/HTTP to this shard".
	Wire http.Handler
	// Logger receives the handler's request logs: a warn line for every
	// request slower than SlowRequest, plus per-request debug lines when
	// the level admits them. Every line carries the request's trace ID.
	// Nil discards.
	Logger *slog.Logger
	// SlowRequest is the latency threshold above which a completed
	// request is logged at warn level. Zero disables the slow log.
	SlowRequest time.Duration
	// Spans, when set, is the process flight recorder: sampled requests
	// record span trees into it, queried via GET /v1/traces/{id} and
	// GET /debug/traces. Nil disables span tracing (the endpoints answer
	// 501).
	Spans *obs.SpanStore
	// TraceSample is the fraction of requests recording spans (1 =
	// every request, the default when Spans is set and TraceSample is
	// 0). Slow requests are retained regardless of sampling.
	TraceSample float64
	// SLO, when set, tracks availability and latency objectives over the
	// handler's traffic: the instrumentation middleware feeds it, its
	// verdict folds into /healthz, and GET /v1/alerts serves its alert
	// state. Nil leaves /v1/alerts answering 501 and /healthz always
	// "ok".
	SLO *obs.SLO
	// Events, when set, is the cluster event journal served at
	// GET /debug/events and counted in rp_cluster_events_total. Nil
	// leaves the endpoint answering 501.
	Events *obs.EventRing
	// Sessions enables the placement-session endpoints under
	// /v1/instances (nil leaves them registered but answering 501,
	// pointing at the configuration). Build one with session.NewManager
	// and SessionResolver.
	Sessions *session.Manager
}

// defaultInlineCampaigns is the /v1/campaign concurrency limit when
// HandlerOptions does not set one. A campaign saturates every core by
// itself, so this stays tiny; big runs belong on /v1/jobs.
const defaultInlineCampaigns = 2

// campaignRetryAfter is the Retry-After hint (seconds) of a saturated
// /v1/campaign.
const campaignRetryAfter = 10

// api holds the handler's state: the engine, the optional job manager,
// the optional shard pool, and the inline-campaign slots.
type api struct {
	e           *Engine
	jobs        *jobs.Manager
	cluster     ClusterInfo
	secret      string        // shared secret guarding membership writes
	wire        http.Handler  // binary transport upgrade endpoint
	campaignSem chan struct{} // nil = unlimited
	log         *slog.Logger
	slowReq     time.Duration
	spans       *obs.SpanStore
	traceSample float64
	slo         *obs.SLO         // nil = no SLO tracking
	events      *obs.EventRing   // nil = no event journal
	sessions    *session.Manager // nil = placement sessions disabled
	red         *redMetrics      // per-route request counts and latency
}

// NewHandler returns the HTTP API served by cmd/rpserve, with default
// options (no async jobs):
//
//	GET  /healthz      liveness plus engine counters (global and
//	                   per-solver cache hit/miss/coalesced)
//	GET  /metrics      the same counters (plus job-state gauges) in
//	                   Prometheus text format
//	GET  /v1/solvers   the solver registry listing with cache counters
//	POST /v1/solve     run a solver on an instance
//	POST /v1/bound     run an LP bound (shorthand for the lp-* solvers)
//	POST /v1/batch     run one solver over N parameter variations of a
//	                   single topology, streaming one JSON line per
//	                   variation as it completes (NDJSON)
//	POST /v1/generate  build a seeded random instance
//	POST /v1/campaign  run a Section 7 campaign inline, streaming one
//	                   JSON line per λ as it completes (NDJSON);
//	                   answers 503 + Retry-After when its slots are
//	                   saturated — big runs belong on /v1/jobs
//	POST   /v1/jobs             submit an async campaign or batch job
//	GET    /v1/jobs             list jobs (?limit=&after= paginates with
//	                            a stable order and a "next" cursor)
//	GET    /v1/jobs/{id}        job status, progress and rows so far
//	GET    /v1/jobs/{id}/result final rows (JSON, or ?format=csv)
//	DELETE /v1/jobs/{id}        cancel a live job / delete a finished one
//	GET  /v1/worker/ping        lightweight liveness probe, polled by a
//	                            coordinator's shard pool
//	POST   /v1/instances            register a placement session (JSON, or
//	                                streaming NDJSON for very large trees)
//	GET    /v1/instances            list live sessions
//	GET    /v1/instances/{id}       session status (?include_solution=1,
//	                                ?include_instance=1)
//	PATCH  /v1/instances/{id}       apply a batch of typed delta ops
//	                                atomically, bumping the revision
//	DELETE /v1/instances/{id}       delete the session, ending watchers
//	GET    /v1/instances/{id}/watch stream placement diffs as NDJSON,
//	                                resumable with ?from_rev=N
//
// All request and response bodies are JSON. Errors are
// {"error": "..."} with a matching status code.
func NewHandler(e *Engine) http.Handler { return NewHandlerOpts(e, HandlerOptions{}) }

// NewHandlerOpts is NewHandler with a job manager and inline-campaign
// limits.
func NewHandlerOpts(e *Engine, opts HandlerOptions) http.Handler {
	return newAPI(e, opts).routes()
}

func newAPI(e *Engine, opts HandlerOptions) *api {
	slots := opts.MaxInlineCampaigns
	if slots == 0 {
		slots = defaultInlineCampaigns
	}
	a := &api{e: e, jobs: opts.Jobs, cluster: opts.Cluster,
		secret: opts.ClusterSecret, wire: opts.Wire,
		log: opts.Logger, slowReq: opts.SlowRequest,
		spans: opts.Spans, traceSample: opts.TraceSample,
		slo: opts.SLO, events: opts.Events, sessions: opts.Sessions,
		red: newRedMetrics()}
	if a.log == nil {
		a.log = obs.NopLogger()
	}
	if a.traceSample == 0 {
		a.traceSample = 1
	}
	if slots > 0 {
		a.campaignSem = make(chan struct{}, slots)
	}
	return a
}

func (a *api) routes() http.Handler {
	e := a.e
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// The SLO verdict folds into the liveness answer: status stays a
		// 200 (the process is up and answering) but flips from "ok" to
		// "degraded"/"critical" when burn-rate alerts are firing, so a
		// plain healthz poll doubles as the cluster health signal.
		payload := healthPayload{Status: "ok", Version: buildVersion(),
			Stats: e.Stats(), Jobs: a.jobStats(),
			Shards: a.shardStats(), Cluster: a.clusterStats()}
		if a.slo != nil {
			st := a.slo.Evaluate()
			payload.Status = st.Verdict
			payload.SLO = &st
		}
		writeJSON(w, http.StatusOK, payload)
	})
	mux.HandleFunc("GET /v1/worker/ping", func(w http.ResponseWriter, r *http.Request) {
		// The lightweight liveness probe a cluster pool hits on every
		// health check: no cache walk, no per-solver map copies.
		st := e.Stats()
		writeJSON(w, http.StatusOK, pingPayload{
			Status:   "ok",
			Workers:  st.Workers,
			InFlight: st.InFlight,
			QueueLen: st.QueueLen,
		})
	})
	mux.HandleFunc("GET /metrics", a.handleMetrics)
	mux.HandleFunc("GET /v1/solvers", func(w http.ResponseWriter, r *http.Request) {
		solvers := e.Registry().Solvers()
		perSolver := e.Stats().PerSolver
		out := make([]solverInfo, 0, len(solvers))
		for _, s := range solvers {
			info := solverInfo{Name: s.Name, Long: s.Long, Policy: s.Policy.String(), Kind: s.Kind}
			if st, ok := perSolver[s.Name]; ok {
				st := st
				info.Cache = &st
			}
			out = append(out, info)
		}
		writeJSON(w, http.StatusOK, solversPayload{Solvers: out})
	})
	mux.HandleFunc("POST /v1/solve", func(w http.ResponseWriter, r *http.Request) {
		handleSolve(e, w, r, "")
	})
	mux.HandleFunc("POST /v1/bound", func(w http.ResponseWriter, r *http.Request) {
		handleSolve(e, w, r, "lp-")
	})
	mux.HandleFunc("POST /v1/batch", a.handleBatch)
	mux.HandleFunc("POST /v1/generate", handleGenerate)
	mux.HandleFunc("POST /v1/campaign", a.handleCampaign)
	mux.HandleFunc("GET /v1/cluster/shards", a.handleClusterList)
	mux.HandleFunc("POST /v1/cluster/shards", a.handleClusterJoin)
	mux.HandleFunc("DELETE /v1/cluster/shards", a.handleClusterLeave)
	mux.HandleFunc("GET /v1/cluster/metrics", a.handleFederate)
	mux.HandleFunc("GET /v1/alerts", a.handleAlerts)
	mux.HandleFunc("GET /v1/traces/{id}", a.handleTrace)
	mux.HandleFunc("GET /debug/traces", a.handleTraceList)
	mux.HandleFunc("GET /debug/events", a.handleEvents)
	if a.wire != nil {
		mux.Handle("GET /v1/wire", a.wire)
	}
	a.registerJobRoutes(mux)
	a.registerSessionRoutes(mux)
	return a.instrument(mux)
}

// membership returns the pool's join/leave surface, nil when the daemon
// fronts no cluster (or a read-only ClusterInfo implementation).
func (a *api) membership() ClusterMembership {
	m, _ := a.cluster.(ClusterMembership)
	return m
}

// clusterStats snapshots the pool-level counters, nil without a pool
// that tracks them.
func (a *api) clusterStats() *ClusterStats {
	if p, ok := a.cluster.(ClusterStatsProvider); ok {
		st := p.ClusterStats()
		return &st
	}
	return nil
}

// shardChangeWire is the POST/DELETE /v1/cluster/shards body.
type shardChangeWire struct {
	Addr   string `json:"addr"`
	Weight int    `json:"weight"`
}

// clusterPayload answers the cluster membership endpoints.
type clusterPayload struct {
	Epoch   uint64      `json:"epoch"`
	Shards  []ShardStat `json:"shards"`
	Joined  *bool       `json:"joined,omitempty"`  // POST: was the address new
	Removed *bool       `json:"removed,omitempty"` // DELETE: was it a member
}

var errNoCluster = errors.New("this daemon fronts no shard pool; start it as a coordinator (-shards, -shards-file or -coordinator)")

// ClusterSecretHeader carries the shared membership secret on
// POST/DELETE /v1/cluster/shards (and on the registrar's heartbeats).
const ClusterSecretHeader = "X-RP-Cluster-Secret"

// authorizeClusterChange enforces the shared-secret check on the
// mutating membership endpoints. The comparison is constant-time so the
// secret can't be probed byte by byte off response latency.
func (a *api) authorizeClusterChange(w http.ResponseWriter, r *http.Request) bool {
	if a.secret == "" {
		return true
	}
	// Hash both sides first: ConstantTimeCompare is only constant-time
	// for equal lengths, and the digest makes the lengths equal.
	got := sha256.Sum256([]byte(r.Header.Get(ClusterSecretHeader)))
	want := sha256.Sum256([]byte(a.secret))
	if subtle.ConstantTimeCompare(got[:], want[:]) == 1 {
		return true
	}
	writeError(w, http.StatusUnauthorized, fmt.Errorf("missing or wrong %s header", ClusterSecretHeader))
	return false
}

func (a *api) handleClusterList(w http.ResponseWriter, r *http.Request) {
	m := a.membership()
	if m == nil {
		writeError(w, http.StatusNotImplemented, errNoCluster)
		return
	}
	writeJSON(w, http.StatusOK, clusterPayload{Epoch: m.Epoch(), Shards: m.ShardStats()})
}

// handleClusterJoin registers (or re-weights) a worker shard. Workers
// self-register here on a heartbeat, so the handler is idempotent: a
// known address answers 200 with joined=false.
func (a *api) handleClusterJoin(w http.ResponseWriter, r *http.Request) {
	m := a.membership()
	if m == nil {
		writeError(w, http.StatusNotImplemented, errNoCluster)
		return
	}
	if !a.authorizeClusterChange(w, r) {
		return
	}
	var req shardChangeWire
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Addr == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing addr"))
		return
	}
	if req.Weight < 0 {
		writeError(w, http.StatusBadRequest, errors.New("negative weight"))
		return
	}
	_, joined, err := m.AddShard(req.Addr, req.Weight)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, clusterPayload{Epoch: m.Epoch(), Shards: m.ShardStats(), Joined: &joined})
}

// handleClusterLeave deregisters a shard. The address comes from the
// JSON body ({"addr": ...}) or, for curl-friendliness, ?addr=. Unknown
// addresses answer 200 with removed=false — deregistration races a
// coordinator restart, and the loser should not read it as a failure.
func (a *api) handleClusterLeave(w http.ResponseWriter, r *http.Request) {
	m := a.membership()
	if m == nil {
		writeError(w, http.StatusNotImplemented, errNoCluster)
		return
	}
	if !a.authorizeClusterChange(w, r) {
		return
	}
	addr := r.URL.Query().Get("addr")
	if addr == "" {
		var req shardChangeWire
		if err := decodeJSON(r, &req); err == nil {
			addr = req.Addr
		}
	}
	if addr == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing addr (JSON body or ?addr=)"))
		return
	}
	removed := m.RemoveShard(addr)
	writeJSON(w, http.StatusOK, clusterPayload{Epoch: m.Epoch(), Shards: m.ShardStats(), Removed: &removed})
}

// jobStats snapshots the job manager's gauges, nil without a manager.
func (a *api) jobStats() *jobs.Stats {
	if a.jobs == nil {
		return nil
	}
	st := a.jobs.Stats()
	return &st
}

// shardStats snapshots the shard pool, nil without one.
func (a *api) shardStats() []ShardStat {
	if a.cluster == nil {
		return nil
	}
	return a.cluster.ShardStats()
}

type healthPayload struct {
	Status  string         `json:"status"`
	Version string         `json:"version,omitempty"`
	Stats   Stats          `json:"stats"`
	Jobs    *jobs.Stats    `json:"jobs,omitempty"`
	Shards  []ShardStat    `json:"shards,omitempty"`
	Cluster *ClusterStats  `json:"cluster,omitempty"`
	SLO     *obs.SLOStatus `json:"slo,omitempty"`
}

// pingPayload is the GET /v1/worker/ping body.
type pingPayload struct {
	Status   string `json:"status"`
	Workers  int    `json:"workers"`
	InFlight int64  `json:"in_flight"`
	QueueLen int    `json:"queue_len"`
}

type solverInfo struct {
	Name   string            `json:"name"`
	Long   string            `json:"long"`
	Policy string            `json:"policy"`
	Kind   string            `json:"kind"`
	Cache  *SolverCacheStats `json:"cache,omitempty"`
}

type solversPayload struct {
	Solvers []solverInfo `json:"solvers"`
}

// RequestOptions is the JSON form of Options (times in milliseconds).
// It is exported (with BatchTopology) so the cluster's binary wire codec
// can decode a batch chunk straight into a BatchPayload without a JSON
// round trip.
type RequestOptions struct {
	TimeoutMS       int64 `json:"timeout_ms,omitempty"`
	NoCache         bool  `json:"no_cache,omitempty"`
	BoundNodes      int   `json:"bound_nodes,omitempty"`
	IncludeSolution bool  `json:"include_solution,omitempty"`
	// Objects carries the per-object vectors of a multi-object request
	// (solvers mo-greedy and lp-mo-rational / bound method mo-rational).
	Objects []ObjectVectors `json:"objects,omitempty"`
}

func (wo RequestOptions) options() Options {
	return Options{
		Timeout:         time.Duration(wo.TimeoutMS) * time.Millisecond,
		NoCache:         wo.NoCache,
		BoundNodes:      wo.BoundNodes,
		IncludeSolution: wo.IncludeSolution,
		Objects:         wo.Objects,
	}
}

// solveRequest is the /v1/solve and /v1/bound body. For /v1/bound the
// solver defaults to "refined" and names the bound method ("rational"
// or "refined"), qualified by the policy.
type solveRequest struct {
	Instance *core.Instance `json:"instance"`
	Solver   string         `json:"solver"`
	Policy   string         `json:"policy"`
	Options  RequestOptions `json:"options"`
}

func handleSolve(e *Engine, w http.ResponseWriter, r *http.Request, prefix string) {
	var req solveRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Instance == nil {
		writeError(w, http.StatusBadRequest, errors.New("missing instance"))
		return
	}
	policy := core.Multiple
	if req.Policy != "" {
		p, ok := core.ParsePolicy(req.Policy)
		if !ok {
			writeError(w, http.StatusBadRequest, fmt.Errorf("unknown policy %q", req.Policy))
			return
		}
		policy = p
	}
	solver := req.Solver
	if prefix != "" { // the /v1/bound shorthand
		if solver == "" {
			solver = "refined"
		}
		solver = prefix + solver
	} else if solver == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing solver"))
		return
	}
	if err := validateObjects(e.Registry(), solver, policy, req.Instance, req.Options.Objects); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := e.Solve(r.Context(), Request{
		Instance: req.Instance,
		Solver:   solver,
		Policy:   policy,
		Options:  req.Options.options(),
	})
	if err != nil {
		var unknown *ErrUnknownSolver
		switch {
		case errors.As(err, &unknown):
			writeError(w, http.StatusNotFound, err)
		case errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, err)
		case errors.Is(err, ErrEngineClosed):
			writeError(w, http.StatusServiceUnavailable, err)
		default:
			// Instance-shape problems were already rejected at decode time
			// (UnmarshalJSON fully validates), so what reaches here is a
			// server-side fault, not a bad request.
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// BatchTopology is the topology section of a /v1/batch body.
type BatchTopology struct {
	Parents  []int  `json:"parents"`
	IsClient []bool `json:"is_client"`
}

// BatchLine is one streamed NDJSON result line.
type BatchLine struct {
	Index int `json:"index"`
	*Response
	Error string `json:"error,omitempty"`
	// Raw, when set, is the already-encoded JSON object of everything
	// but the index — a successful Response as serialized by the worker
	// that computed it. The binary wire transport relays these bytes
	// through the coordinator untouched; AppendJSON splices the index in
	// textually, so the hot path never re-decodes a routed row.
	Raw []byte `json:"-"`
}

// AppendJSON appends the line's NDJSON form (no trailing newline) to
// buf. Raw lines are spliced — `{"index":N,` + the worker's bytes —
// which is byte-identical to marshaling the equivalent struct because
// both sides use encoding/json over the same Response type.
func (l *BatchLine) AppendJSON(buf []byte) ([]byte, error) {
	if len(l.Raw) > 0 && l.Error == "" {
		if l.Raw[0] != '{' || l.Raw[len(l.Raw)-1] != '}' {
			return buf, fmt.Errorf("service: malformed raw batch line (%d bytes)", len(l.Raw))
		}
		buf = append(buf, `{"index":`...)
		buf = strconv.AppendInt(buf, int64(l.Index), 10)
		if len(l.Raw) > 2 {
			buf = append(buf, ',')
			buf = append(buf, l.Raw[1:]...)
		} else {
			buf = append(buf, '}')
		}
		return buf, nil
	}
	data, err := json.Marshal(l)
	if err != nil {
		return buf, err
	}
	return append(buf, data...), nil
}

type batchDone struct {
	Done      bool    `json:"done"`
	Items     int     `json:"items"`
	Failed    int     `json:"failed"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

func (a *api) handleBatch(w http.ResponseWriter, r *http.Request) {
	e := a.e
	start := time.Now()
	var req BatchPayload
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Solver == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing solver"))
		return
	}
	if len(req.Variations) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("missing variations"))
		return
	}
	if len(req.Variations) > MaxBatchVariations {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch limited to %d variations, got %d",
			MaxBatchVariations, len(req.Variations)))
		return
	}
	// Full validation (topology interning, base vectors, solver/policy
	// resolution) before the status line is committed.
	base, policy, err := req.Build(e)
	if err != nil {
		var unknown *ErrUnknownSolver
		if errors.As(err, &unknown) {
			writeError(w, http.StatusNotFound, err)
		} else {
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	failed := 0
	var lineBuf []byte
	emit := func(line BatchLine) error {
		if line.Error != "" {
			failed++
		}
		buf, err := line.AppendJSON(lineBuf[:0])
		if err != nil {
			return err
		}
		lineBuf = append(buf, '\n')
		if _, err := w.Write(lineBuf); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}

	if router, ok := a.cluster.(BatchRouter); ok {
		// A coordinator routes the inline batch across its shards:
		// weighted chunks, lines streamed back in index order, and a
		// local-engine fallback for whatever the cluster cannot take —
		// a pool with every breaker open degrades to exactly the
		// standalone path. Mid-stream failures (the client went away,
		// the request context expired) are reported in-stream like the
		// campaign endpoint's.
		if err := router.RouteBatch(r.Context(), e, base, policy, &req, emit); err != nil {
			enc.Encode(map[string]string{"error": err.Error()})
			return
		}
	} else {
		err = e.SolveBatch(r.Context(), BatchRequest{
			Base:       base,
			Solver:     req.Solver,
			Policy:     policy,
			Options:    req.Options.options(),
			Variations: req.Variations,
		}, func(item BatchItem) {
			line := BatchLine{Index: item.Index, Response: item.Response}
			if item.Err != nil {
				line.Error = item.Err.Error()
			}
			emit(line)
		})
		if err != nil {
			// SolveBatch re-validates cheaply; nothing can fail here that
			// Build did not already catch, but keep the belt-and-braces
			// in-stream report rather than a broken trailer.
			enc.Encode(map[string]string{"error": err.Error()})
			return
		}
	}
	enc.Encode(batchDone{
		Done:      true,
		Items:     len(req.Variations),
		Failed:    failed,
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// generateRequest is the /v1/generate body. Config uses the field names
// of gen.Config (e.g. {"Internal": 10, "Lambda": 0.5}).
type generateRequest struct {
	Config gen.Config `json:"config"`
	Seed   int64      `json:"seed"`
}

type generatePayload struct {
	Instance *core.Instance `json:"instance"`
	Load     float64        `json:"load"`
	Vertices int            `json:"vertices"`
}

func handleGenerate(w http.ResponseWriter, r *http.Request) {
	var req generateRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	in := gen.Instance(req.Config, req.Seed)
	writeJSON(w, http.StatusOK, generatePayload{Instance: in, Load: in.Load(), Vertices: in.Tree.Len()})
}

// campaignRequest is the /v1/campaign body. Config uses the field names
// of experiments.Config.
type campaignRequest struct {
	Config experiments.Config `json:"config"`
}

// campaignRow is one streamed NDJSON line.
type campaignRow struct {
	Lambda     float64            `json:"lambda"`
	Trees      int                `json:"trees"`
	LPSolvable int                `json:"lp_solvable"`
	BoundExact int                `json:"bound_exact"`
	Success    map[string]int     `json:"success"`
	RelCost    map[string]float64 `json:"rel_cost"`
}

type campaignDone struct {
	Done bool `json:"done"`
	Rows int  `json:"rows"`
}

func (a *api) handleCampaign(w http.ResponseWriter, r *http.Request) {
	// An inline campaign monopolizes the whole machine for its duration,
	// so concurrent streams are capped instead of queued unboundedly:
	// saturated slots answer 503 with a Retry-After hint. Big runs
	// should be submitted as async jobs (POST /v1/jobs) — those are
	// scheduled, persisted and resumable.
	if a.campaignSem != nil {
		select {
		case a.campaignSem <- struct{}{}:
			defer func() { <-a.campaignSem }()
		default:
			w.Header().Set("Retry-After", strconv.Itoa(campaignRetryAfter))
			writeError(w, http.StatusServiceUnavailable, errors.New(
				"all inline campaign slots are busy; retry later or submit via POST /v1/jobs"))
			return
		}
	}
	var req campaignRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	cfg := req.Config
	// Cancellation applies mid-λ too: the per-tree bound computations
	// observe the request context between branch-and-bound nodes.
	cfg.Context = r.Context()
	rows := 0
	cfg.Progress = func(row experiments.Row) error {
		// Abort between λ values once the client is gone (or the stream
		// write fails) — a disconnected campaign must not keep burning
		// every core to completion.
		if err := r.Context().Err(); err != nil {
			return err
		}
		rows++
		if err := enc.Encode(campaignRow{
			Lambda:     row.Lambda,
			Trees:      row.Trees,
			LPSolvable: row.LPSolvable,
			BoundExact: row.BoundExact,
			Success:    row.Success,
			RelCost:    row.RelCost,
		}); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	if _, err := experiments.Run(cfg); err != nil {
		// Headers are already out; report the failure in-stream.
		enc.Encode(map[string]string{"error": err.Error()})
		return
	}
	enc.Encode(campaignDone{Done: true, Rows: rows})
}

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError answers {"error": ..., "trace_id": ...}. The trace ID is
// read back from the response header the instrument middleware set, so
// every error body names the ID the client can quote when reporting it
// (and that the server logged the request under).
func writeError(w http.ResponseWriter, status int, err error) {
	body := map[string]string{"error": err.Error()}
	if id := w.Header().Get(obs.TraceHeader); id != "" {
		body["trace_id"] = id
	}
	writeJSON(w, status, body)
}
