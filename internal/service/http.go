package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gen"
)

// NewHandler returns the HTTP API served by cmd/rpserve:
//
//	GET  /healthz      liveness plus engine counters
//	GET  /v1/solvers   the solver registry listing
//	POST /v1/solve     run a solver on an instance
//	POST /v1/bound     run an LP bound (shorthand for the lp-* solvers)
//	POST /v1/generate  build a seeded random instance
//	POST /v1/campaign  run a Section 7 campaign, streaming one JSON
//	                   line per λ as it completes (NDJSON)
//
// All request and response bodies are JSON. Errors are
// {"error": "..."} with a matching status code.
func NewHandler(e *Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, healthPayload{Status: "ok", Stats: e.Stats()})
	})
	mux.HandleFunc("GET /v1/solvers", func(w http.ResponseWriter, r *http.Request) {
		solvers := e.Registry().Solvers()
		out := make([]solverInfo, 0, len(solvers))
		for _, s := range solvers {
			out = append(out, solverInfo{Name: s.Name, Long: s.Long, Policy: s.Policy.String(), Kind: s.Kind})
		}
		writeJSON(w, http.StatusOK, solversPayload{Solvers: out})
	})
	mux.HandleFunc("POST /v1/solve", func(w http.ResponseWriter, r *http.Request) {
		handleSolve(e, w, r, "")
	})
	mux.HandleFunc("POST /v1/bound", func(w http.ResponseWriter, r *http.Request) {
		handleSolve(e, w, r, "lp-")
	})
	mux.HandleFunc("POST /v1/generate", handleGenerate)
	mux.HandleFunc("POST /v1/campaign", handleCampaign)
	return mux
}

type healthPayload struct {
	Status string `json:"status"`
	Stats  Stats  `json:"stats"`
}

type solverInfo struct {
	Name   string `json:"name"`
	Long   string `json:"long"`
	Policy string `json:"policy"`
	Kind   string `json:"kind"`
}

type solversPayload struct {
	Solvers []solverInfo `json:"solvers"`
}

// wireOptions is the JSON form of Options (times in milliseconds).
type wireOptions struct {
	TimeoutMS       int64 `json:"timeout_ms,omitempty"`
	NoCache         bool  `json:"no_cache,omitempty"`
	BoundNodes      int   `json:"bound_nodes,omitempty"`
	IncludeSolution bool  `json:"include_solution,omitempty"`
}

func (wo wireOptions) options() Options {
	return Options{
		Timeout:         time.Duration(wo.TimeoutMS) * time.Millisecond,
		NoCache:         wo.NoCache,
		BoundNodes:      wo.BoundNodes,
		IncludeSolution: wo.IncludeSolution,
	}
}

// solveRequest is the /v1/solve and /v1/bound body. For /v1/bound the
// solver defaults to "refined" and names the bound method ("rational"
// or "refined"), qualified by the policy.
type solveRequest struct {
	Instance *core.Instance `json:"instance"`
	Solver   string         `json:"solver"`
	Policy   string         `json:"policy"`
	Options  wireOptions    `json:"options"`
}

func handleSolve(e *Engine, w http.ResponseWriter, r *http.Request, prefix string) {
	var req solveRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Instance == nil {
		writeError(w, http.StatusBadRequest, errors.New("missing instance"))
		return
	}
	policy := core.Multiple
	if req.Policy != "" {
		p, ok := core.ParsePolicy(req.Policy)
		if !ok {
			writeError(w, http.StatusBadRequest, fmt.Errorf("unknown policy %q", req.Policy))
			return
		}
		policy = p
	}
	solver := req.Solver
	if prefix != "" { // the /v1/bound shorthand
		if solver == "" {
			solver = "refined"
		}
		solver = prefix + solver
	} else if solver == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing solver"))
		return
	}
	resp, err := e.Solve(r.Context(), Request{
		Instance: req.Instance,
		Solver:   solver,
		Policy:   policy,
		Options:  req.Options.options(),
	})
	if err != nil {
		var unknown *ErrUnknownSolver
		switch {
		case errors.As(err, &unknown):
			writeError(w, http.StatusNotFound, err)
		case errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, err)
		case errors.Is(err, ErrEngineClosed):
			writeError(w, http.StatusServiceUnavailable, err)
		default:
			// Instance-shape problems were already rejected at decode time
			// (UnmarshalJSON fully validates), so what reaches here is a
			// server-side fault, not a bad request.
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// generateRequest is the /v1/generate body. Config uses the field names
// of gen.Config (e.g. {"Internal": 10, "Lambda": 0.5}).
type generateRequest struct {
	Config gen.Config `json:"config"`
	Seed   int64      `json:"seed"`
}

type generatePayload struct {
	Instance *core.Instance `json:"instance"`
	Load     float64        `json:"load"`
	Vertices int            `json:"vertices"`
}

func handleGenerate(w http.ResponseWriter, r *http.Request) {
	var req generateRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	in := gen.Instance(req.Config, req.Seed)
	writeJSON(w, http.StatusOK, generatePayload{Instance: in, Load: in.Load(), Vertices: in.Tree.Len()})
}

// campaignRequest is the /v1/campaign body. Config uses the field names
// of experiments.Config.
type campaignRequest struct {
	Config experiments.Config `json:"config"`
}

// campaignRow is one streamed NDJSON line.
type campaignRow struct {
	Lambda     float64            `json:"lambda"`
	Trees      int                `json:"trees"`
	LPSolvable int                `json:"lp_solvable"`
	BoundExact int                `json:"bound_exact"`
	Success    map[string]int     `json:"success"`
	RelCost    map[string]float64 `json:"rel_cost"`
}

type campaignDone struct {
	Done bool `json:"done"`
	Rows int  `json:"rows"`
}

func handleCampaign(w http.ResponseWriter, r *http.Request) {
	var req campaignRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	cfg := req.Config
	rows := 0
	cfg.Progress = func(row experiments.Row) error {
		// Abort between λ values once the client is gone (or the stream
		// write fails) — a disconnected campaign must not keep burning
		// every core to completion.
		if err := r.Context().Err(); err != nil {
			return err
		}
		rows++
		if err := enc.Encode(campaignRow{
			Lambda:     row.Lambda,
			Trees:      row.Trees,
			LPSolvable: row.LPSolvable,
			BoundExact: row.BoundExact,
			Success:    row.Success,
			RelCost:    row.RelCost,
		}); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	if _, err := experiments.Run(cfg); err != nil {
		// Headers are already out; report the failure in-stream.
		enc.Encode(map[string]string{"error": err.Error()})
		return
	}
	enc.Encode(campaignDone{Done: true, Rows: rows})
}

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
