package service

import (
	"errors"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// errTracingDisabled answers the trace endpoints on a daemon running
// without a flight recorder.
var errTracingDisabled = errors.New("service: span tracing is not enabled (start the daemon with a trace buffer)")

// traceNode is one span in the assembled tree returned by
// GET /v1/traces/{id}: the span itself plus its children, recursively,
// ordered by start time.
type traceNode struct {
	Span     obs.Span    `json:"span"`
	Children []traceNode `json:"children,omitempty"`
}

// tracePayload is the GET /v1/traces/{id} response: one trace
// assembled into a forest of span trees. A fully stitched distributed
// trace has a single root (the coordinator's http.request span);
// orphans — spans whose parent was dropped under ring pressure, or
// arrived from a worker before tracing saw the parent — surface as
// additional roots rather than disappearing.
type tracePayload struct {
	TraceID string      `json:"trace_id"`
	Spans   int         `json:"spans"`
	Roots   []traceNode `json:"roots"`
}

// assembleTrace builds the span forest: children under their parents,
// unknown parents promoted to roots, everything ordered by start time.
func assembleTrace(traceID string, spans []obs.Span) tracePayload {
	byID := make(map[uint64]bool, len(spans))
	for _, s := range spans {
		byID[s.ID] = true
	}
	children := make(map[uint64][]obs.Span)
	var rootSpans []obs.Span
	for _, s := range spans {
		if s.Parent != 0 && byID[s.Parent] {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			rootSpans = append(rootSpans, s)
		}
	}
	var build func(s obs.Span) traceNode
	build = func(s obs.Span) traceNode {
		kids := children[s.ID]
		node := traceNode{Span: s}
		for _, k := range kids {
			node.Children = append(node.Children, build(k))
		}
		return node
	}
	out := tracePayload{TraceID: traceID, Spans: len(spans)}
	for _, s := range rootSpans {
		out.Roots = append(out.Roots, build(s))
	}
	return out
}

// handleTrace serves GET /v1/traces/{id}: the assembled span tree of
// one trace from the flight recorder.
func (a *api) handleTrace(w http.ResponseWriter, r *http.Request) {
	if a.spans == nil {
		writeError(w, http.StatusNotImplemented, errTracingDisabled)
		return
	}
	id := obs.SanitizeTraceID(r.PathValue("id"))
	if id == "" {
		writeError(w, http.StatusBadRequest, errors.New("service: malformed trace id"))
		return
	}
	spans := a.spans.TraceSpans(id)
	if len(spans) == 0 {
		writeError(w, http.StatusNotFound, errors.New("service: trace not found (expired from the flight recorder, or never sampled)"))
		return
	}
	writeJSON(w, http.StatusOK, assembleTrace(id, spans))
}

// handleTraceList serves GET /debug/traces?min_ms=&name=&limit=: recent
// traces from the flight recorder, most recent first.
func (a *api) handleTraceList(w http.ResponseWriter, r *http.Request) {
	if a.spans == nil {
		writeError(w, http.StatusNotImplemented, errTracingDisabled)
		return
	}
	q := r.URL.Query()
	minMS := 0.0
	if v := q.Get("min_ms"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 {
			writeError(w, http.StatusBadRequest, errors.New("service: bad min_ms"))
			return
		}
		minMS = f
	}
	limit := 100
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, errors.New("service: bad limit"))
			return
		}
		limit = n
	}
	name := q.Get("name")

	traces := a.spans.Traces()
	out := make([]obs.TraceSummary, 0, limit)
	for _, tr := range traces {
		if tr.Duration < time.Duration(minMS*float64(time.Millisecond)) {
			continue
		}
		if name != "" && tr.Name != name {
			continue
		}
		out = append(out, tr)
		if len(out) >= limit {
			break
		}
	}
	added, dropped := a.spans.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"traces":        out,
		"spans_added":   added,
		"spans_dropped": dropped,
	})
}
