package service

import (
	"context"
	"testing"
	"time"
)

// completeEntry claims key as owner and completes it with an empty
// (NoSolution) result, whose footprint is exactly the entry overhead.
func completeEntry(t *testing.T, c *cache, key string) {
	t.Helper()
	e, owner := c.claim(key, "stub")
	if !owner {
		t.Fatalf("claim(%q): expected ownership", key)
	}
	c.complete(key, e, Result{NoSolution: true}, nil)
}

func TestCacheByteLimit(t *testing.T) {
	perEntry := resultSize(Result{NoSolution: true})
	// Room for three empty-result entries, not four.
	c := newCache(100, 3*perEntry, 0)
	for _, key := range []string{"a", "b", "c"} {
		completeEntry(t, c, key)
	}
	if st := c.stats(); st.entries != 3 || st.bytes != 3*perEntry || st.byteEvictions != 0 {
		t.Fatalf("under limit: %+v", st)
	}

	completeEntry(t, c, "d")
	st := c.stats()
	if st.entries != 3 || st.bytes != 3*perEntry {
		t.Fatalf("over limit: entries %d bytes %d", st.entries, st.bytes)
	}
	if st.byteEvictions != 1 || st.evictions != 0 {
		t.Fatalf("eviction accounting: %+v", st)
	}

	// "a" was the LRU tail — it must be the evicted one.
	if _, owner := c.claim("a", "stub"); !owner {
		t.Fatal("evicted key still cached")
	}
	if _, owner := c.claim("d", "stub"); owner {
		t.Fatal("fresh key was evicted instead of the tail")
	}
}

func TestCacheByteAccountingOnLRUEviction(t *testing.T) {
	perEntry := resultSize(Result{NoSolution: true})
	c := newCache(2, 0, 0) // count-limited only
	for _, key := range []string{"a", "b", "c"} {
		completeEntry(t, c, key)
	}
	st := c.stats()
	if st.entries != 2 || st.bytes != 2*perEntry || st.evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	c := newCache(100, 0, 20*time.Millisecond)
	completeEntry(t, c, "k")

	if _, owner := c.claim("k", "stub"); owner {
		t.Fatal("fresh entry not served")
	}
	time.Sleep(40 * time.Millisecond)
	e, owner := c.claim("k", "stub")
	if !owner {
		t.Fatal("expired entry still served")
	}
	c.complete("k", e, Result{NoSolution: true}, nil)
	st := c.stats()
	if st.ttlEvictions != 1 {
		t.Fatalf("ttl evictions = %d", st.ttlEvictions)
	}
	// The refreshed entry is live again.
	if _, owner := c.claim("k", "stub"); owner {
		t.Fatal("refreshed entry not served")
	}
}

// TestEngineCacheTTL drives TTL expiry through the engine: the same
// request recomputes once the cached result ages out.
func TestEngineCacheTTL(t *testing.T) {
	e := newTestEngine(t, EngineOptions{Workers: 2, CacheTTL: 30 * time.Millisecond})
	in := testInstance(t)

	solve := func() *Response {
		t.Helper()
		resp, err := e.Solve(context.Background(), Request{Instance: in, Solver: "mb"})
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	if first := solve(); first.Cached {
		t.Fatal("first solve cached")
	}
	if second := solve(); !second.Cached {
		t.Fatal("immediate re-solve not cached")
	}
	time.Sleep(60 * time.Millisecond)
	if third := solve(); third.Cached {
		t.Fatal("expired entry served from cache")
	}
	if st := e.Stats(); st.TTLEvictions != 1 {
		t.Fatalf("engine ttl evictions = %d", st.TTLEvictions)
	}
}
