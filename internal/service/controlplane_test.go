package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/obs"
)

// newControlPlaneServer starts a handler with the SLO engine and event
// journal wired, like rpserve does with the -slo-* and -event-buffer
// flags set.
func newControlPlaneServer(t *testing.T, slo *obs.SLO, events *obs.EventRing) *httptest.Server {
	t.Helper()
	e := NewEngine(EngineOptions{Workers: 2})
	srv := httptest.NewServer(NewHandlerOpts(e, HandlerOptions{SLO: slo, Events: events}))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		e.Close(ctx)
	})
	return srv
}

// TestSLOBreachDegradesHealthz: with an impossible latency objective,
// real traffic must flip the /healthz verdict to "degraded" and surface
// a firing latency alert in /v1/alerts — the same end-to-end contract
// run.sh pins against a live daemon.
func TestSLOBreachDegradesHealthz(t *testing.T) {
	slo := obs.NewSLO(obs.SLOOptions{
		Availability: 0.999,
		LatencyP99:   time.Nanosecond, // every request breaches
	})
	srv := newControlPlaneServer(t, slo, obs.NewEventRing(16, nil))

	// /healthz itself is SLO-exempt: polling it must not move the
	// objective it reports.
	for i := 0; i < 5; i++ {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	var hp healthPayload
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, &hp)
	if hp.Status != "ok" {
		t.Fatalf("verdict before traffic = %q, want ok", hp.Status)
	}

	// Twenty SLO-counted requests, all slower than a nanosecond.
	for i := 0; i < 20; i++ {
		resp, err := http.Get(srv.URL + "/v1/solvers")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hp = healthPayload{}
	decodeBody(t, resp, &hp)
	if hp.Status != "degraded" {
		t.Fatalf("verdict after breach = %q, want degraded (slo = %+v)", hp.Status, hp.SLO)
	}
	if hp.SLO == nil || len(hp.SLO.Firing) == 0 {
		t.Fatalf("healthz carries no firing alerts: %+v", hp.SLO)
	}

	resp, err = http.Get(srv.URL + "/v1/alerts")
	if err != nil {
		t.Fatal(err)
	}
	var st obs.SLOStatus
	decodeBody(t, resp, &st)
	if st.Verdict != "degraded" {
		t.Fatalf("alerts verdict = %q, want degraded", st.Verdict)
	}
	found := false
	for _, a := range st.Firing {
		if a.Objective == "latency" {
			found = true
			if a.FiredAt.IsZero() {
				t.Fatalf("firing alert lacks a timestamp: %+v", a)
			}
		}
		if a.Objective == "availability" {
			t.Fatalf("availability alert fired on 200s: %+v", a)
		}
	}
	if !found {
		t.Fatalf("no latency alert in %+v", st.Firing)
	}

	// The SLO families must be exported for scrapers too.
	fams := scrapeMetricsT(t, srv.URL)
	for _, name := range []string{"rp_slo_error_budget_remaining", "rp_slo_burn_rate", "rp_slo_alerts_firing"} {
		if fams[name] == nil {
			t.Fatalf("family %s missing from /metrics", name)
		}
	}
}

// TestControlPlaneDisabled: without the SLO engine and journal, the
// surfaces answer 501 and /healthz stays a plain "ok".
func TestControlPlaneDisabled(t *testing.T) {
	srv := newControlPlaneServer(t, nil, nil)
	for _, path := range []string{"/v1/alerts", "/debug/events"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotImplemented {
			t.Fatalf("GET %s = %d, want 501", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hp healthPayload
	decodeBody(t, resp, &hp)
	if hp.Status != "ok" || hp.SLO != nil {
		t.Fatalf("health without SLO = %+v", hp)
	}
}

// TestREDMetrics: request counts and latency land under the mux's
// coarse route patterns — never the raw path, even for unmatched
// attacker-chosen URLs.
func TestREDMetrics(t *testing.T) {
	srv := newControlPlaneServer(t, nil, nil)
	for i := 0; i < 3; i++ {
		resp, err := http.Get(srv.URL + "/v1/solvers")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "/secret/../raw/path")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	fams := scrapeMetricsT(t, srv.URL)
	req := fams["rp_http_requests_total"]
	if req == nil {
		t.Fatal("rp_http_requests_total missing")
	}
	byRoute := map[string]float64{}
	for _, s := range req.Samples {
		route := s.Label("route")
		byRoute[route] += s.Value
		if s.Label("code") == "" {
			t.Fatalf("sample without code label: %v", s.Labels)
		}
	}
	if byRoute["/v1/solvers"] < 3 {
		t.Fatalf("route /v1/solvers count = %v", byRoute)
	}
	if byRoute["unmatched"] < 1 {
		t.Fatalf("unmatched requests not bucketed: %v", byRoute)
	}
	for route := range byRoute {
		if route == "/secret/../raw/path" || route == "/raw/path" {
			t.Fatalf("raw path leaked into route labels: %v", byRoute)
		}
	}
	lat := fams["rp_http_request_seconds"]
	if lat == nil || lat.Type != "histogram" {
		t.Fatalf("rp_http_request_seconds = %+v, want a histogram", lat)
	}

	// The lifetime gauges ride along on every exposition.
	if fams["rp_start_time_seconds"] == nil || fams["rp_uptime_seconds"] == nil {
		t.Fatal("start-time/uptime gauges missing")
	}
}

// TestDebugEventsEndpoint: journaled events come back oldest-first with
// lifetime counts, filterable by type, since and limit.
func TestDebugEventsEndpoint(t *testing.T) {
	ring := obs.NewEventRing(16, nil)
	srv := newControlPlaneServer(t, nil, ring)

	ring.Emit(context.Background(), "shard_joined", "w1 joined", "shard", "w1")
	ring.Emit(context.Background(), "shard_joined", "w2 joined", "shard", "w2")
	ring.Emit(context.Background(), "circuit_open", "w1 tripped", "shard", "w1")

	var body struct {
		Events []obs.Event       `json:"events"`
		Counts map[string]uint64 `json:"counts"`
	}
	resp, err := http.Get(srv.URL + "/debug/events")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, &body)
	if len(body.Events) != 3 {
		t.Fatalf("%d events, want 3", len(body.Events))
	}
	if body.Events[0].Msg != "w1 joined" || body.Events[2].Type != "circuit_open" {
		t.Fatalf("wrong order: %+v", body.Events)
	}
	if body.Counts["shard_joined"] != 2 {
		t.Fatalf("counts = %v", body.Counts)
	}

	resp, err = http.Get(srv.URL + "/debug/events?type=circuit_open&limit=5")
	if err != nil {
		t.Fatal(err)
	}
	body.Events = nil
	decodeBody(t, resp, &body)
	if len(body.Events) != 1 || body.Events[0].Attrs["shard"] != "w1" {
		t.Fatalf("filtered events = %+v", body.Events)
	}
}

// TestDebugEventsBadQueries: malformed query parameters answer 400, the
// same loud-failure contract /debug/traces enforces.
func TestDebugEventsBadQueries(t *testing.T) {
	srv := newControlPlaneServer(t, nil, obs.NewEventRing(4, nil))
	for _, tc := range []struct {
		query string
		want  int
	}{
		{"", http.StatusOK},
		{"?type=shard_joined", http.StatusOK},
		{"?since=" + time.Now().Add(-time.Hour).Format("2006-01-02T15:04:05Z"), http.StatusOK},
		{"?since=1700000000", http.StatusOK},
		{"?since=-5", http.StatusBadRequest},
		{"?since=yesterday", http.StatusBadRequest},
		{"?limit=10", http.StatusOK},
		{"?limit=0", http.StatusBadRequest},
		{"?limit=-1", http.StatusBadRequest},
		{"?limit=many", http.StatusBadRequest},
	} {
		resp, err := http.Get(srv.URL + "/debug/events" + tc.query)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("GET /debug/events%s = %d, want %d", tc.query, resp.StatusCode, tc.want)
		}
	}
}

// scrapeMetricsT fetches and strictly parses the handler's /metrics.
func scrapeMetricsT(t *testing.T, base string) map[string]*obs.Family {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	fams, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	return fams
}
